// bottleneck-hunt: the paper's title in action.
//
// Opt the MySQL and Apache models into the region-attribution profiler
// (internal/profile): every annotated region boundary — lock acquires,
// critical sections, request phases, syscall spans — reads a
// four-event LiMiT bundle (cycles, all-rings cycles, L1D misses,
// branch misses), affordable only because each read costs tens of
// nanoseconds. The ranked report identifies *where* the architectural
// bottleneck lives: MySQL's table critical sections are memory-bound
// (they walk shared table data under the lock), while Apache's
// log-append sections are pure compute and the misses live outside the
// locks.
//
// Run with: go run ./examples/bottleneck-hunt
package main

import (
	"fmt"
	"os"

	"limitsim/internal/machine"
	"limitsim/internal/profile"
	"limitsim/internal/workloads"
)

func main() {
	for _, build := range []func() *workloads.App{
		func() *workloads.App {
			return workloads.BuildMySQL(workloads.DefaultMySQL(), workloads.ProfileInstr(profile.DefaultSpec()))
		},
		func() *workloads.App {
			return workloads.BuildApache(workloads.DefaultApache(), workloads.ProfileInstr(profile.DefaultSpec()))
		},
	} {
		app := build()
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, res.Err)
			os.Exit(1)
		}
		p, err := workloads.CollectProfile(app)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep := profile.NewReport(p)
		rep.RenderText(os.Stdout, 6)
		fmt.Println()

		top := rep.Top()
		verdict := map[profile.Class]string{
			profile.ClassMemoryBound:  "memory-bound: shrink shared data or add speculation",
			profile.ClassComputeBound: "compute-bound: shorten the instruction path",
			profile.ClassKernelBound:  "kernel-bound: batch or avoid the syscalls",
			profile.ClassContention:   "contention: reduce sharing or split the lock",
		}[top.Class]
		fmt.Printf("%-10s -> top region %s (%s)\n\n", p.App, top.Region.Path, verdict)
	}
}
