// bottleneck-hunt: the paper's title in action.
//
// Attach four LiMiT counters (cycles, L1D misses, LLC misses, branch
// misses) and read all of them at every critical-section boundary of
// the MySQL and Apache models — eight precise reads per lock
// operation, affordable only because each read costs tens of
// nanoseconds. Comparing in-CS event rates against the rest of the
// program identifies *where* the architectural bottleneck lives:
// MySQL's critical sections are memory-bound (they walk shared table
// data), while Apache's log-append sections are pure compute and the
// misses live outside the locks.
//
// Run with: go run ./examples/bottleneck-hunt
package main

import (
	"fmt"
	"os"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

func main() {
	profiles := []*analysis.BottleneckProfile{}

	for _, build := range []func() *workloads.App{
		func() *workloads.App {
			return workloads.BuildMySQL(workloads.DefaultMySQL(), workloads.BottleneckInstr())
		},
		func() *workloads.App {
			return workloads.BuildApache(workloads.DefaultApache(), workloads.BottleneckInstr())
		},
	} {
		app := build()
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
		if len(res.Faults) > 0 {
			fmt.Fprintln(os.Stderr, "faults:", res.Faults)
			os.Exit(1)
		}
		p, err := analysis.CollectBottleneck(app)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = append(profiles, p)
	}

	t := tabwrite.New("Bottleneck identification (events per kilocycle)",
		"app", "region", "L1D miss", "LLC miss", "branch miss", "cycles (M)")
	for _, p := range profiles {
		t.Row(p.App, "inside CS", p.InCS.L1DPerKC, p.InCS.LLCPerKC,
			p.InCS.BrMissPerKC, float64(p.InCS.Cycles)/1e6)
		t.Row("", "outside", p.Outside.L1DPerKC, p.Outside.LLCPerKC,
			p.Outside.BrMissPerKC, float64(p.Outside.Cycles)/1e6)
	}
	t.Render(os.Stdout)

	for _, p := range profiles {
		verdict := "compute-bound under the lock: optimize the lock path itself"
		if p.MemoryBoundCS() {
			verdict = "memory-bound under the lock: shrink shared data or add speculation"
		}
		fmt.Printf("%-10s -> %s\n", p.App, verdict)
	}
}
