// overhead-comparison: the paper's headline overhead result on one
// workload.
//
// Run the same instrumented loop under every counter access method —
// LiMiT, perf_event syscalls, PAPI, raw rdtsc — plus the
// uninstrumented baseline, and print per-read cost and whole-program
// slowdown side by side. LiMiT reads land in low tens of nanoseconds,
// one to two orders of magnitude below the syscall-based methods.
//
// Run with: go run ./examples/overhead-comparison
package main

import (
	"fmt"
	"os"

	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

func main() {
	const iters, work = 20_000, 500

	run := func(kind probe.Kind) uint64 {
		app := workloads.BuildReadLoop(workloads.ReadLoopConfig{
			Name: "cmp", Threads: 1, Iters: iters, WorkInstrs: work,
		}, workloads.Instrumentation{Kind: kind})
		_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{})
		if len(res.Faults) > 0 {
			fmt.Fprintln(os.Stderr, "faults:", res.Faults)
			os.Exit(1)
		}
		return res.Cycles
	}

	base := run(probe.KindNull)
	fmt.Printf("baseline (uninstrumented): %d cycles for %d iterations of %d instructions\n\n",
		base, iters, work)

	t := tabwrite.New("Access-method comparison (one read per 500 instructions)",
		"method", "cycles/read", "ns/read", "slowdown")
	for _, kind := range []probe.Kind{probe.KindRdtsc, probe.KindLimit, probe.KindPerf, probe.KindPAPI} {
		c := run(kind)
		perRead := float64(c-base) / float64(iters)
		t.Row(string(kind), perRead, perRead/machine.CyclesPerNanosecond,
			float64(c)/float64(base))
	}
	t.Render(os.Stdout)
}
