// Quickstart: measure a code region with a LiMiT counter.
//
// This example shows the library's core loop end to end: assemble a
// small program for the simulated machine, attach a LiMiT virtualized
// instruction counter, measure a region of exactly 10,000 instructions
// from userspace, and read the result back — demonstrating that the
// measurement is precise to the instruction and costs tens of
// nanoseconds per read.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

func main() {
	// A fresh address space; programs embed addresses at assembly time.
	space := mem.NewSpace()
	resultAddr := space.AllocWords(1)
	table := limit.AllocTable(space, 1)

	// Assemble: setup → measure 10k instructions → store delta → halt.
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))

	e.EmitInit()
	e.EmitMeasureStart(isa.R4, isa.R5, ctr) // region start
	b.Compute(10_000)                       // the measured region
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.MovImm(isa.R7, int64(resultAddr))
	b.Store(isa.R7, 0, isa.R6)
	b.Halt()
	e.EmitFinish()

	// Run it on a single-core machine.
	m := machine.New(machine.Config{NumCores: 1})
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "quickstart", 0, 1)
	res := m.MustRun(machine.RunLimits{})

	measured := space.Read64(resultAddr)
	total := limit.MustFinalValue(th, ctr)

	fmt.Println("LiMiT quickstart")
	fmt.Println("----------------")
	fmt.Printf("machine ran for            %d cycles (%.0f ns at 3 GHz)\n",
		res.Cycles, machine.NsFromCycles(res.Cycles))
	fmt.Printf("measured region            %d instructions (10,000 + 4 read-tail)\n", measured)
	fmt.Printf("thread total via counter   %d instructions\n", total)
	fmt.Printf("thread total ground truth  %d instructions\n", th.Stats.UserInstructions)
	fmt.Printf("fixup rewinds              %d\n", th.Stats.FixupRewinds)
}
