// mysql-sync: the paper's flagship case study in miniature.
//
// Instrument every lock acquisition and critical section of the MySQL
// workload model with LiMiT cycle counters, run it on a 4-core
// simulated machine, and print what only precise counting can show:
// the critical-section length distribution (dominated by very short
// sections), the cycle decomposition, and the kernel/user split.
//
// Run with: go run ./examples/mysql-sync
package main

import (
	"fmt"
	"os"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

func main() {
	cfg := workloads.DefaultMySQL()
	app := workloads.BuildMySQL(cfg, workloads.LimitInstr())

	m, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintln(os.Stderr, "faults:", res.Faults)
		os.Exit(1)
	}

	p := analysis.CollectSync(app)
	d := p.Decompose()

	fmt.Printf("MySQL model: %d workers x %d txns x %d ops, %d lock operations measured\n",
		cfg.Workers, cfg.TxnsPerWorker, cfg.OpsPerTxn, p.OpsTotal())
	fmt.Printf("run: %d Mcycles, %d context switches, %d migrations\n\n",
		res.Cycles/1e6, m.Kern.Stats.CtxSwitches, m.Kern.Stats.Migrations)

	t := tabwrite.New("Critical-section lengths (cycles)", "bucket", "count", "share", "")
	for _, row := range p.CSHist.Rows() {
		t.Row(row.Label, row.Count, row.Share, tabwrite.Bar(row.Share, 40))
	}
	t.Render(os.Stdout)

	t2 := tabwrite.New("Cycle decomposition", "category", "share")
	t2.Row("lock acquisition", fmt.Sprintf("%.1f%%", d.AcquireShare*100))
	t2.Row("critical sections", fmt.Sprintf("%.1f%%", d.CSShare*100))
	t2.Row("other user work", fmt.Sprintf("%.1f%%", d.OtherShare*100))
	t2.Row("kernel (of user+kernel)", fmt.Sprintf("%.1f%%", d.KernelShare*100))
	t2.Render(os.Stdout)

	fmt.Printf("median CS %d cycles, p99 %d cycles, mean acquire %.0f cycles\n",
		p.CS.Median(), p.CS.Percentile(99), p.Acq.Mean())
}
