// hw-extensions: the paper's three proposed hardware enhancements.
//
// Build machines whose PMUs implement each enhancement — 64-bit
// writable counters (e1), destructive reads (e2), hardware counter
// virtualization (e3) — and show what each buys: shorter read
// sequences for e1/e2 (down to a single, naturally atomic
// instruction) and counter-free context switches for e3.
//
// Run with: go run ./examples/hw-extensions
package main

import (
	"fmt"
	"os"

	"limitsim/internal/experiments"
	"limitsim/internal/limit"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
)

func main() {
	t := tabwrite.New("PMU feature sets", "config", "counter width", "write width", "destructive", "hw-virt", "LiMiT mode")
	for _, row := range []struct {
		name  string
		feats pmu.Features
	}{
		{"stock 2011 hardware", pmu.DefaultFeatures()},
		{"e1: 64-bit counters", pmu.Enhanced64Bit()},
		{"e2: destructive reads", pmu.EnhancedDestructive()},
		{"e3: hw virtualization", pmu.EnhancedHWVirtualization()},
	} {
		t.Row(row.name, row.feats.CounterWidth, row.feats.WriteWidth,
			row.feats.DestructiveReads, row.feats.HardwareVirtualization,
			limit.ModeFor(row.feats).String())
	}
	t.Render(os.Stdout)

	fmt.Println("Measuring read and context-switch costs per configuration...")
	fmt.Println()
	r, err := experiments.RunFig7(experiments.Scale(0.5))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hw-extensions:", err)
		os.Exit(1)
	}
	r.Render(os.Stdout)
}
