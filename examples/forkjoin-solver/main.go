// forkjoin-solver: measuring barrier waits in a fork-join parallel
// program.
//
// A parent thread spawns workers through the simulated kernel
// (SysSpawn); each iteration runs an imbalanced compute phase, a
// reduction under a shared lock, and a barrier — and every barrier
// wait is measured with LiMiT virtualized cycle reads. Load imbalance
// shows up directly as the barrier-wait distribution, something a
// sampling profiler can only hint at.
//
// Run with: go run ./examples/forkjoin-solver
package main

import (
	"fmt"
	"os"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/stats"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

func main() {
	cfg := workloads.DefaultForkJoin()
	app := workloads.BuildForkJoin(cfg, workloads.LimitInstr())

	m, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintln(os.Stderr, "faults:", res.Faults)
		os.Exit(1)
	}

	p := analysis.CollectSync(app)
	fmt.Printf("%d workers (kernel-spawned) x %d iterations on 4 cores: %.1f Mcycles, %d migrations\n\n",
		cfg.Workers, cfg.Iterations, float64(res.Cycles)/1e6, m.Kern.Stats.Migrations)

	t := tabwrite.New("Synchronization per category (cycles)",
		"category", "n", "mean", "p50", "p99")
	row := func(name string, s *stats.Summary) {
		t.Row(name, s.N(), s.Mean(), s.Median(), s.Percentile(99))
	}
	row("lock acquire", p.Acq)
	row("reduction CS", p.CS)
	row("barrier wait", p.Barrier)
	t.Render(os.Stdout)

	var hist stats.LogHistogram
	for _, plan := range app.Plans {
		if plan.Body != 1 {
			continue
		}
		hist.AddAll(app.Bodies[1].BarrierRec.Column(app.Space, app.ThreadBase(plan), 0))
	}
	ht := tabwrite.New("Barrier wait distribution (cycles)", "bucket", "count", "")
	for _, r := range hist.Rows() {
		ht.Row(r.Label, r.Count, tabwrite.Bar(r.Share, 40))
	}
	ht.Render(os.Stdout)

	fmt.Printf("imbalance: %d%% of phases run 2x long -> barrier p99/p50 = %.1fx\n",
		int(float64(cfg.ImbalancePct)/255*100),
		stats.Ratio(float64(p.Barrier.Percentile(99)), float64(p.Barrier.Median())))
}
