// Top-level benchmark harness: one benchmark per table and figure of
// the reproduced evaluation (see DESIGN.md's per-experiment index).
// Each benchmark runs the corresponding experiment end to end on the
// simulated machine and reports the experiment's headline numbers as
// custom metrics, so `go test -bench=. -benchmem` regenerates the
// paper's rows. Full tables render via the cmd/ tools
// (limit-overhead, limit-sync, limit-hw).
package limitsim_test

import (
	"testing"

	"limitsim/internal/chaos"
	"limitsim/internal/experiments"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/profile"
	"limitsim/internal/telemetry"
	"limitsim/internal/workloads"
)

// benchScale keeps bench wall time moderate while preserving every
// measured shape; the cmd tools default to Full scale.
const benchScale = experiments.Scale(0.5)

func BenchmarkTable1AccessCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		lim, _ := r.Row("limit")
		perf, _ := r.Row("perf")
		papi, _ := r.Row("papi")
		b.ReportMetric(lim.NsRead, "ns/limit-read")
		b.ReportMetric(perf.NsRead, "ns/perf-read")
		b.ReportMetric(papi.NsRead, "ns/papi-read")
		b.ReportMetric(perf.CyclesRead/lim.CyclesRead, "perf/limit-ratio")
	}
}

func BenchmarkTable2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		raw, _ := r.Row(experiments.VariantRaw)
		stock, _ := r.Row(experiments.VariantStock)
		locked, _ := r.Row(experiments.VariantLocked)
		b.ReportMetric(raw.NsRead, "ns/raw-rdpmc")
		b.ReportMetric(stock.NsRead, "ns/limit-read")
		b.ReportMetric(locked.NsRead, "ns/lock-based-read")
	}
}

func BenchmarkTable3ContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		none, _ := r.Row("no counters")
		four, _ := r.Row("4 LiMiT counters")
		hw, _ := r.Row("4 LiMiT + hw-virt (e3)")
		b.ReportMetric(none.CyclesPerSwitch, "cyc/switch-bare")
		b.ReportMetric(four.DeltaVsNone, "cyc/switch-4ctr-extra")
		b.ReportMetric(hw.DeltaVsNone, "cyc/switch-e3-extra")
	}
}

func BenchmarkFig1Perturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		lim, _ := r.Point("limit", 100)
		perf, _ := r.Point("perf", 100)
		perfBig, _ := r.Point("perf", 1_000_000)
		b.ReportMetric(lim.Inflation, "x/limit-100instr")
		b.ReportMetric(perf.Inflation, "x/perf-100instr")
		b.ReportMetric(perfBig.Inflation, "x/perf-1Minstr")
	}
}

func BenchmarkFig2Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		lim, _ := r.Point("limit", 30)
		perf, _ := r.Point("perf", 30)
		limSparse, _ := r.Point("limit", 10_000)
		b.ReportMetric(lim.Slowdown, "x/limit-dense")
		b.ReportMetric(perf.Slowdown, "x/perf-dense")
		b.ReportMetric(limSparse.Slowdown, "x/limit-sparse")
	}
}

func BenchmarkFig3CriticalSections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCaseStudies(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, app := range r.Apps {
			b.ReportMetric(float64(app.Profile.CS.Median()), "cyc/cs-median-"+app.Name)
		}
	}
}

func BenchmarkFig4Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCaseStudies(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, app := range r.Apps {
			b.ReportMetric(app.Decomp.SyncShare*100, "pct/sync-"+app.Name)
		}
	}
}

func BenchmarkFig5Longitudinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.LocksPerTxn, "locks/txn-"+row.Version)
			b.ReportMetric(row.SyncShare*100, "pct/sync-"+row.Version)
		}
	}
}

func BenchmarkFig6KernelUser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCaseStudies(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, app := range r.Apps {
			b.ReportMetric(app.Decomp.KernelShare*100, "pct/kernel-"+app.Name)
		}
	}
}

func BenchmarkTable4Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PreciseAcq*100, "pct/precise-acquire")
		coarse := r.Rows[0]
		fine := r.Rows[len(r.Rows)-1]
		b.ReportMetric((coarse.ErrAcq+coarse.ErrCS)*100, "pct/err-coarse")
		b.ReportMetric((fine.ErrAcq+fine.ErrCS)*100, "pct/err-fine")
	}
}

func BenchmarkAblationOverflowMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblationOverflow(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		kf, _ := r.Row("kernel-fold", 12)
		su, _ := r.Row("signal-user", 12)
		b.ReportMetric(kf.CyclesPerFold, "cyc/fold-kernel")
		b.ReportMetric(su.CyclesPerFold, "cyc/fold-signal")
	}
}

func BenchmarkAblationQuantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblationQuantum(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].RewindsPerKRead, "rewinds/kread-q500")
		b.ReportMetric(float64(r.Rows[0].Torn), "torn-q500")
	}
}

func BenchmarkFig8Bottlenecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Apps {
			top := a.Report.Top()
			b.ReportMetric(top.Share*100, "pct/top-"+a.Name)
			b.ReportMetric(top.L1DPerKC, "l1dpkc/top-"+a.Name)
		}
	}
}

// BenchmarkProfileRegionEnterExit pins the profiler's per-boundary
// cost: it runs the region microbenchmark bare (raw LiMiT read pairs)
// and profiled (full accumulator update) and reports the measured
// enter/exit pair cost plus its ratio to the bare read-pair floor. The
// acceptance bound is ratio <= 2x.
func BenchmarkProfileRegionEnterExit(b *testing.B) {
	cfg := workloads.DefaultRegionBench()
	spec := profile.DefaultSpec()
	run := func(mode workloads.RegionBenchMode) float64 {
		app := workloads.BuildRegionBench(cfg, spec, mode)
		m := machine.New(machine.Config{NumCores: 1})
		app.Launch(m)
		if res := m.Run(machine.RunLimits{}); res.Err != nil {
			b.Fatal(res.Err)
		}
		return float64(workloads.RegionBenchTotal(app))
	}
	for i := 0; i < b.N; i++ {
		none := run(workloads.RegionBenchNone)
		bare := run(workloads.RegionBenchBare)
		profiled := run(workloads.RegionBenchProfiled)
		iters := float64(cfg.Iters)
		b.ReportMetric((profiled-none)/iters, "cyc/pair")
		b.ReportMetric((bare-none)/iters, "cyc/bare-pair")
		b.ReportMetric((profiled-none)/(bare-none), "x/vs-bare")
	}
}

func BenchmarkTable5Multiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		four, _ := r.Row(4)
		eight, _ := r.Row(8)
		b.ReportMetric(four.MeanAbsErr*100, "pct/err-4ctr")
		b.ReportMetric(eight.MeanAbsErr*100, "pct/err-8ctr")
	}
}

func BenchmarkFig9Consolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].RunMcycles, "Mcyc/solo")
		b.ReportMetric(r.Rows[1].RunMcycles, "Mcyc/colocated")
		b.ReportMetric(float64(r.Rows[1].CSP99)/float64(r.Rows[0].CSP99), "x/csp99-stability")
	}
}

// benchTelemetry runs one instrumented forkjoin workload with or
// without the kernel telemetry layer attached. Disabled telemetry is
// the default state and must cost only the nil checks on the kernel's
// hot paths — the two benchmarks should sit within noise of each other.
func benchTelemetry(b *testing.B, withMetrics bool) {
	for i := 0; i < b.N; i++ {
		app := workloads.BuildForkJoin(workloads.DefaultForkJoin(), workloads.LimitInstr())
		m := machine.New(machine.Config{NumCores: 4})
		if withMetrics {
			m.Kern.SetMetrics(kernel.NewMetrics(telemetry.NewRegistry()))
		}
		app.Launch(m)
		if res := m.Run(machine.RunLimits{}); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchTelemetry(b, false) }

func BenchmarkTelemetryEnabled(b *testing.B) { benchTelemetry(b, true) }

// benchCampaign runs one full chaos campaign per iteration at the
// given pool width. Serial vs parallel is the execution engine's
// headline comparison: identical work, identical report, wall-clock
// divided by the worker count (pinned to byte-equality by
// TestCampaignParallelDeterminism). -benchmem makes the per-run
// allocation savings from worker pooling visible alongside.
func benchCampaign(b *testing.B, parallel int) {
	cfg := chaos.Config{Seeds: 4, Threads: 4, Iters: 200, Parallel: parallel}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := chaos.Run(cfg)
		if v := res.TotalViolations(); v != 0 {
			b.Fatalf("campaign reported %d violations", v)
		}
	}
}

func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, 0) }

func BenchmarkFig7Enhancements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		stock, _ := r.Reads.Row(experiments.VariantStock)
		e1, _ := r.Reads.Row(experiments.VariantE1)
		e2, _ := r.Reads.Row(experiments.VariantE2)
		b.ReportMetric(stock.NsRead, "ns/read-stock")
		b.ReportMetric(e1.NsRead, "ns/read-e1")
		b.ReportMetric(e2.NsRead, "ns/read-e2")
	}
}
