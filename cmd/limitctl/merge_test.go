package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite merge golden files from current output")

func mergeFixture(name string) string { return filepath.Join("testdata", name) }

// goldenCheck compares got against testdata/name, rewriting the file
// under -update so intentional format changes are one command away.
func goldenCheck(t *testing.T, name, got string) {
	t.Helper()
	path := mergeFixture(name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run Merge -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestMergeGolden pins the merge subcommand end to end: two shard
// files fold into exactly the golden registry, in both render formats,
// and the fold is order-independent (the merge is commutative, which
// is what lets the fleet assemble shards in key order).
func TestMergeGolden(t *testing.T) {
	a, b := mergeFixture("merge_shard_a.jsonl"), mergeFixture("merge_shard_b.jsonl")
	for _, tc := range []struct {
		format string
		golden string
	}{
		{"text", "merge_golden.txt"},
		{"jsonl", "merge_golden.jsonl"},
	} {
		var out, errb bytes.Buffer
		if code := runMerge([]string{"-format", tc.format, a, b}, &out, &errb); code != 0 {
			t.Fatalf("format=%s: exit %d, stderr: %s", tc.format, code, errb.String())
		}
		goldenCheck(t, tc.golden, out.String())

		var swapped bytes.Buffer
		if code := runMerge([]string{"-format", tc.format, b, a}, &swapped, &errb); code != 0 {
			t.Fatalf("format=%s swapped: exit %d, stderr: %s", tc.format, code, errb.String())
		}
		if swapped.String() != out.String() {
			t.Errorf("format=%s: merge is input-order dependent", tc.format)
		}
	}
}

// TestMergeSingleFileIsIdentity pins that merging one file re-emits
// its registry unchanged in jsonl form.
func TestMergeSingleFileIsIdentity(t *testing.T) {
	path := mergeFixture("merge_shard_a.jsonl")
	var out, errb bytes.Buffer
	if code := runMerge([]string{"-format", "jsonl", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("single-file merge is not the identity\n--- got ---\n%s\n--- want ---\n%s", out.String(), want)
	}
}

// TestMergeSchemaDriftExits1 pins the drift contract: a shard whose
// histogram bounds changed aborts with exit 1, naming both files and
// the drifted metric — never a best-effort partial merge.
func TestMergeSchemaDriftExits1(t *testing.T) {
	var out, errb bytes.Buffer
	code := runMerge([]string{mergeFixture("merge_shard_a.jsonl"), mergeFixture("merge_drifted.jsonl")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	msg := errb.String()
	for _, want := range []string{"schema drift", "kern.pmi.latency", "merge_shard_a.jsonl", "merge_drifted.jsonl"} {
		if !strings.Contains(msg, want) {
			t.Errorf("drift error lacks %q: %s", want, msg)
		}
	}
	if out.Len() != 0 {
		t.Errorf("drifted merge still wrote output: %s", out.String())
	}
}

// TestMergeUsageErrors pins the exit-2 contract: no input files and
// unknown formats are usage errors, missing files are runtime (1).
func TestMergeUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runMerge(nil, &out, &errb); code != 2 {
		t.Errorf("no files exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no input files") {
		t.Errorf("no-files error shape: %s", errb.String())
	}
	errb.Reset()
	if code := runMerge([]string{"-format", "bogus", "x.jsonl"}, &out, &errb); code != 2 {
		t.Errorf("-format=bogus exited %d, want 2", code)
	}
	errb.Reset()
	if code := runMerge([]string{mergeFixture("no_such_file.jsonl")}, &out, &errb); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
}
