package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"limitsim/internal/telemetry"
)

// runMerge folds two or more telemetry JSONL files (the stats
// subcommand's -format jsonl output, or the per-run blocks a fleet
// worker ships) into one registry and emits it. Merging is the same
// commutative fold the campaign engines use — counters add, gauges add
// with peak-max, histograms add bucketwise — so the output is
// byte-identical regardless of how the inputs were sharded.
//
// Schema drift between files is an error, not a best-effort union: a
// metric present in one file and missing in another, or a histogram
// whose bucket bounds changed, aborts with the file and metric named.
// Returns the process exit code.
func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text, jsonl")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: limitctl merge [-format text|jsonl] <file.jsonl> <file.jsonl> [...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "jsonl":
	default:
		fmt.Fprintf(stderr, "limitctl merge: unknown -format %q (text, jsonl)\n", *format)
		fs.Usage()
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "limitctl merge: no input files")
		fs.Usage()
		return 2
	}

	var merged *telemetry.Registry
	var first string
	for _, path := range fs.Args() {
		reg, err := parseJSONLFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl merge: %s: %v\n", path, err)
			return 1
		}
		if merged == nil {
			merged, first = reg, path
			continue
		}
		if err := merged.Merge(reg); err != nil {
			var se *telemetry.SchemaError
			if errors.As(err, &se) {
				fmt.Fprintf(stderr, "limitctl merge: schema drift between %s and %s: %v\n", first, path, se)
			} else {
				fmt.Fprintf(stderr, "limitctl merge: merging %s: %v\n", path, err)
			}
			return 1
		}
	}

	if *format == "jsonl" {
		if err := merged.WriteJSONL(stdout); err != nil {
			fmt.Fprintf(stderr, "limitctl merge: %v\n", err)
			return 1
		}
		return 0
	}
	merged.Render(stdout)
	return 0
}

func parseJSONLFile(path string) (*telemetry.Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ParseJSONL(f)
}
