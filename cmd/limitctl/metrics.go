package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/metrics"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// runMetrics runs one workload with the full derived-metric event set
// opened as multiplexed groups alongside the LiMiT instrumentation,
// then either renders derived metrics over the end-of-run totals
// (-format text) or streams the raw per-rotation frames as JSONL
// (-format frames). Unknown metric names are rejected before any
// simulation runs. Returns the process exit code.
func runMetrics(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl metrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	cores := fs.Int("cores", 4, "simulated core count")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	rotation := fs.Uint64("rotation", 0, "group rotation quantum in scheduled cycles (0 = kernel default, quantum/6)")
	width := fs.Int("width", 4, "events per multiplexed group")
	counters := fs.Int("counters", 6, "PMU counter slots (2 are pinned by LiMiT; the rest rotate groups)")
	metricList := fs.String("metric", "", "comma-separated derived metrics to report (default: all built-ins)")
	format := fs.String("format", "text", "output format: text, frames")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limitctl metrics: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *format {
	case "text", "frames":
	default:
		fmt.Fprintf(stderr, "limitctl metrics: unknown -format %q (text, frames)\n", *format)
		fs.Usage()
		return 2
	}

	// Resolve the metric selection before running anything: a typo must
	// cost a usage message, not a simulation.
	var defs []*metrics.Def
	if *metricList == "" {
		for i := range metrics.Builtin {
			defs = append(defs, &metrics.Builtin[i])
		}
	} else {
		for _, name := range strings.Split(*metricList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			d := metrics.Lookup(name)
			if d == nil {
				fmt.Fprintf(stderr, "limitctl metrics: unknown metric %q; built-ins:\n", name)
				for i := range metrics.Builtin {
					fmt.Fprintf(stderr, "  %-18s %s\n", metrics.Builtin[i].Name, metrics.Builtin[i].Desc)
				}
				return 2
			}
			defs = append(defs, d)
		}
		if len(defs) == 0 {
			fmt.Fprintln(stderr, "limitctl metrics: -metric selected no metrics")
			return 2
		}
	}

	ins := workloads.LimitInstr()
	ins.MuxGroups = workloads.DefaultMuxGroups(*width)
	app := buildApp(*appName, ins, *scale)
	if app == nil {
		fmt.Fprintf(stderr, "limitctl metrics: unknown app %q\n", *appName)
		return 2
	}

	f := pmu.DefaultFeatures()
	f.NumCounters = *counters
	kcfg := kernel.DefaultConfig()
	kcfg.MuxQuantum = *rotation
	m := machine.New(machine.Config{NumCores: *cores, PMU: f, Kernel: kcfg})
	app.Launch(m)
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintf(stderr, "limitctl metrics: faults: %v\n", res.Faults)
		return 1
	}

	frames := metrics.FromKernel(m.Kern)
	if *format == "frames" {
		if err := metrics.WriteJSONL(stdout, frames); err != nil {
			fmt.Fprintf(stderr, "limitctl metrics: %v\n", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "%s on %d cores: %s\n", app.Name, *cores, res)
	fmt.Fprintf(stdout, "%d frames, %d rotations, rotation quantum %d cycles\n\n",
		len(frames), m.Kern.Stats.MuxRotations, m.Kern.Config().MuxQuantum)

	totals := metrics.Totals(frames)
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	et := tabwrite.New("Event totals (scaled estimates, summed across threads)", "event", "estimate")
	for _, name := range names {
		et.Row(name, totals[name])
	}
	et.Render(stdout)

	env := metrics.Env(totals)
	dt := tabwrite.New("Derived metrics", "metric", "value", "definition")
	for _, d := range defs {
		v, err := d.Compiled().Eval(env)
		if err != nil {
			dt.Row(d.Name, "n/a", fmt.Sprintf("%s (%v)", d.Expr, err))
			continue
		}
		dt.Row(d.Name, fmt.Sprintf("%.4f", v), d.Expr)
	}
	dt.Render(stdout)
	return 0
}
