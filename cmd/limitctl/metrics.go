package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/metrics"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// runMetrics runs one workload with the full derived-metric event set
// opened as multiplexed groups alongside the LiMiT instrumentation,
// then renders derived metrics over the end-of-run totals (-format
// text), streams the raw per-rotation frames as JSONL (-format
// frames), or — with -series -window N — evaluates every selected
// metric per fixed cycle window as a time series (text table or, with
// -format jsonl, one window×key object per line). -tenants N > 1
// activates the guest-scheduler layer, deals workload threads
// round-robin across guests, and stamps every frame with its tenant
// id; -split tenant|thread keys the series per guest or per worker
// thread. Unknown metric names and a non-positive -window are rejected
// before any simulation runs. Returns the process exit code.
func runMetrics(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl metrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	cores := fs.Int("cores", 4, "simulated core count")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	rotation := fs.Uint64("rotation", 0, "group rotation quantum in scheduled cycles (0 = kernel default, quantum/6)")
	width := fs.Int("width", 4, "events per multiplexed group")
	counters := fs.Int("counters", 6, "PMU counter slots (2 are pinned by LiMiT; the rest rotate groups)")
	tenants := fs.Int("tenants", 1, "guest VMs; >1 activates the tenant layer and deals threads round-robin")
	metricList := fs.String("metric", "", "comma-separated derived metrics to report (default: all built-ins)")
	series := fs.Bool("series", false, "evaluate metrics per fixed cycle window instead of end-of-run totals")
	window := fs.Int64("window", 0, "series window size in cycles (required with -series, must be positive)")
	splitName := fs.String("split", "none", "series split: none, tenant, thread")
	format := fs.String("format", "text", "output format: text, frames, jsonl (jsonl requires -series)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limitctl metrics: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *format {
	case "text", "frames", "jsonl":
	default:
		fmt.Fprintf(stderr, "limitctl metrics: unknown -format %q (text, frames, jsonl)\n", *format)
		fs.Usage()
		return 2
	}

	// Series-mode validation before anything runs: -window > 0 selects
	// the windowed series (with or without the -series spelling), and a
	// non-positive -window with -series is a usage error, never a
	// silent fallback to totals.
	seriesMode := *series || *window > 0
	if seriesMode && *window <= 0 {
		fmt.Fprintf(stderr, "limitctl metrics: -window must be positive (got %d)\n", *window)
		fs.Usage()
		return 2
	}
	if *window < 0 {
		fmt.Fprintf(stderr, "limitctl metrics: -window must be positive (got %d)\n", *window)
		fs.Usage()
		return 2
	}
	split, ok := metrics.ParseSplit(*splitName)
	if !ok {
		fmt.Fprintf(stderr, "limitctl metrics: unknown -split %q (none, tenant, thread)\n", *splitName)
		fs.Usage()
		return 2
	}
	if *format == "jsonl" && !seriesMode {
		fmt.Fprintln(stderr, "limitctl metrics: -format jsonl requires -series -window N")
		fs.Usage()
		return 2
	}
	if *tenants < 1 {
		fmt.Fprintf(stderr, "limitctl metrics: -tenants must be >= 1 (got %d)\n", *tenants)
		return 2
	}

	// Resolve the metric selection before running anything: a typo must
	// cost a usage message, not a simulation.
	var defs []*metrics.Def
	if *metricList == "" {
		for i := range metrics.Builtin {
			defs = append(defs, &metrics.Builtin[i])
		}
	} else {
		for _, name := range strings.Split(*metricList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			d := metrics.Lookup(name)
			if d == nil {
				fmt.Fprintf(stderr, "limitctl metrics: unknown metric %q; built-ins:\n", name)
				for i := range metrics.Builtin {
					fmt.Fprintf(stderr, "  %-18s %s\n", metrics.Builtin[i].Name, metrics.Builtin[i].Desc)
				}
				return 2
			}
			defs = append(defs, d)
		}
		if len(defs) == 0 {
			fmt.Fprintln(stderr, "limitctl metrics: -metric selected no metrics")
			return 2
		}
	}

	ins := workloads.LimitInstr()
	ins.MuxGroups = workloads.DefaultMuxGroups(*width)
	app := buildApp(*appName, ins, *scale)
	if app == nil {
		fmt.Fprintf(stderr, "limitctl metrics: unknown app %q\n", *appName)
		return 2
	}

	f := pmu.DefaultFeatures()
	f.NumCounters = *counters
	kcfg := kernel.DefaultConfig()
	kcfg.MuxQuantum = *rotation
	kcfg.Tenants = *tenants
	m := machine.New(machine.Config{NumCores: *cores, PMU: f, Kernel: kcfg, Uncore: *tenants > 1})
	threads := app.Launch(m)
	if *tenants > 1 {
		for i, t := range threads {
			t.Tenant = i % *tenants // deal threads round-robin across guests
		}
	}
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintf(stderr, "limitctl metrics: faults: %v\n", res.Faults)
		return 1
	}

	frames := metrics.FromKernel(m.Kern)
	if *format == "frames" {
		if err := metrics.WriteJSONL(stdout, frames); err != nil {
			fmt.Fprintf(stderr, "limitctl metrics: %v\n", err)
			return 1
		}
		return 0
	}

	if seriesMode {
		ss, err := metrics.Windowed(frames, uint64(*window), split)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl metrics: %v\n", err)
			return 1
		}
		rows := ss.Rows(defs)
		if *format == "jsonl" {
			if err := metrics.WriteSeriesJSONL(stdout, rows); err != nil {
				fmt.Fprintf(stderr, "limitctl metrics: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Fprintf(stdout, "%s on %d cores: %s\n", app.Name, *cores, res)
		fmt.Fprintf(stdout, "%d frames, %d rotations, rotation quantum %d cycles\n\n",
			len(frames), m.Kern.Stats.MuxRotations, m.Kern.Config().MuxQuantum)
		title := fmt.Sprintf("Windowed metrics (window=%d cycles, split=%s)", *window, split)
		metrics.RenderSeriesText(stdout, title, rows)
		return 0
	}

	fmt.Fprintf(stdout, "%s on %d cores: %s\n", app.Name, *cores, res)
	fmt.Fprintf(stdout, "%d frames, %d rotations, rotation quantum %d cycles\n\n",
		len(frames), m.Kern.Stats.MuxRotations, m.Kern.Config().MuxQuantum)

	totals := metrics.Totals(frames)
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	et := tabwrite.New("Event totals (scaled estimates, summed across threads)", "event", "estimate")
	for _, name := range names {
		et.Row(name, totals[name])
	}
	et.Render(stdout)

	env := metrics.Env(totals)
	dt := tabwrite.New("Derived metrics", "metric", "value", "definition")
	for _, d := range defs {
		v, err := d.Compiled().Eval(env)
		if err != nil {
			dt.Row(d.Name, "n/a", fmt.Sprintf("%s (%v)", d.Expr, err))
			continue
		}
		dt.Row(d.Name, fmt.Sprintf("%.4f", v), d.Expr)
	}
	dt.Render(stdout)
	return 0
}
