package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"limitsim/internal/metrics"
	"limitsim/internal/profile"
	"limitsim/internal/report"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
)

// runReport assembles one self-contained HTML artifact from
// measurement files on disk: a ranked bottleneck table from profiler
// JSONL (limit-profile -format jsonl), windowed metric charts from
// series JSONL (limitctl metrics -series -format jsonl) or from a raw
// frame stream windowed here (-frames with -window), telemetry
// registry tables (limitctl stats -format jsonl; several files merge
// commutatively), and a flame view from Chrome-span JSON
// (limit-profile -flame). At least one input is required; the artifact
// is byte-deterministic for the same inputs. Returns the process exit
// code.
func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the HTML artifact to FILE (default stdout)")
	title := fs.String("title", "limitsim report", "artifact title")
	subtitle := fs.String("subtitle", "", "artifact subtitle")
	profileFile := fs.String("profile", "", "ranked findings JSONL from limit-profile -format jsonl")
	seriesFile := fs.String("series", "", "windowed series JSONL from limitctl metrics -series -format jsonl")
	framesFile := fs.String("frames", "", "raw frame JSONL from limitctl metrics -format frames (windowed here; needs -window)")
	window := fs.Int64("window", 0, "window size in cycles for -frames (must be positive)")
	splitName := fs.String("split", "none", "series split for -frames: none, tenant, thread")
	metricList := fs.String("metric", "", "comma-separated metrics for -frames (default: all built-ins)")
	telemetryFiles := fs.String("telemetry", "", "comma-separated telemetry JSONL files (merged commutatively)")
	flameFile := fs.String("flame", "", "Chrome-span JSON from limit-profile -flame")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limitctl report: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *profileFile == "" && *seriesFile == "" && *framesFile == "" && *telemetryFiles == "" && *flameFile == "" {
		fmt.Fprintln(stderr, "limitctl report: no inputs (need at least one of -profile, -series, -frames, -telemetry, -flame)")
		fs.Usage()
		return 2
	}
	if *framesFile != "" && *window <= 0 {
		fmt.Fprintf(stderr, "limitctl report: -frames needs a positive -window (got %d)\n", *window)
		fs.Usage()
		return 2
	}
	split, ok := metrics.ParseSplit(*splitName)
	if !ok {
		fmt.Fprintf(stderr, "limitctl report: unknown -split %q (none, tenant, thread)\n", *splitName)
		fs.Usage()
		return 2
	}

	a := report.New(*title, *subtitle)

	if *profileFile != "" {
		f, err := os.Open(*profileFile)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", err)
			return 1
		}
		recs, self, perr := profile.ParseJSONL(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", perr)
			return 1
		}
		a.AddFindings("Ranked bottlenecks", recs, self)
	}

	if *seriesFile != "" {
		f, err := os.Open(*seriesFile)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", err)
			return 1
		}
		rows, perr := metrics.ParseSeriesJSONL(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", perr)
			return 1
		}
		a.AddSeries("Metric time series", rows)
	}

	if *framesFile != "" {
		defs, code := resolveMetricDefs(*metricList, stderr)
		if code != 0 {
			return code
		}
		f, err := os.Open(*framesFile)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", err)
			return 1
		}
		frames, perr := metrics.ParseJSONL(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", perr)
			return 1
		}
		ss, werr := metrics.Windowed(frames, uint64(*window), split)
		if werr != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", werr)
			return 1
		}
		a.AddSeries(fmt.Sprintf("Metric time series (window=%d cycles, split=%s)", *window, split), ss.Rows(defs))
	}

	if *telemetryFiles != "" {
		var merged *telemetry.Registry
		for _, name := range strings.Split(*telemetryFiles, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintf(stderr, "limitctl report: %v\n", err)
				return 1
			}
			reg, perr := telemetry.ParseJSONL(f)
			f.Close()
			if perr != nil {
				fmt.Fprintf(stderr, "limitctl report: %s: %v\n", name, perr)
				return 1
			}
			if merged == nil {
				merged = reg
			} else if err := merged.Merge(reg); err != nil {
				fmt.Fprintf(stderr, "limitctl report: merging %s: %v\n", name, err)
				return 1
			}
		}
		if merged == nil {
			fmt.Fprintln(stderr, "limitctl report: -telemetry selected no files")
			return 2
		}
		a.AddRegistry("Telemetry", merged)
	}

	if *flameFile != "" {
		f, err := os.Open(*flameFile)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", err)
			return 1
		}
		spans, perr := trace.ParseChromeSpans(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", perr)
			return 1
		}
		a.AddFlame("Flame view", spans)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "limitctl report: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := a.Render(w); err != nil {
		fmt.Fprintf(stderr, "limitctl report: %v\n", err)
		return 1
	}
	return 0
}

// resolveMetricDefs resolves a -metric CSV selection against the
// built-in catalogue (all built-ins when empty), or exits 2 naming the
// unknown metric.
func resolveMetricDefs(metricList string, stderr io.Writer) ([]*metrics.Def, int) {
	var defs []*metrics.Def
	if metricList == "" {
		for i := range metrics.Builtin {
			defs = append(defs, &metrics.Builtin[i])
		}
		return defs, 0
	}
	for _, name := range strings.Split(metricList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		d := metrics.Lookup(name)
		if d == nil {
			fmt.Fprintf(stderr, "limitctl report: unknown metric %q\n", name)
			return nil, 2
		}
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		fmt.Fprintln(stderr, "limitctl report: -metric selected no metrics")
		return nil, 2
	}
	return defs, 0
}
