package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"limitsim/internal/metrics"
)

// metricsArgs is the fast deterministic base invocation for the
// metrics subcommand tests.
var metricsArgs = []string{"-app", "forkjoin", "-scale", "0.3"}

func TestMetricsSeriesDeterminism(t *testing.T) {
	for _, format := range []string{"text", "jsonl"} {
		args := append(append([]string{}, metricsArgs...),
			"-series", "-window", "100000", "-format", format)
		a := run(t, runMetrics, args...)
		b := run(t, runMetrics, args...)
		if a != b {
			t.Errorf("format=%s: two same-seed series runs differ", format)
		}
		if a == "" {
			t.Errorf("format=%s: empty output", format)
		}
	}
}

func TestMetricsSeriesJSONLValid(t *testing.T) {
	out := run(t, runMetrics, append(append([]string{}, metricsArgs...),
		"-series", "-window", "100000", "-format", "jsonl")...)
	rows, err := metrics.ParseSeriesJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("only %d series rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Window < rows[i-1].Window {
			t.Fatal("rows not window-ordered")
		}
	}
	// The signed per-window inputs must telescope to the totals the
	// same stream reports — checked here end to end through the CLI.
	frames, err := metrics.ParseJSONL(strings.NewReader(
		run(t, runMetrics, append(append([]string{}, metricsArgs...), "-format", "frames")...)))
	if err != nil {
		t.Fatal(err)
	}
	totals := metrics.Totals(frames)
	sums := make(map[string]int64)
	for _, r := range rows {
		for name, d := range r.Inputs {
			sums[name] += d
		}
	}
	if totals["instructions"] == 0 || sums["instructions"] != int64(totals["instructions"]) {
		t.Errorf("windowed instructions %d != end-of-run total %d",
			sums["instructions"], totals["instructions"])
	}
}

// -tenants N > 1 stamps every emitted frame with its tenant id;
// single-tenant streams keep the historical shape with no tenant
// field.
func TestMetricsFramesTenantField(t *testing.T) {
	tenanted := run(t, runMetrics, append(append([]string{}, metricsArgs...),
		"-tenants", "2", "-format", "frames")...)
	for i, ln := range strings.Split(strings.TrimSpace(tenanted), "\n") {
		if !strings.Contains(ln, `"tenant":`) {
			t.Fatalf("line %d lacks tenant id with -tenants 2: %s", i+1, ln)
		}
	}
	plain := run(t, runMetrics, append(append([]string{}, metricsArgs...), "-format", "frames")...)
	if strings.Contains(plain, `"tenant":`) {
		t.Error("single-tenant frames grew a tenant field")
	}
}

func TestMetricsWindowValidationExits2(t *testing.T) {
	cases := [][]string{
		{"-series"},                 // series without a window
		{"-series", "-window", "0"}, // explicit zero
		{"-window", "-100"},         // negative window
		{"-format", "jsonl"},        // jsonl is a series format
		{"-split", "bogus"},         // unknown split
		{"-tenants", "0"},           // no guests
		{"-series", "-window", "100000", "-metric", "bogus"}, // unknown metric
	}
	for _, extra := range cases {
		var out, errb bytes.Buffer
		args := append(append([]string{}, metricsArgs...), extra...)
		if code := runMetrics(args, &out, &errb); code != 2 {
			t.Errorf("metrics %v exited %d, want 2 (stderr: %s)", extra, code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("metrics %v: exit 2 with silent stderr", extra)
		}
	}
	var out, errb bytes.Buffer
	if code := runMetrics(append(append([]string{}, metricsArgs...), "-series", "-window", "0"), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-window must be positive") || !strings.Contains(errb.String(), "Usage") {
		t.Errorf("window error shape: %s", errb.String())
	}
}

// End-to-end report assembly: measurement files written by the other
// subcommands feed limitctl report, which must produce a deterministic
// self-contained artifact.
func TestReportAssemblesFromFiles(t *testing.T) {
	dir := t.TempDir()
	framesFile := filepath.Join(dir, "frames.jsonl")
	seriesFile := filepath.Join(dir, "series.jsonl")
	telemetryFile := filepath.Join(dir, "stats.jsonl")

	frames := run(t, runMetrics, append(append([]string{}, metricsArgs...), "-format", "frames")...)
	series := run(t, runMetrics, append(append([]string{}, metricsArgs...),
		"-series", "-window", "100000", "-format", "jsonl")...)
	stats := run(t, runStats, "-app", "forkjoin", "-scale", "0.3", "-format", "jsonl")
	for file, content := range map[string]string{
		framesFile: frames, seriesFile: series, telemetryFile: stats,
	} {
		if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	args := []string{
		"-series", seriesFile,
		"-frames", framesFile, "-window", "150000", "-split", "thread",
		"-telemetry", telemetryFile + "," + telemetryFile, // merges commutatively
		"-title", "cli test",
	}
	a := run(t, runReport, args...)
	b := run(t, runReport, args...)
	if a != b {
		t.Error("two report assemblies from the same files differ")
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "cli test", "Metric time series",
		"window=150000 cycles, split=thread", "Telemetry", "kern.syscalls",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("artifact lacks %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "<script"} {
		if strings.Contains(a, banned) {
			t.Errorf("artifact contains %q", banned)
		}
	}

	// -o writes the same bytes to disk.
	outFile := filepath.Join(dir, "report.html")
	run(t, runReport, append(args, "-o", outFile)...)
	onDisk, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != a {
		t.Error("-o file differs from stdout artifact")
	}
}

func TestReportUsageErrorsExit2(t *testing.T) {
	cases := [][]string{
		{},                                     // no inputs at all
		{"-frames", "x.jsonl"},                 // frames without window
		{"-frames", "x.jsonl", "-window", "0"}, // non-positive window
		{"-frames", "x.jsonl", "-window", "100", "-split", "bogus"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := runReport(args, &out, &errb); code != 2 {
			t.Errorf("report %v exited %d, want 2 (stderr: %s)", args, code, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage") {
			t.Errorf("report %v: no usage on stderr: %s", args, errb.String())
		}
	}
	// A missing input file is an I/O failure (exit 1), not usage.
	var out, errb bytes.Buffer
	if code := runReport([]string{"-profile", "/nonexistent/p.jsonl"}, &out, &errb); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
}
