package main

import (
	"flag"
	"fmt"
	"io"

	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
)

// The trace and stats subcommands share the workload-construction
// flags of the main mode but emit structured output; both are plain
// functions over writers so tests can run them in-process and assert
// byte-level determinism.

// runTrace runs one workload with the kernel tracer attached and
// emits the retained event stream in the selected format. Returns the
// process exit code.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	method := fs.String("method", "limit", "access method: limit, perf, papi, rdtsc, sample, none")
	cores := fs.Int("cores", 4, "simulated core count")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	n := fs.Int("n", 65536, "trace ring capacity (last N events are kept)")
	period := fs.Uint64("period", 100_000, "sampling period (method=sample)")
	format := fs.String("format", "text", "output format: text, chrome, jsonl")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limitctl trace: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *format {
	case "text", "chrome", "jsonl":
	default:
		fmt.Fprintf(stderr, "limitctl trace: unknown -format %q (text, chrome, jsonl)\n", *format)
		fs.Usage()
		return 2
	}

	buf, _, code := runTraced(*appName, *method, *cores, *scale, *n, *period, stderr)
	if code != 0 {
		return code
	}
	switch *format {
	case "chrome":
		if err := trace.WriteChrome(stdout, buf.Events(), machine.CyclesPerNanosecond*1000); err != nil {
			fmt.Fprintf(stderr, "limitctl trace: %v\n", err)
			return 1
		}
	case "jsonl":
		if err := trace.WriteJSONL(stdout, buf.Events()); err != nil {
			fmt.Fprintf(stderr, "limitctl trace: %v\n", err)
			return 1
		}
	default:
		buf.Dump(stdout, 0)
	}
	return 0
}

// runStats runs one workload with the telemetry layer attached —
// kernel self-metrics, slot-ledger mirrors, and host-side limit read
// accounting — and emits the registry. Returns the process exit code.
func runStats(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limitctl stats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	method := fs.String("method", "limit", "access method: limit, perf, papi, rdtsc, sample, none")
	cores := fs.Int("cores", 4, "simulated core count")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	format := fs.String("format", "text", "output format: text, jsonl")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limitctl stats: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *format {
	case "text", "jsonl":
	default:
		fmt.Fprintf(stderr, "limitctl stats: unknown -format %q (text, jsonl)\n", *format)
		fs.Usage()
		return 2
	}

	ins, ok := buildInstrumentation(*method, 100_000)
	if !ok {
		fmt.Fprintf(stderr, "limitctl stats: unknown method %q (see -list)\n", *method)
		return 2
	}
	app := buildApp(*appName, ins, *scale)
	if app == nil {
		fmt.Fprintf(stderr, "limitctl stats: unknown app %q\n", *appName)
		return 2
	}

	reg := telemetry.NewRegistry()
	km := kernel.NewMetrics(reg)
	lm := limit.NewMetrics(reg)

	m := machine.New(machine.Config{NumCores: *cores})
	m.Kern.SetMetrics(km)
	limit.SetMetrics(lm)
	defer limit.SetMetrics(nil)

	app.Launch(m)
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintf(stderr, "limitctl stats: faults: %v\n", res.Faults)
		return 1
	}
	// Decode every thread's counters (workers spawn inside the
	// simulation, so walk the kernel's thread table, not Launch's
	// return) so the limit read split reflects the run's actual
	// exact/estimated mix.
	if ins.Active() {
		for _, t := range m.Kern.Threads() {
			for idx := range t.Counters() {
				limit.ThreadValue(t, idx)
			}
		}
	}

	if *format == "jsonl" {
		if err := reg.WriteJSONL(stdout); err != nil {
			fmt.Fprintf(stderr, "limitctl stats: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "%s on %d cores, method=%s: %s\n\n", app.Name, *cores, *method, res)
	reg.Render(stdout)
	return 0
}

// runTraced runs a workload with a tracer of capacity n attached and
// returns the buffer and machine, or a nonzero exit code on error.
func runTraced(appName, method string, cores int, scale float64, n int, period uint64, stderr io.Writer) (*trace.Buffer, *machine.Machine, int) {
	ins, ok := buildInstrumentation(method, period)
	if !ok {
		fmt.Fprintf(stderr, "limitctl trace: unknown method %q (see -list)\n", method)
		return nil, nil, 2
	}
	app := buildApp(appName, ins, scale)
	if app == nil {
		fmt.Fprintf(stderr, "limitctl trace: unknown app %q\n", appName)
		return nil, nil, 2
	}
	m := machine.New(machine.Config{NumCores: cores})
	buf := trace.NewBuffer(n)
	m.Kern.SetTracer(buf)
	app.Launch(m)
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintf(stderr, "limitctl trace: faults: %v\n", res.Faults)
		return nil, nil, 1
	}
	return buf, m, 0
}
