package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"

	"limitsim/internal/trace"
)

// traceArgs is a small deterministic workload for the subcommand
// tests: forkjoin finishes in a few hundred thousand cycles, and the
// sampling method raises real PMIs.
var traceArgs = []string{"-app", "forkjoin", "-method", "sample", "-scale", "0.3", "-period", "20000"}

func run(t *testing.T, f func(args []string, stdout, stderr io.Writer) int, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := f(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	return out.String()
}

func TestTraceGoldenDeterminism(t *testing.T) {
	for _, format := range []string{"text", "chrome", "jsonl"} {
		args := append(append([]string{}, traceArgs...), "-format", format)
		a := run(t, runTrace, args...)
		b := run(t, runTrace, args...)
		if a != b {
			t.Errorf("format=%s: two same-seed runs differ", format)
		}
		if a == "" {
			t.Errorf("format=%s: empty output", format)
		}
	}
}

func TestTraceChromeRoundTrip(t *testing.T) {
	chromeOut := run(t, runTrace, append(append([]string{}, traceArgs...), "-format", "chrome")...)
	jsonlOut := run(t, runTrace, append(append([]string{}, traceArgs...), "-format", "jsonl")...)

	// The chrome document must be independently valid JSON.
	var doc map[string]any
	if err := json.Unmarshal([]byte(chromeOut), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}

	fromChrome, err := trace.ParseChrome(strings.NewReader(chromeOut))
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := trace.ParseJSONL(strings.NewReader(jsonlOut))
	if err != nil {
		t.Fatal(err)
	}
	// Both exports encode the same deterministic run, so they must
	// parse back to the identical event sequence.
	if len(fromChrome) == 0 || len(fromChrome) != len(fromJSONL) {
		t.Fatalf("chrome %d events, jsonl %d", len(fromChrome), len(fromJSONL))
	}
	for i := range fromChrome {
		if fromChrome[i] != fromJSONL[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, fromChrome[i], fromJSONL[i])
		}
	}

	// A real run's trace must show scheduling, syscall and PMI events.
	seen := map[trace.Kind]bool{}
	for _, e := range fromChrome {
		seen[e.Kind] = true
	}
	for _, k := range []trace.Kind{trace.SwitchIn, trace.SwitchOut, trace.Syscall, trace.PMI} {
		if !seen[k] {
			t.Errorf("trace lacks %v events", k)
		}
	}
}

func TestStatsDeterminism(t *testing.T) {
	for _, format := range []string{"text", "jsonl"} {
		args := []string{"-app", "forkjoin", "-scale", "0.3", "-format", format}
		a := run(t, runStats, args...)
		b := run(t, runStats, args...)
		if a != b {
			t.Errorf("format=%s: two same-seed stats runs differ", format)
		}
		for _, want := range []string{"kern.syscalls", "kern.switch.out.cycles", "limit.reads.exact"} {
			if !strings.Contains(a, want) {
				t.Errorf("format=%s: output lacks %q", format, want)
			}
		}
	}
}

func TestStatsJSONLValid(t *testing.T) {
	out := run(t, runStats, "-app", "forkjoin", "-scale", "0.3", "-format", "jsonl")
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
	}
}

func TestHelpNamesEverySubcommand(t *testing.T) {
	var buf bytes.Buffer
	usage(&buf, flag.NewFlagSet("limitctl", flag.ContinueOnError))
	help := buf.String()
	if len(subcommands) < 4 {
		t.Fatalf("subcommand registry shrank to %d entries", len(subcommands))
	}
	for _, sc := range subcommands {
		if !strings.Contains(help, sc.Name) {
			t.Errorf("help does not name subcommand %q:\n%s", sc.Name, help)
		}
		if sc.Blurb == "" {
			t.Errorf("subcommand %q has no blurb", sc.Name)
		}
	}
	if !strings.Contains(help, "usage: limitctl") {
		t.Errorf("help lacks the usage line:\n%s", help)
	}
}

func TestRegistryRunnersMatchDispatch(t *testing.T) {
	// Every registry entry with a Run function must be one of the
	// in-process subcommand bodies the other tests exercise; entries
	// without one ("run", "list") are handled inline by main.
	byName := map[string]bool{}
	for _, sc := range subcommands {
		byName[sc.Name] = sc.Run != nil
	}
	if !byName["trace"] || !byName["stats"] {
		t.Error("trace and stats must carry Run functions")
	}
	if byName["run"] || byName["list"] {
		t.Error("run and list are inline dispatches, not Run functions")
	}
}

func TestUnknownFormatExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runTrace([]string{"-format", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("trace -format=bogus exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -format") || !strings.Contains(errb.String(), "Usage") {
		t.Errorf("trace error shape: %s", errb.String())
	}
	errb.Reset()
	if code := runStats([]string{"-format", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("stats -format=bogus exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -format") || !strings.Contains(errb.String(), "Usage") {
		t.Errorf("stats error shape: %s", errb.String())
	}
}

func TestUnknownAppAndMethodExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runTrace([]string{"-app", "nope"}, &out, &errb); code != 2 {
		t.Errorf("trace -app=nope exited %d, want 2", code)
	}
	if code := runStats([]string{"-method", "nope"}, &out, &errb); code != 2 {
		t.Errorf("stats -method=nope exited %d, want 2", code)
	}
}
