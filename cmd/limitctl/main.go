// Command limitctl runs one workload model under a chosen counter
// access method and dumps its measurements: scheduler statistics,
// per-thread synchronization profile, cycle decomposition, and (with
// -hist) the critical-section histogram. It is the repository's
// general inspection tool — the equivalent of running the paper's
// instrumented binaries by hand.
//
// Usage:
//
//	limitctl [run] -app mysql|mysql-3.23|mysql-4.1|mysql-5.1|apache|firefox
//	         [-method limit|perf|papi|rdtsc|sample|none]
//	         [-cores 4] [-scale 1.0] [-hist] [-threads]
//	limitctl list   (or -list)
//	limitctl trace [-app ...] [-format text|chrome|jsonl] [-n 4096]
//	limitctl stats [-app ...] [-format text|jsonl]
//	limitctl merge [-format text|jsonl] <file.jsonl> <file.jsonl> [...]
//	limitctl metrics [-app ...] [-rotation N] [-width N] [-metric cpi,ipc,...]
//	         [-tenants N] [-series -window N [-split none|tenant|thread]]
//	         [-format text|frames|jsonl]
//	limitctl report [-o out.html] [-profile f.jsonl] [-series f.jsonl]
//	         [-frames f.jsonl -window N] [-telemetry a.jsonl,b.jsonl] [-flame f.json]
//
// Bare "limitctl" (or -h) prints the help with the subcommand index
// and exits 0. -list/list prints the available event/counter
// configurations — PMU events, counter access methods, and hardware
// feature presets — and exits. The trace subcommand runs a workload
// with the kernel tracer attached and emits the event stream as text,
// Chrome trace-event JSON (Perfetto-loadable), or JSONL. The stats
// subcommand runs a workload with the telemetry layer attached and
// emits the kernel/pmu/limit self-metrics. The merge subcommand folds
// telemetry JSONL files (from stats -format jsonl, or shipped by fleet
// workers) into one registry with the campaign engines' commutative
// merge; schema drift between files exits 1 naming the metric. The
// metrics subcommand runs a workload with the full derived-metric
// event set opened as multiplexed groups and reports derived metrics
// over the scaled estimates — the raw per-rotation frame stream as
// JSONL with -format frames (tenant-stamped when -tenants is active),
// or a windowed time series with -series -window N. The report
// subcommand assembles one self-contained HTML artifact from
// measurement files on disk (profiler findings, windowed series,
// telemetry registries, flame spans) without running a simulation.
// Unknown subcommands, unknown -format values, unknown -metric names,
// a non-positive -window, merge with no input files, and report with
// no inputs exit 2 with usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/metrics"
	"limitsim/internal/pmu"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/trace"
	"limitsim/internal/workloads"
)

// methodBlurbs describes each counter access method for -list.
var methodBlurbs = map[probe.Kind]string{
	probe.KindNull:   "no instrumentation (baseline)",
	probe.KindRdtsc:  "timestamp-counter deltas, no event selection",
	probe.KindLimit:  "userspace rdpmc + virtualized 64-bit counters (the paper's patch)",
	probe.KindPerf:   "syscall-per-read perf counters, multiplexed past the hardware",
	probe.KindPAPI:   "PAPI-style layered reads over the perf path",
	probe.KindSample: "periodic overflow-interrupt sampling",
}

// buildInstrumentation resolves a -method value, or nil for unknown.
func buildInstrumentation(method string, period uint64) (workloads.Instrumentation, bool) {
	ins := workloads.Instrumentation{Kind: probe.Kind(method), SamplePeriod: period}
	if _, ok := methodBlurbs[ins.Kind]; !ok {
		return ins, false
	}
	if ins.Kind == probe.KindLimit {
		ins = workloads.LimitInstr()
	}
	return ins, true
}

// buildApp constructs a workload model by name at the given scale, or
// nil for an unknown name.
func buildApp(appName string, ins workloads.Instrumentation, scale float64) *workloads.App {
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch appName {
	case "mysql", "mysql-5.1":
		cfg := workloads.MySQLVersion("5.1")
		cfg.TxnsPerWorker = scaleN(cfg.TxnsPerWorker)
		return workloads.BuildMySQL(cfg, ins)
	case "mysql-3.23":
		cfg := workloads.MySQLVersion("3.23")
		cfg.TxnsPerWorker = scaleN(cfg.TxnsPerWorker)
		return workloads.BuildMySQL(cfg, ins)
	case "mysql-4.1":
		cfg := workloads.MySQLVersion("4.1")
		cfg.TxnsPerWorker = scaleN(cfg.TxnsPerWorker)
		return workloads.BuildMySQL(cfg, ins)
	case "apache":
		cfg := workloads.DefaultApache()
		cfg.RequestsPerWorker = scaleN(cfg.RequestsPerWorker)
		return workloads.BuildApache(cfg, ins)
	case "firefox":
		cfg := workloads.DefaultFirefox()
		cfg.EventsPerThread = scaleN(cfg.EventsPerThread)
		return workloads.BuildFirefox(cfg, ins)
	case "forkjoin":
		cfg := workloads.DefaultForkJoin()
		cfg.Iterations = scaleN(cfg.Iterations)
		return workloads.BuildForkJoin(cfg, ins)
	}
	return nil
}

// listConfigurations prints the available events, access methods and
// PMU feature presets.
func listConfigurations(w *os.File) {
	et := tabwrite.New("PMU events", "id", "event")
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		et.Row(int(ev), ev)
	}
	et.Render(w)

	mt := tabwrite.New("Counter access methods (-method)", "method", "description")
	for _, k := range probe.AllKinds() {
		mt.Row(string(k), methodBlurbs[k])
	}
	mt.Render(w)

	ft := tabwrite.New("PMU feature presets", "preset", "counters", "width", "write", "notes")
	for _, p := range []struct {
		name  string
		f     pmu.Features
		notes string
	}{
		{"stock", pmu.DefaultFeatures(), "2011-era x86 baseline"},
		{"e1-64bit", pmu.Enhanced64Bit(), "fully writable 64-bit counters"},
		{"e2-destructive", pmu.EnhancedDestructive(), "read-and-reset rdpmc"},
		{"e3-hw-virt", pmu.EnhancedHWVirtualization(), "per-thread counter state in hardware"},
	} {
		ft.Row(p.name, p.f.NumCounters, p.f.CounterWidth, p.f.WriteWidth, p.notes)
	}
	ft.Render(w)

	dt := tabwrite.New("Derived metrics (limitctl metrics -metric)", "metric", "definition", "description")
	for i := range metrics.Builtin {
		d := &metrics.Builtin[i]
		dt.Row(d.Name, d.Expr, d.Desc)
	}
	dt.Render(w)
}

// subcommands is the registry the dispatcher and the help text share;
// a subcommand added here is automatically named by -h.
var subcommands = []struct {
	Name  string
	Blurb string
	Run   func(args []string, stdout, stderr io.Writer) int
}{
	{"run", "run a workload and dump scheduler/sync measurements (the default; takes the flags below)", nil},
	{"list", "print available events, access methods and PMU presets (alias of -list)", nil},
	{"trace", "run with the kernel tracer attached; -format text|chrome|jsonl", runTrace},
	{"stats", "run with the telemetry layer attached; -format text|jsonl", runStats},
	{"merge", "fold telemetry JSONL files into one registry; drift between files is an error", runMerge},
	{"metrics", "run with multiplexed event groups and report derived metrics; -series -window N for time series; -format text|frames|jsonl", runMetrics},
	{"report", "assemble a self-contained HTML artifact from measurement files on disk", runReport},
}

// usage writes the flag help plus the subcommand index.
func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(w, "usage: limitctl [subcommand] [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "subcommands:")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  %-8s %s\n", sc.Name, sc.Blurb)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "flags:")
	fs.SetOutput(w)
	fs.PrintDefaults()
}

func main() {
	appName := flag.String("app", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	method := flag.String("method", "limit", "access method: limit, perf, papi, rdtsc, sample, none")
	cores := flag.Int("cores", 4, "simulated core count")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	hist := flag.Bool("hist", false, "print critical-section histogram")
	perThread := flag.Bool("threads", false, "print per-thread rows")
	period := flag.Uint64("period", 100_000, "sampling period (method=sample)")
	traceN := flag.Int("trace", 0, "dump the last N kernel trace events")
	list := flag.Bool("list", false, "list available events, access methods and PMU presets, then exit")
	flag.Usage = func() { usage(os.Stderr, flag.CommandLine) }

	// Bare "limitctl" prints the help (with the subcommand index) and
	// exits 0; running a workload is an explicit choice.
	if len(os.Args) == 1 {
		usage(os.Stdout, flag.CommandLine)
		return
	}

	// Subcommands dispatch before flag parsing; a leading non-flag
	// argument that names no subcommand exits 2 with usage, matching
	// the unknown-method convention.
	if len(os.Args[1]) > 0 && os.Args[1][0] != '-' {
		name := os.Args[1]
		rest := os.Args[2:]
		switch name {
		case "run":
			os.Args = append(os.Args[:1], rest...)
		case "list":
			listConfigurations(os.Stdout)
			return
		default:
			for _, sc := range subcommands {
				if sc.Name == name && sc.Run != nil {
					os.Exit(sc.Run(rest, os.Stdout, os.Stderr))
				}
			}
			fmt.Fprintf(os.Stderr, "limitctl: unknown subcommand %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limitctl: unknown subcommand %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *list {
		listConfigurations(os.Stdout)
		return
	}

	ins, ok := buildInstrumentation(*method, *period)
	if !ok {
		fmt.Fprintf(os.Stderr, "limitctl: unknown method %q (see -list)\n", *method)
		os.Exit(2)
	}

	app := buildApp(*appName, ins, *scale)
	if app == nil {
		fmt.Fprintf(os.Stderr, "limitctl: unknown app %q\n", *appName)
		os.Exit(2)
	}

	m := machine.New(machine.Config{NumCores: *cores})
	var traceBuf *trace.Buffer
	if *traceN > 0 {
		traceBuf = trace.NewBuffer(*traceN)
		m.Kern.SetTracer(traceBuf)
	}
	threads := app.Launch(m)
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 {
		fmt.Fprintf(os.Stderr, "limitctl: faults: %v\n", res.Faults)
		os.Exit(1)
	}

	fmt.Printf("%s on %d cores, method=%s: %s\n\n", app.Name, *cores, *method, res)

	kt := tabwrite.New("Kernel statistics", "metric", "value")
	st := m.Kern.Stats
	kt.Row("context switches", st.CtxSwitches)
	kt.Row("preemptions", st.Preemptions)
	kt.Row("migrations", st.Migrations)
	kt.Row("work steals", st.Steals)
	kt.Row("syscalls", st.Syscalls)
	kt.Row("PMIs", st.PMIs)
	kt.Row("overflow folds", st.OverflowFolds)
	kt.Row("signals sent", st.SignalsSent)
	kt.Row("samples captured", len(m.Kern.Samples()))
	kt.Render(os.Stdout)

	if !ins.Active() && ins.Kind != probe.KindSample {
		return
	}

	if ins.Kind == probe.KindSample {
		acq, cs, n := analysis.SampledShares(m.Kern.Samples(), app, *period)
		fmt.Printf("sampled attribution (%d samples): acquire %.1f%%, critical-section %.1f%%\n",
			n, acq*100, cs*100)
		return
	}

	p := analysis.CollectSync(app)
	d := p.Decompose()
	dt := tabwrite.New("Synchronization profile", "metric", "value")
	dt.Row("lock operations", p.OpsTotal())
	dt.Row("mean acquire (cycles)", p.Acq.Mean())
	dt.Row("median CS (cycles)", p.CS.Median())
	dt.Row("p99 CS (cycles)", p.CS.Percentile(99))
	dt.Row("acquire share", fmt.Sprintf("%.1f%%", d.AcquireShare*100))
	dt.Row("CS share", fmt.Sprintf("%.1f%%", d.CSShare*100))
	dt.Row("kernel share", fmt.Sprintf("%.1f%%", d.KernelShare*100))
	dt.Render(os.Stdout)

	if *perThread {
		tt := tabwrite.New("Per-thread", "thread", "ops", "acq cycles", "cs cycles", "total", "fixups", "switches")
		for i, ts := range p.Threads {
			tt.Row(ts.Name, ts.Ops, ts.AcqCycles, ts.CSCycles, ts.TotalCycles,
				threads[i].Stats.FixupRewinds, threads[i].Stats.CtxSwitches)
		}
		tt.Render(os.Stdout)
	}

	if *hist {
		ht := tabwrite.New("Critical-section length histogram (cycles)", "bucket", "count", "share", "")
		for _, row := range p.CSHist.Rows() {
			ht.Row(row.Label, row.Count, row.Share, tabwrite.Bar(row.Share, 40))
		}
		ht.Render(os.Stdout)
	}

	if traceBuf != nil {
		fmt.Printf("Kernel trace (last %d of %d events)\n", *traceN, traceBuf.Total())
		traceBuf.Dump(os.Stdout, *traceN)
	}
}
