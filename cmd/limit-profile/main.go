// Command limit-profile runs one workload model with the
// region-attribution profiler attached and emits its ranked bottleneck
// report — the paper's title use case as a tool. Every annotated
// region boundary (lock acquires, critical sections, request phases,
// syscall spans) reads a configurable multi-event LiMiT bundle; the
// report ranks regions by attributed self-cost and classifies each as
// memory-bound, compute-bound, kernel-bound or contention.
//
// Usage:
//
//	limit-profile -workload mysql|mysql-3.23|mysql-4.1|mysql-5.1|apache|firefox|forkjoin
//	              [-cores 4] [-scale 1.0]
//	              [-events cycles,cycles:k,l1d-miss,branch-miss]
//	              [-stride N | -budget 1.05]
//	              [-top 10] [-format text|markdown|jsonl]
//	              [-flame FILE] [-html FILE] [-hist] [-metrics] [-parallel N]
//
// -events takes a comma-separated bundle; a ":k" suffix counts the
// event across all rings (user+kernel) instead of user-only. The first
// event must be user-ring cycles. -stride measures every Nth boundary
// per region; -budget instead calibrates the stride from a short
// stride-1 run against an uninstrumented baseline so the projected
// slowdown stays under the budget (the F2 density curve is linear in
// 1/stride). -flame writes the self-time hierarchy as Chrome
// trace-event JSON, loadable in Perfetto. Output is byte-deterministic
// for a fixed flag set.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"limitsim/internal/machine"
	"limitsim/internal/pmu"
	"limitsim/internal/probe"
	"limitsim/internal/profile"
	"limitsim/internal/report"
	"limitsim/internal/runner"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
	"limitsim/internal/workloads"
)

func main() { os.Exit(runProfile(os.Args[1:], os.Stdout, os.Stderr)) }

// parseEvent resolves one -events element ("l1d-miss" or "cycles:k").
func parseEvent(s string) (profile.BundleEvent, error) {
	name, allRings := strings.CutSuffix(s, ":k")
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		if ev.String() == name {
			return profile.BundleEvent{Event: ev, AllRings: allRings}, nil
		}
	}
	return profile.BundleEvent{}, fmt.Errorf("unknown event %q", name)
}

// parseBundle resolves a comma-separated -events value.
func parseBundle(s string) ([]profile.BundleEvent, error) {
	var out []profile.BundleEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty bundle")
	}
	return out, nil
}

// buildWorkload constructs the named workload at the given scale, or
// nil for an unknown name.
func buildWorkload(name string, ins workloads.Instrumentation, scale float64) *workloads.App {
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch name {
	case "mysql", "mysql-5.1", "mysql-4.1", "mysql-3.23":
		ver := "5.1"
		if i := strings.IndexByte(name, '-'); i >= 0 {
			ver = name[i+1:]
		}
		cfg := workloads.MySQLVersion(ver)
		cfg.TxnsPerWorker = scaleN(cfg.TxnsPerWorker)
		return workloads.BuildMySQL(cfg, ins)
	case "apache":
		cfg := workloads.DefaultApache()
		cfg.RequestsPerWorker = scaleN(cfg.RequestsPerWorker)
		return workloads.BuildApache(cfg, ins)
	case "firefox":
		cfg := workloads.DefaultFirefox()
		cfg.EventsPerThread = scaleN(cfg.EventsPerThread)
		return workloads.BuildFirefox(cfg, ins)
	case "forkjoin":
		cfg := workloads.DefaultForkJoin()
		cfg.Iterations = scaleN(cfg.Iterations)
		return workloads.BuildForkJoin(cfg, ins)
	}
	return nil
}

// runCycles builds and runs one copy of the workload, returning the
// app and final machine cycle count.
func runCycles(name string, ins workloads.Instrumentation, scale float64, cores int, stderr io.Writer) (*workloads.App, uint64, int) {
	app := buildWorkload(name, ins, scale)
	if app == nil {
		fmt.Fprintf(stderr, "limit-profile: unknown workload %q\n", name)
		return nil, 0, 2
	}
	m := machine.New(machine.Config{NumCores: cores})
	app.Launch(m)
	res := m.Run(machine.RunLimits{})
	if res.Err != nil {
		fmt.Fprintf(stderr, "limit-profile: %s: %v\n", name, res.Err)
		return nil, 0, 1
	}
	return app, res.Cycles, 0
}

// calibrateStride runs a short uninstrumented baseline and a stride-1
// profiled run at reduced scale — the two A/B arms fan out across the
// runner engine — then picks the stride that keeps the projected
// slowdown under budget.
func calibrateStride(name string, spec profile.Spec, scale float64, cores, parallel int, budget float64, stdout, stderr io.Writer) (int, int) {
	calScale := scale * 0.25
	if buildWorkload(name, workloads.Instrumentation{Kind: probe.KindNull}, calScale) == nil {
		fmt.Fprintf(stderr, "limit-profile: unknown workload %q\n", name)
		return 0, 2
	}
	calSpec := spec
	calSpec.Stride = 1
	arms := []workloads.Instrumentation{
		{Kind: probe.KindNull},
		workloads.ProfileInstr(calSpec),
	}
	cycles, err := runner.Map(runner.Config{Jobs: len(arms), Parallel: parallel}, func(j, _ int) (uint64, error) {
		app := buildWorkload(name, arms[j], calScale)
		m := machine.New(machine.Config{NumCores: cores})
		app.Launch(m)
		res := m.Run(machine.RunLimits{})
		if res.Err != nil {
			return 0, res.Err
		}
		return res.Cycles, nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "limit-profile: %s: %v\n", name, err)
		return 0, 1
	}
	slowdown := float64(cycles[1]) / float64(cycles[0])
	stride := profile.StrideForBudget(slowdown, budget)
	fmt.Fprintf(stdout, "calibration: stride-1 slowdown %.3fx -> stride %d for budget %.3fx\n\n",
		slowdown, stride, budget)
	return stride, 0
}

// runProfile is the CLI body; split from main so the tests run it
// in-process and assert byte-level determinism of stdout.
func runProfile(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("limit-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "mysql", "workload: mysql[-3.23|-4.1|-5.1], apache, firefox, forkjoin")
	cores := fs.Int("cores", 4, "simulated core count")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	events := fs.String("events", "", `bundle as CSV; ":k" suffix = all rings (default cycles,cycles:k,l1d-miss,branch-miss)`)
	stride := fs.Int("stride", 1, "measure every Nth boundary per region")
	budget := fs.Float64("budget", 0, "target slowdown bound (e.g. 1.05); >0 calibrates the stride")
	top := fs.Int("top", 10, "rows in the ranked report")
	format := fs.String("format", "text", "output format: text, markdown, jsonl")
	flame := fs.String("flame", "", "write the self-time hierarchy as Chrome trace JSON to FILE")
	htmlOut := fs.String("html", "", "write a self-contained HTML report (ranked table + flame) to FILE")
	hist := fs.Bool("hist", false, "append per-region latency histograms (text format)")
	metrics := fs.Bool("metrics", false, "append the profiler's telemetry registry (text format)")
	parallel := fs.Int("parallel", 0, "worker count calibration arms fan out across (0 = GOMAXPROCS, 1 = serial); output is byte-identical at every width")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "limit-profile: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	switch *format {
	case "text", "markdown", "jsonl":
	default:
		fmt.Fprintf(stderr, "limit-profile: unknown -format %q (text, markdown, jsonl)\n", *format)
		fs.Usage()
		return 2
	}

	spec := profile.DefaultSpec()
	if *events != "" {
		bundle, err := parseBundle(*events)
		if err != nil {
			fmt.Fprintf(stderr, "limit-profile: -events: %v\n", err)
			return 2
		}
		spec.Events = bundle
	}
	if len(spec.Events) == 0 || !(spec.Events[0] == profile.BundleEvent{Event: pmu.EvCycles}) {
		fmt.Fprintf(stderr, "limit-profile: the first bundle event must be user-ring cycles\n")
		return 2
	}
	if *stride < 1 {
		fmt.Fprintf(stderr, "limit-profile: -stride must be >= 1\n")
		return 2
	}
	spec.Stride = *stride

	if *budget > 0 {
		s, code := calibrateStride(*workload, spec, *scale, *cores, *parallel, *budget, stdout, stderr)
		if code != 0 {
			return code
		}
		spec.Stride = s
	}

	app, _, code := runCycles(*workload, workloads.ProfileInstr(spec), *scale, *cores, stderr)
	if code != 0 {
		return code
	}
	prof, err := workloads.CollectProfile(app)
	if err != nil {
		fmt.Fprintf(stderr, "limit-profile: %v\n", err)
		return 1
	}
	rep := profile.NewReport(prof)

	switch *format {
	case "markdown":
		rep.RenderMarkdown(stdout, *top)
	case "jsonl":
		if err := rep.WriteJSONL(stdout); err != nil {
			fmt.Fprintf(stderr, "limit-profile: %v\n", err)
			return 1
		}
	default:
		rep.RenderText(stdout, *top)
		if *hist {
			fmt.Fprintln(stdout)
			rep.RenderHistograms(stdout)
		}
		if *metrics {
			reg := telemetry.NewRegistry()
			prof.Account(profile.NewMetrics(reg))
			fmt.Fprintln(stdout)
			reg.Render(stdout)
		}
	}

	if *flame != "" {
		f, err := os.Create(*flame)
		if err != nil {
			fmt.Fprintf(stderr, "limit-profile: %v\n", err)
			return 1
		}
		werr := trace.WriteChromeSpans(f, prof.FlameSpans(), 0)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(stderr, "limit-profile: writing %s: %v%v\n", *flame, werr, cerr)
			return 1
		}
	}

	if *htmlOut != "" {
		a := report.New(
			fmt.Sprintf("Bottleneck profile: %s", prof.App),
			fmt.Sprintf("stride %d, %d threads", prof.Spec.Stride, prof.Threads))
		self := &profile.SelfCostRecord{SelfCycles: rep.Self.Pair(), PairVsBareRatio: rep.Self.Ratio()}
		a.AddFindings("Ranked bottlenecks", rep.Records(), self)
		a.AddFlame("Flame view", prof.FlameSpans())
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(stderr, "limit-profile: %v\n", err)
			return 1
		}
		werr := a.Render(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(stderr, "limit-profile: writing %s: %v%v\n", *htmlOut, werr, cerr)
			return 1
		}
	}
	return 0
}
