package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"limitsim/internal/trace"
)

func run(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := runProfile(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	return out.String()
}

// profileArgs keeps the test workload small but large enough that the
// known-answer ranking is stable.
var profileArgs = []string{"-workload", "mysql", "-scale", "0.3"}

func TestGoldenDeterminism(t *testing.T) {
	for _, format := range []string{"text", "markdown", "jsonl"} {
		args := append(append([]string{}, profileArgs...), "-format", format)
		a := run(t, args...)
		b := run(t, args...)
		if a != b {
			t.Errorf("format=%s: two same-seed runs differ", format)
		}
		if a == "" {
			t.Errorf("format=%s: empty output", format)
		}
	}
}

func TestMySQLKnownAnswer(t *testing.T) {
	out := run(t, profileArgs...)
	lines := strings.Split(out, "\n")
	var rank1 string
	for _, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), "1 ") {
			rank1 = ln
			break
		}
	}
	if !strings.Contains(rank1, "txn/table.cs") || !strings.Contains(rank1, "memory-bound") {
		t.Errorf("mysql rank-1 row should be txn/table.cs memory-bound, got %q", rank1)
	}
	for _, want := range []string{"profiler self-cost", "vs bare 4-event LiMiT read pair"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}

func TestJSONLValid(t *testing.T) {
	out := run(t, append(append([]string{}, profileArgs...), "-format", "jsonl")...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl output too short: %d lines", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
	}
}

func TestFlameExportLoadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flame.json")
	run(t, append(append([]string{}, profileArgs...), "-flame", path)...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("flame export is not valid JSON: %v", err)
	}
	spans, err := trace.ParseChromeSpans(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Error("flame export holds no spans")
	}
}

func TestBudgetModePicksAStride(t *testing.T) {
	out := run(t, "-workload", "forkjoin", "-scale", "0.3", "-budget", "1.10")
	if !strings.Contains(out, "calibration: stride-1 slowdown") {
		t.Errorf("budget mode must disclose its calibration, got:\n%s", out)
	}
	if !strings.Contains(out, "for budget 1.100x") {
		t.Errorf("calibration line lacks the budget, got:\n%s", out)
	}
}

func TestCustomBundle(t *testing.T) {
	out := run(t, "-workload", "forkjoin", "-scale", "0.3",
		"-events", "cycles,cycles:k,llc-miss")
	if !strings.Contains(out, "Bottleneck profile") {
		t.Errorf("custom bundle run produced no report:\n%s", out)
	}
}

func TestBadInputsExit2(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-format", "bogus"},
		{"-events", "no-such-event"},
		{"-events", "l1d-miss,cycles"}, // cycles must come first
		{"-stride", "0"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := runProfile(args, &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestHistAndMetricsRender(t *testing.T) {
	out := run(t, "-workload", "forkjoin", "-scale", "0.3", "-hist", "-metrics")
	for _, want := range []string{"[2^", "profile.pairs", "profile.self.cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

// The -html artifact is byte-deterministic: across repeated runs, and
// across calibration fan-out widths (the runner must keep parallelism
// invisible all the way into the report bytes).
func TestHTMLReportDeterministic(t *testing.T) {
	dir := t.TempDir()
	render := func(name string, extra ...string) string {
		path := filepath.Join(dir, name)
		args := append(append([]string{}, profileArgs...), "-html", path)
		run(t, append(args, extra...)...)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a := render("a.html")
	b := render("b.html")
	if a != b {
		t.Error("two same-seed HTML reports differ")
	}
	if !strings.HasPrefix(a, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	for _, want := range []string{"Ranked bottlenecks", "Flame view", "<svg", "profiler self-cost"} {
		if !strings.Contains(a, want) {
			t.Errorf("HTML report lacks %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "<script"} {
		if strings.Contains(a, banned) {
			t.Errorf("HTML report contains %q — not self-contained", banned)
		}
	}

	serial := render("serial.html", "-budget", "1.10", "-parallel", "1")
	wide := render("wide.html", "-budget", "1.10", "-parallel", "8")
	if serial != wide {
		t.Error("calibration fan-out width changed the HTML report bytes")
	}
}
