// Command limit-experiments runs the complete reproduction — every
// table and figure from DESIGN.md's per-experiment index — and writes
// the results either as plain text (default) or as the Markdown body
// used in EXPERIMENTS.md (-markdown).
//
// Usage:
//
//	limit-experiments [-scale 1.0] [-markdown]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"limitsim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	markdown := flag.Bool("markdown", false, "emit Markdown section wrappers")
	flag.Parse()

	s := experiments.Scale(*scale)
	w := os.Stdout

	section := func(title string, render func(io.Writer)) {
		if *markdown {
			fmt.Fprintf(w, "### %s\n\n```text\n", title)
			render(w)
			fmt.Fprintf(w, "```\n\n")
			return
		}
		fmt.Fprintf(w, "%s\n%s\n\n", title, strings.Repeat("#", len(title)))
		render(w)
	}

	section("T1 — Access-method cost", func(w io.Writer) { experiments.RunTable1(s).Render(w) })
	section("T2 — Read-sequence breakdown", func(w io.Writer) { experiments.RunTable2(s).Render(w) })
	section("T3 — Context-switch cost", func(w io.Writer) { experiments.RunTable3(s).Render(w) })
	section("F1 — Measurement self-perturbation", func(w io.Writer) { experiments.RunFig1(s).Render(w) })
	section("F2 — Slowdown vs instrumentation density", func(w io.Writer) { experiments.RunFig2(s).Render(w) })

	cs := experiments.RunCaseStudies(s)
	section("F3 — Critical-section length distributions", cs.RenderFig3)
	section("F4 — Cycle decomposition", cs.RenderFig4)
	section("F6 — Kernel vs user cycles", cs.RenderFig6)
	section("F5 — MySQL longitudinal", func(w io.Writer) { experiments.RunFig5(s).Render(w) })
	section("T4 — Sampling vs precise attribution", func(w io.Writer) { experiments.RunTable4(s).Render(w) })
	section("T5 — Counter multiplexing estimation error", func(w io.Writer) { experiments.RunTable5(s).Render(w) })
	section("F7 — Hardware-counter enhancements", func(w io.Writer) { experiments.RunFig7(s).Render(w) })
	section("F8 — Bottleneck identification (multi-event)", func(w io.Writer) { experiments.RunFig8(s).Render(w) })
	section("F9 — Consolidation interference", func(w io.Writer) { experiments.RunFig9(s).Render(w) })

	section("A1 — Overflow folding mechanism", func(w io.Writer) { experiments.RunAblationOverflow(s).Render(w) })
	section("A2 — Quantum vs PC-rewind rate", func(w io.Writer) { experiments.RunAblationQuantum(s).Render(w) })
	section("A3 — Mutex spin budget", func(w io.Writer) { experiments.RunAblationSpins(s).Render(w) })
	section("A4 — Scheduler placement policy", func(w io.Writer) { experiments.RunAblationScheduler(s).Render(w) })
}
