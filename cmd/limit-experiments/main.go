// Command limit-experiments runs the complete reproduction — every
// table and figure from DESIGN.md's per-experiment index — and writes
// the results either as plain text (default) or as the Markdown body
// used in EXPERIMENTS.md (-markdown).
//
// A failed experiment (faulted or deadlocked simulation) no longer
// aborts the whole reproduction: the section reports the error, the
// kernel trace tail (when available) goes to stderr, the remaining
// sections still run, and the process exits nonzero.
//
// Usage:
//
//	limit-experiments [-scale 1.0] [-markdown] [-parallel N] [-only PREFIX]
//
// -parallel fans each experiment's independent trials out across N
// workers (0, the default, uses GOMAXPROCS; 1 selects the serial
// engine). Trials are self-contained simulations and results land in
// trial-index order, so every table and figure is byte-identical at
// every width.
//
// -only runs just the sections whose title starts with the given
// prefix (case-insensitive), e.g. -only M2 or -only "F5". Sections not
// selected are skipped entirely — their simulations never run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"limitsim/internal/experiments"
	"limitsim/internal/machine"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	markdown := flag.Bool("markdown", false, "emit Markdown section wrappers")
	parallel := flag.Int("parallel", 0, "worker count trials fan out across (0 = GOMAXPROCS, 1 = serial); output is byte-identical at every width")
	only := flag.String("only", "", "run only sections whose title starts with this prefix (case-insensitive)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-experiments: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	experiments.SetParallel(*parallel)
	s := experiments.Scale(*scale)
	w := os.Stdout
	failed := 0

	report := func(title string, err error) {
		failed++
		fmt.Fprintf(os.Stderr, "limit-experiments: %s: %v\n", title, err)
		var fe *machine.FaultError
		if errors.As(err, &fe) {
			fmt.Fprintln(os.Stderr, "kernel trace tail:")
			fe.DumpTrace(os.Stderr, 40)
		}
	}

	section := func(title string, render func(io.Writer) error) {
		if *only != "" && !strings.HasPrefix(strings.ToLower(title), strings.ToLower(*only)) {
			return
		}
		if *markdown {
			fmt.Fprintf(w, "### %s\n\n```text\n", title)
			if err := render(w); err != nil {
				fmt.Fprintf(w, "(experiment failed: %v)\n", err)
				report(title, err)
			}
			fmt.Fprintf(w, "```\n\n")
			return
		}
		fmt.Fprintf(w, "%s\n%s\n\n", title, strings.Repeat("#", len(title)))
		if err := render(w); err != nil {
			fmt.Fprintf(w, "(experiment failed: %v)\n", err)
			report(title, err)
		}
	}

	section("T1 — Access-method cost", func(w io.Writer) error {
		r, err := experiments.RunTable1(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("T2 — Read-sequence breakdown", func(w io.Writer) error {
		r, err := experiments.RunTable2(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("T3 — Context-switch cost", func(w io.Writer) error {
		r, err := experiments.RunTable3(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("S1 — Self-measurement (LiMiT measuring LiMiT)", func(w io.Writer) error {
		r, err := experiments.RunSelfMeasure(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("F1 — Measurement self-perturbation", func(w io.Writer) error {
		r, err := experiments.RunFig1(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("F2 — Slowdown vs instrumentation density", func(w io.Writer) error {
		r, err := experiments.RunFig2(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})

	// Case studies run lazily on first use, so -only selections that
	// skip F3/F4/F6 never pay for them.
	var cs *experiments.CaseStudyResult
	var csErr error
	csDone := false
	getCS := func() (*experiments.CaseStudyResult, error) {
		if !csDone {
			csDone = true
			cs, csErr = experiments.RunCaseStudies(s)
		}
		return cs, csErr
	}
	renderCS := func(f func(r *experiments.CaseStudyResult, w io.Writer)) func(io.Writer) error {
		return func(w io.Writer) error {
			r, err := getCS()
			if err != nil {
				return err
			}
			f(r, w)
			return nil
		}
	}
	section("F3 — Critical-section length distributions",
		renderCS(func(r *experiments.CaseStudyResult, w io.Writer) { r.RenderFig3(w) }))
	section("F4 — Cycle decomposition",
		renderCS(func(r *experiments.CaseStudyResult, w io.Writer) { r.RenderFig4(w) }))
	section("F6 — Kernel vs user cycles",
		renderCS(func(r *experiments.CaseStudyResult, w io.Writer) { r.RenderFig6(w) }))
	section("F5 — MySQL longitudinal", func(w io.Writer) error {
		r, err := experiments.RunFig5(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("T4 — Sampling vs precise attribution", func(w io.Writer) error {
		r, err := experiments.RunTable4(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("T5 — Counter multiplexing estimation error", func(w io.Writer) error {
		r, err := experiments.RunTable5(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("F7 — Hardware-counter enhancements", func(w io.Writer) error {
		r, err := experiments.RunFig7(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("F8 — Bottleneck identification (multi-event)", func(w io.Writer) error {
		r, err := experiments.RunFig8(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("F9 — Consolidation interference", func(w io.Writer) error {
		r, err := experiments.RunFig9(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})

	section("A1 — Overflow folding mechanism", func(w io.Writer) error {
		r, err := experiments.RunAblationOverflow(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("A2 — Quantum vs PC-rewind rate", func(w io.Writer) error {
		r, err := experiments.RunAblationQuantum(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("A3 — Mutex spin budget", func(w io.Writer) error {
		r, err := experiments.RunAblationSpins(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("A4 — Scheduler placement policy", func(w io.Writer) error {
		r, err := experiments.RunAblationScheduler(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	})
	section("M1 — Multi-tenant attribution under the double context switch", func(w io.Writer) error {
		r, err := experiments.RunM1(s)
		if err != nil {
			return err
		}
		r.Render(w)
		if !r.Clean() {
			return errors.New("tenant attribution oracles reported violations")
		}
		return nil
	})
	section("M2 — Multiplexed-estimate error vs exact LiMiT reads", func(w io.Writer) error {
		r, err := experiments.RunM2(s)
		if err != nil {
			return err
		}
		r.Render(w)
		if !r.Clean() {
			return errors.New("group accounting oracles reported violations")
		}
		return nil
	})

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "limit-experiments: %d section(s) failed\n", failed)
		os.Exit(1)
	}
}
