// Command limit-ablate runs the design-choice ablations called out in
// DESIGN.md:
//
//	A1  overflow folding mechanism (kernel fold vs userspace signal)
//	A2  scheduler quantum vs PC-rewind rate (correctness invariant)
//	A3  mutex spin budget on the MySQL model
//	A4  scheduler placement policy (migration / work stealing)
//
// Usage:
//
//	limit-ablate [-scale 1.0] [-a1] [-a2] [-a3] [-a4]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"os"

	"limitsim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	a1 := flag.Bool("a1", false, "run A1: overflow folding mechanism")
	a2 := flag.Bool("a2", false, "run A2: quantum vs rewind rate")
	a3 := flag.Bool("a3", false, "run A3: spin budget")
	a4 := flag.Bool("a4", false, "run A4: scheduler policy")
	flag.Parse()

	all := !(*a1 || *a2 || *a3 || *a4)
	s := experiments.Scale(*scale)
	w := os.Stdout

	if all || *a1 {
		experiments.RunAblationOverflow(s).Render(w)
	}
	if all || *a2 {
		experiments.RunAblationQuantum(s).Render(w)
	}
	if all || *a3 {
		experiments.RunAblationSpins(s).Render(w)
	}
	if all || *a4 {
		experiments.RunAblationScheduler(s).Render(w)
	}
}
