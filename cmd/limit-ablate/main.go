// Command limit-ablate runs the design-choice ablations called out in
// DESIGN.md:
//
//	A1  overflow folding mechanism (kernel fold vs userspace signal)
//	A2  scheduler quantum vs PC-rewind rate (correctness invariant)
//	A3  mutex spin budget on the MySQL model
//	A4  scheduler placement policy (migration / work stealing)
//
// Usage:
//
//	limit-ablate [-scale 1.0] [-a1] [-a2] [-a3] [-a4]
//
// With no selection flags, everything runs. A failed ablation prints
// its error (and the kernel trace tail when available), the remaining
// selections still run, and the process exits nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"limitsim/internal/experiments"
	"limitsim/internal/machine"
)

// renderer is any experiment result that can write itself.
type renderer interface{ Render(io.Writer) }

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor")
	a1 := flag.Bool("a1", false, "run A1: overflow folding mechanism")
	a2 := flag.Bool("a2", false, "run A2: quantum vs rewind rate")
	a3 := flag.Bool("a3", false, "run A3: spin budget")
	a4 := flag.Bool("a4", false, "run A4: scheduler policy")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-ablate: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	all := !(*a1 || *a2 || *a3 || *a4)
	s := experiments.Scale(*scale)
	w := os.Stdout
	failed := 0

	show := func(r renderer, err error) {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "limit-ablate: %v\n", err)
			var fe *machine.FaultError
			if errors.As(err, &fe) {
				fmt.Fprintln(os.Stderr, "kernel trace tail:")
				fe.DumpTrace(os.Stderr, 40)
			}
			return
		}
		r.Render(w)
	}

	if all || *a1 {
		r, err := experiments.RunAblationOverflow(s)
		show(r, err)
	}
	if all || *a2 {
		r, err := experiments.RunAblationQuantum(s)
		show(r, err)
	}
	if all || *a3 {
		r, err := experiments.RunAblationSpins(s)
		show(r, err)
	}
	if all || *a4 {
		r, err := experiments.RunAblationScheduler(s)
		show(r, err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
