// Command limit-overhead regenerates the access-cost and overhead
// artifacts: Table 1 (per-read cost of each access method), Table 2
// (LiMiT read-sequence breakdown), Table 3 (context-switch cost under
// counter virtualization), Figure 1 (measurement self-perturbation),
// Figure 2 (slowdown vs instrumentation density) and Table 4 (sampling
// vs precise attribution).
//
// Usage:
//
//	limit-overhead [-scale 1.0] [-table1] [-table2] [-table3] [-fig1] [-fig2] [-table4]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"os"

	"limitsim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	t1 := flag.Bool("table1", false, "run Table 1: access-method cost")
	t2 := flag.Bool("table2", false, "run Table 2: read-sequence breakdown")
	t3 := flag.Bool("table3", false, "run Table 3: context-switch cost")
	f1 := flag.Bool("fig1", false, "run Figure 1: self-perturbation")
	f2 := flag.Bool("fig2", false, "run Figure 2: slowdown vs density")
	t4 := flag.Bool("table4", false, "run Table 4: sampling vs precise")
	t5 := flag.Bool("table5", false, "run Table 5: multiplexing error")
	flag.Parse()

	all := !(*t1 || *t2 || *t3 || *f1 || *f2 || *t4 || *t5)
	s := experiments.Scale(*scale)
	w := os.Stdout

	if all || *t1 {
		experiments.RunTable1(s).Render(w)
	}
	if all || *t2 {
		experiments.RunTable2(s).Render(w)
	}
	if all || *t3 {
		experiments.RunTable3(s).Render(w)
	}
	if all || *f1 {
		experiments.RunFig1(s).Render(w)
	}
	if all || *f2 {
		experiments.RunFig2(s).Render(w)
	}
	if all || *t4 {
		experiments.RunTable4(s).Render(w)
	}
	if all || *t5 {
		experiments.RunTable5(s).Render(w)
	}
}
