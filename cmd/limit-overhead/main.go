// Command limit-overhead regenerates the access-cost and overhead
// artifacts: Table 1 (per-read cost of each access method), Table 2
// (LiMiT read-sequence breakdown), Table 3 (context-switch cost under
// counter virtualization), Figure 1 (measurement self-perturbation),
// Figure 2 (slowdown vs instrumentation density) and Table 4 (sampling
// vs precise attribution).
//
// Usage:
//
//	limit-overhead [-scale 1.0] [-table1] [-table2] [-table3] [-fig1] [-fig2] [-table4]
//
// With no selection flags, everything runs. A failed experiment prints
// its error (and the kernel trace tail when available), the remaining
// selections still run, and the process exits nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"limitsim/internal/experiments"
	"limitsim/internal/machine"
)

// renderer is any experiment result that can write itself.
type renderer interface{ Render(io.Writer) }

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	t1 := flag.Bool("table1", false, "run Table 1: access-method cost")
	t2 := flag.Bool("table2", false, "run Table 2: read-sequence breakdown")
	t3 := flag.Bool("table3", false, "run Table 3: context-switch cost")
	f1 := flag.Bool("fig1", false, "run Figure 1: self-perturbation")
	f2 := flag.Bool("fig2", false, "run Figure 2: slowdown vs density")
	t4 := flag.Bool("table4", false, "run Table 4: sampling vs precise")
	t5 := flag.Bool("table5", false, "run Table 5: multiplexing error")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-overhead: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	all := !(*t1 || *t2 || *t3 || *f1 || *f2 || *t4 || *t5)
	s := experiments.Scale(*scale)
	w := os.Stdout
	failed := 0

	show := func(r renderer, err error) {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "limit-overhead: %v\n", err)
			var fe *machine.FaultError
			if errors.As(err, &fe) {
				fmt.Fprintln(os.Stderr, "kernel trace tail:")
				fe.DumpTrace(os.Stderr, 40)
			}
			return
		}
		r.Render(w)
	}

	if all || *t1 {
		r, err := experiments.RunTable1(s)
		show(r, err)
	}
	if all || *t2 {
		r, err := experiments.RunTable2(s)
		show(r, err)
	}
	if all || *t3 {
		r, err := experiments.RunTable3(s)
		show(r, err)
	}
	if all || *f1 {
		r, err := experiments.RunFig1(s)
		show(r, err)
	}
	if all || *f2 {
		r, err := experiments.RunFig2(s)
		show(r, err)
	}
	if all || *t4 {
		r, err := experiments.RunTable4(s)
		show(r, err)
	}
	if all || *t5 {
		r, err := experiments.RunTable5(s)
		show(r, err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
