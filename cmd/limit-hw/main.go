// Command limit-hw regenerates Figure 7: the paper's three proposed
// hardware-counter enhancements — 64-bit writable counters (e1),
// destructive reads (e2) and hardware counter virtualization (e3) —
// measured against stock hardware and the lock-based software
// alternative.
//
// Usage:
//
//	limit-hw [-scale 1.0]
package main

import (
	"flag"
	"os"

	"limitsim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	flag.Parse()
	experiments.RunFig7(experiments.Scale(*scale)).Render(os.Stdout)
}
