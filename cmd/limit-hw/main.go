// Command limit-hw regenerates Figure 7: the paper's three proposed
// hardware-counter enhancements — 64-bit writable counters (e1),
// destructive reads (e2) and hardware counter virtualization (e3) —
// measured against stock hardware and the lock-based software
// alternative.
//
// Usage:
//
//	limit-hw [-scale 1.0]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"limitsim/internal/experiments"
	"limitsim/internal/machine"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-hw: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	r, err := experiments.RunFig7(experiments.Scale(*scale))
	if err != nil {
		fmt.Fprintf(os.Stderr, "limit-hw: %v\n", err)
		var fe *machine.FaultError
		if errors.As(err, &fe) {
			fmt.Fprintln(os.Stderr, "kernel trace tail:")
			fe.DumpTrace(os.Stderr, 40)
		}
		os.Exit(1)
	}
	r.Render(os.Stdout)
}
