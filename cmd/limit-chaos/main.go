// Command limit-chaos runs seeded fault-injection campaigns against
// the LiMiT read path: N seeds × a fault-mix matrix (forced preemption
// inside read-critical regions, spurious/delayed/coalesced overflow
// interrupts, migration storms, signal delays, TLB+cache flush storms)
// on a PMU with narrowed writable counters, with the invariant checker
// attached to every run.
//
// Usage:
//
//	limit-chaos [-seeds 32] [-threads 4] [-cores 4] [-iters 400]
//	            [-k 25] [-width 12] [-nofixup]
//
// With the fixup patch active (the default) the campaign must finish
// with zero invariant violations — that is the paper's atomicity claim
// under adversarial schedules, and the process exits nonzero if it
// breaks. With -nofixup the same campaign must *detect* torn reads:
// the process exits nonzero if the sabotaged configuration somehow
// reports none (a dead checker is as bad as a torn read).
package main

import (
	"flag"
	"fmt"
	"os"

	"limitsim/internal/chaos"
)

func main() {
	seeds := flag.Int("seeds", 32, "seeds per fault mix")
	threads := flag.Int("threads", 6, "workload threads")
	cores := flag.Int("cores", 4, "machine cores")
	iters := flag.Int("iters", 400, "reads per thread")
	k := flag.Int("k", 25, "compute instructions per measured region")
	width := flag.Int("width", 12, "PMU writable counter width in bits (narrow = frequent folds)")
	nofixup := flag.Bool("nofixup", false, "disable fixup-region registration (ablation: torn reads expected)")
	flag.Parse()

	res := chaos.Run(chaos.Config{
		Seeds:      *seeds,
		Threads:    *threads,
		Cores:      *cores,
		Iters:      *iters,
		ComputeK:   *k,
		WriteWidth: *width,
		NoFixup:    *nofixup,
	})
	res.Render(os.Stdout)

	violations := res.TotalViolations()
	errs := res.TotalRunErrors()
	switch {
	case errs > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d run(s) failed\n", errs)
		os.Exit(1)
	case *nofixup && violations == 0:
		fmt.Fprintln(os.Stderr, "limit-chaos: fixup disabled but no torn reads detected — checker is blind")
		os.Exit(1)
	case !*nofixup && violations > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d invariant violation(s) with fixup enabled\n", violations)
		os.Exit(1)
	}
	if *nofixup {
		fmt.Printf("detected %d torn-read/invariant violation(s) with fixup disabled, as expected\n", violations)
	} else {
		fmt.Println("all invariants held under the full fault mix")
	}
}
