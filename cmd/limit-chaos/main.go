// Command limit-chaos runs seeded fault-injection campaigns against
// the LiMiT read path: N seeds × a fault-mix matrix (forced preemption
// inside read-critical regions, spurious/delayed/coalesced overflow
// interrupts, migration storms, signal delays, TLB+cache flush storms)
// on a PMU with narrowed writable counters, with the invariant checker
// attached to every run.
//
// Usage:
//
//	limit-chaos [-seeds 32] [-threads 4] [-cores 4] [-iters 400]
//	            [-k 25] [-width 12] [-tenants N] [-mix NAME]
//	            [-nofixup] [-metrics] [-parallel N]
//	limit-chaos -soak [-seeds 8] [-pool 4] [-waves 6] [-iters 40]
//	            [-k 20] [-cores 4] [-width 10] [-capacity N]
//	            [-tenants N] [-mix NAME]
//	            [-nofixup] [-ablate-reclaim] [-metrics] [-parallel N]
//
// -tenants N (N > 1) activates the kernel's guest-scheduler layer: the
// workload's threads are dealt across N tenant VMs that time-share the
// cores under a second scheduling level, every run carries a shared
// socket uncore counter block, the fault matrix switches to the
// vCPU-preemption mixes, and the per-tenant attribution oracles
// (conservation, no cross-tenant leakage, uncore share bounds) run
// after every run. The report gains a tenant-layer table quantifying
// double context switches and the share-by-cycles attribution error.
//
// -mix NAME restricts the campaign to the single named fault mix; an
// unknown name prints the available mixes and exits 2.
//
// -parallel fans independent runs out across N workers (0, the
// default, uses GOMAXPROCS; 1 selects the serial engine). Runs are
// self-contained simulations whose outcomes merge in (mix, seed) key
// order, so the report is byte-identical at every width.
//
// -metrics attaches the kernel telemetry layer to every run and
// appends the campaign-wide merged metrics block (context-switch and
// PMI-latency histograms, rewind/fold/denial counters) to the report;
// like the rest of the report it is byte-deterministic for a given
// configuration.
//
// With the fixup patch active (the default) a campaign must finish
// with zero invariant violations — that is the paper's atomicity claim
// under adversarial schedules, and the process exits nonzero if it
// breaks. With -nofixup the same campaign must *detect* torn reads:
// the process exits nonzero if the sabotaged configuration somehow
// reports none (a dead checker is as bad as a torn read).
//
// -soak switches to the lifecycle soak campaign: a churning
// thread-pool workload (a manager cloning and joining waves of
// short-lived workers) under kill storms, clone storms and pinned-slot
// exhaustion, audited for leak-freedom, inheritance conservation and
// exact-or-flagged measurements. -ablate-reclaim disables exit-time
// resource reclamation and, symmetrically with -nofixup, the process
// exits nonzero unless the campaign *detects* the resulting leaks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"limitsim/internal/chaos"
)

func main() {
	soak := flag.Bool("soak", false, "run the thread-lifecycle soak campaign instead of the read-path campaign")
	seeds := flag.Int("seeds", 0, "seeds per fault mix (default 32, soak 8)")
	threads := flag.Int("threads", 6, "workload threads (read-path campaign)")
	cores := flag.Int("cores", 4, "machine cores")
	iters := flag.Int("iters", 0, "reads per thread (default 400, soak 40 per worker)")
	k := flag.Int("k", 0, "compute instructions per measured region (default 25, soak 20)")
	width := flag.Int("width", 0, "PMU writable counter width in bits (default 12, soak 10; narrow = frequent folds)")
	pool := flag.Int("pool", 4, "soak worker-pool width")
	waves := flag.Int("waves", 6, "soak clone/join waves per run")
	capacity := flag.Int("capacity", 0, "soak pinned-slot ledger capacity (default 2*(pool+1)+4)")
	tenants := flag.Int("tenants", 0, "guest-VM count; >1 time-shares the cores between tenant VMs under the two-level scheduler")
	mixName := flag.String("mix", "", "run only the named fault mix (an unknown name lists the available mixes and exits 2)")
	nofixup := flag.Bool("nofixup", false, "disable fixup-region registration (ablation: torn reads expected)")
	ablateReclaim := flag.Bool("ablate-reclaim", false, "disable exit-time resource reclamation (soak ablation: leaks expected)")
	metrics := flag.Bool("metrics", false, "attach kernel telemetry to every run and append the merged metrics block")
	parallel := flag.Int("parallel", 0, "worker count runs fan out across (0 = GOMAXPROCS, 1 = serial); the report is byte-identical at every width")
	report := flag.String("report", "", "write the campaign report to FILE instead of stdout (verdict lines stay on stdout/stderr)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-chaos: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "limit-chaos: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if *soak {
		runSoak(out, *seeds, *pool, *waves, *iters, *k, *cores, *width, *capacity, *parallel, *tenants, *mixName, *nofixup, *ablateReclaim, *metrics)
		return
	}
	if *ablateReclaim {
		fmt.Fprintln(os.Stderr, "limit-chaos: -ablate-reclaim requires -soak")
		os.Exit(2)
	}
	if *seeds == 0 {
		*seeds = 32
	}
	if *iters == 0 {
		*iters = 400
	}
	if *k == 0 {
		*k = 25
	}
	if *width == 0 {
		*width = 12
	}

	cfg := chaos.Config{
		Seeds:      *seeds,
		Threads:    *threads,
		Cores:      *cores,
		Iters:      *iters,
		ComputeK:   *k,
		WriteWidth: *width,
		NoFixup:    *nofixup,
		Metrics:    *metrics,
		Parallel:   *parallel,
		Tenants:    *tenants,
	}
	if *mixName != "" {
		matrix := chaos.DefaultMixes()
		if *tenants > 1 {
			matrix = chaos.TenantMixes()
		}
		for _, m := range matrix {
			if m.Name == *mixName {
				cfg.Mixes = []chaos.Mix{m}
			}
		}
		if len(cfg.Mixes) == 0 {
			names := make([]string, len(matrix))
			for i, m := range matrix {
				names[i] = m.Name
			}
			unknownMix(*mixName, names)
		}
	}
	res := chaos.Run(cfg)
	res.Render(out)

	violations := res.TotalViolations()
	errs := res.TotalRunErrors()
	switch {
	case errs > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d run(s) failed\n", errs)
		os.Exit(1)
	case *nofixup && violations == 0:
		fmt.Fprintln(os.Stderr, "limit-chaos: fixup disabled but no torn reads detected — checker is blind")
		os.Exit(1)
	case !*nofixup && violations > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d invariant violation(s) with fixup enabled\n", violations)
		os.Exit(1)
	}
	if *nofixup {
		fmt.Printf("detected %d torn-read/invariant violation(s) with fixup disabled, as expected\n", violations)
	} else {
		fmt.Println("all invariants held under the full fault mix")
	}
}

// runSoak executes the lifecycle soak campaign and applies its exit
// discipline: failed runs are always fatal; a sabotaged configuration
// (-nofixup or -ablate-reclaim) must detect its own damage; a healthy
// one must detect nothing.
func runSoak(out io.Writer, seeds, pool, waves, iters, k, cores, width, capacity, parallel, tenants int, mixName string, nofixup, ablateReclaim, metrics bool) {
	if seeds == 0 {
		seeds = 8
	}
	cfg := chaos.SoakConfig{
		Seeds:         seeds,
		Pool:          pool,
		Waves:         waves,
		Iters:         iters,
		ComputeK:      k,
		Cores:         cores,
		WriteWidth:    width,
		SlotCapacity:  capacity,
		NoFixup:       nofixup,
		AblateReclaim: ablateReclaim,
		Metrics:       metrics,
		Parallel:      parallel,
		Tenants:       tenants,
	}
	if mixName != "" {
		matrix := chaos.SoakMixes(pool, tenants)
		for _, m := range matrix {
			if m.Name == mixName {
				cfg.Mixes = []chaos.SoakMix{m}
			}
		}
		if len(cfg.Mixes) == 0 {
			names := make([]string, len(matrix))
			for i, m := range matrix {
				names[i] = m.Name
			}
			unknownMix(mixName, names)
		}
	}
	res := chaos.RunSoak(cfg)
	res.Render(out)

	sabotaged := nofixup || ablateReclaim
	violations := res.TotalViolations()
	errs := res.TotalRunErrors()
	switch {
	case errs > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d soak run(s) failed\n", errs)
		os.Exit(1)
	case sabotaged && violations == 0:
		fmt.Fprintln(os.Stderr, "limit-chaos: ablation enabled but no violations detected — the oracles are blind")
		os.Exit(1)
	case !sabotaged && violations > 0:
		fmt.Fprintf(os.Stderr, "limit-chaos: %d violation(s) in a healthy soak\n", violations)
		os.Exit(1)
	}
	if sabotaged {
		fmt.Printf("detected %d violation(s) under ablation, as expected\n", violations)
	} else {
		fmt.Printf("soak clean: churn, kills, clone storms and exhaustion absorbed (%d run(s) degraded gracefully)\n",
			res.TotalDegraded())
	}
}

// unknownMix reports an unrecognized -mix name with the valid choices
// and exits with the usage-error status, matching the unknown-
// subcommand contract elsewhere in the toolchain.
func unknownMix(name string, names []string) {
	fmt.Fprintf(os.Stderr, "limit-chaos: unknown mix %q; available mixes:\n", name)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
	os.Exit(2)
}
