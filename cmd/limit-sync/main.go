// Command limit-sync regenerates the synchronization case studies:
// Figure 3 (critical-section length histograms for the MySQL, Apache
// and Firefox models), Figure 4 (user-cycle decomposition), Figure 5
// (MySQL longitudinal study) and Figure 6 (kernel/user split).
//
// Usage:
//
//	limit-sync [-scale 1.0] [-fig3] [-fig4] [-fig5] [-fig6]
//
// With no selection flags, everything runs. Figures 3, 4 and 6 share
// one set of instrumented runs.
package main

import (
	"flag"
	"os"

	"limitsim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	f3 := flag.Bool("fig3", false, "run Figure 3: critical-section histograms")
	f4 := flag.Bool("fig4", false, "run Figure 4: cycle decomposition")
	f5 := flag.Bool("fig5", false, "run Figure 5: MySQL longitudinal")
	f6 := flag.Bool("fig6", false, "run Figure 6: kernel vs user")
	f8 := flag.Bool("fig8", false, "run Figure 8: bottleneck identification")
	flag.Parse()

	all := !(*f3 || *f4 || *f5 || *f6 || *f8)
	s := experiments.Scale(*scale)
	w := os.Stdout

	if all || *f3 || *f4 || *f6 {
		cs := experiments.RunCaseStudies(s)
		if all || *f3 {
			cs.RenderFig3(w)
		}
		if all || *f4 {
			cs.RenderFig4(w)
		}
		if all || *f6 {
			cs.RenderFig6(w)
		}
	}
	if all || *f5 {
		experiments.RunFig5(s).Render(w)
	}
	if all || *f8 {
		experiments.RunFig8(s).Render(w)
	}
}
