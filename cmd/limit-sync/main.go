// Command limit-sync regenerates the synchronization case studies:
// Figure 3 (critical-section length histograms for the MySQL, Apache
// and Firefox models), Figure 4 (user-cycle decomposition), Figure 5
// (MySQL longitudinal study) and Figure 6 (kernel/user split).
//
// Usage:
//
//	limit-sync [-scale 1.0] [-fig3] [-fig4] [-fig5] [-fig6]
//
// With no selection flags, everything runs. Figures 3, 4 and 6 share
// one set of instrumented runs. A failed run prints its error (and the
// kernel trace tail when available) and the process exits nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"limitsim/internal/experiments"
	"limitsim/internal/machine"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale factor (iteration multiplier)")
	f3 := flag.Bool("fig3", false, "run Figure 3: critical-section histograms")
	f4 := flag.Bool("fig4", false, "run Figure 4: cycle decomposition")
	f5 := flag.Bool("fig5", false, "run Figure 5: MySQL longitudinal")
	f6 := flag.Bool("fig6", false, "run Figure 6: kernel vs user")
	f8 := flag.Bool("fig8", false, "run Figure 8: bottleneck identification")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-sync: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	all := !(*f3 || *f4 || *f5 || *f6 || *f8)
	s := experiments.Scale(*scale)
	w := os.Stdout
	failed := 0

	report := func(err error) {
		failed++
		fmt.Fprintf(os.Stderr, "limit-sync: %v\n", err)
		var fe *machine.FaultError
		if errors.As(err, &fe) {
			fmt.Fprintln(os.Stderr, "kernel trace tail:")
			fe.DumpTrace(os.Stderr, 40)
		}
	}

	if all || *f3 || *f4 || *f6 {
		cs, err := experiments.RunCaseStudies(s)
		if err != nil {
			report(err)
		} else {
			if all || *f3 {
				cs.RenderFig3(w)
			}
			if all || *f4 {
				cs.RenderFig4(w)
			}
			if all || *f6 {
				cs.RenderFig6(w)
			}
		}
	}
	if all || *f5 {
		if r, err := experiments.RunFig5(s); err != nil {
			report(err)
		} else {
			r.Render(w)
		}
	}
	if all || *f8 {
		if r, err := experiments.RunFig8(s); err != nil {
			report(err)
		} else {
			r.Render(w)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
