// Command limit-fleet shards a campaign across supervised worker
// processes and proves the sharding invisible: the assembled report is
// byte-identical to the single-process engine's, at any worker count,
// even while workers crash, hang, or tear their result frames.
//
// Usage:
//
//	limit-fleet [-space campaign|soak|f2] [-workers 4] [flags...]
//	limit-fleet -worker            (internal: run as a fleet worker)
//
// The coordinator spawns N copies of this binary with -worker, speaks
// length-prefixed versioned JSON frames with each over stdin/stdout,
// and supervises them: heartbeat silence kills a hung worker, a slow
// worker's job is speculatively retried elsewhere (the duplicate result
// is deduplicated by key and byte-compared), failed jobs retry with
// seeded exponential backoff, and a job that exhausts its attempts is
// quarantined — enumerated in the summary, never silently dropped.
// When no workers can be spawned at all, the coordinator degrades to
// in-process execution (-workers 0 selects that path directly).
//
// -chaos-workers turns the fleet's own fault injection on: workers
// deterministically SIGKILL themselves mid-job, stall with heartbeats
// suppressed, truncate result frames, and run slow, all confined to
// the first attempts so a bounded retry budget still completes every
// job. The run must then pass the same oracles as a clean one: every
// job accounted exactly once, merged counters conserved, and the
// report byte-identical to the unsharded engine's.
//
// The campaign report goes to stdout (or -report FILE; a FILE ending
// in .html writes the self-contained HTML artifact instead — the
// assembled report plus merged telemetry, byte-identical at any shard
// width because supervision stats stay out of it); the fleet
// supervision summary goes to stderr. Exit status: 0 on a clean,
// complete, audit-passing run (with the same verdict discipline as
// limit-chaos for campaign/soak spaces); 1 on quarantined jobs, audit
// violations, or a failed verdict; 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"limitsim/internal/chaos"
	"limitsim/internal/experiments"
	"limitsim/internal/fleet"
	"limitsim/internal/fleet/spaces"
	"limitsim/internal/report"
	"limitsim/internal/telemetry"
)

func main() {
	worker := flag.Bool("worker", false, "run as a fleet worker process (internal)")
	space := flag.String("space", "campaign", "job space to shard: campaign, soak, or f2")
	workers := flag.Int("workers", 4, "worker process count (0 = run in-process)")
	report := flag.String("report", "", "write the campaign report to FILE instead of stdout")

	// Campaign / soak config, mirroring limit-chaos.
	seeds := flag.Int("seeds", 0, "seeds per fault mix (default 32, soak 8)")
	threads := flag.Int("threads", 6, "workload threads (campaign space)")
	cores := flag.Int("cores", 4, "machine cores")
	iters := flag.Int("iters", 0, "reads per thread (default 400, soak 40 per worker)")
	k := flag.Int("k", 0, "compute instructions per measured region (default 25, soak 20)")
	width := flag.Int("width", 0, "PMU writable counter width in bits (default 12, soak 10)")
	pool := flag.Int("pool", 4, "soak worker-pool width")
	waves := flag.Int("waves", 6, "soak clone/join waves per run")
	capacity := flag.Int("capacity", 0, "soak pinned-slot ledger capacity (default 2*(pool+1)+4)")
	nofixup := flag.Bool("nofixup", false, "disable fixup-region registration (ablation)")
	ablateReclaim := flag.Bool("ablate-reclaim", false, "disable exit-time reclamation (soak ablation)")
	metrics := flag.Bool("metrics", false, "attach kernel telemetry to every run")
	scale := flag.Float64("scale", float64(experiments.Quick), "f2 sweep scale (1.0 = paper scale)")

	// Supervision.
	maxAttempts := flag.Int("max-attempts", 5, "dispatches per job before quarantine")
	fleetSeed := flag.Uint64("fleet-seed", 1, "seed for retry jitter and worker self-chaos")
	chaosWorkers := flag.Bool("chaos-workers", false, "self-chaos: crash/stall/truncate/slow workers on early attempts")
	hbEvery := flag.Duration("hb-every", 100*time.Millisecond, "worker heartbeat period")
	hbTimeout := flag.Duration("hb-timeout", 2*time.Second, "heartbeat silence before a busy worker is killed as hung")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job deadline before speculative retry")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "limit-fleet: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	if *worker {
		runWorker()
		return
	}

	cfg := fleet.Config{
		Workers:          *workers,
		MaxAttempts:      *maxAttempts,
		Seed:             *fleetSeed,
		HeartbeatEvery:   *hbEvery,
		HeartbeatTimeout: *hbTimeout,
		JobTimeout:       *jobTimeout,
	}
	if *chaosWorkers {
		cfg.Chaos = fleet.KillStorm(*fleetSeed)
	}

	// -report FILE.html selects the self-contained HTML artifact; any
	// other -report value (or none) keeps the plain text report.
	html := *report != "" && strings.HasSuffix(*report, ".html")
	out := io.Writer(os.Stdout)
	if *report != "" && !html {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "limit-fleet: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	spawn := fleet.ProcSpawner(selfPath(), "-worker")

	switch *space {
	case "campaign":
		if *ablateReclaim {
			fmt.Fprintln(os.Stderr, "limit-fleet: -ablate-reclaim requires -space soak")
			os.Exit(2)
		}
		ccfg := chaos.Config{
			Seeds: defInt(*seeds, 32), Threads: *threads, Cores: *cores,
			Iters: defInt(*iters, 400), ComputeK: defInt(*k, 25),
			WriteWidth: defInt(*width, 12), NoFixup: *nofixup, Metrics: *metrics,
		}
		spec, err := spaces.CampaignSpec(ccfg)
		check(err)
		rep := runFleet(cfg, spec, spawn)
		res, err := chaos.AssembleCampaign(ccfg, rep.Payloads)
		check(err)
		if html {
			writeHTMLReport(*report, "campaign", len(rep.Payloads), res.Render, res.Telemetry)
		} else {
			res.Render(out)
		}
		campaignVerdict(res, *nofixup)
	case "soak":
		scfg := chaos.SoakConfig{
			Seeds: defInt(*seeds, 8), Pool: *pool, Waves: *waves,
			Iters: *iters, ComputeK: *k, Cores: *cores, WriteWidth: *width,
			SlotCapacity: *capacity, NoFixup: *nofixup,
			AblateReclaim: *ablateReclaim, Metrics: *metrics,
		}
		spec, err := spaces.SoakSpec(scfg)
		check(err)
		rep := runFleet(cfg, spec, spawn)
		res, err := chaos.AssembleSoak(scfg, rep.Payloads)
		check(err)
		if html {
			writeHTMLReport(*report, "soak", len(rep.Payloads), res.Render, res.Telemetry)
		} else {
			res.Render(out)
		}
		soakVerdict(res, *nofixup || *ablateReclaim)
	case "f2":
		spec, err := spaces.F2Spec(experiments.Scale(*scale))
		check(err)
		rep := runFleet(cfg, spec, spawn)
		res, err := experiments.AssembleF2Payloads(rep.Payloads)
		check(err)
		if html {
			writeHTMLReport(*report, "f2", len(rep.Payloads), res.Render, nil)
		} else {
			res.Render(out)
		}
	default:
		fmt.Fprintf(os.Stderr, "limit-fleet: unknown space %q (campaign, soak, f2)\n", *space)
		os.Exit(2)
	}
}

// writeHTMLReport renders the assembled result as one self-contained
// HTML artifact: the byte-deterministic assembled report plus the
// merged telemetry registry when the run carried one. Fleet
// supervision stats are deliberately absent — they vary with worker
// count and timing, and the artifact must be byte-identical at any
// shard width (they still go to stderr via RenderSummary).
func writeHTMLReport(path, space string, jobs int, render func(io.Writer), reg *telemetry.Registry) {
	a := report.New(
		fmt.Sprintf("limit-fleet %s report", space),
		fmt.Sprintf("%d jobs merged with commutative rules — identical at any shard width", jobs))
	var sb strings.Builder
	render(&sb)
	a.AddPre("Assembled report", sb.String())
	if reg != nil {
		a.AddRegistry("Merged telemetry", reg)
	}
	f, err := os.Create(path)
	check(err)
	werr := a.Render(f)
	cerr := f.Close()
	if werr != nil {
		check(werr)
	}
	check(cerr)
}

// runWorker is the -worker entry point: serve frames over stdin/stdout
// until shutdown. A self-chaos kill exits 137 — the same code a real
// SIGKILL would report — so the coordinator-side view is identical.
func runWorker() {
	err := fleet.WorkerMain(os.Stdin, os.Stdout)
	switch {
	case err == nil:
		return
	case err == fleet.ErrChaosKill:
		os.Exit(137)
	default:
		fmt.Fprintf(os.Stderr, "limit-fleet worker: %v\n", err)
		os.Exit(1)
	}
}

// runFleet executes the fleet and enforces its own oracles before any
// space-level verdict: the run must be complete (nothing quarantined)
// and the accounting audit must be clean.
func runFleet(cfg fleet.Config, spec fleet.SpaceSpec, spawn fleet.Spawner) *fleet.Report {
	rep, err := fleet.Run(cfg, spec, spawn)
	check(err)
	rep.RenderSummary(os.Stderr)
	if !rep.Complete() {
		fmt.Fprintf(os.Stderr, "limit-fleet: run incomplete: %d job(s) quarantined, %d audit violation(s)\n",
			len(rep.Quarantined), len(rep.Violations))
		os.Exit(1)
	}
	return rep
}

// campaignVerdict applies limit-chaos's exit discipline to the
// assembled campaign result.
func campaignVerdict(res *chaos.Result, nofixup bool) {
	violations := res.TotalViolations()
	errs := res.TotalRunErrors()
	switch {
	case errs > 0:
		fmt.Fprintf(os.Stderr, "limit-fleet: %d run(s) failed\n", errs)
		os.Exit(1)
	case nofixup && violations == 0:
		fmt.Fprintln(os.Stderr, "limit-fleet: fixup disabled but no torn reads detected — checker is blind")
		os.Exit(1)
	case !nofixup && violations > 0:
		fmt.Fprintf(os.Stderr, "limit-fleet: %d invariant violation(s) with fixup enabled\n", violations)
		os.Exit(1)
	}
}

// soakVerdict applies limit-chaos's soak exit discipline.
func soakVerdict(res *chaos.SoakResult, sabotaged bool) {
	violations := res.TotalViolations()
	errs := res.TotalRunErrors()
	switch {
	case errs > 0:
		fmt.Fprintf(os.Stderr, "limit-fleet: %d soak run(s) failed\n", errs)
		os.Exit(1)
	case sabotaged && violations == 0:
		fmt.Fprintln(os.Stderr, "limit-fleet: ablation enabled but no violations detected — the oracles are blind")
		os.Exit(1)
	case !sabotaged && violations > 0:
		fmt.Fprintf(os.Stderr, "limit-fleet: %d violation(s) in a healthy soak\n", violations)
		os.Exit(1)
	}
}

func selfPath() string {
	p, err := os.Executable()
	if err != nil {
		// Fall back to argv[0]; ProcSpawner's spawn errors then count
		// against the budget and the coordinator degrades in-process.
		return os.Args[0]
	}
	return p
}

func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "limit-fleet: %v\n", err)
		os.Exit(1)
	}
}
