module limitsim

go 1.22
