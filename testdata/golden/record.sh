#!/bin/sh
# Golden byte-equality harness for the simulator's observable outputs.
#
# The perf work on the interpreter hot loop (PMU dispatch tables,
# word-level memory, COW snapshots) must not change a single output
# byte: campaign reports, soak reports, profiler output, experiment
# tables, metric frames and HTML artifacts are pinned here at fixed
# seeds. The files in this directory were recorded on the
# pre-optimization tree.
#
# Usage (from the repo root):
#   ./testdata/golden/record.sh check    # re-run and byte-compare (CI)
#   ./testdata/golden/record.sh record   # overwrite the goldens
set -eu

dir="$(dirname "$0")"
mode="${1:-check}"
files="campaign.txt soak.txt tenant-campaign.txt profile-mysql.txt experiments.txt frames-apache.jsonl report-mysql.html"

case "$mode" in
record) out="$dir" ;;
check) out="${TMPDIR:-/tmp}/limitsim-golden.$$" && mkdir -p "$out" ;;
*) echo "usage: $0 [check|record]" >&2 && exit 2 ;;
esac

go run ./cmd/limit-chaos -seeds 4 -iters 150 -metrics -parallel 1 >"$out/campaign.txt"
go run ./cmd/limit-chaos -soak -seeds 2 -metrics -parallel 4 >"$out/soak.txt"
go run ./cmd/limit-chaos -tenants 4 -seeds 2 -metrics -parallel 4 -report "$out/tenant-campaign.txt"
go run ./cmd/limit-profile -workload mysql -scale 0.3 -budget 1.05 -parallel 4 -html "$out/report-mysql.html" >"$out/profile-mysql.txt"
go run ./cmd/limit-experiments -scale 0.1 -parallel 4 >"$out/experiments.txt"
go run ./cmd/limitctl metrics -app apache -scale 0.3 -format frames >"$out/frames-apache.jsonl"

if [ "$mode" = check ]; then
	rc=0
	for f in $files; do
		if cmp "$dir/$f" "$out/$f"; then
			echo "golden ok: $f"
		else
			echo "golden MISMATCH: $f" >&2
			rc=1
		fi
	done
	rm -rf "$out"
	exit $rc
fi
echo "recorded $(echo $files | wc -w) goldens into $dir"
