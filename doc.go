// Package limitsim is a from-scratch Go reproduction of "Rapid
// identification of architectural bottlenecks via precise event
// counting" (Demme & Sethumadhavan, ISCA 2011) — the LiMiT tool —
// on a simulated multicore machine.
//
// The implementation lives under internal/: the simulated hardware
// (isa, cpu, cache, branch, pmu, mem), the simulated operating system
// (kernel, machine), the paper's contribution (limit) and its
// baselines (perfevent, papi, sampling), the instrumented workload
// models (usync, workloads), and the reproduction harness
// (experiments, analysis). See DESIGN.md for the system inventory and
// the per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. Executables are under cmd/, runnable examples under
// examples/.
//
// The top-level bench suite (bench_test.go) regenerates every table
// and figure:
//
//	go test -bench=. -benchmem .
package limitsim
