package probe_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/probe"
	"limitsim/internal/tls"
)

// runProbe builds a single-thread program that reads the probe twice
// around a 1000-instruction block and stores both values.
func runProbe(t *testing.T, kind probe.Kind) (v1, v2 uint64, m *machine.Machine) {
	t.Helper()
	var layout tls.Layout
	p := probe.New(kind, &layout, probe.Config{
		Event: pmu.EvInstructions, Mode: limit.ModeStock, SamplePeriod: 500,
	})
	out := layout.Reserve(2)
	space := mem.NewSpace()
	layout.Alloc(space, 1)

	b := isa.NewBuilder()
	layout.EmitProlog(b)
	p.EmitProlog(b)
	p.EmitRead(b, isa.R4)
	out.EmitStore(b, isa.R4, isa.R5)
	b.Compute(1_000)
	p.EmitRead(b, isa.R4)
	out.Word(1).EmitStore(b, isa.R4, isa.R5)
	b.Halt()
	p.EmitEpilog(b)

	m = machine.New(machine.Config{NumCores: 1})
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	th.SetReg(tls.SlotReg, 0)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("%s: %v", kind, res)
	}
	base := layout.ThreadBase(0)
	return space.Read64(out.Resolve(base)), space.Read64(out.Word(1).Resolve(base)), m
}

func TestActiveProbesMeasureTheBlock(t *testing.T) {
	for _, kind := range []probe.Kind{probe.KindLimit, probe.KindPerf, probe.KindPAPI} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			v1, v2, _ := runProbe(t, kind)
			delta := v2 - v1
			// 1000 compute instructions plus a few instrumentation
			// instructions (PAPI adds its bookkeeping work too).
			if delta < 1_000 || delta > 1_900 {
				t.Errorf("delta %d, want ~1000 (+instrumentation)", delta)
			}
		})
	}
}

func TestRdtscMeasuresCycles(t *testing.T) {
	v1, v2, _ := runProbe(t, probe.KindRdtsc)
	if v2-v1 < 1_000 {
		t.Errorf("rdtsc delta %d, want >= 1000 cycles", v2-v1)
	}
}

func TestPassiveProbesReadZero(t *testing.T) {
	for _, kind := range []probe.Kind{probe.KindNull, probe.KindSample} {
		v1, v2, m := runProbe(t, kind)
		if v1 != 0 || v2 != 0 {
			t.Errorf("%s reads (%d,%d), want zeros", kind, v1, v2)
		}
		if kind == probe.KindSample && len(m.Kern.Samples()) == 0 {
			t.Error("sample probe should have armed the profiler")
		}
	}
}

func TestProbeNames(t *testing.T) {
	var layout tls.Layout
	for _, kind := range probe.AllKinds() {
		p := probe.New(kind, &layout, probe.Config{Event: pmu.EvCycles})
		if p.Name() != string(kind) {
			t.Errorf("probe %s names itself %q", kind, p.Name())
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	var layout tls.Layout
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	probe.New(probe.Kind("bogus"), &layout, probe.Config{})
}

func TestSampleProbeDefaultPeriod(t *testing.T) {
	var layout tls.Layout
	p := probe.New(probe.KindSample, &layout, probe.Config{Event: pmu.EvCycles})
	if s, ok := p.(*probe.Sample); !ok || s.Period() == 0 {
		t.Error("sample probe must default its period")
	}
}

func TestLimitProbeExposesEmitter(t *testing.T) {
	var layout tls.Layout
	p := probe.New(probe.KindLimit, &layout, probe.Config{Event: pmu.EvCycles}).(*probe.Limit)
	b := isa.NewBuilder()
	p.EmitProlog(b)
	if p.Emitter() == nil {
		t.Fatal("emitter not exposed after prolog")
	}
	b.Halt()
	p.EmitEpilog(b)
	if _, err := b.Build(); err != nil {
		t.Fatalf("probe-emitted program does not assemble: %v", err)
	}
}

var _ = kernel.SysYield // keep kernel import for documentation symmetry
