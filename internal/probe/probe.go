// Package probe unifies the counter access methods behind one code-
// emission interface so workloads can be instrumented identically with
// each of them — the apples-to-apples structure behind the paper's
// overhead and precision comparisons. A probe is bound to one event
// and one program body; per-thread state (LiMiT virtual-counter slots,
// perf fds, PAPI event sets) lives in a tls.Layout so that many threads
// can share the body.
//
// Probes:
//
//	limit   — LiMiT userspace reads (the paper's contribution)
//	perf    — one syscall per read (perf_event baseline)
//	papi    — PAPI library over the syscall interface
//	rdtsc   — raw cycle reads (cheap, but cycles only and unvirtualized)
//	sample  — no reads; arms the overflow-driven sampling profiler
//	null    — no instrumentation (the uninstrumented baseline)
package probe

import (
	"limitsim/internal/isa"
	"limitsim/internal/limit"
	"limitsim/internal/papi"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
	"limitsim/internal/sampling"
	"limitsim/internal/tls"
)

// Probe emits instrumentation for one event. All Emit methods write
// into the builder the probe was constructed around. EmitRead clobbers
// R0..R3 in addition to dst.
type Probe interface {
	// Name identifies the access method in reports.
	Name() string
	// EmitProlog emits per-thread setup; call once at the body entry,
	// after the TLS prolog.
	EmitProlog(b *isa.Builder)
	// EmitRead leaves the probe's current 64-bit event count in dst.
	EmitRead(b *isa.Builder, dst isa.Reg)
	// EmitEpilog emits trailing code (out-of-line blocks); call once
	// after the body's final Halt.
	EmitEpilog(b *isa.Builder)
}

// Kind names a probe family for construction by configuration.
type Kind string

// Probe kinds.
const (
	KindNull   Kind = "none"
	KindLimit  Kind = "limit"
	KindPerf   Kind = "perf"
	KindPAPI   Kind = "papi"
	KindRdtsc  Kind = "rdtsc"
	KindSample Kind = "sample"
)

// AllKinds lists every probe kind in comparison order.
func AllKinds() []Kind {
	return []Kind{KindNull, KindRdtsc, KindLimit, KindPerf, KindPAPI, KindSample}
}

// Profilable reports whether the kind's reads are cheap and precise
// enough to carry region-attribution profiling (internal/profile):
// multi-event bundle reads at every region boundary. Only the LiMiT
// path qualifies — syscall-per-read methods would perturb the regions
// they measure (the paper's Figure 1 argument).
func (k Kind) Profilable() bool { return k == KindLimit }

// Config parameterizes probe construction.
type Config struct {
	Event pmu.Event
	// Mode selects the LiMiT read-sequence shape (limit probes only).
	Mode limit.Mode
	// SamplePeriod is the sampling period (sample probes only).
	SamplePeriod uint64
}

// New builds a probe of the given kind, reserving its per-thread state
// in layout.
func New(kind Kind, layout *tls.Layout, cfg Config) Probe {
	switch kind {
	case KindNull:
		return Null{}
	case KindRdtsc:
		return Rdtsc{}
	case KindLimit:
		return &Limit{event: cfg.Event, mode: cfg.Mode, table: layout.Reserve(1)}
	case KindPerf:
		return &Perf{event: cfg.Event, fd: layout.Reserve(1)}
	case KindPAPI:
		return &PAPI{event: cfg.Event, state: layout.Reserve(papi.StateWords(1))}
	case KindSample:
		p := cfg.SamplePeriod
		if p == 0 {
			p = 100_000
		}
		return &Sample{event: cfg.Event, period: p}
	}
	panic("probe: unknown kind " + string(kind))
}

// Null is the uninstrumented baseline; reads produce zero.
type Null struct{}

// Name implements Probe.
func (Null) Name() string { return string(KindNull) }

// EmitProlog implements Probe.
func (Null) EmitProlog(*isa.Builder) {}

// EmitRead implements Probe.
func (Null) EmitRead(b *isa.Builder, dst isa.Reg) { b.MovImm(dst, 0) }

// EmitEpilog implements Probe.
func (Null) EmitEpilog(*isa.Builder) {}

// Rdtsc reads the core cycle counter directly: cheap, but it can only
// observe cycles (no architectural events) and is not virtualized —
// descheduled time leaks into measurements.
type Rdtsc struct{}

// Name implements Probe.
func (Rdtsc) Name() string { return string(KindRdtsc) }

// EmitProlog implements Probe.
func (Rdtsc) EmitProlog(*isa.Builder) {}

// EmitRead implements Probe.
func (Rdtsc) EmitRead(b *isa.Builder, dst isa.Reg) { b.RdCycle(dst) }

// EmitEpilog implements Probe.
func (Rdtsc) EmitEpilog(*isa.Builder) {}

// Limit is the LiMiT probe.
type Limit struct {
	event pmu.Event
	mode  limit.Mode
	table ref.Ref
	e     *limit.Emitter
	ctr   int
}

// Name implements Probe.
func (p *Limit) Name() string { return string(KindLimit) }

// Emitter exposes the underlying limit.Emitter (for tests and for
// workloads that need interval reads).
func (p *Limit) Emitter() *limit.Emitter { return p.e }

// EmitProlog implements Probe.
func (p *Limit) EmitProlog(b *isa.Builder) {
	p.e = limit.NewEmitter(b, p.mode, p.table)
	p.ctr = p.e.AddCounter(limit.UserCounter(p.event))
	p.e.EmitInit()
}

// EmitRead implements Probe.
func (p *Limit) EmitRead(b *isa.Builder, dst isa.Reg) {
	p.e.EmitRead(dst, isa.R3, p.ctr)
}

// EmitEpilog implements Probe.
func (p *Limit) EmitEpilog(*isa.Builder) { p.e.EmitFinish() }

// Perf is the perf_event syscall probe.
type Perf struct {
	event pmu.Event
	fd    ref.Ref
}

// Name implements Probe.
func (p *Perf) Name() string { return string(KindPerf) }

// EmitProlog implements Probe.
func (p *Perf) EmitProlog(b *isa.Builder) {
	perfevent.EmitOpen(b, perfevent.UserSpec(p.event), isa.R2)
	p.fd.EmitStore(b, isa.R2, isa.R3)
}

// EmitRead implements Probe.
func (p *Perf) EmitRead(b *isa.Builder, dst isa.Reg) {
	p.fd.EmitLoad(b, isa.R0)
	perfevent.EmitRead(b, isa.R0, dst)
}

// EmitEpilog implements Probe.
func (p *Perf) EmitEpilog(*isa.Builder) {}

// PAPI is the PAPI event-set probe (single-event set).
type PAPI struct {
	event pmu.Event
	state ref.Ref
	es    *papi.EventSet
}

// Name implements Probe.
func (p *PAPI) Name() string { return string(KindPAPI) }

// EmitProlog implements Probe.
func (p *PAPI) EmitProlog(b *isa.Builder) {
	p.es = papi.NewEventSet(p.state, p.event)
	p.es.EmitStart(b)
}

// EmitRead implements Probe.
func (p *PAPI) EmitRead(b *isa.Builder, dst isa.Reg) {
	p.es.EmitReadInto(b, 0, dst)
}

// EmitEpilog implements Probe.
func (p *PAPI) EmitEpilog(*isa.Builder) {}

// Sample arms the overflow-driven sampling profiler; reads are no-ops
// (sampling cannot answer "how many events so far" queries — the point
// of the paper's precision comparison).
type Sample struct {
	event  pmu.Event
	period uint64
}

// Name implements Probe.
func (p *Sample) Name() string { return string(KindSample) }

// Period returns the sampling period.
func (p *Sample) Period() uint64 { return p.period }

// EmitProlog implements Probe.
func (p *Sample) EmitProlog(b *isa.Builder) {
	sampling.EmitStart(b, p.event, p.period)
}

// EmitRead implements Probe.
func (p *Sample) EmitRead(b *isa.Builder, dst isa.Reg) { b.MovImm(dst, 0) }

// EmitEpilog implements Probe.
func (p *Sample) EmitEpilog(*isa.Builder) {}
