// Package trace provides an optional kernel event trace: scheduling,
// syscalls, interrupts and signals recorded as (cycle, core, thread,
// kind, arg) tuples in a bounded ring. It exists for debugging
// simulated workloads and for the limitctl -trace timeline; tracing is
// off unless a buffer is attached, so the hot paths pay one nil check.
package trace

import (
	"fmt"
	"io"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	SwitchIn Kind = iota
	SwitchOut
	Syscall
	Signal
	PMI
	Wake
	Spawn
	Exit
	Fault
	// Clone records a thread created with counter inheritance (arg is
	// the parent TID); Reap records exit-time resource reclamation.
	Clone
	Reap
	// VCpuPreempt, VCpuResume and VCpuMigrate are tenant-scheduler
	// events: a guest vCPU forced off a core mid-quantum, a tenant
	// regaining residency on a core, and a tenant's thread moved to a
	// core its vCPU already occupies (arg is the tenant id).
	VCpuPreempt
	VCpuResume
	VCpuMigrate
	// MuxRotate records an event-group rotation window closing (arg is
	// the new rotation cursor).
	MuxRotate
)

// kindNames is indexed by Kind — the enum is dense, so a slice lookup
// avoids hashing on every formatted event of a tracing-enabled run.
var kindNames = [...]string{
	SwitchIn:    "switch-in",
	SwitchOut:   "switch-out",
	Syscall:     "syscall",
	Signal:      "signal",
	PMI:         "pmi",
	Wake:        "wake",
	Spawn:       "spawn",
	Exit:        "exit",
	Fault:       "fault",
	Clone:       "clone",
	Reap:        "reap",
	VCpuPreempt: "vcpu-preempt",
	VCpuResume:  "vcpu-resume",
	VCpuMigrate: "vcpu-migrate",
	MuxRotate:   "mux-rotate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString maps a kind name back to its Kind value (the inverse
// of Kind.String, used by the structured-export parsers).
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one trace record.
type Event struct {
	Cycle uint64
	Core  int
	TID   int
	Kind  Kind
	// Arg carries kind-specific detail: the syscall number, signal
	// number, or overflow mask.
	Arg uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%12d core%d tid%-3d %-10s arg=%d", e.Cycle, e.Core, e.TID, e.Kind, e.Arg)
}

// Buffer is a bounded event ring. The zero value is unusable; call
// NewBuffer.
type Buffer struct {
	events []Event
	next   int
	full   bool
	total  uint64
}

// NewBuffer returns a ring holding the last capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full.
func (b *Buffer) Append(e Event) {
	b.events[b.next] = e
	b.next = (b.next + 1) % len(b.events)
	if b.next == 0 {
		b.full = true
	}
	b.total++
}

// Total returns how many events were ever recorded (including
// evicted ones).
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if !b.full {
		out := make([]Event, b.next)
		copy(out, b.events[:b.next])
		return out
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Dump writes up to max trailing events (0 = all retained) to w.
func (b *Buffer) Dump(w io.Writer, max int) {
	evs := b.Events()
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}

// CountKind returns how many retained events have the kind. Order is
// irrelevant for counting, so the ring is scanned in place rather than
// through the copying Events accessor.
func (b *Buffer) CountKind(k Kind) int {
	retained := b.events[:b.next]
	if b.full {
		retained = b.events
	}
	n := 0
	for i := range retained {
		if retained[i].Kind == k {
			n++
		}
	}
	return n
}
