package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"limitsim/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Cycle: 0, Core: 0, TID: 1, Kind: trace.Spawn, Arg: 0},
		{Cycle: 1234, Core: 0, TID: 1, Kind: trace.SwitchIn, Arg: 0},
		{Cycle: 5678, Core: 1, TID: 2, Kind: trace.Syscall, Arg: 17},
		{Cycle: 9999, Core: 1, TID: 2, Kind: trace.PMI, Arg: 0b101},
		{Cycle: 123_456_789, Core: 0, TID: 1, Kind: trace.Exit, Arg: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], evs[i])
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, evs, 0); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON on its own terms, not just for
	// our parser.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("document lacks traceEvents")
	}
	back, err := trace.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], evs[i])
		}
	}
}

func TestChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty document invalid: %v", err)
	}
	back, err := trace.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil || len(back) != 0 {
		t.Fatalf("empty round trip: %v %v", back, err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	evs := sampleEvents()
	var a, b bytes.Buffer
	if err := trace.WriteChrome(&a, evs, 0); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&b, evs, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("chrome export not byte-deterministic")
	}
	a.Reset()
	b.Reset()
	if err := trace.WriteJSONL(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("jsonl export not byte-deterministic")
	}
}

func sampleSpans() []trace.Span {
	return []trace.Span{
		{Name: "txn", PID: 1, TID: 1, StartCycle: 0, DurCycles: 10_000},
		{Name: "txn/parse", PID: 1, TID: 1, StartCycle: 0, DurCycles: 2_500},
		{Name: "txn/table.cs", PID: 1, TID: 1, StartCycle: 2_500, DurCycles: 6_000},
		{Name: "request", PID: 2, TID: 3, StartCycle: 500, DurCycles: 123_456},
	}
}

func TestChromeSpansRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := trace.WriteChromeSpans(&buf, spans, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("span export lacks traceEvents array")
	}
	back, err := trace.ParseChromeSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip returned %d spans, want %d", len(back), len(spans))
	}
	for i := range spans {
		if back[i] != spans[i] {
			t.Errorf("span %d: %+v != %+v", i, back[i], spans[i])
		}
	}
}

func TestChromeSpansDeterministicAndEmpty(t *testing.T) {
	var a, b bytes.Buffer
	if err := trace.WriteChromeSpans(&a, sampleSpans(), 3000); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChromeSpans(&b, sampleSpans(), 3000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("span export not byte-deterministic")
	}
	a.Reset()
	if err := trace.WriteChromeSpans(&a, nil, 0); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ParseChromeSpans(bytes.NewReader(a.Bytes()))
	if err != nil || len(back) != 0 {
		t.Fatalf("empty span round trip: %v %v", back, err)
	}
}

func TestKindFromString(t *testing.T) {
	for k := trace.SwitchIn; k <= trace.Reap; k++ {
		got, ok := trace.KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := trace.KindFromString("no-such-kind"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestCountKindMatchesEvents(t *testing.T) {
	b := trace.NewBuffer(4)
	for i := 0; i < 7; i++ {
		k := trace.Syscall
		if i%2 == 0 {
			k = trace.PMI
		}
		b.Append(trace.Event{Cycle: uint64(i), Kind: k})
	}
	for _, k := range []trace.Kind{trace.Syscall, trace.PMI, trace.Exit} {
		want := 0
		for _, e := range b.Events() {
			if e.Kind == k {
				want++
			}
		}
		if got := b.CountKind(k); got != want {
			t.Errorf("CountKind(%v) = %d, want %d", k, got, want)
		}
	}
}
