package trace_test

import (
	"strings"
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/trace"
)

func TestRingRetention(t *testing.T) {
	b := trace.NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Append(trace.Event{Cycle: uint64(i)})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d cycle %d, want %d (chronological tail)", i, e.Cycle, 6+i)
		}
	}
	if b.Total() != 10 {
		t.Errorf("total %d", b.Total())
	}
}

func TestPartialRing(t *testing.T) {
	b := trace.NewBuffer(8)
	b.Append(trace.Event{Cycle: 1})
	b.Append(trace.Event{Cycle: 2})
	evs := b.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Errorf("partial ring events %v", evs)
	}
}

func TestKernelTracing(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	buf := trace.NewBuffer(4096)
	m.Kern.SetTracer(buf)

	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 5)
	b.Label("loop")
	b.Syscall(kernel.SysYield)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "a", 0, 1)
	m.Kern.Spawn(proc, "b", 0, 2)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
	if !res.AllDone {
		t.Fatal(res)
	}

	if n := buf.CountKind(trace.Syscall); n != 10 {
		t.Errorf("traced %d syscalls, want 10", n)
	}
	if buf.CountKind(trace.SwitchIn) == 0 || buf.CountKind(trace.SwitchOut) == 0 {
		t.Error("no scheduling events traced")
	}
	if n := buf.CountKind(trace.Exit); n != 2 {
		t.Errorf("traced %d exits, want 2", n)
	}

	var sb strings.Builder
	buf.Dump(&sb, 5)
	if lines := strings.Count(sb.String(), "\n"); lines != 5 {
		t.Errorf("dump emitted %d lines, want 5", lines)
	}
	if !strings.Contains(sb.String(), "exit") {
		t.Errorf("dump tail should include the exits:\n%s", sb.String())
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []trace.Kind{trace.SwitchIn, trace.SwitchOut, trace.Syscall,
		trace.Signal, trace.PMI, trace.Wake, trace.Spawn, trace.Exit, trace.Fault} {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
