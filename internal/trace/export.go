package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Structured trace export: the same event stream the text dump prints,
// in two tool-consumable encodings. The Chrome trace-event JSON form
// loads directly into Perfetto / chrome://tracing (cores map to pids,
// threads to tids, every kernel event is an instant); the JSONL form
// is one event object per line for scripted analysis. Both writers
// hand-format their JSON so output is byte-deterministic for a given
// event sequence, and both have parsers that reconstruct the exact
// Event values — timestamps in the Chrome form are rounded to
// microseconds for the viewer, so the exact cycle rides along in args.

// WriteJSONL writes one JSON object per event:
// {"cycle":N,"core":N,"tid":N,"kind":"name","arg":N}.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "{\"cycle\":%d,\"core\":%d,\"tid\":%d,\"kind\":%q,\"arg\":%d}\n",
			e.Cycle, e.Core, e.TID, e.Kind.String(), e.Arg); err != nil {
			return err
		}
	}
	return nil
}

// jsonlEvent is the parse shape for one JSONL line.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Core  int    `json:"core"`
	TID   int    `json:"tid"`
	Kind  string `json:"kind"`
	Arg   uint64 `json:"arg"`
}

// ParseJSONL reads a WriteJSONL stream back into events.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(txt), &je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: jsonl line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{Cycle: je.Cycle, Core: je.Core, TID: je.TID, Kind: k, Arg: je.Arg})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl: %w", err)
	}
	return out, nil
}

// WriteChrome writes the events as a Chrome trace-event JSON document
// ({"traceEvents":[...],"displayTimeUnit":"ns"}) loadable by Perfetto
// and chrome://tracing. Each kernel event becomes a thread-scoped
// instant on pid=core, tid=thread; ts is the cycle count converted to
// microseconds at cyclesPerUsec (pass 0 to default to 3000, the
// simulation's nominal 3 GHz). The exact cycle and the kind-specific
// arg travel in args so a parse loses nothing to the ts rounding.
func WriteChrome(w io.Writer, events []Event, cyclesPerUsec float64) error {
	if cyclesPerUsec <= 0 {
		cyclesPerUsec = 3000
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w,
			"{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"cycle\":%d,\"arg\":%d}}%s\n",
			e.Kind.String(), float64(e.Cycle)/cyclesPerUsec, e.Core, e.TID, e.Cycle, e.Arg, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// chromeDoc and chromeEvent are the parse shapes for WriteChrome
// output.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string `json:"name"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Args struct {
		Cycle uint64 `json:"cycle"`
		Arg   uint64 `json:"arg"`
	} `json:"args"`
}

// Span is a named duration on a (pid, tid) track — the hierarchy/
// flame-graph form of a trace. The profiler exports its region tree
// this way: nested regions become nested complete events, and the
// gaps between a span and its children read as self time.
type Span struct {
	Name       string
	PID, TID   int
	StartCycle uint64
	DurCycles  uint64
}

// WriteChromeSpans writes spans as Chrome trace-event "complete"
// events ("ph":"X"), Perfetto-loadable like WriteChrome. ts/dur are
// cycle counts converted to microseconds at cyclesPerUsec (0 defaults
// to 3000); the exact cycles travel in args. Byte-deterministic.
func WriteChromeSpans(w io.Writer, spans []Span, cyclesPerUsec float64) error {
	if cyclesPerUsec <= 0 {
		cyclesPerUsec = 3000
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, s := range spans {
		sep := ","
		if i == len(spans)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w,
			"{\"name\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"start_cycle\":%d,\"dur_cycles\":%d}}%s\n",
			s.Name, float64(s.StartCycle)/cyclesPerUsec, float64(s.DurCycles)/cyclesPerUsec,
			s.PID, s.TID, s.StartCycle, s.DurCycles, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// chromeSpan is the parse shape for one WriteChromeSpans event.
type chromeSpan struct {
	Name string `json:"name"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Args struct {
		StartCycle uint64 `json:"start_cycle"`
		DurCycles  uint64 `json:"dur_cycles"`
	} `json:"args"`
}

// ParseChromeSpans reads a WriteChromeSpans document back into the
// exact span sequence.
func ParseChromeSpans(r io.Reader) ([]Span, error) {
	var doc struct {
		TraceEvents []chromeSpan `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: chrome spans: %w", err)
	}
	out := make([]Span, 0, len(doc.TraceEvents))
	for _, cs := range doc.TraceEvents {
		out = append(out, Span{
			Name: cs.Name, PID: cs.PID, TID: cs.TID,
			StartCycle: cs.Args.StartCycle, DurCycles: cs.Args.DurCycles,
		})
	}
	return out, nil
}

// ParseChrome reads a WriteChrome document back into the exact event
// sequence (cycle and arg come from args, not the rounded ts).
func ParseChrome(r io.Reader) ([]Event, error) {
	var doc chromeDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: chrome: %w", err)
	}
	out := make([]Event, 0, len(doc.TraceEvents))
	for i, ce := range doc.TraceEvents {
		k, ok := KindFromString(ce.Name)
		if !ok {
			return nil, fmt.Errorf("trace: chrome event %d: unknown kind %q", i, ce.Name)
		}
		out = append(out, Event{
			Cycle: ce.Args.Cycle, Core: ce.PID, TID: ce.TID, Kind: k, Arg: ce.Args.Arg,
		})
	}
	return out, nil
}
