package invariant

import (
	"strings"
	"testing"

	"limitsim/internal/kernel"
)

// countKind tallies stored violations of one kind.
func countKind(c *Checker, kind string) int {
	n := 0
	for _, v := range c.Violations() {
		if v.Kind == kind {
			n++
		}
	}
	return n
}

// TestCheckLeaksSyntheticSlot feeds the leak oracle a synthetic ledger
// with one unreclaimed counter slot: exactly one resource-leak
// violation, naming the slot ledger, nothing else.
func TestCheckLeaksSyntheticSlot(t *testing.T) {
	c := New(nil)
	c.CheckLeaks(kernel.Resources{
		SlotsInUse:   1,
		SlotsPeak:    3,
		SlotCapacity: 8,
	})
	if c.Count() != 1 {
		t.Fatalf("got %d violations, want exactly 1: %v", c.Count(), c.Violations())
	}
	v := c.Violations()[0]
	if v.Kind != KindLeak {
		t.Fatalf("violation kind %q, want %q", v.Kind, KindLeak)
	}
	if !strings.Contains(v.Detail, "slot") {
		t.Errorf("leak detail %q does not name the slot ledger", v.Detail)
	}
}

// TestCheckLeaksEachLedger: every outstanding ledger — slots, kernel
// table words, fixup regions — reports independently, and a clean
// ledger reports nothing.
func TestCheckLeaksEachLedger(t *testing.T) {
	c := New(nil)
	c.CheckLeaks(kernel.Resources{})
	if c.Count() != 0 {
		t.Fatalf("clean resources produced %d violations: %v", c.Count(), c.Violations())
	}
	c.CheckLeaks(kernel.Resources{
		SlotsInUse:      2,
		TableWordsInUse: 1,
		RegionsLive:     4,
	})
	if got := countKind(c, KindLeak); got != 3 {
		t.Fatalf("three leaking ledgers produced %d leak violations: %v", got, c.Violations())
	}
}

// tenantFixture builds a consistent two-tenant accounting snapshot:
// threads whose retired instructions match the ledgers, estimates that
// sum to the socket total.
func tenantFixture() (accts []kernel.TenantAcct, machineInstr, uncoreTotal uint64, threads []*kernel.Thread) {
	t0 := &kernel.Thread{Tenant: 0}
	t0.Stats.UserInstructions = 600
	t1 := &kernel.Thread{Tenant: 1}
	t1.Stats.UserInstructions = 400
	accts = []kernel.TenantAcct{
		{ID: 0, Instructions: 600, Cycles: 3000, Uncore: 55, UncoreEst: 60},
		{ID: 1, Instructions: 400, Cycles: 2000, Uncore: 45, UncoreEst: 40},
	}
	return accts, 1000, 100, []*kernel.Thread{t0, t1}
}

// TestCheckTenantsClean: a consistent snapshot produces no violations —
// including a nonzero estimate-vs-truth gap, which is a measurement,
// not a breach.
func TestCheckTenantsClean(t *testing.T) {
	c := New(nil)
	c.CheckTenants(tenantFixture())
	if c.Count() != 0 {
		t.Fatalf("clean tenant snapshot produced violations: %v", c.Violations())
	}
}

// TestCheckTenantsConservation: ledgers that do not sum to the machine
// total trip the conservation oracle.
func TestCheckTenantsConservation(t *testing.T) {
	accts, _, uncore, threads := tenantFixture()
	c := New(nil)
	c.CheckTenants(accts, 1001, uncore, threads)
	if countKind(c, KindTenantConserve) != 1 {
		t.Fatalf("off-by-one machine total did not trip conservation: %v", c.Violations())
	}
}

// TestCheckTenantsLeakage: a ledger that disagrees with its own
// threads' ground truth is cross-tenant leakage, even when the global
// sum still conserves.
func TestCheckTenantsLeakage(t *testing.T) {
	accts, machineInstr, uncore, threads := tenantFixture()
	// Shift 50 instructions from tenant 0's ledger to tenant 1's: the
	// global sum is untouched, the per-tenant attribution is wrong.
	accts[0].Instructions -= 50
	accts[1].Instructions += 50
	c := New(nil)
	c.CheckTenants(accts, machineInstr, uncore, threads)
	if got := countKind(c, KindTenantLeak); got != 2 {
		t.Fatalf("cross-tenant shift produced %d leak violations, want 2: %v", got, c.Violations())
	}
	if countKind(c, KindTenantConserve) != 0 {
		t.Errorf("conserving shift tripped the conservation oracle: %v", c.Violations())
	}
}

// TestCheckTenantsUncoreBounds: estimates that fail to sum to the
// socket total, or that individually exceed it, trip the share oracle.
func TestCheckTenantsUncoreBounds(t *testing.T) {
	accts, machineInstr, uncore, threads := tenantFixture()
	accts[0].UncoreEst = 70 // sum is now 110 != 100
	c := New(nil)
	c.CheckTenants(accts, machineInstr, uncore, threads)
	if countKind(c, KindUncoreShare) != 1 {
		t.Fatalf("non-conserving estimates did not trip the share oracle: %v", c.Violations())
	}

	accts, machineInstr, uncore, threads = tenantFixture()
	accts[0].UncoreEst = 160 // exceeds the socket total outright
	accts[1].UncoreEst = 40
	c = New(nil)
	c.CheckTenants(accts, machineInstr, uncore, threads)
	if countKind(c, KindUncoreShare) < 2 { // per-tenant bound + sum
		t.Fatalf("over-total estimate tripped %d share violations, want >= 2: %v",
			countKind(c, KindUncoreShare), c.Violations())
	}
}

// TestCheckTenantsClampsUntagged mirrors the kernel's tenantOf clamp:
// a thread with an out-of-range tenant tag counts toward tenant 0, so
// a snapshot built under that rule stays clean.
func TestCheckTenantsClampsUntagged(t *testing.T) {
	stray := &kernel.Thread{Tenant: -7}
	stray.Stats.UserInstructions = 25
	owned := &kernel.Thread{Tenant: 0}
	owned.Stats.UserInstructions = 75
	accts := []kernel.TenantAcct{{ID: 0, Instructions: 100}, {ID: 1}}
	c := New(nil)
	c.CheckTenants(accts, 100, 0, []*kernel.Thread{stray, owned})
	if c.Count() != 0 {
		t.Fatalf("clamped stray thread produced violations: %v", c.Violations())
	}
}

// TestCheckTenantsEmpty: no tenant layer, no oracle.
func TestCheckTenantsEmpty(t *testing.T) {
	c := New(nil)
	c.CheckTenants(nil, 12345, 678, nil)
	if c.Count() != 0 {
		t.Fatalf("empty snapshot produced violations: %v", c.Violations())
	}
}
