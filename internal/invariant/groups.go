package invariant

import "limitsim/internal/kernel"

// Event-group oracles: the multiplexing scheduler's accounting must
// conserve exactly, by construction, even under chaos — a rotation
// boundary colliding with a forced preemption or a delayed PMI must
// not tear the enabled/running ledgers.
const (
	// KindGroupConserve: a group's enabled time disagrees with the
	// kernel's scheduled-time ground truth over the group's open
	// interval.
	KindGroupConserve = "group-conservation"
	// KindGroupTear: internal group accounting is inconsistent —
	// running exceeds enabled, or a never-unloaded group's raw counts
	// disagree with omniscient ground truth.
	KindGroupTear = "group-accounting-tear"
	// KindFrameOrder: the frame stream is out of order or inconsistent
	// with the groups that produced it.
	KindFrameOrder = "frame-order"
)

// CheckGroups audits every thread's event groups and the kernel's
// frame stream after a run:
//
//   - Conservation: an open group's enabled time equals the thread's
//     scheduled cycles since open (closed groups: since open until
//     close), exactly — no cycle lost or double counted across
//     rotations, preemptions, migrations, or chaos kills.
//   - Tear-freedom: running never exceeds enabled, and a group with
//     running == enabled (never unloaded while scheduled) has raw
//     counts exactly equal to the kernel's per-event ground truth and
//     estimates equal to raw.
//   - Frame sanity: kernel-wide sequence numbers strictly increase,
//     per-thread cycles and per-sample enabled/running times are
//     non-decreasing (they are cumulative), and every group-holding
//     thread that exited left a final frame. Estimates are exempt: a
//     scaled projection (raw x enabled/running) legally shrinks as the
//     running window converges on the enabled window — the same
//     non-monotonicity Linux perf's scaled reads exhibit.
func (c *Checker) CheckGroups(k *kernel.Kernel) {
	hasGroups := make(map[int]bool)
	for _, t := range k.Threads() {
		gs := t.Groups()
		if len(gs) != 0 {
			hasGroups[t.ID] = true
		}
		for gi, g := range gs {
			want := t.Stats.SchedCycles - g.OpenSchedMark
			if g.Closed {
				want = g.CloseSchedMark - g.OpenSchedMark
			}
			if g.EnabledCycles != want {
				c.report(t.ID, KindGroupConserve,
					"group %d enabled %d cycles but was open for %d scheduled cycles",
					gi, g.EnabledCycles, want)
			}
			if g.RunningCycles > g.EnabledCycles {
				c.report(t.ID, KindGroupTear,
					"group %d running %d exceeds enabled %d",
					gi, g.RunningCycles, g.EnabledCycles)
			}
			if g.RunningCycles == g.EnabledCycles && g.EnabledCycles > 0 {
				for i := range g.Events {
					if g.Raw[i] != g.True[i] {
						c.report(t.ID, KindGroupTear,
							"group %d event %d raw %d != ground truth %d despite running == enabled",
							gi, i, g.Raw[i], g.True[i])
					}
					if g.Estimate(i) != g.Raw[i] {
						c.report(t.ID, KindGroupTear,
							"group %d event %d estimate %d != raw %d despite running == enabled",
							gi, i, g.Estimate(i), g.Raw[i])
					}
				}
			}
		}
	}

	frames := k.Frames()
	lastCycle := make(map[int]uint64)
	type sampleKey struct {
		tid, group, idx int
	}
	prev := make(map[sampleKey]kernel.FrameSample)
	finals := make(map[int]bool)
	for i := range frames {
		f := &frames[i]
		if i > 0 && f.Seq <= frames[i-1].Seq {
			c.report(f.TID, KindFrameOrder,
				"frame %d seq %d not after previous seq %d", i, f.Seq, frames[i-1].Seq)
		}
		if f.Cycle < lastCycle[f.TID] {
			c.report(f.TID, KindFrameOrder,
				"frame %d cycle %d precedes the thread's previous frame at %d",
				i, f.Cycle, lastCycle[f.TID])
		}
		lastCycle[f.TID] = f.Cycle
		if f.Final {
			finals[f.TID] = true
		}
		for j, s := range f.Samples {
			key := sampleKey{f.TID, s.Group, j}
			if p, ok := prev[key]; ok {
				if s.Enabled < p.Enabled || s.Running < p.Running {
					c.report(f.TID, KindFrameOrder,
						"frame %d group %d sample %d regressed: enabled %d<%d or running %d<%d",
						i, s.Group, j, s.Enabled, p.Enabled, s.Running, p.Running)
				}
			}
			if s.Running > s.Enabled {
				c.report(f.TID, KindGroupTear,
					"frame %d group %d sample %d running %d exceeds enabled %d",
					i, s.Group, j, s.Running, s.Enabled)
			}
			prev[key] = s
		}
	}
	for _, t := range k.Threads() {
		if hasGroups[t.ID] && t.State == kernel.StateDone && !finals[t.ID] {
			c.report(t.ID, KindFrameOrder, "group-holding thread exited without a final frame")
		}
	}
}
