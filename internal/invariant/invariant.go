// Package invariant continuously validates the guarantees the LiMiT
// design makes about virtualized counters, using the kernel.Probes
// observation hooks. It is the measuring half of the chaos harness:
// faultinject bends the schedule, this package proves (or disproves)
// that counter values stayed coherent anyway.
//
// Checked invariants:
//
//   - No torn reads: a read sequence that retires its rdpmc and later
//     completes its final add must not have had an overflow fold land
//     on its virtual counter in between — unless the kernel rewound it
//     to restart. The checker arms when the region's first instruction
//     retires, snapshots the counter's fold generation, disarms on
//     rewind, and flags a violation if the sequence completes with the
//     generation changed. With the fixup patch active this never
//     fires; with registration disabled it is exactly the overcount
//     the paper's design exists to prevent.
//   - Rewinds land on region starts: every PC rewind must target the
//     start of the region that contained the interrupted PC.
//   - Virtual counters are monotone: the 64-bit value (user-memory
//     table word + saved hardware value) never decreases across
//     context switches or from switch-out to run end.
//   - Folds conserve counts: the table word equals exactly the sum of
//     chunks the kernel folded into it (FoldInKernel mode).
//   - Per-thread totals sum to the process-wide total reported by
//     limit.ProcessTotal.
//
// The checker observes one process's regions and assumes FoldInKernel
// overflow mode: in SignalUser mode folds happen in a userspace signal
// handler the kernel probes cannot see, and delayed signal delivery
// genuinely tears reads — which is why deployed LiMiT folds in the
// kernel, and why the chaos campaigns run that mode.
package invariant

import (
	"fmt"

	"limitsim/internal/kernel"
	"limitsim/internal/limit"
)

// Violation kinds.
const (
	KindTornRead     = "torn-read"
	KindBadRewind    = "bad-rewind"
	KindNonMonotone  = "non-monotone"
	KindFoldLoss     = "fold-loss"
	KindSumMismatch  = "sum-mismatch"
	KindInvalidState = "invalid-state"
	KindBadInherit   = "bad-inheritance"
	KindBadReap      = "bad-reap"
	KindLeak         = "resource-leak"

	// Tenant-layer oracles (CheckTenants): conservation of per-tenant
	// instruction attribution against the machine total, cross-tenant
	// leakage (a tenant's ledger disagreeing with its own threads'
	// ground truth), and the uncore share-by-cycles policy bounds.
	KindTenantConserve = "tenant-conservation"
	KindTenantLeak     = "tenant-leak"
	KindUncoreShare    = "uncore-share"
)

// Violation is one observed breach of a LiMiT invariant.
type Violation struct {
	TID    int
	Kind   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("tid%d %s: %s", v.TID, v.Kind, v.Detail)
}

// readState tracks one thread's in-flight read sequence.
type readState struct {
	region    kernel.FixupRegion
	tableAddr uint64
	genAt     uint64
}

// maxStored caps how many violations are kept verbatim; the count keeps
// growing past it.
const maxStored = 64

// Checker implements the kernel.Probes hooks. One Checker watches one
// process's read-critical regions for a single machine run; it is not
// safe for concurrent use (the simulator is single-threaded).
type Checker struct {
	regions []kernel.FixupRegion

	gen    map[uint64]uint64 // table word -> fold generation
	folded map[uint64]uint64 // table word -> sum of folded chunks
	armed  map[int]*readState
	low    map[int]map[int]uint64 // thread ID -> counter idx -> floor value

	// reapVals captures each LiMiT counter's final value (table word +
	// saved remainder) at the moment its thread is reaped — before any
	// later thread recycles the table word, which thread-pool churn
	// does every wave.
	reapVals map[int]map[int]uint64 // thread ID -> counter idx -> value

	violations []Violation
	count      int

	// ReadsCompleted counts read sequences that ran to completion —
	// the denominator for the torn-read rate.
	ReadsCompleted uint64
}

// New builds a checker watching the given read-critical PC ranges
// (typically limit.Emitter.Regions(), which are known even when the
// emitter never registered them with the kernel).
func New(regions [][2]int) *Checker {
	c := &Checker{
		gen:      make(map[uint64]uint64),
		folded:   make(map[uint64]uint64),
		armed:    make(map[int]*readState),
		low:      make(map[int]map[int]uint64),
		reapVals: make(map[int]map[int]uint64),
	}
	for _, r := range regions {
		c.regions = append(c.regions, kernel.FixupRegion{Start: r[0], End: r[1]})
	}
	return c
}

// Reset clears every observation so the checker can watch a fresh run
// over the same regions, reusing its allocated maps — the runner's
// worker pools reset one checker per worker instead of allocating one
// per run. Stored violations are dropped (slice capacity kept); the
// caller must have copied out whatever it wants to keep.
func (c *Checker) Reset() {
	clear(c.gen)
	clear(c.folded)
	clear(c.armed)
	clear(c.low)
	clear(c.reapVals)
	c.violations = c.violations[:0]
	c.count = 0
	c.ReadsCompleted = 0
}

// Probes builds the kernel.Probes hook set.
func (c *Checker) Probes() *kernel.Probes {
	return &kernel.Probes{
		Step:      c.step,
		Fold:      c.fold,
		Rewind:    c.rewind,
		SwitchOut: c.switchOut,
		Clone:     c.clone,
		Reap:      c.reap,
	}
}

// Attach installs the checker's probes on a kernel.
func (c *Checker) Attach(k *kernel.Kernel) { k.SetProbes(c.Probes()) }

// Violations returns the stored violations (capped; see Count).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the total number of violations observed, including any
// beyond the storage cap.
func (c *Checker) Count() int { return c.count }

func (c *Checker) report(tid int, kind, format string, args ...any) {
	c.count++
	if len(c.violations) < maxStored {
		c.violations = append(c.violations, Violation{
			TID: tid, Kind: kind, Detail: fmt.Sprintf(format, args...),
		})
	}
}

// step watches instruction retirement for region entry and completion.
func (c *Checker) step(coreID int, t *kernel.Thread, prevPC, pc int) {
	if rs := c.armed[t.ID]; rs != nil {
		switch {
		case prevPC == rs.region.End-1 && pc == rs.region.End:
			// The final add retired: the read is complete. Any fold on
			// this virtual counter since the rdpmc retired means the
			// two halves are from different epochs.
			c.ReadsCompleted++
			if g := c.gen[rs.tableAddr]; g != rs.genAt {
				c.report(t.ID, KindTornRead,
					"read over [%d,%d) completed across %d fold(s) without rewind",
					rs.region.Start, rs.region.End, g-rs.genAt)
			}
			delete(c.armed, t.ID)
		case pc < rs.region.Start || pc >= rs.region.End:
			// Left the region without completing (branch out or a
			// rewind observed only via PC). The read was abandoned;
			// nothing to check.
			delete(c.armed, t.ID)
		case pc == rs.region.Start:
			// Back at the start (rewound between probes): re-arm below.
			delete(c.armed, t.ID)
		}
	}
	if c.armed[t.ID] == nil {
		for _, r := range c.regions {
			if prevPC == r.Start && pc == r.Start+1 {
				if addr, ok := c.counterAddr(t, r.Start); ok {
					c.armed[t.ID] = &readState{region: r, tableAddr: addr, genAt: c.gen[addr]}
				}
				break
			}
		}
	}
}

// counterAddr resolves the virtual-counter address read by the rdpmc
// at pc, which encodes the counter index as its immediate.
func (c *Checker) counterAddr(t *kernel.Thread, pc int) (uint64, bool) {
	prog := t.Proc.Prog
	if pc < 0 || pc >= len(prog.Instrs) {
		return 0, false
	}
	idx := int(prog.Instrs[pc].Imm)
	cs := t.Counters()
	if idx < 0 || idx >= len(cs) || cs[idx].Kind != kernel.KindLimit || cs[idx].Closed {
		return 0, false
	}
	return cs[idx].TableAddr, true
}

// fold bumps the counter's fold generation and conservation ledger.
func (c *Checker) fold(coreID int, t *kernel.Thread, tc *kernel.ThreadCounter, chunk uint64) {
	c.gen[tc.TableAddr]++
	c.folded[tc.TableAddr] += chunk
}

// rewind validates the fixup's contract: the rewound PC must have been
// inside a registered region and must land exactly on its start. A
// rewind also aborts any in-flight read.
func (c *Checker) rewind(t *kernel.Thread, from, to int) {
	ok := false
	for _, r := range c.regions {
		if r.Contains(from) {
			ok = to == r.Start
			break
		}
	}
	if !ok {
		c.report(t.ID, KindBadRewind, "rewind %d -> %d does not match any region start", from, to)
	}
	delete(c.armed, t.ID)
}

// switchOut checks monotonicity of every LiMiT counter at the moment
// its state is fully virtualized.
func (c *Checker) switchOut(coreID int, t *kernel.Thread) {
	c.checkMonotone(t, "switch-out")
}

func (c *Checker) checkMonotone(t *kernel.Thread, when string) {
	for ci, tc := range t.Counters() {
		if tc.Kind != kernel.KindLimit || tc.Closed {
			continue
		}
		cur := t.Proc.Mem.Read64(tc.TableAddr) + tc.Saved
		lows := c.low[t.ID]
		if lows == nil {
			lows = make(map[int]uint64)
			c.low[t.ID] = lows
		}
		if prev, ok := lows[ci]; ok && cur < prev {
			c.report(t.ID, KindNonMonotone,
				"counter %d went backwards at %s: %d -> %d", ci, when, prev, cur)
		}
		lows[ci] = cur
	}
}

// clone validates counter inheritance at the child's birth: the
// child's table must mirror the parent's open set index for index (or
// be uniformly degraded to flagged perf estimates), and every
// inherited LiMiT counter must start from zero — table word and saved
// remainder both — so child and parent deltas conserve: nothing the
// parent counted leaks into the child.
func (c *Checker) clone(coreID int, parent, child *kernel.Thread, degraded bool) {
	pcs, ccs := parent.Counters(), child.Counters()
	if len(ccs) != len(pcs) {
		c.report(child.ID, KindBadInherit,
			"child has %d counters, parent %d", len(ccs), len(pcs))
		return
	}
	for i, cc := range ccs {
		pc := pcs[i]
		if pc.Closed {
			if !cc.Closed {
				c.report(child.ID, KindBadInherit,
					"counter %d open in child but closed in parent", i)
			}
			continue
		}
		if degraded {
			if cc.Closed && pc.Kind == kernel.KindSample {
				continue // samplers are dropped, not degraded
			}
			if cc.Kind != kernel.KindPerf || !cc.Estimated {
				c.report(child.ID, KindBadInherit,
					"degraded child counter %d is %v estimated=%v, want flagged perf",
					i, cc.Kind, cc.Estimated)
			}
			continue
		}
		if cc.Kind != pc.Kind || cc.Event != pc.Event ||
			cc.CountUser != pc.CountUser || cc.CountKernel != pc.CountKernel {
			c.report(child.ID, KindBadInherit,
				"counter %d configuration does not mirror the parent's", i)
		}
		if cc.Kind != kernel.KindLimit {
			continue
		}
		if v := child.Proc.Mem.Read64(cc.TableAddr); v != 0 || cc.Saved != 0 {
			c.report(child.ID, KindBadInherit,
				"counter %d starts at table=%d saved=%d, want zero", i, v, cc.Saved)
		}
		// The child's table word may recycle a dead thread's (thread-
		// pool churn reuses per-slot words every wave); the kernel just
		// zeroed it, so its fold/conservation ledgers restart too.
		delete(c.gen, cc.TableAddr)
		delete(c.folded, cc.TableAddr)
	}
}

// reap validates reclamation as a thread dies: its values must still
// be monotone, every counter's ledger accounting must have been
// returned, and each live LiMiT counter's final value is captured
// while its table word is still the thread's own.
func (c *Checker) reap(coreID int, t *kernel.Thread) {
	c.checkMonotone(t, "reap")
	for i, tc := range t.Counters() {
		if !tc.Released {
			c.report(t.ID, KindBadReap, "counter %d not released at reap", i)
		}
		if tc.Kind != kernel.KindLimit || tc.Closed {
			continue
		}
		vals := c.reapVals[t.ID]
		if vals == nil {
			vals = make(map[int]uint64)
			c.reapVals[t.ID] = vals
		}
		vals[i] = t.Proc.Mem.Read64(tc.TableAddr) + tc.Saved
	}
}

// ReapValue returns the final value counter idx held at the moment
// thread tid was reaped, if the reap probe observed one.
func (c *Checker) ReapValue(tid, idx int) (uint64, bool) {
	v, ok := c.reapVals[tid][idx]
	return v, ok
}

// CheckLeaks audits the kernel's resource accounting after a run in
// which every thread has exited: anything still outstanding — a pinned
// counter slot, a kernel-allocated virtual-counter word, a fixup-
// region registration — was acquired by some thread and never
// returned, which is exactly the leak class exit-time reclamation
// exists to prevent.
func (c *Checker) CheckLeaks(res kernel.Resources) {
	if res.SlotsInUse != 0 {
		c.report(0, KindLeak,
			"%d counter slot(s) never returned (peak %d, capacity %d, denials %d)",
			res.SlotsInUse, res.SlotsPeak, res.SlotCapacity, res.SlotDenials)
	}
	if res.TableWordsInUse != 0 {
		c.report(0, KindLeak,
			"%d kernel-allocated virtual-counter word(s) never returned (peak %d)",
			res.TableWordsInUse, res.TableWordsPeak)
	}
	if res.RegionsLive != 0 {
		c.report(0, KindLeak,
			"%d fixup-region registration(s) never dropped (peak %d)",
			res.RegionsLive, res.RegionsPeak)
	}
}

// CheckTenants audits the tenant attribution ledger after a run with
// the guest-scheduler layer active:
//
//   - Conservation: tenant instruction ledgers sum exactly to the
//     machine's user-ring ground truth — the double context switch
//     lost nothing and invented nothing.
//   - No cross-tenant leakage: each tenant's ledger equals the sum of
//     its own threads' true retired-instruction counts, so no tenant
//     was billed for another's work.
//   - Uncore share bounds: the share-by-cycles estimates sum exactly
//     to the socket total and no single estimate exceeds it. (The
//     estimate-vs-truth gap is a reported measurement, not a
//     violation — the policy is approximate by design.)
//
// machineUserInstr is machine.GroundTruthRing(EvInstructions,
// RingUser); uncoreTotal the socket-wide uncore-event count.
func (c *Checker) CheckTenants(accts []kernel.TenantAcct, machineUserInstr, uncoreTotal uint64, threads []*kernel.Thread) {
	if len(accts) == 0 {
		return
	}
	var instrSum, estSum uint64
	perTenant := make([]uint64, len(accts))
	for _, t := range threads {
		tid := t.Tenant
		if tid < 0 || tid >= len(accts) {
			tid = 0 // mirror the kernel's tenantOf clamp
		}
		perTenant[tid] += t.Stats.UserInstructions
	}
	for _, a := range accts {
		instrSum += a.Instructions
		estSum += a.UncoreEst
		if a.Instructions != perTenant[a.ID] {
			c.report(0, KindTenantLeak,
				"tenant %d ledger holds %d user instructions but its threads retired %d",
				a.ID, a.Instructions, perTenant[a.ID])
		}
		if a.UncoreEst > uncoreTotal {
			c.report(0, KindUncoreShare,
				"tenant %d uncore estimate %d exceeds socket total %d",
				a.ID, a.UncoreEst, uncoreTotal)
		}
	}
	if instrSum != machineUserInstr {
		c.report(0, KindTenantConserve,
			"tenant ledgers sum to %d user instructions but the machine retired %d",
			instrSum, machineUserInstr)
	}
	if estSum != uncoreTotal {
		c.report(0, KindUncoreShare,
			"uncore estimates sum to %d but the socket counted %d", estSum, uncoreTotal)
	}
}

// Finalize runs the end-of-run checks for one process: final
// monotonicity, fold conservation, and the per-thread-sum identity
// behind limit.ProcessTotal. Call it after the machine run completes.
func (c *Checker) Finalize(proc *kernel.Process, threads []*kernel.Thread, counterIdx int) {
	var sum uint64
	counted := 0
	for _, t := range threads {
		if t.Proc != proc {
			continue
		}
		cs := t.Counters()
		if counterIdx >= len(cs) || cs[counterIdx].Kind != kernel.KindLimit || cs[counterIdx].Closed {
			continue
		}
		c.checkMonotone(t, "finalize")
		tc := cs[counterIdx]
		virt := proc.Mem.Read64(tc.TableAddr)
		if folded := c.folded[tc.TableAddr]; virt != folded {
			c.report(t.ID, KindFoldLoss,
				"counter %d virtual word holds %d but kernel folded %d", counterIdx, virt, folded)
		}
		v, err := limit.FinalValue(t, counterIdx)
		if err != nil {
			c.report(t.ID, KindInvalidState, "final value: %v", err)
			continue
		}
		sum += v
		counted++
	}
	if counted == 0 {
		return
	}
	total, err := limit.ProcessTotal(proc, threads, counterIdx)
	if err != nil {
		c.report(0, KindInvalidState, "process total: %v", err)
		return
	}
	if total != sum {
		c.report(0, KindSumMismatch,
			"per-thread final values sum to %d but ProcessTotal reports %d", sum, total)
	}
}
