package invariant

import (
	"fmt"
	"testing"

	"limitsim/internal/faultinject"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
)

// buildGroupChaosWorkload assembles a thread body that oversubscribes
// the PMU with three two-event groups, starts a sampling profiler (a
// steady source of real overflow interrupts for the PMI-delay mixes),
// and loops over memory so every group event counts.
func buildGroupChaosWorkload(space *mem.Space) *isa.Program {
	b := isa.NewBuilder()
	for _, specs := range [][]perfevent.Spec{
		{perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions)},
		{perfevent.AllRingsSpec(pmu.EvCycles), perfevent.KernelSpec(pmu.EvCycles)},
		{perfevent.UserSpec(pmu.EvLoads), perfevent.UserSpec(pmu.EvStores)},
	} {
		table := perfevent.GroupTable(space, specs)
		perfevent.EmitGroupOpen(b, table, len(specs))
	}
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, 60_000)
	b.Syscall(kernel.SysSampleStart)

	buf := space.AllocWords(8)
	b.MovImm(isa.R1, 250_000)
	b.MovImm(isa.R2, 0)
	b.MovImm(isa.R3, int64(buf))
	b.Label("loop")
	b.Store(isa.R3, 0, isa.R1)
	b.Load(isa.R4, isa.R3, 0)
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestCheckGroupsUnderChaos sweeps fault mixes and seeds over an
// oversubscribed group workload: rotation boundaries colliding with
// forced preemptions, delayed and spurious PMIs, migration storms,
// and asynchronous kills must never tear group enabled/running
// accounting or the frame stream.
func TestCheckGroupsUnderChaos(t *testing.T) {
	mixes := []struct {
		name string
		cfg  faultinject.Config
		kill bool
	}{
		{"preempt-storm", faultinject.Config{PreemptEvery: 400}, false},
		{"delayed-pmi", faultinject.Config{DelayPMI: true, DelayBoundaries: 5, SpuriousPMIEvery: 900}, false},
		{"migration-storm", faultinject.Config{MigrationStorm: true, PreemptEvery: 600}, false},
		{"kill-storm", faultinject.Config{KillEvery: 350_000, PreemptEvery: 500}, true},
	}
	for _, mix := range mixes {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mix.name, seed), func(t *testing.T) {
				m := machine.New(machine.Config{NumCores: 2})
				space := mem.NewSpace()
				prog := buildGroupChaosWorkload(space)
				proc := m.Kern.NewProcess(prog, space)
				m.Kern.Spawn(proc, "a", 0, seed)
				m.Kern.Spawn(proc, "b", 0, seed+100)

				cfg := mix.cfg
				cfg.Seed = seed
				inj := faultinject.New(cfg)
				inj.SetCores(2)
				inj.Attach(m.Kern)

				res := m.Run(machine.RunLimits{MaxSteps: 200_000_000})
				if !mix.kill {
					if len(res.Faults) > 0 {
						t.Fatalf("faults: %v", res.Faults)
					}
					if !res.AllDone {
						t.Fatal("run incomplete")
					}
				}
				if m.Kern.Stats.MuxRotations == 0 {
					t.Fatal("no rotations fired; the mix starved the scheduler")
				}

				c := New(nil)
				c.CheckGroups(m.Kern)
				for _, v := range c.Violations() {
					t.Errorf("violation: %v", v)
				}
			})
		}
	}
}

// TestCheckGroupsSyntheticTear proves the oracle detects what it
// claims to: frames fabricated with regressing samples and a group
// whose enabled time disagrees with scheduled time must be reported.
func TestCheckGroupsSyntheticTear(t *testing.T) {
	// Real run first, then corrupt the thread's group state in place.
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	prog := buildGroupChaosWorkload(space)
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 200_000_000})
	if !res.AllDone || len(res.Faults) > 0 {
		t.Fatalf("setup run failed: %+v", res)
	}

	c := New(nil)
	c.CheckGroups(m.Kern)
	if c.Count() != 0 {
		t.Fatalf("clean run reported violations: %v", c.Violations())
	}

	g := th.Groups()[0]
	g.EnabledCycles++ // conservation breach
	c2 := New(nil)
	c2.CheckGroups(m.Kern)
	if countKind(c2, KindGroupConserve) == 0 {
		t.Error("oracle missed a conservation breach")
	}
	g.EnabledCycles--

	g.RunningCycles = g.EnabledCycles + 1 // running > enabled
	c3 := New(nil)
	c3.CheckGroups(m.Kern)
	if countKind(c3, KindGroupTear) == 0 {
		t.Error("oracle missed running > enabled")
	}
}
