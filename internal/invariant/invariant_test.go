package invariant

import (
	"strings"
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// buildLoop emits a single-thread measured read loop and returns the
// pieces a test needs. With narrow counter writes the loop folds
// constantly, which is what the checker's generation oracle watches.
func buildLoop(iters, computeK int) (*isa.Program, *mem.Space, [][2]int, uint64, uint64) {
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	buf := space.AllocWords(uint64(iters))
	e.EmitInit()
	b.MovImm(isa.R12, int64(buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(int64(computeK))
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(iters))
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	e.EmitFinish()
	r := e.Regions()[0]
	want := uint64(computeK) + uint64(r[1]-r[0])
	return b.MustBuild(), space, e.Regions(), buf, want
}

// TestCheckerSilentOnCleanRun attaches the checker to a contended,
// frequently folding run with the fixup active and requires complete
// silence plus a satisfied end-of-run audit.
func TestCheckerSilentOnCleanRun(t *testing.T) {
	prog, space, regions, _, _ := buildLoop(200, 25)
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 9
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 2_000 // heavy natural preemption
	m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kcfg})

	chk := New(regions)
	chk.Attach(m.Kern)

	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "clean", 0, 11)
	m.Kern.Spawn(proc, "rival", 0, 12)

	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	chk.Finalize(proc, m.Kern.Threads(), 0)
	if chk.Count() != 0 {
		t.Fatalf("clean run produced %d violations: %v", chk.Count(), chk.Violations())
	}
	if chk.ReadsCompleted == 0 {
		t.Fatal("checker observed no completed reads")
	}
}

// TestCheckerFlagsBadRewind drives the rewind probe directly with a
// target that is not the region start and expects the bad-rewind kind.
func TestCheckerFlagsBadRewind(t *testing.T) {
	prog, space, regions, _, _ := buildLoop(8, 10)
	m := machine.New(machine.Config{NumCores: 1})
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "bad", 0, 1)

	chk := New(regions)
	p := chk.Probes()
	r := regions[0]
	p.Rewind(th, r[0]+1, r[0]+2) // rewind inside the region but not to its start
	if chk.Count() != 1 {
		t.Fatalf("want 1 violation, got %d", chk.Count())
	}
	if v := chk.Violations()[0]; v.Kind != KindBadRewind {
		t.Errorf("want %s, got %v", KindBadRewind, v)
	}
	// A correct rewind must stay silent.
	p.Rewind(th, r[0]+1, r[0])
	if chk.Count() != 1 {
		t.Errorf("correct rewind was flagged: %v", chk.Violations())
	}
}

// TestCheckerFlagsNonMonotone completes a run, then rolls the virtual
// counter's table word backwards and asks for another monotonicity
// check — the checker must notice the regression.
func TestCheckerFlagsNonMonotone(t *testing.T) {
	prog, space, regions, _, _ := buildLoop(100, 10)
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 9
	m := machine.New(machine.Config{NumCores: 1, PMU: feats})

	chk := New(regions)
	chk.Attach(m.Kern)

	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "mono", 0, 3)
	if res := m.Run(machine.RunLimits{MaxSteps: 5_000_000}); res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}

	tc := th.Counters()[0]
	chk.Probes().SwitchOut(0, th) // records the current floor
	cur := proc.Mem.Read64(tc.TableAddr)
	if cur == 0 {
		t.Fatal("no folds in run; the workload must be long enough to fold")
	}
	proc.Mem.Write64(tc.TableAddr, cur-1)
	chk.Probes().SwitchOut(0, th)
	found := false
	for _, v := range chk.Violations() {
		if v.Kind == KindNonMonotone && strings.Contains(v.Detail, "went backwards") {
			found = true
		}
	}
	if !found {
		t.Errorf("regressed counter not flagged: %v", chk.Violations())
	}
}

// TestFinalizeFlagsFoldLoss corrupts the fold-conservation ledger by
// adding an extra chunk to the table word behind the kernel's back; the
// end-of-run audit must report the discrepancy.
func TestFinalizeFlagsFoldLoss(t *testing.T) {
	prog, space, regions, _, _ := buildLoop(16, 10)
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 9
	m := machine.New(machine.Config{NumCores: 1, PMU: feats})

	chk := New(regions)
	chk.Attach(m.Kern)

	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "loss", 0, 5)
	if res := m.Run(machine.RunLimits{MaxSteps: 5_000_000}); res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}

	tc := th.Counters()[0]
	proc.Mem.Add64(tc.TableAddr, 512) // phantom fold the kernel never performed
	chk.Finalize(proc, m.Kern.Threads(), 0)
	found := false
	for _, v := range chk.Violations() {
		if v.Kind == KindFoldLoss {
			found = true
		}
	}
	if !found {
		t.Errorf("phantom fold not flagged: %v", chk.Violations())
	}
}
