package sampling_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/pmu"
	"limitsim/internal/sampling"
)

// buildTwoPhase builds a program spending ~90% of its instructions in
// symbol "hot" and ~10% in symbol "cold". Compute work is chunked into
// small blocks (as the real workload generators do) so that overflow
// interrupts land at fine instruction granularity.
func buildTwoPhase(period uint64) *isa.Program {
	b := isa.NewBuilder()
	sampling.EmitStart(b, pmu.EvInstructions, period)
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 100)
	b.Label("loop")
	b.BeginSymbol("hot")
	for i := 0; i < 18; i++ {
		b.Compute(50)
	}
	b.EndSymbol()
	b.BeginSymbol("cold")
	for i := 0; i < 5; i++ {
		b.Compute(20)
	}
	b.EndSymbol()
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	sampling.EmitStop(b)
	b.Halt()
	return b.MustBuild()
}

func TestAttributionMatchesWorkloadShape(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	prog := buildTwoPhase(500)
	proc := m.Kern.NewProcess(prog, nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	at := sampling.Attribute(m.Kern.Samples(), prog, 500, -1)
	if at.TotalSamples < 150 {
		t.Fatalf("only %d samples; expected ~200", at.TotalSamples)
	}
	hot := at.Share("hot")
	cold := at.Share("cold")
	if hot < 0.80 || hot > 0.97 {
		t.Errorf("hot share %.3f, want ~0.9", hot)
	}
	if cold < 0.03 || cold > 0.20 {
		t.Errorf("cold share %.3f, want ~0.1", cold)
	}
}

func TestAttributionScalesByPeriod(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	prog := buildTwoPhase(1_000)
	proc := m.Kern.NewProcess(prog, nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	at := sampling.Attribute(m.Kern.Samples(), prog, 1_000, -1)
	// ~100k instructions sampled at period 1000 → estimate ~100k events.
	total := at.EstimatedTotal()
	if total < 80_000 || total > 120_000 {
		t.Errorf("estimated total %d, want ~100k", total)
	}
}

func TestAttributionFiltersByTID(t *testing.T) {
	samples := []kernel.Sample{
		{TID: 1, PC: 0},
		{TID: 2, PC: 0},
		{TID: 2, PC: 0},
	}
	b := isa.NewBuilder()
	b.BeginSymbol("only")
	b.Nop()
	b.EndSymbol()
	prog := b.MustBuild()

	at := sampling.Attribute(samples, prog, 10, 2)
	if at.TotalSamples != 2 {
		t.Errorf("tid filter kept %d, want 2", at.TotalSamples)
	}
	if at.BySymbol["only"] != 20 {
		t.Errorf("symbol estimate %d, want 20", at.BySymbol["only"])
	}
}

func TestUnattributedSamples(t *testing.T) {
	b := isa.NewBuilder()
	b.Nop() // pc 0 outside any symbol
	prog := b.MustBuild()
	at := sampling.Attribute([]kernel.Sample{{TID: 1, PC: 0}}, prog, 10, -1)
	if at.Unattributed != 1 {
		t.Errorf("unattributed %d, want 1", at.Unattributed)
	}
	if at.EstimatedTotal() != 10 {
		t.Errorf("estimated total %d, want 10 (unattributed still counts)", at.EstimatedTotal())
	}
	if at.Share("nothing") != 0 {
		t.Error("missing symbol share should be 0")
	}
}

func TestEmptyAttribution(t *testing.T) {
	prog := isa.NewBuilder().Nop().MustBuild()
	at := sampling.Attribute(nil, prog, 10, -1)
	if at.EstimatedTotal() != 0 || at.Share("x") != 0 {
		t.Error("empty sample set must yield zero estimates")
	}
}

func TestSamplingPerturbsLessAtCoarserPeriods(t *testing.T) {
	run := func(period uint64) uint64 {
		m := machine.New(machine.Config{NumCores: 1})
		prog := buildTwoPhase(period)
		proc := m.Kern.NewProcess(prog, nil)
		m.Kern.Spawn(proc, "w", 0, 1)
		return m.MustRun(machine.RunLimits{}).Cycles
	}
	fine := run(200)
	coarse := run(20_000)
	if fine <= coarse {
		t.Errorf("fine sampling (%d cycles) should cost more than coarse (%d)", fine, coarse)
	}
}
