// Package sampling implements the statistical baseline the paper
// contrasts with precise counting: overflow-driven PC sampling (the
// mechanism behind perf record / oprofile / VTune). The kernel arms a
// counter to interrupt every `period` events and records the
// interrupted PC; post-hoc attribution assigns each sample's period to
// the program symbol containing the PC.
//
// Sampling is cheap per *read* (there are no reads) but imprecise: it
// cannot measure an individual short region at all, and its aggregate
// attribution error grows as regions shrink relative to the period —
// the effect the paper's Table on sampling accuracy quantifies.
package sampling

import (
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/pmu"
)

// EmitStart emits the syscall arming sampled profiling of ev with the
// given period on the calling thread. Clobbers R0, R1.
func EmitStart(b *isa.Builder, ev pmu.Event, period uint64) {
	b.MovImm(isa.R0, int64(ev))
	b.MovImm(isa.R1, int64(period))
	b.Syscall(kernel.SysSampleStart)
}

// EmitStop emits the syscall disarming the calling thread's sampler.
func EmitStop(b *isa.Builder) {
	b.Syscall(kernel.SysSampleStop)
}

// Attribution is the result of attributing samples to symbols.
type Attribution struct {
	// Period is the sampling period used for scaling.
	Period uint64
	// BySymbol maps symbol name to estimated event count
	// (samples × period).
	BySymbol map[string]uint64
	// Unattributed counts samples whose PC fell outside every symbol.
	Unattributed uint64
	// TotalSamples is the number of samples considered.
	TotalSamples uint64
}

// EstimatedTotal returns the total estimated events across symbols,
// including unattributed samples.
func (a *Attribution) EstimatedTotal() uint64 {
	sum := a.Unattributed * a.Period
	for _, v := range a.BySymbol {
		sum += v
	}
	return sum
}

// Share returns symbol's fraction of the estimated total (0 when no
// samples landed anywhere).
func (a *Attribution) Share(symbol string) float64 {
	total := a.EstimatedTotal()
	if total == 0 {
		return 0
	}
	return float64(a.BySymbol[symbol]) / float64(total)
}

// Attribute maps each sample to the innermost program symbol containing
// its PC and scales by the period. Pass tid < 0 to aggregate over all
// threads.
func Attribute(samples []kernel.Sample, prog *isa.Program, period uint64, tid int) *Attribution {
	a := &Attribution{Period: period, BySymbol: make(map[string]uint64)}
	for _, s := range samples {
		if tid >= 0 && s.TID != tid {
			continue
		}
		a.TotalSamples++
		if sym, ok := prog.SymbolAt(s.PC); ok {
			a.BySymbol[sym.Name] += period
		} else {
			a.Unattributed++
		}
	}
	return a
}
