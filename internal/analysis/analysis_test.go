package analysis_test

import (
	"testing"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/workloads"
)

func runMySQL(t *testing.T, ins workloads.Instrumentation) (*workloads.App, *machine.Machine) {
	t.Helper()
	cfg := workloads.MySQLVersion("5.1")
	cfg.Workers = 4
	cfg.TxnsPerWorker = 15
	app := workloads.BuildMySQL(cfg, ins)
	m, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: 100_000_000})
	if len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %v", res)
	}
	return app, m
}

func TestCollectSyncConsistency(t *testing.T) {
	app, _ := runMySQL(t, workloads.LimitInstr())
	p := analysis.CollectSync(app)

	if len(p.Threads) != 4 {
		t.Fatalf("threads %d", len(p.Threads))
	}
	var opsSum uint64
	for _, ts := range p.Threads {
		opsSum += ts.Ops
		if ts.AcqCycles == 0 || ts.CSCycles == 0 || ts.TotalCycles == 0 {
			t.Errorf("%s has zero measurements: %+v", ts.Name, ts)
		}
		if ts.AcqCycles+ts.CSCycles >= ts.TotalCycles {
			t.Errorf("%s: sync exceeds total", ts.Name)
		}
	}
	if opsSum != p.OpsTotal() {
		t.Error("OpsTotal disagrees with per-thread sum")
	}
	if uint64(p.CS.N()) != opsSum || p.CSHist.Total() != opsSum {
		t.Error("summary and histogram must cover every operation")
	}
	if p.Acq.N() != p.CS.N() {
		t.Error("acquisition and CS sample counts must match")
	}
}

func TestDecomposeSharesSumToOne(t *testing.T) {
	app, _ := runMySQL(t, workloads.LimitInstr())
	d := analysis.CollectSync(app).Decompose()
	sum := d.AcquireShare + d.CSShare + d.OtherShare
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("user shares sum to %f", sum)
	}
	if d.SyncShare != d.AcquireShare+d.CSShare {
		t.Error("SyncShare must be acquire+cs")
	}
	if d.KernelShare <= 0 || d.KernelShare >= 1 {
		t.Errorf("kernel share %f out of (0,1)", d.KernelShare)
	}
	if d.AllRing <= d.User {
		t.Error("user+kernel cycles must exceed user cycles")
	}
}

func TestLongitudinalRow(t *testing.T) {
	app, _ := runMySQL(t, workloads.LimitInstr())
	p := analysis.CollectSync(app)
	row := analysis.Longitudinal("5.1", 4*15, p)
	if row.LocksPerTxn != float64(p.OpsTotal())/60 {
		t.Errorf("locks/txn %f", row.LocksPerTxn)
	}
	if row.MeanHold <= 0 || row.SyncShare <= 0 || row.TotalMcycles <= 0 {
		t.Errorf("row fields zero: %+v", row)
	}
	zero := analysis.Longitudinal("x", 0, p)
	if zero.LocksPerTxn != 0 {
		t.Error("zero transactions must not divide")
	}
}

func TestSampledSharesAgainstPrecise(t *testing.T) {
	// Fine-grained sampling on the same workload should land within a
	// reasonable distance of the precise decomposition.
	appP, _ := runMySQL(t, workloads.LimitInstr())
	d := analysis.CollectSync(appP).Decompose()

	const period = 2_000
	appS, m := runMySQL(t, workloads.Instrumentation{Kind: probe.KindSample, SamplePeriod: period})
	acq, cs, n := analysis.SampledShares(m.Kern.Samples(), appS, period)
	if n == 0 {
		t.Fatal("no samples")
	}
	preciseSync := d.SyncShare
	sampledSync := acq + cs
	if diff := sampledSync - preciseSync; diff < -0.25 || diff > 0.25 {
		t.Errorf("sampled sync %f vs precise %f: too far apart", sampledSync, preciseSync)
	}
}

func TestDecomposeEmptyProfile(t *testing.T) {
	p := &analysis.SyncProfile{
		Acq: nil, CS: nil,
	}
	// An empty profile must not panic or divide by zero.
	d := p.Decompose()
	if d.SyncShare != 0 || d.KernelShare != 0 {
		t.Errorf("empty decomposition %+v", d)
	}
}
