package analysis

import (
	"fmt"

	"limitsim/internal/workloads"
)

// EventRates are per-kilocycle rates for the bottleneck event set.
type EventRates struct {
	Cycles      uint64
	L1DPerKC    float64 // L1D misses per kilocycle
	LLCPerKC    float64
	BrMissPerKC float64
}

func ratesFrom(vals [4]uint64) EventRates {
	r := EventRates{Cycles: vals[0]}
	if vals[0] == 0 {
		return r
	}
	kc := float64(vals[0]) / 1000
	r.L1DPerKC = float64(vals[1]) / kc
	r.LLCPerKC = float64(vals[2]) / kc
	r.BrMissPerKC = float64(vals[3]) / kc
	return r
}

// BottleneckProfile compares microarchitectural event rates inside
// critical sections against the rest of the program — the paper's
// "rapid identification of architectural bottlenecks" use case. A
// critical section whose miss rates far exceed the program's baseline
// is memory-bound under the lock: shrinking its data footprint (or
// adding speculation) matters more than shortening its instruction
// path.
type BottleneckProfile struct {
	App     string
	InCS    EventRates
	Outside EventRates
	Overall EventRates
	// CSCycleShare is the fraction of measured cycles spent inside
	// critical sections.
	CSCycleShare float64
}

// CollectBottleneck aggregates an app's bottleneck accumulators. The
// app must have been built with workloads.BottleneckInstr.
func CollectBottleneck(app *workloads.App) (*BottleneckProfile, error) {
	var inCS, totals [4]uint64
	found := false
	for _, plan := range app.Plans {
		body := app.Bodies[plan.Body]
		if !body.Bottleneck.Valid {
			continue
		}
		found = true
		tb := app.ThreadBase(plan)
		for i := range inCS {
			inCS[i] += app.Space.Read64(body.Bottleneck.InCS.Word(i).Resolve(tb))
			totals[i] += app.Space.Read64(body.Bottleneck.Totals.Word(i).Resolve(tb))
		}
	}
	if !found {
		return nil, fmt.Errorf("analysis: %s was not built with bottleneck instrumentation", app.Name)
	}
	var outside [4]uint64
	for i := range outside {
		if totals[i] >= inCS[i] {
			outside[i] = totals[i] - inCS[i]
		}
	}
	p := &BottleneckProfile{
		App:     app.Name,
		InCS:    ratesFrom(inCS),
		Outside: ratesFrom(outside),
		Overall: ratesFrom(totals),
	}
	if totals[0] > 0 {
		p.CSCycleShare = float64(inCS[0]) / float64(totals[0])
	}
	return p, nil
}

// MemoryBoundCS reports whether the app's critical sections are
// memory-bound relative to the rest of the program (L1D miss rate at
// least 2x the outside rate).
func (p *BottleneckProfile) MemoryBoundCS() bool {
	if p.Outside.L1DPerKC == 0 {
		return p.InCS.L1DPerKC > 0
	}
	return p.InCS.L1DPerKC >= 2*p.Outside.L1DPerKC
}
