// Package analysis extracts the measurements the simulated programs
// recorded (via internal/rec buffers and TLS totals) into structured
// results: per-thread synchronization profiles, cycle decompositions,
// critical-section length distributions, kernel/user splits, and
// sampled-vs-precise attribution comparisons. It is the host-side
// half of the paper's case studies.
package analysis

import (
	"limitsim/internal/kernel"
	"limitsim/internal/sampling"
	"limitsim/internal/stats"
	"limitsim/internal/workloads"
)

// ThreadSync is one thread's synchronization measurements.
type ThreadSync struct {
	Name string
	Body int
	// Ops is the number of recorded lock operations.
	Ops uint64
	// AcqCycles and CSCycles are summed acquisition and critical-
	// section cycles.
	AcqCycles uint64
	CSCycles  uint64
	// TotalCycles is the thread's measured total (user ring).
	TotalCycles uint64
	// AllRingCycles is the thread's user+kernel total (0 when not
	// measured).
	AllRingCycles uint64
}

// SyncProfile aggregates an app run's synchronization behavior.
type SyncProfile struct {
	App     string
	Threads []ThreadSync
	// Acq and CS summarize per-operation acquisition latency and
	// critical-section length across all threads.
	Acq *stats.Summary
	CS  *stats.Summary
	// CSHist is the log2 histogram of critical-section lengths (the
	// paper's headline case-study figure).
	CSHist *stats.LogHistogram
	// AcqHist is the log2 histogram of acquisition latencies.
	AcqHist *stats.LogHistogram
	// Barrier summarizes barrier wait cycles (empty for apps without
	// barriers).
	Barrier *stats.Summary
}

// CollectSync reads an app's instrumentation records after a run.
func CollectSync(app *workloads.App) *SyncProfile {
	p := &SyncProfile{App: app.Name, CSHist: &stats.LogHistogram{}, AcqHist: &stats.LogHistogram{}}
	var allAcq, allCS, allBar []uint64
	for _, plan := range app.Plans {
		body := app.Bodies[plan.Body]
		tb := app.ThreadBase(plan)
		ts := ThreadSync{Name: plan.Name, Body: plan.Body}
		if body.LockRec.Cap > 0 {
			for _, r := range body.LockRec.Records(app.Space, tb) {
				acq, cs := r[0], r[1]
				ts.Ops++
				ts.AcqCycles += acq
				ts.CSCycles += cs
				allAcq = append(allAcq, acq)
				allCS = append(allCS, cs)
				p.AcqHist.Add(acq)
				p.CSHist.Add(cs)
			}
		}
		if body.BarrierRec.Cap > 0 {
			allBar = append(allBar, body.BarrierRec.Column(app.Space, tb, 0)...)
		}
		ts.TotalCycles = app.Space.Read64(body.TotalCycles.Resolve(tb))
		if body.HasRing {
			ts.AllRingCycles = app.Space.Read64(body.AllRingCycles.Resolve(tb))
		}
		p.Threads = append(p.Threads, ts)
	}
	p.Acq = stats.NewSummary(allAcq)
	p.CS = stats.NewSummary(allCS)
	p.Barrier = stats.NewSummary(allBar)
	return p
}

// Decomposition is the share of an app's cycles spent in each
// synchronization category. Shares of user cycles sum with OtherShare
// to 1; KernelShare is relative to user+kernel cycles and is 0 when
// ring totals were not measured.
type Decomposition struct {
	AcquireShare float64
	CSShare      float64
	OtherShare   float64
	KernelShare  float64
	// SyncShare = AcquireShare + CSShare.
	SyncShare float64
	// Totals (cycles).
	User    uint64
	AllRing uint64
	Acq     uint64
	CS      uint64
}

// Decompose computes the cycle decomposition across all threads.
func (p *SyncProfile) Decompose() Decomposition {
	var d Decomposition
	for _, t := range p.Threads {
		d.User += t.TotalCycles
		d.AllRing += t.AllRingCycles
		d.Acq += t.AcqCycles
		d.CS += t.CSCycles
	}
	if d.User > 0 {
		d.AcquireShare = float64(d.Acq) / float64(d.User)
		d.CSShare = float64(d.CS) / float64(d.User)
		d.OtherShare = 1 - d.AcquireShare - d.CSShare
		d.SyncShare = d.AcquireShare + d.CSShare
	}
	if d.AllRing > d.User {
		d.KernelShare = float64(d.AllRing-d.User) / float64(d.AllRing)
	}
	return d
}

// OpsTotal returns the total recorded lock operations.
func (p *SyncProfile) OpsTotal() uint64 {
	var n uint64
	for _, t := range p.Threads {
		n += t.Ops
	}
	return n
}

// VersionRow is one longitudinal-study row.
type VersionRow struct {
	Version      string
	LocksPerTxn  float64
	MeanHold     float64 // mean critical-section cycles
	MeanAcq      float64 // mean acquisition cycles
	SyncShare    float64
	KernelShare  float64
	TotalMcycles float64
}

// Longitudinal summarizes one MySQL version run into a row.
func Longitudinal(version string, txns uint64, p *SyncProfile) VersionRow {
	d := p.Decompose()
	row := VersionRow{
		Version:      version,
		MeanHold:     p.CS.Mean(),
		MeanAcq:      p.Acq.Mean(),
		SyncShare:    d.SyncShare,
		KernelShare:  d.KernelShare,
		TotalMcycles: float64(d.User) / 1e6,
	}
	if txns > 0 {
		row.LocksPerTxn = float64(p.OpsTotal()) / float64(txns)
	}
	return row
}

// SampledShares attributes a run's samples to the synchronization
// symbols and returns (acquireShare, csShare) as fractions of all
// samples, alongside the total sample count.
func SampledShares(samples []kernel.Sample, app *workloads.App, period uint64) (acq, cs float64, n uint64) {
	at := sampling.Attribute(samples, app.Prog, period, -1)
	n = at.TotalSamples
	total := at.EstimatedTotal()
	if total == 0 {
		return 0, 0, n
	}
	acq = float64(at.BySymbol[workloads.SymAcquire]+at.BySymbol[workloads.SymRelease]) / float64(total)
	cs = float64(at.BySymbol[workloads.SymCS]) / float64(total)
	return acq, cs, n
}
