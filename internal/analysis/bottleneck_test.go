package analysis_test

import (
	"testing"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/workloads"
)

func TestCollectBottleneckMySQL(t *testing.T) {
	cfg := workloads.MySQLVersion("5.1")
	cfg.Workers = 4
	cfg.TxnsPerWorker = 15
	app := workloads.BuildMySQL(cfg, workloads.BottleneckInstr())
	_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: 100_000_000})
	if len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %v", res)
	}

	p, err := analysis.CollectBottleneck(app)
	if err != nil {
		t.Fatal(err)
	}
	if p.App != "mysql-5.1" {
		t.Errorf("app name %q", p.App)
	}
	if p.InCS.Cycles == 0 || p.Outside.Cycles == 0 {
		t.Fatalf("cycle accounting empty: %+v", p)
	}
	if p.InCS.Cycles+p.Outside.Cycles != p.Overall.Cycles {
		t.Error("inside + outside must equal overall")
	}
	if !p.MemoryBoundCS() {
		t.Errorf("MySQL CSes walk table data and must show as memory-bound: in %.2f out %.2f",
			p.InCS.L1DPerKC, p.Outside.L1DPerKC)
	}
	if p.CSCycleShare <= 0 || p.CSCycleShare >= 1 {
		t.Errorf("cs cycle share %f", p.CSCycleShare)
	}
}

func TestCollectBottleneckWrongInstrumentation(t *testing.T) {
	cfg := workloads.MySQLVersion("5.1")
	cfg.Workers = 2
	cfg.TxnsPerWorker = 3
	app := workloads.BuildMySQL(cfg, workloads.LimitInstr())
	_, res, _ := app.Run(machine.Config{NumCores: 2}, machine.RunLimits{MaxSteps: 100_000_000})
	if !res.AllDone {
		t.Fatal(res)
	}
	if _, err := analysis.CollectBottleneck(app); err == nil {
		t.Error("CollectBottleneck must reject non-bottleneck instrumentation")
	}
}

func TestMemoryBoundCSZeroOutside(t *testing.T) {
	p := &analysis.BottleneckProfile{}
	p.InCS.L1DPerKC = 0.5
	p.Outside.L1DPerKC = 0
	if !p.MemoryBoundCS() {
		t.Error("any in-CS misses against a zero outside rate count as memory-bound")
	}
	p.InCS.L1DPerKC = 0
	if p.MemoryBoundCS() {
		t.Error("no misses anywhere is not memory-bound")
	}
}
