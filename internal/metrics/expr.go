// Package metrics is the derived-metric engine: a small expression
// language over event names, evaluated per event frame. Expressions
// are parsed once into an AST and evaluated many times — once per
// frame or per thread-total — so campaign-scale rendering never
// re-parses.
//
// Grammar (precedence low to high):
//
//	expr   := term (('+' | '-') term)*
//	term   := unary (('*' | '/') unary)*
//	unary  := '-' unary | atom
//	atom   := number | ident | '(' expr ')' | ('min'|'max') '(' expr (',' expr)+ ')'
//
// Identifiers name frame samples: the event name with '_' for '-'
// (expressions can't contain the minus sign in names), plus an
// optional ring suffix — "cycles" is the user ring, "cycles:k" kernel
// only, "cycles:uk" both. Division by zero yields 0, never NaN or Inf:
// a rate over nothing measured is "nothing", which keeps downstream
// renders and JSON byte-stable.
package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a parsed metric expression, ready for repeated evaluation.
type Expr struct {
	root node
	src  string
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

type node interface {
	eval(env map[string]float64) (float64, error)
	idents(into map[string]bool)
}

type numNode float64

func (n numNode) eval(map[string]float64) (float64, error) { return float64(n), nil }
func (n numNode) idents(map[string]bool)                   {}

type identNode string

func (n identNode) eval(env map[string]float64) (float64, error) {
	v, ok := env[string(n)]
	if !ok {
		return 0, fmt.Errorf("metrics: unknown event %q", string(n))
	}
	return v, nil
}
func (n identNode) idents(into map[string]bool) { into[string(n)] = true }

type binNode struct {
	op   byte
	l, r node
}

func (n *binNode) eval(env map[string]float64) (float64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	default: // '/'
		if r == 0 {
			return 0, nil // defined div-by-zero policy: rate over nothing is 0
		}
		return l / r, nil
	}
}
func (n *binNode) idents(into map[string]bool) { n.l.idents(into); n.r.idents(into) }

type negNode struct{ x node }

func (n *negNode) eval(env map[string]float64) (float64, error) {
	v, err := n.x.eval(env)
	return -v, err
}
func (n *negNode) idents(into map[string]bool) { n.x.idents(into) }

type callNode struct {
	min  bool
	args []node
}

func (n *callNode) eval(env map[string]float64) (float64, error) {
	best := 0.0
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		if i == 0 || (n.min && v < best) || (!n.min && v > best) {
			best = v
		}
	}
	return best, nil
}
func (n *callNode) idents(into map[string]bool) {
	for _, a := range n.args {
		a.idents(into)
	}
}

// Parse compiles src into an Expr or reports the first syntax error.
func Parse(src string) (*Expr, error) {
	p := &parser{toks: lex(src)}
	root, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("metrics: parse %q: %w", src, err)
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("metrics: parse %q: unexpected %q", src, tok.text)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for the built-in definitions, where a syntax
// error is a bug in this package.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression over an environment of sample values.
// An identifier missing from env is an error — a metric must never
// silently read 0 for an event that was not measured. Non-finite
// results collapse to 0 under the same policy as division by zero.
func (e *Expr) Eval(env map[string]float64) (float64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, nil
	}
	return v, nil
}

// Idents returns the sample names the expression reads, sorted-free
// (callers sort if they need canonical order).
func (e *Expr) Idents() []string {
	set := make(map[string]bool)
	e.root.idents(set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// lexing

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp     // + - * / ( ) ,
	tokMinMax // min / max keyword
	tokErr
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == ':' || (c >= '0' && c <= '9')
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case strings.IndexByte("+-*/(),", c) >= 0:
			toks = append(toks, token{kind: tokOp, text: string(c)})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' ||
				(src[j] == '-' && j > i && src[j-1] == 'e')) {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return append(toks, token{kind: tokErr, text: src[i:j]})
			}
			toks = append(toks, token{kind: tokNum, text: src[i:j], num: n})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			if word == "min" || word == "max" {
				toks = append(toks, token{kind: tokMinMax, text: word})
			} else {
				// Event names use '-', which the grammar reserves for
				// subtraction; identifiers spell it '_'.
				toks = append(toks, token{kind: tokIdent, text: strings.ReplaceAll(word, "_", "-")})
			}
			i = j
		default:
			return append(toks, token{kind: tokErr, text: string(c)})
		}
	}
	return append(toks, token{kind: tokEOF})
}

// parsing

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(op string) error {
	if t := p.next(); t.kind != tokOp || t.text != op {
		return fmt.Errorf("expected %q, got %q", op, t.text)
	}
	return nil
}

func (p *parser) parseExpr() (node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: t.text[0], l: l, r: r}
	}
}

func (p *parser) parseTerm() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: t.text[0], l: l, r: r}
	}
}

func (p *parser) parseUnary() (node, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negNode{x: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		return numNode(t.num), nil
	case tokIdent:
		return identNode(t.text), nil
	case tokMinMax:
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []node
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			nt := p.next()
			if nt.kind == tokOp && nt.text == "," {
				continue
			}
			if nt.kind == tokOp && nt.text == ")" {
				break
			}
			return nil, fmt.Errorf("expected ',' or ')' in %s(), got %q", t.text, nt.text)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("%s() needs at least 2 arguments", t.text)
		}
		return &callNode{min: t.text == "min", args: args}, nil
	case tokOp:
		if t.text == "(" {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
		return nil, fmt.Errorf("unexpected %q", t.text)
	case tokErr:
		return nil, fmt.Errorf("bad token %q", t.text)
	default:
		return nil, fmt.Errorf("unexpected end of expression")
	}
}
