package metrics

// Def is one built-in derived-metric definition. Expressions read the
// sample names produced by the default multiplexed group set
// (workloads.DefaultMuxGroups); a definition evaluated over totals
// missing one of its events reports an error rather than a silent 0.
type Def struct {
	Name string
	Expr string
	Desc string

	compiled *Expr
}

// Compiled returns the parsed expression (built-ins parse at init).
func (d *Def) Compiled() *Expr { return d.compiled }

// Builtin is the derived-metric catalogue: classic rates (CPI, miss
// ratios), the paper's kernel-share lens, and a TMA-style breakdown.
// The TMA entries are proxies calibrated to the simulated in-order
// core: retiring is instructions per cycle (the core is scalar, so an
// IPC of 1 is the roof), frontend-bound charges each branch mispredict
// its 15-cycle redirect penalty (cpu.Cost.MispredictPenalty), and
// backend-bound is the remainder — memory and compute stalls.
var Builtin = []Def{
	{
		Name: "cpi",
		Expr: "cycles / instructions",
		Desc: "user cycles per retired instruction",
	},
	{
		Name: "ipc",
		Expr: "instructions / cycles",
		Desc: "retired instructions per user cycle",
	},
	{
		Name: "kernel_share",
		Expr: "cycles:k / cycles:uk",
		Desc: "fraction of scheduled cycles spent in the kernel ring",
	},
	{
		Name: "branch_miss_rate",
		Expr: "branch_miss / branches",
		Desc: "branch mispredicts per branch",
	},
	{
		Name: "l1d_miss_rate",
		Expr: "l1d_miss / loads",
		Desc: "L1D misses per load",
	},
	{
		Name: "llc_miss_rate",
		Expr: "llc_miss / loads",
		Desc: "LLC misses per load",
	},
	{
		Name: "dtlb_miss_rate",
		Expr: "dtlb_miss / (loads + stores)",
		Desc: "DTLB misses per data access",
	},
	{
		Name: "dtlb_walk_rate",
		Expr: "dtlb_walk / (loads + stores)",
		Desc: "page walks per data access",
	},
	{
		Name: "tma_retiring",
		Expr: "min(instructions / cycles, 1)",
		Desc: "TMA proxy: issue slots doing useful work (IPC vs scalar roof)",
	},
	{
		Name: "tma_frontend",
		Expr: "min(15 * branch_miss / cycles, 1)",
		Desc: "TMA proxy: slots lost to branch redirects (15-cycle penalty)",
	},
	{
		Name: "tma_backend",
		Expr: "max(1 - instructions / cycles - 15 * branch_miss / cycles, 0)",
		Desc: "TMA proxy: slots lost to memory and execution stalls",
	},
}

func init() {
	for i := range Builtin {
		Builtin[i].compiled = MustParse(Builtin[i].Expr)
	}
}

// Lookup returns the built-in definition named name, or nil.
func Lookup(name string) *Def {
	for i := range Builtin {
		if Builtin[i].Name == name {
			return &Builtin[i]
		}
	}
	return nil
}
