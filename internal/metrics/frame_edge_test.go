package metrics

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"limitsim/internal/telemetry"
)

// A group that was opened but never loaded on hardware reports
// running=0 with a zero estimate; the JSONL round trip must keep those
// zeros exact, and Totals/Windowed must treat them as real zeros.
func TestFrameJSONLZeroRunning(t *testing.T) {
	frames := []Frame{
		{Seq: 0, Cycle: 500, TID: 3, Final: true, Samples: []Sample{
			{Name: "l1d-miss", Value: 0, Enabled: 500, Running: 0},
			{Name: "cycles", Value: 480, Enabled: 500, Running: 500},
		}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, frames); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || len(parsed[0].Samples) != 2 {
		t.Fatalf("parsed %+v", parsed)
	}
	if s := parsed[0].Samples[0]; s.Value != 0 || s.Running != 0 || s.Enabled != 500 {
		t.Errorf("zero-running sample round trip = %+v", s)
	}
	totals := Totals(parsed)
	if totals["l1d-miss"] != 0 {
		t.Errorf("never-ran total = %d, want 0", totals["l1d-miss"])
	}
	ss, err := Windowed(parsed, 1000, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	if d := ss.Delta(0, 0); d["l1d-miss"] != 0 {
		t.Errorf("never-ran window delta = %d, want 0", d["l1d-miss"])
	}
}

// The 128-bit scale path can legally produce estimates near the top of
// the uint64 range. The JSONL round trip must be exact at and past the
// int64 boundary — Go's encoder emits full-precision integers and the
// strict parser reads them back without a float64 detour.
func TestFrameJSONLInt64Boundary(t *testing.T) {
	values := []uint64{
		math.MaxInt64 - 1,
		math.MaxInt64,
		math.MaxInt64 + 1,
		math.MaxUint64,
	}
	frames := make([]Frame, len(values))
	for i, v := range values {
		frames[i] = Frame{Seq: uint64(i), Cycle: uint64(i + 1), TID: 1, Samples: []Sample{
			{Name: "cycles", Value: v, Enabled: v, Running: v},
		}}
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, frames); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(values) {
		t.Fatalf("parsed %d frames, want %d", len(parsed), len(values))
	}
	for i, v := range values {
		s := parsed[i].Samples[0]
		if s.Value != v || s.Enabled != v || s.Running != v {
			t.Errorf("value %d round trip = %+v, want %d", v, s, v)
		}
	}
}

// Schema drift — an unknown or missing field — must surface as the
// typed *telemetry.SchemaError so consumers can distinguish a
// versioning bug from ordinary I/O failure; malformed JSON must not.
func TestFrameJSONLSchemaDrift(t *testing.T) {
	var se *telemetry.SchemaError
	drifts := []string{
		// Unknown fields at frame and sample level.
		`{"seq":0,"cycle":1,"tid":1,"surprise":true,"samples":[]}`,
		`{"seq":0,"cycle":1,"tid":1,"samples":[{"name":"cycles","value":1,"enabled":1,"running":1,"extra":2}]}`,
		// Missing required frame fields.
		`{"cycle":1,"tid":1,"samples":[]}`,
		`{"seq":0,"tid":1,"samples":[]}`,
		`{"seq":0,"cycle":1,"samples":[]}`,
		`{"seq":0,"cycle":1,"tid":1}`,
		// Missing required sample fields.
		`{"seq":0,"cycle":1,"tid":1,"samples":[{"value":1,"enabled":1,"running":1}]}`,
		`{"seq":0,"cycle":1,"tid":1,"samples":[{"name":"cycles","enabled":1,"running":1}]}`,
		`{"seq":0,"cycle":1,"tid":1,"samples":[{"name":"cycles","value":1,"running":1}]}`,
		`{"seq":0,"cycle":1,"tid":1,"samples":[{"name":"cycles","value":1,"enabled":1}]}`,
	}
	for _, line := range drifts {
		_, err := ParseJSONL(strings.NewReader(line))
		if !errors.As(err, &se) {
			t.Errorf("ParseJSONL(%s) err = %v, want *telemetry.SchemaError", line, err)
			continue
		}
		if se.Kind != "frame" || !strings.Contains(se.Name, "line 1") {
			t.Errorf("SchemaError for %s = %+v, want kind=frame name~line 1", line, se)
		}
	}
	// Malformed JSON is an ordinary parse error, not drift.
	_, err := ParseJSONL(strings.NewReader(`{"seq":0,`))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if errors.As(err, &se) {
		t.Error("malformed JSON misreported as schema drift")
	}
	// The optional fields stay optional: tenant and final may be absent
	// or present without tripping the strict parser.
	ok := `{"seq":0,"cycle":1,"tid":1,"tenant":2,"final":true,"samples":[]}`
	parsed, err := ParseJSONL(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].TenantID() != 2 || !parsed[0].Final {
		t.Errorf("optional fields lost: %+v", parsed[0])
	}
}

// Tenant-stamped frames keep their pointer through the JSONL round
// trip, and nil tenants stay omitted (the historical byte shape).
func TestFrameJSONLTenantRoundTrip(t *testing.T) {
	tenant := 1
	frames := []Frame{
		{Seq: 0, Cycle: 10, TID: 1, Tenant: &tenant, Samples: []Sample{{Name: "cycles", Value: 5, Enabled: 10, Running: 10}}},
		{Seq: 1, Cycle: 20, TID: 2, Samples: []Sample{{Name: "cycles", Value: 9, Enabled: 20, Running: 20}}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, frames); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"tenant":1`) {
		t.Errorf("tenant not serialized: %s", out)
	}
	if strings.Contains(strings.Split(out, "\n")[1], "tenant") {
		t.Errorf("nil tenant serialized: %s", out)
	}
	parsed, err := ParseJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].TenantID() != 1 {
		t.Errorf("tenant round trip = %d, want 1", parsed[0].TenantID())
	}
	if parsed[1].Tenant != nil {
		t.Errorf("nil tenant round trip = %v, want nil", *parsed[1].Tenant)
	}
}
