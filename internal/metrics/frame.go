package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"limitsim/internal/kernel"
	"limitsim/internal/telemetry"
)

// Sample is one event's cumulative state within a frame. Name is the
// event name plus a ring suffix: "" for user-only, ":k" kernel-only,
// ":uk" both rings — the same names metric expressions use (with '_'
// standing in for '-').
type Sample struct {
	Name    string `json:"name"`
	Value   uint64 `json:"value"`   // scaled estimate (exact when never multiplexed)
	Enabled uint64 `json:"enabled"` // cycles the owning group was open and scheduled
	Running uint64 `json:"running"` // cycles it was loaded on hardware
}

// Frame is one snapshot of a thread's event groups. The JSON field
// order is fixed by this struct, so a rendered frame stream is
// byte-deterministic given a deterministic simulation. Tenant is the
// owning guest VM, carried only when the tenant layer was active for
// the run (nil otherwise, and omitted from JSON — single-tenant
// streams keep their historical byte shape).
type Frame struct {
	Seq     uint64   `json:"seq"`
	Cycle   uint64   `json:"cycle"`
	TID     int      `json:"tid"`
	Tenant  *int     `json:"tenant,omitempty"`
	Final   bool     `json:"final,omitempty"`
	Samples []Sample `json:"samples"`
}

// TenantID returns the frame's tenant, defaulting to 0 for
// single-tenant streams.
func (f *Frame) TenantID() int {
	if f.Tenant == nil {
		return 0
	}
	return *f.Tenant
}

// SampleName renders a kernel group event as a sample/expression name.
func SampleName(ge kernel.GroupEvent) string {
	switch {
	case ge.CountUser && ge.CountKernel:
		return ge.Event.String() + ":uk"
	case ge.CountKernel:
		return ge.Event.String() + ":k"
	default:
		return ge.Event.String()
	}
}

// FromKernel converts the kernel's frame log into the metric engine's
// frame form. Tenant ids ride along only when the run's tenant layer
// was active (Config.Tenants > 1).
func FromKernel(k *kernel.Kernel) []Frame {
	kf := k.Frames()
	tenants := k.Config().Tenants > 1
	out := make([]Frame, len(kf))
	for i, f := range kf {
		nf := Frame{Seq: f.Seq, Cycle: f.Cycle, TID: f.TID, Final: f.Final}
		if tenants {
			tenant := f.Tenant
			nf.Tenant = &tenant
		}
		nf.Samples = make([]Sample, len(f.Samples))
		for j, s := range f.Samples {
			nf.Samples[j] = Sample{
				Name:    SampleName(s.Event),
				Value:   s.Estimate,
				Enabled: s.Enabled,
				Running: s.Running,
			}
		}
		out[i] = nf
	}
	return out
}

// WriteJSONL renders frames one JSON object per line. Output is
// byte-deterministic: fixed field order, integer values only.
func WriteJSONL(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonlFrame and jsonlSample are the strict parse shapes for one
// WriteJSONL line. Pointer fields distinguish absent from zero so
// required-field checks can name what is missing.
type jsonlFrame struct {
	Seq     *uint64       `json:"seq"`
	Cycle   *uint64       `json:"cycle"`
	TID     *int          `json:"tid"`
	Tenant  *int          `json:"tenant"`
	Final   *bool         `json:"final"`
	Samples []jsonlSample `json:"samples"`
}

type jsonlSample struct {
	Name    *string `json:"name"`
	Value   *uint64 `json:"value"`
	Enabled *uint64 `json:"enabled"`
	Running *uint64 `json:"running"`
}

// frameDrift builds the typed schema-drift error for a frame stream:
// the same *telemetry.SchemaError the registry merge raises, so fleet
// and report consumers distinguish drift (a versioning bug) from
// ordinary I/O failures with one errors.As.
func frameDrift(line int, detail string) error {
	return &telemetry.SchemaError{
		Kind:   "frame",
		Name:   fmt.Sprintf("line %d", line),
		Detail: detail,
	}
}

// ParseJSONL reads a frame stream written by WriteJSONL. Parsing is
// strict: an unknown field or a missing required field is schema drift
// and fails with a *telemetry.SchemaError naming the line; malformed
// JSON fails with an ordinary error. Nothing is silently skipped or
// defaulted.
func ParseJSONL(r io.Reader) ([]Frame, error) {
	var out []Frame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		var jf jsonlFrame
		if err := dec.Decode(&jf); err != nil {
			if strings.Contains(err.Error(), "unknown field") {
				return nil, frameDrift(line, err.Error())
			}
			return nil, fmt.Errorf("metrics: frames line %d: %w", line, err)
		}
		switch {
		case jf.Seq == nil:
			return nil, frameDrift(line, "missing field \"seq\"")
		case jf.Cycle == nil:
			return nil, frameDrift(line, "missing field \"cycle\"")
		case jf.TID == nil:
			return nil, frameDrift(line, "missing field \"tid\"")
		case jf.Samples == nil:
			return nil, frameDrift(line, "missing field \"samples\"")
		}
		f := Frame{Seq: *jf.Seq, Cycle: *jf.Cycle, TID: *jf.TID, Tenant: jf.Tenant}
		if jf.Final != nil {
			f.Final = *jf.Final
		}
		f.Samples = make([]Sample, len(jf.Samples))
		for i, js := range jf.Samples {
			switch {
			case js.Name == nil:
				return nil, frameDrift(line, fmt.Sprintf("sample %d: missing field \"name\"", i))
			case js.Value == nil:
				return nil, frameDrift(line, fmt.Sprintf("sample %d: missing field \"value\"", i))
			case js.Enabled == nil:
				return nil, frameDrift(line, fmt.Sprintf("sample %d: missing field \"enabled\"", i))
			case js.Running == nil:
				return nil, frameDrift(line, fmt.Sprintf("sample %d: missing field \"running\"", i))
			}
			f.Samples[i] = Sample{Name: *js.Name, Value: *js.Value, Enabled: *js.Enabled, Running: *js.Running}
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge combines frame streams from several runs or shards into one
// canonically ordered stream: by cycle, then thread, then sequence.
// The sort is stable, so equal keys keep their input order and merge
// output is byte-deterministic for deterministic inputs.
func Merge(streams ...[]Frame) []Frame {
	var all []Frame
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Cycle != all[j].Cycle {
			return all[i].Cycle < all[j].Cycle
		}
		if all[i].TID != all[j].TID {
			return all[i].TID < all[j].TID
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}

// Totals folds a frame stream into per-event end-of-run totals summed
// across threads: for each thread the last frame wins (samples are
// cumulative), and within a frame the first sample of a name wins
// (groups may duplicate an event; their windows overlap, so adding
// them would double count).
func Totals(frames []Frame) map[string]uint64 {
	last := make(map[int]*Frame)
	var tids []int
	for i := range frames {
		f := &frames[i]
		if _, seen := last[f.TID]; !seen {
			tids = append(tids, f.TID)
		}
		last[f.TID] = f
	}
	sort.Ints(tids)
	totals := make(map[string]uint64)
	for _, tid := range tids {
		seen := make(map[string]bool)
		for _, s := range last[tid].Samples {
			if seen[s.Name] {
				continue
			}
			seen[s.Name] = true
			totals[s.Name] += s.Value
		}
	}
	return totals
}

// Env converts totals into an expression environment.
func Env(totals map[string]uint64) map[string]float64 {
	env := make(map[string]float64, len(totals))
	for k, v := range totals {
		env[k] = float64(v)
	}
	return env
}
