package metrics_test

import (
	"testing"

	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/metrics"
	"limitsim/internal/pmu"
	"limitsim/internal/workloads"
)

// muxRun executes one workload run with the full derived-metric event
// set multiplexed, exactly as limitctl metrics configures it, and
// returns the frame stream. build must return an app whose threads all
// exist at Launch when tenants > 1 (forkjoin clones its workers at
// runtime, so they inherit the launcher's guest).
func muxRun(t *testing.T, tenants int, build func(workloads.Instrumentation) *workloads.App) []metrics.Frame {
	t.Helper()
	ins := workloads.LimitInstr()
	ins.MuxGroups = workloads.DefaultMuxGroups(4)
	app := build(ins)

	f := pmu.DefaultFeatures()
	f.NumCounters = 6
	kcfg := kernel.DefaultConfig()
	kcfg.Tenants = tenants
	m := machine.New(machine.Config{NumCores: 4, PMU: f, Kernel: kcfg, Uncore: tenants > 1})
	threads := app.Launch(m)
	if tenants > 1 {
		for i, th := range threads {
			th.Tenant = i % tenants
		}
	}
	res := m.Run(machine.RunLimits{})
	if len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}
	return metrics.FromKernel(m.Kern)
}

// The reconciliation regression the windowed series is pinned to: for
// a real multiplexed run, summing every window's signed input deltas
// reproduces the end-of-run totals exactly — for every event the
// catalogue's metrics consume, at several window sizes, under every
// split. A drift here means the time-series view and the totals view
// disagree about what was measured.
func TestWindowedSeriesReconcilesWithRun(t *testing.T) {
	frames := muxRun(t, 1, func(ins workloads.Instrumentation) *workloads.App {
		cfg := workloads.DefaultForkJoin()
		cfg.Iterations = cfg.Iterations / 4
		return workloads.BuildForkJoin(cfg, ins)
	})
	if len(frames) < 8 {
		t.Fatalf("only %d frames; the run barely rotated", len(frames))
	}
	totals := metrics.Totals(frames)

	// Every ident of every built-in metric must be measurable in this
	// stream — the catalogue and the default event set move together.
	for i := range metrics.Builtin {
		for _, id := range metrics.Builtin[i].Compiled().Idents() {
			if _, ok := totals[id]; !ok {
				t.Errorf("metric %q input %q absent from the frame stream",
					metrics.Builtin[i].Name, id)
			}
		}
	}
	if totals["instructions"] == 0 {
		t.Fatal("run retired no instructions")
	}

	for _, window := range []uint64{1_000, 77_777, 1 << 40} {
		for _, split := range []metrics.Split{metrics.SplitNone, metrics.SplitThread} {
			ss, err := metrics.Windowed(frames, window, split)
			if err != nil {
				t.Fatal(err)
			}
			sums := make(map[string]int64)
			for _, key := range ss.Keys {
				for w := range ss.Windows {
					for name, d := range ss.Delta(key, w) {
						sums[name] += d
					}
				}
			}
			for name, total := range totals {
				if sums[name] != int64(total) {
					t.Errorf("window=%d split=%s: %s windowed sum %d != total %d",
						window, split, name, sums[name], total)
				}
			}
		}
	}

	// The fine windowing really is a series, and its tail carries the
	// partial mark unless the run ended exactly on a boundary.
	ss, err := metrics.Windowed(frames, 1_000, metrics.SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Windows) < 2 {
		t.Fatalf("1k-cycle windows produced %d windows", len(ss.Windows))
	}
}

// Tenant-stamped runs reconcile per guest: each tenant's windowed sums
// equal the totals of its own threads' frames, and the per-tenant
// totals sum to the aggregate.
func TestWindowedTenantSplitReconciles(t *testing.T) {
	frames := muxRun(t, 2, func(ins workloads.Instrumentation) *workloads.App {
		cfg := workloads.DefaultApache()
		cfg.Workers = 4
		cfg.RequestsPerWorker = 40
		return workloads.BuildApache(cfg, ins)
	})
	byTenant := map[int][]metrics.Frame{}
	for _, f := range frames {
		byTenant[f.TenantID()] = append(byTenant[f.TenantID()], f)
	}
	if len(byTenant) != 2 {
		t.Fatalf("frames span %d tenants, want 2", len(byTenant))
	}

	ss, err := metrics.Windowed(frames, 50_000, metrics.SplitTenant)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Keys) != 2 {
		t.Fatalf("tenant split keys = %v, want 2", ss.Keys)
	}
	aggregate := metrics.Totals(frames)
	acc := make(map[string]int64)
	for _, key := range ss.Keys {
		sums := make(map[string]int64)
		for w := range ss.Windows {
			for name, d := range ss.Delta(key, w) {
				sums[name] += d
				acc[name] += d
			}
		}
		tenantTotals := metrics.Totals(byTenant[key])
		for name, total := range tenantTotals {
			if sums[name] != int64(total) {
				t.Errorf("tenant %d: %s windowed sum %d != own-frames total %d", key, name, sums[name], total)
			}
		}
	}
	for name, total := range aggregate {
		if acc[name] != int64(total) {
			t.Errorf("%s per-tenant sums %d != aggregate total %d", name, acc[name], total)
		}
	}
}
