package metrics

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"limitsim/internal/telemetry"
)

// windowFrames is a hand-built stream with a deliberate non-monotonic
// dip (thread 1's cycles estimate revises downward between its last two
// frames) so the tests pin the signed-delta reconciliation guarantee.
// With window=100: t1 hits windows 0, 2, 3; t2 hits window 1 only.
func windowFrames() []Frame {
	return []Frame{
		{Seq: 0, Cycle: 50, TID: 1, Samples: []Sample{
			{Name: "cycles", Value: 10, Enabled: 50, Running: 25},
			{Name: "instructions", Value: 5, Enabled: 50, Running: 25},
		}},
		{Seq: 1, Cycle: 120, TID: 2, Samples: []Sample{
			{Name: "cycles", Value: 40, Enabled: 120, Running: 120},
		}},
		{Seq: 2, Cycle: 250, TID: 1, Samples: []Sample{
			{Name: "cycles", Value: 100, Enabled: 250, Running: 125},
			{Name: "instructions", Value: 50, Enabled: 250, Running: 125},
		}},
		{Seq: 3, Cycle: 320, TID: 1, Final: true, Samples: []Sample{
			{Name: "cycles", Value: 90, Enabled: 320, Running: 160}, // dip: scaled estimates are non-monotonic
			{Name: "instructions", Value: 60, Enabled: 320, Running: 160},
		}},
	}
}

func TestWindowedSpansAndPartialTail(t *testing.T) {
	ss, err := Windowed(windowFrames(), 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(ss.Windows))
	}
	for w, win := range ss.Windows {
		if win.Index != w || win.Start != uint64(w)*100 || win.End != uint64(w+1)*100 {
			t.Errorf("window %d span = [%d,%d) index %d", w, win.Start, win.End, win.Index)
		}
		if wantPartial := w == 3; win.Partial != wantPartial {
			t.Errorf("window %d partial = %v, want %v", w, win.Partial, wantPartial)
		}
	}
	if len(ss.Keys) != 1 || ss.Keys[0] != 0 {
		t.Errorf("SplitNone keys = %v, want [0]", ss.Keys)
	}
	if want := []string{"cycles", "instructions"}; len(ss.Names) != 2 || ss.Names[0] != want[0] || ss.Names[1] != want[1] {
		t.Errorf("names = %v, want %v", ss.Names, want)
	}
}

// A stream whose last frame lands exactly on a window's final cycle
// leaves the tail window complete, not partial.
func TestWindowedExactBoundaryNotPartial(t *testing.T) {
	frames := []Frame{{Seq: 0, Cycle: 99, TID: 1, Samples: []Sample{{Name: "cycles", Value: 7}}}}
	ss, err := Windowed(frames, 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Windows) != 1 || ss.Windows[0].Partial {
		t.Errorf("windows = %+v, want one complete window", ss.Windows)
	}
}

func TestWindowedSignedDeltas(t *testing.T) {
	ss, err := Windowed(windowFrames(), 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	want := []map[string]int64{
		{"cycles": 10, "instructions": 5},
		{"cycles": 40},
		{"cycles": 90, "instructions": 45},
		{"cycles": -10, "instructions": 10}, // the dip stays signed
	}
	for w, wd := range want {
		got := ss.Delta(0, w)
		for name, v := range wd {
			if got[name] != v {
				t.Errorf("window %d delta[%s] = %d, want %d", w, name, got[name], v)
			}
		}
	}
	if ss.Delta(0, 99) != nil || ss.Delta(42, 0) != nil {
		t.Error("out-of-range Delta should be nil")
	}
}

// Reconciliation: the signed window deltas telescope, so summing every
// window (across all split keys) reproduces the end-of-run Totals
// exactly — for every event, under every split.
func TestWindowedReconcilesWithTotals(t *testing.T) {
	frames := windowFrames()
	totals := Totals(frames)
	for _, split := range []Split{SplitNone, SplitTenant, SplitThread} {
		ss, err := Windowed(frames, 100, split)
		if err != nil {
			t.Fatal(err)
		}
		sums := make(map[string]int64)
		for _, key := range ss.Keys {
			for w := range ss.Windows {
				for name, d := range ss.Delta(key, w) {
					sums[name] += d
				}
			}
		}
		for name, total := range totals {
			if sums[name] != int64(total) {
				t.Errorf("split=%s: windowed sum[%s] = %d, Totals = %d", split, name, sums[name], total)
			}
		}
	}
}

func TestWindowedSplitThreadAndTenant(t *testing.T) {
	frames := windowFrames()
	t0, t1 := 0, 1
	frames[0].Tenant = &t0
	frames[2].Tenant = &t0
	frames[3].Tenant = &t0
	frames[1].Tenant = &t1

	ss, err := Windowed(frames, 100, SplitThread)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Keys) != 2 || ss.Keys[0] != 1 || ss.Keys[1] != 2 {
		t.Fatalf("thread keys = %v, want [1 2]", ss.Keys)
	}
	if d := ss.Delta(2, 1); d["cycles"] != 40 {
		t.Errorf("tid2 window1 cycles = %d, want 40", d["cycles"])
	}
	if d := ss.Delta(2, 0); d != nil {
		t.Errorf("tid2 never ran in window 0, delta = %v", d)
	}

	st, err := Windowed(frames, 100, SplitTenant)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Keys) != 2 || st.Keys[0] != 0 || st.Keys[1] != 1 {
		t.Fatalf("tenant keys = %v, want [0 1]", st.Keys)
	}
	if d := st.Delta(1, 1); d["cycles"] != 40 {
		t.Errorf("tenant1 window1 cycles = %d, want 40", d["cycles"])
	}
	if d := st.Delta(0, 3); d["cycles"] != -10 {
		t.Errorf("tenant0 window3 cycles = %d, want -10", d["cycles"])
	}
}

func TestWindowedZeroWindowRejected(t *testing.T) {
	if _, err := Windowed(windowFrames(), 0, SplitNone); err == nil {
		t.Error("window=0 accepted, want error")
	}
}

func TestWindowedEmptyStream(t *testing.T) {
	ss, err := Windowed(nil, 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Windows) != 0 || len(ss.Keys) != 0 {
		t.Errorf("empty stream produced windows %v keys %v", ss.Windows, ss.Keys)
	}
	if rows := ss.Rows(nil); len(rows) != 0 {
		t.Errorf("empty stream produced %d rows", len(rows))
	}
}

// Windowing canonicalizes with Merge first, so shard order is
// invisible.
func TestWindowedMergeOrderInvariant(t *testing.T) {
	frames := windowFrames()
	shuffled := []Frame{frames[3], frames[1], frames[0], frames[2]}
	a, err := Windowed(frames, 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Windowed(shuffled, 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := WriteSeriesJSONL(&ba, a.Rows(catalogDefs())); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesJSONL(&bb, b.Rows(catalogDefs())); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("frame input order changed the windowed series bytes")
	}
}

func catalogDefs() []*Def {
	defs := make([]*Def, 0, len(Builtin))
	for i := range Builtin {
		defs = append(defs, &Builtin[i])
	}
	return defs
}

// Rows: Inputs keeps the exact signed deltas (the reconciliation
// currency), while metric evaluation clamps negatives to zero — a
// briefly downward-revising estimate is not a negative event rate.
func TestRowsClampNegativeForEvalOnly(t *testing.T) {
	ss, err := Windowed(windowFrames(), 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	rows := ss.Rows([]*Def{Lookup("cpi")})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	w3 := rows[3]
	if w3.Inputs["cycles"] != -10 {
		t.Errorf("w3 input cycles = %d, want -10 (signed)", w3.Inputs["cycles"])
	}
	if w3.Metrics["cpi"] != 0 {
		t.Errorf("w3 cpi = %v, want 0 (clamped numerator)", w3.Metrics["cpi"])
	}
	if !w3.Partial {
		t.Error("w3 should carry the partial mark")
	}
	// Window 1: instructions never ran → delta 0 → cpi 0 by the
	// div-by-zero policy, never NaN.
	if v := rows[1].Metrics["cpi"]; v != 0 {
		t.Errorf("w1 cpi = %v, want 0 (instructions never ran)", v)
	}
	if rows[0].Metrics["cpi"] != 2 {
		t.Errorf("w0 cpi = %v, want 2", rows[0].Metrics["cpi"])
	}
}

// Golden determinism for the series JSONL shape: pinned bytes, then
// render → parse → render byte-identical.
func TestSeriesJSONLGolden(t *testing.T) {
	ss, err := Windowed(windowFrames(), 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	rows := ss.Rows([]*Def{Lookup("cpi")})
	var buf bytes.Buffer
	if err := WriteSeriesJSONL(&buf, rows); err != nil {
		t.Fatal(err)
	}
	golden := `{"window":0,"start":0,"end":100,"partial":false,"key":"all","inputs":{"cycles":10,"instructions":5},"metrics":{"cpi":2.000000}}
{"window":1,"start":100,"end":200,"partial":false,"key":"all","inputs":{"cycles":40,"instructions":0},"metrics":{"cpi":0.000000}}
{"window":2,"start":200,"end":300,"partial":false,"key":"all","inputs":{"cycles":90,"instructions":45},"metrics":{"cpi":2.000000}}
{"window":3,"start":300,"end":400,"partial":true,"key":"all","inputs":{"cycles":-10,"instructions":10},"metrics":{"cpi":0.000000}}
`
	if buf.String() != golden {
		t.Errorf("series JSONL drifted from golden:\n got: %q\nwant: %q", buf.String(), golden)
	}
	parsed, err := ParseSeriesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteSeriesJSONL(&buf2, parsed); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != golden {
		t.Error("series render→parse→render not byte-identical")
	}
}

func TestSeriesJSONLSchemaDrift(t *testing.T) {
	drifted := `{"window":0,"start":0,"end":100,"partial":false,"key":"all","inputs":{},"metrics":{},"bogus":1}`
	_, err := ParseSeriesJSONL(strings.NewReader(drifted))
	var se *telemetry.SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("unknown field error = %v, want *telemetry.SchemaError", err)
	}
	missing := `{"window":0,"start":0,"end":100,"partial":false,"key":"all"}`
	if _, err := ParseSeriesJSONL(strings.NewReader(missing)); !errors.As(err, &se) {
		t.Fatalf("missing inputs/metrics error = %v, want *telemetry.SchemaError", err)
	}
	if _, err := ParseSeriesJSONL(strings.NewReader(`{"window":`)); err == nil {
		t.Error("malformed JSON accepted")
	} else if errors.As(err, &se) {
		t.Error("malformed JSON misreported as schema drift")
	}
}

func TestRenderSeriesTextMarksPartial(t *testing.T) {
	ss, err := Windowed(windowFrames(), 100, SplitNone)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderSeriesText(&buf, "series", ss.Rows([]*Def{Lookup("cpi")}))
	out := buf.String()
	if !strings.Contains(out, "300..400 (partial)") {
		t.Errorf("tail window not marked partial:\n%s", out)
	}
	if strings.Count(out, "(partial)") != 1 {
		t.Errorf("exactly one partial window expected:\n%s", out)
	}
	var empty bytes.Buffer
	RenderSeriesText(&empty, "series", nil)
	if !strings.Contains(empty.String(), "no frames") {
		t.Errorf("empty series render = %q", empty.String())
	}
}

func TestParseSplit(t *testing.T) {
	cases := []struct {
		in   string
		want Split
		ok   bool
	}{
		{"", SplitNone, true},
		{"none", SplitNone, true},
		{"tenant", SplitTenant, true},
		{"thread", SplitThread, true},
		{"worker", SplitThread, true},
		{"bogus", SplitNone, false},
	}
	for _, c := range cases {
		got, ok := ParseSplit(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseSplit(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
	for s, name := range map[Split]string{SplitNone: "none", SplitTenant: "tenant", SplitThread: "thread"} {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
}
