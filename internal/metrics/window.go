package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"limitsim/internal/tabwrite"
)

// Windowed metric evaluation: slice a per-rotation frame stream into
// fixed cycle windows and evaluate catalogue expressions per window —
// the time-series view of the same counters Totals folds into one
// number. Window w covers machine cycles [w*W, (w+1)*W); a frame at
// cycle c lands in window c/W. Samples are cumulative, so a window's
// contribution is the per-thread delta between consecutive frames,
// kept *signed*: scaled estimates are documented as non-monotonic
// (the enabled/running ratio moves), so individual deltas may dip
// below zero while the telescoped sum over all windows still equals
// the end-of-run total exactly — the reconciliation guarantee the
// regression tests pin.
//
// Determinism rules, fixed here so every renderer inherits them:
//
//   - The tail window is Partial when the stream's last frame lands
//     before the window's nominal end (the run ended inside it).
//   - An event that never ran in a window contributes a delta of 0;
//     a metric whose inputs are all zero (or that references events
//     absent from the stream) evaluates to 0, never NaN/Inf — the
//     expression engine's division policy.
//   - Split keys and event names render in sorted order; windows in
//     index order. Same frames, same bytes.

// Split selects how a windowed series is keyed: one aggregate series,
// one per tenant, or one per thread (the per-worker view — workload
// threads are the simulated workers).
type Split int

// Split values.
const (
	SplitNone Split = iota
	SplitTenant
	SplitThread
)

// ParseSplit resolves a -split flag value.
func ParseSplit(s string) (Split, bool) {
	switch s {
	case "", "none":
		return SplitNone, true
	case "tenant":
		return SplitTenant, true
	case "thread", "worker":
		return SplitThread, true
	}
	return SplitNone, false
}

func (s Split) String() string {
	switch s {
	case SplitTenant:
		return "tenant"
	case SplitThread:
		return "thread"
	default:
		return "none"
	}
}

// keyLabel renders one split key. SplitNone uses "all" so a JSONL row
// is self-describing without the split context.
func (s Split) keyLabel(id int) string {
	switch s {
	case SplitTenant:
		return fmt.Sprintf("tenant%d", id)
	case SplitThread:
		return fmt.Sprintf("tid%d", id)
	default:
		return "all"
	}
}

// WindowSpan is one fixed cycle window of a series.
type WindowSpan struct {
	Index      int
	Start, End uint64 // nominal bounds [Start, End)
	// Partial marks the tail window the frame stream ended inside.
	Partial bool
}

// SeriesSet is the windowed view of a frame stream: per split key and
// window, the signed per-event deltas every metric evaluates over.
type SeriesSet struct {
	WindowCycles uint64
	Split        Split
	Windows      []WindowSpan
	// Keys are the split key ids in ascending order (a single 0 for
	// SplitNone).
	Keys []int
	// Names is the sorted union of sample names seen in the stream.
	Names []string
	// deltas[key][window][name]; absent names mean 0.
	deltas map[int][]map[string]int64
}

// Windowed slices frames into fixed windows of window cycles. The
// frames may come straight from FromKernel or from merged shards; they
// are canonicalized with Merge first, so any input order yields the
// same set.
func Windowed(frames []Frame, window uint64, split Split) (*SeriesSet, error) {
	if window == 0 {
		return nil, fmt.Errorf("metrics: window must be positive")
	}
	frames = Merge(frames)
	ss := &SeriesSet{
		WindowCycles: window,
		Split:        split,
		deltas:       make(map[int][]map[string]int64),
	}
	if len(frames) == 0 {
		return ss, nil
	}

	var maxCycle uint64
	for i := range frames {
		if frames[i].Cycle > maxCycle {
			maxCycle = frames[i].Cycle
		}
	}
	numWin := int(maxCycle/window) + 1
	ss.Windows = make([]WindowSpan, numWin)
	for w := range ss.Windows {
		ss.Windows[w] = WindowSpan{
			Index: w,
			Start: uint64(w) * window,
			End:   uint64(w+1) * window,
		}
	}
	last := &ss.Windows[numWin-1]
	last.Partial = maxCycle+1 < last.End

	// Per-thread cumulative tracking mirrors Totals exactly: samples
	// are cumulative, the first sample of a duplicated name wins
	// within a frame (overlapping groups would double count), and the
	// telescoped deltas of a thread sum to its last frame's values.
	cum := make(map[int]map[string]uint64)
	nameSet := make(map[string]bool)
	for i := range frames {
		f := &frames[i]
		key := 0
		switch split {
		case SplitTenant:
			key = f.TenantID()
		case SplitThread:
			key = f.TID
		}
		wins, ok := ss.deltas[key]
		if !ok {
			wins = make([]map[string]int64, numWin)
			ss.deltas[key] = wins
			ss.Keys = append(ss.Keys, key)
		}
		w := int(f.Cycle / window)
		if wins[w] == nil {
			wins[w] = make(map[string]int64)
		}
		prev := cum[f.TID]
		if prev == nil {
			prev = make(map[string]uint64)
			cum[f.TID] = prev
		}
		seen := make(map[string]bool, len(f.Samples))
		for _, s := range f.Samples {
			if seen[s.Name] {
				continue
			}
			seen[s.Name] = true
			nameSet[s.Name] = true
			wins[w][s.Name] += int64(s.Value) - int64(prev[s.Name])
			prev[s.Name] = s.Value
		}
	}
	sort.Ints(ss.Keys)
	ss.Names = make([]string, 0, len(nameSet))
	for name := range nameSet {
		ss.Names = append(ss.Names, name)
	}
	sort.Strings(ss.Names)
	return ss, nil
}

// Delta returns one key's signed per-event deltas for window w (nil
// for a window in which the key never ran).
func (ss *SeriesSet) Delta(key, w int) map[string]int64 {
	wins, ok := ss.deltas[key]
	if !ok || w < 0 || w >= len(wins) {
		return nil
	}
	return wins[w]
}

// WindowRow is one (window, key) evaluation: the signed event deltas
// and the derived metric values. It is the JSONL line shape and the
// parse result of ParseSeriesJSONL.
type WindowRow struct {
	Window  int                `json:"window"`
	Start   uint64             `json:"start"`
	End     uint64             `json:"end"`
	Partial bool               `json:"partial"`
	Key     string             `json:"key"`
	Inputs  map[string]int64   `json:"inputs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Rows evaluates the chosen metric definitions per window per key,
// window-major then key order. A metric referencing events absent from
// the stream evaluates to 0 in every window (deterministic, mirroring
// the never-ran rule); negative input deltas are clamped to 0 for
// evaluation only (a scaled estimate briefly revising downward is not
// a negative event rate) while Inputs keeps the exact signed values
// the reconciliation guarantee sums.
func (ss *SeriesSet) Rows(defs []*Def) []WindowRow {
	rows := make([]WindowRow, 0, len(ss.Windows)*len(ss.Keys))
	for _, win := range ss.Windows {
		for _, key := range ss.Keys {
			deltas := ss.Delta(key, win.Index)
			row := WindowRow{
				Window:  win.Index,
				Start:   win.Start,
				End:     win.End,
				Partial: win.Partial,
				Key:     ss.Split.keyLabel(key),
				Inputs:  make(map[string]int64, len(ss.Names)),
				Metrics: make(map[string]float64, len(defs)),
			}
			env := make(map[string]float64, len(ss.Names))
			for _, name := range ss.Names {
				d := deltas[name]
				row.Inputs[name] = d
				if d < 0 {
					d = 0
				}
				env[name] = float64(d)
			}
			for _, d := range defs {
				v, err := d.Compiled().Eval(env)
				if err != nil {
					v = 0
				}
				row.Metrics[d.Name] = v
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// sortedKeys returns a string map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteSeriesJSONL renders rows one JSON object per line,
// hand-formatted for byte determinism: fixed field order, inputs and
// metrics keys sorted, metric values with six decimals.
func WriteSeriesJSONL(w io.Writer, rows []WindowRow) error {
	bw := bufio.NewWriter(w)
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(bw, "{\"window\":%d,\"start\":%d,\"end\":%d,\"partial\":%v,\"key\":%q,\"inputs\":{",
			r.Window, r.Start, r.End, r.Partial, r.Key)
		for j, name := range sortedKeys(r.Inputs) {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%q:%d", name, r.Inputs[name])
		}
		bw.WriteString("},\"metrics\":{")
		for j, name := range sortedKeys(r.Metrics) {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%q:%.6f", name, r.Metrics[name])
		}
		bw.WriteString("}}\n")
	}
	return bw.Flush()
}

// ParseSeriesJSONL reads a WriteSeriesJSONL stream back. Strict like
// ParseJSONL: unknown fields are schema drift (*telemetry.SchemaError).
func ParseSeriesJSONL(r io.Reader) ([]WindowRow, error) {
	var out []WindowRow
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		var row WindowRow
		if err := dec.Decode(&row); err != nil {
			if strings.Contains(err.Error(), "unknown field") {
				return nil, frameDrift(line, err.Error())
			}
			return nil, fmt.Errorf("metrics: series line %d: %w", line, err)
		}
		if row.Inputs == nil || row.Metrics == nil {
			return nil, frameDrift(line, "missing field \"inputs\" or \"metrics\"")
		}
		out = append(out, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderSeriesText writes rows as one aligned table: a window and key
// column, then one column per metric in sorted name order. The tail
// window's span is marked "(partial)".
func RenderSeriesText(w io.Writer, title string, rows []WindowRow) {
	if len(rows) == 0 {
		fmt.Fprintf(w, "%s: no frames\n", title)
		return
	}
	names := sortedKeys(rows[0].Metrics)
	header := append([]string{"window", "cycles", "key"}, names...)
	t := tabwrite.New(title, header...)
	for i := range rows {
		r := &rows[i]
		span := fmt.Sprintf("%d..%d", r.Start, r.End)
		if r.Partial {
			span += " (partial)"
		}
		cells := []any{r.Window, span, r.Key}
		for _, name := range names {
			cells = append(cells, fmt.Sprintf("%.4f", r.Metrics[name]))
		}
		t.Row(cells...)
	}
	t.Render(w)
}
