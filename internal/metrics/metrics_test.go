package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func env(pairs ...interface{}) map[string]float64 {
	m := make(map[string]float64)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return m
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		env  map[string]float64
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"-4 + 6", nil, 2},
		{"10 / 4", nil, 2.5},
		{"min(3, 1, 2)", nil, 1},
		{"max(3, 1, 2)", nil, 3},
		{"cycles / instructions", env("cycles", 30.0, "instructions", 10.0), 3},
		{"l1d_miss / loads", env("l1d-miss", 5.0, "loads", 100.0), 0.05},
		{"cycles:k / cycles:uk", env("cycles:k", 25.0, "cycles:uk", 100.0), 0.25},
		{"min(instructions / cycles, 1)", env("instructions", 80.0, "cycles", 40.0), 1},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, err := e.Eval(c.env)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprUnknownEvent(t *testing.T) {
	e := MustParse("cycles / bogus_event")
	if _, err := e.Eval(env("cycles", 10.0)); err == nil ||
		!strings.Contains(err.Error(), "bogus-event") {
		t.Errorf("unknown event error = %v, want mention of bogus-event", err)
	}
}

func TestExprDivByZeroPolicy(t *testing.T) {
	for _, src := range []string{"1 / 0", "cycles / instructions", "1 / (2 - 2)"} {
		e := MustParse(src)
		got, err := e.Eval(env("cycles", 5.0, "instructions", 0.0))
		if err != nil {
			t.Errorf("Eval(%q): %v", src, err)
		}
		if got != 0 {
			t.Errorf("Eval(%q) = %v, want 0 (div-by-zero policy)", src, got)
		}
	}
}

func TestExprSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"(1 + 2",     // unbalanced open paren
		"1 + 2)",     // unbalanced close paren
		"1 +",        // dangling operator
		"min(1)",     // min needs 2+ args
		"min 1, 2",   // missing parens
		"cycles $ 2", // bad token
		"",           // empty
		"1 2",        // juxtaposition
		"max(1, 2,)", // trailing comma
		"1..5 + 2",   // malformed number
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want syntax error", src)
		}
	}
}

func TestExprIdents(t *testing.T) {
	e := MustParse("max(1 - instructions / cycles - 15 * branch_miss / cycles, 0)")
	got := e.Idents()
	want := map[string]bool{"instructions": true, "cycles": true, "branch-miss": true}
	if len(got) != len(want) {
		t.Fatalf("Idents() = %v, want %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected ident %q", id)
		}
	}
}

func TestBuiltinDefsParseAndCover(t *testing.T) {
	seen := make(map[string]bool)
	for i := range Builtin {
		d := &Builtin[i]
		if seen[d.Name] {
			t.Errorf("duplicate builtin %q", d.Name)
		}
		seen[d.Name] = true
		if d.Compiled() == nil {
			t.Errorf("builtin %q not compiled", d.Name)
		}
		if Lookup(d.Name) != d {
			t.Errorf("Lookup(%q) misses", d.Name)
		}
	}
	if Lookup("no_such_metric") != nil {
		t.Error("Lookup of unknown metric returned a def")
	}
}

func sampleFrames() []Frame {
	return []Frame{
		{Seq: 0, Cycle: 100, TID: 1, Samples: []Sample{
			{Name: "cycles", Value: 90, Enabled: 100, Running: 50},
			{Name: "instructions", Value: 40, Enabled: 100, Running: 50},
		}},
		{Seq: 1, Cycle: 200, TID: 2, Samples: []Sample{
			{Name: "cycles", Value: 180, Enabled: 190, Running: 190},
		}},
		{Seq: 2, Cycle: 300, TID: 1, Final: true, Samples: []Sample{
			{Name: "cycles", Value: 280, Enabled: 290, Running: 150},
			{Name: "instructions", Value: 120, Enabled: 290, Running: 150},
		}},
	}
}

// Golden determinism: render → parse → render must be byte-identical,
// and the golden bytes themselves are pinned so any schema drift is a
// conscious choice.
func TestFrameJSONLGolden(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, frames); err != nil {
		t.Fatal(err)
	}
	golden := `{"seq":0,"cycle":100,"tid":1,"samples":[{"name":"cycles","value":90,"enabled":100,"running":50},{"name":"instructions","value":40,"enabled":100,"running":50}]}
{"seq":1,"cycle":200,"tid":2,"samples":[{"name":"cycles","value":180,"enabled":190,"running":190}]}
{"seq":2,"cycle":300,"tid":1,"final":true,"samples":[{"name":"cycles","value":280,"enabled":290,"running":150},{"name":"instructions","value":120,"enabled":290,"running":150}]}
`
	if buf.String() != golden {
		t.Errorf("JSONL render drifted from golden:\n got: %q\nwant: %q", buf.String(), golden)
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, parsed); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != golden {
		t.Error("render→parse→render not byte-identical")
	}
}

// Merge is canonical: any interleaving of shard streams produces the
// same bytes.
func TestFrameMergeDeterministic(t *testing.T) {
	frames := sampleFrames()
	a := []Frame{frames[0], frames[2]}
	b := []Frame{frames[1]}
	var m1, m2 bytes.Buffer
	if err := WriteJSONL(&m1, Merge(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&m2, Merge(b, a)); err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Errorf("merge order changed bytes:\n a+b: %q\n b+a: %q", m1.String(), m2.String())
	}
	merged := Merge(b, a)
	for i := 1; i < len(merged); i++ {
		if merged[i].Cycle < merged[i-1].Cycle {
			t.Error("merged frames not cycle-ordered")
		}
	}
}

// Totals: last frame per thread wins, threads sum.
func TestTotals(t *testing.T) {
	totals := Totals(sampleFrames())
	if got := totals["cycles"]; got != 280+180 {
		t.Errorf("cycles total %d, want %d", got, 280+180)
	}
	if got := totals["instructions"]; got != 120 {
		t.Errorf("instructions total %d, want 120", got)
	}
	cpi := Lookup("cpi")
	v, err := cpi.Compiled().Eval(Env(totals))
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(280+180) / 120; v != want {
		t.Errorf("cpi over totals = %v, want %v", v, want)
	}
}
