// Package branch models per-core branch direction predictors. Two
// designs are provided: a simple bimodal table of two-bit saturating
// counters, and a gshare predictor (global history XOR PC). The CPU
// charges a fixed mispredict penalty when prediction and outcome
// disagree.
package branch

// Predictor predicts branch directions and learns from outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []uint8
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits entries,
// initialized to weakly not-taken.
func NewBimodal(bits uint) *Bimodal {
	n := uint64(1) << bits
	return &Bimodal{table: make([]uint8, n), mask: n - 1}
}

// Predict implements Predictor.
func (p *Bimodal) Predict(pc uint64) bool { return p.table[pc&p.mask] >= 2 }

// Update implements Predictor.
func (p *Bimodal) Update(pc uint64, taken bool) {
	e := &p.table[pc&p.mask]
	if taken {
		if *e < 3 {
			*e++
		}
	} else if *e > 0 {
		*e--
	}
}

// Gshare XORs a global history register with the PC to index a table of
// 2-bit counters.
type Gshare struct {
	table   []uint8
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with 2^bits entries and a
// history length of min(bits, 16).
func NewGshare(bits uint) *Gshare {
	n := uint64(1) << bits
	hl := bits
	if hl > 16 {
		hl = 16
	}
	return &Gshare{table: make([]uint8, n), mask: n - 1, histLen: hl}
}

func (p *Gshare) index(pc uint64) uint64 { return (pc ^ p.history) & p.mask }

// Predict implements Predictor.
func (p *Gshare) Predict(pc uint64) bool { return p.table[p.index(pc)] >= 2 }

// Update implements Predictor.
func (p *Gshare) Update(pc uint64, taken bool) {
	e := &p.table[p.index(pc)]
	if taken {
		if *e < 3 {
			*e++
		}
	} else if *e > 0 {
		*e--
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.histLen) - 1)
}

// PredictUpdate is Predict followed by Update in one call: both use
// the same table entry (history only shifts afterwards), so the fused
// form indexes once. The interpreter's branch path calls this directly
// to skip two interface dispatches per branch.
func (p *Gshare) PredictUpdate(pc uint64, taken bool) bool {
	e := &p.table[p.index(pc)]
	predicted := *e >= 2
	if taken {
		if *e < 3 {
			*e++
		}
	} else if *e > 0 {
		*e--
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.histLen) - 1)
	return predicted
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AlwaysTaken is a trivial predictor used in tests and ablations.
type AlwaysTaken struct{}

// Predict implements Predictor.
func (AlwaysTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(uint64, bool) {}
