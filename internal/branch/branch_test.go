package branch

import "testing"

func trainAndCount(p Predictor, pattern []bool, reps int) (mispredicts int) {
	pc := uint64(0x40)
	for r := 0; r < reps; r++ {
		for _, taken := range pattern {
			if p.Predict(pc) != taken {
				mispredicts++
			}
			p.Update(pc, taken)
		}
	}
	return
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(10)
	// A 100%-taken branch: after warmup, zero mispredicts.
	m := trainAndCount(p, []bool{true}, 100)
	if m > 2 {
		t.Errorf("bimodal mispredicted %d/100 on an always-taken branch", m)
	}
}

func TestBimodalHysteresis(t *testing.T) {
	p := NewBimodal(10)
	pc := uint64(0x80)
	// Saturate taken.
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	// One not-taken must not flip the prediction (2-bit hysteresis).
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Error("one contrary outcome flipped a saturated 2-bit counter")
	}
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Error("two contrary outcomes should flip the prediction")
	}
}

func TestBimodalPoorOnAlternating(t *testing.T) {
	p := NewBimodal(10)
	m := trainAndCount(p, []bool{true, false}, 100)
	// Alternating defeats a bimodal predictor (it hovers mid-state).
	if m < 50 {
		t.Errorf("bimodal mispredicted only %d/200 on alternating; model too strong", m)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	p := NewGshare(12)
	m := trainAndCount(p, []bool{true, false}, 200)
	// History lets gshare lock onto the period-2 pattern.
	if m > 40 {
		t.Errorf("gshare mispredicted %d/400 on alternating; history not working", m)
	}
}

func TestGshareLearnsLongerPattern(t *testing.T) {
	p := NewGshare(12)
	m := trainAndCount(p, []bool{true, true, false, true, false, false}, 200)
	if m > 200 {
		t.Errorf("gshare mispredicted %d/1200 on period-6 pattern", m)
	}
}

func TestPredictorsIndependentPCs(t *testing.T) {
	p := NewBimodal(10)
	p.Update(0x10, true)
	p.Update(0x10, true)
	if p.Predict(0x11) {
		t.Error("training one PC must not bias a different table entry")
	}
}

func TestAlwaysTaken(t *testing.T) {
	var p AlwaysTaken
	if !p.Predict(0) {
		t.Error("AlwaysTaken must predict taken")
	}
	p.Update(0, false) // must not panic
}
