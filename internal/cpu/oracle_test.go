package cpu

import (
	"math/rand"
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// A pure-Go oracle for straight-line ALU programs: evaluates the same
// instruction semantics with no machinery (no caches, no PMU, no
// clock). Random programs executed by Core.Step must produce identical
// register files — a property test over the executor's data path.
func oracleEval(prog []isa.Instr, regs *[isa.NumRegs]uint64) {
	for _, in := range prog {
		switch in.Op {
		case isa.OpMovImm:
			regs[in.Dst] = uint64(in.Imm)
		case isa.OpMov:
			regs[in.Dst] = regs[in.Src1]
		case isa.OpAdd:
			regs[in.Dst] = regs[in.Src1] + regs[in.Src2]
		case isa.OpAddImm:
			regs[in.Dst] = regs[in.Src1] + uint64(in.Imm)
		case isa.OpSub:
			regs[in.Dst] = regs[in.Src1] - regs[in.Src2]
		case isa.OpMul:
			regs[in.Dst] = regs[in.Src1] * regs[in.Src2]
		case isa.OpAnd:
			regs[in.Dst] = regs[in.Src1] & regs[in.Src2]
		case isa.OpOr:
			regs[in.Dst] = regs[in.Src1] | regs[in.Src2]
		case isa.OpXor:
			regs[in.Dst] = regs[in.Src1] ^ regs[in.Src2]
		case isa.OpShl:
			regs[in.Dst] = regs[in.Src1] << (uint64(in.Imm) & 63)
		case isa.OpShr:
			regs[in.Dst] = regs[in.Src1] >> (uint64(in.Imm) & 63)
		}
	}
}

// randALUProgram generates a random straight-line ALU program.
func randALUProgram(rng *rand.Rand, n int) []isa.Instr {
	ops := []isa.Op{isa.OpMovImm, isa.OpMov, isa.OpAdd, isa.OpAddImm, isa.OpSub,
		isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr}
	prog := make([]isa.Instr, n)
	for i := range prog {
		prog[i] = isa.Instr{
			Op:   ops[rng.Intn(len(ops))],
			Dst:  isa.Reg(rng.Intn(isa.NumRegs)),
			Src1: isa.Reg(rng.Intn(isa.NumRegs)),
			Src2: isa.Reg(rng.Intn(isa.NumRegs)),
			Imm:  int64(rng.Uint64()),
		}
	}
	return prog
}

func TestExecutorMatchesOracleOnRandomALUPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa11ce))
	for trial := 0; trial < 200; trial++ {
		body := randALUProgram(rng, 40)
		prog := &isa.Program{Instrs: append(append([]isa.Instr{}, body...), isa.Instr{Op: isa.OpHalt})}

		core := NewCore(0, pmu.DefaultFeatures())
		ctx := &Context{Prog: prog, Mem: mem.NewSpace()}
		var want [isa.NumRegs]uint64
		for r := range want {
			v := rng.Uint64()
			want[r] = v
			ctx.Regs[r] = v
		}
		oracleEval(body, &want)

		for {
			res := core.Step(ctx)
			if res.Trap == TrapHalt {
				break
			}
			if res.Trap != TrapNone {
				t.Fatalf("trial %d: unexpected trap %v (%s)", trial, res.Trap, res.Fault)
			}
		}
		if ctx.Regs != want {
			t.Fatalf("trial %d: register mismatch\n got %v\nwant %v\nprogram:\n%s",
				trial, ctx.Regs, want, prog.Disassemble())
		}
	}
}

func TestExecutorMemoryOracle(t *testing.T) {
	// Random store/load sequences over a small arena must behave like a
	// Go map of address -> value.
	rng := rand.New(rand.NewSource(0xbee))
	core := NewCore(0, pmu.DefaultFeatures())
	space := mem.NewSpace()
	oracle := map[uint64]uint64{}

	for trial := 0; trial < 300; trial++ {
		addr := 0x1000 + (rng.Uint64()%64)*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			b := isa.NewBuilder()
			b.MovImm(isa.R1, int64(addr))
			b.MovImm(isa.R2, int64(val))
			b.Store(isa.R1, 0, isa.R2)
			b.Halt()
			ctx := &Context{Prog: b.MustBuild(), Mem: space}
			for core.Step(ctx).Trap == TrapNone {
			}
			oracle[addr] = val
		} else {
			b := isa.NewBuilder()
			b.MovImm(isa.R1, int64(addr))
			b.Load(isa.R3, isa.R1, 0)
			b.Halt()
			ctx := &Context{Prog: b.MustBuild(), Mem: space}
			for core.Step(ctx).Trap == TrapNone {
			}
			if ctx.Regs[isa.R3] != oracle[addr] {
				t.Fatalf("trial %d: load [%#x] = %d, oracle says %d",
					trial, addr, ctx.Regs[isa.R3], oracle[addr])
			}
		}
	}
}
