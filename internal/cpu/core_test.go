package cpu

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// exec runs a program on a fresh core until a trap, returning the core
// and context for inspection.
func exec(t *testing.T, build func(b *isa.Builder)) (*Core, *Context, StepResult) {
	t.Helper()
	b := isa.NewBuilder()
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(0, pmu.DefaultFeatures())
	ctx := &Context{Prog: prog, Mem: mem.NewSpace(), AllowRdPMC: true}
	ctx.SeedRNG(7)
	var res StepResult
	for i := 0; i < 100000; i++ {
		res = core.Step(ctx)
		if res.Trap != TrapNone {
			return core, ctx, res
		}
	}
	t.Fatal("program did not trap within 100k steps")
	return nil, nil, res
}

func TestALUSemantics(t *testing.T) {
	_, ctx, res := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 10)
		b.MovImm(isa.R2, 3)
		b.Add(isa.R3, isa.R1, isa.R2) // 13
		b.Sub(isa.R4, isa.R1, isa.R2) // 7
		b.Mul(isa.R5, isa.R1, isa.R2) // 30
		b.And(isa.R6, isa.R1, isa.R2) // 2
		b.Or(isa.R7, isa.R1, isa.R2)  // 11
		b.Xor(isa.R8, isa.R1, isa.R2) // 9
		b.Shl(isa.R9, isa.R1, 2)      // 40
		b.Shr(isa.R10, isa.R1, 1)     // 5
		b.AddImm(isa.R11, isa.R1, -4) // 6
		b.Mov(isa.R12, isa.R5)        // 30
		b.Halt()
	})
	if res.Trap != TrapHalt {
		t.Fatalf("trap %v, want halt", res.Trap)
	}
	want := map[isa.Reg]uint64{
		isa.R3: 13, isa.R4: 7, isa.R5: 30, isa.R6: 2, isa.R7: 11,
		isa.R8: 9, isa.R9: 40, isa.R10: 5, isa.R11: 6, isa.R12: 30,
	}
	for r, v := range want {
		if ctx.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, ctx.Regs[r], v)
		}
	}
}

func TestLoadStore(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x2000)
		b.MovImm(isa.R2, 77)
		b.Store(isa.R1, 8, isa.R2)
		b.Load(isa.R3, isa.R1, 8)
		b.Halt()
	})
	if ctx.Regs[isa.R3] != 77 {
		t.Errorf("load got %d, want 77", ctx.Regs[isa.R3])
	}
}

func TestCASSuccessAndFailure(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x2000)
		b.MovImm(isa.R2, 0) // expect
		b.MovImm(isa.R3, 5) // new
		b.CAS(isa.R4, isa.R1, isa.R2, isa.R3)
		// Second CAS expects 0 again and must fail (memory now 5).
		b.CAS(isa.R5, isa.R1, isa.R2, isa.R3)
		b.Load(isa.R6, isa.R1, 0)
		b.Halt()
	})
	if ctx.Regs[isa.R4] != 0 {
		t.Errorf("first CAS old = %d, want 0", ctx.Regs[isa.R4])
	}
	if ctx.Regs[isa.R5] != 5 {
		t.Errorf("second CAS old = %d, want 5", ctx.Regs[isa.R5])
	}
	if ctx.Regs[isa.R6] != 5 {
		t.Errorf("memory = %d, want 5 (failed CAS must not store)", ctx.Regs[isa.R6])
	}
}

func TestXAdd(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x2000)
		b.MovImm(isa.R2, 4)
		b.XAdd(isa.R3, isa.R1, isa.R2)
		b.XAdd(isa.R4, isa.R1, isa.R2)
		b.Load(isa.R5, isa.R1, 0)
		b.Halt()
	})
	if ctx.Regs[isa.R3] != 0 || ctx.Regs[isa.R4] != 4 || ctx.Regs[isa.R5] != 8 {
		t.Errorf("xadd sequence: old1=%d old2=%d mem=%d, want 0 4 8",
			ctx.Regs[isa.R3], ctx.Regs[isa.R4], ctx.Regs[isa.R5])
	}
}

func TestBranchAndLoop(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0)
		b.MovImm(isa.R2, 10)
		b.Label("loop")
		b.AddImm(isa.R1, isa.R1, 1)
		b.Br(isa.CondLT, isa.R1, isa.R2, "loop")
		b.Halt()
	})
	if ctx.Regs[isa.R1] != 10 {
		t.Errorf("loop counter = %d, want 10", ctx.Regs[isa.R1])
	}
}

func TestComputeCostAndRetirement(t *testing.T) {
	core, _, _ := exec(t, func(b *isa.Builder) {
		b.Compute(500)
		b.Halt()
	})
	if core.PMU.GroundTruth(pmu.EvInstructions, pmu.RingUser) != 501 { // compute + halt
		t.Errorf("instructions = %d, want 501",
			core.PMU.GroundTruth(pmu.EvInstructions, pmu.RingUser))
	}
	if cyc := core.PMU.GroundTruth(pmu.EvCycles, pmu.RingUser); cyc != 501 {
		t.Errorf("cycles = %d, want 501", cyc)
	}
}

func TestMemoryEventsCounted(t *testing.T) {
	core, _, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x9000)
		b.Load(isa.R2, isa.R1, 0)  // cold miss
		b.Load(isa.R3, isa.R1, 0)  // hit
		b.Store(isa.R1, 0, isa.R2) // hit
		b.Halt()
	})
	gt := func(ev pmu.Event) uint64 { return core.PMU.GroundTruth(ev, pmu.RingUser) }
	if gt(pmu.EvLoads) != 2 || gt(pmu.EvStores) != 1 {
		t.Errorf("loads=%d stores=%d, want 2/1", gt(pmu.EvLoads), gt(pmu.EvStores))
	}
	if gt(pmu.EvL1DMiss) != 1 || gt(pmu.EvLLCMiss) != 1 {
		t.Errorf("l1dmiss=%d llcmiss=%d, want 1/1", gt(pmu.EvL1DMiss), gt(pmu.EvLLCMiss))
	}
}

func TestBranchEventsCounted(t *testing.T) {
	core, _, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0)
		b.MovImm(isa.R2, 20)
		b.Label("loop")
		b.AddImm(isa.R1, isa.R1, 1)
		b.Br(isa.CondLT, isa.R1, isa.R2, "loop")
		b.Halt()
	})
	if got := core.PMU.GroundTruth(pmu.EvBranches, pmu.RingUser); got != 20 {
		t.Errorf("branches = %d, want 20", got)
	}
	// A short loop keeps gshare's history-indexed entries cold for most
	// of its run; misses must be present but below the branch count.
	if miss := core.PMU.GroundTruth(pmu.EvBranchMiss, pmu.RingUser); miss == 0 || miss >= 20 {
		t.Errorf("branch misses = %d, want in (0,20)", miss)
	}
}

func TestBrRandDistribution(t *testing.T) {
	// Taken probability 128/255 ≈ 50%; count takens over many trials.
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0) // trials
		b.MovImm(isa.R2, 0) // takens
		b.MovImm(isa.R3, 2000)
		b.Label("loop")
		b.AddImm(isa.R1, isa.R1, 1)
		b.BrRand(128, "taken")
		b.Jmp("cont")
		b.Label("taken")
		b.AddImm(isa.R2, isa.R2, 1)
		b.Label("cont")
		b.Br(isa.CondLT, isa.R1, isa.R3, "loop")
		b.Halt()
	})
	takens := ctx.Regs[isa.R2]
	if takens < 800 || takens > 1200 {
		t.Errorf("BrRand(128) taken %d/2000, want ~1000", takens)
	}
}

func TestRandProducesVariedValues(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.Rand(isa.R1)
		b.Rand(isa.R2)
		b.Rand(isa.R3)
		b.Halt()
	})
	if ctx.Regs[isa.R1] == ctx.Regs[isa.R2] || ctx.Regs[isa.R2] == ctx.Regs[isa.R3] {
		t.Error("consecutive Rand values should differ")
	}
}

func TestRdCycleMonotonic(t *testing.T) {
	_, ctx, _ := exec(t, func(b *isa.Builder) {
		b.RdCycle(isa.R1)
		b.Compute(100)
		b.RdCycle(isa.R2)
		b.Halt()
	})
	if ctx.Regs[isa.R2] <= ctx.Regs[isa.R1] {
		t.Error("rdcycle must advance with time")
	}
	if delta := ctx.Regs[isa.R2] - ctx.Regs[isa.R1]; delta < 100 {
		t.Errorf("rdcycle delta %d, want >= 100 (the compute block)", delta)
	}
}

func TestRdPMCRequiresPermission(t *testing.T) {
	b := isa.NewBuilder()
	b.RdPMC(isa.R1, 0)
	b.Halt()
	core := NewCore(0, pmu.DefaultFeatures())
	ctx := &Context{Prog: b.MustBuild(), Mem: mem.NewSpace(), AllowRdPMC: false}
	if res := core.Step(ctx); res.Trap != TrapFault {
		t.Errorf("rdpmc without permission: trap %v, want fault", res.Trap)
	}
}

func TestRdPMCBadIndexFaults(t *testing.T) {
	_, _, res := exec(t, func(b *isa.Builder) {
		b.RdPMC(isa.R1, 99)
		b.Halt()
	})
	if res.Trap != TrapFault {
		t.Errorf("trap %v, want fault for bad counter index", res.Trap)
	}
}

func TestDestructiveRdPMCWithoutHardwareFaults(t *testing.T) {
	_, _, res := exec(t, func(b *isa.Builder) {
		b.RdPMCDestructive(isa.R1, 0)
		b.Halt()
	})
	if res.Trap != TrapFault {
		t.Errorf("trap %v, want fault (stock PMU has no destructive reads)", res.Trap)
	}
}

func TestSyscallTrap(t *testing.T) {
	core, _, res := exec(t, func(b *isa.Builder) {
		b.Syscall(42)
	})
	if res.Trap != TrapSyscall || res.SyscallNum != 42 {
		t.Errorf("got %+v, want syscall 42", res)
	}
	if core.PMU.GroundTruth(pmu.EvSyscalls, pmu.RingUser) != 1 {
		t.Error("syscall event not counted")
	}
}

func TestSigReturnOutsideHandlerFaults(t *testing.T) {
	_, _, res := exec(t, func(b *isa.Builder) {
		b.SigReturn()
	})
	if res.Trap != TrapFault {
		t.Errorf("trap %v, want fault", res.Trap)
	}
}

func TestPCOutOfRangeFaults(t *testing.T) {
	_, _, res := exec(t, func(b *isa.Builder) {
		b.Nop() // runs off the end
	})
	if res.Trap != TrapFault {
		t.Errorf("trap %v, want fault for pc overrun", res.Trap)
	}
}

func TestKernelWorkCountsInKernelRing(t *testing.T) {
	core := NewCore(0, pmu.DefaultFeatures())
	core.KernelWork(1000)
	if got := core.PMU.GroundTruth(pmu.EvCycles, pmu.RingKernel); got != 1000 {
		t.Errorf("kernel cycles = %d, want 1000", got)
	}
	if got := core.PMU.GroundTruth(pmu.EvCycles, pmu.RingUser); got != 0 {
		t.Errorf("user cycles = %d, want 0", got)
	}
	if core.Now != 1000 {
		t.Errorf("clock = %d, want 1000", core.Now)
	}
}

func TestKernelCachePollutionEvictsUserLines(t *testing.T) {
	core := NewCore(0, pmu.DefaultFeatures())
	// Warm a user line.
	ctx := &Context{Mem: mem.NewSpace()}
	b := isa.NewBuilder()
	b.MovImm(isa.R1, 0x4000)
	b.Load(isa.R2, isa.R1, 0)
	b.Halt()
	ctx.Prog = b.MustBuild()
	core.Step(ctx)
	core.Step(ctx)
	// Pollute an entire L1's worth of kernel lines.
	core.KernelCachePollution(0xffff_0000_0000_0000, 1024)
	if got := core.PMU.GroundTruth(pmu.EvL1DMiss, pmu.RingKernel); got == 0 {
		t.Error("pollution should generate kernel-ring misses")
	}
}

func TestContextRNGDeterminism(t *testing.T) {
	var a, b Context
	a.SeedRNG(5)
	b.SeedRNG(5)
	for i := 0; i < 10; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("same seed must give same stream")
		}
	}
	var c Context
	c.SeedRNG(6)
	if a.Rand() == c.Rand() {
		t.Error("different seeds should diverge")
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	var c Context
	c.SeedRNG(0)
	if c.Rand() == 0 && c.Rand() == 0 {
		t.Error("zero seed must not produce a stuck-at-zero stream")
	}
}

func TestStepResultInstrs(t *testing.T) {
	b := isa.NewBuilder()
	b.Compute(250)
	b.Nop()
	core := NewCore(0, pmu.DefaultFeatures())
	ctx := &Context{Prog: b.MustBuild(), Mem: mem.NewSpace()}
	if res := core.Step(ctx); res.Instrs != 250 {
		t.Errorf("compute Instrs = %d, want 250", res.Instrs)
	}
	if res := core.Step(ctx); res.Instrs != 1 {
		t.Errorf("nop Instrs = %d, want 1", res.Instrs)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	// A data-random branch stream forces mispredicts; with penalty 15
	// the average branch cost must exceed the base branch cost.
	core, _, _ := exec(t, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0)
		b.MovImm(isa.R2, 400)
		b.Label("loop")
		b.AddImm(isa.R1, isa.R1, 1)
		b.BrRand(128, "skip")
		b.Label("skip")
		b.Br(isa.CondLT, isa.R1, isa.R2, "loop")
		b.Halt()
	})
	miss := core.PMU.GroundTruth(pmu.EvBranchMiss, pmu.RingUser)
	if miss < 50 {
		t.Errorf("random branches mispredicted only %d/800", miss)
	}
}
