// Package cpu implements the simulated processor core: it executes one
// instruction of a thread Context per Step, charges cycle costs through
// the cache and branch-predictor models, and feeds every architectural
// event into the core's PMU. Traps (syscalls, faults, thread exit) are
// returned to the caller — the machine loop — which routes them to the
// kernel; the core itself knows nothing about the OS.
package cpu

import (
	"fmt"

	"limitsim/internal/branch"
	"limitsim/internal/cache"
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/tlb"
)

// TrapKind classifies why Step stopped normal execution.
type TrapKind uint8

// Trap kinds.
const (
	// TrapNone: the instruction completed; execution may continue.
	TrapNone TrapKind = iota
	// TrapSyscall: an OpSyscall executed; SyscallNum carries the number.
	TrapSyscall
	// TrapSigReturn: an OpSigReturn executed; the kernel must pop the
	// signal frame.
	TrapSigReturn
	// TrapHalt: the thread executed OpHalt and is done.
	TrapHalt
	// TrapFault: the thread did something illegal; Fault describes it.
	TrapFault
)

func (t TrapKind) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapSyscall:
		return "syscall"
	case TrapSigReturn:
		return "sigreturn"
	case TrapHalt:
		return "halt"
	case TrapFault:
		return "fault"
	}
	return "trap?"
}

// StepResult reports the outcome of executing one instruction.
type StepResult struct {
	Trap       TrapKind
	SyscallNum int64
	Fault      string
	// Cycles is the cost charged for the instruction.
	Cycles uint64
	// Instrs is the number of instructions retired (Imm for OpCompute
	// blocks, otherwise 1).
	Instrs uint64
}

// Core is one simulated processor core.
type Core struct {
	ID     int
	Now    uint64 // local cycle clock
	Caches *cache.Hierarchy
	TLB    *tlb.TLB
	Pred   branch.Predictor
	PMU    *pmu.PMU
	Cost   CostModel

	// Instructions retired in user ring, kept outside the PMU as a raw
	// progress meter for the machine loop's run limits.
	Retired uint64

	// Per-core translation hint: the word array backing the last page
	// this core touched, so hit-dominated access streams skip the
	// space's page-map lookup entirely. hintSpace/hintBase/hintGen
	// validate the hint; hintWr is non-nil only once the page's dirty
	// barrier has run this generation (mem.Space.WritePage), and
	// hintRd aliases it then. A generation change in the space
	// (Snapshot/Restore) invalidates via the hintGen compare.
	hintSpace *mem.Space
	hintBase  uint64
	hintGen   uint64
	hintRd    *mem.PageData
	hintWr    *mem.PageData
}

// load reads the word at addr through the translation hint.
func (c *Core) load(m *mem.Space, addr uint64) uint64 {
	mem.CheckAligned(addr)
	base := addr &^ uint64(mem.PageSize-1)
	if c.hintRd == nil || c.hintBase != base || c.hintSpace != m || c.hintGen != m.Gen() {
		c.hintRd = m.ReadPage(addr)
		c.hintWr = nil
		c.hintSpace, c.hintBase, c.hintGen = m, base, m.Gen()
	}
	return c.hintRd[(addr&(mem.PageSize-1))>>3]
}

// store writes the word at addr through the translation hint. The
// write side demands hintWr, which proves the page's dirty barrier ran
// in the current generation.
func (c *Core) store(m *mem.Space, addr, v uint64) {
	mem.CheckAligned(addr)
	base := addr &^ uint64(mem.PageSize-1)
	if c.hintWr == nil || c.hintBase != base || c.hintSpace != m || c.hintGen != m.Gen() {
		c.hintWr = m.WritePage(addr)
		c.hintRd = c.hintWr
		c.hintSpace, c.hintBase, c.hintGen = m, base, m.Gen()
	}
	c.hintWr[(addr&(mem.PageSize-1))>>3] = v
}

// NewCore builds a core with default cache, TLB, predictor, cost
// model, and the given PMU features.
func NewCore(id int, feats pmu.Features) *Core {
	return &Core{
		ID:     id,
		Caches: cache.NewDefault(),
		TLB:    tlb.NewDefault(),
		Pred:   branch.NewGshare(14),
		PMU:    pmu.New(feats),
		Cost:   DefaultCostModel(),
	}
}

// KernelWork models the kernel executing on this core for the given
// number of cycles, retiring approximately 0.8 instructions per cycle.
// Events land in the kernel ring. The kernel calls this for every
// syscall handler, context switch, interrupt, and signal delivery.
func (c *Core) KernelWork(cycles uint64) {
	c.Now += cycles
	c.PMU.AddKernel(pmu.EvCycles, cycles)
	c.PMU.AddKernel(pmu.EvInstructions, cycles*4/5)
}

// KernelCachePollution models kernel data touching n cache lines
// starting at base (a per-kernel address region), evicting victim
// application lines as a side effect and charging the access latency in
// kernel ring.
func (c *Core) KernelCachePollution(base uint64, n int) {
	// Miss counts are accumulated and fed to the PMU once per event
	// after the loop. This is observationally identical to per-line
	// AddEvent calls: pending overflows are a bitmask the machine loop
	// consumes only at instruction boundaries, i.e. after this whole
	// call, and counter sums are order-independent within it.
	var cycles, miss1, miss2, missL uint64
	for i := 0; i < n; i++ {
		r := c.Caches.Access(base + uint64(i)*64)
		cycles += r.Cycles
		if r.MissL1 {
			miss1++
		}
		if r.MissL2 {
			miss2++
		}
		if r.MissLLC {
			missL++
		}
	}
	c.PMU.AddKernel(pmu.EvLoads, uint64(n))
	c.PMU.AddKernel(pmu.EvL1DMiss, miss1)
	c.PMU.AddKernel(pmu.EvL2Miss, miss2)
	c.PMU.AddKernel(pmu.EvLLCMiss, missL)
	c.Now += cycles
	c.PMU.AddKernel(pmu.EvCycles, cycles)
}

func fault(format string, args ...any) StepResult {
	return StepResult{Trap: TrapFault, Fault: fmt.Sprintf(format, args...)}
}

// Step executes exactly one instruction of ctx on this core. The
// caller must check for pending interrupts (timer, PMU overflow) around
// Step; Step itself never switches contexts.
func (c *Core) Step(ctx *Context) StepResult {
	var res StepResult
	res.Instrs, res.Cycles, res.Trap = c.StepInto(ctx, &res)
	c.Retired += res.Instrs
	return res
}

// regIndexMask masks architectural register indices to the file size.
// NumRegs is a power of two and the builder API only names R0..R15, so
// masking is the identity on every constructible program while proving
// to the compiler that register accesses cannot fault — which removes
// a bounds check from nearly every interpreted instruction.
const regIndexMask = isa.NumRegs - 1

// StepInto is Step writing trap state into a caller-owned result —
// letting the kernel's per-instruction loop reuse one StepResult —
// and returning the retired-instruction count, cycle count, and trap
// kind in registers, where the burst loop consumes them without
// touching memory. res carries only the trap operands (syscall number,
// fault text); the counts and the trap kind are NOT stored into it,
// and the caller owns the Retired accumulation — Step materializes
// all three for callers that want the struct form.
func (c *Core) StepInto(ctx *Context, res *StepResult) (instrs, cycles uint64, trap TrapKind) {
	prog := ctx.Prog
	if uint(ctx.PC) >= uint(len(prog.Instrs)) {
		*res = fault("pc %d out of range [0,%d)", ctx.PC, len(prog.Instrs))
		return 0, 0, TrapFault
	}
	in := &prog.Instrs[ctx.PC]
	cost := &c.Cost
	nextPC := ctx.PC + 1
	cycles = cost.ALU
	instrs = 1

	switch in.Op {
	case isa.OpNop:
		// one ALU cycle

	case isa.OpCompute:
		cycles = uint64(in.Imm)
		instrs = uint64(in.Imm)

	case isa.OpMovImm:
		ctx.Regs[in.Dst&regIndexMask] = uint64(in.Imm)
	case isa.OpMov:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask]
	case isa.OpAdd:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] + ctx.Regs[in.Src2&regIndexMask]
	case isa.OpAddImm:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] + uint64(in.Imm)
	case isa.OpSub:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] - ctx.Regs[in.Src2&regIndexMask]
	case isa.OpMul:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] * ctx.Regs[in.Src2&regIndexMask]
		cycles = cost.Mul
	case isa.OpAnd:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] & ctx.Regs[in.Src2&regIndexMask]
	case isa.OpOr:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] | ctx.Regs[in.Src2&regIndexMask]
	case isa.OpXor:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] ^ ctx.Regs[in.Src2&regIndexMask]
	case isa.OpShl:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] << (uint64(in.Imm) & 63)
	case isa.OpShr:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Regs[in.Src1&regIndexMask] >> (uint64(in.Imm) & 63)

	case isa.OpLoad:
		addr := ctx.Regs[in.Src1&regIndexMask] + uint64(in.Imm)
		cycles = cost.MemBase + c.memAccess(addr)
		ctx.Regs[in.Dst&regIndexMask] = c.load(ctx.Mem, addr)
		c.PMU.AddUser(pmu.EvLoads, 1)

	case isa.OpStore:
		addr := ctx.Regs[in.Src1&regIndexMask] + uint64(in.Imm)
		cycles = cost.MemBase + c.memAccess(addr)
		c.store(ctx.Mem, addr, ctx.Regs[in.Src2&regIndexMask])
		c.PMU.AddUser(pmu.EvStores, 1)

	case isa.OpCAS:
		addr := ctx.Regs[in.Src1&regIndexMask]
		cycles = cost.MemBase + c.memAccess(addr) + cost.AtomicPenalty
		old := c.load(ctx.Mem, addr)
		if old == ctx.Regs[in.Src2&regIndexMask] {
			c.store(ctx.Mem, addr, ctx.Regs[isa.Reg(in.Imm)&regIndexMask])
			c.PMU.AddUser(pmu.EvStores, 1)
		}
		ctx.Regs[in.Dst&regIndexMask] = old
		c.PMU.AddUser(pmu.EvLoads, 1)
		c.PMU.AddUser(pmu.EvAtomics, 1)

	case isa.OpXAdd:
		addr := ctx.Regs[in.Src1&regIndexMask]
		cycles = cost.MemBase + c.memAccess(addr) + cost.AtomicPenalty
		old := c.load(ctx.Mem, addr)
		c.store(ctx.Mem, addr, old+ctx.Regs[in.Src2&regIndexMask])
		ctx.Regs[in.Dst&regIndexMask] = old
		c.PMU.AddUser(pmu.EvLoads, 1)
		c.PMU.AddUser(pmu.EvStores, 1)
		c.PMU.AddUser(pmu.EvAtomics, 1)

	case isa.OpJmp:
		nextPC = int(in.Imm)
		cycles = cost.Branch

	case isa.OpBr:
		taken := in.Cond.Eval(ctx.Regs[in.Src1&regIndexMask], ctx.Regs[in.Src2&regIndexMask])
		cycles = c.branchCost(uint64(ctx.PC), taken)
		if taken {
			nextPC = int(in.Imm)
		}

	case isa.OpBrRand:
		taken := uint8(ctx.Rand()) < uint8(in.Cond)
		cycles = c.branchCost(uint64(ctx.PC), taken)
		if taken {
			nextPC = int(in.Imm)
		}

	case isa.OpRand:
		ctx.Regs[in.Dst&regIndexMask] = ctx.Rand()
		cycles = 6 // inlined xorshift

	case isa.OpRdPMC:
		if !ctx.AllowRdPMC {
			*res = fault("rdpmc at pc %d without userspace counter access", ctx.PC)
			return 0, 0, TrapFault
		}
		idx := int(in.Imm)
		if idx < 0 || idx >= c.PMU.NumCounters() {
			*res = fault("rdpmc of nonexistent counter %d", idx)
			return 0, 0, TrapFault
		}
		if in.Cond != 0 {
			if !c.PMU.Features().DestructiveReads {
				*res = fault("destructive rdpmc without hardware support")
				return 0, 0, TrapFault
			}
			ctx.Regs[in.Dst&regIndexMask] = c.PMU.ReadAndReset(idx)
		} else {
			ctx.Regs[in.Dst&regIndexMask] = c.PMU.Read(idx)
		}
		cycles = cost.RdPMC

	case isa.OpRdCycle:
		ctx.Regs[in.Dst&regIndexMask] = c.Now
		cycles = cost.RdCycle

	case isa.OpSyscall:
		trap = TrapSyscall
		res.SyscallNum = in.Imm
		cycles = cost.TrapEntry
		c.PMU.AddUser(pmu.EvSyscalls, 1)

	case isa.OpSigReturn:
		if ctx.SigDepth == 0 {
			*res = fault("sigreturn outside signal handler at pc %d", ctx.PC)
			return 0, 0, TrapFault
		}
		trap = TrapSigReturn

	case isa.OpHalt:
		trap = TrapHalt

	default:
		*res = fault("illegal opcode %d at pc %d", in.Op, ctx.PC)
		return 0, 0, TrapFault
	}

	ctx.PC = nextPC
	c.Now += cycles
	c.PMU.AddRetire(instrs, cycles)
	return instrs, cycles, trap
}

// memAccess runs addr through the TLB and cache hierarchy, counts miss
// events, and returns the latency.
func (c *Core) memAccess(addr uint64) uint64 {
	tr := c.TLB.Translate(addr)
	if tr.MissL1 {
		c.PMU.AddUser(pmu.EvDTLBMiss, 1)
	}
	if tr.MissL2 {
		c.PMU.AddUser(pmu.EvDTLBWalk, 1)
	}
	r := c.Caches.Access(addr)
	if r.MissL1 {
		c.PMU.AddUser(pmu.EvL1DMiss, 1)
	}
	if r.MissL2 {
		c.PMU.AddUser(pmu.EvL2Miss, 1)
	}
	if r.MissLLC {
		c.PMU.AddUser(pmu.EvLLCMiss, 1)
	}
	return tr.Cycles + r.Cycles
}

// branchCost consults and trains the predictor, counts branch events,
// and returns the cycle cost.
func (c *Core) branchCost(pc uint64, taken bool) uint64 {
	var predicted bool
	if g, ok := c.Pred.(*branch.Gshare); ok {
		// The default predictor, devirtualized: one fused table access
		// instead of two interface calls.
		predicted = g.PredictUpdate(pc, taken)
	} else {
		predicted = c.Pred.Predict(pc)
		c.Pred.Update(pc, taken)
	}
	c.PMU.AddUser(pmu.EvBranches, 1)
	if predicted != taken {
		c.PMU.AddUser(pmu.EvBranchMiss, 1)
		return c.Cost.Branch + c.Cost.MispredictPenalty
	}
	return c.Cost.Branch
}
