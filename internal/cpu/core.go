// Package cpu implements the simulated processor core: it executes one
// instruction of a thread Context per Step, charges cycle costs through
// the cache and branch-predictor models, and feeds every architectural
// event into the core's PMU. Traps (syscalls, faults, thread exit) are
// returned to the caller — the machine loop — which routes them to the
// kernel; the core itself knows nothing about the OS.
package cpu

import (
	"fmt"

	"limitsim/internal/branch"
	"limitsim/internal/cache"
	"limitsim/internal/isa"
	"limitsim/internal/pmu"
	"limitsim/internal/tlb"
)

// TrapKind classifies why Step stopped normal execution.
type TrapKind uint8

// Trap kinds.
const (
	// TrapNone: the instruction completed; execution may continue.
	TrapNone TrapKind = iota
	// TrapSyscall: an OpSyscall executed; SyscallNum carries the number.
	TrapSyscall
	// TrapSigReturn: an OpSigReturn executed; the kernel must pop the
	// signal frame.
	TrapSigReturn
	// TrapHalt: the thread executed OpHalt and is done.
	TrapHalt
	// TrapFault: the thread did something illegal; Fault describes it.
	TrapFault
)

func (t TrapKind) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapSyscall:
		return "syscall"
	case TrapSigReturn:
		return "sigreturn"
	case TrapHalt:
		return "halt"
	case TrapFault:
		return "fault"
	}
	return "trap?"
}

// StepResult reports the outcome of executing one instruction.
type StepResult struct {
	Trap       TrapKind
	SyscallNum int64
	Fault      string
	// Cycles is the cost charged for the instruction.
	Cycles uint64
	// Instrs is the number of instructions retired (Imm for OpCompute
	// blocks, otherwise 1).
	Instrs uint64
}

// Core is one simulated processor core.
type Core struct {
	ID     int
	Now    uint64 // local cycle clock
	Caches *cache.Hierarchy
	TLB    *tlb.TLB
	Pred   branch.Predictor
	PMU    *pmu.PMU
	Cost   CostModel

	// Instructions retired in user ring, kept outside the PMU as a raw
	// progress meter for the machine loop's run limits.
	Retired uint64
}

// NewCore builds a core with default cache, TLB, predictor, cost
// model, and the given PMU features.
func NewCore(id int, feats pmu.Features) *Core {
	return &Core{
		ID:     id,
		Caches: cache.NewDefault(),
		TLB:    tlb.NewDefault(),
		Pred:   branch.NewGshare(14),
		PMU:    pmu.New(feats),
		Cost:   DefaultCostModel(),
	}
}

// count is shorthand for feeding the PMU in user ring.
func (c *Core) count(ev pmu.Event, n uint64) { c.PMU.AddEvent(pmu.RingUser, ev, n) }

// finish charges cycles in user ring and advances the clock.
func (c *Core) finish(cycles uint64) uint64 {
	c.Now += cycles
	c.count(pmu.EvCycles, cycles)
	return cycles
}

// KernelWork models the kernel executing on this core for the given
// number of cycles, retiring approximately 0.8 instructions per cycle.
// Events land in the kernel ring. The kernel calls this for every
// syscall handler, context switch, interrupt, and signal delivery.
func (c *Core) KernelWork(cycles uint64) {
	c.Now += cycles
	c.PMU.AddEvent(pmu.RingKernel, pmu.EvCycles, cycles)
	c.PMU.AddEvent(pmu.RingKernel, pmu.EvInstructions, cycles*4/5)
}

// KernelCachePollution models kernel data touching n cache lines
// starting at base (a per-kernel address region), evicting victim
// application lines as a side effect and charging the access latency in
// kernel ring.
func (c *Core) KernelCachePollution(base uint64, n int) {
	var cycles uint64
	for i := 0; i < n; i++ {
		r := c.Caches.Access(base + uint64(i)*64)
		cycles += r.Cycles
		c.PMU.AddEvent(pmu.RingKernel, pmu.EvLoads, 1)
		if r.MissL1 {
			c.PMU.AddEvent(pmu.RingKernel, pmu.EvL1DMiss, 1)
		}
		if r.MissL2 {
			c.PMU.AddEvent(pmu.RingKernel, pmu.EvL2Miss, 1)
		}
		if r.MissLLC {
			c.PMU.AddEvent(pmu.RingKernel, pmu.EvLLCMiss, 1)
		}
	}
	c.Now += cycles
	c.PMU.AddEvent(pmu.RingKernel, pmu.EvCycles, cycles)
}

func fault(format string, args ...any) StepResult {
	return StepResult{Trap: TrapFault, Fault: fmt.Sprintf(format, args...)}
}

// Step executes exactly one instruction of ctx on this core. The
// caller must check for pending interrupts (timer, PMU overflow) around
// Step; Step itself never switches contexts.
func (c *Core) Step(ctx *Context) StepResult {
	prog := ctx.Prog
	if ctx.PC < 0 || ctx.PC >= len(prog.Instrs) {
		return fault("pc %d out of range [0,%d)", ctx.PC, len(prog.Instrs))
	}
	in := prog.Instrs[ctx.PC]
	cost := c.Cost
	nextPC := ctx.PC + 1
	cycles := cost.ALU
	instrs := uint64(1)
	res := StepResult{}

	switch in.Op {
	case isa.OpNop:
		// one ALU cycle

	case isa.OpCompute:
		cycles = uint64(in.Imm)
		instrs = uint64(in.Imm)

	case isa.OpMovImm:
		ctx.Regs[in.Dst] = uint64(in.Imm)
	case isa.OpMov:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1]
	case isa.OpAdd:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] + ctx.Regs[in.Src2]
	case isa.OpAddImm:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] + uint64(in.Imm)
	case isa.OpSub:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] - ctx.Regs[in.Src2]
	case isa.OpMul:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] * ctx.Regs[in.Src2]
		cycles = cost.Mul
	case isa.OpAnd:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] & ctx.Regs[in.Src2]
	case isa.OpOr:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] | ctx.Regs[in.Src2]
	case isa.OpXor:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] ^ ctx.Regs[in.Src2]
	case isa.OpShl:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] << (uint64(in.Imm) & 63)
	case isa.OpShr:
		ctx.Regs[in.Dst] = ctx.Regs[in.Src1] >> (uint64(in.Imm) & 63)

	case isa.OpLoad:
		addr := ctx.Regs[in.Src1] + uint64(in.Imm)
		cycles = cost.MemBase + c.memAccess(addr)
		ctx.Regs[in.Dst] = ctx.Mem.Read64(addr)
		c.count(pmu.EvLoads, 1)

	case isa.OpStore:
		addr := ctx.Regs[in.Src1] + uint64(in.Imm)
		cycles = cost.MemBase + c.memAccess(addr)
		ctx.Mem.Write64(addr, ctx.Regs[in.Src2])
		c.count(pmu.EvStores, 1)

	case isa.OpCAS:
		addr := ctx.Regs[in.Src1]
		cycles = cost.MemBase + c.memAccess(addr) + cost.AtomicPenalty
		old := ctx.Mem.Read64(addr)
		if old == ctx.Regs[in.Src2] {
			ctx.Mem.Write64(addr, ctx.Regs[isa.Reg(in.Imm)])
			c.count(pmu.EvStores, 1)
		}
		ctx.Regs[in.Dst] = old
		c.count(pmu.EvLoads, 1)
		c.count(pmu.EvAtomics, 1)

	case isa.OpXAdd:
		addr := ctx.Regs[in.Src1]
		cycles = cost.MemBase + c.memAccess(addr) + cost.AtomicPenalty
		old := ctx.Mem.Read64(addr)
		ctx.Mem.Write64(addr, old+ctx.Regs[in.Src2])
		ctx.Regs[in.Dst] = old
		c.count(pmu.EvLoads, 1)
		c.count(pmu.EvStores, 1)
		c.count(pmu.EvAtomics, 1)

	case isa.OpJmp:
		nextPC = int(in.Imm)
		cycles = cost.Branch

	case isa.OpBr:
		taken := in.Cond.Eval(ctx.Regs[in.Src1], ctx.Regs[in.Src2])
		cycles = c.branchCost(uint64(ctx.PC), taken)
		if taken {
			nextPC = int(in.Imm)
		}

	case isa.OpBrRand:
		taken := uint8(ctx.Rand()) < uint8(in.Cond)
		cycles = c.branchCost(uint64(ctx.PC), taken)
		if taken {
			nextPC = int(in.Imm)
		}

	case isa.OpRand:
		ctx.Regs[in.Dst] = ctx.Rand()
		cycles = 6 // inlined xorshift

	case isa.OpRdPMC:
		if !ctx.AllowRdPMC {
			return fault("rdpmc at pc %d without userspace counter access", ctx.PC)
		}
		idx := int(in.Imm)
		if idx < 0 || idx >= c.PMU.NumCounters() {
			return fault("rdpmc of nonexistent counter %d", idx)
		}
		if in.Cond != 0 {
			if !c.PMU.Features().DestructiveReads {
				return fault("destructive rdpmc without hardware support")
			}
			ctx.Regs[in.Dst] = c.PMU.ReadAndReset(idx)
		} else {
			ctx.Regs[in.Dst] = c.PMU.Read(idx)
		}
		cycles = cost.RdPMC

	case isa.OpRdCycle:
		ctx.Regs[in.Dst] = c.Now
		cycles = cost.RdCycle

	case isa.OpSyscall:
		res.Trap = TrapSyscall
		res.SyscallNum = in.Imm
		cycles = cost.TrapEntry
		c.count(pmu.EvSyscalls, 1)

	case isa.OpSigReturn:
		if ctx.SigDepth == 0 {
			return fault("sigreturn outside signal handler at pc %d", ctx.PC)
		}
		res.Trap = TrapSigReturn

	case isa.OpHalt:
		res.Trap = TrapHalt

	default:
		return fault("illegal opcode %d at pc %d", in.Op, ctx.PC)
	}

	ctx.PC = nextPC
	c.count(pmu.EvInstructions, instrs)
	c.Retired += instrs
	res.Instrs = instrs
	res.Cycles = c.finish(cycles)
	return res
}

// memAccess runs addr through the TLB and cache hierarchy, counts miss
// events, and returns the latency.
func (c *Core) memAccess(addr uint64) uint64 {
	tr := c.TLB.Translate(addr)
	if tr.MissL1 {
		c.count(pmu.EvDTLBMiss, 1)
	}
	if tr.MissL2 {
		c.count(pmu.EvDTLBWalk, 1)
	}
	r := c.Caches.Access(addr)
	if r.MissL1 {
		c.count(pmu.EvL1DMiss, 1)
	}
	if r.MissL2 {
		c.count(pmu.EvL2Miss, 1)
	}
	if r.MissLLC {
		c.count(pmu.EvLLCMiss, 1)
	}
	return tr.Cycles + r.Cycles
}

// branchCost consults and trains the predictor, counts branch events,
// and returns the cycle cost.
func (c *Core) branchCost(pc uint64, taken bool) uint64 {
	predicted := c.Pred.Predict(pc)
	c.Pred.Update(pc, taken)
	c.count(pmu.EvBranches, 1)
	if predicted != taken {
		c.count(pmu.EvBranchMiss, 1)
		return c.Cost.Branch + c.Cost.MispredictPenalty
	}
	return c.Cost.Branch
}
