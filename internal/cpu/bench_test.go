package cpu

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// benchStep measures Core.Step on a one-or-two-instruction loop of the
// given shape, isolating the interpreter's per-instruction cost for
// one opcode class. The PMU carries the case-study counter mix (one
// user-cycles counter) so dispatch cost is realistic, not best-case.
func benchStep(b *testing.B, body func(bb *isa.Builder)) {
	bb := isa.NewBuilder()
	bb.Label("top")
	body(bb)
	bb.Jmp("top")
	prog := bb.MustBuild()

	core := NewCore(0, pmu.DefaultFeatures())
	core.PMU.Configure(0, pmu.CounterConfig{Event: pmu.EvCycles, CountUser: true, Enabled: true, OverflowBit: -1})
	sp := mem.NewSpace()
	base := sp.AllocWords(1024)
	ctx := &Context{Prog: prog, Mem: sp}
	ctx.Regs[isa.R1] = base
	ctx.SeedRNG(1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := core.Step(ctx); res.Trap != TrapNone {
			b.Fatalf("trap %v: %s", res.Trap, res.Fault)
		}
	}
}

func BenchmarkStepALU(b *testing.B) {
	benchStep(b, func(bb *isa.Builder) { bb.Add(isa.R2, isa.R2, isa.R3) })
}

func BenchmarkStepLoad(b *testing.B) {
	benchStep(b, func(bb *isa.Builder) { bb.Load(isa.R2, isa.R1, 0) })
}

func BenchmarkStepStore(b *testing.B) {
	benchStep(b, func(bb *isa.Builder) { bb.Store(isa.R1, 0, isa.R2) })
}

func BenchmarkStepBranch(b *testing.B) {
	benchStep(b, func(bb *isa.Builder) { bb.Br(isa.CondEQ, isa.R2, isa.R3, "top") })
}

func BenchmarkStepAtomic(b *testing.B) {
	benchStep(b, func(bb *isa.Builder) { bb.XAdd(isa.R2, isa.R1, isa.R3) })
}
