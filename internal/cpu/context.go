package cpu

import (
	"limitsim/internal/isa"
	"limitsim/internal/mem"
)

// Context is the architectural state of one software thread: register
// file, program counter, program, address space, and the per-thread
// deterministic RNG consumed by isa.OpBrRand. The kernel owns Context
// lifecycles; a Core executes whichever Context the kernel has switched
// in.
type Context struct {
	Regs [isa.NumRegs]uint64
	PC   int
	Prog *isa.Program
	Mem  *mem.Space

	// AllowRdPMC gates userspace counter reads. It is off by default,
	// as on a stock kernel; the LiMiT setup syscall turns it on
	// (mirroring the kernel patch that sets CR4.PCE).
	AllowRdPMC bool

	// SigDepth counts nested signal frames; OpSigReturn faults when it
	// is zero. Maintained by the kernel's signal delivery code.
	SigDepth int

	rng uint64
}

// SeedRNG initializes the context's deterministic RNG. A zero seed is
// remapped to a fixed non-zero constant, since the xorshift generator
// has a zero fixed point.
func (c *Context) SeedRNG(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	c.rng = seed
}

// Rand returns the next value of the context's xorshift64* stream.
func (c *Context) Rand() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Clone returns a copy of the context suitable for saving in a signal
// frame. The RNG state travels with the copy so that handler execution
// does not perturb the interrupted stream.
func (c *Context) Clone() Context { return *c }
