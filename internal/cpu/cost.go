package cpu

// CostModel fixes the cycle cost of each instruction class. Memory
// instructions add the cache hierarchy's latency on top of their base
// cost. The defaults approximate the 2011-era Nehalem/Westmere systems
// the reproduced paper measured, at a nominal 3 GHz (1 ns = 3 cycles).
type CostModel struct {
	ALU               uint64 // simple ALU ops, moves, nop
	Mul               uint64 // integer multiply
	Branch            uint64 // correctly predicted branch
	MispredictPenalty uint64 // added on branch mispredict
	MemBase           uint64 // added before cache latency on load/store
	AtomicPenalty     uint64 // added to CAS/XAdd beyond cache latency
	RdPMC             uint64 // rdpmc instruction
	RdCycle           uint64 // rdtsc-style cycle read
	TrapEntry         uint64 // user-side cost of the syscall instruction
}

// DefaultCostModel returns the calibrated defaults. rdpmc at 24 cycles
// (~8 ns) plus the rest of LiMiT's read sequence lands total reads in
// the paper's "low tens of nanoseconds".
func DefaultCostModel() CostModel {
	return CostModel{
		ALU:               1,
		Mul:               3,
		Branch:            1,
		MispredictPenalty: 15,
		MemBase:           0,
		AtomicPenalty:     8,
		RdPMC:             32,
		RdCycle:           8,
		TrapEntry:         40,
	}
}
