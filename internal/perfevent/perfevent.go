// Package perfevent is the heavyweight baseline the paper compares
// against: a perf_event-style counter interface in which every read is
// a syscall. The kernel virtualizes the counter to 64 bits (a
// kernel-side accumulator plus the live hardware count), so reads are
// precise — but each one pays trap entry, handler, and trap exit,
// landing around a microsecond versus LiMiT's tens of nanoseconds.
//
// Like internal/limit, this package is a code emitter over isa.Builder
// plus host-side helpers. Userspace keeps the returned fd in a
// register or memory and passes it to each read.
package perfevent

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// Spec declares one perf-style counter.
type Spec struct {
	Event       pmu.Event
	CountUser   bool
	CountKernel bool
}

// UserSpec counts ev in the user ring only.
func UserSpec(ev pmu.Event) Spec { return Spec{Event: ev, CountUser: true} }

// AllRingsSpec counts ev in both rings.
func AllRingsSpec(ev pmu.Event) Spec { return Spec{Event: ev, CountUser: true, CountKernel: true} }

// KernelSpec counts ev in the kernel ring only.
func KernelSpec(ev pmu.Event) Spec { return Spec{Event: ev, CountKernel: true} }

func (s Spec) flags() int64 {
	f := int64(0)
	if s.CountUser {
		f |= int64(kernel.FlagUser)
	}
	if s.CountKernel {
		f |= int64(kernel.FlagKernel)
	}
	return f
}

// EmitOpen emits the perf_open syscall for spec; the fd lands in
// fdReg. Clobbers R0 and R1 (and fdReg).
func EmitOpen(b *isa.Builder, spec Spec, fdReg isa.Reg) {
	b.MovImm(isa.R0, int64(spec.Event))
	b.MovImm(isa.R1, spec.flags())
	b.Syscall(kernel.SysPerfOpen)
	if fdReg != isa.R0 {
		b.Mov(fdReg, isa.R0)
	}
}

// EmitRead emits a counter-read syscall for the fd in fdReg; the
// 64-bit value lands in dst. Clobbers R0.
func EmitRead(b *isa.Builder, fdReg, dst isa.Reg) {
	if fdReg != isa.R0 {
		b.Mov(isa.R0, fdReg)
	}
	b.Syscall(kernel.SysPerfRead)
	if dst != isa.R0 {
		b.Mov(dst, isa.R0)
	}
}

// EmitReset emits a counter-reset syscall. Clobbers R0.
func EmitReset(b *isa.Builder, fdReg isa.Reg) {
	if fdReg != isa.R0 {
		b.Mov(isa.R0, fdReg)
	}
	b.Syscall(kernel.SysPerfReset)
}

// EmitClose emits a counter-close syscall. Clobbers R0.
func EmitClose(b *isa.Builder, fdReg isa.Reg) {
	if fdReg != isa.R0 {
		b.Mov(isa.R0, fdReg)
	}
	b.Syscall(kernel.SysPerfClose)
}

// GroupWord encodes one spec as a SysGroupOpen descriptor word: event
// id in the low 32 bits, ring flags in the high 32.
func GroupWord(s Spec) uint64 {
	return uint64(s.Event) | uint64(s.flags())<<32
}

// GroupTable allocates and fills a SysGroupOpen descriptor table in
// space at build time, returning its address. Build-time allocation
// keeps the open sequence to three instructions.
func GroupTable(space *mem.Space, specs []Spec) uint64 {
	addr := space.AllocWords(uint64(len(specs)))
	for i, s := range specs {
		space.Write64(addr+uint64(i)*8, GroupWord(s))
	}
	return addr
}

// EmitGroupOpen emits the group-open syscall for a descriptor table of
// n events at table; the group id lands in R0. Clobbers R0 and R1.
func EmitGroupOpen(b *isa.Builder, table uint64, n int) {
	b.MovImm(isa.R0, int64(table))
	b.MovImm(isa.R1, int64(n))
	b.Syscall(kernel.SysGroupOpen)
}

// EmitGroupRead emits the group-read syscall for event idx of group
// gid; the scaled estimate lands in dst. Clobbers R0 and R1.
func EmitGroupRead(b *isa.Builder, gid, idx int, dst isa.Reg) {
	b.MovImm(isa.R0, int64(gid))
	b.MovImm(isa.R1, int64(idx))
	b.Syscall(kernel.SysGroupRead)
	if dst != isa.R0 {
		b.Mov(dst, isa.R0)
	}
}

// FinalValue returns the final 64-bit value of thread t's perf counter
// fd after the thread has exited (counters are virtualized into the
// kernel accumulator at the final deschedule). Over-subscribed
// counters that were time-multiplexed return the Linux-style scaled
// estimate raw × window/active.
func FinalValue(t *kernel.Thread, fd int) (uint64, error) {
	cs := t.Counters()
	if fd < 0 || fd >= len(cs) {
		return 0, fmt.Errorf("perfevent: thread %d has no counter %d", t.ID, fd)
	}
	tc := cs[fd]
	if tc.Kind != kernel.KindPerf {
		return 0, fmt.Errorf("perfevent: thread %d counter %d is %v, not perf", t.ID, fd, tc.Kind)
	}
	raw := tc.Acc + tc.Saved
	if tc.ActiveCycles == 0 {
		return 0, nil
	}
	if !tc.Multiplexed() {
		return raw, nil
	}
	// 128-bit integer scaling: float64 drops low bits past 2^53 cycles,
	// which long runs reach (see pmu.Scale's large-magnitude test).
	return pmu.Scale(raw, tc.WindowCycles, tc.ActiveCycles), nil
}

// MustFinalValue is FinalValue but panics on error. It exists for
// tests and examples where a bad fd is a bug in the harness itself;
// measurement code should call FinalValue and propagate the error.
func MustFinalValue(t *kernel.Thread, fd int) uint64 {
	v, err := FinalValue(t, fd)
	if err != nil {
		panic(fmt.Sprintf("perfevent.MustFinalValue(thread %d, fd %d): %v", t.ID, fd, err))
	}
	return v
}
