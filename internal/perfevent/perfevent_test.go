package perfevent_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
)

func TestOpenReadRoundTrip(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	out := space.AllocWords(2)

	b := isa.NewBuilder()
	perfevent.EmitOpen(b, perfevent.UserSpec(pmu.EvInstructions), isa.R7)
	b.Compute(1_000)
	perfevent.EmitRead(b, isa.R7, isa.R4)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R4)
	b.Compute(2_000)
	perfevent.EmitRead(b, isa.R7, isa.R4)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 8, isa.R4)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	first, second := space.Read64(out), space.Read64(out+8)
	if first < 1_000 || first > 1_020 {
		t.Errorf("first read %d, want ~1005", first)
	}
	if delta := second - first; delta < 2_000 || delta > 2_020 {
		t.Errorf("read delta %d, want ~2005", delta)
	}
}

func TestKernelRingSpecSeesSyscallTime(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	out := space.AllocWords(2)

	b := isa.NewBuilder()
	perfevent.EmitOpen(b, perfevent.UserSpec(pmu.EvCycles), isa.R7)
	perfevent.EmitOpen(b, perfevent.AllRingsSpec(pmu.EvCycles), isa.R6)
	// A syscall-heavy stretch: the all-rings counter must advance far
	// beyond the user-only one.
	for i := 0; i < 5; i++ {
		b.MovImm(isa.R0, 0)
		b.Syscall(1) // SysGetTID
	}
	perfevent.EmitRead(b, isa.R7, isa.R4)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R4)
	perfevent.EmitRead(b, isa.R6, isa.R4)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 8, isa.R4)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	user, all := space.Read64(out), space.Read64(out+8)
	if all < user+1_000 {
		t.Errorf("all-rings %d vs user %d; kernel time missing", all, user)
	}
}

func TestFinalValueAfterExit(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	b := isa.NewBuilder()
	perfevent.EmitOpen(b, perfevent.UserSpec(pmu.EvInstructions), isa.R7)
	b.Compute(500)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	v, err := perfevent.MustFinalValue(th, 0), error(nil)
	_ = err
	if v < 500 || v > 520 {
		t.Errorf("final value %d, want ~502", v)
	}
	if _, err := perfevent.FinalValue(th, 3); err == nil {
		t.Error("bad fd should error")
	}
}

func TestEmitRegisterPlumbing(t *testing.T) {
	// fd and dst in non-R0 registers must still work (the emitters
	// shuffle through R0 internally).
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	perfevent.EmitOpen(b, perfevent.UserSpec(pmu.EvInstructions), isa.R13)
	b.Compute(300)
	perfevent.EmitRead(b, isa.R13, isa.R12)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R12)
	perfevent.EmitReset(b, isa.R13)
	perfevent.EmitClose(b, isa.R13)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})
	if got := space.Read64(out); got < 300 || got > 320 {
		t.Errorf("read through R13/R12 got %d", got)
	}
}
