package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FindingRecord is the wire form of one ranked finding — the exact
// shape WriteJSONL emits, parseable back with ParseJSONL so report
// assemblers consume profiler output from disk without rerunning the
// simulation.
type FindingRecord struct {
	Rank        int      `json:"rank"`
	Region      string   `json:"region"`
	Kind        string   `json:"kind"`
	Class       string   `json:"class"`
	Share       float64  `json:"share"`
	Count       uint64   `json:"count"`
	Self        []uint64 `json:"self"`
	Min         uint64   `json:"min"`
	Max         uint64   `json:"max"`
	MeanCycles  float64  `json:"mean_cycles"`
	KernelShare float64  `json:"kernel_share"`
	L1DPerKC    float64  `json:"l1d_per_kc"`
	BrMissPerKC float64  `json:"brmiss_per_kc"`
}

// SelfCostRecord is the trailing self-cost disclosure line of a
// WriteJSONL stream.
type SelfCostRecord struct {
	SelfCycles      float64 `json:"profiler_self_cycles"`
	PairVsBareRatio float64 `json:"pair_vs_bare_ratio"`
}

// Records converts the report's findings into their wire form, rank
// order, without a serialization round trip.
func (rep *Report) Records() []FindingRecord {
	out := make([]FindingRecord, len(rep.Findings))
	for i, f := range rep.Findings {
		out[i] = FindingRecord{
			Rank:        i + 1,
			Region:      f.Region.Path,
			Kind:        f.Region.Kind.String(),
			Class:       string(f.Class),
			Share:       f.Share,
			Count:       f.Region.Count,
			Self:        f.SelfSums,
			Min:         f.Region.Min,
			Max:         f.Region.Max,
			MeanCycles:  f.MeanCycles,
			KernelShare: f.KernelShare,
			L1DPerKC:    f.L1DPerKC,
			BrMissPerKC: f.BrMissPerKC,
		}
	}
	return out
}

// ParseJSONL reads a WriteJSONL stream back: the ranked findings in
// order plus the trailing self-cost record (nil when the stream ends
// without one). Lines that are neither shape fail with an error naming
// the line.
func ParseJSONL(r io.Reader) ([]FindingRecord, *SelfCostRecord, error) {
	var out []FindingRecord
	var self *SelfCostRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if self != nil {
			return nil, nil, fmt.Errorf("profile: jsonl line %d: content after the self-cost record", line)
		}
		// The self-cost record is the only line without a region.
		var probe struct {
			Region *string `json:"region"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, nil, fmt.Errorf("profile: jsonl line %d: %w", line, err)
		}
		if probe.Region == nil {
			var s SelfCostRecord
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, nil, fmt.Errorf("profile: jsonl line %d: %w", line, err)
			}
			self = &s
			continue
		}
		var rec FindingRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, nil, fmt.Errorf("profile: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, self, nil
}
