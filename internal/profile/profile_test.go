package profile_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"limitsim/internal/machine"
	"limitsim/internal/pmu"
	"limitsim/internal/profile"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
	"limitsim/internal/workloads"
)

func runProfiled(t *testing.T, mode workloads.RegionBenchMode) (*workloads.App, *machine.Machine) {
	t.Helper()
	app := workloads.BuildRegionBench(workloads.DefaultRegionBench(), profile.DefaultSpec(), mode)
	m, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return app, m
}

func TestSpecNormalized(t *testing.T) {
	s := profile.Spec{}.Normalized()
	if len(s.Events) != 4 || s.Stride != 1 || s.MaxRegions != 16 {
		t.Errorf("zero spec should normalize to defaults, got %+v", s)
	}
	if s.Events[0].Event != pmu.EvCycles || s.Events[0].AllRings {
		t.Errorf("default bundle must lead with user cycles, got %v", s.Events[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("bundle without leading user cycles should panic")
		}
	}()
	profile.Spec{Events: []profile.BundleEvent{{Event: pmu.EvL1DMiss}}}.Normalized()
}

func TestStrideForBudget(t *testing.T) {
	cases := []struct {
		s1, budget float64
		want       int
	}{
		{1.5, 1.1, 5}, // 50% excess into a 10% budget
		{1.5, 1.5, 1}, // budget already met at stride 1
		{2.0, 1.05, 20},
		{1.0, 1.1, 1},  // no overhead at all
		{1.5, 1.0, 50}, // impossible budget: cap excess at 1%
	}
	for _, c := range cases {
		if got := profile.StrideForBudget(c.s1, c.budget); got != c.want {
			t.Errorf("StrideForBudget(%.2f, %.2f) = %d, want %d", c.s1, c.budget, got, c.want)
		}
	}
}

// TestGroundTruthCrossCheck verifies the profiler's per-region sums
// against the machine's omniscient counters: on a single-thread
// workload whose loop body is one measured region, the region's
// attributed cycles and L1D misses must account for most of the
// ground-truth user-ring totals (the remainder is loop/prolog overhead
// and the instrumentation itself).
func TestGroundTruthCrossCheck(t *testing.T) {
	app, m := runProfiled(t, workloads.RegionBenchProfiled)
	p, err := workloads.CollectProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := p.Region("work")
	if !ok {
		t.Fatal("work region not collected")
	}
	cfg := workloads.DefaultRegionBench()
	if r.Count != uint64(cfg.Iters) {
		t.Errorf("region count %d, want %d", r.Count, cfg.Iters)
	}

	gtCycles := m.GroundTruthRing(pmu.EvCycles, pmu.RingUser)
	if r.Cycles() > gtCycles {
		t.Errorf("region cycles %d exceed ground-truth user cycles %d", r.Cycles(), gtCycles)
	}
	if ratio := float64(r.Cycles()) / float64(gtCycles); ratio < 0.5 {
		t.Errorf("region cycles cover only %.2f of ground truth; region should dominate the run", ratio)
	}

	l1dIdx, ok := p.Spec.EventIndex(pmu.EvL1DMiss)
	if !ok {
		t.Fatal("default bundle lacks l1d-miss")
	}
	gtL1D := m.GroundTruthRing(pmu.EvL1DMiss, pmu.RingUser)
	if got := r.Sums[l1dIdx]; got > gtL1D {
		t.Errorf("region L1D misses %d exceed ground truth %d", got, gtL1D)
	}

	ringIdx, ok := p.Spec.AllRingsCyclesIndex()
	if !ok {
		t.Fatal("default bundle lacks all-rings cycles")
	}
	if r.Sums[ringIdx] < r.Cycles() {
		t.Errorf("all-rings cycles %d below user cycles %d", r.Sums[ringIdx], r.Cycles())
	}
}

// TestOverheadWithinBareReadPairBound pins the acceptance bound: the
// full profiler boundary (accumulators, min/max, histogram) must cost
// at most ~2x the bare LiMiT read pair over the same bundle.
func TestOverheadWithinBareReadPairBound(t *testing.T) {
	modes := []workloads.RegionBenchMode{
		workloads.RegionBenchNone, workloads.RegionBenchBare, workloads.RegionBenchProfiled,
	}
	// The arms run through the parallel A/B helper; a serial re-run of
	// one arm must agree exactly, pinning arm independence.
	arms, err := workloads.RunRegionBenchModes(workloads.DefaultRegionBench(), profile.DefaultSpec(), modes, 0)
	if err != nil {
		t.Fatal(err)
	}
	serialBare, err := workloads.RunRegionBenchModes(
		workloads.DefaultRegionBench(), profile.DefaultSpec(),
		[]workloads.RegionBenchMode{workloads.RegionBenchBare}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serialBare[0] != arms[1] {
		t.Errorf("parallel arm total %d differs from serial %d", arms[1], serialBare[0])
	}
	base := arms[0]
	bare := arms[1] - base
	prof := arms[2] - base
	if arms[1] <= base {
		t.Fatalf("bare read pairs added no cost: %d vs %d", arms[1], base)
	}
	ratio := float64(prof) / float64(bare)
	t.Logf("bare pair overhead %d cyc, profiled %d cyc, ratio %.2fx", bare, prof, ratio)
	if ratio > 2.0 {
		t.Errorf("profiler boundary costs %.2fx the bare read pair; bound is ~2x", ratio)
	}

	// The modeled self-cost the report discloses must agree with the
	// bound too.
	app, _ := runProfiled(t, workloads.RegionBenchProfiled)
	p, err := workloads.CollectProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	if mr := p.SelfCost().Ratio(); mr > 2.0 {
		t.Errorf("modeled pair ratio %.2fx exceeds 2x", mr)
	}
}

func collectMySQL(t *testing.T) *profile.Profile {
	t.Helper()
	cfg := workloads.DefaultMySQL()
	cfg.TxnsPerWorker = 20
	app := workloads.BuildMySQL(cfg, workloads.ProfileInstr(profile.DefaultSpec()))
	_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	p, err := workloads.CollectProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReportDeterminism: same seed, same workload — byte-identical
// text, markdown and JSONL renders across two full runs.
func TestReportDeterminism(t *testing.T) {
	render := func() (string, string, string) {
		rep := profile.NewReport(collectMySQL(t))
		var txt, md, jl bytes.Buffer
		rep.RenderText(&txt, 0)
		rep.RenderMarkdown(&md, 0)
		if err := rep.WriteJSONL(&jl); err != nil {
			t.Fatal(err)
		}
		return txt.String(), md.String(), jl.String()
	}
	t1, m1, j1 := render()
	t2, m2, j2 := render()
	if t1 != t2 {
		t.Error("text render differs across same-seed runs")
	}
	if m1 != m2 {
		t.Error("markdown render differs across same-seed runs")
	}
	if j1 != j2 {
		t.Error("jsonl differs across same-seed runs")
	}
	if !strings.Contains(t1, "profiler self-cost") || !strings.Contains(t1, "vs bare 4-event LiMiT read pair") {
		t.Error("text render must disclose profiler overhead")
	}
	for i, line := range strings.Split(strings.TrimSpace(j1), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", i+1, err)
		}
	}
}

// TestThreadMergeDeterminism: collecting thread accumulators in any
// base order folds to the same profile.
func TestThreadMergeDeterminism(t *testing.T) {
	cfg := workloads.DefaultMySQL()
	cfg.TxnsPerWorker = 10
	app := workloads.BuildMySQL(cfg, workloads.ProfileInstr(profile.DefaultSpec()))
	_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ins := app.Bodies[0].Profiler
	var fwd, rev []uint64
	for _, plan := range app.Plans {
		fwd = append(fwd, app.ThreadBase(plan))
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		rev = append(rev, fwd[i])
	}
	a := ins.Collect(app.Space, fwd)
	b := ins.Collect(app.Space, rev)
	var ja, jb bytes.Buffer
	if err := profile.NewReport(a).WriteJSONL(&ja); err != nil {
		t.Fatal(err)
	}
	if err := profile.NewReport(b).WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Error("fold order changed the collected profile")
	}
}

func TestProfileMergeSchemaMismatch(t *testing.T) {
	a := collectMySQL(t)
	spec := profile.DefaultSpec()
	spec.Events = spec.Events[:2]
	b := &profile.Profile{Spec: spec.Normalized()}
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched bundles should fail")
	}
	c := collectMySQL(t)
	before, _ := a.Region("txn/table.cs")
	want := before.Count * 2
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	after, _ := a.Region("txn/table.cs")
	if after.Count != want {
		t.Errorf("merged count %d, want %d", after.Count, want)
	}
}

// TestFlameSpans: the exported hierarchy is well-formed (children
// nested inside parents) and round-trips through the Chrome span
// encoding as valid JSON.
func TestFlameSpans(t *testing.T) {
	p := collectMySQL(t)
	spans := p.FlameSpans()
	if len(spans) != len(p.Regions) {
		t.Fatalf("%d spans for %d regions", len(spans), len(p.Regions))
	}
	byName := map[string]trace.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, r := range p.Regions {
		if r.Parent == "" {
			continue
		}
		child, parent := byName[r.Path], byName[r.Parent]
		if child.StartCycle < parent.StartCycle ||
			child.StartCycle+child.DurCycles > parent.StartCycle+parent.DurCycles {
			t.Errorf("span %s [%d,%d) escapes parent %s [%d,%d)",
				r.Path, child.StartCycle, child.StartCycle+child.DurCycles,
				r.Parent, parent.StartCycle, parent.StartCycle+parent.DurCycles)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteChromeSpans(&buf, spans, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome span export is not valid JSON: %v", err)
	}
	back, err := trace.ParseChromeSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round-trip lost spans: %d vs %d", len(back), len(spans))
	}
	for i := range back {
		if back[i] != spans[i] {
			t.Errorf("span %d round-trip mismatch: %+v vs %+v", i, back[i], spans[i])
		}
	}
}

func TestStrideScalesSums(t *testing.T) {
	spec := profile.DefaultSpec()
	spec.Stride = 4
	app := workloads.BuildRegionBench(workloads.DefaultRegionBench(), spec, workloads.RegionBenchProfiled)
	_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	p, err := workloads.CollectProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.Region("work")
	want := uint64(workloads.DefaultRegionBench().Iters / 4)
	if r.Count != want {
		t.Errorf("stride-4 measured %d executions, want %d", r.Count, want)
	}
	// The report scales sums back by the stride, so attributed cycles
	// land near the stride-1 attribution.
	full := profile.NewReport(collectRegionBench(t, 1))
	strided := profile.NewReport(p)
	f, s := full.Top().SelfSums[0], strided.Top().SelfSums[0]
	ratio := float64(s) / float64(f)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("stride-scaled attribution off: %d vs %d (%.2fx)", s, f, ratio)
	}
}

func collectRegionBench(t *testing.T, stride int) *profile.Profile {
	t.Helper()
	spec := profile.DefaultSpec()
	spec.Stride = stride
	app := workloads.BuildRegionBench(workloads.DefaultRegionBench(), spec, workloads.RegionBenchProfiled)
	_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	p, err := workloads.CollectProfile(app)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMetricsAccount(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := profile.NewMetrics(reg)
	p := collectRegionBench(t, 1)
	p.Account(m)
	iters := uint64(workloads.DefaultRegionBench().Iters)
	if got := m.PairsMeasured.Value(); got != iters {
		t.Errorf("pairs metric %d, want %d", got, iters)
	}
	if got := m.ReadsIssued.Value(); got != iters*8 {
		t.Errorf("reads metric %d, want %d (2 boundaries x 4 events)", got, iters*8)
	}
	if m.SelfCycles.Value() == 0 {
		t.Error("self-cycles metric empty")
	}
}
