package profile

import "limitsim/internal/trace"

// FlameSpans renders the profile's region hierarchy as an aggregate
// flame graph: one trace.Span per region, with each region's span
// covering its stride-scaled inclusive cycles, children packed
// left-to-right inside their parent, and the uncovered remainder of a
// parent reading as self time. Loaded into Perfetto via
// trace.WriteChromeSpans this gives the classic self-time hierarchy
// view. Deterministic: regions place in path order from cycle 0.
func (p *Profile) FlameSpans() []trace.Span {
	var spans []trace.Span
	stride := uint64(p.Spec.Stride)
	var place func(r *Region, start, dur uint64)
	place = func(r *Region, start, dur uint64) {
		spans = append(spans, trace.Span{
			Name:       r.Path,
			StartCycle: start,
			DurCycles:  dur,
		})
		off := start
		for _, c := range p.Children(r) {
			cdur := c.Cycles() * stride
			// Nested sums can exceed the parent's by read-boundary
			// skew; clamp so the flame stays well-formed.
			if off >= start+dur {
				break
			}
			if off+cdur > start+dur {
				cdur = start + dur - off
			}
			place(c, off, cdur)
			off += cdur
		}
	}
	var cursor uint64
	for _, r := range p.Roots() {
		dur := r.Cycles() * stride
		place(r, cursor, dur)
		cursor += dur
	}
	return spans
}
