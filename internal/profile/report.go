package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"limitsim/internal/pmu"
	"limitsim/internal/stats"
	"limitsim/internal/tabwrite"
)

// Class is the bottleneck classification of a region.
type Class string

// Classifications, in decision order.
const (
	// ClassContention: a lock-acquire/wait region — its cycles are
	// serialization, the fix is less sharing, not faster code.
	ClassContention Class = "contention"
	// ClassKernelBound: a large share of the region's cycles run in
	// kernel ring (syscall-heavy).
	ClassKernelBound Class = "kernel-bound"
	// ClassMemoryBound: the region's L1D miss rate far exceeds the
	// rest of the program's.
	ClassMemoryBound Class = "memory-bound"
	// ClassComputeBound: none of the above dominates.
	ClassComputeBound Class = "compute-bound"
)

// Classification thresholds.
const (
	// KernelShareThreshold marks a region kernel-bound when at least
	// this fraction of its cycles are kernel-ring.
	KernelShareThreshold = 0.25
	// MemoryBoundFactor marks a region memory-bound when its L1D
	// misses/kcycle reach this multiple of the rest-of-program rate —
	// the same 2× criterion the F8 study applies to critical sections.
	MemoryBoundFactor = 2.0
)

// Finding is one ranked region with its derived metrics. Self values
// exclude nested child regions; rates are computed over self cycles so
// a parent is not blamed for its children's misses.
type Finding struct {
	Region *Region
	// SelfSums is Sums minus the direct children's sums per event,
	// clamped at zero, scaled by Stride to estimate full coverage.
	SelfSums []uint64
	// Score is the region's share of total attributed self cycles —
	// the ranking key.
	Score float64
	// Share mirrors Score (fraction of attributed cycles).
	Share float64
	// MeanCycles is self cycles per measured execution.
	MeanCycles float64
	// KernelShare is (all-rings − user)/all-rings cycles, when the
	// bundle carries all-rings cycles.
	KernelShare float64
	// L1DPerKC and BrMissPerKC are self misses per self kilocycle,
	// when the bundle carries the events.
	L1DPerKC    float64
	BrMissPerKC float64
	Class       Class
}

// Report ranks a profile's regions by attributed self-cost.
type Report struct {
	Profile *Profile
	// Findings is ordered by Score descending, path ascending on ties.
	Findings []Finding
	// TotalCycles is the sum of attributed self cycles (stride-scaled).
	TotalCycles uint64
	// BaselineL1DPerKC is the all-regions L1D rate each region is
	// compared against (rest-of-program baseline uses total − region).
	BaselineL1DPerKC float64
	// Self is the profiler's modeled instrumentation cost.
	Self PairCost
}

// NewReport computes derived metrics, classifies and ranks.
func NewReport(p *Profile) *Report {
	rep := &Report{Profile: p, Self: p.SelfCost()}
	stride := uint64(p.Spec.Stride)
	k := len(p.Spec.Events)
	ringIdx, hasRing := p.Spec.AllRingsCyclesIndex()
	l1dIdx, hasL1D := p.Spec.EventIndex(pmu.EvL1DMiss)
	brIdx, hasBr := p.Spec.EventIndex(pmu.EvBranchMiss)

	var totals []uint64 = make([]uint64, k)
	selfs := make(map[string][]uint64, len(p.Regions))
	for _, r := range p.Regions {
		self := make([]uint64, k)
		for i := 0; i < k; i++ {
			self[i] = r.Sums[i] * stride
		}
		for _, c := range p.Children(r) {
			for i := 0; i < k; i++ {
				child := c.Sums[i] * stride
				if child > self[i] {
					self[i] = 0
				} else {
					self[i] -= child
				}
			}
		}
		selfs[r.Path] = self
		for i := 0; i < k; i++ {
			totals[i] += self[i]
		}
	}
	rep.TotalCycles = totals[0]
	if hasL1D && totals[0] > 0 {
		rep.BaselineL1DPerKC = float64(totals[l1dIdx]) / (float64(totals[0]) / 1000)
	}

	for _, r := range p.Regions {
		self := selfs[r.Path]
		f := Finding{Region: r, SelfSums: self}
		cyc := float64(self[0])
		if rep.TotalCycles > 0 {
			f.Score = cyc / float64(rep.TotalCycles)
			f.Share = f.Score
		}
		if r.Count > 0 {
			f.MeanCycles = cyc / float64(r.Count*stride)
		}
		if hasRing && self[ringIdx] > self[0] {
			f.KernelShare = float64(self[ringIdx]-self[0]) / float64(self[ringIdx])
		}
		if cyc > 0 {
			if hasL1D {
				f.L1DPerKC = float64(self[l1dIdx]) / (cyc / 1000)
			}
			if hasBr {
				f.BrMissPerKC = float64(self[brIdx]) / (cyc / 1000)
			}
		}
		// Rest-of-program L1D baseline: everything outside this region.
		baseline := 0.0
		if hasL1D && totals[0] > self[0] {
			baseline = float64(totals[l1dIdx]-self[l1dIdx]) / (float64(totals[0]-self[0]) / 1000)
		}
		switch {
		case r.Kind == KindLock:
			f.Class = ClassContention
		case hasRing && f.KernelShare >= KernelShareThreshold:
			f.Class = ClassKernelBound
		case hasL1D && f.L1DPerKC > 0 && (baseline == 0 || f.L1DPerKC >= MemoryBoundFactor*baseline):
			f.Class = ClassMemoryBound
		default:
			f.Class = ClassComputeBound
		}
		rep.Findings = append(rep.Findings, f)
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Region.Path < b.Region.Path
	})
	return rep
}

// Top returns the highest-ranked finding.
func (rep *Report) Top() Finding {
	if len(rep.Findings) == 0 {
		return Finding{}
	}
	return rep.Findings[0]
}

// overheadLines renders the profiler's self-cost disclosure.
func (rep *Report) overheadLines(w io.Writer) {
	pair := rep.Self.Pair()
	var pairs uint64
	for _, r := range rep.Profile.Regions {
		pairs += r.Count
	}
	share := 0.0
	if rep.TotalCycles > 0 {
		share = pair / float64(rep.TotalCycles)
	}
	perPair := 0.0
	ratio := 0.0
	if pairs > 0 {
		perPair = pair / float64(pairs)
		ratio = rep.Self.Ratio()
	}
	fmt.Fprintf(w, "profiler self-cost: %.0f cycles over %d enter/exit pairs (%.1f cyc/pair, %.2f%% of attributed cycles)\n",
		pair, pairs, perPair, share*100)
	fmt.Fprintf(w, "profiler pair cost vs bare %d-event LiMiT read pair: %.2fx\n",
		len(rep.Profile.Spec.Events), ratio)
}

// RenderText writes the ranked report as an aligned text table.
// Byte-deterministic for a given profile.
func (rep *Report) RenderText(w io.Writer, top int) {
	t := tabwrite.New(
		fmt.Sprintf("Bottleneck profile: %s (stride %d, %d threads)", rep.Profile.App, rep.Profile.Spec.Stride, rep.Profile.Threads),
		"rank", "region", "kind", "class", "share", "self-Mcyc", "count", "mean-cyc", "kernel%", "l1d/kc", "brmiss/kc", "")
	for i, f := range rep.rankedTop(top) {
		t.Row(i+1, f.Region.Path, f.Region.Kind.String(), string(f.Class),
			fmt.Sprintf("%.1f%%", f.Share*100),
			fmt.Sprintf("%.2f", float64(f.SelfSums[0])/1e6),
			f.Region.Count, fmt.Sprintf("%.0f", f.MeanCycles),
			fmt.Sprintf("%.1f", f.KernelShare*100),
			fmt.Sprintf("%.2f", f.L1DPerKC), fmt.Sprintf("%.2f", f.BrMissPerKC),
			tabwrite.Bar(f.Share, 20))
	}
	t.Render(w)
	rep.overheadLines(w)
}

// RenderMarkdown writes the ranked report as a markdown table.
func (rep *Report) RenderMarkdown(w io.Writer, top int) {
	fmt.Fprintf(w, "## Bottleneck profile: %s\n\n", rep.Profile.App)
	fmt.Fprintf(w, "stride %d, %d threads, bundle %s\n\n", rep.Profile.Spec.Stride, rep.Profile.Threads, bundleString(rep.Profile.Spec))
	fmt.Fprintln(w, "| rank | region | kind | class | share | self-Mcyc | count | mean-cyc | kernel% | l1d/kc | brmiss/kc |")
	fmt.Fprintln(w, "|-----:|--------|------|-------|------:|----------:|------:|---------:|--------:|-------:|----------:|")
	for i, f := range rep.rankedTop(top) {
		fmt.Fprintf(w, "| %d | `%s` | %s | %s | %.1f%% | %.2f | %d | %.0f | %.1f | %.2f | %.2f |\n",
			i+1, f.Region.Path, f.Region.Kind, f.Class, f.Share*100,
			float64(f.SelfSums[0])/1e6, f.Region.Count, f.MeanCycles,
			f.KernelShare*100, f.L1DPerKC, f.BrMissPerKC)
	}
	fmt.Fprintln(w)
	rep.overheadLines(w)
}

// WriteJSONL writes one JSON object per finding in rank order, plus a
// trailing self-cost record. Hand-formatted for byte determinism.
func (rep *Report) WriteJSONL(w io.Writer) error {
	for i, f := range rep.Findings {
		sums := make([]string, len(f.SelfSums))
		for j, s := range f.SelfSums {
			sums[j] = fmt.Sprintf("%d", s)
		}
		_, err := fmt.Fprintf(w,
			"{\"rank\":%d,\"region\":%q,\"kind\":%q,\"class\":%q,\"share\":%.6f,\"count\":%d,\"self\":[%s],\"min\":%d,\"max\":%d,\"mean_cycles\":%.2f,\"kernel_share\":%.6f,\"l1d_per_kc\":%.4f,\"brmiss_per_kc\":%.4f}\n",
			i+1, f.Region.Path, f.Region.Kind.String(), string(f.Class), f.Share,
			f.Region.Count, strings.Join(sums, ","), f.Region.Min, f.Region.Max,
			f.MeanCycles, f.KernelShare, f.L1DPerKC, f.BrMissPerKC)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "{\"profiler_self_cycles\":%.0f,\"pair_vs_bare_ratio\":%.4f}\n",
		rep.Self.Pair(), rep.Self.Ratio())
	return err
}

// RenderHistograms writes each region's cycle-length histogram.
func (rep *Report) RenderHistograms(w io.Writer) {
	for _, f := range rep.Findings {
		h := f.Region.Hist
		if h == nil || h.Total() == 0 {
			continue
		}
		t := tabwrite.New(fmt.Sprintf("%s cycle lengths (measured: %d)", f.Region.Path, h.Total()), "bucket", "count", "share", "")
		for _, row := range histRows(h) {
			t.Row(row.Label, row.Count, fmt.Sprintf("%.1f%%", row.Share*100), tabwrite.Bar(row.Share, 30))
		}
		t.Render(w)
	}
}

func histRows(h *stats.LogHistogram) []stats.HistRow { return h.Rows() }

func (rep *Report) rankedTop(top int) []Finding {
	if top <= 0 || top > len(rep.Findings) {
		return rep.Findings
	}
	return rep.Findings[:top]
}

func bundleString(s Spec) string {
	parts := make([]string, len(s.Events))
	for i, ev := range s.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ",")
}
