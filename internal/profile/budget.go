package profile

import "math"

// StrideForBudget picks the measurement stride that keeps profiling
// overhead within an overall slowdown budget, given the measured
// slowdown at stride 1. The F2 overhead experiment shows LiMiT's
// slowdown is linear in read density, so measuring every S-th
// execution scales the excess slowdown by 1/S:
//
//	slowdown(S) ≈ 1 + (slowdown(1) − 1)/S
//
// The returned stride is the smallest S meeting budget (≥ 1). A budget
// at or below 1.0 (impossible: some overhead always remains) returns
// the stride that keeps excess under 1%.
func StrideForBudget(strideOneSlowdown, budget float64) int {
	excess := strideOneSlowdown - 1
	if excess <= 0 {
		return 1
	}
	allowed := budget - 1
	if allowed <= 0 {
		allowed = 0.01
	}
	s := int(math.Ceil(excess / allowed))
	if s < 1 {
		s = 1
	}
	return s
}
