package profile

import (
	"fmt"
	"sort"
	"strings"

	"limitsim/internal/cpu"
	"limitsim/internal/mem"
	"limitsim/internal/stats"
)

// Region is one collected region accumulator, merged across threads.
// Sums are inclusive (they contain nested child regions); the report
// layer derives self-time by subtracting children.
type Region struct {
	// Path is the "/"-joined lexical nesting path ("txn/table.cs").
	Path string
	// Name is the last path element.
	Name string
	// Parent is the parent region's path ("" for roots).
	Parent string
	Kind   RegionKind
	Depth  int
	// Count is how many measured executions exited the region.
	Count uint64
	// Sums holds the accumulated per-event deltas, Spec.Events order.
	Sums []uint64
	// Min and Max bound the measured cycle deltas (event 0).
	Min, Max uint64
	// Hist is the log2 cycle-length histogram (nil when disabled).
	Hist *stats.LogHistogram
}

// Cycles returns the accumulated user-ring cycle sum (event 0).
func (r *Region) Cycles() uint64 { return r.Sums[0] }

// Profile is a collected, merged region profile for one app run.
type Profile struct {
	App  string
	Spec Spec
	// Threads is how many thread accumulator sets were folded in.
	Threads int
	// Regions is ordered by Path, which for "/"-joined paths is a
	// deterministic depth-first preorder of the region tree.
	Regions []*Region
}

// Collect reads the instrumenter's per-thread TLS accumulators back
// from space (one base per profiled thread) and folds them into a
// Profile. Deterministic: regions come out in path order and fold
// order cannot affect any value (sums and counts are commutative,
// min/max are order-free).
func (ins *Instrumenter) Collect(space *mem.Space, bases []uint64) *Profile {
	k := len(ins.spec.Events)
	p := &Profile{Spec: ins.spec, Threads: len(bases)}
	for _, r := range ins.regions {
		out := &Region{
			Path:  r.path,
			Name:  r.name,
			Kind:  r.kind,
			Depth: strings.Count(r.path, "/"),
			Sums:  make([]uint64, k),
		}
		if i := strings.LastIndex(r.path, "/"); i >= 0 {
			out.Parent = r.path[:i]
		}
		if ins.spec.Hist {
			out.Hist = &stats.LogHistogram{}
		}
		for _, base := range bases {
			count := space.Read64(r.field(fldCount).Resolve(base))
			if count == 0 {
				continue
			}
			for i := 0; i < k; i++ {
				out.Sums[i] += space.Read64(r.field(fldStart + k + i).Resolve(base))
			}
			min := space.Read64(r.field(fldStart + 2*k).Resolve(base))
			max := space.Read64(r.field(fldStart + 2*k + 1).Resolve(base))
			if out.Count == 0 || min < out.Min {
				out.Min = min
			}
			if max > out.Max {
				out.Max = max
			}
			out.Count += count
			if ins.spec.Hist {
				for i := 0; i < HistBuckets; i++ {
					out.Hist.AddBucket(i, space.Read64(r.field(fldStart+2*k+2+i).Resolve(base)))
				}
			}
		}
		p.Regions = append(p.Regions, out)
	}
	sort.Slice(p.Regions, func(i, j int) bool { return p.Regions[i].Path < p.Regions[j].Path })
	return p
}

// Merge folds other into p: same-path regions accumulate, new paths
// append. Used to combine the profiles of multi-body apps (and of
// repeated runs); the result is independent of merge order up to the
// final path sort. Specs must describe the same bundle.
func (p *Profile) Merge(other *Profile) error {
	if err := p.Spec.compatible(other.Spec); err != nil {
		return err
	}
	byPath := make(map[string]*Region, len(p.Regions))
	for _, r := range p.Regions {
		byPath[r.Path] = r
	}
	for _, o := range other.Regions {
		r, ok := byPath[o.Path]
		if !ok {
			c := *o
			c.Sums = append([]uint64(nil), o.Sums...)
			if o.Hist != nil {
				c.Hist = &stats.LogHistogram{}
				c.Hist.Merge(o.Hist)
			}
			p.Regions = append(p.Regions, &c)
			continue
		}
		if r.Kind != o.Kind {
			return fmt.Errorf("profile: merging region %s with kind %s vs %s", o.Path, r.Kind, o.Kind)
		}
		for i := range r.Sums {
			r.Sums[i] += o.Sums[i]
		}
		if o.Count > 0 {
			if r.Count == 0 || o.Min < r.Min {
				r.Min = o.Min
			}
			if o.Max > r.Max {
				r.Max = o.Max
			}
		}
		r.Count += o.Count
		if r.Hist != nil && o.Hist != nil {
			r.Hist.Merge(o.Hist)
		}
	}
	p.Threads += other.Threads
	sort.Slice(p.Regions, func(i, j int) bool { return p.Regions[i].Path < p.Regions[j].Path })
	return nil
}

func (s Spec) compatible(o Spec) error {
	if len(s.Events) != len(o.Events) {
		return fmt.Errorf("profile: merging bundles with %d vs %d events", len(s.Events), len(o.Events))
	}
	for i := range s.Events {
		if s.Events[i] != o.Events[i] {
			return fmt.Errorf("profile: bundle event %d differs (%s vs %s)", i, s.Events[i], o.Events[i])
		}
	}
	if s.Stride != o.Stride {
		return fmt.Errorf("profile: merging profiles with stride %d vs %d", s.Stride, o.Stride)
	}
	return nil
}

// Region returns the region with the given path, if collected.
func (p *Profile) Region(path string) (*Region, bool) {
	for _, r := range p.Regions {
		if r.Path == path {
			return r, true
		}
	}
	return nil, false
}

// Children returns r's direct children in path order.
func (p *Profile) Children(r *Region) []*Region {
	var out []*Region
	for _, c := range p.Regions {
		if c.Parent == r.Path {
			out = append(out, c)
		}
	}
	return out
}

// Roots returns the top-level regions in path order.
func (p *Profile) Roots() []*Region {
	var out []*Region
	for _, r := range p.Regions {
		if r.Parent == "" {
			out = append(out, r)
		}
	}
	return out
}

// PairCost models the cycle cost of the profiler's instrumentation
// under the default cost model: one measured enter/exit pair versus
// the bare back-to-back LiMiT read pair over the same bundle that an
// uninstrumented measurement would pay anyway. The report layer prints
// the ratio so every profile carries its own overhead disclosure; the
// workloads regionbench test pins the measured ratio to the same ~2×
// bound.
type PairCost struct {
	// EnterCycles and ExitCycles model one measured boundary each.
	EnterCycles float64
	ExitCycles  float64
	// BareReadPairCycles models 2×K reads with start values parked in
	// TLS — the minimum any bundle measurement costs.
	BareReadPairCycles float64
}

// Pair returns the modeled enter+exit cost.
func (c PairCost) Pair() float64 { return c.EnterCycles + c.ExitCycles }

// Ratio returns the modeled pair cost over the bare read pair.
func (c PairCost) Ratio() float64 { return c.Pair() / c.BareReadPairCycles }

// modelPairCost prices the emitted sequences against the cost model.
// meanHistIters is the average number of log2 loop iterations per exit
// (the measured mean cycle-length bucket); pass 0 when Hist is off.
func (s Spec) modelPairCost(meanHistIters float64) PairCost {
	cm := cpu.DefaultCostModel()
	hit := 4.0 // L1 hit latency: TLS accumulators stay resident
	alu := float64(cm.ALU)
	br := float64(cm.Branch)
	read := float64(cm.RdPMC) + hit + alu // rdpmc + table load + add
	k := float64(len(s.Events))

	enter := k * (read + hit) // read + start store
	// Exit: per event read+start load+sub+sum load+add+sum store, plus
	// the cycles-delta mov, count load/inc/store and the min/max branch
	// ladder (two load+branch pairs, one jmp on the common path).
	exit := k*(read+2*hit+2*alu+hit) + alu
	exit += 2*hit + alu                // count++
	exit += alu + br + 2*(hit+br) + br // min/max ladder
	if s.Hist {
		exit += 3*alu + br                            // setup + clamp check
		exit += meanHistIters * (br + alu + alu + br) // loop body
		exit += 2*alu + hit + alu + 2*hit + alu       // shl/lea/add + bucket rmw
	}
	bare := 2 * k * (read + hit)
	return PairCost{EnterCycles: enter, ExitCycles: exit, BareReadPairCycles: bare}
}

// SelfCost models the profiler's total attributed overhead across the
// profile: measured pairs priced by the emitted sequences (histogram
// loop priced at each region's mean length bucket), plus the stride
// gate on skipped executions.
func (p *Profile) SelfCost() PairCost {
	var total PairCost
	for _, r := range p.Regions {
		c := p.Spec.modelPairCost(r.meanHistIters())
		total.EnterCycles += c.EnterCycles * float64(r.Count)
		total.ExitCycles += c.ExitCycles * float64(r.Count)
		total.BareReadPairCycles += c.BareReadPairCycles * float64(r.Count)
	}
	return total
}

// meanHistIters returns the count-weighted mean histogram bucket index
// (the log2 loop iteration count), 0 when the histogram is off/empty.
func (r *Region) meanHistIters() float64 {
	if r.Hist == nil || r.Hist.Total() == 0 {
		return 0
	}
	var w float64
	for i := 0; i < HistBuckets; i++ {
		w += float64(i) * float64(r.Hist.Bucket(i))
	}
	return w / float64(r.Hist.Total())
}
