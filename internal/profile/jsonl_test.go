package profile_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"limitsim/internal/profile"
)

// The wire round trip report assemblers depend on: WriteJSONL →
// ParseJSONL recovers every finding in rank order with exact integer
// fields, floats within the stream's fixed precision, and the trailing
// self-cost record.
func TestProfileJSONLRoundTrip(t *testing.T) {
	rep := profile.NewReport(collectMySQL(t))
	recs := rep.Records()
	if len(recs) == 0 {
		t.Fatal("profiled run produced no findings")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, self, err := profile.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("parsed %d findings, wrote %d", len(parsed), len(recs))
	}
	if self == nil {
		t.Fatal("self-cost record lost in round trip")
	}
	if got, want := self.PairVsBareRatio, rep.Self.Ratio(); math.Abs(got-want) > 0.00005 {
		t.Errorf("self ratio %v, want ~%v", got, want)
	}
	for i, p := range parsed {
		r := recs[i]
		if p.Rank != r.Rank || p.Region != r.Region || p.Kind != r.Kind || p.Class != r.Class ||
			p.Count != r.Count || p.Min != r.Min || p.Max != r.Max {
			t.Errorf("finding %d integer fields drifted:\n got %+v\nwant %+v", i, p, r)
		}
		if len(p.Self) != len(r.Self) {
			t.Fatalf("finding %d self sums %d, want %d", i, len(p.Self), len(r.Self))
		}
		for j := range p.Self {
			if p.Self[j] != r.Self[j] {
				t.Errorf("finding %d self[%d] = %d, want %d", i, j, p.Self[j], r.Self[j])
			}
		}
		// Floats travel at the stream's fixed precision.
		for _, f := range []struct {
			name      string
			got, want float64
			tol       float64
		}{
			{"share", p.Share, r.Share, 0.0000005},
			{"mean_cycles", p.MeanCycles, r.MeanCycles, 0.005},
			{"kernel_share", p.KernelShare, r.KernelShare, 0.0000005},
			{"l1d_per_kc", p.L1DPerKC, r.L1DPerKC, 0.00005},
			{"brmiss_per_kc", p.BrMissPerKC, r.BrMissPerKC, 0.00005},
		} {
			if math.Abs(f.got-f.want) > f.tol {
				t.Errorf("finding %d %s = %v, want ~%v", i, f.name, f.got, f.want)
			}
		}
	}
}

func TestProfileParseJSONLErrors(t *testing.T) {
	// Content after the self-cost record is a torn or concatenated
	// stream, not a valid report.
	bad := `{"profiler_self_cycles":10,"pair_vs_bare_ratio":1.1}
{"rank":1,"region":"r","kind":"lock","class":"contention","share":0.5,"count":1,"self":[1],"min":1,"max":1,"mean_cycles":1.0,"kernel_share":0,"l1d_per_kc":0,"brmiss_per_kc":0}
`
	if _, _, err := profile.ParseJSONL(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "after the self-cost record") {
		t.Errorf("content after self record: err = %v", err)
	}
	if _, _, err := profile.ParseJSONL(strings.NewReader(`{"rank":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// A headerless stream (no self record) parses with self == nil.
	only := `{"rank":1,"region":"r","kind":"lock","class":"contention","share":0.5,"count":1,"self":[1],"min":1,"max":1,"mean_cycles":1.0,"kernel_share":0,"l1d_per_kc":0,"brmiss_per_kc":0}`
	recs, self, err := profile.ParseJSONL(strings.NewReader(only))
	if err != nil || len(recs) != 1 || self != nil {
		t.Errorf("findings-only stream: recs=%d self=%v err=%v", len(recs), self, err)
	}
}
