// Package profile is the region-attribution profiler built on top of
// LiMiT's cheap reads — the reusable layer behind the paper's title
// deliverable, rapid identification of architectural bottlenecks.
//
// Programs annotate named code regions (lock acquires, critical
// sections, request phases, syscall spans) with enter/exit
// instrumentation emitted by an Instrumenter. Each boundary reads a
// configurable multi-event bundle (cycles, L1D misses, branch misses,
// all-rings cycles for the kernel share) with the LiMiT rdpmc
// sequence — affordable at every region boundary only because each
// read costs tens of nanoseconds — and streams the per-thread deltas
// into bounded per-region accumulators in TLS: count, per-event sums,
// min/max and a log2 cycle histogram. No per-entry samples are ever
// buffered, so soak-length runs profile in constant memory.
//
// Host-side, Collect folds the per-thread accumulators into a Profile
// that merges deterministically across threads and runs; the report
// layer ranks regions by attributed self-cost and classifies each as
// memory-bound, compute-bound, kernel-bound or contention.
package profile

import (
	"fmt"
	"sync/atomic"

	"limitsim/internal/isa"
	"limitsim/internal/limit"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
	"limitsim/internal/tls"
)

// RegionKind classifies what a region's cost means, steering the
// bottleneck classification (lock regions report contention, not
// memory behavior).
type RegionKind uint8

// Region kinds.
const (
	// KindPhase is a generic code phase (parse, handle, decode...).
	KindPhase RegionKind = iota
	// KindLock is a lock-acquire or wait span: its cycles are
	// serialization cost, not useful work.
	KindLock
	// KindCS is a critical section (lock held).
	KindCS
	// KindIO is a syscall/IO span.
	KindIO
)

var kindNames = [...]string{
	KindPhase: "phase",
	KindLock:  "lock",
	KindCS:    "cs",
	KindIO:    "io",
}

func (k RegionKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// BundleEvent is one event of the boundary read bundle.
type BundleEvent struct {
	Event pmu.Event
	// AllRings counts the event in kernel and user ring; the delta
	// against the matching user-ring event yields the kernel share.
	AllRings bool
}

func (ev BundleEvent) String() string {
	if ev.AllRings {
		return ev.Event.String() + ":k"
	}
	return ev.Event.String()
}

// CounterSpec returns the limit counter declaration for the event.
func (ev BundleEvent) CounterSpec() limit.CounterSpec {
	if ev.AllRings {
		return limit.AllRingsCounter(ev.Event)
	}
	return limit.UserCounter(ev.Event)
}

// HistBuckets is the fixed per-region log2 cycle histogram size:
// bucket i counts region executions of [2^i, 2^(i+1)) cycles, with the
// last bucket absorbing everything longer.
const HistBuckets = 32

// Spec configures the profiler: the boundary read bundle, the measure
// stride (instrumentation density) and the accumulator shape.
type Spec struct {
	// Events is the boundary read bundle. Events[0] must be the
	// user-ring cycles counter — every derived rate and the histogram
	// hang off it.
	Events []BundleEvent
	// Stride measures every Stride-th execution of each region (1 =
	// every execution). Densities below 1 trade attribution coverage
	// for overhead along the F2 curve; sums scale back by Stride in
	// reports.
	Stride int
	// Hist enables the per-region log2 cycle-length histogram.
	Hist bool
	// MaxRegions bounds how many distinct regions a body may define;
	// the TLS block is pre-reserved before code emission because the
	// layout freezes at Alloc time.
	MaxRegions int
}

// DefaultSpec is the standard bottleneck bundle: user cycles, all-ring
// cycles (kernel share), L1D misses and branch misses — exactly four
// counters, filling the stock PMU.
func DefaultSpec() Spec {
	return Spec{
		Events: []BundleEvent{
			{Event: pmu.EvCycles},
			{Event: pmu.EvCycles, AllRings: true},
			{Event: pmu.EvL1DMiss},
			{Event: pmu.EvBranchMiss},
		},
		Stride:     1,
		Hist:       true,
		MaxRegions: 16,
	}
}

// Normalized fills defaults and validates the bundle shape.
func (s Spec) Normalized() Spec {
	if len(s.Events) == 0 {
		s.Events = DefaultSpec().Events
	}
	if s.Events[0].Event != pmu.EvCycles || s.Events[0].AllRings {
		panic("profile: Spec.Events[0] must be the user-ring cycles counter")
	}
	if s.Stride < 1 {
		s.Stride = 1
	}
	if s.MaxRegions <= 0 {
		s.MaxRegions = 16
	}
	return s
}

// AllRingsCyclesIndex returns the bundle index of the all-rings cycles
// event, if present.
func (s Spec) AllRingsCyclesIndex() (int, bool) {
	for i, ev := range s.Events {
		if ev.Event == pmu.EvCycles && ev.AllRings {
			return i, true
		}
	}
	return 0, false
}

// EventIndex returns the bundle index of a user-ring event, if present.
func (s Spec) EventIndex(ev pmu.Event) (int, bool) {
	for i, be := range s.Events {
		if be.Event == ev && !be.AllRings {
			return i, true
		}
	}
	return 0, false
}

// Per-region TLS accumulator layout, in words. The block is written
// only by generated code; Collect reads it back host-side.
const (
	fldCount     = 0 // measured executions
	fldGate      = 1 // stride countdown
	fldMeasuring = 2 // 1 while a strided measurement is open
	fldStart     = 3 // K start values, then K sums, then min, max, hist
)

// regionWords returns the per-region TLS block size for the spec.
func (s Spec) regionWords() int {
	k := len(s.Events)
	n := fldStart + 2*k + 2
	if s.Hist {
		n += HistBuckets
	}
	return n
}

// region is one emit-time region definition. Identity is lexical:
// (parent, name) — re-entering the same Enter site accumulates into
// the same block.
type region struct {
	id     int
	name   string
	path   string
	parent int // index into Instrumenter.regions, -1 for roots
	kind   RegionKind
	base   ref.Ref
}

// Instrumenter emits region enter/exit instrumentation for one program
// body and owns its per-region TLS accumulators. Create it while the
// tls.Layout is still open (before Alloc); the full MaxRegions block
// is reserved up front because regions are defined during body
// emission, after the layout froze.
//
// Enter/Exit clobber R3..R6 only, so they compose with the workload
// register conventions (bodies own R7..R13, reads clobber R0..R3).
type Instrumenter struct {
	b       *isa.Builder
	e       *limit.Emitter
	spec    Spec
	ctrs    []int // limit counter index per bundle event
	block   ref.Ref
	regions []*region
	byKey   map[string]*region
	stack   []int
}

// labelSeq is package-global: multiple instrumenters may share one
// builder (multi-body programs), so labels must be unique across them.
// Atomic because independent programs are built concurrently by the
// runner's worker pool; numbering never reaches generated bytes.
var labelSeq atomic.Int64

// NewInstrumenter reserves TLS space for the profiler and declares the
// bundle's counters on e (which must not have called EmitInit yet).
func NewInstrumenter(b *isa.Builder, layout *tls.Layout, e *limit.Emitter, spec Spec) *Instrumenter {
	spec = spec.Normalized()
	ins := &Instrumenter{
		b:     b,
		e:     e,
		spec:  spec,
		block: layout.Reserve(spec.MaxRegions * spec.regionWords()),
		byKey: map[string]*region{},
	}
	for _, ev := range spec.Events {
		ins.ctrs = append(ins.ctrs, e.AddCounter(ev.CounterSpec()))
	}
	return ins
}

// Spec returns the normalized profiling spec.
func (ins *Instrumenter) Spec() Spec { return ins.spec }

// CounterIndex returns the limit counter index of bundle event i, so
// callers can reuse the profiler's counters (e.g. for body totals)
// instead of opening duplicates.
func (ins *Instrumenter) CounterIndex(i int) int { return ins.ctrs[i] }

// define resolves (current parent, name) to a region, creating it on
// first sight.
func (ins *Instrumenter) define(name string, kind RegionKind) *region {
	parent := -1
	path := name
	if n := len(ins.stack); n > 0 {
		parent = ins.stack[n-1]
		path = ins.regions[parent].path + "/" + name
	}
	key := fmt.Sprintf("%d/%s", parent, name)
	if r, ok := ins.byKey[key]; ok {
		return r
	}
	if len(ins.regions) >= ins.spec.MaxRegions {
		panic(fmt.Sprintf("profile: more than MaxRegions=%d regions (defining %q)", ins.spec.MaxRegions, path))
	}
	r := &region{
		id:     len(ins.regions),
		name:   name,
		path:   path,
		parent: parent,
		kind:   kind,
		base:   ins.block.Word(len(ins.regions) * ins.spec.regionWords()),
	}
	ins.regions = append(ins.regions, r)
	ins.byKey[key] = r
	return r
}

func (ins *Instrumenter) label(s string) string {
	return fmt.Sprintf("profile.%s.%d", s, labelSeq.Add(1))
}

// field returns region r's TLS word at index i.
func (r *region) field(i int) ref.Ref { return r.base.Word(i) }

// Enter emits the region-entry instrumentation: the stride gate (when
// Stride > 1) and one LiMiT read per bundle event stored into the
// region's start words. Clobbers R3..R6. Regions nest lexically —
// every Enter must be paired with an Exit in emission order.
func (ins *Instrumenter) Enter(name string, kind RegionKind) {
	r := ins.define(name, kind)
	ins.stack = append(ins.stack, r.id)
	b := ins.b
	k := len(ins.spec.Events)

	end := ""
	if ins.spec.Stride > 1 {
		end = ins.label("enterend")
		measure := ins.label("measure")
		// gate == 0: measure this execution and rearm; else skip.
		r.field(fldGate).EmitLoad(b, isa.R5)
		b.MovImm(isa.R6, 0)
		b.Br(isa.CondEQ, isa.R5, isa.R6, measure)
		b.AddImm(isa.R5, isa.R5, -1)
		r.field(fldGate).EmitStore(b, isa.R5, isa.R3)
		r.field(fldMeasuring).EmitStore(b, isa.R6, isa.R3)
		b.Jmp(end)
		b.Label(measure)
		b.MovImm(isa.R5, int64(ins.spec.Stride-1))
		r.field(fldGate).EmitStore(b, isa.R5, isa.R3)
		b.MovImm(isa.R5, 1)
		r.field(fldMeasuring).EmitStore(b, isa.R5, isa.R3)
	}
	for i := 0; i < k; i++ {
		ins.e.EmitRead(isa.R4, isa.R3, ins.ctrs[i])
		r.field(fldStart+i).EmitStore(b, isa.R4, isa.R3)
	}
	if end != "" {
		b.Label(end)
	}
}

// Exit emits the region-exit instrumentation for the innermost open
// region: one read per bundle event folded into the region's sums,
// count/min/max maintenance and (when enabled) the log2 cycle
// histogram update. Clobbers R3..R6.
func (ins *Instrumenter) Exit() {
	if len(ins.stack) == 0 {
		panic("profile: Exit without matching Enter")
	}
	r := ins.regions[ins.stack[len(ins.stack)-1]]
	ins.stack = ins.stack[:len(ins.stack)-1]
	b := ins.b
	k := len(ins.spec.Events)
	sum := func(i int) ref.Ref { return r.field(fldStart + k + i) }
	minF := r.field(fldStart + 2*k)
	maxF := r.field(fldStart + 2*k + 1)

	end := ins.label("exitend")
	if ins.spec.Stride > 1 {
		r.field(fldMeasuring).EmitLoad(b, isa.R5)
		b.MovImm(isa.R6, 0)
		b.Br(isa.CondEQ, isa.R5, isa.R6, end)
	}

	// Event 0 (cycles) first; its delta survives in R6 for min/max and
	// the histogram.
	for i := 0; i < k; i++ {
		ins.e.EmitRead(isa.R4, isa.R3, ins.ctrs[i])
		r.field(fldStart+i).EmitLoad(b, isa.R5)
		b.Sub(isa.R4, isa.R4, isa.R5)
		if i == 0 {
			b.Mov(isa.R6, isa.R4)
		}
		sum(i).EmitLoad(b, isa.R5)
		b.Add(isa.R4, isa.R4, isa.R5)
		sum(i).EmitStore(b, isa.R4, isa.R3)
	}

	// count++, with first-sample min/max seeding (TLS starts zeroed, so
	// an unconditional min would stick at zero).
	r.field(fldCount).EmitLoad(b, isa.R4)
	b.AddImm(isa.R4, isa.R4, 1)
	r.field(fldCount).EmitStore(b, isa.R4, isa.R3)
	first := ins.label("first")
	merged := ins.label("minmax")
	b.MovImm(isa.R5, 1)
	b.Br(isa.CondEQ, isa.R4, isa.R5, first)
	skipMin := ins.label("skipmin")
	minF.EmitLoad(b, isa.R5)
	b.Br(isa.CondGE, isa.R6, isa.R5, skipMin)
	minF.EmitStore(b, isa.R6, isa.R3)
	b.Label(skipMin)
	skipMax := ins.label("skipmax")
	maxF.EmitLoad(b, isa.R5)
	b.Br(isa.CondLE, isa.R6, isa.R5, skipMax)
	maxF.EmitStore(b, isa.R6, isa.R3)
	b.Label(skipMax)
	b.Jmp(merged)
	b.Label(first)
	minF.EmitStore(b, isa.R6, isa.R3)
	maxF.EmitStore(b, isa.R6, isa.R3)
	b.Label(merged)

	if ins.spec.Hist {
		// R5 = min(floor(log2(delta)), HistBuckets-1), then bump the
		// bucket word.
		loop := ins.label("histloop")
		done := ins.label("histdone")
		ok := ins.label("histok")
		b.Mov(isa.R4, isa.R6)
		b.MovImm(isa.R5, 0)
		b.MovImm(isa.R3, 2)
		b.Label(loop)
		b.Br(isa.CondLT, isa.R4, isa.R3, done)
		b.Shr(isa.R4, isa.R4, 1)
		b.AddImm(isa.R5, isa.R5, 1)
		b.Jmp(loop)
		b.Label(done)
		b.MovImm(isa.R3, HistBuckets)
		b.Br(isa.CondLT, isa.R5, isa.R3, ok)
		b.MovImm(isa.R5, HistBuckets-1)
		b.Label(ok)
		b.Shl(isa.R5, isa.R5, 3)
		r.field(fldStart+2*k+2).EmitLea(b, isa.R4)
		b.Add(isa.R4, isa.R4, isa.R5)
		b.Load(isa.R3, isa.R4, 0)
		b.AddImm(isa.R3, isa.R3, 1)
		b.Store(isa.R4, 0, isa.R3)
	}
	b.Label(end)
}

// Region wraps body in Enter/Exit.
func (ins *Instrumenter) Region(name string, kind RegionKind, body func()) {
	ins.Enter(name, kind)
	body()
	ins.Exit()
}

// NumRegions returns how many regions have been defined.
func (ins *Instrumenter) NumRegions() int { return len(ins.regions) }
