package profile

import "limitsim/internal/telemetry"

// Metrics is the profiler's self-measurement surface: how many region
// executions were measured, how many counter reads that cost, and the
// modeled cycles the instrumentation itself consumed — so a profiling
// run's telemetry block discloses the profiler's footprint next to the
// kernel's and LiMiT's.
type Metrics struct {
	// RegionsDefined counts distinct regions across collected profiles.
	RegionsDefined *telemetry.Counter
	// PairsMeasured counts measured enter/exit pairs.
	PairsMeasured *telemetry.Counter
	// ReadsIssued counts the boundary counter reads those pairs issued
	// (2 × bundle size per pair).
	ReadsIssued *telemetry.Counter
	// SelfCycles accumulates the modeled instrumentation cost.
	SelfCycles *telemetry.Counter
}

// NewMetrics registers the profiler's metric set on reg. Registration
// order is fixed for render/merge determinism.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		RegionsDefined: reg.Counter("profile.regions"),
		PairsMeasured:  reg.Counter("profile.pairs"),
		ReadsIssued:    reg.Counter("profile.reads"),
		SelfCycles:     reg.Counter("profile.self.cycles"),
	}
}

// Account folds a collected profile's footprint into m.
func (p *Profile) Account(m *Metrics) {
	if m == nil {
		return
	}
	m.RegionsDefined.Add(uint64(len(p.Regions)))
	var pairs uint64
	for _, r := range p.Regions {
		pairs += r.Count
	}
	m.PairsMeasured.Add(pairs)
	m.ReadsIssued.Add(pairs * 2 * uint64(len(p.Spec.Events)))
	m.SelfCycles.Add(uint64(p.SelfCost().Pair()))
}
