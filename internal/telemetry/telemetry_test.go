package telemetry_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"limitsim/internal/telemetry"
)

func TestCounterAndGauge(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("a.count")
	g := r.Gauge("a.level")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g.Add(3)
	g.Add(-2)
	g.Add(1)
	if g.Value() != 2 || g.Peak() != 3 {
		t.Errorf("gauge value=%d peak=%d, want 2/3", g.Value(), g.Peak())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := telemetry.NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("bucket counts %v, want [2 2 2]", counts)
	}
	if h.Count() != 6 || h.Min() != 5 || h.Max() != 5000 {
		t.Errorf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 5+10+11+100+101+5000 {
		t.Errorf("sum=%d", h.Sum())
	}
	// p50 of six observations falls in the second bucket (bound 100);
	// p99 lands in the overflow bucket, reported as the exact max.
	if q := h.Quantile(0.50); q != 100 {
		t.Errorf("p50=%d, want 100", q)
	}
	if q := h.Quantile(0.99); q != 5000 {
		t.Errorf("p99=%d, want 5000", q)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := telemetry.NewHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(75)
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("single-observation p50=%d, want bucket bound 100", q)
	}
}

func TestMergeAddsEverything(t *testing.T) {
	build := func() (*telemetry.Registry, *telemetry.Counter, *telemetry.Gauge, *telemetry.Histogram) {
		r := telemetry.NewRegistry()
		return r, r.Counter("c"), r.Gauge("g"), r.Histogram("h", []uint64{10, 100})
	}
	r1, c1, g1, h1 := build()
	r2, c2, g2, h2 := build()
	c1.Add(2)
	c2.Add(3)
	g1.Add(4)
	g1.Add(-4) // peak 4, residual 0
	g2.Add(2)
	h1.Observe(5)
	h2.Observe(500)

	r1.MustMerge(r2)
	if c1.Value() != 5 {
		t.Errorf("merged counter %d, want 5", c1.Value())
	}
	if g1.Value() != 2 || g1.Peak() != 4 {
		t.Errorf("merged gauge value=%d peak=%d, want 2/4", g1.Value(), g1.Peak())
	}
	if h1.Count() != 2 || h1.Min() != 5 || h1.Max() != 500 {
		t.Errorf("merged histogram count=%d min=%d max=%d", h1.Count(), h1.Min(), h1.Max())
	}
	_ = g2
	_ = h2
}

func TestMergeRejectsMissingMetric(t *testing.T) {
	r1 := telemetry.NewRegistry()
	r2 := telemetry.NewRegistry()
	r2.Counter("only-in-r2")
	if err := r1.Merge(r2); err == nil {
		t.Error("merge with missing metric must fail")
	}
}

func TestMergeRejectsKindMismatch(t *testing.T) {
	r1 := telemetry.NewRegistry()
	r1.Counter("m")
	r2 := telemetry.NewRegistry()
	r2.Gauge("m")
	if err := r1.Merge(r2); err == nil {
		t.Error("merging a gauge into a counter slot must fail")
	}

	r3 := telemetry.NewRegistry()
	r3.Gauge("h")
	r4 := telemetry.NewRegistry()
	r4.Histogram("h", []uint64{10})
	if err := r3.Merge(r4); err == nil {
		t.Error("merging a histogram into a gauge slot must fail")
	}
}

func TestMergeRejectsHistogramBoundMismatch(t *testing.T) {
	build := func(bounds []uint64) *telemetry.Registry {
		r := telemetry.NewRegistry()
		r.Histogram("h", bounds)
		return r
	}
	// Bucket-count mismatch.
	err := build([]uint64{10, 100}).Merge(build([]uint64{10}))
	if err == nil || !strings.Contains(err.Error(), "2 vs 1 bounds") {
		t.Errorf("bucket-count mismatch error = %v", err)
	}
	// Same count, different bound values.
	err = build([]uint64{10, 100}).Merge(build([]uint64{10, 200}))
	if err == nil || !strings.Contains(err.Error(), "bound 1 differs") {
		t.Errorf("bound-value mismatch error = %v", err)
	}
	// The error names the offending metric.
	if err != nil && !strings.Contains(err.Error(), "h") {
		t.Errorf("error does not name the metric: %v", err)
	}
}

func TestMergeErrorLeavesNoPartialCounter(t *testing.T) {
	r1 := telemetry.NewRegistry()
	c := r1.Counter("a")
	c.Add(10)
	r2 := telemetry.NewRegistry()
	r2.Counter("a").Add(5)
	r2.Counter("b") // missing in r1: merge fails
	if err := r1.Merge(r2); err == nil {
		t.Fatal("merge must fail on the missing counter")
	}
	// Counters are validated before any fold, so "a" must be untouched.
	if c.Value() != 10 {
		t.Errorf("failed merge mutated counter: %d, want 10", c.Value())
	}
}

func TestMustMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMerge on mismatched registries must panic")
		}
	}()
	r1 := telemetry.NewRegistry()
	r2 := telemetry.NewRegistry()
	r2.Counter("only-here")
	r1.MustMerge(r2)
}

func TestRenderDeterministic(t *testing.T) {
	build := func() *telemetry.Registry {
		r := telemetry.NewRegistry()
		r.Counter("kern.syscalls").Add(7)
		r.Gauge("pmu.slots").Set(3)
		h := r.Histogram("kern.switch.cycles", nil)
		h.Observe(900)
		h.Observe(1100)
		return r
	}
	var a, b bytes.Buffer
	build().Render(&a)
	build().Render(&b)
	if a.String() != b.String() {
		t.Error("identical registries must render identically")
	}
	for _, want := range []string{"kern.syscalls", "pmu.slots", "kern.switch.cycles"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("render missing %q:\n%s", want, a.String())
		}
	}
}

func TestWriteJSONLValid(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h", []uint64{10}).Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Errorf("invalid JSON line %q: %v", ln, err)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name must panic")
		}
	}()
	r := telemetry.NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestMergeSchemaError pins the typed error contract: every drift
// direction surfaces as a *telemetry.SchemaError naming the metric, and the
// target registry is untouched.
func TestMergeSchemaError(t *testing.T) {
	build := func(extra bool) *telemetry.Registry {
		r := telemetry.NewRegistry()
		r.Counter("runs")
		r.Gauge("level")
		r.Histogram("cost", []uint64{10, 100})
		if extra {
			r.Counter("drifted")
		}
		return r
	}

	// Source has a metric the target lacks.
	target, src := build(false), build(true)
	src.LookupCounter("runs").Add(7)
	err := target.Merge(src)
	var se *telemetry.SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *telemetry.SchemaError", err, err)
	}
	if se.Kind != "counter" || se.Name != "drifted" {
		t.Errorf("telemetry.SchemaError = %+v, want counter/drifted", se)
	}
	if got := target.LookupCounter("runs").Value(); got != 0 {
		t.Errorf("failed merge moved counts: runs = %d, want 0", got)
	}

	// Target has a metric the source lacks — also drift, also loud.
	err = build(true).Merge(build(false))
	if !errors.As(err, &se) {
		t.Fatalf("reverse drift: err = %v (%T), want *telemetry.SchemaError", err, err)
	}
	if se.Name != "drifted" || se.Detail != "missing from merge source" {
		t.Errorf("reverse drift telemetry.SchemaError = %+v", se)
	}

	// Histogram bound drift carries the histogram kind.
	a, b := telemetry.NewRegistry(), telemetry.NewRegistry()
	a.Histogram("cost", []uint64{10, 100})
	b.Histogram("cost", []uint64{10, 200})
	if err := a.Merge(b); !errors.As(err, &se) || se.Kind != "histogram" {
		t.Errorf("bound drift: err = %v, want histogram *telemetry.SchemaError", err)
	}
}

// TestRegistryReset verifies Reset zeroes values but preserves schema,
// handles and render order — the pooling contract.
func TestRegistryReset(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("runs")
	g := r.Gauge("level")
	h := r.Histogram("cost", []uint64{10, 100})

	var before strings.Builder
	r.Render(&before)

	c.Add(5)
	g.Add(3)
	g.Add(-1)
	h.Observe(7)
	h.Observe(5000)
	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || g.Peak() != 0 {
		t.Errorf("Reset left counter=%d gauge=%d peak=%d", c.Value(), g.Value(), g.Peak())
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("Reset left histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	var after strings.Builder
	r.Render(&after)
	if before.String() != after.String() {
		t.Errorf("reset registry renders differently:\n--- fresh ---\n%s--- reset ---\n%s",
			before.String(), after.String())
	}
	// Handles stay live: the same pointers keep recording after Reset.
	c.Inc()
	h.Observe(50)
	if r.LookupCounter("runs").Value() != 1 || r.LookupHistogram("cost").Count() != 1 {
		t.Error("handles went stale after Reset")
	}
}
