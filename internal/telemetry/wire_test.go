package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	type payload struct {
		Key int    `json:"key"`
		Msg string `json:"msg"`
	}
	if err := WriteFrame(&buf, "job", payload{Key: 7, Msg: "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, "shutdown", nil); err != nil {
		t.Fatal(err)
	}
	typ, data, err := ReadFrame(&buf)
	if err != nil || typ != "job" {
		t.Fatalf("ReadFrame = %q, %v", typ, err)
	}
	var p payload
	if err := json.Unmarshal(data, &p); err != nil || p.Key != 7 || p.Msg != "hi" {
		t.Fatalf("payload = %+v, %v", p, err)
	}
	typ, data, err = ReadFrame(&buf)
	if err != nil || typ != "shutdown" || len(data) != 0 {
		t.Fatalf("shutdown frame = %q, %q, %v", typ, data, err)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestWireTornFrame: a body cut short mid-frame must produce a
// *WireError naming the body field — never a short, silently-parsed
// payload.
func TestWireTornFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "result", map[string]int{"key": 3}); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-5]
	_, _, err := ReadFrame(bytes.NewReader(torn))
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v (%T), want *WireError", err, err)
	}
	if we.Field != "body" || !strings.Contains(we.Detail, "torn") {
		t.Errorf("WireError = %+v, want Field=body naming the tear", we)
	}
}

// TestWireVersionSkew: a frame from a different wire version is
// rejected with a *WireError naming the version field and the frame
// type, so a skewed worker fails loudly at the handshake.
func TestWireVersionSkew(t *testing.T) {
	body := []byte(`{"v":2,"type":"hello","data":{}}`)
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	_, _, err := ReadFrame(&buf)
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WireError", err)
	}
	if we.Frame != "hello" || we.Field != "v" || !strings.Contains(we.Detail, "version skew") {
		t.Errorf("WireError = %+v, want frame hello field v", we)
	}
}

func TestWireRejectsBadLengthAndJSON(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameLen+1)
	buf.Write(hdr[:])
	var we *WireError
	if _, _, err := ReadFrame(&buf); !errors.As(err, &we) || we.Field != "len" {
		t.Errorf("oversized length: err = %v, want *WireError on len", err)
	}
	// Unparseable body.
	buf.Reset()
	body := []byte(`{"v":1,`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, _, err := ReadFrame(&buf); !errors.As(err, &we) || we.Field != "json" {
		t.Errorf("bad json: err = %v, want *WireError on json", err)
	}
	// Missing type.
	buf.Reset()
	body = []byte(`{"v":1,"data":{}}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, _, err := ReadFrame(&buf); !errors.As(err, &we) || we.Field != "type" {
		t.Errorf("missing type: err = %v, want *WireError on type", err)
	}
	// Truncated length prefix (one byte of header).
	buf.Reset()
	buf.Write([]byte{0x00})
	if _, _, err := ReadFrame(&buf); !errors.As(err, &we) || we.Field != "len" {
		t.Errorf("torn header: err = %v, want *WireError on len", err)
	}
}

// sampleRegistry builds a registry with every metric kind populated,
// including a negative gauge level.
func sampleRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("fleet.results")
	c.Add(41)
	g := r.Gauge("fleet.inflight")
	g.Add(5)
	g.Add(-7) // value -2, peak 5
	h := r.Histogram("fleet.cost", []uint64{10, 100, 1000})
	h.Observe(3)
	h.Observe(45)
	h.Observe(99999)
	return r
}

// TestParseJSONLRoundTrip: WriteJSONL → ParseJSONL reproduces the
// registry exactly — byte-identical re-render and re-emit, and
// mergeable with a same-schema registry.
func TestParseJSONLRoundTrip(t *testing.T) {
	r := sampleRegistry()
	var out bytes.Buffer
	if err := r.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	r.Render(&a)
	got.Render(&b)
	if a.String() != b.String() {
		t.Errorf("re-render differs:\n%s\nvs\n%s", a.String(), b.String())
	}
	var re bytes.Buffer
	if err := got.WriteJSONL(&re); err != nil {
		t.Fatal(err)
	}
	if re.String() != out.String() {
		t.Errorf("re-emit differs:\n%q\nvs\n%q", re.String(), out.String())
	}
	// Merging two parsed copies doubles counters and histogram counts.
	second, err := ParseJSONL(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Merge(second); err != nil {
		t.Fatal(err)
	}
	if v := got.LookupCounter("fleet.results").Value(); v != 82 {
		t.Errorf("merged counter = %d, want 82", v)
	}
	if h := got.LookupHistogram("fleet.cost"); h.Count() != 6 || h.Sum() != 2*(3+45+99999) {
		t.Errorf("merged histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestParseJSONLRejectsMalformed: corrupt lines fail loudly with the
// line number, never parse partially.
func TestParseJSONLRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad json", "{nope}", "line 1"},
		{"unknown type", `{"type":"sparkline","name":"x","value":1}`, "unknown metric type"},
		{"missing name", `{"type":"counter","value":1}`, "missing metric name"},
		{"missing value", `{"type":"counter","name":"x"}`, "missing value"},
		{"negative counter", `{"type":"counter","name":"x","value":-4}`, "value"},
		{"dup name", `{"type":"counter","name":"x","value":1}` + "\n" + `{"type":"gauge","name":"x","value":1,"peak":1}`, "duplicate metric"},
		{"count mismatch", `{"type":"histogram","name":"h","count":9,"sum":1,"min":1,"max":1,"bounds":[10],"counts":[1,0]}`, "sum to 1, count says 9"},
		{"bad bucket shape", `{"type":"histogram","name":"h","count":1,"sum":1,"min":1,"max":1,"bounds":[10,20],"counts":[1]}`, "want bounds+1"},
	}
	for _, c := range cases {
		if _, err := ParseJSONL(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestParsedRegistriesSchemaDrift: two files with drifted schemas fail
// the merge with the usual typed *SchemaError naming the metric.
func TestParsedRegistriesSchemaDrift(t *testing.T) {
	a, err := ParseJSONL(strings.NewReader(`{"type":"counter","name":"kern.folds","value":3}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseJSONL(strings.NewReader(`{"type":"counter","name":"kern.rewinds","value":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var se *SchemaError
	if err := a.Merge(b); !errors.As(err, &se) || se.Name != "kern.rewinds" {
		t.Errorf("merge err = %v, want *SchemaError naming kern.rewinds", err)
	}
}
