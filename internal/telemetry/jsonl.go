package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonlMetric is the parse shape for one WriteJSONL line. Pointer
// fields distinguish absent from zero so required-field checks can
// name what is missing.
type jsonlMetric struct {
	Type string `json:"type"`
	Name string `json:"name"`
	// Value is a counter's uint64 or a gauge's int64; kept raw and
	// converted per type.
	Value  *json.Number `json:"value"`
	Peak   *int64       `json:"peak"`
	Count  *uint64      `json:"count"`
	Sum    *uint64      `json:"sum"`
	Min    *uint64      `json:"min"`
	Max    *uint64      `json:"max"`
	Bounds []uint64     `json:"bounds"`
	Counts []uint64     `json:"counts"`
}

// ParseJSONL reconstructs a registry from its WriteJSONL form: one
// metric per line, in registration order. The result is a full
// Registry — mergeable with Merge (schema drift between two parsed
// files surfaces as the usual *SchemaError), renderable with Render,
// re-emittable with WriteJSONL. The round trip is exact: every stored
// quantity is integral.
//
// Malformed input — bad JSON, an unknown metric type, a duplicate
// name, a histogram whose counts do not line up with its bounds —
// fails with an error naming the line; nothing is ever silently
// skipped or defaulted.
func ParseJSONL(r io.Reader) (*Registry, error) {
	reg := NewRegistry()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrameLen)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m jsonlMetric
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		if m.Name == "" {
			return nil, fmt.Errorf("telemetry: jsonl line %d: missing metric name", line)
		}
		if _, dup := reg.index[m.Name]; dup {
			return nil, fmt.Errorf("telemetry: jsonl line %d: duplicate metric %q", line, m.Name)
		}
		switch m.Type {
		case "counter":
			if m.Value == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: counter %q missing value", line, m.Name)
			}
			v, err := strconv.ParseUint(m.Value.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: counter %q value: %w", line, m.Name, err)
			}
			reg.Counter(m.Name).v = v
		case "gauge":
			if m.Value == nil || m.Peak == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: gauge %q missing value/peak", line, m.Name)
			}
			v, err := m.Value.Int64()
			if err != nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: gauge %q value: %w", line, m.Name, err)
			}
			g := reg.Gauge(m.Name)
			g.v = v
			g.peak = *m.Peak
		case "histogram":
			if m.Count == nil || m.Sum == nil || m.Min == nil || m.Max == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: histogram %q missing count/sum/min/max", line, m.Name)
			}
			if len(m.Bounds) == 0 || len(m.Counts) != len(m.Bounds)+1 {
				return nil, fmt.Errorf("telemetry: jsonl line %d: histogram %q has %d counts for %d bounds (want bounds+1)",
					line, m.Name, len(m.Counts), len(m.Bounds))
			}
			var total uint64
			for _, c := range m.Counts {
				total += c
			}
			if total != *m.Count {
				return nil, fmt.Errorf("telemetry: jsonl line %d: histogram %q bucket counts sum to %d, count says %d",
					line, m.Name, total, *m.Count)
			}
			h := reg.Histogram(m.Name, m.Bounds)
			copy(h.counts, m.Counts)
			h.n, h.sum, h.min, h.max = *m.Count, *m.Sum, *m.Min, *m.Max
		default:
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown metric type %q", line, m.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
	}
	return reg, nil
}
