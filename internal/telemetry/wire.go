// Wire framing for telemetry (and anything else) crossing a process
// boundary. The fleet coordinator and its workers speak length-prefixed
// JSON frames over pipes; a distributed collection layer only earns
// trust if a half-written, reordered, or version-skewed frame fails
// loudly instead of merging garbage, so every frame carries the wire
// version and is validated field-by-field on read. Violations surface
// as *WireError — the framing analogue of *SchemaError — naming the
// frame and the field that failed.
package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// WireVersion is the frame schema version. Readers reject any other
// version: a skewed coordinator/worker pair must fail its handshake,
// never exchange frames whose fields silently changed meaning.
const WireVersion = 1

// MaxFrameLen bounds a frame body. A length prefix beyond it is
// treated as stream corruption (a torn or misaligned frame), not as an
// instruction to allocate gigabytes.
const MaxFrameLen = 16 << 20

// WireError reports a frame that failed validation: torn (truncated
// mid-body), oversized, unparseable, version-skewed, or missing a
// required field. Frame names which frame (the declared type when it
// could be read, "?" otherwise); Field names what failed.
type WireError struct {
	// Frame is the frame type, or "?" when the type never arrived.
	Frame string
	// Field is the offending field ("len", "body", "v", "type", "json").
	Field string
	// Detail says what was wrong with it.
	Detail string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("telemetry: wire frame %q field %q: %s", e.Frame, e.Field, e.Detail)
}

// frame is the on-the-wire envelope: a 4-byte big-endian body length,
// then the JSON body {"v":1,"type":"...","data":{...}}.
type frame struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// WriteFrame marshals data and writes one framed message. The payload
// may be nil for frames that are pure signals ("shutdown").
func WriteFrame(w io.Writer, typ string, data any) error {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("telemetry: marshal %q frame: %w", typ, err)
		}
		raw = b
	}
	body, err := json.Marshal(frame{V: WireVersion, Type: typ, Data: raw})
	if err != nil {
		return fmt.Errorf("telemetry: marshal %q envelope: %w", typ, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads and validates one framed message, returning its type
// and raw payload. io.EOF is returned bare when the stream ends cleanly
// between frames; every other malformation — a torn length or body, an
// oversized length, unparseable JSON, a version mismatch, a missing
// type — is a *WireError naming the frame and field.
func ReadFrame(r io.Reader) (string, json.RawMessage, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, &WireError{Frame: "?", Field: "len",
			Detail: fmt.Sprintf("truncated length prefix: %v", err)}
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameLen {
		return "", nil, &WireError{Frame: "?", Field: "len",
			Detail: fmt.Sprintf("body length %d outside (0, %d]", n, MaxFrameLen)}
	}
	body := make([]byte, n)
	if got, err := io.ReadFull(r, body); err != nil {
		return "", nil, &WireError{Frame: "?", Field: "body",
			Detail: fmt.Sprintf("torn frame: got %d of %d bytes (%v)", got, n, err)}
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return "", nil, &WireError{Frame: "?", Field: "json",
			Detail: fmt.Sprintf("unparseable body: %v", err)}
	}
	if f.V != WireVersion {
		return "", nil, &WireError{Frame: f.Type, Field: "v",
			Detail: fmt.Sprintf("version skew: frame v%d, reader v%d", f.V, WireVersion)}
	}
	if f.Type == "" {
		return "", nil, &WireError{Frame: "?", Field: "type", Detail: "empty frame type"}
	}
	return f.Type, f.Data, nil
}
