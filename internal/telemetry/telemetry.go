// Package telemetry is the harness's self-metrics layer: monotonic
// counters, level gauges with high-water marks, and fixed-bucket cycle
// histograms, collected in a named registry. It exists so the simulated
// kernel, PMU and LiMiT library can measure *themselves* — fixup-rewind
// frequency, PMI delivery latency, context-switch cost, slot-ledger
// pressure — the same way LiMiT lets applications measure themselves.
//
// Discipline (mirrors the trace package): instrumentation is attached
// explicitly and every instrumented hot path pays exactly one nil check
// when telemetry is disabled. Metric handles are plain structs updated
// by direct field access — no locks, no maps, no allocation on the
// update path — which is safe because the simulation is single-
// threaded and deterministic. All reports derived from a registry are
// byte-deterministic for a given run: metrics render in registration
// order and all arithmetic is integral until presentation.
//
// The package depends only on the standard library so that any layer
// (pmu, kernel, limit, chaos, cmds) can import it without cycles.
package telemetry

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Counter is a monotonic event count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge tracks a current level and its high-water mark (e.g. slot-
// ledger occupancy). Levels may go up and down; the peak only rises.
type Gauge struct{ v, peak int64 }

// Add moves the level by d (negative to release).
func (g *Gauge) Add(d int64) {
	g.v += d
	if g.v > g.peak {
		g.peak = g.v
	}
}

// Set forces the level (peak still only rises).
func (g *Gauge) Set(v int64) {
	g.v = v
	if g.v > g.peak {
		g.peak = g.v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak }

// Histogram counts observations into fixed buckets. Bucket i counts
// values v with v <= bounds[i] (and greater than bounds[i-1]); one
// implicit overflow bucket catches everything above the last bound.
// Fixed bounds keep observation O(buckets) worst case with no
// allocation, and make merged histograms exact.
type Histogram struct {
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// DefaultCycleBounds covers kernel-path costs from a handful of cycles
// to a full scheduler quantum.
var DefaultCycleBounds = []uint64{
	50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
	20_000, 50_000, 100_000, 300_000, 1_000_000,
}

// NewHistogram builds a histogram over ascending bucket bounds (nil
// uses DefaultCycleBounds).
func NewHistogram(bounds []uint64) *Histogram {
	if bounds == nil {
		bounds = DefaultCycleBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// BucketCounts returns the per-bucket counts (last entry is the
// overflow bucket).
func (h *Histogram) BucketCounts() []uint64 { return h.counts }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// bound of the bucket in which that observation rank falls (Max for
// the overflow bucket). Exact enough for reports; never understates.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// checkBounds verifies o is mergeable into h (identical bucket bounds);
// the returned detail slots into a SchemaError.
func (h *Histogram) checkBounds(o *Histogram) string {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Sprintf("%d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Sprintf("bound %d differs (%d vs %d)", i, h.bounds[i], o.bounds[i])
		}
	}
	return ""
}

// merge folds o into h; the caller has already checked bounds.
func (h *Histogram) merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Registry holds named metrics in registration order. Names are
// dot-separated paths ("kern.switch.out.cycles"); registration order is
// the render order, so identical construction yields identical reports.
type Registry struct {
	counters   []*Counter
	counterIDs []string
	gauges     []*Gauge
	gaugeIDs   []string
	hists      []*Histogram
	histIDs    []string
	index      map[string]int // name -> kind-tagged index
}

const (
	kindCounter = iota
	kindGauge
	kindHist
	kindShift = 2
	kindMask  = 1<<kindShift - 1
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

func (r *Registry) register(name string, kind int) {
	if _, dup := r.index[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	var n int
	switch kind {
	case kindCounter:
		n = len(r.counterIDs)
	case kindGauge:
		n = len(r.gaugeIDs)
	case kindHist:
		n = len(r.histIDs)
	}
	r.index[name] = n<<kindShift | kind
}

// Counter registers and returns a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.register(name, kindCounter)
	c := &Counter{}
	r.counters = append(r.counters, c)
	r.counterIDs = append(r.counterIDs, name)
	return c
}

// Gauge registers and returns a named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.register(name, kindGauge)
	g := &Gauge{}
	r.gauges = append(r.gauges, g)
	r.gaugeIDs = append(r.gaugeIDs, name)
	return g
}

// Histogram registers and returns a named histogram (nil bounds:
// DefaultCycleBounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.register(name, kindHist)
	h := NewHistogram(bounds)
	r.hists = append(r.hists, h)
	r.histIDs = append(r.histIDs, name)
	return h
}

// Names returns the registered metric names by kind, each in
// registration order — the iteration hook report builders pair with
// Lookup* to render a registry without reaching into its internals.
func (r *Registry) Names() (counters, gauges, hists []string) {
	return r.counterIDs, r.gaugeIDs, r.histIDs
}

// LookupCounter returns the named counter, or nil.
func (r *Registry) LookupCounter(name string) *Counter {
	if i, ok := r.index[name]; ok && i&kindMask == kindCounter {
		return r.counters[i>>kindShift]
	}
	return nil
}

// LookupGauge returns the named gauge, or nil.
func (r *Registry) LookupGauge(name string) *Gauge {
	if i, ok := r.index[name]; ok && i&kindMask == kindGauge {
		return r.gauges[i>>kindShift]
	}
	return nil
}

// LookupHistogram returns the named histogram, or nil.
func (r *Registry) LookupHistogram(name string) *Histogram {
	if i, ok := r.index[name]; ok && i&kindMask == kindHist {
		return r.hists[i>>kindShift]
	}
	return nil
}

// SchemaError reports a registry merge whose source schema drifted
// from the target's: a metric missing on either side, registered under
// a different kind, or a histogram with different bucket bounds. It is
// a typed error so campaign engines can distinguish schema drift (a
// programming error in per-run registry construction — the merge moved
// nothing) from ordinary failures, and fail loudly instead of
// aggregating a silently incomplete report.
type SchemaError struct {
	// Kind is the metric kind in the registry that has it ("counter",
	// "gauge", "histogram").
	Kind string
	// Name is the drifting metric's name.
	Name string
	// Detail says what drifted (which side lacks it, or how histogram
	// bounds differ).
	Detail string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("telemetry: merge schema drift on %s %q: %s", e.Kind, e.Name, e.Detail)
}

// Merge folds o's metrics into r, matching by name. The schemas must
// be identical — every metric present on both sides with the same kind
// and histogram bounds — because merged registries are meant to be
// built by the same constructor, as the campaign engines do per run. A
// drifted schema returns a *SchemaError and r is left unmodified: the
// whole schema is validated before any counts move.
func (r *Registry) Merge(o *Registry) error {
	for _, name := range o.counterIDs {
		if r.LookupCounter(name) == nil {
			return &SchemaError{Kind: "counter", Name: name, Detail: "missing from merge target"}
		}
	}
	for _, name := range o.gaugeIDs {
		if r.LookupGauge(name) == nil {
			return &SchemaError{Kind: "gauge", Name: name, Detail: "missing from merge target"}
		}
	}
	for i, name := range o.histIDs {
		h := r.LookupHistogram(name)
		if h == nil {
			return &SchemaError{Kind: "histogram", Name: name, Detail: "missing from merge target"}
		}
		if detail := h.checkBounds(o.hists[i]); detail != "" {
			return &SchemaError{Kind: "histogram", Name: name, Detail: detail}
		}
	}
	for _, name := range r.counterIDs {
		if o.LookupCounter(name) == nil {
			return &SchemaError{Kind: "counter", Name: name, Detail: "missing from merge source"}
		}
	}
	for _, name := range r.gaugeIDs {
		if o.LookupGauge(name) == nil {
			return &SchemaError{Kind: "gauge", Name: name, Detail: "missing from merge source"}
		}
	}
	for _, name := range r.histIDs {
		if o.LookupHistogram(name) == nil {
			return &SchemaError{Kind: "histogram", Name: name, Detail: "missing from merge source"}
		}
	}
	for i, name := range o.counterIDs {
		r.LookupCounter(name).Add(o.counters[i].Value())
	}
	for i, name := range o.gaugeIDs {
		g := r.LookupGauge(name)
		// Residual levels add; the merged peak is the max of peaks.
		// Both operations are commutative and associative, so a
		// campaign merge is order-independent — the keyed post-barrier
		// merge order is a presentation convention, not a correctness
		// requirement.
		g.v += o.gauges[i].v
		if o.gauges[i].peak > g.peak {
			g.peak = o.gauges[i].peak
		}
	}
	for i, name := range o.histIDs {
		r.LookupHistogram(name).merge(o.hists[i])
	}
	return nil
}

// MustMerge is Merge but panics on mismatch (registries built by the
// same constructor cannot mismatch; a mismatch is a programming error).
func (r *Registry) MustMerge(o *Registry) {
	if err := r.Merge(o); err != nil {
		panic(err)
	}
}

// Reset zeroes every registered metric in place, preserving the schema
// and registration order. The runner's worker pools use it to reuse
// one per-run registry (and its instrumented metric handles) across
// many runs instead of reconstructing the whole metric set each time.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		*g = Gauge{}
	}
	for _, h := range r.hists {
		clear(h.counts)
		h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	}
}

// Render writes the registry as an aligned text block: counters and
// gauges first, then one row per histogram with count/mean/min/p50/
// p99/max. Deterministic: registration order, integral values.
func (r *Registry) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(r.counterIDs)+len(r.gaugeIDs) > 0 {
		fmt.Fprintln(tw, "metric\tvalue\tpeak")
		fmt.Fprintln(tw, "------\t-----\t----")
		for i, name := range r.counterIDs {
			fmt.Fprintf(tw, "%s\t%d\t-\n", name, r.counters[i].Value())
		}
		for i, name := range r.gaugeIDs {
			fmt.Fprintf(tw, "%s\t%d\t%d\n", name, r.gauges[i].Value(), r.gauges[i].Peak())
		}
	}
	tw.Flush()
	if len(r.histIDs) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "histogram (cycles)\tcount\tmean\tmin\tp50\tp99\tmax")
		fmt.Fprintln(tw, "-----------------\t-----\t----\t---\t---\t---\t---")
		for i, name := range r.histIDs {
			h := r.hists[i]
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%d\t%d\n",
				name, h.Count(), meanString(h), h.Min(),
				h.Quantile(0.50), h.Quantile(0.99), h.Max())
		}
		tw.Flush()
	}
}

// meanString renders a histogram mean with one decimal, trimming ".0"
// so integral means stay integral in reports.
func meanString(h *Histogram) string {
	s := fmt.Sprintf("%.1f", h.Mean())
	return strings.TrimSuffix(s, ".0")
}

// WriteJSONL emits the registry as JSON lines, one metric per line, in
// registration order — the tool-consumable form of Render. Counters:
// {"type":"counter","name":...,"value":N}. Gauges add "peak".
// Histograms carry counts, sum, min/max and explicit buckets.
func (r *Registry) WriteJSONL(w io.Writer) error {
	for i, name := range r.counterIDs {
		if _, err := fmt.Fprintf(w, "{\"type\":\"counter\",\"name\":%q,\"value\":%d}\n",
			name, r.counters[i].Value()); err != nil {
			return err
		}
	}
	for i, name := range r.gaugeIDs {
		if _, err := fmt.Fprintf(w, "{\"type\":\"gauge\",\"name\":%q,\"value\":%d,\"peak\":%d}\n",
			name, r.gauges[i].Value(), r.gauges[i].Peak()); err != nil {
			return err
		}
	}
	for i, name := range r.histIDs {
		h := r.hists[i]
		var sb strings.Builder
		fmt.Fprintf(&sb, "{\"type\":\"histogram\",\"name\":%q,\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"bounds\":[",
			name, h.Count(), h.Sum(), h.Min(), h.Max())
		for j, b := range h.bounds {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", b)
		}
		sb.WriteString("],\"counts\":[")
		for j, c := range h.counts {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", c)
		}
		sb.WriteString("]}\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
