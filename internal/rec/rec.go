// Package rec implements append-only measurement record buffers in
// simulated memory. Instrumented programs append fixed-stride records
// (e.g. lock-acquisition latency and critical-section length pairs);
// host-side analysis reads them back after the run. Appends are
// bounds-checked in generated code: a full buffer silently drops
// records rather than corrupting memory, and the count word reports how
// many were kept.
package rec

import (
	"fmt"
	"sync/atomic"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/ref"
)

// labelSeq is atomic: programs are built concurrently by the runner's
// worker pool. Label numbering never reaches generated program bytes.
var labelSeq atomic.Int64

// Buffer describes a record buffer: one count word followed by
// Cap records of Stride words each.
type Buffer struct {
	base   ref.Ref
	Cap    int
	Stride int
}

// SizeWords returns the buffer's total footprint in words.
func SizeWords(capacity, stride int) int { return 1 + capacity*stride }

// Alloc reserves an absolute buffer in the process address space.
func Alloc(space *mem.Space, capacity, stride int) Buffer {
	addr := space.AllocWords(uint64(SizeWords(capacity, stride)))
	return Buffer{base: ref.Absolute(addr), Cap: capacity, Stride: stride}
}

// At wraps an already-reserved region (e.g. a tls.Layout field) as a
// buffer. The region must span SizeWords(capacity, stride) words.
func At(base ref.Ref, capacity, stride int) Buffer {
	return Buffer{base: base, Cap: capacity, Stride: stride}
}

// Base returns the buffer's base reference.
func (bu Buffer) Base() ref.Ref { return bu.base }

// EmitAppend emits code appending one record whose field values are in
// vals (len(vals) == Stride). Clobbers the three scratch registers,
// which must be distinct from each other and from vals.
func (bu Buffer) EmitAppend(b *isa.Builder, vals []isa.Reg, s1, s2, s3 isa.Reg) {
	if len(vals) != bu.Stride {
		panic(fmt.Sprintf("rec: EmitAppend with %d values, stride %d", len(vals), bu.Stride))
	}
	skip := fmt.Sprintf("rec.skip.%d", labelSeq.Add(1))

	bu.base.EmitLea(b, s1)      // s1 = &count
	b.Load(s2, s1, 0)           // s2 = count
	b.MovImm(s3, int64(bu.Cap)) // capacity check
	b.Br(isa.CondGE, s2, s3, skip)
	b.MovImm(s3, int64(bu.Stride)*8)
	b.Mul(s3, s2, s3)
	b.Add(s3, s1, s3) // s3 = &count + count*stride*8
	for i, v := range vals {
		b.Store(s3, int64(8+i*8), v)
	}
	b.AddImm(s2, s2, 1)
	b.Store(s1, 0, s2)
	b.Label(skip)
}

// Count reads the record count from a run's memory; threadBase is the
// TLS base for register-relative buffers (ignored for absolute).
func (bu Buffer) Count(space *mem.Space, threadBase uint64) uint64 {
	n := space.Read64(bu.base.Resolve(threadBase))
	if n > uint64(bu.Cap) {
		n = uint64(bu.Cap)
	}
	return n
}

// Records reads all appended records back from a run's memory.
func (bu Buffer) Records(space *mem.Space, threadBase uint64) [][]uint64 {
	n := int(bu.Count(space, threadBase))
	addr := bu.base.Resolve(threadBase) + 8
	out := make([][]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = space.ReadWords(addr+uint64(i*bu.Stride)*8, bu.Stride)
	}
	return out
}

// Column reads field f of every record.
func (bu Buffer) Column(space *mem.Space, threadBase uint64, f int) []uint64 {
	if f < 0 || f >= bu.Stride {
		panic(fmt.Sprintf("rec: column %d out of stride %d", f, bu.Stride))
	}
	n := int(bu.Count(space, threadBase))
	addr := bu.base.Resolve(threadBase) + 8
	out := make([]uint64, n)
	for i := range out {
		out[i] = space.Read64(addr + uint64(i*bu.Stride+f)*8)
	}
	return out
}
