package rec

import (
	"testing"

	"limitsim/internal/cpu"
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
)

func runToHalt(t *testing.T, b *isa.Builder, space *mem.Space) {
	t.Helper()
	core := cpu.NewCore(0, pmu.DefaultFeatures())
	ctx := &cpu.Context{Prog: b.MustBuild(), Mem: space}
	for i := 0; i < 1_000_000; i++ {
		res := core.Step(ctx)
		if res.Trap == cpu.TrapHalt {
			return
		}
		if res.Trap != cpu.TrapNone {
			t.Fatalf("trap %v: %s", res.Trap, res.Fault)
		}
	}
	t.Fatal("no halt")
}

func TestAppendAndReadBack(t *testing.T) {
	space := mem.NewSpace()
	buf := Alloc(space, 10, 2)

	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 3)
	b.Label("loop")
	b.Mov(isa.R4, isa.R8)        // v0 = i
	b.AddImm(isa.R5, isa.R8, 10) // v1 = i+10
	buf.EmitAppend(b, []isa.Reg{isa.R4, isa.R5}, isa.R0, isa.R1, isa.R2)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	runToHalt(t, b, space)

	if n := buf.Count(space, 0); n != 3 {
		t.Fatalf("count %d, want 3", n)
	}
	recs := buf.Records(space, 0)
	for i, r := range recs {
		if r[0] != uint64(i) || r[1] != uint64(i+10) {
			t.Errorf("record %d = %v", i, r)
		}
	}
	col := buf.Column(space, 0, 1)
	if len(col) != 3 || col[2] != 12 {
		t.Errorf("column 1 = %v", col)
	}
}

func TestAppendStopsAtCapacity(t *testing.T) {
	space := mem.NewSpace()
	buf := Alloc(space, 2, 1)
	sentinel := space.AllocWords(1) // allocated right after the buffer
	space.Write64(sentinel, 0xabcd)

	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 5)
	b.Label("loop")
	b.Mov(isa.R4, isa.R8)
	buf.EmitAppend(b, []isa.Reg{isa.R4}, isa.R0, isa.R1, isa.R2)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	runToHalt(t, b, space)

	if n := buf.Count(space, 0); n != 2 {
		t.Errorf("count %d, want cap 2", n)
	}
	if got := space.Read64(sentinel); got != 0xabcd {
		t.Errorf("overflow clobbered adjacent memory: %#x", got)
	}
}

func TestRegRelBuffer(t *testing.T) {
	space := mem.NewSpace()
	base := space.AllocWords(uint64(SizeWords(4, 1)))
	buf := At(ref.RegRel(isa.R15, 0), 4, 1)

	b := isa.NewBuilder()
	b.MovImm(isa.R15, int64(base))
	b.MovImm(isa.R4, 99)
	buf.EmitAppend(b, []isa.Reg{isa.R4}, isa.R0, isa.R1, isa.R2)
	b.Halt()
	runToHalt(t, b, space)

	recs := buf.Records(space, base)
	if len(recs) != 1 || recs[0][0] != 99 {
		t.Errorf("records %v", recs)
	}
}

func TestStrideMismatchPanics(t *testing.T) {
	space := mem.NewSpace()
	buf := Alloc(space, 2, 2)
	b := isa.NewBuilder()
	defer func() {
		if recover() == nil {
			t.Error("wrong value count should panic")
		}
	}()
	buf.EmitAppend(b, []isa.Reg{isa.R4}, isa.R0, isa.R1, isa.R2)
}

func TestColumnBoundsPanics(t *testing.T) {
	space := mem.NewSpace()
	buf := Alloc(space, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("bad column should panic")
		}
	}()
	buf.Column(space, 0, 7)
}

func TestCorruptedCountClamped(t *testing.T) {
	space := mem.NewSpace()
	buf := Alloc(space, 2, 1)
	space.Write64(buf.Base().Resolve(0), 9999) // corrupt the count word
	if n := buf.Count(space, 0); n != 2 {
		t.Errorf("count %d, want clamped to cap", n)
	}
}
