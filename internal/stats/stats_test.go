package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary([]uint64{5, 1, 3, 2, 4})
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %d/%d", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %f", s.Mean())
	}
	if s.Median() != 3 {
		t.Errorf("median = %d", s.Median())
	}
	if s.Sum() != 15 {
		t.Errorf("sum = %f", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(nil)
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Error("empty summary must be all zeros")
	}
}

func TestSummaryEmptyPercentiles(t *testing.T) {
	s := NewSummary(nil)
	for _, q := range []float64{-10, 0, 50, 100, 110} {
		if got := s.Percentile(q); got != 0 {
			t.Errorf("empty p%.0f = %d, want 0", q, got)
		}
	}
	if s.N() != 0 || s.Sum() != 0 {
		t.Errorf("empty N/Sum = %d/%f", s.N(), s.Sum())
	}
}

func TestSummarySingleSample(t *testing.T) {
	s := NewSummary([]uint64{42})
	if s.Min() != 42 || s.Max() != 42 || s.Median() != 42 {
		t.Errorf("min/max/median = %d/%d/%d", s.Min(), s.Max(), s.Median())
	}
	if s.Mean() != 42 || s.Stddev() != 0 {
		t.Errorf("mean/stddev = %f/%f", s.Mean(), s.Stddev())
	}
	for _, q := range []float64{-5, 0, 1, 50, 99, 100, 200} {
		if got := s.Percentile(q); got != 42 {
			t.Errorf("p%.0f = %d, want 42", q, got)
		}
	}
}

func TestPercentileClampsOutOfRange(t *testing.T) {
	s := NewSummary([]uint64{10, 20, 30})
	if got := s.Percentile(-50); got != 10 {
		t.Errorf("p-50 = %d, want min", got)
	}
	if got := s.Percentile(250); got != 30 {
		t.Errorf("p250 = %d, want max", got)
	}
	// Tiny positive q must not underflow the rank below 1.
	if got := s.Percentile(1e-9); got != 10 {
		t.Errorf("p~0 = %d, want min", got)
	}
}

func TestSummaryDoesNotAliasInput(t *testing.T) {
	in := []uint64{3, 1, 2}
	s := NewSummary(in)
	in[0] = 100
	if s.Max() == 100 {
		t.Error("summary aliased its input slice")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := NewSummary([]uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := map[float64]uint64{0: 10, 10: 10, 50: 50, 90: 90, 99: 100, 100: 100}
	for q, want := range cases {
		if got := s.Percentile(q); got != want {
			t.Errorf("p%.0f = %d, want %d", q, got, want)
		}
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		u := make([]uint64, len(vals))
		for i, v := range vals {
			u[i] = uint64(v)
		}
		s := NewSummary(u)
		prev := uint64(0)
		for q := 0.0; q <= 100; q += 7 {
			p := s.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return s.Percentile(100) == s.Max() && s.Percentile(0) == s.Min()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	s := NewSummary([]uint64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %f, want 2", got)
	}
	if NewSummary([]uint64{5, 5, 5}).Stddev() != 0 {
		t.Error("constant sample must have zero stddev")
	}
}

func TestLogHistogramBucketing(t *testing.T) {
	var h LogHistogram
	h.AddAll([]uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024})
	// 0,1 -> bucket 0; 2,3 -> 1; 4,7 -> 2; 8 -> 3; 1023 -> 9; 1024 -> 10
	want := map[int]uint64{0: 2, 1: 2, 2: 2, 3: 1, 9: 1, 10: 1}
	for b, n := range want {
		if got := h.Bucket(b); got != n {
			t.Errorf("bucket %d = %d, want %d", b, got, n)
		}
	}
	if h.Total() != 9 {
		t.Errorf("total %d", h.Total())
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Error("out-of-range buckets must read 0")
	}
}

func TestLogHistogramShares(t *testing.T) {
	var h LogHistogram
	h.AddAll([]uint64{1, 1, 2, 2})
	if got := h.Share(0); got != 0.5 {
		t.Errorf("share bucket 0 = %f", got)
	}
	if got := h.CumulativeShare(1); got != 1.0 {
		t.Errorf("cumulative through bucket 1 = %f", got)
	}
	var empty LogHistogram
	if empty.Share(0) != 0 || empty.CumulativeShare(5) != 0 {
		t.Error("empty histogram shares must be 0")
	}
}

func TestLogHistogramRangeAndRows(t *testing.T) {
	var h LogHistogram
	h.Add(16)
	h.Add(17)
	h.Add(300)
	lo, hi := h.Range()
	if lo != 4 || hi != 8 {
		t.Errorf("range [%d,%d], want [4,8]", lo, hi)
	}
	rows := h.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows %d, want 5 (contiguous range)", len(rows))
	}
	if rows[0].Label != "[2^4,2^5)" || rows[0].Count != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	var empty LogHistogram
	if empty.Rows() != nil {
		t.Error("empty histogram renders no rows")
	}
	if lo, hi := empty.Range(); hi != -1 || lo != 0 {
		t.Errorf("empty range [%d,%d]", lo, hi)
	}
}

func TestLogHistogramAddBucket(t *testing.T) {
	var h LogHistogram
	h.AddBucket(3, 5)
	h.AddBucket(3, 0) // no-op
	h.AddBucket(-2, 1)
	h.AddBucket(1000, 2)
	if h.Bucket(3) != 5 {
		t.Errorf("bucket 3 = %d", h.Bucket(3))
	}
	if h.Bucket(0) != 1 {
		t.Errorf("negative index must clamp to bucket 0, got %d", h.Bucket(0))
	}
	if h.Bucket(64) != 2 {
		t.Errorf("oversized index must clamp to bucket 64, got %d", h.Bucket(64))
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
}

func TestLogHistogramMerge(t *testing.T) {
	var a, b LogHistogram
	a.AddAll([]uint64{1, 2, 4})
	b.AddAll([]uint64{2, 1024})
	a.Merge(&b)
	if a.Total() != 5 {
		t.Errorf("merged total = %d", a.Total())
	}
	if a.Bucket(1) != 2 {
		t.Errorf("merged bucket 1 = %d, want 2", a.Bucket(1))
	}
	if a.Bucket(10) != 1 {
		t.Errorf("merged bucket 10 = %d, want 1", a.Bucket(10))
	}
	var empty LogHistogram
	a.Merge(&empty)
	if a.Total() != 5 {
		t.Error("merging an empty histogram must not change totals")
	}
}

func TestHistogramTotalMatchesSummary(t *testing.T) {
	f := func(vals []uint32) bool {
		u := make([]uint64, len(vals))
		for i, v := range vals {
			u[i] = uint64(v)
		}
		var h LogHistogram
		h.AddAll(u)
		var rowSum uint64
		for _, r := range h.Rows() {
			rowSum += r.Count
		}
		return h.Total() == uint64(len(vals)) && rowSum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianAgainstSort(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		u := make([]uint64, len(vals))
		for i, v := range vals {
			u[i] = uint64(v)
		}
		s := NewSummary(u)
		sorted := append([]uint64(nil), u...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		want := sorted[(len(sorted)-1)/2] // nearest-rank p50: ceil(n/2)-th
		return s.Median() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Error("zero denominator must give 0")
	}
}
