// Package stats provides the summary statistics and log-scale
// histograms the experiment harness uses to reproduce the paper's
// tables and figures: exact percentiles over recorded samples and
// power-of-two-bucketed histograms for critical-section length
// distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds exact order statistics over a sample set.
type Summary struct {
	sorted []uint64
	sum    float64
	sumSq  float64
}

// NewSummary builds a summary over values (the slice is copied).
func NewSummary(values []uint64) *Summary {
	s := &Summary{sorted: make([]uint64, len(values))}
	copy(s.sorted, values)
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	for _, v := range values {
		f := float64(v)
		s.sum += f
		s.sumSq += f * f
	}
	return s
}

// N returns the sample count.
func (s *Summary) N() int { return len(s.sorted) }

// Sum returns the sample total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for empty summaries).
func (s *Summary) Mean() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sum / float64(len(s.sorted))
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := float64(len(s.sorted))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() uint64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() uint64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Percentile returns the q-th percentile (0 ≤ q ≤ 100) by
// nearest-rank.
func (s *Summary) Percentile(q float64) uint64 {
	if len(s.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 100 {
		return s.sorted[len(s.sorted)-1]
	}
	rank := int(math.Ceil(q / 100 * float64(len(s.sorted))))
	if rank < 1 {
		rank = 1
	}
	return s.sorted[rank-1]
}

// Median returns the 50th percentile.
func (s *Summary) Median() uint64 { return s.Percentile(50) }

// LogHistogram buckets values by floor(log2(v)); bucket 0 holds 0 and
// 1, bucket i holds [2^i, 2^(i+1)).
type LogHistogram struct {
	buckets [65]uint64
	total   uint64
}

// Add records one value.
func (h *LogHistogram) Add(v uint64) {
	h.buckets[log2Floor(v)]++
	h.total++
}

// AddAll records every value.
func (h *LogHistogram) AddAll(values []uint64) {
	for _, v := range values {
		h.Add(v)
	}
}

// AddBucket folds n values directly into bucket i, for callers that
// maintain bucketed counts elsewhere (e.g. generated-code accumulators
// read back after a run). Out-of-range i clamps to the last bucket.
func (h *LogHistogram) AddBucket(i int, n uint64) {
	if n == 0 {
		return
	}
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i] += n
	h.total += n
}

// Merge folds o's counts into h.
func (h *LogHistogram) Merge(o *LogHistogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.total += o.total
}

func log2Floor(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Total returns how many values were recorded.
func (h *LogHistogram) Total() uint64 { return h.total }

// Bucket returns the count of values in [2^i, 2^(i+1)).
func (h *LogHistogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Share returns bucket i's fraction of the total.
func (h *LogHistogram) Share(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bucket(i)) / float64(h.total)
}

// CumulativeShare returns the fraction of values < 2^(i+1).
func (h *LogHistogram) CumulativeShare(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for j := 0; j <= i && j < len(h.buckets); j++ {
		c += h.buckets[j]
	}
	return float64(c) / float64(h.total)
}

// Range returns the smallest and largest non-empty bucket indices
// (0, -1 when empty).
func (h *LogHistogram) Range() (lo, hi int) {
	lo, hi = 0, -1
	seen := false
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if !seen {
			lo = i
			seen = true
		}
		hi = i
	}
	return lo, hi
}

// Rows renders the histogram as (label, count, share) rows over its
// non-empty range, e.g. "[2^4,2^5)".
func (h *LogHistogram) Rows() []HistRow {
	lo, hi := h.Range()
	var rows []HistRow
	for i := lo; i <= hi; i++ {
		rows = append(rows, HistRow{
			Label: fmt.Sprintf("[2^%d,2^%d)", i, i+1),
			Count: h.Bucket(i),
			Share: h.Share(i),
		})
	}
	return rows
}

// HistRow is one rendered histogram bucket.
type HistRow struct {
	Label string
	Count uint64
	Share float64
}

// Ratio returns a/b guarding the zero denominator.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
