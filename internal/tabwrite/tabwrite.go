// Package tabwrite renders the harness's tables and text "figures" in
// a consistent style: a title, an underlined header, right-aligned
// numeric columns, and optional inline bar charts for figure-like
// series. Built on text/tabwriter.
package tabwrite

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table accumulates rows for aligned rendering.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float with a precision that suits its
// magnitude (more digits for small values).
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.4f", v)
	case av < 10:
		return fmt.Sprintf("%.2f", v)
	case av < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.header, "\t"))
		under := make([]string, len(t.header))
		for i, h := range t.header {
			under[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(under, "\t"))
	}
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Bar renders a proportional text bar of at most width cells for
// share in [0,1].
func Bar(share float64, width int) string {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	n := int(share*float64(width) + 0.5)
	return strings.Repeat("#", n)
}
