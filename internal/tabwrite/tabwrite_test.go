package tabwrite

import (
	"strings"
	"testing"
)

func TestRenderBasicTable(t *testing.T) {
	tb := New("My Title", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("beta", 2.5)
	out := tb.String()

	for _, want := range []string{"My Title", "========", "name", "value", "alpha", "beta", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header underline must match title length.
	lines := strings.Split(out, "\n")
	if len(lines[1]) != len("My Title") {
		t.Errorf("underline %q length mismatch", lines[1])
	}
}

func TestRenderWithoutTitleOrHeader(t *testing.T) {
	tb := &Table{}
	tb.Row("x", "y")
	out := tb.String()
	if strings.Contains(out, "=") {
		t.Errorf("no title should mean no underline:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Error("row missing")
	}
}

func TestFormatFloatPrecisionBands(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.0042:  "0.0042",
		3.14159: "3.14",
		42.5:    "42.5",
		12345.6: "12346",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(-3.14159); got != "-3.14" {
		t.Errorf("negative formatting %q", got)
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####" {
		t.Errorf("Bar(0.5,10) = %q", Bar(0.5, 10))
	}
	if Bar(0, 10) != "" {
		t.Error("zero share should render empty")
	}
	if Bar(1.5, 10) != "##########" {
		t.Error("overfull share must clamp")
	}
	if Bar(-1, 10) != "" {
		t.Error("negative share must clamp to empty")
	}
}

func TestColumnsAligned(t *testing.T) {
	tb := New("", "a", "b")
	tb.Row("short", 1)
	tb.Row("muchlongervalue", 2)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// The numeric column must start at the same offset on both rows.
	idx1 := strings.IndexByte(lines[len(lines)-2], '1')
	idx2 := strings.IndexByte(lines[len(lines)-1], '2')
	if idx1 == idx2 {
		t.Skip("columns coincide; alignment trivially satisfied")
	}
	// tabwriter pads with spaces: both data cells must be preceded by
	// at least two spaces from their row label.
	if !strings.Contains(lines[len(lines)-2], "  ") {
		t.Error("no padding emitted")
	}
}
