package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondEQ, 5, 6, false},
		{CondNE, 5, 6, true},
		{CondNE, 5, 5, false},
		{CondLT, 4, 5, true},
		{CondLT, 5, 5, false},
		{CondLT, 6, 5, false},
		{CondGE, 5, 5, true},
		{CondGE, 6, 5, true},
		{CondGE, 4, 5, false},
		{CondLE, 5, 5, true},
		{CondLE, 4, 5, true},
		{CondLE, 6, 5, false},
		{CondGT, 6, 5, true},
		{CondGT, 5, 5, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", tc.c, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCondEvalComplementary(t *testing.T) {
	// LT/GE and EQ/NE are exact complements for all inputs.
	f := func(a, b uint64) bool {
		return CondLT.Eval(a, b) != CondGE.Eval(a, b) &&
			CondEQ.Eval(a, b) != CondNE.Eval(a, b) &&
			CondLE.Eval(a, b) != CondGT.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnsignedComparison(t *testing.T) {
	// Comparisons are unsigned: -1 as uint64 is the maximum.
	if CondLT.Eval(^uint64(0), 1) {
		t.Error("^0 < 1 should be false under unsigned comparison")
	}
	if !CondGT.Eval(^uint64(0), 1) {
		t.Error("^0 > 1 should be true under unsigned comparison")
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Jmp("end") // forward reference
	b.Compute(5)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 2 {
		t.Errorf("jmp target %d, want 2", p.Instrs[0].Imm)
	}
	if pc := p.MustEntry("start"); pc != 0 {
		t.Errorf("start at %d, want 0", pc)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %q should name the label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderUnclosedSymbol(t *testing.T) {
	b := NewBuilder()
	b.BeginSymbol("open").Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected unclosed-symbol error")
	}
}

func TestBuilderEndSymbolWithoutBegin(t *testing.T) {
	b := NewBuilder()
	b.Nop().EndSymbol()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected EndSymbol-without-Begin error")
	}
}

func TestBuilderComputeRejectsNonPositive(t *testing.T) {
	b := NewBuilder()
	b.Compute(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for Compute(0)")
	}
}

func TestSymbolNesting(t *testing.T) {
	b := NewBuilder()
	b.BeginSymbol("outer")
	b.Nop()
	b.BeginSymbol("inner")
	b.Nop().Nop()
	b.EndSymbol()
	b.Nop()
	b.EndSymbol()
	p := b.MustBuild()

	if sym, ok := p.SymbolAt(0); !ok || sym.Name != "outer" {
		t.Errorf("pc 0 in %v, want outer", sym)
	}
	if sym, ok := p.SymbolAt(1); !ok || sym.Name != "inner" {
		t.Errorf("pc 1 in %v, want inner (innermost wins)", sym)
	}
	if sym, ok := p.SymbolAt(3); !ok || sym.Name != "outer" {
		t.Errorf("pc 3 in %v, want outer", sym)
	}
	if _, ok := p.SymbolAt(4); ok {
		t.Error("pc 4 should be outside all symbols")
	}
}

func TestMovLabel(t *testing.T) {
	b := NewBuilder()
	b.MovLabel(R1, "target")
	b.Nop()
	b.Label("target")
	b.Halt()
	p := b.MustBuild()
	if p.Instrs[0].Op != OpMovImm || p.Instrs[0].Imm != 2 {
		t.Errorf("MovLabel resolved to %+v, want MovImm with Imm=2", p.Instrs[0])
	}
}

func TestEntryErrors(t *testing.T) {
	p := NewBuilder().Nop().MustBuild()
	if _, err := p.Entry("missing"); err == nil {
		t.Error("Entry on missing label should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEntry on missing label should panic")
		}
	}()
	p.MustEntry("missing")
}

func TestDisassembleContainsLabelsAndOps(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.MovImm(R2, 7)
	b.AddImm(R2, R2, 1)
	b.Load(R3, R2, 16)
	b.Store(R2, 8, R3)
	b.CAS(R4, R2, R3, R5)
	b.Br(CondLT, R2, R3, "main")
	b.Syscall(3)
	b.Halt()
	text := b.MustBuild().Disassemble()
	for _, want := range []string{"main:", "movimm R2, 7", "load R3, [R2+16]", "store [R2+8], R3", "cas", "br.lt", "syscall 3", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStringsAllOps(t *testing.T) {
	// Every opcode must render without the fallback "op(N)" form.
	for op := OpNop; op < numOps; op++ {
		in := Instr{Op: op, Imm: 1}
		s := in.String()
		if strings.Contains(s, "op(") {
			t.Errorf("op %d renders as %q", op, s)
		}
	}
}

func TestRegString(t *testing.T) {
	if R7.String() != "R7" {
		t.Errorf("R7 renders as %q", R7.String())
	}
}

func TestProgramLen(t *testing.T) {
	p := NewBuilder().Nop().Nop().Halt().MustBuild()
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
}

func TestBuilderChaining(t *testing.T) {
	// All emit methods return the builder for chaining; a long chain
	// must produce instructions in order.
	p := NewBuilder().
		MovImm(R1, 1).Mov(R2, R1).Add(R3, R1, R2).Sub(R4, R3, R1).
		Mul(R5, R3, R3).And(R6, R5, R1).Or(R7, R6, R1).Xor(R8, R7, R1).
		Shl(R9, R8, 2).Shr(R10, R9, 1).XAdd(R11, R1, R2).Rand(R12).
		RdCycle(R13).Nop().Halt().MustBuild()
	wantOps := []Op{OpMovImm, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpXAdd, OpRand, OpRdCycle, OpNop, OpHalt}
	if len(p.Instrs) != len(wantOps) {
		t.Fatalf("got %d instrs, want %d", len(p.Instrs), len(wantOps))
	}
	for i, w := range wantOps {
		if p.Instrs[i].Op != w {
			t.Errorf("instr %d is %v, want %v", i, p.Instrs[i].Op, w)
		}
	}
}

func TestRdPMCDestructiveSetsFlag(t *testing.T) {
	p := NewBuilder().RdPMCDestructive(R1, 2).RdPMC(R2, 3).MustBuild()
	if p.Instrs[0].Cond == 0 {
		t.Error("destructive rdpmc must set the destructive flag")
	}
	if p.Instrs[1].Cond != 0 {
		t.Error("plain rdpmc must not set the destructive flag")
	}
}
