// Package isa defines the instruction set of the simulated machine.
//
// The simulator executes programs written in a small register ISA. The ISA
// is deliberately minimal but preserves the one property the reproduced
// paper depends on: performance-counter reads are multi-instruction
// sequences that can be interrupted at any instruction boundary by a timer
// interrupt, a counter-overflow interrupt, or a signal. LiMiT's
// PC-rewind fixup (see internal/limit and internal/kernel) is only
// meaningful because of this.
//
// Registers are 64-bit. R0..R3 double as syscall argument/return
// registers. Programs are built with Builder, which provides labels,
// symbol ranges (used by the sampling profiler for attribution) and
// named marks (used by LiMiT to register read-critical fixup regions).
package isa

import "fmt"

// Reg names a general-purpose register. The machine has NumRegs of them.
type Reg uint8

// General-purpose registers. R0..R3 carry syscall arguments and return
// values by convention.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumRegs is the size of the architectural register file.
	NumRegs = 16
)

func (r Reg) String() string { return fmt.Sprintf("R%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	// OpNop does nothing for one cycle.
	OpNop Op = iota

	// OpCompute models a compressed basic block of Imm ALU instructions:
	// it retires Imm instructions and consumes Imm cycles. Workload
	// generators use it for the bulk of "application work" so that
	// simulations stay fast while instruction and cycle counts remain
	// meaningful.
	OpCompute

	// OpMovImm sets Dst = Imm.
	OpMovImm
	// OpMov sets Dst = Src1.
	OpMov
	// OpAdd sets Dst = Src1 + Src2.
	OpAdd
	// OpAddImm sets Dst = Src1 + Imm.
	OpAddImm
	// OpSub sets Dst = Src1 - Src2.
	OpSub
	// OpMul sets Dst = Src1 * Src2 (3 cycles).
	OpMul
	// OpAnd sets Dst = Src1 & Src2.
	OpAnd
	// OpOr sets Dst = Src1 | Src2.
	OpOr
	// OpXor sets Dst = Src1 ^ Src2.
	OpXor
	// OpShl sets Dst = Src1 << (Imm & 63).
	OpShl
	// OpShr sets Dst = Src1 >> (Imm & 63).
	OpShr

	// OpLoad sets Dst = mem64[Src1 + Imm]. Goes through the cache
	// hierarchy; latency depends on hit level.
	OpLoad
	// OpStore sets mem64[Src1 + Imm] = Src2. Write-allocate.
	OpStore
	// OpCAS atomically compares mem64[Src1] with Src2 and, if equal,
	// stores the value of register Dst's *pre-instruction* pair register:
	// specifically, if mem64[Src1] == Src2 { mem64[Src1] = SrcV } where
	// SrcV is the register named by Imm. Dst receives the old memory
	// value. Counts as an atomic and as a store on success.
	OpCAS
	// OpXAdd atomically sets Dst = mem64[Src1]; mem64[Src1] += Src2.
	OpXAdd

	// OpJmp sets PC = Imm (absolute instruction index).
	OpJmp
	// OpBr compares Src1 against Src2 using Cond and, if true, sets
	// PC = Imm. Consults the branch predictor; a mispredict adds the
	// misprediction penalty.
	OpBr
	// OpBrRand branches to Imm with probability Cond/255, drawn from the
	// executing thread's deterministic RNG. Used by workload generators
	// to model data-dependent, hard-to-predict control flow.
	OpBrRand

	// OpRand sets Dst to the next value of the executing thread's
	// deterministic RNG (modeling an inlined xorshift PRNG; costs a
	// few cycles). Workload generators use it for data-dependent
	// choices such as lock selection.
	OpRand

	// OpRdPMC reads hardware performance counter Imm into Dst (low
	// CounterWidth bits). Faults unless userspace counter access has
	// been enabled for the process (the LiMiT kernel patch does this).
	// If the PMU's DestructiveReads feature is enabled and Cond != 0,
	// the counter is atomically reset to zero as part of the read
	// (proposed hardware enhancement e2 in the paper).
	OpRdPMC
	// OpRdCycle reads the core's current cycle count into Dst (rdtsc
	// analogue). Always permitted.
	OpRdCycle

	// OpSyscall traps into the kernel with syscall number Imm. Arguments
	// in R0..R3, result in R0.
	OpSyscall
	// OpSigReturn returns from a signal handler, restoring the
	// interrupted context. Faults outside a handler.
	OpSigReturn
	// OpHalt terminates the executing thread.
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop:       "nop",
	OpCompute:   "compute",
	OpMovImm:    "movimm",
	OpMov:       "mov",
	OpAdd:       "add",
	OpAddImm:    "addimm",
	OpSub:       "sub",
	OpMul:       "mul",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpLoad:      "load",
	OpStore:     "store",
	OpCAS:       "cas",
	OpXAdd:      "xadd",
	OpJmp:       "jmp",
	OpBr:        "br",
	OpBrRand:    "brrand",
	OpRand:      "rand",
	OpRdPMC:     "rdpmc",
	OpRdCycle:   "rdcycle",
	OpSyscall:   "syscall",
	OpSigReturn: "sigreturn",
	OpHalt:      "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is the comparison used by OpBr (and the taken-probability numerator
// for OpBrRand).
type Cond uint8

// Branch conditions for OpBr.
const (
	CondEQ Cond = iota // Src1 == Src2
	CondNE             // Src1 != Src2
	CondLT             // Src1 <  Src2 (unsigned)
	CondGE             // Src1 >= Src2 (unsigned)
	CondLE             // Src1 <= Src2 (unsigned)
	CondGT             // Src1 >  Src2 (unsigned)
)

func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "eq"
	case CondNE:
		return "ne"
	case CondLT:
		return "lt"
	case CondGE:
		return "ge"
	case CondLE:
		return "le"
	case CondGT:
		return "gt"
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval reports whether the condition holds for the two operand values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondGE:
		return a >= b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	}
	return false
}

// Instr is a single machine instruction.
type Instr struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Cond Cond
	Imm  int64
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpSigReturn:
		return in.Op.String()
	case OpCompute:
		return fmt.Sprintf("compute %d", in.Imm)
	case OpMovImm:
		return fmt.Sprintf("movimm %s, %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case OpAddImm:
		return fmt.Sprintf("addimm %s, %s, %d", in.Dst, in.Src1, in.Imm)
	case OpShl, OpShr:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s+%d]", in.Dst, in.Src1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s+%d], %s", in.Src1, in.Imm, in.Src2)
	case OpCAS:
		return fmt.Sprintf("cas %s, [%s], %s, R%d", in.Dst, in.Src1, in.Src2, in.Imm)
	case OpXAdd:
		return fmt.Sprintf("xadd %s, [%s], %s", in.Dst, in.Src1, in.Src2)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case OpBr:
		return fmt.Sprintf("br.%s %s, %s, %d", in.Cond, in.Src1, in.Src2, in.Imm)
	case OpBrRand:
		return fmt.Sprintf("brrand %d/255, %d", in.Cond, in.Imm)
	case OpRdPMC:
		return fmt.Sprintf("rdpmc %s, #%d", in.Dst, in.Imm)
	case OpRdCycle:
		return fmt.Sprintf("rdcycle %s", in.Dst)
	case OpSyscall:
		return fmt.Sprintf("syscall %d", in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s, %d", in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// Symbol names a half-open PC range [Start, End) of a program. The
// sampling profiler attributes samples to symbols; analysis code uses
// them to locate instrumentation points.
type Symbol struct {
	Name  string
	Start int
	End   int
}

// Contains reports whether pc falls inside the symbol's range.
func (s Symbol) Contains(pc int) bool { return pc >= s.Start && pc < s.End }

// Program is an executable sequence of instructions plus metadata
// produced by the Builder.
type Program struct {
	Instrs []Instr
	// Labels maps label names to instruction indices (for diagnostics
	// and for locating well-known entry points such as signal handlers).
	Labels map[string]int
	// Symbols are non-overlapping named PC ranges in definition order.
	Symbols []Symbol
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Entry returns the instruction index of a label, or an error if the
// label was never defined.
func (p *Program) Entry(label string) (int, error) {
	pc, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: program has no label %q", label)
	}
	return pc, nil
}

// MustEntry is Entry but panics on unknown labels. Intended for
// workload construction where a missing label is a programming error.
func (p *Program) MustEntry(label string) int {
	pc, err := p.Entry(label)
	if err != nil {
		panic(err)
	}
	return pc
}

// SymbolAt returns the innermost symbol containing pc, if any. When
// symbols nest (a region defined inside another), the latest-defined
// containing symbol wins, which corresponds to the innermost lexical
// scope under Builder usage.
func (p *Program) SymbolAt(pc int) (Symbol, bool) {
	for i := len(p.Symbols) - 1; i >= 0; i-- {
		if p.Symbols[i].Contains(pc) {
			return p.Symbols[i], true
		}
	}
	return Symbol{}, false
}

// Disassemble renders the program as text, one instruction per line,
// annotated with labels. Useful in tests and debugging.
func (p *Program) Disassemble() string {
	byPC := make(map[int][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var out []byte
	for pc, in := range p.Instrs {
		for _, l := range byPC[pc] {
			out = append(out, fmt.Sprintf("%s:\n", l)...)
		}
		out = append(out, fmt.Sprintf("%4d  %s\n", pc, in)...)
	}
	return string(out)
}
