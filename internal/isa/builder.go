package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program. It supports forward label references,
// named symbols (PC ranges), and inlining of reusable snippets. The
// zero value is not usable; call NewBuilder.
//
// Builder methods append one instruction each and return the Builder so
// that straight-line sequences can be chained. Label operands are
// resolved at Build time; referencing an undefined label is an error.
type Builder struct {
	instrs  []Instr
	labels  map[string]int
	fixups  []fixup // pending label references
	symOpen []symOpen
	symbols []Symbol
	err     error
}

type fixup struct {
	pc    int // instruction whose Imm needs the label address
	label string
}

type symOpen struct {
	name  string
	start int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.instrs) }

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Label defines name at the current PC. Redefining a label is an error
// reported by Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("isa: label %q defined twice", name))
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// BeginSymbol opens a named PC range at the current PC. Ranges may nest.
func (b *Builder) BeginSymbol(name string) *Builder {
	b.symOpen = append(b.symOpen, symOpen{name: name, start: b.PC()})
	return b
}

// EndSymbol closes the most recently opened symbol. The symbol covers
// [start, current PC).
func (b *Builder) EndSymbol() *Builder {
	if len(b.symOpen) == 0 {
		b.setErr(fmt.Errorf("isa: EndSymbol without BeginSymbol"))
		return b
	}
	open := b.symOpen[len(b.symOpen)-1]
	b.symOpen = b.symOpen[:len(b.symOpen)-1]
	b.symbols = append(b.symbols, Symbol{Name: open.name, Start: open.start, End: b.PC()})
	return b
}

// Nop emits a one-cycle no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Compute emits a compressed block of n ALU instructions (n cycles,
// n retired instructions). n must be positive.
func (b *Builder) Compute(n int64) *Builder {
	if n <= 0 {
		b.setErr(fmt.Errorf("isa: Compute(%d): n must be positive", n))
		n = 1
	}
	return b.emit(Instr{Op: OpCompute, Imm: n})
}

// MovImm emits dst = imm.
func (b *Builder) MovImm(dst Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovImm, Dst: dst, Imm: imm})
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, Src1: src})
}

// Add emits dst = a + b.
func (b *Builder) Add(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Dst: dst, Src1: a, Src2: bb})
}

// AddImm emits dst = a + imm.
func (b *Builder) AddImm(dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddImm, Dst: dst, Src1: a, Imm: imm})
}

// Sub emits dst = a - b.
func (b *Builder) Sub(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Dst: dst, Src1: a, Src2: bb})
}

// Mul emits dst = a * b.
func (b *Builder) Mul(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpMul, Dst: dst, Src1: a, Src2: bb})
}

// And emits dst = a & b.
func (b *Builder) And(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpAnd, Dst: dst, Src1: a, Src2: bb})
}

// Or emits dst = a | b.
func (b *Builder) Or(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpOr, Dst: dst, Src1: a, Src2: bb})
}

// Xor emits dst = a ^ b.
func (b *Builder) Xor(dst, a, bb Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Dst: dst, Src1: a, Src2: bb})
}

// Shl emits dst = a << k.
func (b *Builder) Shl(dst, a Reg, k int64) *Builder {
	return b.emit(Instr{Op: OpShl, Dst: dst, Src1: a, Imm: k})
}

// Shr emits dst = a >> k.
func (b *Builder) Shr(dst, a Reg, k int64) *Builder {
	return b.emit(Instr{Op: OpShr, Dst: dst, Src1: a, Imm: k})
}

// Load emits dst = mem64[base + off].
func (b *Builder) Load(dst, base Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpLoad, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem64[base + off] = src.
func (b *Builder) Store(base Reg, off int64, src Reg) *Builder {
	return b.emit(Instr{Op: OpStore, Src1: base, Src2: src, Imm: off})
}

// CAS emits dst = CAS(mem64[addr], expect, newv): the old value lands in
// dst; the store happens only if the old value equaled expect.
func (b *Builder) CAS(dst, addr, expect, newv Reg) *Builder {
	return b.emit(Instr{Op: OpCAS, Dst: dst, Src1: addr, Src2: expect, Imm: int64(newv)})
}

// XAdd emits dst = fetch-and-add(mem64[addr], delta).
func (b *Builder) XAdd(dst, addr, delta Reg) *Builder {
	return b.emit(Instr{Op: OpXAdd, Dst: dst, Src1: addr, Src2: delta})
}

// MovLabel emits dst = instruction index of label, resolved at Build
// time. Used to pass code addresses (e.g. signal handlers) to
// syscalls.
func (b *Builder) MovLabel(dst Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	return b.emit(Instr{Op: OpMovImm, Dst: dst})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	return b.emit(Instr{Op: OpJmp})
}

// Br emits a conditional branch to label when cond holds for (a, b).
func (b *Builder) Br(cond Cond, a, bb Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	return b.emit(Instr{Op: OpBr, Cond: cond, Src1: a, Src2: bb})
}

// BrRand emits a randomized branch to label taken with probability
// num/255, drawn from the executing thread's deterministic RNG.
func (b *Builder) BrRand(num uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	return b.emit(Instr{Op: OpBrRand, Cond: Cond(num)})
}

// Rand emits dst = next deterministic PRNG value.
func (b *Builder) Rand(dst Reg) *Builder {
	return b.emit(Instr{Op: OpRand, Dst: dst})
}

// RdPMC emits dst = hardware counter idx.
func (b *Builder) RdPMC(dst Reg, idx int64) *Builder {
	return b.emit(Instr{Op: OpRdPMC, Dst: dst, Imm: idx})
}

// RdPMCDestructive emits a destructive (read-and-reset) counter read,
// the paper's proposed hardware enhancement e2. Executing it on a PMU
// without DestructiveReads enabled faults.
func (b *Builder) RdPMCDestructive(dst Reg, idx int64) *Builder {
	return b.emit(Instr{Op: OpRdPMC, Dst: dst, Imm: idx, Cond: 1})
}

// RdCycle emits dst = core cycle counter (rdtsc analogue).
func (b *Builder) RdCycle(dst Reg) *Builder {
	return b.emit(Instr{Op: OpRdCycle, Dst: dst})
}

// Syscall emits a trap with the given syscall number.
func (b *Builder) Syscall(num int64) *Builder {
	return b.emit(Instr{Op: OpSyscall, Imm: num})
}

// SigReturn emits a return-from-signal-handler.
func (b *Builder) SigReturn() *Builder { return b.emit(Instr{Op: OpSigReturn}) }

// Halt emits a thread-exit.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Raw appends a pre-formed instruction verbatim. Label fields are not
// interpreted.
func (b *Builder) Raw(in Instr) *Builder { return b.emit(in) }

// Build resolves all label references and returns the program. The
// Builder must not be reused afterwards.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.symOpen) != 0 {
		return nil, fmt.Errorf("isa: %d unclosed symbol(s), first %q",
			len(b.symOpen), b.symOpen[0].name)
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q referenced at pc %d", f.label, f.pc)
		}
		b.instrs[f.pc].Imm = int64(target)
	}
	syms := make([]Symbol, len(b.symbols))
	copy(syms, b.symbols)
	sort.SliceStable(syms, func(i, j int) bool {
		if syms[i].Start != syms[j].Start {
			return syms[i].Start < syms[j].Start
		}
		return syms[i].End > syms[j].End // outer ranges first
	})
	return &Program{Instrs: b.instrs, Labels: b.labels, Symbols: syms}, nil
}

// MustBuild is Build but panics on error. Intended for statically
// constructed programs where a build failure is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
