package fleet

// Worker self-chaos: the fleet's own fault-injection layer, in the
// spirit of internal/faultinject. When enabled, a worker decides a
// deterministic "fate" for every (job, attempt) cell from a seeded
// hash and sabotages itself accordingly — dying without warning
// mid-job (the SIGKILL shape), stalling with heartbeats suppressed
// (the hang shape), truncating its result frame (the torn-wire shape),
// or merely running slow with heartbeats flowing (the speculative-
// retry shape). Because fates only fire below MaxAttempt, a bounded
// retry budget always completes the campaign, and because the sabotage
// is a pure function of (seed, job, attempt), every chaos run is
// reproducible.

// ChaosConfig shapes worker self-chaos. All percentages are per
// (job, attempt) cell; they must sum to at most 100.
type ChaosConfig struct {
	// Seed drives the per-cell fate hash.
	Seed uint64 `json:"seed"`
	// CrashPct is the chance the worker exits abruptly (SIGKILL shape)
	// instead of returning the job's result.
	CrashPct int `json:"crash_pct"`
	// StallPct is the chance the worker stalls mid-job with heartbeats
	// suppressed — the hang the coordinator must detect and kill.
	StallPct int `json:"stall_pct"`
	// TruncPct is the chance the worker writes only a prefix of its
	// result frame before dying — the torn frame the wire layer must
	// reject.
	TruncPct int `json:"trunc_pct"`
	// SlowPct is the chance the worker sleeps (heartbeats flowing)
	// before running the job — slow, not hung, so the coordinator
	// speculatively retries and must deduplicate the raced results.
	SlowPct int `json:"slow_pct"`
	// MaxAttempt caps which attempts can draw a fate: attempts >=
	// MaxAttempt always run clean (default 2), so any retry budget
	// above it completes every job.
	MaxAttempt int `json:"max_attempt"`
	// StallMs is the stall duration; it must exceed the coordinator's
	// heartbeat timeout to register as a hang.
	StallMs int `json:"stall_ms"`
	// SlowMs is the slow-fate sleep; it should exceed the coordinator's
	// job timeout to trigger speculation.
	SlowMs int `json:"slow_ms"`
}

// Enabled reports whether any fault class is active.
func (c ChaosConfig) Enabled() bool {
	return c.CrashPct+c.StallPct+c.TruncPct+c.SlowPct > 0
}

// KillStorm is the stock -chaos-workers mix: heavy crashes with a side
// of hangs, torn frames, and slow workers, all confined to the first
// two attempts.
func KillStorm(seed uint64) ChaosConfig {
	return ChaosConfig{
		Seed:     seed,
		CrashPct: 30, StallPct: 10, TruncPct: 10, SlowPct: 10,
		MaxAttempt: 2,
		StallMs:    4000, SlowMs: 400,
	}
}

type fate int

const (
	fateClean fate = iota
	fateCrash
	fateStall
	fateTrunc
	fateSlow
)

func (f fate) String() string {
	return [...]string{"clean", "crash", "stall", "trunc", "slow"}[f]
}

// fateFor draws the (job, attempt) cell's fate.
func (c ChaosConfig) fateFor(job, attempt int) fate {
	if !c.Enabled() {
		return fateClean
	}
	maxAttempt := c.MaxAttempt
	if maxAttempt <= 0 {
		maxAttempt = 2
	}
	if attempt >= maxAttempt {
		return fateClean
	}
	roll := int(mix(c.Seed, job, attempt) % 100)
	switch {
	case roll < c.CrashPct:
		return fateCrash
	case roll < c.CrashPct+c.StallPct:
		return fateStall
	case roll < c.CrashPct+c.StallPct+c.TruncPct:
		return fateTrunc
	case roll < c.CrashPct+c.StallPct+c.TruncPct+c.SlowPct:
		return fateSlow
	}
	return fateClean
}
