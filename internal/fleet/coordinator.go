package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"limitsim/internal/runner"
	"limitsim/internal/telemetry"
)

// Config shapes one fleet run's supervision.
type Config struct {
	// Workers is the worker-process count. 0 (or negative) skips
	// spawning entirely and runs the whole space in-process — the same
	// degradation path taken when every spawn fails.
	Workers int
	// MaxAttempts bounds dispatches per job (first try + retries +
	// speculative copies); a job that fails them all is quarantined.
	// Default 5.
	MaxAttempts int
	// Seed drives retry jitter (and nothing else): the retry schedule
	// of every job is a pure function of (Seed, job, attempt).
	Seed uint64
	// HeartbeatEvery is the worker heartbeat period (default 100ms).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is how long a busy worker may go silent before
	// it is declared hung and killed (default 20×HeartbeatEvery).
	HeartbeatTimeout time.Duration
	// JobTimeout is the speculative-retry threshold: a job past it
	// whose worker still heartbeats is retried on another worker while
	// the original keeps running (default 60s; the duplicate result is
	// deduplicated by key).
	JobTimeout time.Duration
	// BackoffBase/BackoffCap bound the retry backoff window
	// (defaults 25ms / 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Chaos enables worker self-sabotage (the -chaos-workers mode).
	Chaos ChaosConfig
	// SpawnFailureLimit is how many failed spawns the coordinator
	// tolerates before degrading to in-process execution (default
	// 2×Workers).
	SpawnFailureLimit int
	// InlineParallel is the runner width used when degraded to
	// in-process execution (0 = GOMAXPROCS).
	InlineParallel int
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 20 * c.HeartbeatEvery
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.SpawnFailureLimit <= 0 {
		c.SpawnFailureLimit = 2*c.Workers + 2
	}
	return c
}

// Job status. A job is settled when done or quarantined; the run ends
// when every job is settled.
const (
	jobPending = iota
	jobRunning
	jobDone
	jobQuarantined
)

type jobState struct {
	status     int
	attempts   int // dispatches so far (includes speculative copies)
	inflight   int // copies currently running on workers
	notBefore  time.Time
	speculated bool // a speculative copy was already issued
	errs       []string
	payload    []byte
}

type workerState struct {
	id      int
	tr      Transport
	ready   bool
	dead    bool
	busy    int // job key, -1 when idle
	attempt int
	started time.Time
	// lastBeat is the liveness clock: set at ready, refreshed by every
	// heartbeat and result.
	lastBeat time.Time
}

// event is one occurrence the coordinator loop processes: a frame from
// a worker, or its connection going down.
type event struct {
	worker int
	typ    string // frame type, or "down"
	data   json.RawMessage
	err    error
}

// Run executes the job space named by spec across a supervised fleet
// of workers and returns the keyed results. The returned Report is
// always non-nil when err is nil; callers must check
// Report.Quarantined and Report.Violations before trusting Payloads.
func Run(cfg Config, spec SpaceSpec, spawn Spawner) (*Report, error) {
	cfg = cfg.withDefaults()
	space, err := BuildSpace(spec)
	if err != nil {
		return nil, err
	}
	n := space.NumJobs()
	rep := &Report{
		Jobs:     n,
		Payloads: make([][]byte, n),
		Done:     make([]bool, n),
	}
	if n == 0 {
		return rep, nil
	}

	c := &coordinator{
		cfg:     cfg,
		spec:    spec,
		space:   space,
		rep:     rep,
		jobs:    make([]jobState, n),
		workers: map[int]*workerState{},
		events:  make(chan event, 64),
		stop:    make(chan struct{}),
		spawn:   spawn,
	}
	c.run()
	rep.finish()
	return rep, nil
}

type coordinator struct {
	cfg           Config
	spec          SpaceSpec
	space         JobSpace
	rep           *Report
	jobs          []jobState
	workers       map[int]*workerState
	events        chan event
	stop          chan struct{}
	spawn         Spawner
	nextID        int
	spawnFailures int
}

func (c *coordinator) run() {
	defer c.teardown()

	if c.cfg.Workers <= 0 {
		c.runInline()
		return
	}
	for i := 0; i < c.cfg.Workers; i++ {
		c.spawnOne()
	}

	for !c.settled() {
		if c.liveWorkers() == 0 {
			// The whole fleet is down. Try to rebuild one worker; if the
			// spawn budget is spent or spawning keeps failing, degrade to
			// in-process execution for whatever is left.
			if c.spawnFailures > c.cfg.SpawnFailureLimit || !c.spawnOne() {
				c.runInline()
				return
			}
		}
		c.dispatch()
		c.waitEvent()
	}
}

// teardown shuts the fleet down: polite shutdown frames, then the
// hammer, then reaping. Reader goroutines unblock via the stop channel.
// The shutdown frames go out on goroutines because a worker mid-job is
// not reading its pipe — a synchronous write could block forever; the
// Kill right behind it unblocks any stuck write.
func (c *coordinator) teardown() {
	close(c.stop)
	var wg sync.WaitGroup
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		wg.Add(1)
		go func(tr Transport) {
			defer wg.Done()
			telemetry.WriteFrame(tr, "shutdown", nil) // best-effort; racing Kill is fine
		}(w.tr)
	}
	for _, w := range c.workers {
		w.tr.Kill()
	}
	wg.Wait()
	for _, w := range c.workers {
		w.tr.Wait()
	}
}

func (c *coordinator) settled() bool {
	for k := range c.jobs {
		if s := c.jobs[k].status; s != jobDone && s != jobQuarantined {
			return false
		}
	}
	return true
}

func (c *coordinator) liveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// spawnOne starts one worker: transport, config frame, reader
// goroutine. Returns false (and counts a spawn failure) if the spawn
// or the handshake write fails.
func (c *coordinator) spawnOne() bool {
	id := c.nextID
	c.nextID++
	tr, err := c.spawn(id)
	if err != nil {
		c.spawnFailures++
		c.rep.Stats.SpawnFailures++
		return false
	}
	w := &workerState{id: id, tr: tr, busy: -1, lastBeat: time.Now()}
	if err := telemetry.WriteFrame(tr, "config", configPayload{
		Space:       c.spec,
		HeartbeatMs: int(c.cfg.HeartbeatEvery / time.Millisecond),
		Chaos:       c.cfg.Chaos,
	}); err != nil {
		tr.Kill()
		tr.Wait()
		c.spawnFailures++
		c.rep.Stats.SpawnFailures++
		return false
	}
	c.workers[id] = w
	c.rep.Stats.WorkersSpawned++
	go c.read(w)
	return true
}

// read pumps one worker's frames into the event channel until its
// stream ends. A frame error (torn, skewed) is delivered as the down
// event's error so the loop can count it loudly.
func (c *coordinator) read(w *workerState) {
	br := bufio.NewReader(w.tr)
	for {
		typ, data, err := telemetry.ReadFrame(br)
		ev := event{worker: w.id, typ: typ, data: data, err: err}
		if err != nil {
			ev.typ = "down"
		}
		select {
		case c.events <- ev:
		case <-c.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// dispatch hands eligible jobs to idle ready workers: pending jobs
// past their backoff first (lowest key), then — if a worker is still
// idle — a speculative copy of the lowest-keyed job that has exceeded
// JobTimeout on a still-heartbeating worker.
func (c *coordinator) dispatch() {
	now := time.Now()
	for _, w := range c.idleWorkers() {
		k, ok := c.nextPending(now)
		if !ok {
			k, ok = c.nextSpeculative(now)
			if ok {
				c.rep.Stats.SpeculativeRetries++
				c.jobs[k].speculated = true
			}
		}
		if !ok {
			return
		}
		c.sendJob(w, k)
	}
}

// idleWorkers returns ready idle workers in id order (deterministic
// iteration; maps randomize).
func (c *coordinator) idleWorkers() []*workerState {
	var out []*workerState
	for id := 0; id < c.nextID; id++ {
		if w := c.workers[id]; w != nil && w.ready && !w.dead && w.busy < 0 {
			out = append(out, w)
		}
	}
	return out
}

func (c *coordinator) nextPending(now time.Time) (int, bool) {
	for k := range c.jobs {
		j := &c.jobs[k]
		if j.status == jobPending && !now.Before(j.notBefore) {
			return k, true
		}
	}
	return 0, false
}

func (c *coordinator) nextSpeculative(now time.Time) (int, bool) {
	for k := range c.jobs {
		j := &c.jobs[k]
		if j.status != jobRunning || j.speculated || j.attempts >= c.cfg.MaxAttempts {
			continue
		}
		for _, w := range c.workers {
			if !w.dead && w.busy == k && now.Sub(w.started) > c.cfg.JobTimeout {
				return k, true
			}
		}
	}
	return 0, false
}

func (c *coordinator) sendJob(w *workerState, k int) {
	j := &c.jobs[k]
	attempt := j.attempts
	j.attempts++
	j.inflight++
	j.status = jobRunning
	w.busy = k
	w.attempt = attempt
	w.started = time.Now()
	w.lastBeat = w.started
	c.rep.Stats.JobsDispatched++
	if err := telemetry.WriteFrame(w.tr, "job", jobPayload{Key: k, Attempt: attempt}); err != nil {
		// The pipe died under the write; the reader will deliver a down
		// event that requeues this copy. Nothing else to do here.
		return
	}
}

// waitEvent blocks for the next event or supervision deadline.
func (c *coordinator) waitEvent() {
	wait := c.nextDeadline()
	select {
	case ev := <-c.events:
		c.handle(ev)
	case <-time.After(wait):
	}
	c.checkTimeouts()
}

// nextDeadline bounds the wait: the earliest backoff expiry, heartbeat
// deadline, or speculation deadline, clamped to a coarse tick.
func (c *coordinator) nextDeadline() time.Duration {
	now := time.Now()
	wait := 250 * time.Millisecond
	upd := func(t time.Time) {
		if d := t.Sub(now); d < wait {
			if d < time.Millisecond {
				d = time.Millisecond
			}
			wait = d
		}
	}
	for k := range c.jobs {
		if c.jobs[k].status == jobPending && c.jobs[k].notBefore.After(now) {
			upd(c.jobs[k].notBefore)
		}
	}
	for _, w := range c.workers {
		if !w.dead && w.busy >= 0 {
			upd(w.lastBeat.Add(c.cfg.HeartbeatTimeout))
			upd(w.started.Add(c.cfg.JobTimeout))
		}
	}
	return wait
}

// checkTimeouts kills hung workers: busy, and silent past the
// heartbeat timeout. (Slow-but-beating workers are handled by
// speculative dispatch, not killed.)
func (c *coordinator) checkTimeouts() {
	now := time.Now()
	for _, w := range c.workers {
		if w.dead || w.busy < 0 {
			continue
		}
		if now.Sub(w.lastBeat) > c.cfg.HeartbeatTimeout {
			c.rep.Stats.WorkersKilledHung++
			c.failWorker(w, fmt.Sprintf("hung: no heartbeat for %v", now.Sub(w.lastBeat).Round(time.Millisecond)))
			w.tr.Kill()
		}
	}
}

// failWorker marks a worker dead and requeues its in-flight job copy.
func (c *coordinator) failWorker(w *workerState, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	if !w.ready {
		// Dying before the ready handshake is a spawn that never worked;
		// count it toward the budget so a worker that always crashes on
		// startup degrades to in-process instead of respawning forever.
		c.spawnFailures++
	}
	if k := w.busy; k >= 0 {
		w.busy = -1
		j := &c.jobs[k]
		j.inflight--
		j.errs = append(j.errs, fmt.Sprintf("attempt %d on worker %d: %s", w.attempt, w.id, reason))
		c.retryOrQuarantine(k)
	}
	// Keep the fleet at strength while unsettled jobs remain.
	if !c.settled() && c.liveWorkers() < c.cfg.Workers && c.spawnFailures <= c.cfg.SpawnFailureLimit {
		c.spawnOne()
	}
}

func (c *coordinator) retryOrQuarantine(k int) {
	j := &c.jobs[k]
	if j.status == jobDone || j.status == jobQuarantined {
		return
	}
	if j.inflight > 0 {
		// A sibling copy (speculation) is still running; let it decide.
		return
	}
	if j.attempts >= c.cfg.MaxAttempts {
		j.status = jobQuarantined
		c.rep.Quarantined = append(c.rep.Quarantined, Quarantine{
			Key: k, Attempts: j.attempts, Errs: append([]string(nil), j.errs...),
		})
		return
	}
	j.status = jobPending
	j.notBefore = time.Now().Add(RetryDelay(c.cfg.Seed, k, j.attempts, c.cfg.BackoffBase, c.cfg.BackoffCap))
	c.rep.Stats.Retries++
}

func (c *coordinator) handle(ev event) {
	w := c.workers[ev.worker]
	if w == nil || (w.dead && ev.typ != "down") {
		return
	}
	switch ev.typ {
	case "ready":
		w.ready = true
		w.lastBeat = time.Now()
	case "heartbeat":
		w.lastBeat = time.Now()
	case "result":
		var res resultPayload
		if err := json.Unmarshal(ev.data, &res); err != nil {
			c.rep.Stats.BadFrames++
			c.failWorker(w, fmt.Sprintf("undecodable result frame: %v", err))
			w.tr.Kill()
			return
		}
		w.lastBeat = time.Now()
		c.completeJob(w, res.Key, []byte(res.Payload))
	case "joberr":
		var je jobErrPayload
		if err := json.Unmarshal(ev.data, &je); err != nil {
			c.rep.Stats.BadFrames++
			c.failWorker(w, fmt.Sprintf("undecodable joberr frame: %v", err))
			w.tr.Kill()
			return
		}
		w.lastBeat = time.Now()
		if w.busy == je.Key {
			w.busy = -1
		}
		j := &c.jobs[je.Key]
		j.inflight--
		j.errs = append(j.errs, fmt.Sprintf("attempt %d on worker %d: %s", je.Attempt, w.id, je.Error))
		c.retryOrQuarantine(je.Key)
	case "down":
		wasDead := w.dead
		if !wasDead {
			c.rep.Stats.WorkerCrashes++
			reason := "connection closed"
			if ev.err != nil && ev.err.Error() != "EOF" {
				reason = ev.err.Error()
			}
			if _, torn := ev.err.(*telemetry.WireError); torn {
				c.rep.Stats.BadFrames++
			}
			c.failWorker(w, reason)
		}
		w.tr.Kill()
	default:
		c.rep.Stats.BadFrames++
		c.failWorker(w, fmt.Sprintf("unexpected frame %q", ev.typ))
		w.tr.Kill()
	}
}

// completeJob merges a result into its keyed slot, or deduplicates it
// if the key already settled (the speculative race / retried-job
// race). Duplicates are byte-compared against the winner: payloads are
// pure functions of the key, so a mismatch is a determinism violation
// the audit must surface.
func (c *coordinator) completeJob(w *workerState, k int, payload []byte) {
	if w.busy == k {
		w.busy = -1
	}
	if k < 0 || k >= len(c.jobs) {
		c.rep.Stats.BadFrames++
		c.failWorker(w, fmt.Sprintf("result for job %d outside space [0,%d)", k, len(c.jobs)))
		w.tr.Kill()
		return
	}
	c.rep.Stats.ResultsReceived++
	j := &c.jobs[k]
	j.inflight--
	switch j.status {
	case jobDone:
		c.rep.Stats.DuplicatesDropped++
		if !bytes.Equal(payload, j.payload) {
			c.rep.Stats.DuplicateMismatches++
		}
	case jobQuarantined:
		// The key was written off before this copy landed; accounting
		// already closed, so the late result is dropped as a duplicate
		// of the quarantine decision.
		c.rep.Stats.DuplicatesDropped++
	default:
		j.status = jobDone
		j.payload = payload
		c.rep.Payloads[k] = payload
		c.rep.Done[k] = true
		c.rep.Stats.ResultsMerged++
		c.rep.addWorkerMerge(w.id)
	}
}

// runInline executes every unsettled job in-process through the runner
// engine — the graceful-degradation path when no workers can run. Job
// errors here are deterministic (no process to crash), so a failing
// job goes straight to quarantine.
func (c *coordinator) runInline() {
	c.rep.Stats.Degraded = true
	var keys []int
	for k := range c.jobs {
		if c.jobs[k].status != jobDone && c.jobs[k].status != jobQuarantined {
			keys = append(keys, k)
		}
	}
	type inlineOut struct {
		payload []byte
		err     error
	}
	outs := make([]inlineOut, len(keys))
	runner.Run(runner.Config{Jobs: len(keys), Parallel: c.cfg.InlineParallel}, func(i, worker int) error {
		payload, err := c.space.Run(keys[i], worker)
		outs[i] = inlineOut{payload: payload, err: err}
		return nil
	})
	for i, k := range keys {
		j := &c.jobs[k]
		if outs[i].err != nil {
			j.attempts++
			j.errs = append(j.errs, fmt.Sprintf("attempt %d in-process: %v", j.attempts-1, outs[i].err))
			j.status = jobQuarantined
			c.rep.Quarantined = append(c.rep.Quarantined, Quarantine{
				Key: k, Attempts: j.attempts, Errs: append([]string(nil), j.errs...),
			})
			continue
		}
		j.status = jobDone
		j.payload = outs[i].payload
		c.rep.Payloads[k] = outs[i].payload
		c.rep.Done[k] = true
		c.rep.Stats.InlineMerged++
	}
}
