package fleet

import "time"

// splitmix64 is the canonical SplitMix64 finalizer — the same avalanche
// internal/chaos uses for run-seed derivation, duplicated here so the
// fleet's retry jitter and worker self-chaos stay dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds a (job, attempt) coordinate into a seed, giving every cell
// of the retry matrix an independent-looking stream (two chained
// SplitMix64 steps, like chaos.RunSeed).
func mix(seed uint64, job, attempt int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(job)+1)*31 ^ splitmix64(uint64(attempt)+1))
}

// RetryDelay returns the backoff before retry number attempt of a job
// (attempt 1 is the first retry): exponential in the attempt with a
// seeded jitter in the upper half of the window, so colliding retries
// decorrelate without losing determinism. It is a pure function of
// (seed, job, attempt) — the whole retry schedule of a run is fixed by
// its seed, which is what makes supervision testable.
func RetryDelay(seed uint64, job, attempt int, base, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	jitter := time.Duration(0)
	if half > 0 {
		jitter = time.Duration(mix(seed, job, attempt) % uint64(half+1))
	}
	return d - half + jitter // in [d/2, d/2+half] = [d/2, d]
}

// RetrySchedule returns the first n retry delays for a job — the
// deterministic attempt timeline tests assert against.
func RetrySchedule(seed uint64, job, n int, base, max time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = RetryDelay(seed, job, i+1, base, max)
	}
	return out
}
