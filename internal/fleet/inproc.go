package fleet

import (
	"io"
	"sync"
)

// pipeTransport is the in-process analogue of a worker process: the
// worker side is WorkerMain on a goroutine over io.Pipes. Kill snaps
// all four pipe ends, which is exactly what a SIGKILLed process looks
// like to the coordinator — an abruptly-ended stream — and unblocks
// any write the worker has in flight.
type pipeTransport struct {
	outR *io.PipeReader // coordinator reads worker output here
	inW  *io.PipeWriter // coordinator writes worker input here
	inR  *io.PipeReader
	outW *io.PipeWriter
	done chan error
	once sync.Once
}

func (t *pipeTransport) Read(p []byte) (int, error)  { return t.outR.Read(p) }
func (t *pipeTransport) Write(p []byte) (int, error) { return t.inW.Write(p) }

func (t *pipeTransport) Kill() {
	t.once.Do(func() {
		t.outR.Close()
		t.inW.Close()
		t.inR.Close()
		t.outW.Close()
	})
}

func (t *pipeTransport) Wait() error { return <-t.done }

// InProcSpawner returns a Spawner whose workers are WorkerMain
// goroutines over in-memory pipes instead of OS processes. The full
// wire protocol, supervision, and self-chaos machinery runs unchanged
// — a chaos worker "crashes" by returning ErrChaosKill, which snaps
// its pipes just as a SIGKILL would. This is the transport the race-
// detector tests drive, and a way to exercise fleet supervision where
// spawning processes is unavailable.
func InProcSpawner() Spawner {
	return func(id int) (Transport, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		tr := &pipeTransport{outR: outR, inW: inW, inR: inR, outW: outW, done: make(chan error, 1)}
		go func() {
			err := WorkerMain(inR, outW)
			outW.Close()
			inR.Close()
			tr.done <- err
		}()
		return tr, nil
	}
}
