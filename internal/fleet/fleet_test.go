package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"limitsim/internal/telemetry"
)

// sqSpace is the test job space: payload is a pure function of the
// key, with designated poison and panic keys.
type sqSpace struct {
	N         int   `json:"n"`
	FailKeys  []int `json:"fail_keys,omitempty"`
	PanicKeys []int `json:"panic_keys,omitempty"`
	// Sleeps makes designated keys slow (every attempt, deterministic
	// payload) — the raw material for speculative-retry tests.
	Sleeps []jobSleep `json:"sleeps,omitempty"`
}

type jobSleep struct {
	Key int `json:"key"`
	Ms  int `json:"ms"`
}

func (s *sqSpace) NumJobs() int { return s.N }

func (s *sqSpace) Run(job, worker int) ([]byte, error) {
	for _, k := range s.FailKeys {
		if k == job {
			return nil, fmt.Errorf("poison job %d", job)
		}
	}
	for _, k := range s.PanicKeys {
		if k == job {
			panic(fmt.Sprintf("panic job %d", job))
		}
	}
	for _, sl := range s.Sleeps {
		if sl.Key == job {
			time.Sleep(time.Duration(sl.Ms) * time.Millisecond)
		}
	}
	return []byte(fmt.Sprintf(`{"sq":%d}`, job*job)), nil
}

func init() {
	Register("sq", func(cfg json.RawMessage) (JobSpace, error) {
		s := &sqSpace{}
		if err := json.Unmarshal(cfg, s); err != nil {
			return nil, err
		}
		return s, nil
	})
}

func sqSpec(t *testing.T, s sqSpace) SpaceSpec {
	t.Helper()
	cfg, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return SpaceSpec{Kind: "sq", Config: cfg}
}

// fastCfg returns supervision timings tight enough for unit tests.
func fastCfg(workers int) Config {
	return Config{
		Workers:          workers,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 120 * time.Millisecond,
		JobTimeout:       5 * time.Second,
		BackoffBase:      2 * time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
	}
}

func mustClean(t *testing.T, rep *Report) {
	t.Helper()
	for _, v := range rep.Violations {
		t.Errorf("audit violation: %s", v)
	}
}

func checkAllSquares(t *testing.T, rep *Report, n int) {
	t.Helper()
	if rep.Jobs != n {
		t.Fatalf("Jobs = %d, want %d", rep.Jobs, n)
	}
	for k := 0; k < n; k++ {
		if !rep.Done[k] {
			t.Fatalf("job %d not done", k)
		}
		want := fmt.Sprintf(`{"sq":%d}`, k*k)
		if string(rep.Payloads[k]) != want {
			t.Fatalf("job %d payload = %s, want %s", k, rep.Payloads[k], want)
		}
	}
}

func TestRetryScheduleDeterministic(t *testing.T) {
	base, cap := 10*time.Millisecond, 200*time.Millisecond
	a := RetrySchedule(42, 7, 8, base, cap)
	b := RetrySchedule(42, 7, 8, base, cap)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := RetrySchedule(43, 7, 8, base, cap)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every delay sits in the exponential window [d/2, d], capped.
	d := base
	for i, got := range a {
		if got < d/2 || got > d {
			t.Fatalf("retry %d delay %v outside [%v, %v]", i+1, got, d/2, d)
		}
		if d < cap {
			d *= 2
			if d > cap {
				d = cap
			}
		}
	}
}

func TestFleetCleanRun(t *testing.T) {
	const n = 20
	rep, err := Run(fastCfg(4), sqSpec(t, sqSpace{N: n}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if !rep.Complete() {
		t.Fatal("clean run not Complete")
	}
	if rep.Stats.ResultsMerged != n || rep.Stats.Retries != 0 {
		t.Fatalf("stats: %+v", rep.Stats)
	}
}

func TestFleetCrashStormCompletesViaRetry(t *testing.T) {
	const n = 8
	cfg := fastCfg(4)
	cfg.Chaos = ChaosConfig{Seed: 1, CrashPct: 100, MaxAttempt: 1}
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: n}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if rep.Stats.WorkerCrashes < n {
		t.Fatalf("WorkerCrashes = %d, want >= %d (every first attempt crashes)", rep.Stats.WorkerCrashes, n)
	}
	if rep.Stats.Retries < n {
		t.Fatalf("Retries = %d, want >= %d", rep.Stats.Retries, n)
	}
}

func TestFleetStallDetectedAsHang(t *testing.T) {
	const n = 4
	cfg := fastCfg(2)
	cfg.Chaos = ChaosConfig{Seed: 2, StallPct: 100, MaxAttempt: 1, StallMs: 400}
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: n}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if rep.Stats.WorkersKilledHung < 1 {
		t.Fatalf("WorkersKilledHung = %d, want >= 1", rep.Stats.WorkersKilledHung)
	}
}

func TestFleetTornFrameFailsLoudly(t *testing.T) {
	const n = 4
	cfg := fastCfg(2)
	cfg.Chaos = ChaosConfig{Seed: 3, TruncPct: 100, MaxAttempt: 1}
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: n}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if rep.Stats.BadFrames < 1 {
		t.Fatalf("BadFrames = %d, want >= 1 (torn result frames must be counted)", rep.Stats.BadFrames)
	}
}

func TestFleetSlowJobSpeculatedAndDeduplicated(t *testing.T) {
	// Job 0 is slow (every attempt): past JobTimeout it is speculatively
	// retried on an idle worker, and because job 1 is even slower the
	// run is still alive when BOTH job-0 results land — the second one
	// must be deduplicated and byte-compared against the first.
	const n = 2
	cfg := fastCfg(4)
	cfg.JobTimeout = 50 * time.Millisecond
	cfg.HeartbeatTimeout = 5 * time.Second // slow, not hung: never kill
	rep, err := Run(cfg, sqSpec(t, sqSpace{
		N:      n,
		Sleeps: []jobSleep{{Key: 0, Ms: 150}, {Key: 1, Ms: 700}},
	}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if rep.Stats.SpeculativeRetries < 1 {
		t.Fatalf("SpeculativeRetries = %d, want >= 1", rep.Stats.SpeculativeRetries)
	}
	if rep.Stats.DuplicatesDropped < 1 {
		t.Fatalf("DuplicatesDropped = %d, want >= 1 (the slow original must race the copy)", rep.Stats.DuplicatesDropped)
	}
	if rep.Stats.DuplicateMismatches != 0 {
		t.Fatalf("DuplicateMismatches = %d, want 0", rep.Stats.DuplicateMismatches)
	}
}

func TestFleetPoisonJobQuarantined(t *testing.T) {
	const n = 6
	cfg := fastCfg(2)
	cfg.MaxAttempts = 3
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: n, FailKeys: []int{3}}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	if rep.Complete() {
		t.Fatal("run with a poison job must not be Complete")
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v, want exactly job 3", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Key != 3 || q.Attempts != 3 || len(q.Errs) != 3 {
		t.Fatalf("quarantine = %+v, want key 3, 3 attempts, 3 errors", q)
	}
	for k := 0; k < n; k++ {
		if k == 3 {
			if rep.Done[k] {
				t.Fatal("poison job marked done")
			}
			continue
		}
		if !rep.Done[k] {
			t.Fatalf("job %d not done", k)
		}
	}
}

func TestFleetPanicJobQuarantinedWithStack(t *testing.T) {
	cfg := fastCfg(2)
	cfg.MaxAttempts = 2
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: 3, PanicKeys: []int{1}}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Key != 1 {
		t.Fatalf("Quarantined = %v, want job 1", rep.Quarantined)
	}
	if errs := rep.Quarantined[0].Errs; len(errs) == 0 || !strings.Contains(errs[0], "panicked") {
		t.Fatalf("quarantine errors %q do not mention the panic", errs)
	}
}

func TestFleetMixedChaosExactOnceAccounting(t *testing.T) {
	const n = 16
	cfg := fastCfg(4)
	cfg.MaxAttempts = 6
	cfg.Chaos = ChaosConfig{
		Seed: 99, CrashPct: 30, StallPct: 10, TruncPct: 10, SlowPct: 10,
		MaxAttempt: 2, StallMs: 300, SlowMs: 30,
	}
	rep, err := Run(cfg, sqSpec(t, sqSpace{N: n}), InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if !rep.Complete() {
		t.Fatalf("chaos run with attempts budget above MaxAttempt must complete; quarantined %v", rep.Quarantined)
	}
}

func TestFleetDegradesInProcessWhenSpawnsFail(t *testing.T) {
	const n = 10
	badSpawn := func(id int) (Transport, error) { return nil, fmt.Errorf("no fork for you") }
	rep, err := Run(fastCfg(3), sqSpec(t, sqSpace{N: n}), badSpawn)
	if err != nil {
		t.Fatal(err)
	}
	checkAllSquares(t, rep, n)
	mustClean(t, rep)
	if !rep.Stats.Degraded {
		t.Fatal("Degraded not set after total spawn failure")
	}
	if rep.Stats.SpawnFailures < 3 {
		t.Fatalf("SpawnFailures = %d, want >= 3", rep.Stats.SpawnFailures)
	}
}

func TestFleetWorkersZeroRunsInline(t *testing.T) {
	const n = 7
	rep, err := Run(Config{Workers: 0}, sqSpec(t, sqSpace{N: n, FailKeys: []int{2}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Key != 2 {
		t.Fatalf("Quarantined = %v, want job 2", rep.Quarantined)
	}
	for k := 0; k < n; k++ {
		if k != 2 && !rep.Done[k] {
			t.Fatalf("job %d not done", k)
		}
	}
}

func TestWorkerMainRejectsBadHandshake(t *testing.T) {
	// First frame must be config.
	var in, out bytes.Buffer
	if err := telemetry.WriteFrame(&in, "job", jobPayload{Key: 0}); err != nil {
		t.Fatal(err)
	}
	if err := WorkerMain(&in, &out); err == nil || !strings.Contains(err.Error(), "want config") {
		t.Fatalf("err = %v, want handshake rejection", err)
	}

	// Unknown space kind fails before ready.
	in.Reset()
	if err := telemetry.WriteFrame(&in, "config", configPayload{Space: SpaceSpec{Kind: "no-such-kind"}}); err != nil {
		t.Fatal(err)
	}
	if err := WorkerMain(&in, &out); err == nil || !strings.Contains(err.Error(), "no-such-kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestUnknownSpaceKind(t *testing.T) {
	if _, err := Run(fastCfg(1), SpaceSpec{Kind: "nope"}, InProcSpawner()); err == nil {
		t.Fatal("unknown kind must error")
	}
}
