// Package spaces wires the repo's shardable job spaces into the fleet
// registry. Importing it (for side effects) is what lets a coordinator
// name a space on the wire and a worker process rebuild it from the
// spec:
//
//	"campaign" — the chaos read-path campaign (chaos.Config)
//	"soak"     — the chaos lifecycle soak campaign (chaos.SoakConfig)
//	"f2"       — the Figure 2 overhead sweep ({"scale": 0.1})
//
// The package exists to break an import cycle: fleet stays generic
// (it cannot import chaos or experiments, which its workers execute),
// so the adapters register here and binaries import this glue.
package spaces

import (
	"encoding/json"
	"fmt"

	"limitsim/internal/chaos"
	"limitsim/internal/experiments"
	"limitsim/internal/fleet"
)

// F2Config is the wire config of the "f2" space.
type F2Config struct {
	Scale float64 `json:"scale"`
}

func init() {
	fleet.Register("campaign", func(cfg json.RawMessage) (fleet.JobSpace, error) {
		var c chaos.Config
		if err := decode(cfg, &c); err != nil {
			return nil, fmt.Errorf("campaign space: %w", err)
		}
		return chaos.NewCampaignSpace(c), nil
	})
	fleet.Register("soak", func(cfg json.RawMessage) (fleet.JobSpace, error) {
		var c chaos.SoakConfig
		if err := decode(cfg, &c); err != nil {
			return nil, fmt.Errorf("soak space: %w", err)
		}
		return chaos.NewSoakSpace(c), nil
	})
	fleet.Register("f2", func(cfg json.RawMessage) (fleet.JobSpace, error) {
		var c F2Config
		if err := decode(cfg, &c); err != nil {
			return nil, fmt.Errorf("f2 space: %w", err)
		}
		s := experiments.Scale(c.Scale)
		if s <= 0 {
			s = experiments.Quick
		}
		return experiments.NewF2Space(s), nil
	})
}

// CampaignSpec builds the wire spec for a campaign config.
func CampaignSpec(cfg chaos.Config) (fleet.SpaceSpec, error) {
	return spec("campaign", cfg)
}

// SoakSpec builds the wire spec for a soak config.
func SoakSpec(cfg chaos.SoakConfig) (fleet.SpaceSpec, error) {
	return spec("soak", cfg)
}

// F2Spec builds the wire spec for a Figure 2 sweep at the given scale.
func F2Spec(s experiments.Scale) (fleet.SpaceSpec, error) {
	return spec("f2", F2Config{Scale: float64(s)})
}

func spec(kind string, cfg any) (fleet.SpaceSpec, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return fleet.SpaceSpec{}, fmt.Errorf("%s space: encoding config: %w", kind, err)
	}
	return fleet.SpaceSpec{Kind: kind, Config: raw}, nil
}

func decode(cfg json.RawMessage, into any) error {
	if len(cfg) == 0 {
		return nil
	}
	return json.Unmarshal(cfg, into)
}
