package spaces

import (
	"bytes"
	"testing"
	"time"

	"limitsim/internal/chaos"
	"limitsim/internal/experiments"
	"limitsim/internal/fleet"
)

// tinyCampaign is a campaign small enough to run many times in a test
// yet wide enough (2 mixes × 3 seeds = 6 jobs) to shard meaningfully.
func tinyCampaign() chaos.Config {
	return chaos.Config{
		Seeds: 3, Threads: 3, Cores: 2, Iters: 60,
		Metrics: true,
		Mixes:   chaos.DefaultMixes()[:2],
	}
}

func fleetCfg(workers int) fleet.Config {
	return fleet.Config{
		Workers:          workers,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		BackoffBase:      2 * time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
	}
}

func renderCampaign(t *testing.T, r *chaos.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	r.Render(&buf)
	return buf.Bytes()
}

// TestCampaignFleetMatchesSingleProcess is the PR's keystone oracle:
// the fleet-assembled campaign report must be byte-identical to the
// single-process engine's at every shard width — and stay so when the
// workers themselves are being crashed, stalled, and truncated, because
// retried and speculated jobs are pure functions of their keys.
func TestCampaignFleetMatchesSingleProcess(t *testing.T) {
	ccfg := tinyCampaign()
	want := renderCampaign(t, chaos.Run(ccfg))

	spec, err := CampaignSpec(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		fcfg := fleetCfg(workers)
		rep, err := fleet.Run(fcfg, spec, fleet.InProcSpawner())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Complete() {
			t.Fatalf("workers=%d: incomplete: quarantined %v, violations %v",
				workers, rep.Quarantined, rep.Violations)
		}
		res, err := chaos.AssembleCampaign(ccfg, rep.Payloads)
		if err != nil {
			t.Fatalf("workers=%d: assemble: %v", workers, err)
		}
		if got := renderCampaign(t, res); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
				workers, got, want)
		}
	}
}

func TestCampaignFleetByteIdenticalUnderKillStorm(t *testing.T) {
	ccfg := tinyCampaign()
	want := renderCampaign(t, chaos.Run(ccfg))

	spec, err := CampaignSpec(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fleetCfg(3)
	fcfg.MaxAttempts = 5
	fcfg.HeartbeatTimeout = 150 * time.Millisecond
	fcfg.Chaos = fleet.ChaosConfig{
		Seed: 7, CrashPct: 30, StallPct: 10, TruncPct: 10,
		MaxAttempt: 2, StallMs: 400,
	}
	rep, err := fleet.Run(fcfg, spec, fleet.InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("kill-storm campaign incomplete: quarantined %v, violations %v",
			rep.Quarantined, rep.Violations)
	}
	if rep.Stats.WorkerCrashes == 0 {
		t.Fatal("kill-storm injected no crashes — chaos config not reaching workers")
	}
	res, err := chaos.AssembleCampaign(ccfg, rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCampaign(t, res); !bytes.Equal(got, want) {
		t.Errorf("kill-storm fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
			got, want)
	}
}

func TestSoakFleetMatchesSingleProcess(t *testing.T) {
	scfg := chaos.SoakConfig{
		Seeds: 2, Pool: 2, Waves: 2, Iters: 10,
		Mixes: chaos.DefaultSoakMixes(2)[:2],
	}
	var want bytes.Buffer
	chaos.RunSoak(scfg).Render(&want)

	spec, err := SoakSpec(scfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(fleetCfg(2), spec, fleet.InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("soak fleet incomplete: quarantined %v, violations %v", rep.Quarantined, rep.Violations)
	}
	res, err := chaos.AssembleSoak(scfg, rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	res.Render(&got)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("soak fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
			got.String(), want.String())
	}
}

func TestF2FleetMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("f2 sweep is slow")
	}
	single, err := experiments.RunFig2(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	single.Render(&want)

	spec, err := F2Spec(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(fleetCfg(4), spec, fleet.InProcSpawner())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("f2 fleet incomplete: quarantined %v, violations %v", rep.Quarantined, rep.Violations)
	}
	res, err := experiments.AssembleF2Payloads(rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	res.Render(&got)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("f2 fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
			got.String(), want.String())
	}
}
