// Package fleet shards a campaign's job space across OS worker
// processes, with failure as the design center: workers crash, hang,
// stall, and write torn frames, and the fleet-wide result must still be
// byte-identical to the single-process engine's. It is the
// cross-process extension of internal/runner — same keyed job space,
// same canonical merge order — with a supervision layer between the
// claim and the result:
//
//   - The coordinator speaks length-prefixed, versioned JSON frames
//     (telemetry.WriteFrame/ReadFrame) with each worker over its
//     stdin/stdout. A torn, oversized, or version-skewed frame is a
//     typed *telemetry.WireError and counts as a worker failure — it
//     never merges.
//   - Every busy worker heartbeats; silence past the heartbeat timeout
//     means the worker is hung and it is killed. A worker that still
//     heartbeats but exceeds the per-job deadline is merely slow: the
//     job is speculatively retried on another worker, and whichever
//     result lands first wins.
//   - Failed jobs retry with exponential backoff and seeded jitter
//     (RetryDelay is a pure function of seed, job, and attempt, so
//     retry schedules are deterministic in tests). After MaxAttempts
//     failures a job is quarantined — enumerated in the report, never
//     silently dropped.
//   - Results land in slots keyed by job; a duplicate result for an
//     already-settled key (the speculative race, or a retry that raced
//     a crash) is deduplicated by key and byte-compared against the
//     winner — a mismatch is an audit violation, because job payloads
//     are pure functions of (space config, key).
//   - When no workers can be spawned (or none survive), the
//     coordinator degrades gracefully to in-process execution through
//     internal/runner.
//
// Correctness is auditable: Report.Audit checks that every job is
// accounted exactly once (settled XOR quarantined), that merged plus
// deduplicated results equal results received, and that per-worker
// result contributions conserve against the merged total — the fleet
// analogue of internal/invariant's oracles.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// JobSpace is a shardable campaign: a fixed number of independent
// jobs, each a pure function of (space config, key) producing a
// wire-encodable payload. The worker index has the same meaning as in
// internal/runner — a stable slot identity that implementations may
// use to pool expensive per-run artifacts; a given worker index never
// runs two jobs concurrently.
type JobSpace interface {
	// NumJobs is the job-space size; keys are 0..NumJobs-1.
	NumJobs() int
	// Run executes job key and returns its payload. The payload must be
	// deterministic: any two executions of the same key return the same
	// bytes, which is what makes retry, speculation, and dedup safe.
	Run(job, worker int) ([]byte, error)
}

// SpaceSpec names a job space on the wire: a registered kind plus its
// JSON config. The coordinator and every worker build their own
// instance from the same spec, so they cannot disagree about the job
// space's shape.
type SpaceSpec struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

var (
	spaceMu       sync.Mutex
	spaceBuilders = map[string]func(cfg json.RawMessage) (JobSpace, error){}
)

// Register installs a job-space builder under kind. Adapters (the
// chaos campaign/soak spaces, experiment grids) register themselves so
// that worker processes can reconstruct the space from its wire spec.
// Registering a duplicate kind panics: it is a wiring error.
func Register(kind string, build func(cfg json.RawMessage) (JobSpace, error)) {
	spaceMu.Lock()
	defer spaceMu.Unlock()
	if _, dup := spaceBuilders[kind]; dup {
		panic("fleet: duplicate job-space kind " + kind)
	}
	spaceBuilders[kind] = build
}

// Kinds returns the registered job-space kinds, sorted.
func Kinds() []string {
	spaceMu.Lock()
	defer spaceMu.Unlock()
	out := make([]string, 0, len(spaceBuilders))
	for k := range spaceBuilders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BuildSpace constructs the job space a spec names.
func BuildSpace(spec SpaceSpec) (JobSpace, error) {
	spaceMu.Lock()
	build := spaceBuilders[spec.Kind]
	spaceMu.Unlock()
	if build == nil {
		return nil, fmt.Errorf("fleet: unknown job-space kind %q (registered: %v)", spec.Kind, Kinds())
	}
	return build(spec.Config)
}

// Transport is one spawned worker's connection: frames are read from
// and written to it, Kill hard-stops the worker (SIGKILL for a real
// process), and Wait reaps it after the stream ends.
type Transport interface {
	io.Reader
	io.Writer
	// Kill hard-stops the worker; subsequent reads fail.
	Kill()
	// Wait blocks until the worker is reaped. Must be callable after
	// Kill, and exactly once.
	Wait() error
}

// Spawner starts worker number id and returns its transport. The
// coordinator calls it for the initial fleet and for every
// replacement; returning an error counts toward the spawn-failure
// budget, after which the coordinator degrades to in-process
// execution.
type Spawner func(id int) (Transport, error)
