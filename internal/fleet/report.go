package fleet

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Quarantine is one job the fleet gave up on: its key, how many
// attempts it burned, and every error those attempts produced. A
// quarantined job is reported, never dropped — downstream assembly must
// refuse to pretend the space completed.
type Quarantine struct {
	Key      int      `json:"key"`
	Attempts int      `json:"attempts"`
	Errs     []string `json:"errs"`
}

// Stats counts everything the supervision layer did. The counters are
// related by invariants Audit checks; they are the fleet's
// self-measurement, in the same spirit as telemetry's kernel
// self-metrics.
type Stats struct {
	WorkersSpawned      int  `json:"workers_spawned"`
	WorkerCrashes       int  `json:"worker_crashes"`
	WorkersKilledHung   int  `json:"workers_killed_hung"`
	SpawnFailures       int  `json:"spawn_failures"`
	JobsDispatched      int  `json:"jobs_dispatched"`
	ResultsReceived     int  `json:"results_received"`
	ResultsMerged       int  `json:"results_merged"`
	InlineMerged        int  `json:"inline_merged"`
	DuplicatesDropped   int  `json:"duplicates_dropped"`
	DuplicateMismatches int  `json:"duplicate_mismatches"`
	Retries             int  `json:"retries"`
	SpeculativeRetries  int  `json:"speculative_retries"`
	BadFrames           int  `json:"bad_frames"`
	Degraded            bool `json:"degraded"`
}

// Report is one fleet run's outcome: keyed payloads for every
// completed job, the quarantine list, supervision stats, and any audit
// violations. Payloads[k] is meaningful only when Done[k].
type Report struct {
	Jobs        int          `json:"jobs"`
	Payloads    [][]byte     `json:"-"`
	Done        []bool       `json:"done"`
	Quarantined []Quarantine `json:"quarantined"`
	Stats       Stats        `json:"stats"`
	// ByWorker maps worker id to results that worker contributed to the
	// merge (duplicates excluded) — the per-worker side of the
	// conservation audit.
	ByWorker map[int]int `json:"by_worker,omitempty"`
	// Violations is Audit's output, computed once when the run ends.
	// Non-empty means the run's accounting is broken and its payloads
	// must not be trusted.
	Violations []string `json:"violations,omitempty"`
}

func (r *Report) addWorkerMerge(id int) {
	if r.ByWorker == nil {
		r.ByWorker = map[int]int{}
	}
	r.ByWorker[id]++
}

// finish canonicalizes and audits the report at end of run.
func (r *Report) finish() {
	sort.Slice(r.Quarantined, func(i, j int) bool { return r.Quarantined[i].Key < r.Quarantined[j].Key })
	r.Violations = r.Audit()
}

// Audit checks the run's accounting invariants and returns every
// violation found:
//
//   - exact-once: each job key is either done or quarantined, never
//     both and never neither;
//   - dedup conservation: results received = results merged +
//     duplicates dropped;
//   - worker conservation: per-worker merged contributions sum to the
//     merged total;
//   - completion conservation: done jobs = worker-merged + inline-merged;
//   - determinism: no deduplicated result disagreed byte-for-byte with
//     the winning payload for its key.
func (r *Report) Audit() []string {
	var v []string
	quarantined := map[int]int{}
	for _, q := range r.Quarantined {
		quarantined[q.Key]++
	}
	for k, n := range quarantined {
		if n > 1 {
			v = append(v, fmt.Sprintf("job %d quarantined %d times", k, n))
		}
		if k < 0 || k >= r.Jobs {
			v = append(v, fmt.Sprintf("quarantined job %d outside space [0,%d)", k, r.Jobs))
		}
	}
	done := 0
	for k := 0; k < r.Jobs; k++ {
		d := k < len(r.Done) && r.Done[k]
		_, q := quarantined[k]
		switch {
		case d && q:
			v = append(v, fmt.Sprintf("job %d both done and quarantined", k))
		case !d && !q:
			v = append(v, fmt.Sprintf("job %d lost: neither done nor quarantined", k))
		}
		if d {
			done++
			if k >= len(r.Payloads) || r.Payloads[k] == nil {
				v = append(v, fmt.Sprintf("job %d done but has no payload", k))
			}
		}
	}
	s := r.Stats
	if s.ResultsReceived != s.ResultsMerged+s.DuplicatesDropped {
		v = append(v, fmt.Sprintf("results received (%d) != merged (%d) + duplicates dropped (%d)",
			s.ResultsReceived, s.ResultsMerged, s.DuplicatesDropped))
	}
	byWorker := 0
	for _, n := range r.ByWorker {
		byWorker += n
	}
	if byWorker != s.ResultsMerged {
		v = append(v, fmt.Sprintf("per-worker contributions (%d) != results merged (%d)", byWorker, s.ResultsMerged))
	}
	if done != s.ResultsMerged+s.InlineMerged {
		v = append(v, fmt.Sprintf("done jobs (%d) != worker-merged (%d) + inline-merged (%d)",
			done, s.ResultsMerged, s.InlineMerged))
	}
	if s.DuplicateMismatches > 0 {
		v = append(v, fmt.Sprintf("%d duplicate result(s) disagreed with the merged payload", s.DuplicateMismatches))
	}
	return v
}

// Complete reports whether every job finished (nothing quarantined)
// and the audit is clean.
func (r *Report) Complete() bool {
	return len(r.Quarantined) == 0 && len(r.Violations) == 0
}

// RenderSummary writes the supervision summary — stats, quarantine
// list, violations — in the repo's aligned-table house style. This is
// diagnostic output (stderr material); the campaign report itself is
// assembled from Payloads by the space's adapter.
func (r *Report) RenderSummary(w io.Writer) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "fleet summary\n")
	fmt.Fprintf(tw, "  jobs\t%d\n", r.Jobs)
	fmt.Fprintf(tw, "  workers spawned\t%d\n", r.Stats.WorkersSpawned)
	fmt.Fprintf(tw, "  worker crashes\t%d\n", r.Stats.WorkerCrashes)
	fmt.Fprintf(tw, "  workers killed hung\t%d\n", r.Stats.WorkersKilledHung)
	fmt.Fprintf(tw, "  spawn failures\t%d\n", r.Stats.SpawnFailures)
	fmt.Fprintf(tw, "  jobs dispatched\t%d\n", r.Stats.JobsDispatched)
	fmt.Fprintf(tw, "  results received\t%d\n", r.Stats.ResultsReceived)
	fmt.Fprintf(tw, "  results merged\t%d\n", r.Stats.ResultsMerged)
	fmt.Fprintf(tw, "  inline merged\t%d\n", r.Stats.InlineMerged)
	fmt.Fprintf(tw, "  duplicates dropped\t%d\n", r.Stats.DuplicatesDropped)
	fmt.Fprintf(tw, "  retries\t%d\n", r.Stats.Retries)
	fmt.Fprintf(tw, "  speculative retries\t%d\n", r.Stats.SpeculativeRetries)
	fmt.Fprintf(tw, "  bad frames\t%d\n", r.Stats.BadFrames)
	fmt.Fprintf(tw, "  degraded in-process\t%v\n", r.Stats.Degraded)
	fmt.Fprintf(tw, "  quarantined\t%d\n", len(r.Quarantined))
	tw.Flush()
	for _, q := range r.Quarantined {
		fmt.Fprintf(w, "  quarantined job %d after %d attempts:\n", q.Key, q.Attempts)
		for _, e := range q.Errs {
			fmt.Fprintf(w, "    - %s\n", e)
		}
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(w, "  AUDIT VIOLATIONS (%d):\n", len(r.Violations))
		for _, s := range r.Violations {
			fmt.Fprintf(w, "    - %s\n", s)
		}
	}
}
