package fleet

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
)

// procTransport is one worker OS process: frames flow over the child's
// stdin/stdout, Kill is SIGKILL, Wait reaps. The parent owns the pipes
// (plain os.Pipe, not exec's managed pipes), so Kill can snap them
// while a reader goroutine is mid-read without racing exec.Wait's
// internal cleanup.
type procTransport struct {
	cmd  *exec.Cmd
	outR *os.File // parent reads worker stdout here
	inW  *os.File // parent writes worker stdin here
	once sync.Once
}

func (t *procTransport) Read(p []byte) (int, error)  { return t.outR.Read(p) }
func (t *procTransport) Write(p []byte) (int, error) { return t.inW.Write(p) }

func (t *procTransport) Kill() {
	t.once.Do(func() {
		t.inW.Close()
		t.outR.Close()
		if t.cmd.Process != nil {
			t.cmd.Process.Kill()
		}
	})
}

func (t *procTransport) Wait() error { return t.cmd.Wait() }

// ProcSpawner returns a Spawner that starts each worker by executing
// argv0 with args — typically this binary's own path with a -worker
// flag. The child's stderr passes through to the parent's, so worker
// diagnostics stay visible; the frame protocol owns stdin/stdout.
func ProcSpawner(argv0 string, args ...string) Spawner {
	return func(id int) (Transport, error) {
		inR, inW, err := os.Pipe()
		if err != nil {
			return nil, fmt.Errorf("fleet: spawning worker %d: %w", id, err)
		}
		outR, outW, err := os.Pipe()
		if err != nil {
			inR.Close()
			inW.Close()
			return nil, fmt.Errorf("fleet: spawning worker %d: %w", id, err)
		}
		cmd := exec.Command(argv0, args...)
		cmd.Stdin = inR
		cmd.Stdout = outW
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			inR.Close()
			inW.Close()
			outR.Close()
			outW.Close()
			return nil, fmt.Errorf("fleet: spawning worker %d: %w", id, err)
		}
		// The child holds its own copies of these ends now.
		inR.Close()
		outW.Close()
		return &procTransport{cmd: cmd, outR: outR, inW: inW}, nil
	}
}
