package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"limitsim/internal/telemetry"
)

// Frame payload shapes. Every frame crossing the pipe is validated by
// telemetry.ReadFrame (length, version, type) before these decode; a
// payload that then fails to decode is a protocol error, handled as a
// worker/coordinator failure, never a silent skip.
type configPayload struct {
	Space SpaceSpec `json:"space"`
	// HeartbeatMs is how often a busy worker must heartbeat.
	HeartbeatMs int `json:"heartbeat_ms"`
	// Chaos is the worker self-sabotage config (zero = disabled).
	Chaos ChaosConfig `json:"chaos"`
}

type readyPayload struct {
	Pid  int `json:"pid"`
	Jobs int `json:"jobs"`
}

type jobPayload struct {
	Key     int `json:"key"`
	Attempt int `json:"attempt"`
}

type resultPayload struct {
	Key     int             `json:"key"`
	Attempt int             `json:"attempt"`
	Payload json.RawMessage `json:"payload"`
}

type jobErrPayload struct {
	Key     int    `json:"key"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error"`
}

type heartbeatPayload struct {
	Key int `json:"key"`
	Seq int `json:"seq"`
}

// ErrChaosKill is returned by WorkerMain when worker self-chaos
// decides this worker dies abruptly. The process entry point turns it
// into an unclean exit; the in-process test spawner turns it into a
// snapped pipe. Either way the coordinator sees the same thing a
// SIGKILL produces: a dead connection with a job in flight.
var ErrChaosKill = errors.New("fleet: worker killed by self-chaos")

// WorkerMain is the worker side of the protocol: read the config
// frame, build the job space, then serve job frames until shutdown.
// It is transport-agnostic — cmd/limit-fleet runs it over the real
// process's stdin/stdout, tests run it over in-memory pipes — and all
// chaos sabotage happens here, so a chaos worker misbehaves
// identically in both settings.
func WorkerMain(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	out := &frameWriter{w: w}

	typ, data, err := telemetry.ReadFrame(br)
	if err != nil {
		return fmt.Errorf("fleet worker: reading config frame: %w", err)
	}
	if typ != "config" {
		return fmt.Errorf("fleet worker: first frame is %q, want config", typ)
	}
	var cfg configPayload
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("fleet worker: config frame: %w", err)
	}
	space, err := BuildSpace(cfg.Space)
	if err != nil {
		return fmt.Errorf("fleet worker: %w", err)
	}
	if err := out.write("ready", readyPayload{Pid: os.Getpid(), Jobs: space.NumJobs()}); err != nil {
		return err
	}

	hb := newHeartbeater(out, time.Duration(cfg.HeartbeatMs)*time.Millisecond)
	defer hb.stop()

	for {
		typ, data, err := telemetry.ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator hung up; a clean end of service
			}
			return fmt.Errorf("fleet worker: %w", err)
		}
		switch typ {
		case "job":
			var job jobPayload
			if err := json.Unmarshal(data, &job); err != nil {
				return fmt.Errorf("fleet worker: job frame: %w", err)
			}
			if err := serveJob(space, job, cfg.Chaos, out, hb); err != nil {
				return err
			}
		case "shutdown":
			return nil
		default:
			return fmt.Errorf("fleet worker: unexpected frame %q", typ)
		}
	}
}

// serveJob runs one job under the worker's chaos fate and writes the
// result (or sabotage) back.
func serveJob(space JobSpace, job jobPayload, chaos ChaosConfig, out *frameWriter, hb *heartbeater) error {
	switch chaos.fateFor(job.Key, job.Attempt) {
	case fateCrash:
		// Die without a word, job in flight — the SIGKILL shape.
		return ErrChaosKill
	case fateStall:
		// Hang: no heartbeats, no result, until well past the
		// coordinator's heartbeat timeout. The coordinator must kill us;
		// if it somehow doesn't, fall through and serve the job so a
		// misconfigured timeout degrades to slowness, not deadlock.
		time.Sleep(time.Duration(chaos.StallMs) * time.Millisecond)
	case fateSlow:
		// Slow, not hung: heartbeats flow while we sleep, so the
		// coordinator speculatively retries instead of killing us, and
		// our eventual result races the retry's.
		hb.active(job.Key)
		time.Sleep(time.Duration(chaos.SlowMs) * time.Millisecond)
	case fateTrunc:
		// Serve the job but tear the result frame halfway through —
		// exactly the torn write a worker dying mid-flush produces.
		payload, err := runJob(space, job.Key)
		if err != nil {
			return ErrChaosKill
		}
		var buf bytes.Buffer
		if err := telemetry.WriteFrame(&buf, "result", resultPayload{
			Key: job.Key, Attempt: job.Attempt, Payload: payload,
		}); err != nil {
			return err
		}
		out.writeRaw(buf.Bytes()[:buf.Len()/2])
		return ErrChaosKill
	}

	hb.active(job.Key)
	payload, err := runJob(space, job.Key)
	hb.idle()
	if err != nil {
		return out.write("joberr", jobErrPayload{Key: job.Key, Attempt: job.Attempt, Error: err.Error()})
	}
	return out.write("result", resultPayload{Key: job.Key, Attempt: job.Attempt, Payload: payload})
}

// runJob executes the job, converting a panic into an error the same
// way internal/runner does: one broken run must not take the worker's
// other claims down with it un-reported.
func runJob(space JobSpace, key int) (payload []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("job %d panicked: %v\n%s", key, v, debug.Stack())
		}
	}()
	if key < 0 || key >= space.NumJobs() {
		return nil, fmt.Errorf("job key %d outside space [0,%d)", key, space.NumJobs())
	}
	return space.Run(key, 0)
}

// frameWriter serializes frame writes from the serve loop and the
// heartbeat goroutine.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) write(typ string, data any) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return telemetry.WriteFrame(fw.w, typ, data)
}

// writeRaw emits pre-marshalled (possibly deliberately torn) bytes.
func (fw *frameWriter) writeRaw(b []byte) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.w.Write(b)
}

// heartbeater emits heartbeat frames for the active job on a fixed
// period. The simulation itself is single-threaded and uninterruptible
// mid-job, so liveness comes from this side goroutine: as long as the
// process is alive and scheduled, beats flow; a stalled or dead worker
// goes silent, which is precisely the coordinator's hang signal.
type heartbeater struct {
	out    *frameWriter
	every  time.Duration
	mu     sync.Mutex
	key    int
	seq    int
	doneCh chan struct{}
}

func newHeartbeater(out *frameWriter, every time.Duration) *heartbeater {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	hb := &heartbeater{out: out, every: every, key: -1, doneCh: make(chan struct{})}
	go hb.loop()
	return hb
}

func (hb *heartbeater) loop() {
	t := time.NewTicker(hb.every)
	defer t.Stop()
	for {
		select {
		case <-hb.doneCh:
			return
		case <-t.C:
			hb.mu.Lock()
			key, beat := hb.key, hb.key >= 0
			if beat {
				hb.seq++
			}
			seq := hb.seq
			hb.mu.Unlock()
			if beat {
				// A write error means the coordinator is gone; the serve
				// loop will find out on its next read.
				hb.out.write("heartbeat", heartbeatPayload{Key: key, Seq: seq})
			}
		}
	}
}

func (hb *heartbeater) active(key int) {
	hb.mu.Lock()
	hb.key = key
	hb.mu.Unlock()
}

func (hb *heartbeater) idle() {
	hb.mu.Lock()
	hb.key = -1
	hb.mu.Unlock()
}

func (hb *heartbeater) stop() {
	select {
	case <-hb.doneCh:
	default:
		close(hb.doneCh)
	}
}
