// Package usync is the userspace synchronization library of the
// simulated world — the analogue of the pthread layer the reproduced
// paper instruments in MySQL, Apache and Firefox. It provides a
// futex-based mutex (Drepper-style three-state: 0 free, 1 locked,
// 2 locked-with-waiters) with a configurable spin phase, a pure
// spinlock, and a generation-counting futex barrier.
//
// All primitives are code emitters over isa.Builder and clobber
// R0..R4 (documented per function). Lock words are addressed through
// ref.Ref, so a lock can be a fixed global (ref.Absolute) or picked
// dynamically from a lock array through a register
// (ref.RegRel(reg, 0) with reg outside R0..R3) — the latter is how the
// MySQL model's per-table locks work.
package usync

import (
	"fmt"
	"sync/atomic"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/ref"
)

// labelSeq is atomic: programs are built concurrently by the runner's
// worker pool. Label numbering never reaches generated program bytes.
var labelSeq atomic.Int64

func uniq(prefix string) string {
	return fmt.Sprintf("usync.%s.%d", prefix, labelSeq.Add(1))
}

// EmitLock emits the futex-mutex acquire path for the lock word at
// `word`, spinning up to `spins` times before parking. Clobbers
// R0..R3. A register-relative word's base register must be outside
// R0..R3 and is preserved.
//
// Fast path: one CAS(0→1). Contended path: bounded spinning on plain
// loads with CAS retries, then marking the lock contended (→2) with an
// exchange loop and parking on futex_wait until the word leaves 2. A
// thread acquiring after parking sets the word to 2 (not 1), so the
// holder's release always wakes a parked waiter — the standard futex
// mutex protocol.
func EmitLock(b *isa.Builder, word ref.Ref, spins int) {
	done := uniq("lockdone")
	spin := uniq("spin")
	trylock := uniq("trylock")
	slow := uniq("slow")
	xchg := uniq("xchg")

	word.EmitLea(b, isa.R0)
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 1)
	b.CAS(isa.R3, isa.R0, isa.R1, isa.R2) // try 0 -> 1
	b.Br(isa.CondEQ, isa.R3, isa.R1, done)

	b.MovImm(isa.R2, 0) // spin counter
	b.Label(spin)
	b.Load(isa.R3, isa.R0, 0)
	b.Br(isa.CondEQ, isa.R3, isa.R1, trylock) // observed free
	b.Compute(3)                              // pause
	b.AddImm(isa.R2, isa.R2, 1)
	b.MovImm(isa.R3, int64(spins))
	b.Br(isa.CondLT, isa.R2, isa.R3, spin)
	b.Jmp(slow)

	b.Label(trylock)
	b.MovImm(isa.R2, 1)
	b.CAS(isa.R3, isa.R0, isa.R1, isa.R2)
	b.Br(isa.CondEQ, isa.R3, isa.R1, done)
	b.MovImm(isa.R2, 0)
	b.Jmp(spin)

	// Slow path: c = xchg(word, 2); if c == 0 we own it; else park and
	// retry the exchange on wake.
	b.Label(slow)
	b.MovImm(isa.R2, 2)
	b.Label(xchg)
	b.Load(isa.R3, isa.R0, 0)
	b.CAS(isa.R1, isa.R0, isa.R3, isa.R2) // if word==R3: word=2; R1=old
	b.Br(isa.CondNE, isa.R1, isa.R3, xchg)
	b.MovImm(isa.R3, 0)
	b.Br(isa.CondEQ, isa.R1, isa.R3, done) // old was 0: acquired (as 2)
	b.MovImm(isa.R1, 2)
	b.Syscall(kernel.SysFutexWait) // R0=addr, R1=expected 2
	word.EmitLea(b, isa.R0)        // restore clobbered addr
	b.MovImm(isa.R2, 2)
	b.Jmp(xchg)

	b.Label(done)
}

// EmitUnlock emits the futex-mutex release path. Clobbers R0..R3.
//
// Decrement the word: 1→0 means no waiters; 2→1 means waiters may be
// parked, so store 0 and wake one.
func EmitUnlock(b *isa.Builder, word ref.Ref) {
	done := uniq("unlockdone")
	word.EmitLea(b, isa.R0)
	b.MovImm(isa.R1, -1)
	b.XAdd(isa.R3, isa.R0, isa.R1) // R3 = old
	b.MovImm(isa.R1, 1)
	b.Br(isa.CondEQ, isa.R3, isa.R1, done) // was 1: now free, nobody parked
	b.MovImm(isa.R1, 0)
	b.Store(isa.R0, 0, isa.R1) // word = 0
	b.MovImm(isa.R1, 1)
	b.Syscall(kernel.SysFutexWake) // wake one
	b.Label(done)
}

// Mutex is a fixed-address futex mutex (a process-global lock).
type Mutex struct {
	// Addr is the lock word's address.
	Addr uint64
	// Spins is the acquire path's spin budget before parking.
	Spins int
}

// NewMutex allocates a mutex on its own cache line (to avoid false
// sharing between locks in lock arrays).
func NewMutex(space *mem.Space, spins int) Mutex {
	m := Mutex{Addr: space.AllocWords(8), Spins: spins}
	return m
}

// Ref returns the lock word reference.
func (m Mutex) Ref() ref.Ref { return ref.Absolute(m.Addr) }

// EmitLock emits the acquire path. Clobbers R0..R3.
func (m Mutex) EmitLock(b *isa.Builder) { EmitLock(b, m.Ref(), m.Spins) }

// EmitUnlock emits the release path. Clobbers R0..R3.
func (m Mutex) EmitUnlock(b *isa.Builder) { EmitUnlock(b, m.Ref()) }

// LockArray is a contiguous array of futex mutexes, one cache line
// apart, indexed dynamically by generated code — the shape of the
// MySQL model's per-table lock table.
type LockArray struct {
	// Base is the first lock word's address.
	Base uint64
	// N is the number of locks.
	N int
	// Spins is the per-lock spin budget.
	Spins int
}

// LineBytes is the spacing between adjacent lock words.
const LineBytes = 64

// NewLockArray allocates n cache-line-spaced locks.
func NewLockArray(space *mem.Space, n, spins int) LockArray {
	base := space.Alloc(uint64(n * LineBytes))
	// Alloc is 8-byte aligned; line spacing just needs constant stride.
	return LockArray{Base: base, N: n, Spins: spins}
}

// WordRef returns a reference to lock i's word (static index).
func (a LockArray) WordRef(i int) ref.Ref {
	return ref.Absolute(a.Base + uint64(i)*LineBytes)
}

// EmitComputeAddr emits addrDst = Base + idx*LineBytes for a dynamic
// index in idx. Clobbers scratch; addrDst and scratch must be outside
// R0..R3 so the address survives EmitLock.
func (a LockArray) EmitComputeAddr(b *isa.Builder, addrDst, idx, scratch isa.Reg) {
	b.MovImm(scratch, LineBytes)
	b.Mul(addrDst, idx, scratch)
	b.AddImm(addrDst, addrDst, int64(a.Base))
}

// SpinMutex is a test-and-set spinlock with no kernel involvement,
// kept for ablations: it wastes cycles under contention exactly the
// way the paper's microbenchmarks show.
type SpinMutex struct {
	Addr uint64
}

// NewSpinMutex allocates a spinlock.
func NewSpinMutex(space *mem.Space) SpinMutex {
	return SpinMutex{Addr: space.AllocWords(8)}
}

// EmitLock emits the spin-acquire. Clobbers R0..R3.
func (m SpinMutex) EmitLock(b *isa.Builder) {
	retry := uniq("spintry")
	done := uniq("spindone")
	b.MovImm(isa.R0, int64(m.Addr))
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 1)
	b.Label(retry)
	b.CAS(isa.R3, isa.R0, isa.R1, isa.R2)
	b.Br(isa.CondEQ, isa.R3, isa.R1, done)
	b.Compute(3) // pause
	b.Jmp(retry)
	b.Label(done)
}

// EmitUnlock emits the release. Clobbers R0, R1.
func (m SpinMutex) EmitUnlock(b *isa.Builder) {
	b.MovImm(isa.R0, int64(m.Addr))
	b.MovImm(isa.R1, 0)
	b.Store(isa.R0, 0, isa.R1)
}

// Barrier is a generation-counting futex barrier for a fixed number of
// participants.
type Barrier struct {
	// CountAddr and GenAddr are the arrival counter and generation
	// words.
	CountAddr uint64
	GenAddr   uint64
	// N is the participant count.
	N int
}

// NewBarrier allocates a barrier for n participants.
func NewBarrier(space *mem.Space, n int) Barrier {
	return Barrier{CountAddr: space.AllocWords(8), GenAddr: space.AllocWords(8), N: n}
}

// EmitWait emits one barrier episode. Clobbers R0..R4.
//
// Each arrival records the current generation, increments the counter,
// and — unless it is the last — parks on the generation word until it
// changes. The last arrival resets the counter, bumps the generation
// and wakes everyone. The generation read precedes the increment, so a
// stale FutexWait returns immediately rather than missing the wake.
func (ba Barrier) EmitWait(b *isa.Builder) {
	wait := uniq("barwait")
	last := uniq("barlast")
	done := uniq("bardone")

	b.MovImm(isa.R0, int64(ba.GenAddr))
	b.Load(isa.R4, isa.R0, 0) // my generation
	b.MovImm(isa.R0, int64(ba.CountAddr))
	b.MovImm(isa.R1, 1)
	b.XAdd(isa.R2, isa.R0, isa.R1) // old count
	b.MovImm(isa.R3, int64(ba.N-1))
	b.Br(isa.CondEQ, isa.R2, isa.R3, last)

	b.Label(wait)
	b.MovImm(isa.R0, int64(ba.GenAddr))
	b.Load(isa.R1, isa.R0, 0)
	b.Br(isa.CondNE, isa.R1, isa.R4, done) // generation advanced
	b.Mov(isa.R1, isa.R4)
	b.Syscall(kernel.SysFutexWait) // R0=genaddr, R1=my gen
	b.Jmp(wait)

	b.Label(last)
	b.MovImm(isa.R0, int64(ba.CountAddr))
	b.MovImm(isa.R1, 0)
	b.Store(isa.R0, 0, isa.R1)
	b.MovImm(isa.R0, int64(ba.GenAddr))
	b.AddImm(isa.R4, isa.R4, 1)
	b.Store(isa.R0, 0, isa.R4)
	b.MovImm(isa.R1, 1<<30) // wake all
	b.Syscall(kernel.SysFutexWake)
	b.Label(done)
}
