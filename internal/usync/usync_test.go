package usync_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/ref"
	"limitsim/internal/usync"
)

// mustRun executes all spawned threads to completion.
func mustRun(t *testing.T, m *machine.Machine) machine.RunResult {
	t.Helper()
	res := m.Run(machine.RunLimits{MaxSteps: 500_000_000})
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}
	if res.Deadlocked {
		t.Fatalf("deadlock")
	}
	if !res.AllDone {
		t.Fatalf("incomplete: %v", res)
	}
	return res
}

// buildIncrementers creates a program whose threads each perform iters
// deliberately racy read-modify-write increments of a shared word
// under the given lock emitters. If mutual exclusion holds the final
// value is exactly threads*iters.
func buildIncrementers(space *mem.Space, shared uint64, iters int64,
	lock func(b *isa.Builder), unlock func(b *isa.Builder)) *isa.Program {
	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, iters)
	b.Label("loop")
	lock(b)
	// Racy increment: load, a long gap inviting preemption, store.
	b.MovImm(isa.R10, int64(shared))
	b.Load(isa.R11, isa.R10, 0)
	b.Compute(120)
	b.AddImm(isa.R11, isa.R11, 1)
	b.Store(isa.R10, 0, isa.R11)
	unlock(b)
	b.Compute(30)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	return b.MustBuild()
}

func contendedConfig() machine.Config {
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 700 // preempt inside critical sections frequently
	return machine.Config{NumCores: 4, Kernel: kcfg}
}

func TestMutexMutualExclusion(t *testing.T) {
	space := mem.NewSpace()
	shared := space.AllocWords(1)
	mu := usync.NewMutex(space, 40)
	const threads, iters = 6, 100

	prog := buildIncrementers(space, shared, iters, mu.EmitLock, mu.EmitUnlock)
	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(prog, space)
	for i := 0; i < threads; i++ {
		m.Kern.Spawn(proc, "inc", 0, uint64(i+1))
	}
	mustRun(t, m)

	if got := space.Read64(shared); got != threads*iters {
		t.Fatalf("shared = %d, want %d: mutual exclusion violated", got, threads*iters)
	}
	if got := space.Read64(mu.Addr); got != 0 {
		t.Errorf("lock word ends at %d, want 0 (unlocked)", got)
	}
}

func TestMutexParksUnderContention(t *testing.T) {
	space := mem.NewSpace()
	shared := space.AllocWords(1)
	mu := usync.NewMutex(space, 4) // tiny spin budget forces futex parking
	prog := buildIncrementers(space, shared, 60, mu.EmitLock, mu.EmitUnlock)

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(prog, space)
	for i := 0; i < 6; i++ {
		m.Kern.Spawn(proc, "inc", 0, uint64(i+1))
	}
	mustRun(t, m)

	if got := space.Read64(shared); got != 360 {
		t.Fatalf("shared = %d, want 360", got)
	}
}

func TestWithoutLockRacesLoseUpdates(t *testing.T) {
	// Sanity check that the test harness actually exposes the race:
	// the same increment loop with no lock must lose updates.
	space := mem.NewSpace()
	shared := space.AllocWords(1)
	nop := func(*isa.Builder) {}
	prog := buildIncrementers(space, shared, 100, nop, nop)

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(prog, space)
	for i := 0; i < 6; i++ {
		m.Kern.Spawn(proc, "racer", 0, uint64(i+1))
	}
	mustRun(t, m)

	if got := space.Read64(shared); got >= 600 {
		t.Fatalf("shared = %d; unlocked racers should lose updates (harness not racy enough)", got)
	}
}

func TestSpinMutexMutualExclusion(t *testing.T) {
	space := mem.NewSpace()
	shared := space.AllocWords(1)
	mu := usync.NewSpinMutex(space)
	prog := buildIncrementers(space, shared, 60, mu.EmitLock, mu.EmitUnlock)

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(prog, space)
	for i := 0; i < 4; i++ {
		m.Kern.Spawn(proc, "inc", 0, uint64(i+1))
	}
	mustRun(t, m)

	if got := space.Read64(shared); got != 240 {
		t.Fatalf("shared = %d, want 240", got)
	}
}

func TestLockArrayDynamicIndexing(t *testing.T) {
	space := mem.NewSpace()
	arr := usync.NewLockArray(space, 8, 20)
	shared := space.AllocWords(8) // one counter per lock

	// Each thread hammers a lock chosen by rand&7, incrementing that
	// lock's counter; totals must sum to threads*iters.
	const threads, iters = 4, 80
	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, iters)
	b.Label("loop")
	b.Rand(isa.R11)
	b.MovImm(isa.R10, 7)
	b.And(isa.R11, isa.R11, isa.R10)
	arr.EmitComputeAddr(b, isa.R13, isa.R11, isa.R10)
	usync.EmitLock(b, ref.RegRel(isa.R13, 0), 20)
	// counter addr = shared + idx*8
	b.MovImm(isa.R10, 8)
	b.Mul(isa.R10, isa.R11, isa.R10)
	b.AddImm(isa.R10, isa.R10, int64(shared))
	b.Load(isa.R12, isa.R10, 0)
	b.Compute(40)
	b.AddImm(isa.R12, isa.R12, 1)
	b.Store(isa.R10, 0, isa.R12)
	usync.EmitUnlock(b, ref.RegRel(isa.R13, 0))
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	for i := 0; i < threads; i++ {
		m.Kern.Spawn(proc, "w", 0, uint64(100+i))
	}
	mustRun(t, m)

	var sum uint64
	for i := 0; i < 8; i++ {
		sum += space.Read64(shared + uint64(i)*8)
	}
	if sum != threads*iters {
		t.Fatalf("per-lock counters sum to %d, want %d", sum, threads*iters)
	}
}

func TestBarrierPhases(t *testing.T) {
	// Each thread writes its slot in phase 1, barriers, then sums all
	// slots. Every thread must observe the complete phase-1 state.
	const threads = 5
	space := mem.NewSpace()
	bar := usync.NewBarrier(space, threads)
	slots := space.AllocWords(threads)
	sums := space.AllocWords(threads)

	b := isa.NewBuilder()
	// R14 = my index (set at spawn).
	b.MovImm(isa.R10, 8)
	b.Mul(isa.R10, isa.R14, isa.R10)
	b.AddImm(isa.R10, isa.R10, int64(slots))
	b.AddImm(isa.R11, isa.R14, 1) // write idx+1
	b.Store(isa.R10, 0, isa.R11)
	bar.EmitWait(b)
	// Sum all slots.
	b.MovImm(isa.R10, int64(slots))
	b.MovImm(isa.R11, 0) // sum
	b.MovImm(isa.R12, 0) // i
	b.MovImm(isa.R13, threads)
	b.Label("sum")
	b.Load(isa.R5, isa.R10, 0)
	b.Add(isa.R11, isa.R11, isa.R5)
	b.AddImm(isa.R10, isa.R10, 8)
	b.AddImm(isa.R12, isa.R12, 1)
	b.Br(isa.CondLT, isa.R12, isa.R13, "sum")
	// Store my observed sum.
	b.MovImm(isa.R10, 8)
	b.Mul(isa.R10, isa.R14, isa.R10)
	b.AddImm(isa.R10, isa.R10, int64(sums))
	b.Store(isa.R10, 0, isa.R11)
	b.Halt()

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	for i := 0; i < threads; i++ {
		th := m.Kern.Spawn(proc, "b", 0, uint64(i+1))
		th.SetReg(isa.R14, uint64(i))
	}
	mustRun(t, m)

	want := uint64(threads * (threads + 1) / 2)
	for i := 0; i < threads; i++ {
		if got := space.Read64(sums + uint64(i)*8); got != want {
			t.Errorf("thread %d observed sum %d, want %d (barrier leaked)", i, got, want)
		}
	}
}

func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	// Threads pass the same barrier several times; the generation
	// counter must advance once per episode and nobody may wedge.
	const threads, rounds = 4, 6
	space := mem.NewSpace()
	bar := usync.NewBarrier(space, threads)

	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, rounds)
	b.Label("loop")
	bar.EmitWait(b)
	b.Compute(50)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()

	m := machine.New(contendedConfig())
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	for i := 0; i < threads; i++ {
		m.Kern.Spawn(proc, "b", 0, uint64(i+1))
	}
	mustRun(t, m)

	if gen := space.Read64(bar.GenAddr); gen != rounds {
		t.Errorf("generation = %d, want %d", gen, rounds)
	}
	if cnt := space.Read64(bar.CountAddr); cnt != 0 {
		t.Errorf("count = %d, want 0 after final episode", cnt)
	}
}

func TestMutexStressManyThreadsManyCores(t *testing.T) {
	// Heavier configuration: 12 threads on 3 cores, aggressive
	// preemption, small spin budget. The counter must still be exact.
	space := mem.NewSpace()
	shared := space.AllocWords(1)
	mu := usync.NewMutex(space, 8)
	const threads, iters = 12, 50
	prog := buildIncrementers(space, shared, iters, mu.EmitLock, mu.EmitUnlock)

	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 400
	m := machine.New(machine.Config{NumCores: 3, Kernel: kcfg})
	proc := m.Kern.NewProcess(prog, space)
	for i := 0; i < threads; i++ {
		m.Kern.Spawn(proc, "inc", 0, uint64(i+1))
	}
	mustRun(t, m)

	if got := space.Read64(shared); got != threads*iters {
		t.Fatalf("shared = %d, want %d", got, threads*iters)
	}
	if m.Kern.Stats.Preemptions == 0 {
		t.Error("stress config should preempt")
	}
}
