// Package ref provides memory references for generated code: an
// address that is either absolute (known at assembly time) or
// register-relative (a per-thread base register plus an offset).
// Register-relative references are how threads that share one program
// body address their thread-local data — counter tables, perf fds,
// measurement record buffers — with the base register initialized from
// the thread's slot index at spawn time.
package ref

import (
	"fmt"

	"limitsim/internal/isa"
)

// Ref is an 8-byte-aligned memory reference.
type Ref struct {
	abs    uint64
	reg    isa.Reg
	off    uint64
	hasReg bool
}

// Absolute returns a reference to a fixed address.
func Absolute(addr uint64) Ref { return Ref{abs: addr} }

// RegRel returns a reference to Regs[reg] + off.
func RegRel(reg isa.Reg, off uint64) Ref {
	return Ref{reg: reg, off: off, hasReg: true}
}

// IsRegRel reports whether the reference is register-relative.
func (r Ref) IsRegRel() bool { return r.hasReg }

// Reg returns the base register of a register-relative reference.
func (r Ref) Reg() isa.Reg {
	if !r.hasReg {
		panic("ref: Reg() on absolute reference")
	}
	return r.reg
}

// Word returns the reference displaced by i 8-byte words.
func (r Ref) Word(i int) Ref {
	if r.hasReg {
		r.off += uint64(i) * 8
	} else {
		r.abs += uint64(i) * 8
	}
	return r
}

// Resolve returns the concrete address given the base register's value
// (ignored for absolute references). Host-side analysis uses it to
// read back per-thread data after a run.
func (r Ref) Resolve(regVal uint64) uint64 {
	if r.hasReg {
		return regVal + r.off
	}
	return r.abs
}

// EmitLoad emits dst = mem64[ref]. Absolute references clobber dst as
// their own scratch (movimm dst, addr; load dst, [dst]) so no extra
// register is needed.
func (r Ref) EmitLoad(b *isa.Builder, dst isa.Reg) {
	if r.hasReg {
		b.Load(dst, r.reg, int64(r.off))
		return
	}
	b.MovImm(dst, int64(r.abs))
	b.Load(dst, dst, 0)
}

// EmitStore emits mem64[ref] = src, using scratch for absolute
// references (scratch must differ from src).
func (r Ref) EmitStore(b *isa.Builder, src, scratch isa.Reg) {
	if r.hasReg {
		b.Store(r.reg, int64(r.off), src)
		return
	}
	if scratch == src {
		panic("ref: EmitStore scratch must differ from src")
	}
	b.MovImm(scratch, int64(r.abs))
	b.Store(scratch, 0, src)
}

// EmitLea emits dst = address of ref.
func (r Ref) EmitLea(b *isa.Builder, dst isa.Reg) {
	if r.hasReg {
		b.AddImm(dst, r.reg, int64(r.off))
		return
	}
	b.MovImm(dst, int64(r.abs))
}

func (r Ref) String() string {
	if r.hasReg {
		return fmt.Sprintf("[%s+%d]", r.reg, r.off)
	}
	return fmt.Sprintf("[%#x]", r.abs)
}
