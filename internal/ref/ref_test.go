package ref

import (
	"testing"

	"limitsim/internal/cpu"
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

func runProg(t *testing.T, b *isa.Builder, setup func(*cpu.Context)) *cpu.Context {
	t.Helper()
	b.Halt()
	core := cpu.NewCore(0, pmu.DefaultFeatures())
	ctx := &cpu.Context{Prog: b.MustBuild(), Mem: mem.NewSpace()}
	if setup != nil {
		setup(ctx)
	}
	for i := 0; i < 1000; i++ {
		if res := core.Step(ctx); res.Trap != cpu.TrapNone {
			if res.Trap != cpu.TrapHalt {
				t.Fatalf("trap %v: %s", res.Trap, res.Fault)
			}
			return ctx
		}
	}
	t.Fatal("no halt")
	return nil
}

func TestAbsoluteLoadStore(t *testing.T) {
	r := Absolute(0x2000)
	b := isa.NewBuilder()
	b.MovImm(isa.R5, 77)
	r.EmitStore(b, isa.R5, isa.R6)
	r.EmitLoad(b, isa.R7)
	ctx := runProg(t, b, nil)
	if ctx.Regs[isa.R7] != 77 {
		t.Errorf("round trip got %d", ctx.Regs[isa.R7])
	}
}

func TestRegRelLoadStore(t *testing.T) {
	r := RegRel(isa.R15, 16)
	b := isa.NewBuilder()
	b.MovImm(isa.R5, 88)
	r.EmitStore(b, isa.R5, isa.R6)
	r.EmitLoad(b, isa.R7)
	ctx := runProg(t, b, func(c *cpu.Context) { c.Regs[isa.R15] = 0x3000 })
	if ctx.Regs[isa.R7] != 88 {
		t.Errorf("round trip got %d", ctx.Regs[isa.R7])
	}
	if got := ctx.Mem.Read64(0x3010); got != 88 {
		t.Errorf("value landed at wrong address; [0x3010]=%d", got)
	}
}

func TestWordOffsets(t *testing.T) {
	a := Absolute(0x1000).Word(3)
	if got := a.Resolve(0); got != 0x1018 {
		t.Errorf("absolute Word(3) resolves %#x", got)
	}
	r := RegRel(isa.R14, 8).Word(2)
	if got := r.Resolve(0x5000); got != 0x5018 {
		t.Errorf("regrel Word(2) resolves %#x", got)
	}
	// Word must not mutate the receiver.
	base := Absolute(0x1000)
	_ = base.Word(5)
	if base.Resolve(0) != 0x1000 {
		t.Error("Word mutated its receiver")
	}
}

func TestEmitLea(t *testing.T) {
	b := isa.NewBuilder()
	Absolute(0x7000).EmitLea(b, isa.R5)
	RegRel(isa.R15, 24).EmitLea(b, isa.R6)
	ctx := runProg(t, b, func(c *cpu.Context) { c.Regs[isa.R15] = 0x100 })
	if ctx.Regs[isa.R5] != 0x7000 {
		t.Errorf("absolute lea %#x", ctx.Regs[isa.R5])
	}
	if ctx.Regs[isa.R6] != 0x118 {
		t.Errorf("regrel lea %#x, want 0x118", ctx.Regs[isa.R6])
	}
}

func TestIsRegRelAndReg(t *testing.T) {
	if Absolute(1).IsRegRel() {
		t.Error("absolute claims regrel")
	}
	r := RegRel(isa.R12, 0)
	if !r.IsRegRel() || r.Reg() != isa.R12 {
		t.Error("regrel metadata wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reg() on absolute should panic")
		}
	}()
	Absolute(1).Reg()
}

func TestEmitStoreScratchCollisionPanics(t *testing.T) {
	b := isa.NewBuilder()
	defer func() {
		if recover() == nil {
			t.Error("scratch == src should panic")
		}
	}()
	Absolute(8).EmitStore(b, isa.R5, isa.R5)
}

func TestStrings(t *testing.T) {
	if Absolute(0x10).String() != "[0x10]" {
		t.Errorf("absolute string %q", Absolute(0x10).String())
	}
	if RegRel(isa.R3, 8).String() != "[R3+8]" {
		t.Errorf("regrel string %q", RegRel(isa.R3, 8).String())
	}
}
