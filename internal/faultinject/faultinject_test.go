package faultinject

import (
	"testing"

	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// sweepWorkload is one freshly built instance of the single-thread read
// loop used by the preemption sweep (a fresh memory space per run, so
// runs never share state).
type sweepWorkload struct {
	prog    *isa.Program
	space   *mem.Space
	buf     uint64
	regions [][2]int
	want    uint64
}

const (
	sweepIters = 50
	sweepK     = 20
)

func buildSweepWorkload() *sweepWorkload {
	w := &sweepWorkload{space: mem.NewSpace()}
	table := limit.AllocTable(w.space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	w.buf = w.space.AllocWords(sweepIters)
	e.EmitInit()
	b.MovImm(isa.R12, int64(w.buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(sweepK)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, sweepIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	e.EmitFinish()
	w.prog = b.MustBuild()
	w.regions = e.Regions()
	r := w.regions[0]
	w.want = uint64(sweepK) + uint64(r[1]-r[0])
	return w
}

// TestExhaustivePreemptionSweep forces a context switch at every single
// instruction boundary inside the read-critical regions — the strongest
// version of the paper's adversarial schedule — and asserts that the
// fixup patch keeps every measurement exact: zero invariant violations,
// every rewind landing on a region start, and every stored delta within
// the re-execution slack of its static cost.
func TestExhaustivePreemptionSweep(t *testing.T) {
	probe := buildSweepWorkload()
	if len(probe.regions) == 0 {
		t.Fatal("workload emitted no read-critical regions")
	}

	// The 9-bit write width folds every 512 instructions, so folds land
	// during the sweep; K is small so reads dominate execution.
	for _, region := range probe.regions {
		for pc := region[0]; pc < region[1]; pc++ {
			w := buildSweepWorkload()

			feats := pmu.DefaultFeatures()
			feats.WriteWidth = 9
			m := machine.New(machine.Config{
				NumCores: 1,
				PMU:      feats,
				Kernel:   kernel.DefaultConfig(),
			})

			inj := New(Config{})
			inj.ArmPreemptAt(pc)
			inj.Attach(m.Kern)

			chk := invariant.New(w.regions)
			chk.Attach(m.Kern)

			proc := m.Kern.NewProcess(w.prog, w.space)
			th := m.Kern.Spawn(proc, "sweep", 0, 7)

			res := m.Run(machine.RunLimits{MaxSteps: 5_000_000})
			if res.Err != nil {
				t.Fatalf("pc %d: run failed: %v", pc, res.Err)
			}
			if !res.AllDone {
				t.Fatalf("pc %d: run incomplete after %d steps", pc, res.Steps)
			}
			if inj.Armed() {
				t.Fatalf("pc %d: armed preemption never fired", pc)
			}
			if inj.Stats.ForcedPreemptions != 1 {
				t.Fatalf("pc %d: want exactly 1 forced preemption, got %d", pc, inj.Stats.ForcedPreemptions)
			}

			chk.Finalize(proc, m.Kern.Threads(), 0)
			for _, v := range chk.Violations() {
				t.Errorf("pc %d: invariant violation: %v", pc, v)
			}
			if chk.ReadsCompleted == 0 {
				t.Fatalf("pc %d: checker observed no completed reads", pc)
			}

			// A preemption strictly inside a region interrupts the read
			// mid-sequence; the fixup must have rewound it.
			if pc > region[0] && th.Stats.FixupRewinds == 0 {
				t.Errorf("pc %d: mid-region preemption produced no rewind", pc)
			}

			// Value oracle: a torn read would shift a delta by the
			// 2^9-cycle fold chunk, far beyond the re-execution slack.
			for i := 0; i < sweepIters; i++ {
				d := w.space.Read64(w.buf + uint64(i)*8)
				if d < w.want || d > w.want+128 {
					t.Errorf("pc %d: delta[%d] = %d outside [%d,%d]",
						pc, i, d, w.want, w.want+128)
				}
			}
		}
	}
}

// TestInjectorDeterminism replays one storm configuration twice with
// the same seed and requires identical fault counts — the property that
// makes a chaos campaign replayable.
func TestInjectorDeterminism(t *testing.T) {
	run := func() Stats {
		w := buildSweepWorkload()
		feats := pmu.DefaultFeatures()
		feats.WriteWidth = 9
		kcfg := kernel.DefaultConfig()
		kcfg.Seed = 42
		kcfg.Quantum = 10_000
		m := machine.New(machine.Config{NumCores: 2, PMU: feats, Kernel: kcfg})
		inj := New(Config{
			Seed:             99,
			PreemptInRegions: true,
			PreemptEvery:     101,
			SpuriousPMIEvery: 53,
			DelayPMI:         true,
			MigrationStorm:   true,
			FlushEvery:       211,
		})
		inj.SetRegions(w.regions)
		inj.SetCores(2)
		inj.Attach(m.Kern)
		proc := m.Kern.NewProcess(w.prog, w.space)
		m.Kern.Spawn(proc, "det", 0, 7)
		if res := m.Run(machine.RunLimits{MaxSteps: 5_000_000}); res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		return inj.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different fault stats:\n%+v\n%+v", a, b)
	}
	if a.Total() == 0 {
		t.Error("storm configuration injected nothing")
	}
}

// TestRegionBudgetPreventsLivelock checks the forced-preemption budget:
// with preempt-at-every-boundary active inside regions, a fixup-enabled
// thread must still finish (each read completes after the budget runs
// dry) rather than rewinding forever.
func TestRegionBudgetPreventsLivelock(t *testing.T) {
	w := buildSweepWorkload()
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 9
	m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kernel.DefaultConfig()})
	inj := New(Config{Seed: 1, PreemptInRegions: true, RegionBudget: 4})
	inj.SetRegions(w.regions)
	inj.Attach(m.Kern)
	proc := m.Kern.NewProcess(w.prog, w.space)
	m.Kern.Spawn(proc, "budget", 0, 7)
	res := m.Run(machine.RunLimits{MaxSteps: 5_000_000})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !res.AllDone {
		t.Fatal("preempt-every-boundary livelocked despite the region budget")
	}
	if inj.Stats.ForcedPreemptions == 0 {
		t.Error("no forced preemptions delivered")
	}
	for i := 0; i < sweepIters; i++ {
		d := w.space.Read64(w.buf + uint64(i)*8)
		if d < w.want || d > w.want+256 {
			t.Errorf("delta[%d] = %d outside [%d,%d]", i, d, w.want, w.want+256)
		}
	}
	_ = proc
}
