// Package faultinject deterministically injects adversarial schedules
// and interrupt timings into a running kernel through the kernel.Chaos
// hook set. It exists to attack the guarantee at the heart of the
// reproduced paper: that LiMiT's multi-instruction counter read
// sequence survives arbitrary preemption, migration and overflow
// folding without ever combining inconsistent halves.
//
// Every decision the injector makes comes from its own seeded xorshift
// generator, called at deterministic points of the simulation's event
// loop — so a campaign run is exactly replayable: same seed, same
// config, same faults, same outcome, bit for bit. That turns "we ran
// it under stress and nothing broke" into a checkable statement.
//
// The faults on offer:
//
//   - forced preemption at every instruction boundary inside the
//     registered read-critical regions (budgeted per region pass so a
//     rewinding thread cannot livelock);
//   - random preemption outside regions with probability 1/PreemptEvery;
//   - spurious overflow interrupts for counters that did not overflow;
//   - delayed and coalesced overflow interrupts: real PMI bits are
//     withheld for DelayBoundaries instruction boundaries (merging with
//     any that arrive meanwhile) before being serviced in one batch,
//     and are force-drained when the thread leaves the core so they are
//     never misattributed;
//   - migration storms: every enqueue lands on a random core;
//   - signal-delivery delays;
//   - TLB + full-cache flush storms.
//
// Narrowed counter widths — the remaining fault in the chaos matrix —
// are a PMU feature (pmu.Features.WriteWidth), configured by the
// campaign driver rather than injected here.
package faultinject

import (
	"math/bits"

	"limitsim/internal/kernel"
)

// Config selects which faults to inject and how hard.
type Config struct {
	// Seed drives the injector's private RNG.
	Seed uint64

	// PreemptInRegions forces a preemption after every instruction
	// boundary whose PC lies inside a registered region, up to
	// RegionBudget consecutive preemptions per region pass.
	PreemptInRegions bool
	// RegionBudget caps consecutive forced preemptions while a thread
	// stays inside regions; it refills whenever the thread executes
	// outside all regions. Without the cap, fixup rewind plus
	// preempt-on-every-boundary is a livelock. Default 8.
	RegionBudget int
	// PreemptEvery, when >0, randomly preempts a thread outside
	// regions with probability 1/PreemptEvery per boundary.
	PreemptEvery uint64

	// SpuriousPMIEvery, when >0, injects a spurious overflow interrupt
	// for a random hardware slot with probability 1/SpuriousPMIEvery
	// per boundary.
	SpuriousPMIEvery uint64
	// NumSlots is the PMU slot count spurious bits are drawn from
	// (default 4).
	NumSlots int

	// DelayPMI withholds real overflow interrupts for DelayBoundaries
	// instruction boundaries, coalescing any that arrive meanwhile.
	DelayPMI bool
	// DelayBoundaries is the withholding window (default 3).
	DelayBoundaries int

	// MigrationStorm redirects every enqueue to a random core.
	MigrationStorm bool

	// SignalDelayBoundaries, when >0, holds pending-signal delivery
	// for that many boundaries each time a signal becomes deliverable.
	SignalDelayBoundaries int

	// FlushEvery, when >0, flushes the executing core's TLB and entire
	// cache hierarchy with probability 1/FlushEvery per boundary.
	FlushEvery uint64

	// KillEvery, when >0, asynchronously kills the executing thread
	// with probability 1/KillEvery per boundary, exercising the full
	// exit/reclamation path at arbitrary points — including mid-read-
	// sequence.
	KillEvery uint64
	// KillClonesOnly restricts random kills to threads that were
	// cloned (ClonedFrom >= 0), so a storm cannot take down the
	// workload's root threads and stall the campaign.
	KillClonesOnly bool

	// CloneEvery, when >0, forces the executing thread to clone a
	// child at CloneEntry with probability 1/CloneEvery per boundary,
	// stressing counter inheritance and slot churn.
	CloneEvery uint64
	// CloneEntry is the program PC forced children start at. The
	// campaign points it at a short self-exiting stub.
	CloneEntry int
	// CloneBudget caps the total number of forced clones per run so a
	// storm terminates (default 64).
	CloneBudget int

	// VCpuPreemptInRegions forces a tenant-level (vCPU) preemption
	// after every instruction boundary inside a registered region, up
	// to RegionBudget consecutive preemptions per region pass (its own
	// budget, separate from the thread-level one) — the double context
	// switch landing exactly where it can tear a read. Requires the
	// kernel's tenant layer; the hook is a no-op otherwise.
	VCpuPreemptInRegions bool
	// VCpuPreemptEvery, when >0, forces a vCPU preemption outside
	// regions with probability 1/VCpuPreemptEvery per boundary.
	VCpuPreemptEvery uint64
}

// Stats counts every fault the injector actually delivered.
type Stats struct {
	ForcedPreemptions uint64 // inside regions (budgeted) and one-shot arms
	RandomPreemptions uint64 // outside regions
	SpuriousPMIs      uint64
	DelayedPMIs       uint64 // overflow bits withheld at least one boundary
	ReleasedPMIs      uint64 // withheld bits released by window expiry
	DrainedPMIs       uint64 // withheld bits force-drained at deschedule
	Migrations        uint64 // enqueues redirected off the default core
	HeldSignals       uint64 // boundaries at which delivery was deferred
	Flushes           uint64
	Kills             uint64 // asynchronous thread kills delivered
	ForcedClones      uint64 // clone-storm children forced into existence
	VCpuPreemptions   uint64 // tenant-level (vCPU) preemptions forced
}

// Add accumulates another run's stats into s (campaign roll-ups).
func (s *Stats) Add(o Stats) {
	s.ForcedPreemptions += o.ForcedPreemptions
	s.RandomPreemptions += o.RandomPreemptions
	s.SpuriousPMIs += o.SpuriousPMIs
	s.DelayedPMIs += o.DelayedPMIs
	s.ReleasedPMIs += o.ReleasedPMIs
	s.DrainedPMIs += o.DrainedPMIs
	s.Migrations += o.Migrations
	s.HeldSignals += o.HeldSignals
	s.Flushes += o.Flushes
	s.Kills += o.Kills
	s.ForcedClones += o.ForcedClones
	s.VCpuPreemptions += o.VCpuPreemptions
}

// Total sums every delivered fault.
func (s Stats) Total() uint64 {
	return s.ForcedPreemptions + s.RandomPreemptions + s.SpuriousPMIs +
		s.DelayedPMIs + s.Migrations + s.HeldSignals + s.Flushes +
		s.Kills + s.ForcedClones + s.VCpuPreemptions
}

// pmiStash is one core's withheld overflow bits.
type pmiStash struct {
	mask uint64
	age  int
}

// Injector implements the kernel.Chaos hooks for one machine run.
// It is not safe for concurrent use; the simulator is single-threaded.
type Injector struct {
	cfg     Config
	rng     uint64
	nCores  int
	regions []kernel.FixupRegion

	budget  map[int]int // thread ID -> remaining in-region preemptions
	vbudget map[int]int // thread ID -> remaining in-region vCPU preemptions
	stash   map[int]*pmiStash
	sigHold map[int]int // thread ID -> remaining hold boundaries
	armPC   int         // one-shot preemption trigger, -1 when unarmed

	armKillPC   int // one-shot kill trigger, -1 when unarmed
	armClonePC  int // one-shot clone trigger, -1 when unarmed
	armCloneEnt int // entry PC for the one-shot forced clone
	clonesLeft  int // remaining forced-clone budget

	Stats Stats
}

// New builds an injector. Zero-valued knobs take the documented
// defaults; a zero Config injects nothing.
func New(cfg Config) *Injector {
	inj := &Injector{
		nCores:  1,
		budget:  make(map[int]int),
		vbudget: make(map[int]int),
		stash:   make(map[int]*pmiStash),
		sigHold: make(map[int]int),
	}
	inj.Reset(cfg)
	return inj
}

// Reset reinitializes the injector for a fresh run under cfg, reusing
// its allocated maps — the runner's worker pools reset one injector
// per worker (with a new per-run seed) instead of allocating one per
// run. Regions and the core count survive a Reset; stats do not.
func (inj *Injector) Reset(cfg Config) {
	if cfg.RegionBudget <= 0 {
		cfg.RegionBudget = 8
	}
	if cfg.DelayBoundaries <= 0 {
		cfg.DelayBoundaries = 3
	}
	if cfg.NumSlots <= 0 {
		cfg.NumSlots = 4
	}
	if cfg.CloneBudget <= 0 {
		cfg.CloneBudget = 64
	}
	inj.cfg = cfg
	inj.rng = cfg.Seed ^ 0xbadc0ffee0ddf00d
	clear(inj.budget)
	clear(inj.vbudget)
	clear(inj.stash)
	clear(inj.sigHold)
	inj.armPC = -1
	inj.armKillPC = -1
	inj.armClonePC = -1
	inj.armCloneEnt = -1
	inj.clonesLeft = cfg.CloneBudget
	inj.Stats = Stats{}
}

// SetRegions tells the injector which PC ranges are read-critical.
// They are passed explicitly (rather than read from the process) so
// chaos targeting still works when fixup *registration* is disabled —
// the ablation where the kernel no longer knows the regions but the
// injector must still attack them.
func (in *Injector) SetRegions(regions [][2]int) {
	in.regions = in.regions[:0]
	for _, r := range regions {
		in.regions = append(in.regions, kernel.FixupRegion{Start: r[0], End: r[1]})
	}
}

// SetCores tells the injector how many cores migration storms may
// scatter across.
func (in *Injector) SetCores(n int) {
	if n > 0 {
		in.nCores = n
	}
}

// ArmPreemptAt arms a one-shot forced preemption: the next time any
// thread is at PC pc after retiring an instruction, it is preempted
// once. Used by the exhaustive preemption sweep.
func (in *Injector) ArmPreemptAt(pc int) { in.armPC = pc }

// Armed reports whether a one-shot preemption is still pending.
func (in *Injector) Armed() bool { return in.armPC >= 0 }

// ArmKillAt arms a one-shot asynchronous kill: the next time any
// thread is at PC pc after retiring an instruction, it is killed.
// Arm before Attach — Hooks snapshots which hooks to install. Used
// by the exhaustive exit-at-every-boundary sweep.
func (in *Injector) ArmKillAt(pc int) { in.armKillPC = pc }

// KillArmed reports whether a one-shot kill is still pending.
func (in *Injector) KillArmed() bool { return in.armKillPC >= 0 }

// ArmCloneAt arms a one-shot forced clone: the next time any thread
// is at PC pc after retiring an instruction, it clones a child at
// entry. Arm before Attach. Used by the clone-at-every-boundary
// sweep.
func (in *Injector) ArmCloneAt(pc, entry int) {
	in.armClonePC = pc
	in.armCloneEnt = entry
}

// CloneArmed reports whether a one-shot clone is still pending.
func (in *Injector) CloneArmed() bool { return in.armClonePC >= 0 }

// Hooks builds the kernel.Chaos hook set. Only hooks with active
// configuration are installed, so an idle fault class costs nil checks
// and nothing else.
func (in *Injector) Hooks() *kernel.Chaos {
	c := &kernel.Chaos{}
	// PreemptAfter doubles as the per-boundary bookkeeping point for
	// the region budget, so it is installed whenever forced preemption
	// in any form can happen.
	c.PreemptAfter = in.preemptAfter
	if in.cfg.SpuriousPMIEvery > 0 || in.cfg.DelayPMI {
		c.FilterPMI = in.filterPMI
		c.DrainPMI = in.drainPMI
	}
	if in.cfg.MigrationStorm {
		c.Place = in.place
	}
	if in.cfg.SignalDelayBoundaries > 0 {
		c.HoldSignal = in.holdSignal
	}
	if in.cfg.FlushEvery > 0 {
		c.FlushAfter = in.flushAfter
	}
	if in.cfg.KillEvery > 0 || in.armKillPC >= 0 {
		c.KillAfter = in.killAfter
	}
	if in.cfg.CloneEvery > 0 || in.armClonePC >= 0 {
		c.CloneAfter = in.cloneAfter
	}
	if in.cfg.VCpuPreemptInRegions || in.cfg.VCpuPreemptEvery > 0 {
		c.VCpuPreemptAfter = in.vcpuPreemptAfter
	}
	return c
}

// Attach installs the injector's hooks on a kernel.
func (in *Injector) Attach(k *kernel.Kernel) { k.SetChaos(in.Hooks()) }

func (in *Injector) rand() uint64 {
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return x * 0x2545f4914f6cdd1d
}

// chance rolls a 1-in-n event; n == 0 never fires.
func (in *Injector) chance(n uint64) bool {
	return n > 0 && in.rand()%n == 0
}

func (in *Injector) inRegion(pc int) bool {
	for _, r := range in.regions {
		if r.Contains(pc) {
			return true
		}
	}
	return false
}

func (in *Injector) preemptAfter(coreID int, t *kernel.Thread) bool {
	pc := t.Ctx.PC
	if in.armPC >= 0 && pc == in.armPC {
		in.armPC = -1
		in.Stats.ForcedPreemptions++
		return true
	}
	if !in.inRegion(pc) {
		// Out of harm's way: refill the in-region budget and maybe
		// land a random preemption.
		in.budget[t.ID] = in.cfg.RegionBudget
		if in.chance(in.cfg.PreemptEvery) {
			in.Stats.RandomPreemptions++
			return true
		}
		return false
	}
	if !in.cfg.PreemptInRegions {
		return false
	}
	if b, ok := in.budget[t.ID]; !ok {
		in.budget[t.ID] = in.cfg.RegionBudget
	} else if b <= 0 {
		// Budget spent: let the read complete so the fixup's rewind
		// cannot livelock the thread.
		return false
	}
	in.budget[t.ID]--
	in.Stats.ForcedPreemptions++
	return true
}

// vcpuPreemptAfter mirrors preemptAfter at the tenant level: budgeted
// double-switch storms inside read-critical regions, random vCPU
// preemptions outside them. A separate budget map keeps the two storm
// classes independently capped, so combining them cannot livelock a
// rewinding thread.
func (in *Injector) vcpuPreemptAfter(coreID int, t *kernel.Thread) bool {
	pc := t.Ctx.PC
	if !in.inRegion(pc) {
		in.vbudget[t.ID] = in.cfg.RegionBudget
		if in.chance(in.cfg.VCpuPreemptEvery) {
			in.Stats.VCpuPreemptions++
			return true
		}
		return false
	}
	if !in.cfg.VCpuPreemptInRegions {
		return false
	}
	if b, ok := in.vbudget[t.ID]; !ok {
		in.vbudget[t.ID] = in.cfg.RegionBudget
	} else if b <= 0 {
		return false
	}
	in.vbudget[t.ID]--
	in.Stats.VCpuPreemptions++
	return true
}

func (in *Injector) filterPMI(coreID int, t *kernel.Thread, mask uint64) uint64 {
	st := in.stash[coreID]
	if st == nil {
		st = &pmiStash{}
		in.stash[coreID] = st
	}
	if in.cfg.DelayPMI && mask != 0 {
		in.Stats.DelayedPMIs += uint64(bits.OnesCount64(mask))
		st.mask |= mask
		mask = 0
	}
	if st.mask != 0 {
		st.age++
		if st.age >= in.cfg.DelayBoundaries {
			// Window expired: release everything withheld in one
			// coalesced batch.
			in.Stats.ReleasedPMIs += uint64(bits.OnesCount64(st.mask))
			mask |= st.mask
			st.mask, st.age = 0, 0
		}
	}
	if in.chance(in.cfg.SpuriousPMIEvery) {
		mask |= 1 << (in.rand() % uint64(in.cfg.NumSlots))
		in.Stats.SpuriousPMIs++
	}
	return mask
}

func (in *Injector) drainPMI(coreID int, t *kernel.Thread) uint64 {
	st := in.stash[coreID]
	if st == nil || st.mask == 0 {
		return 0
	}
	mask := st.mask
	st.mask, st.age = 0, 0
	in.Stats.DrainedPMIs += uint64(bits.OnesCount64(mask))
	return mask
}

func (in *Injector) place(t *kernel.Thread, def int) int {
	if in.nCores <= 1 {
		return def
	}
	core := int(in.rand() % uint64(in.nCores))
	if core != def {
		in.Stats.Migrations++
	}
	return core
}

func (in *Injector) holdSignal(coreID int, t *kernel.Thread) bool {
	left, ok := in.sigHold[t.ID]
	if !ok {
		// A signal just became deliverable; start a hold window.
		in.sigHold[t.ID] = in.cfg.SignalDelayBoundaries
		in.Stats.HeldSignals++
		return true
	}
	if left <= 1 {
		// Window over: deliver, and re-arm for the next signal.
		delete(in.sigHold, t.ID)
		return false
	}
	in.sigHold[t.ID] = left - 1
	in.Stats.HeldSignals++
	return true
}

func (in *Injector) flushAfter(coreID int, t *kernel.Thread) bool {
	if in.chance(in.cfg.FlushEvery) {
		in.Stats.Flushes++
		return true
	}
	return false
}

func (in *Injector) killAfter(coreID int, t *kernel.Thread) bool {
	if in.armKillPC >= 0 {
		if t.Ctx.PC != in.armKillPC {
			return false
		}
		in.armKillPC = -1
		in.Stats.Kills++
		return true
	}
	if in.cfg.KillClonesOnly && t.ClonedFrom < 0 {
		return false
	}
	if in.chance(in.cfg.KillEvery) {
		in.Stats.Kills++
		return true
	}
	return false
}

func (in *Injector) cloneAfter(coreID int, t *kernel.Thread) (int, bool) {
	if in.armClonePC >= 0 {
		if t.Ctx.PC != in.armClonePC {
			return 0, false
		}
		entry := in.armCloneEnt
		in.armClonePC, in.armCloneEnt = -1, -1
		in.Stats.ForcedClones++
		return entry, true
	}
	if in.clonesLeft <= 0 {
		return 0, false
	}
	if in.chance(in.cfg.CloneEvery) {
		in.clonesLeft--
		in.Stats.ForcedClones++
		return in.cfg.CloneEntry, true
	}
	return 0, false
}
