package faultinject

import (
	"testing"

	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// lifecycleWorkload extends the sweep workload with a self-exiting
// stub, the entry point forced clones are pointed at.
type lifecycleWorkload struct {
	prog    *isa.Program
	space   *mem.Space
	buf     uint64
	regions [][2]int
	want    uint64
	stub    int
}

func buildLifecycleWorkload() *lifecycleWorkload {
	w := &lifecycleWorkload{space: mem.NewSpace()}
	table := limit.AllocTable(w.space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	w.buf = w.space.AllocWords(sweepIters)
	e.EmitInit()
	b.MovImm(isa.R12, int64(w.buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(sweepK)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, sweepIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	// Clone-storm stub: do a little countable work, then exit through
	// the full teardown path.
	b.Label("stub")
	b.Compute(3)
	b.Syscall(kernel.SysExit)
	e.EmitFinish()
	w.prog = b.MustBuild()
	w.regions = e.Regions()
	r := w.regions[0]
	w.want = uint64(sweepK) + uint64(r[1]-r[0])
	stub, err := w.prog.Entry("stub")
	if err != nil {
		panic(err)
	}
	w.stub = stub
	return w
}

// TestExhaustiveKillSweep kills the measuring thread at every single
// instruction boundary inside the read-critical regions — including
// mid-read-sequence — and asserts that teardown never tears a count
// and never leaks a resource: every delta written before the kill is
// exact, the invariant oracles stay silent, and the slot / table-word
// / region ledgers all drain to zero.
func TestExhaustiveKillSweep(t *testing.T) {
	probe := buildLifecycleWorkload()
	if len(probe.regions) == 0 {
		t.Fatal("workload emitted no read-critical regions")
	}

	for _, region := range probe.regions {
		for pc := region[0]; pc <= region[1]; pc++ {
			w := buildLifecycleWorkload()

			feats := pmu.DefaultFeatures()
			feats.WriteWidth = 9
			m := machine.New(machine.Config{
				NumCores: 1,
				PMU:      feats,
				Kernel:   kernel.DefaultConfig(),
			})

			inj := New(Config{})
			inj.ArmKillAt(pc)
			inj.Attach(m.Kern)

			chk := invariant.New(w.regions)
			chk.Attach(m.Kern)

			proc := m.Kern.NewProcess(w.prog, w.space)
			th := m.Kern.Spawn(proc, "victim", 0, 7)

			res := m.Run(machine.RunLimits{MaxSteps: 5_000_000})
			if res.Err != nil {
				t.Fatalf("pc %d: run failed: %v", pc, res.Err)
			}
			if !res.AllDone {
				t.Fatalf("pc %d: run incomplete after %d steps", pc, res.Steps)
			}
			if inj.KillArmed() {
				t.Fatalf("pc %d: armed kill never fired", pc)
			}
			if inj.Stats.Kills != 1 || m.Kern.Stats.Kills != 1 {
				t.Fatalf("pc %d: want exactly 1 kill, injector %d kernel %d",
					pc, inj.Stats.Kills, m.Kern.Stats.Kills)
			}
			if th.State != kernel.StateDone {
				t.Fatalf("pc %d: killed thread not done", pc)
			}

			chk.Finalize(proc, m.Kern.Threads(), 0)
			chk.CheckLeaks(m.Kern.Resources())
			for _, v := range chk.Violations() {
				t.Errorf("pc %d: invariant violation: %v", pc, v)
			}

			// The victim died mid-loop: iterations completed before the
			// kill must be exact, iterations after it must be untouched
			// (zero). A torn value would sit at neither.
			for i := 0; i < sweepIters; i++ {
				d := w.space.Read64(w.buf + uint64(i)*8)
				if d != 0 && (d < w.want || d > w.want+128) {
					t.Errorf("pc %d: delta[%d] = %d outside {0} ∪ [%d,%d]",
						pc, i, d, w.want, w.want+128)
				}
			}

			// Even on the involuntary path, the counter's final value is
			// captured at reap. The counter opened a handful of
			// instructions after thread birth (the init preamble), so its
			// value trails the thread's true user total by that constant
			// — never by a fold chunk, which is what a torn teardown
			// would cost.
			if v, ok := chk.ReapValue(th.ID, 0); !ok {
				t.Errorf("pc %d: no reap value captured for the victim", pc)
			} else if v == 0 || v > th.Stats.UserInstructions ||
				th.Stats.UserInstructions-v >= 64 {
				t.Errorf("pc %d: reap value %d vs true user instructions %d",
					pc, v, th.Stats.UserInstructions)
			}
		}
	}
}

// TestExhaustiveCloneSweep forces a clone at every instruction
// boundary inside the read-critical regions. The child inherits the
// parent's LiMiT counter mid-read-sequence; the parent's measurements
// must stay exact, the child's inherited counter must conserve (its
// reap-time value equals the child's true user-instruction total), and
// the child's kernel-allocated table word and pinned slot must both be
// reclaimed when it exits.
func TestExhaustiveCloneSweep(t *testing.T) {
	probe := buildLifecycleWorkload()
	if len(probe.regions) == 0 {
		t.Fatal("workload emitted no read-critical regions")
	}

	for _, region := range probe.regions {
		for pc := region[0]; pc <= region[1]; pc++ {
			w := buildLifecycleWorkload()

			feats := pmu.DefaultFeatures()
			feats.WriteWidth = 9
			m := machine.New(machine.Config{
				NumCores: 1,
				PMU:      feats,
				Kernel:   kernel.DefaultConfig(),
			})

			inj := New(Config{})
			inj.ArmCloneAt(pc, w.stub)
			inj.Attach(m.Kern)

			chk := invariant.New(w.regions)
			chk.Attach(m.Kern)

			proc := m.Kern.NewProcess(w.prog, w.space)
			parent := m.Kern.Spawn(proc, "parent", 0, 7)

			res := m.Run(machine.RunLimits{MaxSteps: 5_000_000})
			if res.Err != nil {
				t.Fatalf("pc %d: run failed: %v", pc, res.Err)
			}
			if !res.AllDone {
				t.Fatalf("pc %d: run incomplete after %d steps", pc, res.Steps)
			}
			if inj.CloneArmed() {
				t.Fatalf("pc %d: armed clone never fired", pc)
			}
			if inj.Stats.ForcedClones != 1 || m.Kern.Stats.Clones != 1 {
				t.Fatalf("pc %d: want exactly 1 clone, injector %d kernel %d",
					pc, inj.Stats.ForcedClones, m.Kern.Stats.Clones)
			}

			var child *kernel.Thread
			for _, th := range m.Kern.Threads() {
				if th.ClonedFrom == parent.ID {
					child = th
				}
			}
			if child == nil {
				t.Fatalf("pc %d: forced clone produced no child", pc)
			}
			cc := child.Counters()
			if len(cc) != 1 || cc[0].Kind != kernel.KindLimit || !cc[0].Inherited {
				t.Fatalf("pc %d: child did not inherit the LiMiT counter", pc)
			}
			if cc[0].Estimated {
				t.Fatalf("pc %d: child degraded with slots to spare", pc)
			}

			chk.Finalize(proc, m.Kern.Threads(), 0)
			chk.CheckLeaks(m.Kern.Resources())
			for _, v := range chk.Violations() {
				t.Errorf("pc %d: invariant violation: %v", pc, v)
			}

			// Conservation: the child's inherited counter started at zero
			// and ended, at reap, exactly at the child's true total.
			if v, ok := chk.ReapValue(child.ID, 0); !ok {
				t.Errorf("pc %d: no reap value captured for the child", pc)
			} else if v != child.Stats.UserInstructions {
				t.Errorf("pc %d: child reap value %d != true user instructions %d",
					pc, v, child.Stats.UserInstructions)
			}

			// The parent's measurements survive the mid-read clone; the
			// clone costs kernel time, not user-ring instructions, so the
			// usual re-execution slack bounds every delta.
			for i := 0; i < sweepIters; i++ {
				d := w.space.Read64(w.buf + uint64(i)*8)
				if d < w.want || d > w.want+256 {
					t.Errorf("pc %d: delta[%d] = %d outside [%d,%d]",
						pc, i, d, w.want, w.want+256)
				}
			}
		}
	}
}

// TestLifecycleStormDeterminism replays a combined clone-storm +
// kill-storm configuration twice with the same seed and requires
// identical fault and kernel lifecycle counts — a soak campaign's
// replayability depends on it.
func TestLifecycleStormDeterminism(t *testing.T) {
	type outcome struct {
		inj            Stats
		clones, exits  uint64
		kills, threads int
	}
	run := func() outcome {
		w := buildLifecycleWorkload()
		feats := pmu.DefaultFeatures()
		feats.WriteWidth = 9
		kcfg := kernel.DefaultConfig()
		kcfg.Seed = 42
		kcfg.Quantum = 10_000
		m := machine.New(machine.Config{NumCores: 2, PMU: feats, Kernel: kcfg})
		inj := New(Config{
			Seed:           99,
			CloneEvery:     97,
			CloneEntry:     w.stub,
			CloneBudget:    24,
			KillEvery:      53,
			KillClonesOnly: true,
		})
		inj.SetRegions(w.regions)
		inj.SetCores(2)
		inj.Attach(m.Kern)
		proc := m.Kern.NewProcess(w.prog, w.space)
		m.Kern.Spawn(proc, "storm", 0, 7)
		res := m.Run(machine.RunLimits{MaxSteps: 5_000_000})
		if res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		if !res.AllDone {
			t.Fatalf("storm run incomplete after %d steps", res.Steps)
		}
		if rs := m.Kern.Resources(); rs.SlotsInUse != 0 || rs.TableWordsInUse != 0 || rs.RegionsLive != 0 {
			t.Fatalf("storm leaked resources: %+v", rs)
		}
		return outcome{
			inj:     inj.Stats,
			clones:  m.Kern.Stats.Clones,
			exits:   m.Kern.Stats.Exits,
			kills:   int(m.Kern.Stats.Kills),
			threads: len(m.Kern.Threads()),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different storm outcomes:\n%+v\n%+v", a, b)
	}
	if a.inj.ForcedClones == 0 {
		t.Error("clone storm forced no clones")
	}
	if a.clones != a.inj.ForcedClones {
		t.Errorf("kernel saw %d clones, injector forced %d", a.clones, a.inj.ForcedClones)
	}
}
