package machine_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// regionProgram builds a program whose single thread measures `iters`
// regions of exactly `K` compute instructions each with a LiMiT
// instruction counter and stores every measured delta into a result
// buffer. Returns the program and the buffer base.
func regionProgram(t *testing.T, space *mem.Space, mode limit.Mode, k, iters int64, noFixup bool) (*isa.Program, uint64) {
	t.Helper()
	table := limit.AllocTable(space, 1)
	buf := space.AllocWords(uint64(iters))

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, mode, table)
	if noFixup {
		e.DisableFixupRegistration()
	}
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))

	e.EmitInit()
	b.MovImm(isa.R8, 0)           // i
	b.MovImm(isa.R9, iters)       // limit
	b.MovImm(isa.R10, int64(buf)) // out pointer
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(k)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.Store(isa.R10, 0, isa.R6)
	b.AddImm(isa.R10, isa.R10, 8)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	e.EmitFinish()

	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog, buf
}

// Instructions counted between the start-read rdpmc's *read* and the
// end-read rdpmc's *read*: the start rdpmc's own retirement (counters
// advance after the value is sampled, as on real hardware) plus the
// movimm+load+add tail of the start sequence — 4 in total — plus the K
// compute instructions of the region body.
const stockReadTailInstrs = 4

func TestPreciseRegionMeasurementSingleThread(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	const k, iters = 10_000, 50
	prog, buf := regionProgram(t, space, limit.ModeStock, k, iters, false)
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "worker", 0, 42)

	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if !res.AllDone {
		t.Fatalf("run did not finish: %v", res)
	}
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}

	// With one thread on one core nothing can interrupt the read
	// sequences, so every measurement must be bit-exact.
	want := uint64(k + stockReadTailInstrs)
	for i, got := range space.ReadWords(buf, iters) {
		if got != want {
			t.Fatalf("measurement %d: got %d, want exactly %d", i, got, want)
		}
	}
}

func TestPreciseRegionMeasurementUnderHeavyPreemption(t *testing.T) {
	// Two compute-bound threads on one core with a minuscule quantum:
	// context switches land inside read sequences regularly. The LiMiT
	// fixup must keep every measurement exact-or-over (re-executed
	// end-read instructions can only add), never torn.
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 500
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	const k, iters = 2_000, 200
	prog, buf := regionProgram(t, space, limit.ModeStock, k, iters, false)
	proc := m.Kern.NewProcess(prog, space)
	t1 := m.Kern.Spawn(proc, "w1", 0, 1)

	// Competing process to force preemption.
	b2 := isa.NewBuilder()
	b2.MovImm(isa.R1, 0)
	b2.MovImm(isa.R2, 400_000)
	b2.Label("l")
	b2.Compute(100)
	b2.AddImm(isa.R1, isa.R1, 100)
	b2.Br(isa.CondLT, isa.R1, isa.R2, "l")
	b2.Halt()
	proc2 := m.Kern.NewProcess(b2.MustBuild(), nil)
	m.Kern.Spawn(proc2, "spoiler", 0, 2)

	res := m.Run(machine.RunLimits{MaxSteps: 50_000_000})
	if !res.AllDone || len(res.Faults) > 0 {
		t.Fatalf("run failed: %v", res)
	}
	if t1.Stats.Preemptions == 0 {
		t.Fatalf("expected preemptions with quantum=500, got none")
	}

	want := uint64(k + stockReadTailInstrs)
	over := 0
	for i, got := range space.ReadWords(buf, iters) {
		if got < want {
			t.Fatalf("measurement %d torn low: got %d, want >= %d", i, got, want)
		}
		// A rewound end-read can add at most a few replays of the
		// 4-instruction sequence; anything larger indicates tearing.
		if got > want+64 {
			t.Fatalf("measurement %d torn high: got %d, want <= %d", i, got, want+64)
		}
		if got > want {
			over++
		}
	}
	t.Logf("preemptions=%d fixups=%d over-measurements=%d/%d",
		t1.Stats.Preemptions, t1.Stats.FixupRewinds, over, iters)
}

func TestTornReadsWithoutFixup(t *testing.T) {
	// Ablation: frequent overflow folds (tiny write width) with fixup
	// registration disabled must produce torn measurements; with it
	// enabled, none. This is the paper's core correctness claim.
	// Tiny write width => fold every 512 events; short regions => the
	// read sequence is a large fraction of each region, so folds land
	// inside read sequences often. Everything is deterministic, so the
	// ablation either tears or it doesn't — no flakiness.
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 9
	run := func(noFixup bool) (torn int, rewinds uint64) {
		m := machine.New(machine.Config{NumCores: 1, PMU: feats})
		space := mem.NewSpace()
		const k, iters = 20, 2_000
		prog, buf := regionProgram(t, space, limit.ModeStock, k, iters, noFixup)
		proc := m.Kern.NewProcess(prog, space)
		th := m.Kern.Spawn(proc, "w", 0, 7)
		res := m.Run(machine.RunLimits{MaxSteps: 50_000_000})
		if !res.AllDone || len(res.Faults) > 0 {
			t.Fatalf("run failed: %v", res)
		}
		want := uint64(k + stockReadTailInstrs)
		for _, got := range space.ReadWords(buf, iters) {
			// A torn read is off by ± the fold chunk (2^14); replayed
			// sequences only add a few instructions.
			if got < want || got > want+64 {
				torn++
			}
		}
		return torn, th.Stats.FixupRewinds
	}

	tornWith, rewinds := run(false)
	if tornWith != 0 {
		t.Errorf("with fixup: %d torn measurements, want 0", tornWith)
	}
	if rewinds == 0 {
		t.Errorf("with fixup: expected rewinds under frequent folds, got 0")
	}
	tornWithout, _ := run(true)
	if tornWithout == 0 {
		t.Errorf("without fixup: expected torn measurements, got none (ablation not exercising the race)")
	}
	t.Logf("torn with fixup=%d, without=%d, rewinds=%d", tornWith, tornWithout, rewinds)
}

func TestLimitCounterMatchesThreadGroundTruth(t *testing.T) {
	// A user-ring instruction counter opened at thread start must end
	// equal to the thread's true user instruction count minus the
	// instructions retired before the counter was opened (the setup
	// prologue). We bound that prologue rather than hard-coding it.
	m := machine.New(machine.Config{NumCores: 2})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 50_000)
	b.Label("l")
	b.Compute(250)
	b.AddImm(isa.R1, isa.R1, 250)
	b.Br(isa.CondLT, isa.R1, isa.R2, "l")
	b.Halt()
	e.EmitFinish()
	prog := b.MustBuild()

	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", 0, 3)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if !res.AllDone || len(res.Faults) > 0 {
		t.Fatalf("run failed: %v", res)
	}

	got := limit.MustFinalValue(th, 0)
	truth := th.Stats.UserInstructions
	if got > truth {
		t.Fatalf("counter %d exceeds ground truth %d", got, truth)
	}
	if truth-got > 40 { // setup prologue: jmp + init + open movs/syscalls
		t.Fatalf("counter %d too far below ground truth %d (prologue should be <40 instrs)", got, truth)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		kcfg := kernel.DefaultConfig()
		kcfg.Quantum = 2_000
		m := machine.New(machine.Config{NumCores: 2, Kernel: kcfg})
		space := mem.NewSpace()
		prog, buf := regionProgram(t, space, limit.ModeStock, 1_000, 100, false)
		proc := m.Kern.NewProcess(prog, space)
		m.Kern.Spawn(proc, "a", 0, 11)
		m.Kern.Spawn(proc, "b", 0, 12)
		res := m.Run(machine.RunLimits{MaxSteps: 50_000_000})
		if !res.AllDone {
			t.Fatalf("not done: %v", res)
		}
		var sum uint64
		for _, v := range space.ReadWords(buf, 100) {
			sum += v
		}
		return res.Cycles, sum
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}
