package machine_test

import (
	"strings"
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/machine"
	"limitsim/internal/pmu"
)

func infiniteLoop() *isa.Program {
	b := isa.NewBuilder()
	b.Label("l")
	b.Compute(100)
	b.Jmp("l")
	return b.MustBuild()
}

func TestMaxCyclesStopsRun(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	proc := m.Kern.NewProcess(infiniteLoop(), nil)
	m.Kern.Spawn(proc, "spin", 0, 1)
	res := m.Run(machine.RunLimits{MaxCycles: 50_000})
	if res.AllDone {
		t.Error("infinite loop cannot be done")
	}
	if res.Cycles < 50_000 || res.Cycles > 60_000 {
		t.Errorf("stopped at %d cycles, want just past 50k", res.Cycles)
	}
}

func TestMaxStepsStopsRun(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	proc := m.Kern.NewProcess(infiniteLoop(), nil)
	m.Kern.Spawn(proc, "spin", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000})
	if res.Steps > 1_000 {
		t.Errorf("executed %d steps past the limit", res.Steps)
	}
}

func TestMustRunPanicsOnFault(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	b := isa.NewBuilder()
	b.RdPMC(isa.R1, 0) // faults without LimitInit
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "bad", 0, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustRun should panic on a fault")
		}
		if !strings.Contains(r.(string), "rdpmc") {
			t.Errorf("panic %q should carry the fault", r)
		}
	}()
	m.MustRun(machine.RunLimits{})
}

func TestEmptyMachineIsDone(t *testing.T) {
	m := machine.New(machine.Config{})
	res := m.Run(machine.RunLimits{})
	if !res.AllDone || res.Steps != 0 {
		t.Errorf("empty machine: %v", res)
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := machine.New(machine.Config{})
	if len(m.Cores) != 4 {
		t.Errorf("default core count %d, want 4", len(m.Cores))
	}
	if m.Cores[0].PMU.NumCounters() != 4 {
		t.Error("default PMU features not applied")
	}
}

func TestTwoProcessesIsolatedMemory(t *testing.T) {
	// Two processes write the same virtual address; each must see its
	// own value (separate address spaces).
	m := machine.New(machine.Config{NumCores: 1})
	build := func(val int64) *isa.Program {
		b := isa.NewBuilder()
		b.MovImm(isa.R1, 0x5000)
		b.MovImm(isa.R2, val)
		b.Store(isa.R1, 0, isa.R2)
		b.Compute(10_000) // overlap in time
		b.Load(isa.R3, isa.R1, 0)
		b.MovImm(isa.R1, 0x6000)
		b.Store(isa.R1, 0, isa.R3)
		b.Halt()
		return b.MustBuild()
	}
	p1 := m.Kern.NewProcess(build(111), nil)
	p2 := m.Kern.NewProcess(build(222), nil)
	m.Kern.Spawn(p1, "a", 0, 1)
	m.Kern.Spawn(p2, "b", 0, 2)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
	if !res.AllDone {
		t.Fatal(res)
	}
	if got := p1.Mem.Read64(0x6000); got != 111 {
		t.Errorf("process 1 observed %d, want its own 111", got)
	}
	if got := p2.Mem.Read64(0x6000); got != 222 {
		t.Errorf("process 2 observed %d, want its own 222", got)
	}
}

func TestNsFromCycles(t *testing.T) {
	if ns := machine.NsFromCycles(3_000); ns != 1_000 {
		t.Errorf("3000 cycles = %f ns, want 1000 at 3 GHz", ns)
	}
}

func TestGroundTruthAccessors(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 2})
	b := isa.NewBuilder()
	b.Compute(1_000)
	b.Syscall(0) // one yield: generates kernel-ring work
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	user := m.GroundTruthRing(pmu.EvCycles, pmu.RingUser)
	kern := m.GroundTruthRing(pmu.EvCycles, pmu.RingKernel)
	if user < 1_000 {
		t.Errorf("user cycles %d", user)
	}
	if kern == 0 {
		t.Error("kernel cycles missing")
	}
	if m.TotalGroundTruth(pmu.EvCycles) != user+kern {
		t.Error("total must be user+kernel")
	}
	if res := m.Run(machine.RunLimits{}); !res.AllDone {
		t.Error("re-running a finished machine must be a no-op success")
	}
}

func TestRunResultString(t *testing.T) {
	res := machine.RunResult{Cycles: 5, Steps: 2, AllDone: true}
	s := res.String()
	if !strings.Contains(s, "cycles=5") || !strings.Contains(s, "done=true") {
		t.Errorf("RunResult render %q", s)
	}
}
