// Package machine assembles simulated cores and the kernel into a
// runnable multicore system and drives the discrete-event execution
// loop. The loop always steps the core with the smallest local clock
// among those with runnable work, which preserves causality for
// cross-core interactions (futex wakes, shared-memory updates) without
// any host-level concurrency — every run is bit-deterministic for a
// given seed.
package machine

import (
	"fmt"
	"io"
	"strings"

	"limitsim/internal/cpu"
	"limitsim/internal/kernel"
	"limitsim/internal/pmu"
	"limitsim/internal/trace"
)

// CyclesPerNanosecond is the nominal clock rate used to convert
// simulated cycles to wall-clock time in reports (3 GHz).
const CyclesPerNanosecond = 3.0

// NsFromCycles converts simulated cycles to nanoseconds at the nominal
// clock.
func NsFromCycles(c uint64) float64 { return float64(c) / CyclesPerNanosecond }

// Config describes a machine.
type Config struct {
	// NumCores is the core count (default 4).
	NumCores int
	// PMU selects the per-core PMU feature set (default
	// pmu.DefaultFeatures: 4×48-bit counters, 31-bit writes).
	PMU pmu.Features
	// Kernel tunes the simulated OS (default kernel.DefaultConfig).
	Kernel kernel.Config
	// TraceCapacity, when positive, attaches a scheduling/interrupt
	// trace ring of that many events to the kernel. The ring is cheap
	// (fixed size, overwrites oldest) and is what FaultError carries
	// for post-mortem diagnosis when a run goes wrong.
	TraceCapacity int
	// Uncore attaches one shared socket-level counter block to every
	// core's PMU (required by the kernel's tenant attribution layer;
	// off by default because it adds a branch to every AddEvent).
	Uncore bool
}

// DefaultConfig returns a 4-core machine with stock-2011 PMU features.
func DefaultConfig() Config {
	return Config{
		NumCores: 4,
		PMU:      pmu.DefaultFeatures(),
		Kernel:   kernel.DefaultConfig(),
	}
}

// Machine is a simulated multicore system.
type Machine struct {
	Cores []*cpu.Core
	Kern  *kernel.Kernel
	// Uncore is the socket-level shared counter block when
	// Config.Uncore was set (nil otherwise).
	Uncore *pmu.Uncore
}

// New builds a machine from cfg, applying defaults for zero fields.
func New(cfg Config) *Machine {
	if cfg.NumCores <= 0 {
		cfg.NumCores = 4
	}
	if cfg.PMU.NumCounters == 0 {
		cfg.PMU = pmu.DefaultFeatures()
	}
	if cfg.Kernel.Quantum == 0 {
		cfg.Kernel = kernel.DefaultConfig()
	}
	cores := make([]*cpu.Core, cfg.NumCores)
	var uncore *pmu.Uncore
	if cfg.Uncore {
		uncore = pmu.NewUncore()
	}
	for i := range cores {
		cores[i] = cpu.NewCore(i, cfg.PMU)
		if uncore != nil {
			cores[i].PMU.AttachUncore(uncore)
		}
	}
	m := &Machine{Cores: cores, Kern: kernel.New(cfg.Kernel, cores), Uncore: uncore}
	if cfg.TraceCapacity > 0 {
		m.Kern.SetTracer(trace.NewBuffer(cfg.TraceCapacity))
	}
	return m
}

// RunLimits bounds a Run call. Zero fields mean "unbounded".
type RunLimits struct {
	// MaxCycles stops the run once every core clock is at or beyond
	// this cycle.
	MaxCycles uint64
	// MaxSteps stops after this many executed instructions (a runaway
	// guard for tests).
	MaxSteps uint64
}

// RunResult summarizes a Run.
type RunResult struct {
	// Cycles is the final maximum core clock.
	Cycles uint64
	// Steps is the number of StepCore calls that executed work.
	Steps uint64
	// AllDone reports whether every thread terminated.
	AllDone bool
	// Deadlocked reports that threads remained but none could ever run
	// (blocked forever).
	Deadlocked bool
	// Faults carries descriptions of faulted threads.
	Faults []string
	// Err is non-nil when the run faulted or deadlocked; it is always
	// a *FaultError carrying the faulting threads and the tail of the
	// kernel trace ring (if one was attached).
	Err error
}

func (r RunResult) String() string {
	return fmt.Sprintf("cycles=%d steps=%d done=%v deadlock=%v faults=%d",
		r.Cycles, r.Steps, r.AllDone, r.Deadlocked, len(r.Faults))
}

// FaultError describes a run that ended badly: one or more threads
// faulted, or every remaining thread blocked forever. It carries the
// kernel's scheduling/interrupt trace tail (when a tracer was
// attached) so the events leading up to the failure are diagnosable
// without rerunning.
type FaultError struct {
	// Faults are the kernel's fault descriptions, one per dead thread.
	Faults []string
	// ThreadIDs identifies the faulted threads.
	ThreadIDs []int
	// Deadlocked reports that live threads remained but none could run.
	Deadlocked bool
	// Trace is the tail of the kernel trace ring at the time of death
	// (nil when no tracer was attached).
	Trace []trace.Event
}

// Error summarizes the failure in one line.
func (e *FaultError) Error() string {
	switch {
	case len(e.Faults) > 0 && e.Deadlocked:
		return fmt.Sprintf("machine: %d thread(s) faulted and remaining threads deadlocked: %s",
			len(e.Faults), strings.Join(e.Faults, "; "))
	case len(e.Faults) > 0:
		return fmt.Sprintf("machine: %d thread(s) faulted: %s",
			len(e.Faults), strings.Join(e.Faults, "; "))
	default:
		return "machine: deadlock: threads remain but none can run"
	}
}

// DumpTrace writes the captured trace tail (up to max events; 0 means
// all) in the trace package's standard format, or a hint when no
// tracer was attached.
func (e *FaultError) DumpTrace(w io.Writer, max int) {
	if len(e.Trace) == 0 {
		fmt.Fprintln(w, "  (no trace ring attached; set machine.Config.TraceCapacity)")
		return
	}
	evs := e.Trace
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	for _, ev := range evs {
		fmt.Fprintln(w, ev)
	}
}

// Run executes until all threads finish, a limit is hit, or the system
// deadlocks.
func (m *Machine) Run(limits RunLimits) RunResult {
	const never = ^uint64(0)
	var res RunResult
	// Cached next-action time per core (never = no runnable work). A
	// clean RunCore burst touches nothing outside its core, so only
	// that core's entry needs refreshing before the next pick; any
	// kernel activity (scheduling, wakes, exits) invalidates the lot.
	ats := make([]uint64, len(m.Cores))
	dirty := true
	last := -1
	// Mirror of the kernel's earliest sleeper deadline. It can change
	// only inside kernel code (the nanosleep syscall, which dirties the
	// pick) or when this loop wakes sleepers — both refresh it — so the
	// two per-burst sleeper queries become compares on a local.
	nextWake := never
	var lastNow uint64
	// Limits normalized to "never" sentinels so the per-burst checks
	// are single compares instead of enabled-and-exceeded pairs.
	maxCyc, maxSteps := limits.MaxCycles, limits.MaxSteps
	if maxCyc == 0 {
		maxCyc = never
	}
	if maxSteps == 0 {
		maxSteps = never
	}
	for {
		if res.Steps >= maxSteps {
			break
		}

		if dirty {
			// Threads can only finish inside kernel code, which also
			// sets dirty — so AllDone needs rechecking exactly here.
			if m.Kern.AllDone() {
				res.AllDone = true
				break
			}
			for i := range m.Cores {
				ats[i] = never
				if at, ok := m.Kern.NextActionTime(i); ok {
					ats[i] = at
				}
			}
			nextWake = never
			if at, ok := m.Kern.NextSleeperWake(); ok {
				nextWake = at
			}
			dirty = false
		} else if last >= 0 {
			// A clean burst ran no kernel code, so the thread is still
			// current on its core and the core's next action is simply
			// its clock, which RunCore reported on the way out.
			ats[last] = lastNow
		}

		// Pick the causally-next core (smallest next-action time, lowest
		// index on ties) and, in the same pass, the burst horizon: the
		// chosen core keeps winning the global pick until it reaches an
		// earlier core's next-action time (equality already loses) or
		// strictly passes a later core's (it wins those ties). That is
		// m2 — the smallest non-best time — when some core *below* best
		// attains it, else m2+1. lowTie tracks the "below best" part: a
		// displaced best always sits below its displacer, as does every
		// core scanned before it, so displacement sets it outright.
		best, bestT := -1, never
		m2 := never
		lowTie := false
		if len(ats) == 4 {
			// Unrolled four-core pick — the common shape — with the
			// scan's semantics restated directly: best is the
			// lowest-index minimum, m2 the minimum over the rest, and
			// lowTie whether some core below best attains m2 (below
			// best=0 nothing can; below best=3 something must, since
			// best=3 means the others are strictly larger). Idle cores
			// hold never, which loses every min and, when m2 itself is
			// never, leaves the horizon uncapped exactly as the scan's
			// skip does.
			a0, a1, a2, a3 := ats[0], ats[1], ats[2], ats[3]
			b, bt := 0, a0
			if a1 < bt {
				b, bt = 1, a1
			}
			if a2 < bt {
				b, bt = 2, a2
			}
			if a3 < bt {
				b, bt = 3, a3
			}
			if bt != never {
				best, bestT = b, bt
				switch b {
				case 0:
					m2 = min(a1, a2, a3)
				case 1:
					m2 = min(a0, a2, a3)
					lowTie = a0 == m2
				case 2:
					m2 = min(a0, a1, a3)
					lowTie = a0 == m2 || a1 == m2
				default:
					m2 = min(a0, a1, a2)
					lowTie = true
				}
			}
		} else {
			for i, at := range ats {
				if at == never {
					continue
				}
				if best == -1 {
					best, bestT = i, at
					continue
				}
				if at < bestT {
					if bestT < m2 {
						m2 = bestT
					}
					lowTie = true
					best, bestT = i, at
				} else if at < m2 {
					m2, lowTie = at, false
				}
			}
		}

		if best == -1 {
			// No core has runnable work; jump to the next sleeper wake.
			if nextWake == never {
				res.Deadlocked = true
				break
			}
			if nextWake >= maxCyc {
				break
			}
			m.Kern.WakeSleepersUpTo(nextWake)
			dirty = true
			continue
		}

		if bestT >= maxCyc {
			break
		}

		// Wake any sleepers whose deadline the chosen core has reached,
		// so they compete for cores at the right time. A wake can land
		// a thread on any core, so the cached times must be rebuilt and
		// the horizon inputs recomputed (relative to the already-chosen
		// core) before the burst starts.
		if bestT >= nextWake {
			if m.Kern.WakeSleepersUpTo(bestT) {
				m2, lowTie = never, false
				for i := range m.Cores {
					ats[i] = never
					at, ok := m.Kern.NextActionTime(i)
					if !ok {
						continue
					}
					ats[i] = at
					if i == best {
						continue
					}
					if at < m2 {
						m2, lowTie = at, i < best
					} else if at == m2 && i < best {
						lowTie = true
					}
				}
			}
			nextWake = never
			if at, ok := m.Kern.NextSleeperWake(); ok {
				nextWake = at
			}
		}

		// Cap the horizon by the next sleeper deadline and the cycle
		// limit. RunCore also hands back on every kernel-visible event,
		// so anything that could change another core's next-action time
		// re-picks first.
		horizon := never
		if m2 != never {
			horizon = m2
			if !lowTie {
				horizon++
			}
		}
		if nextWake < horizon {
			horizon = nextWake
		}
		if maxCyc < horizon {
			horizon = maxCyc
		}
		// maxSteps-res.Steps stays astronomically large in the unlimited
		// case, which RunCore's step budget treats the same as no bound.
		steps, now, clean := m.Kern.RunCore(best, horizon, maxSteps-res.Steps)
		res.Steps += steps
		dirty = !clean
		last, lastNow = best, now
	}

	// Flush a final frame for any live group-holding thread so a run
	// truncated by a limit (or deadlocked) still ends its frame stream
	// with complete cumulative state; a no-op when every thread exited.
	m.Kern.FlushFrames()

	for _, c := range m.Cores {
		if c.Now > res.Cycles {
			res.Cycles = c.Now
		}
	}
	res.Faults = m.Kern.Faults()
	if len(res.Faults) > 0 || res.Deadlocked {
		fe := &FaultError{Faults: res.Faults, Deadlocked: res.Deadlocked}
		for _, t := range m.Kern.FaultedThreads() {
			fe.ThreadIDs = append(fe.ThreadIDs, t.ID)
		}
		if tr := m.Kern.Tracer(); tr != nil {
			fe.Trace = tr.Events()
		}
		res.Err = fe
	}
	return res
}

// MustRun is Run but panics if any thread faulted or the system
// deadlocked — the common harness case where either indicates a bug in
// a generated program. Production paths should use Run and handle
// RunResult.Err instead.
func (m *Machine) MustRun(limits RunLimits) RunResult {
	res := m.Run(limits)
	if res.Err != nil {
		panic(res.Err.Error())
	}
	return res
}

// TotalGroundTruth sums an event's omniscient count over all cores and
// both rings.
func (m *Machine) TotalGroundTruth(ev pmu.Event) uint64 {
	var sum uint64
	for _, c := range m.Cores {
		sum += c.PMU.GroundTruthTotal(ev)
	}
	return sum
}

// GroundTruthRing sums an event's omniscient count over all cores for
// one ring.
func (m *Machine) GroundTruthRing(ev pmu.Event, ring pmu.Ring) uint64 {
	var sum uint64
	for _, c := range m.Cores {
		sum += c.PMU.GroundTruth(ev, ring)
	}
	return sum
}
