// Package machine assembles simulated cores and the kernel into a
// runnable multicore system and drives the discrete-event execution
// loop. The loop always steps the core with the smallest local clock
// among those with runnable work, which preserves causality for
// cross-core interactions (futex wakes, shared-memory updates) without
// any host-level concurrency — every run is bit-deterministic for a
// given seed.
package machine

import (
	"fmt"
	"io"
	"strings"

	"limitsim/internal/cpu"
	"limitsim/internal/kernel"
	"limitsim/internal/pmu"
	"limitsim/internal/trace"
)

// CyclesPerNanosecond is the nominal clock rate used to convert
// simulated cycles to wall-clock time in reports (3 GHz).
const CyclesPerNanosecond = 3.0

// NsFromCycles converts simulated cycles to nanoseconds at the nominal
// clock.
func NsFromCycles(c uint64) float64 { return float64(c) / CyclesPerNanosecond }

// Config describes a machine.
type Config struct {
	// NumCores is the core count (default 4).
	NumCores int
	// PMU selects the per-core PMU feature set (default
	// pmu.DefaultFeatures: 4×48-bit counters, 31-bit writes).
	PMU pmu.Features
	// Kernel tunes the simulated OS (default kernel.DefaultConfig).
	Kernel kernel.Config
	// TraceCapacity, when positive, attaches a scheduling/interrupt
	// trace ring of that many events to the kernel. The ring is cheap
	// (fixed size, overwrites oldest) and is what FaultError carries
	// for post-mortem diagnosis when a run goes wrong.
	TraceCapacity int
	// Uncore attaches one shared socket-level counter block to every
	// core's PMU (required by the kernel's tenant attribution layer;
	// off by default because it adds a branch to every AddEvent).
	Uncore bool
}

// DefaultConfig returns a 4-core machine with stock-2011 PMU features.
func DefaultConfig() Config {
	return Config{
		NumCores: 4,
		PMU:      pmu.DefaultFeatures(),
		Kernel:   kernel.DefaultConfig(),
	}
}

// Machine is a simulated multicore system.
type Machine struct {
	Cores []*cpu.Core
	Kern  *kernel.Kernel
	// Uncore is the socket-level shared counter block when
	// Config.Uncore was set (nil otherwise).
	Uncore *pmu.Uncore
}

// New builds a machine from cfg, applying defaults for zero fields.
func New(cfg Config) *Machine {
	if cfg.NumCores <= 0 {
		cfg.NumCores = 4
	}
	if cfg.PMU.NumCounters == 0 {
		cfg.PMU = pmu.DefaultFeatures()
	}
	if cfg.Kernel.Quantum == 0 {
		cfg.Kernel = kernel.DefaultConfig()
	}
	cores := make([]*cpu.Core, cfg.NumCores)
	var uncore *pmu.Uncore
	if cfg.Uncore {
		uncore = pmu.NewUncore()
	}
	for i := range cores {
		cores[i] = cpu.NewCore(i, cfg.PMU)
		if uncore != nil {
			cores[i].PMU.AttachUncore(uncore)
		}
	}
	m := &Machine{Cores: cores, Kern: kernel.New(cfg.Kernel, cores), Uncore: uncore}
	if cfg.TraceCapacity > 0 {
		m.Kern.SetTracer(trace.NewBuffer(cfg.TraceCapacity))
	}
	return m
}

// RunLimits bounds a Run call. Zero fields mean "unbounded".
type RunLimits struct {
	// MaxCycles stops the run once every core clock is at or beyond
	// this cycle.
	MaxCycles uint64
	// MaxSteps stops after this many executed instructions (a runaway
	// guard for tests).
	MaxSteps uint64
}

// RunResult summarizes a Run.
type RunResult struct {
	// Cycles is the final maximum core clock.
	Cycles uint64
	// Steps is the number of StepCore calls that executed work.
	Steps uint64
	// AllDone reports whether every thread terminated.
	AllDone bool
	// Deadlocked reports that threads remained but none could ever run
	// (blocked forever).
	Deadlocked bool
	// Faults carries descriptions of faulted threads.
	Faults []string
	// Err is non-nil when the run faulted or deadlocked; it is always
	// a *FaultError carrying the faulting threads and the tail of the
	// kernel trace ring (if one was attached).
	Err error
}

func (r RunResult) String() string {
	return fmt.Sprintf("cycles=%d steps=%d done=%v deadlock=%v faults=%d",
		r.Cycles, r.Steps, r.AllDone, r.Deadlocked, len(r.Faults))
}

// FaultError describes a run that ended badly: one or more threads
// faulted, or every remaining thread blocked forever. It carries the
// kernel's scheduling/interrupt trace tail (when a tracer was
// attached) so the events leading up to the failure are diagnosable
// without rerunning.
type FaultError struct {
	// Faults are the kernel's fault descriptions, one per dead thread.
	Faults []string
	// ThreadIDs identifies the faulted threads.
	ThreadIDs []int
	// Deadlocked reports that live threads remained but none could run.
	Deadlocked bool
	// Trace is the tail of the kernel trace ring at the time of death
	// (nil when no tracer was attached).
	Trace []trace.Event
}

// Error summarizes the failure in one line.
func (e *FaultError) Error() string {
	switch {
	case len(e.Faults) > 0 && e.Deadlocked:
		return fmt.Sprintf("machine: %d thread(s) faulted and remaining threads deadlocked: %s",
			len(e.Faults), strings.Join(e.Faults, "; "))
	case len(e.Faults) > 0:
		return fmt.Sprintf("machine: %d thread(s) faulted: %s",
			len(e.Faults), strings.Join(e.Faults, "; "))
	default:
		return "machine: deadlock: threads remain but none can run"
	}
}

// DumpTrace writes the captured trace tail (up to max events; 0 means
// all) in the trace package's standard format, or a hint when no
// tracer was attached.
func (e *FaultError) DumpTrace(w io.Writer, max int) {
	if len(e.Trace) == 0 {
		fmt.Fprintln(w, "  (no trace ring attached; set machine.Config.TraceCapacity)")
		return
	}
	evs := e.Trace
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	for _, ev := range evs {
		fmt.Fprintln(w, ev)
	}
}

// Run executes until all threads finish, a limit is hit, or the system
// deadlocks.
func (m *Machine) Run(limits RunLimits) RunResult {
	var res RunResult
	for {
		if m.Kern.AllDone() {
			res.AllDone = true
			break
		}
		if limits.MaxSteps > 0 && res.Steps >= limits.MaxSteps {
			break
		}

		// Pick the causally-next core: smallest next-action time.
		best, bestT := -1, uint64(0)
		for i := range m.Cores {
			if at, ok := m.Kern.NextActionTime(i); ok {
				if best == -1 || at < bestT {
					best, bestT = i, at
				}
			}
		}

		if best == -1 {
			// No core has runnable work; jump to the next sleeper wake.
			wakeAt, ok := m.Kern.NextSleeperWake()
			if !ok {
				res.Deadlocked = true
				break
			}
			if limits.MaxCycles > 0 && wakeAt >= limits.MaxCycles {
				break
			}
			m.Kern.WakeSleepersUpTo(wakeAt)
			continue
		}

		if limits.MaxCycles > 0 && bestT >= limits.MaxCycles {
			break
		}

		// Wake any sleepers whose deadline the chosen core has reached,
		// so they compete for cores at the right time.
		m.Kern.WakeSleepersUpTo(bestT)

		if m.Kern.StepCore(best) == kernel.StepRan {
			res.Steps++
		}
	}

	// Flush a final frame for any live group-holding thread so a run
	// truncated by a limit (or deadlocked) still ends its frame stream
	// with complete cumulative state; a no-op when every thread exited.
	m.Kern.FlushFrames()

	for _, c := range m.Cores {
		if c.Now > res.Cycles {
			res.Cycles = c.Now
		}
	}
	res.Faults = m.Kern.Faults()
	if len(res.Faults) > 0 || res.Deadlocked {
		fe := &FaultError{Faults: res.Faults, Deadlocked: res.Deadlocked}
		for _, t := range m.Kern.FaultedThreads() {
			fe.ThreadIDs = append(fe.ThreadIDs, t.ID)
		}
		if tr := m.Kern.Tracer(); tr != nil {
			fe.Trace = tr.Events()
		}
		res.Err = fe
	}
	return res
}

// MustRun is Run but panics if any thread faulted or the system
// deadlocked — the common harness case where either indicates a bug in
// a generated program. Production paths should use Run and handle
// RunResult.Err instead.
func (m *Machine) MustRun(limits RunLimits) RunResult {
	res := m.Run(limits)
	if res.Err != nil {
		panic(res.Err.Error())
	}
	return res
}

// TotalGroundTruth sums an event's omniscient count over all cores and
// both rings.
func (m *Machine) TotalGroundTruth(ev pmu.Event) uint64 {
	var sum uint64
	for _, c := range m.Cores {
		sum += c.PMU.GroundTruthTotal(ev)
	}
	return sum
}

// GroundTruthRing sums an event's omniscient count over all cores for
// one ring.
func (m *Machine) GroundTruthRing(ev pmu.Event, ring pmu.Ring) uint64 {
	var sum uint64
	for _, c := range m.Cores {
		sum += c.PMU.GroundTruth(ev, ring)
	}
	return sum
}
