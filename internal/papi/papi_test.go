package papi_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/papi"
	"limitsim/internal/pmu"
)

func TestEventSetStartReadStop(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	es := papi.AllocEventSet(space, pmu.EvInstructions, pmu.EvCycles)
	if es.Len() != 2 {
		t.Fatalf("len %d", es.Len())
	}

	b := isa.NewBuilder()
	es.EmitStart(b)
	b.Compute(2_000)
	es.EmitReadSet(b)
	b.Compute(1_000)
	es.EmitStop(b)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	instrs := es.FinalValue(space, 0, 0)
	cycles := es.FinalValue(space, 0, 1)
	// The stop-read happens after ~3000 compute instructions plus PAPI
	// bookkeeping (~1500 instrs of library work and syscalls).
	if instrs < 3_000 || instrs > 6_500 {
		t.Errorf("instructions %d, want 3k..6.5k", instrs)
	}
	if cycles < instrs {
		t.Errorf("cycles %d below instructions %d", cycles, instrs)
	}
}

func TestEmitReadInto(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	es := papi.AllocEventSet(space, pmu.EvInstructions)
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	es.EmitStart(b)
	b.Compute(700)
	es.EmitReadInto(b, 0, isa.R9)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R9)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	got := space.Read64(out)
	if got < 700 || got > 1_500 {
		t.Errorf("EmitReadInto value %d, want 700..1500", got)
	}
	if got != es.FinalValue(space, 0, 0) {
		t.Error("register value and state block disagree")
	}
}

func TestStateWords(t *testing.T) {
	if papi.StateWords(3) != 6 {
		t.Errorf("StateWords(3) = %d", papi.StateWords(3))
	}
}

func TestPAPICostsMoreThanBareSyscall(t *testing.T) {
	// PAPI_read must cost more than the underlying syscall read because
	// of library bookkeeping; this anchors the Table 1 ordering.
	run := func(withPAPI bool) uint64 {
		m := machine.New(machine.Config{NumCores: 1})
		space := mem.NewSpace()
		es := papi.AllocEventSet(space, pmu.EvCycles)
		b := isa.NewBuilder()
		es.EmitStart(b)
		b.MovImm(isa.R8, 0)
		b.MovImm(isa.R9, 200)
		b.Label("loop")
		if withPAPI {
			es.EmitReadSet(b)
		}
		b.AddImm(isa.R8, isa.R8, 1)
		b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
		b.Halt()
		proc := m.Kern.NewProcess(b.MustBuild(), space)
		m.Kern.Spawn(proc, "w", 0, 1)
		return m.MustRun(machine.RunLimits{}).Cycles
	}
	with, without := run(true), run(false)
	perRead := float64(with-without) / 200
	if perRead < 3_000 {
		t.Errorf("PAPI read %f cycles, want > bare syscall (~2900)", perRead)
	}
}
