// Package papi models the PAPI library layer the paper also measures:
// a portable event-set abstraction built on top of the perf_event
// syscall interface. PAPI adds user-level bookkeeping around every
// operation (event-set validation, per-event state updates, result
// marshalling), which the paper's measurements show as additional
// overhead on top of the underlying syscall. PAPI_read also reads
// *every* counter in the event set, so multi-event sets multiply the
// syscall cost.
//
// The event-set state block (per-event fd and last-read value) lives in
// simulated memory behind a ref.Ref, so sets can be absolute
// (single-thread programs) or thread-local (shared-body programs).
package papi

import (
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
)

// Library-work constants (instructions of bookkeeping emitted around
// the underlying syscalls), calibrated against the ~1.2–1.5×
// perf_event cost the paper reports for PAPI.
const (
	openOverheadInstrs = 900
	readOverheadInstrs = 350
	stopOverheadInstrs = 250
)

// EventSet is a PAPI-style event set being assembled into a program.
// Its state block holds one fd word and one value word per event.
type EventSet struct {
	specs []perfevent.Spec
	state ref.Ref
}

// StateWords returns the state block size for n events.
func StateWords(n int) int { return 2 * n }

// NewEventSet builds an event set of user-ring counters whose state
// block lives at state (spanning StateWords(len(events)) words).
func NewEventSet(state ref.Ref, events ...pmu.Event) *EventSet {
	es := &EventSet{state: state}
	for _, ev := range events {
		es.specs = append(es.specs, perfevent.UserSpec(ev))
	}
	return es
}

// NewEventSetSpecs builds an event set from explicit per-event specs
// (ring filtering included). The state block must span
// StateWords(len(specs)) words.
func NewEventSetSpecs(state ref.Ref, specs ...perfevent.Spec) *EventSet {
	return &EventSet{state: state, specs: specs}
}

// AllocEventSet allocates an absolute state block in the process
// address space and builds the event set over it.
func AllocEventSet(space *mem.Space, events ...pmu.Event) *EventSet {
	addr := space.AllocWords(uint64(StateWords(len(events))))
	return NewEventSet(ref.Absolute(addr), events...)
}

// Len returns the number of events in the set.
func (es *EventSet) Len() int { return len(es.specs) }

func (es *EventSet) fdRef(i int) ref.Ref    { return es.state.Word(i) }
func (es *EventSet) valueRef(i int) ref.Ref { return es.state.Word(len(es.specs) + i) }

// EmitStart emits PAPI_start: opens every counter in the set and
// stores the fds in the state block. Clobbers R0..R3.
func (es *EventSet) EmitStart(b *isa.Builder) {
	b.Compute(openOverheadInstrs)
	for i, spec := range es.specs {
		perfevent.EmitOpen(b, spec, isa.R2)
		es.fdRef(i).EmitStore(b, isa.R2, isa.R3)
	}
}

// EmitReadSet emits PAPI_read: reads every counter in the set via
// syscall and stores the values into the state block. Clobbers R0..R3.
func (es *EventSet) EmitReadSet(b *isa.Builder) {
	b.Compute(readOverheadInstrs)
	for i := range es.specs {
		es.fdRef(i).EmitLoad(b, isa.R0)
		perfevent.EmitRead(b, isa.R0, isa.R2)
		es.valueRef(i).EmitStore(b, isa.R2, isa.R3)
	}
}

// EmitReadInto emits a PAPI_read and additionally leaves event i's
// value in dst. Clobbers R0..R3.
func (es *EventSet) EmitReadInto(b *isa.Builder, i int, dst isa.Reg) {
	es.EmitReadSet(b)
	es.valueRef(i).EmitLoad(b, dst)
}

// EmitStop emits PAPI_stop: a final read followed by closing every
// counter. Clobbers R0..R3.
func (es *EventSet) EmitStop(b *isa.Builder) {
	es.EmitReadSet(b)
	b.Compute(stopOverheadInstrs)
	for i := range es.specs {
		es.fdRef(i).EmitLoad(b, isa.R0)
		perfevent.EmitClose(b, isa.R0)
	}
}

// FinalValue reads event i's last-stored value from the process's
// memory after a run; threadBase is the TLS base for register-relative
// sets (ignored for absolute).
func (es *EventSet) FinalValue(space *mem.Space, threadBase uint64, i int) uint64 {
	return space.Read64(es.valueRef(i).Resolve(threadBase))
}
