package experiments

import "testing"

func TestAblationOverflowShape(t *testing.T) {
	r, err := RunAblationOverflow(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	kfFreq, _ := r.Row("kernel-fold", 12)
	suFreq, _ := r.Row("signal-user", 12)
	kfRare, _ := r.Row("kernel-fold", 31)

	if kfRare.Folds != 0 {
		t.Errorf("31-bit width folded %d times in a short run; should be 0", kfRare.Folds)
	}
	if kfFreq.Folds == 0 || suFreq.Signals == 0 {
		t.Fatalf("frequent-overflow runs must fold/signal: folds=%d signals=%d",
			kfFreq.Folds, suFreq.Signals)
	}
	// The deployed design point: kernel folding beats signal delivery.
	if kfFreq.CyclesPerFold >= suFreq.CyclesPerFold {
		t.Errorf("kernel fold %.0f cyc should undercut signal path %.0f cyc",
			kfFreq.CyclesPerFold, suFreq.CyclesPerFold)
	}
}

func TestAblationQuantumShape(t *testing.T) {
	r, err := RunAblationQuantum(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Torn != 0 {
			t.Errorf("quantum %d produced %d torn measurements; fixup must hold at every quantum",
				row.Quantum, row.Torn)
		}
	}
	// Rewind rate must fall as the quantum grows.
	if !(r.Rows[0].Rewinds > r.Rows[len(r.Rows)-1].Rewinds) {
		t.Errorf("rewinds should decrease with quantum: %d -> %d",
			r.Rows[0].Rewinds, r.Rows[len(r.Rows)-1].Rewinds)
	}
}

func TestAblationSpinsShape(t *testing.T) {
	r, err := RunAblationSpins(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	zero, big := r.Rows[0], r.Rows[len(r.Rows)-1]
	// No spinning parks on every contended acquire: more switches.
	if zero.CtxSwitches <= big.CtxSwitches {
		t.Errorf("spin=0 switches %d should exceed spin=1000 switches %d",
			zero.CtxSwitches, big.CtxSwitches)
	}
	for _, row := range r.Rows {
		if row.MeanAcquire <= 0 {
			t.Errorf("spins=%d: zero acquisition latency", row.Spins)
		}
	}
}

func TestAblationSchedulerShape(t *testing.T) {
	r, err := RunAblationScheduler(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	byName := map[string]A4Row{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	if byName["migrate-on-wake"].Migrations <= byName["affinity, no stealing"].Migrations {
		t.Error("migrate-on-wake should migrate more than affinity scheduling")
	}
	if byName["affinity + stealing"].Steals == 0 {
		t.Error("work stealing enabled but no steals observed")
	}
}

func TestFig9ConsolidationShape(t *testing.T) {
	r, err := RunFig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	solo, co := r.Rows[0], r.Rows[1]
	if !solo.MeasurementIntact || !co.MeasurementIntact {
		t.Error("LiMiT measurements must stay intact under consolidation")
	}
	if co.RunMcycles <= solo.RunMcycles {
		t.Errorf("co-location should inflate runtime: solo %.2f vs co %.2f Mcycles",
			solo.RunMcycles, co.RunMcycles)
	}
	// The striking property: critical-section lengths measured in
	// virtualized user cycles are *stable* under co-location (the
	// rival's time slices never leak in), even though wall time
	// inflates. Allow a few percent for contention-induced spinning.
	ratio := float64(co.CSP99) / float64(solo.CSP99)
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("CS p99 should be stable under co-location: solo %d vs co %d (ratio %.2f)",
			solo.CSP99, co.CSP99, ratio)
	}
}

func TestTable5MultiplexShape(t *testing.T) {
	r, err := RunTable5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	exact2, _ := r.Row(2)
	exact4, _ := r.Row(4)
	mux8, _ := r.Row(8)
	mux16, _ := r.Row(16)

	// Within capacity the only divergence is the few open-sequence
	// instructions that retire between successive opens (<0.5%).
	if exact2.MeanAbsErr > 0.005 || exact4.MeanAbsErr > 0.005 {
		t.Errorf("within-capacity counters must be near-exact: %.4f %.4f",
			exact2.MeanAbsErr, exact4.MeanAbsErr)
	}
	if mux8.MeanAbsErr < 20*exact4.MeanAbsErr {
		t.Errorf("multiplexing error %.4f should dwarf the within-capacity skew %.4f",
			mux8.MeanAbsErr, exact4.MeanAbsErr)
	}
	if mux8.MeanAbsErr <= 0 {
		t.Error("over-subscribed counters must show estimation error")
	}
	if mux8.LoadedPct > 60 || mux8.LoadedPct < 40 {
		t.Errorf("8 counters on 4 slots should be loaded ~50%% of the time, got %.1f%%", mux8.LoadedPct)
	}
	if mux16.LoadedPct > mux8.LoadedPct {
		t.Error("more counters should mean less loaded time each")
	}
}
