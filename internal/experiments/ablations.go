package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/analysis"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// ---------------------------------------------------------------------------
// A1: overflow folding mechanism — kernel fold vs userspace signal handler.
// ---------------------------------------------------------------------------

// A1Row is one overflow-handling configuration's measured cost.
type A1Row struct {
	Mode       string
	WriteWidth int
	Folds      uint64
	Signals    uint64
	RunCycles  uint64
	// CyclesPerFold is the marginal cost of one fold versus the
	// rare-overflow baseline run.
	CyclesPerFold float64
}

// A1Result is the overflow-mechanism ablation: with frequent overflows
// (narrow counter writes), folding in the kernel's PMI handler is
// cheaper than bouncing through a userspace signal — the reason LiMiT
// folds in the kernel. At the real 31-bit width either is negligible.
type A1Result struct {
	Rows []A1Row
}

// a1run executes a fixed compute+read loop under one configuration.
func a1run(mode kernel.OverflowMode, writeWidth, iters int) (cycles, folds, signals uint64, err error) {
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = writeWidth
	kcfg := kernel.DefaultConfig()
	kcfg.LimitOverflow = mode

	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	if mode == kernel.SignalUser {
		e.EnableOverflowSignalHandler()
	}
	e.EmitInit()
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	b.Compute(200)
	e.EmitRead(isa.R4, isa.R5, ctr)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(iters))
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	e.EmitFinish()

	m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kcfg})
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "a1", 0, 3)
	res := m.Run(machine.RunLimits{MaxSteps: runSteps})
	if res.Err != nil {
		return 0, 0, 0, fmt.Errorf("a1 %v width-%d run: %w", mode, writeWidth, res.Err)
	}
	return res.Cycles, m.Kern.Stats.OverflowFolds, m.Kern.Stats.SignalsSent, nil
}

// RunAblationOverflow measures both folding mechanisms at the stock
// write width (rare folds) and a narrow one (frequent folds).
func RunAblationOverflow(s Scale) (*A1Result, error) {
	iters := s.iters(5_000)
	r := &A1Result{}
	specs := []struct {
		mode  kernel.OverflowMode
		name  string
		width int
	}{
		{kernel.FoldInKernel, "kernel-fold", 31},
		{kernel.FoldInKernel, "kernel-fold", 12},
		{kernel.SignalUser, "signal-user", 31},
		{kernel.SignalUser, "signal-user", 12},
	}
	rows, err := runPar(len(specs), func(i int) (A1Row, error) {
		spec := specs[i]
		cycles, folds, signals, err := a1run(spec.mode, spec.width, iters)
		if err != nil {
			return A1Row{}, err
		}
		return A1Row{
			Mode: spec.name, WriteWidth: spec.width,
			Folds: folds, Signals: signals, RunCycles: cycles,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = rows
	// Marginal fold cost: frequent-fold run vs the same mode's
	// rare-fold baseline.
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.WriteWidth == 31 {
			continue
		}
		for _, base := range r.Rows {
			if base.Mode == row.Mode && base.WriteWidth == 31 && row.Folds > base.Folds {
				row.CyclesPerFold = float64(row.RunCycles-base.RunCycles) / float64(row.Folds-base.Folds)
			}
		}
	}
	return r, nil
}

// Row returns the (mode, width) row.
func (r *A1Result) Row(mode string, width int) (A1Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.WriteWidth == width {
			return row, true
		}
	}
	return A1Row{}, false
}

// Render writes the ablation table.
func (r *A1Result) Render(w io.Writer) {
	t := tabwrite.New("Ablation A1: overflow folding mechanism",
		"mode", "write width", "folds", "signals", "run Mcycles", "cycles/fold")
	for _, row := range r.Rows {
		t.Row(row.Mode, row.WriteWidth, row.Folds, row.Signals,
			float64(row.RunCycles)/1e6, row.CyclesPerFold)
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// A2: scheduler quantum vs fixup-rewind frequency.
// ---------------------------------------------------------------------------

// A2Row is one quantum's measured rewind behavior.
type A2Row struct {
	Quantum         uint64
	Reads           uint64
	Rewinds         uint64
	RewindsPerKRead float64
	Torn            uint64
}

// A2Result shows that the PC-rewind rate tracks preemption frequency
// while correctness is independent of it: even at absurdly small
// quanta, no measurement tears.
type A2Result struct {
	Rows []A2Row
}

// RunAblationQuantum sweeps the scheduler quantum with two contending
// threads measuring fixed regions.
func RunAblationQuantum(s Scale) (*A2Result, error) {
	iters := s.iters(800)
	const regionInstrs = 400
	quanta := []uint64{500, 2_000, 20_000, 300_000}
	rows, err := runPar(len(quanta), func(qi int) (A2Row, error) {
		quantum := quanta[qi]
		kcfg := kernel.DefaultConfig()
		kcfg.Quantum = quantum

		space := mem.NewSpace()
		table := limit.AllocTable(space, 2)
		buf := space.AllocWords(uint64(iters))
		b := isa.NewBuilder()
		e := limit.NewEmitter(b, limit.ModeStock, table)
		ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
		e.EmitInit()
		b.MovImm(isa.R8, 0)
		b.MovImm(isa.R10, int64(buf))
		b.Label("loop")
		e.EmitMeasureStart(isa.R4, isa.R5, ctr)
		b.Compute(regionInstrs)
		e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
		// Only thread with slot reg 0 records (one results buffer).
		skip := "skip"
		b.MovImm(isa.R9, 0)
		b.Br(isa.CondNE, isa.R14, isa.R9, skip)
		b.Store(isa.R10, 0, isa.R6)
		b.AddImm(isa.R10, isa.R10, 8)
		b.Label(skip)
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, int64(iters))
		b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
		b.Halt()
		e.EmitFinish()

		m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
		proc := m.Kern.NewProcess(b.MustBuild(), space)
		t0 := m.Kern.Spawn(proc, "meas", 0, 5)
		t0.SetReg(isa.R14, 0)
		t1 := m.Kern.Spawn(proc, "rival", 0, 6)
		t1.SetReg(isa.R14, 1)
		if res := m.Run(machine.RunLimits{MaxSteps: runSteps}); res.Err != nil {
			return A2Row{}, fmt.Errorf("a2 quantum-%d run: %w", quantum, res.Err)
		}

		// Each thread performs two reads per iteration (start + end).
		row := A2Row{Quantum: quantum, Reads: uint64(iters) * 4}
		row.Rewinds = t0.Stats.FixupRewinds + t1.Stats.FixupRewinds
		row.RewindsPerKRead = float64(row.Rewinds) / float64(row.Reads) * 1000
		want := uint64(regionInstrs + 4)
		for _, v := range space.ReadWords(buf, iters) {
			if v < want || v > want+128 {
				row.Torn++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &A2Result{Rows: rows}, nil
}

// Render writes the quantum ablation.
func (r *A2Result) Render(w io.Writer) {
	t := tabwrite.New("Ablation A2: scheduler quantum vs PC-rewind rate",
		"quantum (cycles)", "rewinds", "rewinds/kread", "torn measurements")
	for _, row := range r.Rows {
		t.Row(row.Quantum, row.Rewinds, row.RewindsPerKRead, row.Torn)
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// A3: lock spin budget (usync design knob under the case studies).
// ---------------------------------------------------------------------------

// A3Row is one spin budget's effect on the MySQL model.
type A3Row struct {
	Spins       int
	MeanAcquire float64
	CtxSwitches uint64
	RunMcycles  float64
}

// A3Result sweeps the mutex spin-then-park threshold: too little
// spinning converts short waits into parking (kernel switches); the
// measured acquisition latencies shift accordingly.
type A3Result struct {
	Rows []A3Row
}

// RunAblationSpins sweeps the spin budget on the MySQL model.
func RunAblationSpins(s Scale) (*A3Result, error) {
	budgets := []int{0, 10, 40, 200, 1000}
	rows, err := runPar(len(budgets), func(i int) (A3Row, error) {
		spins := budgets[i]
		cfg := scaleMySQL(workloads.DefaultMySQL(), s)
		cfg.Spins = spins
		app := workloads.BuildMySQL(cfg, workloads.LimitInstr())
		m, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return A3Row{}, fmt.Errorf("a3 spins-%d run: %w", spins, res.Err)
		}
		p := analysis.CollectSync(app)
		return A3Row{
			Spins:       spins,
			MeanAcquire: p.Acq.Mean(),
			CtxSwitches: m.Kern.Stats.CtxSwitches,
			RunMcycles:  float64(res.Cycles) / 1e6,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &A3Result{Rows: rows}, nil
}

// Render writes the spin ablation.
func (r *A3Result) Render(w io.Writer) {
	t := tabwrite.New("Ablation A3: mutex spin budget (MySQL model)",
		"spins", "mean acquire (cyc)", "ctx switches", "run Mcycles")
	for _, row := range r.Rows {
		t.Row(row.Spins, row.MeanAcquire, row.CtxSwitches, row.RunMcycles)
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// A4: scheduler placement policy (migration / work stealing).
// ---------------------------------------------------------------------------

// A4Row is one scheduler policy's behavior on the MySQL model.
type A4Row struct {
	Policy     string
	Migrations uint64
	Steals     uint64
	RunMcycles float64
}

// A4Result toggles wake-time migration and work stealing; counter
// virtualization keeps measurements exact under every policy (the
// LiMiT property the paper relies on for multicore studies).
type A4Result struct {
	Rows []A4Row
}

// RunAblationScheduler sweeps placement policies.
func RunAblationScheduler(s Scale) (*A4Result, error) {
	specs := []struct {
		name           string
		migrate, steal bool
	}{
		{"affinity, no stealing", false, false},
		{"affinity + stealing", false, true},
		{"migrate-on-wake", true, false},
		{"migrate + stealing", true, true},
	}
	rows, err := runPar(len(specs), func(i int) (A4Row, error) {
		spec := specs[i]
		kcfg := kernel.DefaultConfig()
		kcfg.MigrateOnWake = spec.migrate
		kcfg.WorkStealing = spec.steal
		cfg := scaleMySQL(workloads.DefaultMySQL(), s)
		app := workloads.BuildMySQL(cfg, workloads.LimitInstr())
		m, res, _ := app.Run(machine.Config{NumCores: 4, Kernel: kcfg}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return A4Row{}, fmt.Errorf("a4 %s run: %w", spec.name, res.Err)
		}
		return A4Row{
			Policy:     spec.name,
			Migrations: m.Kern.Stats.Migrations,
			Steals:     m.Kern.Stats.Steals,
			RunMcycles: float64(res.Cycles) / 1e6,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &A4Result{Rows: rows}, nil
}

// Render writes the scheduler ablation.
func (r *A4Result) Render(w io.Writer) {
	t := tabwrite.New("Ablation A4: scheduler placement policy (MySQL model)",
		"policy", "migrations", "steals", "run Mcycles")
	for _, row := range r.Rows {
		t.Row(row.Policy, row.Migrations, row.Steals, row.RunMcycles)
	}
	t.Render(w)
}
