package experiments

import (
	"fmt"
	"io"
	"math"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// T4Row compares sampled attribution against precise measurement at
// one sampling period.
type T4Row struct {
	PeriodCycles uint64
	Samples      uint64
	SampledAcq   float64
	SampledCS    float64
	ErrAcq       float64 // |sampled − precise|, absolute share points
	ErrCS        float64
}

// T4Result reproduces Table 4: sampling versus precise counting on the
// MySQL model. Precise shares come from LiMiT instrumentation of every
// lock operation; sampled shares come from PC-sample attribution at
// several periods. Coarse periods miss the short synchronization
// regions entirely; fine periods approach the precise shares but at
// interrupt rates that perturb the program — the precision/speed
// tradeoff the paper quantifies. Per-operation measurement (e.g. "how
// long was *this* critical section") is impossible with sampling at
// any period.
type T4Result struct {
	PreciseAcq float64
	PreciseCS  float64
	Rows       []T4Row
}

// RunTable4 runs the comparison.
func RunTable4(s Scale) (*T4Result, error) {
	cfg := scaleMySQL(workloads.DefaultMySQL(), s)

	// Precise run.
	app := workloads.BuildMySQL(cfg, workloads.LimitInstr())
	_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
	if res.Err != nil {
		return nil, fmt.Errorf("table4 precise run: %w", res.Err)
	}
	d := analysis.CollectSync(app).Decompose()
	r := &T4Result{PreciseAcq: d.AcquireShare, PreciseCS: d.CSShare}

	for _, period := range []uint64{1_000_000, 100_000, 10_000} {
		sApp := workloads.BuildMySQL(cfg, workloads.Instrumentation{
			Kind: probe.KindSample, SamplePeriod: period,
		})
		m, sres, _ := sApp.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if sres.Err != nil {
			return nil, fmt.Errorf("table4 sampled run @%d: %w", period, sres.Err)
		}
		acq, cs, n := analysis.SampledShares(m.Kern.Samples(), sApp, period)
		r.Rows = append(r.Rows, T4Row{
			PeriodCycles: period,
			Samples:      n,
			SampledAcq:   acq,
			SampledCS:    cs,
			ErrAcq:       math.Abs(acq - r.PreciseAcq),
			ErrCS:        math.Abs(cs - r.PreciseCS),
		})
	}
	return r, nil
}

// Render writes the table.
func (r *T4Result) Render(w io.Writer) {
	t := tabwrite.New("Table 4: sampling vs precise attribution (MySQL model)",
		"method", "samples", "acquire share", "cs share", "err(acquire)", "err(cs)")
	t.Row("LiMiT precise", "-", pct(r.PreciseAcq), pct(r.PreciseCS), "-", "-")
	for _, row := range r.Rows {
		t.Row(
			"sampling @"+itoa(row.PeriodCycles),
			row.Samples,
			pct(row.SampledAcq), pct(row.SampledCS),
			pct(row.ErrAcq), pct(row.ErrCS),
		)
	}
	t.Render(w)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
