package experiments

import (
	"fmt"
	"io"
	"math"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
)

// T5Row is one counter-count's multiplexing error.
type T5Row struct {
	Counters   int
	LoadedPct  float64 // mean fraction of scheduled time each counter was loaded
	MeanAbsErr float64 // mean |estimate − truth| / truth over the set
	MaxAbsErr  float64
}

// T5Result measures the estimation error Linux-style counter
// multiplexing introduces when a thread wants more simultaneous events
// than the PMU has slots — the limitation motivating the paper's call
// for more (and more cheaply accessible) counters. The workload is
// deliberately bursty (alternating hot phases), the worst case for
// time-extrapolated estimates: a counter that happens to be unloaded
// during a burst mis-extrapolates it. With counters ≤ slots the error
// is exactly zero.
type T5Result struct {
	Rows []T5Row
}

// RunTable5 sweeps the per-thread counter count on a 4-slot PMU.
func RunTable5(s Scale) (*T5Result, error) {
	iters := s.iters(400)
	counts := []int{2, 4, 8, 16}
	rows, err := runPar(len(counts), func(ci int) (T5Row, error) {
		nCounters := counts[ci]
		kcfg := kernel.DefaultConfig()
		kcfg.Quantum = 4_000

		b := isa.NewBuilder()
		for i := 0; i < nCounters; i++ {
			b.MovImm(isa.R0, int64(pmu.EvInstructions))
			b.MovImm(isa.R1, int64(kernel.FlagUser))
			b.Syscall(kernel.SysPerfOpen)
		}
		b.MovImm(isa.R8, 0)
		b.Label("loop")
		// Bursty phases: 1-in-4 iterations runs an 8x burst.
		burst := "burst"
		next := "next"
		b.BrRand(64, burst)
		b.Compute(300)
		b.Jmp(next)
		b.Label(burst)
		b.Compute(2_400)
		b.Label(next)
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, int64(iters))
		b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
		b.Halt()
		prog := b.MustBuild()

		m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
		proc := m.Kern.NewProcess(prog, nil)
		th := m.Kern.Spawn(proc, "mux", 0, 31)
		m.Kern.Spawn(proc, "rival", 0, 32)
		res := m.Run(machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return T5Row{}, fmt.Errorf("table5 %d-counter run: %w", nCounters, res.Err)
		}
		if !res.AllDone {
			return T5Row{}, fmt.Errorf("table5 %d-counter run: incomplete after %d steps", nCounters, res.Steps)
		}

		truth := float64(th.Stats.UserInstructions)
		row := T5Row{Counters: nCounters}
		var loadedSum float64
		for fd := 0; fd < nCounters; fd++ {
			v, ferr := perfevent.FinalValue(th, fd)
			if ferr != nil {
				return T5Row{}, fmt.Errorf("table5 %d-counter run: %w", nCounters, ferr)
			}
			err := math.Abs(float64(v)-truth) / truth
			row.MeanAbsErr += err
			if err > row.MaxAbsErr {
				row.MaxAbsErr = err
			}
			tc := th.Counters()[fd]
			if tc.WindowCycles > 0 {
				loadedSum += float64(tc.ActiveCycles) / float64(tc.WindowCycles)
			} else {
				loadedSum += 1
			}
		}
		row.MeanAbsErr /= float64(nCounters)
		row.LoadedPct = loadedSum / float64(nCounters) * 100
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &T5Result{Rows: rows}, nil
}

// Row returns the row for a counter count.
func (r *T5Result) Row(n int) (T5Row, bool) {
	for _, row := range r.Rows {
		if row.Counters == n {
			return row, true
		}
	}
	return T5Row{}, false
}

// Render writes the table.
func (r *T5Result) Render(w io.Writer) {
	t := tabwrite.New("Table 5: counter multiplexing estimation error (4 hardware slots, bursty workload)",
		"counters", "loaded %", "mean |err|", "max |err|")
	for _, row := range r.Rows {
		t.Row(row.Counters, row.LoadedPct,
			pct(row.MeanAbsErr), pct(row.MaxAbsErr))
	}
	t.Render(w)
}
