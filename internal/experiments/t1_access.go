package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// T1Row is one access method's measured read cost.
type T1Row struct {
	Method      string
	CyclesRead  float64
	NsRead      float64
	RatioVsLiMT float64 // cost relative to LiMiT
	Precise     bool    // can it measure an individual region?
	Virtualized bool    // does descheduled time stay out of readings?
}

// T1Result reproduces Table 1: counter access method comparison.
type T1Result struct {
	Rows  []T1Row
	Iters int
}

// RunTable1 measures each access method's per-read cost with a
// tight loop against the uninstrumented baseline.
func RunTable1(s Scale) (*T1Result, error) {
	iters := s.iters(20_000)
	const work = 200

	run := func(kind probe.Kind) (uint64, error) {
		app := workloads.BuildReadLoop(workloads.ReadLoopConfig{
			Name: "t1-" + string(kind), Threads: 1, Iters: iters, WorkInstrs: work,
		}, workloads.Instrumentation{Kind: kind})
		_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return 0, fmt.Errorf("table1 %s run: %w", kind, res.Err)
		}
		return res.Cycles, nil
	}

	r := &T1Result{Iters: iters}
	type rowSpec struct {
		kind        probe.Kind
		precise     bool
		virtualized bool
	}
	specs := []rowSpec{
		{probe.KindNull, false, false}, // uninstrumented baseline, not a row
		{probe.KindRdtsc, true, false},
		{probe.KindLimit, true, true},
		{probe.KindPerf, true, true},
		{probe.KindPAPI, true, true},
	}
	cycles, err := runPar(len(specs), func(i int) (uint64, error) {
		return run(specs[i].kind)
	})
	if err != nil {
		return nil, err
	}
	base := cycles[0]
	perRead := func(c uint64) float64 {
		if c <= base {
			return 0
		}
		return float64(c-base) / float64(iters)
	}

	var limitCost float64
	for i, sp := range specs[1:] {
		c := perRead(cycles[1+i])
		if sp.kind == probe.KindLimit {
			limitCost = c
		}
		r.Rows = append(r.Rows, T1Row{
			Method:      string(sp.kind),
			CyclesRead:  c,
			NsRead:      c * NsPerCycle,
			Precise:     sp.precise,
			Virtualized: sp.virtualized,
		})
	}
	// Sampling has no reads; its cost is per-interrupt, reported as 0
	// per read with precision marked absent.
	r.Rows = append(r.Rows, T1Row{Method: string(probe.KindSample)})
	for i := range r.Rows {
		if limitCost > 0 {
			r.Rows[i].RatioVsLiMT = r.Rows[i].CyclesRead / limitCost
		}
	}
	return r, nil
}

// LimitNs returns LiMiT's measured per-read nanoseconds.
func (r *T1Result) LimitNs() float64 {
	for _, row := range r.Rows {
		if row.Method == string(probe.KindLimit) {
			return row.NsRead
		}
	}
	return 0
}

// Row returns the named method's row.
func (r *T1Result) Row(method string) (T1Row, bool) {
	for _, row := range r.Rows {
		if row.Method == method {
			return row, true
		}
	}
	return T1Row{}, false
}

// Render writes the table.
func (r *T1Result) Render(w io.Writer) {
	t := tabwrite.New("Table 1: counter access methods (per-read cost)",
		"method", "cycles/read", "ns/read", "vs LiMiT", "precise", "virtualized")
	for _, row := range r.Rows {
		precise, virt := "no", "no"
		if row.Precise {
			precise = "yes"
		}
		if row.Virtualized {
			virt = "yes"
		}
		if row.Method == string(probe.KindSample) {
			t.Row(row.Method, "-", "-", "-", "no (statistical)", "yes")
			continue
		}
		t.Row(row.Method, row.CyclesRead, row.NsRead, row.RatioVsLiMT, precise, virt)
	}
	t.Render(w)
}
