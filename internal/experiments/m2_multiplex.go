package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/invariant"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/metrics"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/tls"
	"limitsim/internal/workloads"
)

// M2 — event-group multiplexing error against exact LiMiT reads. The
// application models open the full derived-metric event set (16 events)
// as multiplexed groups on a 6-counter PMU while their LiMiT counters
// keep counting the same quantities exactly. Sweeping the rotation
// quantum and the group width quantifies the estimation error the
// paper's "more counters, read exactly" position eliminates:
//
//   - exact-err compares the groups' scaled estimates of cycles (and
//     user+kernel cycles; instructions for churn) against the exact
//     LiMiT virtualized counters measuring the same windows — the
//     measurable gap a real system would see.
//   - truth-err compares every estimate against the simulator's
//     omniscient per-event ground truth — including events (TLB walks,
//     context switches) no spare counter was left to measure exactly.
//   - The invariant oracle audits group accounting and the frame
//     stream on every cell; violations must be zero.
type M2Row struct {
	App      string
	Rotation uint64 // mux quantum in scheduled cycles
	Width    int    // events per group

	Groups    int     // groups opened across all threads
	Rotations uint64  // mux rotations fired
	Frames    int     // frames emitted
	LoadedPct float64 // mean running/enabled across groups

	ExactErrPct     float64 // mean |estimate-exact|/exact vs LiMiT reads
	MeanTruthErrPct float64 // mean |estimate-truth|/truth, all events
	MaxTruthErrPct  float64

	Violations int
}

// M2Result is the full sweep.
type M2Result struct {
	Rows []M2Row
}

// m2Ref pairs a frame/sample name with the LiMiT counter index
// measuring the same quantity exactly.
type m2Ref struct {
	sample string
	ctr    int
}

// m2Cell describes one grid point.
type m2Cell struct {
	app      string
	rotation uint64
	width    int
}

// RunM2 sweeps application x rotation quantum x group width.
func RunM2(s Scale) (*M2Result, error) {
	apps := []string{"mysql", "apache", "firefox", "churn"}
	rotations := []uint64{20_000, 80_000, 320_000}
	widths := []int{2, 4}

	var cells []m2Cell
	for _, a := range apps {
		for _, rot := range rotations {
			for _, w := range widths {
				cells = append(cells, m2Cell{a, rot, w})
			}
		}
	}

	rows, err := runPar(len(cells), func(ci int) (M2Row, error) {
		return runM2Cell(cells[ci], s)
	})
	if err != nil {
		return nil, err
	}
	return &M2Result{Rows: rows}, nil
}

// m2Machine is the cell machine config: 6 programmable counters so the
// two pinned LiMiT counters leave 4 slots for group rotation.
func m2Machine(cores int, rotation uint64) machine.Config {
	f := pmu.DefaultFeatures()
	f.NumCounters = 6
	kcfg := kernel.DefaultConfig()
	kcfg.MuxQuantum = rotation
	return machine.Config{NumCores: cores, PMU: f, Kernel: kcfg}
}

func runM2Cell(c m2Cell, s Scale) (M2Row, error) {
	groups := workloads.DefaultMuxGroups(c.width)
	refs := []m2Ref{{"cycles", 0}, {"cycles:uk", 1}}

	var m *machine.Machine
	switch c.app {
	case "churn":
		// Churn managers count (instructions, user cycles) exactly.
		refs = []m2Ref{{"instructions", 0}, {"cycles", 1}}
		w := workloads.BuildChurn(workloads.ChurnConfig{
			Pool:      3,
			Waves:     s.count(6),
			Iters:     s.iters(40),
			MuxGroups: groups,
		})
		m = machine.New(m2Machine(2, c.rotation))
		proc := m.Kern.NewProcess(w.Prog, w.Space)
		for mt := 0; mt < len(w.Entries); mt++ {
			mgr := m.Kern.Spawn(proc, "churn-mgr", w.Entries[mt], 7+uint64(mt))
			mgr.SetReg(tls.SlotReg, uint64(w.ManagerSlot(mt)))
		}
		res := m.Run(machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil || !res.AllDone {
			return M2Row{}, fmt.Errorf("m2 churn: %+v", res)
		}
	default:
		ins := workloads.LimitInstr()
		ins.MuxGroups = groups
		var app *workloads.App
		switch c.app {
		case "mysql":
			app = workloads.BuildMySQL(scaleMySQL(workloads.DefaultMySQL(), s), ins)
		case "apache":
			acfg := workloads.DefaultApache()
			acfg.RequestsPerWorker = s.iters(acfg.RequestsPerWorker)
			app = workloads.BuildApache(acfg, ins)
		case "firefox":
			fcfg := workloads.DefaultFirefox()
			fcfg.EventsPerThread = s.iters(fcfg.EventsPerThread)
			app = workloads.BuildFirefox(fcfg, ins)
		}
		var res machine.RunResult
		m, res, _ = app.Run(m2Machine(4, c.rotation), machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil || !res.AllDone {
			return M2Row{}, fmt.Errorf("m2 %s: %+v", c.app, res)
		}
	}

	row := M2Row{App: c.app, Rotation: c.rotation, Width: c.width}
	row.Rotations = m.Kern.Stats.MuxRotations
	row.Frames = len(m.Kern.Frames())

	var loadedSum float64
	var loadedN int
	var truthErrSum float64
	var truthErrN int
	exactErr := make([]float64, len(refs))
	exactN := make([]int, len(refs))
	for _, t := range m.Kern.Threads() {
		gs := t.Groups()
		if len(gs) == 0 {
			continue
		}
		row.Groups += len(gs)
		for _, g := range gs {
			if g.EnabledCycles > 0 {
				loadedSum += float64(g.RunningCycles) / float64(g.EnabledCycles)
				loadedN++
			}
			for i := range g.Events {
				if g.True[i] == 0 {
					continue
				}
				e := relErr(g.Estimate(i), g.True[i])
				truthErrSum += e
				truthErrN++
				if p := 100 * e; p > row.MaxTruthErrPct {
					row.MaxTruthErrPct = p
				}
			}
		}
		for ri, ref := range refs {
			est, ok := threadSampleEstimate(t, ref.sample)
			if !ok {
				continue
			}
			exact, estimated, err := limit.ThreadValue(t, ref.ctr)
			if err != nil || estimated || exact == 0 {
				continue // degraded or counterless thread: no exact reference
			}
			exactErr[ri] += relErr(est, exact)
			exactN[ri]++
		}
	}
	if loadedN > 0 {
		row.LoadedPct = 100 * loadedSum / float64(loadedN)
	}
	if truthErrN > 0 {
		row.MeanTruthErrPct = 100 * truthErrSum / float64(truthErrN)
	}
	var errSum float64
	var errN int
	for ri := range refs {
		if exactN[ri] > 0 {
			errSum += exactErr[ri] / float64(exactN[ri])
			errN++
		}
	}
	if errN > 0 {
		row.ExactErrPct = 100 * errSum / float64(errN)
	}

	chk := invariant.New(nil)
	chk.CheckGroups(m.Kern)
	row.Violations = chk.Count()
	return row, nil
}

// threadSampleEstimate finds the thread's scaled estimate for the
// named sample (first matching group event wins).
func threadSampleEstimate(t *kernel.Thread, name string) (uint64, bool) {
	for _, g := range t.Groups() {
		for i, ge := range g.Events {
			if metrics.SampleName(ge) == name {
				return g.Estimate(i), true
			}
		}
	}
	return 0, false
}

func relErr(est, truth uint64) float64 {
	var d uint64
	if est > truth {
		d = est - truth
	} else {
		d = truth - est
	}
	return float64(d) / float64(truth)
}

// Clean reports whether every cell held the group invariants.
func (r *M2Result) Clean() bool {
	for _, row := range r.Rows {
		if row.Violations != 0 {
			return false
		}
	}
	return true
}

// Render writes the sweep table.
func (r *M2Result) Render(w io.Writer) {
	t := tabwrite.New(
		"M2: multiplexed-estimate error vs exact LiMiT reads — rotation quantum x group width",
		"app", "rotation", "width", "groups", "rotations", "frames",
		"loaded %", "exact-err %", "truth-err %", "max-truth-err %", "violations")
	for _, row := range r.Rows {
		t.Row(row.App, row.Rotation, row.Width, row.Groups, row.Rotations,
			row.Frames, fmt.Sprintf("%.1f", row.LoadedPct),
			fmt.Sprintf("%.3f", row.ExactErrPct),
			fmt.Sprintf("%.3f", row.MeanTruthErrPct),
			fmt.Sprintf("%.3f", row.MaxTruthErrPct),
			row.Violations)
	}
	t.Render(w)
}
