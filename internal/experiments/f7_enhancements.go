package experiments

import (
	"io"

	"limitsim/internal/tabwrite"
)

// F7Result reproduces Figure 7: the paper's three proposed hardware
// enhancements evaluated against stock hardware and the lock-based
// software alternative —
//
//	e1 64-bit writable counters: the virtual counter, overflow folding
//	   and fixup all disappear; a read is one instruction.
//	e2 destructive reads: an interval measurement is one atomic
//	   read-and-reset instruction.
//	e3 hardware counter virtualization: counter save/restore leaves
//	   the context-switch path.
type F7Result struct {
	Reads    *T2Result
	Switches *T3Result
}

// RunFig7 measures all enhancement configurations.
func RunFig7(s Scale) (*F7Result, error) {
	reads, err := RunTable2(s)
	if err != nil {
		return nil, err
	}
	switches, err := RunTable3(s)
	if err != nil {
		return nil, err
	}
	return &F7Result{Reads: reads, Switches: switches}, nil
}

// Render writes the composed figure.
func (r *F7Result) Render(w io.Writer) {
	t := tabwrite.New("Figure 7a: read cost under hardware enhancements",
		"configuration", "cycles/read", "ns/read", "vs stock")
	stock, _ := r.Reads.Row(VariantStock)
	for _, v := range []ReadVariant{VariantLocked, VariantStock, VariantE1, VariantE2} {
		row, ok := r.Reads.Row(v)
		if !ok {
			continue
		}
		ratio := 0.0
		if stock.CyclesRead > 0 {
			ratio = row.CyclesRead / stock.CyclesRead
		}
		t.Row(string(v), row.CyclesRead, row.NsRead, ratio)
	}
	t.Render(w)

	t2 := tabwrite.New("Figure 7b: context-switch cost under hardware virtualization",
		"configuration", "cycles/switch", "extra vs no counters")
	for _, name := range []string{"no counters", "4 LiMiT counters", "4 perf counters", "4 LiMiT + hw-virt (e3)"} {
		row, ok := r.Switches.Row(name)
		if !ok {
			continue
		}
		t2.Row(name, row.CyclesPerSwitch, row.DeltaVsNone)
	}
	t2.Render(w)
}
