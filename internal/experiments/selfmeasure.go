package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/telemetry"
)

// Self-measurement: LiMiT measuring LiMiT. The paper's motivating
// table compares counter access costs by measuring each path with an
// external harness; this experiment closes the loop by using LiMiT's
// own read sequence as the measuring instrument. A single thread opens
// an all-rings cycle counter and brackets each probe — an empty region,
// a calibration compute block, a trivial syscall, a perf-style counter
// read, a yield round trip — with EmitMeasureStart/EmitMeasureEnd,
// logging every delta to the kernel for host-side aggregation. Because
// the counter is virtualized, descheduled time stays out of the deltas
// and the syscall probes report pure kernel-path cost.
//
// The run also carries the kernel telemetry layer, so the same paths
// are measured twice and independently: from the inside by LiMiT's
// instruction stream, and from the outside by the kernel's own
// histograms. The report renders both; agreement is the cross-check.

// SelfProbe is one probe's aggregated LiMiT measurements.
type SelfProbe struct {
	Name string
	N    int
	Min  uint64
	Max  uint64
	Mean float64
	// Net is Mean minus the null probe's mean — the probe body's cost
	// with the read sequence's own contribution removed.
	Net float64
	// Static is the statically configured kernel cost of the probe's
	// syscall path (0 when the probe has no fixed kernel cost).
	Static uint64
}

// SelfResult is the self-measurement experiment's outcome.
type SelfResult struct {
	Iters  int
	Probes []SelfProbe
	// Telemetry is the kernel's own metrics for the same run — the
	// outside view of the paths LiMiT measured from the inside.
	Telemetry *telemetry.Registry
}

// RunSelfMeasure executes the self-measurement program and aggregates
// the logged deltas.
func RunSelfMeasure(s Scale) (*SelfResult, error) {
	iters := s.iters(2_000)
	costs := kernel.DefaultConfig().Costs

	type probeSpec struct {
		name   string
		static uint64
		body   func(b *isa.Builder)
	}
	specs := []probeSpec{
		{"null (read sequence only)", 0, func(b *isa.Builder) {}},
		{"compute-100 (calibration)", 0, func(b *isa.Builder) { b.Compute(100) }},
		{"gettid syscall", costs.SyscallEntry + costs.Simple + costs.SyscallExit,
			func(b *isa.Builder) { b.Syscall(kernel.SysGetTID) }},
		{"perf counter read", costs.SyscallEntry + costs.PerfRead + costs.SyscallExit,
			func(b *isa.Builder) {
				b.Mov(isa.R0, isa.R10)
				b.Syscall(kernel.SysPerfRead)
			}},
		{"yield round trip", 0, func(b *isa.Builder) { b.Syscall(kernel.SysYield) }},
	}

	space := mem.NewSpace()
	b := isa.NewBuilder()
	table := limit.AllocTable(space, 1)
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.AllRingsCounter(pmu.EvCycles))
	e.EmitInit()
	// A perf-style counter held open for the whole run gives the
	// perf-read probe its target fd (kept in R10, which no probe
	// clobbers).
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser|kernel.FlagKernel))
	b.Syscall(kernel.SysPerfOpen)
	b.Mov(isa.R10, isa.R0)
	for pi, sp := range specs {
		b.MovImm(isa.R8, 0)
		loop := fmt.Sprintf("self.p%d", pi)
		b.Label(loop)
		e.EmitMeasureStart(isa.R4, isa.R5, ctr)
		sp.body(b)
		e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
		b.MovImm(isa.R0, int64(pi))
		b.Mov(isa.R1, isa.R6)
		b.Syscall(kernel.SysLogValue)
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, int64(iters))
		b.Br(isa.CondLT, isa.R8, isa.R9, loop)
	}
	b.Mov(isa.R0, isa.R10)
	b.Syscall(kernel.SysPerfClose)
	b.Halt()
	e.EmitFinish()
	prog := b.MustBuild()

	reg := telemetry.NewRegistry()
	m := machine.New(machine.Config{NumCores: 1})
	m.Kern.SetMetrics(kernel.NewMetrics(reg))
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "self", 0, 7)
	res := m.Run(machine.RunLimits{MaxSteps: runSteps})
	if res.Err != nil {
		return nil, fmt.Errorf("selfmeasure run: %w", res.Err)
	}

	sums := make([]uint64, len(specs))
	mins := make([]uint64, len(specs))
	maxs := make([]uint64, len(specs))
	ns := make([]int, len(specs))
	for _, le := range m.Kern.Logs() {
		pi := int(le.Tag)
		if pi < 0 || pi >= len(specs) {
			continue
		}
		v := le.Value
		if ns[pi] == 0 || v < mins[pi] {
			mins[pi] = v
		}
		if v > maxs[pi] {
			maxs[pi] = v
		}
		sums[pi] += v
		ns[pi]++
	}

	r := &SelfResult{Iters: iters, Telemetry: reg}
	nullMean := 0.0
	if ns[0] > 0 {
		nullMean = float64(sums[0]) / float64(ns[0])
	}
	for pi, sp := range specs {
		p := SelfProbe{Name: sp.name, N: ns[pi], Min: mins[pi], Max: maxs[pi], Static: sp.static}
		if p.N > 0 {
			p.Mean = float64(sums[pi]) / float64(p.N)
			if net := p.Mean - nullMean; net > 0 && pi > 0 {
				p.Net = net
			}
		}
		r.Probes = append(r.Probes, p)
	}
	return r, nil
}

// Probe returns the named probe's row.
func (r *SelfResult) Probe(name string) (SelfProbe, bool) {
	for _, p := range r.Probes {
		if p.Name == name {
			return p, true
		}
	}
	return SelfProbe{}, false
}

// Render writes the probe table and the kernel's outside view of the
// same run.
func (r *SelfResult) Render(w io.Writer) {
	t := tabwrite.New(
		fmt.Sprintf("Self-measurement: LiMiT measuring its own substrate (%d reads/probe, cycles)", r.Iters),
		"probe", "n", "min", "mean", "max", "net of read", "static cost")
	for _, p := range r.Probes {
		net, static := "-", "-"
		if p.Net > 0 {
			net = fmt.Sprintf("%.0f", p.Net)
		}
		if p.Static > 0 {
			static = fmt.Sprintf("%d", p.Static)
		}
		t.Row(p.Name, p.N, p.Min, fmt.Sprintf("%.1f", p.Mean), p.Max, net, static)
	}
	t.Render(w)

	// The outside view: the kernel's telemetry for the paths the
	// probes crossed. Syscall counts include the per-iteration
	// SysLogValue bookkeeping; the switch histograms are the kernel's
	// own cost accounting for the yield probe's round trips.
	k := tabwrite.New("Kernel telemetry cross-check (same run, outside view)",
		"metric", "value")
	if c := r.Telemetry.LookupCounter("kern.syscalls"); c != nil {
		k.Row("syscalls handled", c.Value())
	}
	for _, name := range []string{"kern.switch.out.cycles", "kern.switch.in.cycles"} {
		if h := r.Telemetry.LookupHistogram(name); h != nil && h.Count() > 0 {
			k.Row(name+" mean", fmt.Sprintf("%.1f", h.Mean()))
		}
	}
	if c := r.Telemetry.LookupCounter("kern.rewinds.taken"); c != nil {
		k.Row("fixup rewinds taken", c.Value())
	}
	if c := r.Telemetry.LookupCounter("kern.rewinds.avoided"); c != nil {
		k.Row("switches w/o rewind", c.Value())
	}
	k.Render(w)
}
