package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// F9Row summarizes one run configuration of the consolidation study.
type F9Row struct {
	Config      string
	RunMcycles  float64
	CSMedian    uint64
	CSP99       uint64
	AcqMean     float64
	KernelShare float64
	// MeasurementIntact reports that every thread's LiMiT cycle total
	// matched its kernel ground truth within the setup prologue — the
	// property that makes measurements trustworthy under interference.
	MeasurementIntact bool
}

// F9Result reproduces the consolidation study behind the paper's
// cloud-era implications. Co-locating a second application inflates
// wall-clock time, yet the critical-section lengths measured in
// virtualized user cycles barely move: per-thread counters exclude the
// co-runner's time slices entirely, so interference shows up where it
// belongs (wall time, scheduling) and not as measurement noise. A
// wall-clock-based profiler (rdtsc) or a sampler would conflate the
// two — the paper's argument for virtualized precise counters in
// consolidated cloud workloads.
type F9Result struct {
	Rows []F9Row
}

// RunFig9 runs MySQL solo and co-located with Apache on the same
// 4-core machine.
func RunFig9(s Scale) (*F9Result, error) {
	r := &F9Result{}

	run := func(name string, withApache bool) error {
		mcfg := machine.Config{NumCores: 4}
		m := machine.New(mcfg)

		mysql := workloads.BuildMySQL(scaleMySQL(workloads.DefaultMySQL(), s), workloads.LimitInstr())
		mysqlThreads := mysql.Launch(m)

		if withApache {
			acfg := workloads.DefaultApache()
			acfg.RequestsPerWorker = s.iters(acfg.RequestsPerWorker)
			apache := workloads.BuildApache(acfg, workloads.LimitInstr())
			apache.Launch(m)
		}

		res := m.Run(machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return fmt.Errorf("fig9 %s: %w", name, res.Err)
		}

		p := analysis.CollectSync(mysql)
		d := p.Decompose()

		// Integrity check: every MySQL thread's measured user-cycle
		// total must sit just below its kernel-side ground truth (the
		// gap is the pre-open setup prologue).
		intact := true
		for i, plan := range mysql.Plans {
			tb := mysql.ThreadBase(plan)
			measured := mysql.Space.Read64(mysql.Bodies[plan.Body].TotalCycles.Resolve(tb))
			truth := mysqlThreads[i].Stats.UserCycles
			if measured > truth || truth-measured > 2500 {
				intact = false
			}
		}

		r.Rows = append(r.Rows, F9Row{
			Config:            name,
			RunMcycles:        float64(res.Cycles) / 1e6,
			CSMedian:          p.CS.Median(),
			CSP99:             p.CS.Percentile(99),
			AcqMean:           p.Acq.Mean(),
			KernelShare:       d.KernelShare,
			MeasurementIntact: intact,
		})
		return nil
	}

	if err := run("mysql solo", false); err != nil {
		return nil, err
	}
	if err := run("mysql + apache co-located", true); err != nil {
		return nil, err
	}
	return r, nil
}

// Render writes the consolidation table.
func (r *F9Result) Render(w io.Writer) {
	t := tabwrite.New("Figure 9: consolidation interference (MySQL measured by LiMiT)",
		"config", "run Mcycles", "CS p50", "CS p99", "mean acquire", "kernel share", "measurements intact")
	for _, row := range r.Rows {
		intact := "no"
		if row.MeasurementIntact {
			intact = "yes"
		}
		t.Row(row.Config, row.RunMcycles, row.CSMedian, row.CSP99,
			row.AcqMean, pct(row.KernelShare), intact)
	}
	t.Render(w)
}
