package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// AppProfile bundles one application's collected synchronization
// profile.
type AppProfile struct {
	Name    string
	Profile *analysis.SyncProfile
	Decomp  analysis.Decomposition
}

// CaseStudyResult holds the instrumented runs behind Figures 3, 4 and
// 6: the MySQL, Apache and Firefox models measured with LiMiT.
type CaseStudyResult struct {
	Apps []AppProfile
}

// scaleMySQL shrinks the MySQL config by s.
func scaleMySQL(cfg workloads.MySQLConfig, s Scale) workloads.MySQLConfig {
	cfg.TxnsPerWorker = s.iters(cfg.TxnsPerWorker)
	return cfg
}

// RunCaseStudies runs the three application models with LiMiT
// instrumentation on a 4-core machine and collects their profiles.
func RunCaseStudies(s Scale) (*CaseStudyResult, error) {
	r := &CaseStudyResult{}

	runOne := func(app *workloads.App) error {
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return fmt.Errorf("case study %s: %w", app.Name, res.Err)
		}
		p := analysis.CollectSync(app)
		r.Apps = append(r.Apps, AppProfile{Name: app.Name, Profile: p, Decomp: p.Decompose()})
		return nil
	}

	if err := runOne(workloads.BuildMySQL(scaleMySQL(workloads.DefaultMySQL(), s), workloads.LimitInstr())); err != nil {
		return nil, err
	}

	acfg := workloads.DefaultApache()
	acfg.RequestsPerWorker = s.iters(acfg.RequestsPerWorker)
	if err := runOne(workloads.BuildApache(acfg, workloads.LimitInstr())); err != nil {
		return nil, err
	}

	fcfg := workloads.DefaultFirefox()
	fcfg.EventsPerThread = s.iters(fcfg.EventsPerThread)
	if err := runOne(workloads.BuildFirefox(fcfg, workloads.LimitInstr())); err != nil {
		return nil, err
	}

	return r, nil
}

// App returns the named app's profile.
func (r *CaseStudyResult) App(name string) (AppProfile, bool) {
	for _, a := range r.Apps {
		if a.Name == name {
			return a, true
		}
	}
	return AppProfile{}, false
}

// RenderFig3 writes the critical-section length histograms (the
// paper's "critical sections are short" figure).
func (r *CaseStudyResult) RenderFig3(w io.Writer) {
	for _, a := range r.Apps {
		t := tabwrite.New(
			fmt.Sprintf("Figure 3 (%s): critical-section length distribution (cycles), n=%d, median=%d, p99=%d",
				a.Name, a.Profile.CS.N(), a.Profile.CS.Median(), a.Profile.CS.Percentile(99)),
			"bucket", "count", "share", "")
		for _, row := range a.Profile.CSHist.Rows() {
			t.Row(row.Label, row.Count, row.Share, tabwrite.Bar(row.Share, 40))
		}
		t.Render(w)
	}
}

// RenderFig4 writes the cycle decomposition per application.
func (r *CaseStudyResult) RenderFig4(w io.Writer) {
	t := tabwrite.New("Figure 4: user-cycle decomposition (LiMiT-instrumented)",
		"app", "lock-acquire", "critical-section", "other", "sync total", "ops")
	for _, a := range r.Apps {
		t.Row(a.Name, pct(a.Decomp.AcquireShare), pct(a.Decomp.CSShare),
			pct(a.Decomp.OtherShare), pct(a.Decomp.SyncShare), a.Profile.OpsTotal())
	}
	t.Render(w)
}

// RenderFig6 writes the kernel/user split per application.
func (r *CaseStudyResult) RenderFig6(w io.Writer) {
	t := tabwrite.New("Figure 6: kernel vs user cycles (ring-filtered LiMiT counters)",
		"app", "user Mcycles", "user+kernel Mcycles", "kernel share")
	for _, a := range r.Apps {
		t.Row(a.Name, float64(a.Decomp.User)/1e6, float64(a.Decomp.AllRing)/1e6,
			pct(a.Decomp.KernelShare))
	}
	t.Render(w)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F5Result reproduces Figure 5: the MySQL longitudinal study.
type F5Result struct {
	Rows []analysis.VersionRow
}

// RunFig5 runs the three MySQL version presets.
func RunFig5(s Scale) (*F5Result, error) {
	r := &F5Result{}
	for _, v := range []string{"3.23", "4.1", "5.1"} {
		cfg := scaleMySQL(workloads.MySQLVersion(v), s)
		app := workloads.BuildMySQL(cfg, workloads.LimitInstr())
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return nil, fmt.Errorf("fig5 mysql-%s: %w", v, res.Err)
		}
		p := analysis.CollectSync(app)
		txns := uint64(cfg.Workers * cfg.TxnsPerWorker)
		r.Rows = append(r.Rows, analysis.Longitudinal(v, txns, p))
	}
	return r, nil
}

// Render writes the longitudinal table.
func (r *F5Result) Render(w io.Writer) {
	t := tabwrite.New("Figure 5: MySQL synchronization across versions",
		"version", "locks/txn", "mean hold (cyc)", "mean acquire (cyc)", "sync share", "kernel share")
	for _, row := range r.Rows {
		t.Row(row.Version, row.LocksPerTxn, row.MeanHold, row.MeanAcq,
			pct(row.SyncShare), pct(row.KernelShare))
	}
	t.Render(w)
}
