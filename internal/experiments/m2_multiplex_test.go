package experiments

import (
	"strings"
	"testing"
)

func TestM2Shape(t *testing.T) {
	r, err := RunM2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4*3*2 {
		t.Fatalf("got %d rows, want 24", len(r.Rows))
	}
	if !r.Clean() {
		t.Error("group invariants violated in some cell")
	}
	byApp := make(map[string][]M2Row)
	for _, row := range r.Rows {
		byApp[row.App] = append(byApp[row.App], row)
		if row.Groups == 0 || row.Frames == 0 {
			t.Errorf("%s rot=%d w=%d: no groups (%d) or frames (%d)",
				row.App, row.Rotation, row.Width, row.Groups, row.Frames)
		}
		// Long quanta may legitimately never fire at Quick scale (a
		// thread must accumulate the whole quantum in scheduled cycles);
		// the shortest quantum must always rotate.
		if row.Rotations == 0 && row.Rotation == 20_000 {
			t.Errorf("%s rot=%d w=%d: multiplexing never rotated",
				row.App, row.Rotation, row.Width)
		}
		if row.LoadedPct <= 0 || row.LoadedPct > 100 {
			t.Errorf("%s rot=%d w=%d: loaded %.1f%% out of range",
				row.App, row.Rotation, row.Width, row.LoadedPct)
		}
		// Oversubscribed groups must actually multiplex: nothing should
		// be loaded 100% of the time on a 6-slot PMU carrying 16 events.
		if row.LoadedPct >= 100 {
			t.Errorf("%s rot=%d w=%d: loaded %.1f%%, expected multiplexing",
				row.App, row.Rotation, row.Width, row.LoadedPct)
		}
	}
	if len(byApp) != 4 {
		t.Fatalf("apps covered: %v", mapsKeys(byApp))
	}
	var sb strings.Builder
	r.Render(&sb)
	for _, app := range []string{"mysql", "apache", "firefox", "churn"} {
		if !strings.Contains(sb.String(), app) {
			t.Errorf("render missing %s rows", app)
		}
	}
}

func mapsKeys(m map[string][]M2Row) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
