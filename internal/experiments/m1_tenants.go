package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/chaos"
	"limitsim/internal/faultinject"
	"limitsim/internal/tabwrite"
)

// M1 — multi-tenant counter virtualization under the double context
// switch. A guest scheduler time-shares the simulated cores between N
// tenant VMs, so every vCPU preemption is a second scheduling level
// stacked on the thread scheduler: counters must survive save/restore
// at both levels and the PC-rewind fixup window must extend across the
// extra switch. This experiment sweeps tenant count × vCPU preemption
// rate and reports (a) the rewind traffic the double switch induces,
// (b) the share-by-cycles uncore attribution error against per-tenant
// ground truth, and (c) the invariant-oracle verdict — which must be
// zero violations at every cell, or the reproduction fails.

// M1Row is one (tenant count, preemption rate) cell.
type M1Row struct {
	Tenants int
	// Rate names the vCPU preemption intensity: "quantum-only" (tenant
	// quantum rotation, no injection), "1/N" (random preemption with
	// probability 1/N per boundary outside read regions), or
	// "region-storm" (forced preemption at every boundary inside a
	// registered read region — the adversarial placement).
	Rate string

	VCpuSwitches   uint64
	TenantPreempts uint64
	VCpuMigrations uint64
	Rewinds        uint64
	ReadsCompleted uint64

	UncoreTotal  uint64
	UncoreAbsErr uint64

	Violations uint64
	RunErrors  int
}

// UncoreErrPct is the attribution policy's summed |estimate − truth|
// as a percentage of the socket total.
func (r M1Row) UncoreErrPct() float64 {
	if r.UncoreTotal == 0 {
		return 0
	}
	return 100 * float64(r.UncoreAbsErr) / float64(r.UncoreTotal)
}

// M1Result is the full sweep.
type M1Result struct {
	Rows  []M1Row
	Seeds int
}

// RunM1 sweeps tenant count × vCPU preemption rate. Every cell is a
// small chaos campaign (the production harness, not a special path):
// the invariant checker and the tenant attribution oracles run on
// every seed.
func RunM1(s Scale) (*M1Result, error) {
	tenants := []int{2, 3, 4}
	type level struct {
		name   string
		inject faultinject.Config
	}
	levels := []level{
		{"quantum-only", faultinject.Config{}},
		{"1/2099", faultinject.Config{VCpuPreemptEvery: 2099}},
		{"1/701", faultinject.Config{VCpuPreemptEvery: 701}},
		{"region-storm", faultinject.Config{VCpuPreemptInRegions: true}},
	}
	seeds := s.count(4)
	iters := s.iters(400)

	type cell struct {
		tenants int
		level   level
	}
	var cells []cell
	for _, tn := range tenants {
		for _, lv := range levels {
			cells = append(cells, cell{tn, lv})
		}
	}

	rows, err := runPar(len(cells), func(ci int) (M1Row, error) {
		c := cells[ci]
		res := chaos.Run(chaos.Config{
			Seeds:    seeds,
			Iters:    iters,
			Tenants:  c.tenants,
			Parallel: 1, // cells already fan out; keep each cell serial
			Mixes: []chaos.Mix{{
				Name:   fmt.Sprintf("m1.t%d.%s", c.tenants, c.level.name),
				Inject: c.level.inject,
			}},
		})
		m := &res.Mixes[0]
		return M1Row{
			Tenants:        c.tenants,
			Rate:           c.level.name,
			VCpuSwitches:   m.VCpuSwitches,
			TenantPreempts: m.TenantPreempts,
			VCpuMigrations: m.VCpuMigrations,
			Rewinds:        m.Rewinds,
			ReadsCompleted: m.ReadsCompleted,
			UncoreTotal:    m.UncoreTotal,
			UncoreAbsErr:   m.UncoreAbsErr,
			Violations:     m.Violations(),
			RunErrors:      m.RunErrors,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &M1Result{Rows: rows, Seeds: seeds}, nil
}

// Clean reports whether every cell held all invariants and completed
// every run.
func (r *M1Result) Clean() bool {
	for _, row := range r.Rows {
		if row.Violations != 0 || row.RunErrors != 0 {
			return false
		}
	}
	return true
}

// Render writes the sweep table.
func (r *M1Result) Render(w io.Writer) {
	t := tabwrite.New(
		fmt.Sprintf("M1: tenant virtualization — attribution error and rewinds vs tenants x vCPU preemption rate (%d seeds/cell)", r.Seeds),
		"tenants", "preempt-rate", "vcpu-switches", "vcpu-preempts",
		"vcpu-migrations", "rewinds", "reads", "uncore-err %", "violations")
	for _, row := range r.Rows {
		t.Row(row.Tenants, row.Rate, row.VCpuSwitches, row.TenantPreempts,
			row.VCpuMigrations, row.Rewinds, row.ReadsCompleted,
			fmt.Sprintf("%.2f", row.UncoreErrPct()), row.Violations)
	}
	t.Render(w)
}
