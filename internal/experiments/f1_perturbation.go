package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/stats"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// F1Point is one (method, region size) measurement.
type F1Point struct {
	Method       string
	RegionInstrs int64
	MeanMeasured float64
	Inflation    float64 // mean measured / ideal region cycles
}

// F1Result reproduces Figure 1: self-perturbation of region
// measurements. Counters count user+kernel cycles, so each method's
// own trap and handler time lands inside the measured window; syscall
// methods inflate short regions by large factors while LiMiT's
// inflation stays near 1.
type F1Result struct {
	Sizes  []int64
	Points []F1Point
}

// RunFig1 sweeps region sizes for each precise method.
func RunFig1(s Scale) (*F1Result, error) {
	sizes := []int64{100, 300, 1_000, 3_000, 10_000, 100_000, 1_000_000}
	kinds := []probe.Kind{probe.KindLimit, probe.KindPerf, probe.KindPAPI}
	r := &F1Result{Sizes: sizes}
	for _, kind := range kinds {
		for _, size := range sizes {
			iters := s.iters(200)
			if size >= 100_000 {
				iters = s.iters(30)
			}
			app := workloads.BuildMeasuredRegions(workloads.RegionConfig{
				Name: "f1", RegionInstrs: size, Iters: iters,
			}, workloads.Instrumentation{Kind: kind, CountKernelRing: true})
			_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{MaxSteps: runSteps})
			if res.Err != nil {
				return nil, fmt.Errorf("fig1 %s@%d run: %w", kind, size, res.Err)
			}
			body := app.Bodies[0]
			deltas := body.LockRec.Column(app.Space, app.ThreadBase(app.Plans[0]), 0)
			mean := stats.NewSummary(deltas).Mean()
			r.Points = append(r.Points, F1Point{
				Method:       string(kind),
				RegionInstrs: size,
				MeanMeasured: mean,
				Inflation:    mean / float64(size),
			})
		}
	}
	return r, nil
}

// Point returns the (method, size) cell.
func (r *F1Result) Point(method string, size int64) (F1Point, bool) {
	for _, p := range r.Points {
		if p.Method == method && p.RegionInstrs == size {
			return p, true
		}
	}
	return F1Point{}, false
}

// Render writes the figure as a series table (inflation factor per
// region size).
func (r *F1Result) Render(w io.Writer) {
	t := tabwrite.New("Figure 1: measurement self-perturbation (measured/true cycles)",
		"region (instrs)", "limit", "perf", "papi")
	for _, size := range r.Sizes {
		l, _ := r.Point("limit", size)
		p, _ := r.Point("perf", size)
		pa, _ := r.Point("papi", size)
		t.Row(size, l.Inflation, p.Inflation, pa.Inflation)
	}
	t.Render(w)
}
