package experiments

import (
	"strings"
	"testing"

	"limitsim/internal/profile"
)

// The experiment tests assert the *shape* of each reproduced result —
// who wins, by roughly what factor, where crossovers fall — which is
// the reproduction target stated in DESIGN.md.

func TestTable1Shape(t *testing.T) {
	r, err := RunTable1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	lim, _ := r.Row("limit")
	perf, _ := r.Row("perf")
	papi, _ := r.Row("papi")
	rdtsc, _ := r.Row("rdtsc")

	if lim.NsRead <= 0 || lim.NsRead > 40 {
		t.Errorf("LiMiT read %.1f ns; paper band is low tens of ns", lim.NsRead)
	}
	if ratio := perf.CyclesRead / lim.CyclesRead; ratio < 20 {
		t.Errorf("perf/limit ratio %.1f; paper reports 1-2 orders of magnitude", ratio)
	}
	if papi.CyclesRead < perf.CyclesRead {
		t.Errorf("papi (%.0f) should cost at least perf (%.0f)", papi.CyclesRead, perf.CyclesRead)
	}
	if rdtsc.CyclesRead >= lim.CyclesRead {
		t.Errorf("rdtsc (%.0f) should undercut limit (%.0f)", rdtsc.CyclesRead, lim.CyclesRead)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "limit") {
		t.Error("render missing limit row")
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := RunTable2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := r.Row(VariantRaw)
	stock, _ := r.Row(VariantStock)
	locked, _ := r.Row(VariantLocked)
	e1, _ := r.Row(VariantE1)
	e2, _ := r.Row(VariantE2)

	if !(raw.CyclesRead <= stock.CyclesRead) {
		t.Errorf("raw rdpmc (%.1f) should not exceed full read (%.1f)", raw.CyclesRead, stock.CyclesRead)
	}
	if !(stock.CyclesRead < locked.CyclesRead) {
		t.Errorf("fixup-based read (%.1f) must beat lock-based (%.1f) — the design point", stock.CyclesRead, locked.CyclesRead)
	}
	if !(e1.CyclesRead < stock.CyclesRead) {
		t.Errorf("64-bit counters (%.1f) should beat stock (%.1f)", e1.CyclesRead, stock.CyclesRead)
	}
	if !(e2.CyclesRead < stock.CyclesRead) {
		t.Errorf("destructive read (%.1f) should beat stock (%.1f)", e2.CyclesRead, stock.CyclesRead)
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := r.Row("no counters")
	c2, _ := r.Row("2 LiMiT counters")
	c4, _ := r.Row("4 LiMiT counters")
	p4, _ := r.Row("4 perf counters")
	e3, _ := r.Row("4 LiMiT + hw-virt (e3)")

	if !(c0.CyclesPerSwitch < c2.CyclesPerSwitch && c2.CyclesPerSwitch < c4.CyclesPerSwitch) {
		t.Errorf("switch cost should grow with counters: %0.f, %0.f, %0.f",
			c0.CyclesPerSwitch, c2.CyclesPerSwitch, c4.CyclesPerSwitch)
	}
	if p4.DeltaVsNone <= 0 {
		t.Errorf("perf counters should add switch cost, delta %.0f", p4.DeltaVsNone)
	}
	if e3.DeltaVsNone > c4.DeltaVsNone/4 {
		t.Errorf("hw virtualization delta %.0f should be far below software %.0f",
			e3.DeltaVsNone, c4.DeltaVsNone)
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := RunFig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	limSmall, _ := r.Point("limit", 100)
	perfSmall, _ := r.Point("perf", 100)
	perfBig, _ := r.Point("perf", 1_000_000)

	if limSmall.Inflation > 2.0 {
		t.Errorf("limit inflation at 100-instr regions %.2f; should stay near 1", limSmall.Inflation)
	}
	if perfSmall.Inflation < 5 {
		t.Errorf("perf inflation at 100-instr regions %.2f; syscall cost should dominate short regions", perfSmall.Inflation)
	}
	if perfBig.Inflation > 1.1 {
		t.Errorf("perf inflation at 1M-instr regions %.3f; should amortize to ~1", perfBig.Inflation)
	}
	if !(perfSmall.Inflation > perfBig.Inflation) {
		t.Error("perf inflation should decrease with region size")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	limDense, _ := r.Point("limit", 30)
	perfDense, _ := r.Point("perf", 30)
	limSparse, _ := r.Point("limit", 10_000)
	perfSparse, _ := r.Point("perf", 10_000)

	if ratio := perfDense.Slowdown / limDense.Slowdown; ratio < 5 {
		t.Errorf("at max density perf/limit slowdown ratio %.1f; want >5", ratio)
	}
	if limSparse.Slowdown > 1.05 {
		t.Errorf("limit slowdown at sparse density %.3f; should be ~1", limSparse.Slowdown)
	}
	if perfSparse.Slowdown < limSparse.Slowdown {
		t.Errorf("perf (%.3f) should exceed limit (%.3f) at every density",
			perfSparse.Slowdown, limSparse.Slowdown)
	}
}

func TestCaseStudiesShape(t *testing.T) {
	r, err := RunCaseStudies(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 3 {
		t.Fatalf("want 3 apps, got %d", len(r.Apps))
	}
	mysql, _ := r.App("mysql-5.1")
	apache, _ := r.App("apache")
	firefox, _ := r.App("firefox")

	// Fig 3: critical sections are short — medians well under 4k cycles.
	for _, a := range r.Apps {
		if med := a.Profile.CS.Median(); med > 4_096 {
			t.Errorf("%s: median CS %d cycles; case-study point is short CSes", a.Name, med)
		}
	}
	// Firefox's allocator CS should be the shortest of the three.
	if !(firefox.Profile.CS.Median() < mysql.Profile.CS.Median()) {
		t.Errorf("firefox median CS (%d) should undercut mysql (%d)",
			firefox.Profile.CS.Median(), mysql.Profile.CS.Median())
	}
	// Fig 4: MySQL spends a visible share in synchronization.
	if mysql.Decomp.SyncShare < 0.05 {
		t.Errorf("mysql sync share %.3f; should be non-trivial", mysql.Decomp.SyncShare)
	}
	// Fig 6: Apache is the kernel-heavy app.
	if !(apache.Decomp.KernelShare > mysql.Decomp.KernelShare &&
		apache.Decomp.KernelShare > firefox.Decomp.KernelShare) {
		t.Errorf("apache kernel share %.3f should exceed mysql %.3f and firefox %.3f",
			apache.Decomp.KernelShare, mysql.Decomp.KernelShare, firefox.Decomp.KernelShare)
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := RunFig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 versions, got %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.LocksPerTxn <= prev.LocksPerTxn {
			t.Errorf("locks/txn should grow: %s %.1f -> %s %.1f",
				prev.Version, prev.LocksPerTxn, cur.Version, cur.LocksPerTxn)
		}
		if cur.MeanHold >= prev.MeanHold {
			t.Errorf("mean hold should shrink: %s %.0f -> %s %.0f",
				prev.Version, prev.MeanHold, cur.Version, cur.MeanHold)
		}
	}
	if !(r.Rows[2].SyncShare > r.Rows[0].SyncShare) {
		t.Errorf("sync share should grow across versions: %.3f -> %.3f",
			r.Rows[0].SyncShare, r.Rows[2].SyncShare)
	}
}

func TestTable4Shape(t *testing.T) {
	r, err := RunTable4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreciseAcq <= 0 || r.PreciseCS <= 0 {
		t.Fatalf("precise shares must be positive: %.3f %.3f", r.PreciseAcq, r.PreciseCS)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 sampling periods, got %d", len(r.Rows))
	}
	coarse, fine := r.Rows[0], r.Rows[len(r.Rows)-1]
	if coarse.Samples >= fine.Samples {
		t.Errorf("finer period should take more samples: %d vs %d", coarse.Samples, fine.Samples)
	}
	coarseErr := coarse.ErrAcq + coarse.ErrCS
	fineErr := fine.ErrAcq + fine.ErrCS
	if fineErr >= coarseErr && coarseErr > 0.01 {
		t.Errorf("finer sampling should reduce attribution error: coarse %.3f, fine %.3f",
			coarseErr, fineErr)
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := RunFig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 3 {
		t.Fatalf("want 3 apps, got %d", len(r.Apps))
	}
	mysql, _ := r.App("mysql-5.1")
	apache, _ := r.App("apache")
	firefox, _ := r.App("firefox")

	// MySQL's table critical sections walk shared table data: the
	// profiler must rank them top and classify them memory-bound — the
	// bottleneck the study identifies.
	top := mysql.Report.Top()
	if top.Region.Path != "txn/table.cs" {
		t.Errorf("mysql top region = %s, want txn/table.cs", top.Region.Path)
	}
	if top.Class != profile.ClassMemoryBound {
		t.Errorf("mysql table.cs class = %s, want memory-bound (l1d/kc %.2f vs baseline %.2f)",
			top.Class, top.L1DPerKC, mysql.Report.BaselineL1DPerKC)
	}
	// Apache's log-append CS is pure compute while its request path
	// walks the file cache and its response path lives in the kernel.
	var logCS, reqIO profile.Finding
	for _, f := range apache.Report.Findings {
		switch f.Region.Path {
		case "request/log.cs":
			logCS = f
		case "request/io":
			reqIO = f
		}
	}
	if logCS.Region == nil || logCS.Class != profile.ClassComputeBound {
		t.Errorf("apache log.cs should be compute-bound, got %+v", logCS.Class)
	}
	if reqIO.Region == nil || reqIO.Class != profile.ClassKernelBound {
		t.Errorf("apache io region should be kernel-bound, got %+v", reqIO.Class)
	}
	// Every profile must have consistent accounting: counted regions,
	// shares summing to ~1, children bounded by their parents.
	for _, a := range r.Apps {
		if len(a.Report.Findings) == 0 || a.Report.TotalCycles == 0 {
			t.Fatalf("%s: empty report", a.Name)
		}
		var share float64
		for _, f := range a.Report.Findings {
			share += f.Share
			if f.Region.Count == 0 {
				t.Errorf("%s: region %s never measured", a.Name, f.Region.Path)
			}
			if f.Region.Min > f.Region.Max {
				t.Errorf("%s: region %s min %d > max %d", a.Name, f.Region.Path, f.Region.Min, f.Region.Max)
			}
			if f.Region.Hist == nil || f.Region.Hist.Total() != f.Region.Count {
				t.Errorf("%s: region %s histogram total mismatch", a.Name, f.Region.Path)
			}
		}
		if share < 0.999 || share > 1.001 {
			t.Errorf("%s: self shares sum to %.4f", a.Name, share)
		}
		for _, reg := range a.Profile.Regions {
			var child uint64
			for _, c := range a.Profile.Children(reg) {
				child += c.Cycles()
			}
			// Allow 2% skew: a child's exit read lands a few cycles
			// after its parent's enclosing reads.
			if float64(child) > float64(reg.Cycles())*1.02 {
				t.Errorf("%s: children of %s sum to %d > parent %d",
					a.Name, reg.Path, child, reg.Cycles())
			}
		}
	}
	_ = firefox
}

func TestFig7Shape(t *testing.T) {
	r, err := RunFig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 7a", "Figure 7b", "e1", "e2", "e3"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 7 render missing %q", want)
		}
	}
}
