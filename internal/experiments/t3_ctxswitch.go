package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
)

// T3Row is one configuration's context-switch cost.
type T3Row struct {
	Config          string
	Counters        int
	HWVirtualized   bool
	PerfStyle       bool
	CyclesPerSwitch float64
	NsPerSwitch     float64
	DeltaVsNone     float64 // extra cycles attributable to counter virtualization
}

// T3Result reproduces Table 3: counter virtualization cost on the
// context-switch path. Two yield-ping-pong threads on one core force a
// context switch per yield; the delta against the counter-less run
// isolates the per-switch counter save/restore cost.
type T3Result struct {
	Rows []T3Row
}

// buildYieldPong builds a program whose single body yields `rounds`
// times, after opening nCounters counters of the requested style.
func buildYieldPong(nCounters int, perfStyle bool, rounds int) (*isa.Program, *mem.Space) {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	var e *limit.Emitter
	if nCounters > 0 && !perfStyle {
		table := limit.AllocTable(space, nCounters)
		e = limit.NewEmitter(b, limit.ModeStock, table)
		for i := 0; i < nCounters; i++ {
			ev := pmu.Event(i % int(pmu.NumEvents))
			e.AddCounter(limit.UserCounter(ev))
		}
		e.EmitInit()
	}
	if nCounters > 0 && perfStyle {
		for i := 0; i < nCounters; i++ {
			b.MovImm(isa.R0, int64(i%int(pmu.NumEvents)))
			b.MovImm(isa.R1, int64(kernel.FlagUser))
			b.Syscall(kernel.SysPerfOpen)
		}
	}
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	b.Syscall(kernel.SysYield)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(rounds))
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	if e != nil {
		e.EmitFinish()
	}
	return b.MustBuild(), space
}

func measureSwitch(nCounters int, perfStyle, hwVirt bool, rounds int) (float64, error) {
	feats := pmu.DefaultFeatures()
	if hwVirt {
		feats = pmu.EnhancedHWVirtualization()
	}
	prog, space := buildYieldPong(nCounters, perfStyle, rounds)
	m := machine.New(machine.Config{NumCores: 1, PMU: feats})
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "ping", 0, 21)
	m.Kern.Spawn(proc, "pong", 0, 22)
	res := m.Run(machine.RunLimits{MaxSteps: runSteps})
	if res.Err != nil {
		return 0, fmt.Errorf("table3 %d-counter run (perf=%v hwvirt=%v): %w",
			nCounters, perfStyle, hwVirt, res.Err)
	}
	switches := m.Kern.Stats.CtxSwitches
	if switches == 0 {
		return 0, nil
	}
	return float64(res.Cycles) / float64(switches), nil
}

// RunTable3 measures context-switch cost under each counter regime.
func RunTable3(s Scale) (*T3Result, error) {
	rounds := s.iters(3_000)
	type spec struct {
		name     string
		counters int
		perf     bool
		hwVirt   bool
	}
	specs := []spec{
		{"no counters", 0, false, false},
		{"2 LiMiT counters", 2, false, false},
		{"4 LiMiT counters", 4, false, false},
		{"4 perf counters", 4, true, false},
		{"4 LiMiT + hw-virt (e3)", 4, false, true},
	}
	r := &T3Result{}
	base := 0.0
	for i, sp := range specs {
		c, err := measureSwitch(sp.counters, sp.perf, sp.hwVirt, rounds)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = c
		}
		r.Rows = append(r.Rows, T3Row{
			Config:          sp.name,
			Counters:        sp.counters,
			HWVirtualized:   sp.hwVirt,
			PerfStyle:       sp.perf,
			CyclesPerSwitch: c,
			NsPerSwitch:     c * NsPerCycle,
			DeltaVsNone:     c - base,
		})
	}
	return r, nil
}

// Row returns the named configuration's row.
func (r *T3Result) Row(name string) (T3Row, bool) {
	for _, row := range r.Rows {
		if row.Config == name {
			return row, true
		}
	}
	return T3Row{}, false
}

// Render writes the table.
func (r *T3Result) Render(w io.Writer) {
	t := tabwrite.New("Table 3: context-switch cost under counter virtualization",
		"config", "cycles/switch", "ns/switch", "delta vs none")
	for _, row := range r.Rows {
		t.Row(row.Config, row.CyclesPerSwitch, row.NsPerSwitch, fmt.Sprintf("%+.0f", row.DeltaVsNone))
	}
	t.Render(w)
}
