package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/isa"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/tabwrite"
	"limitsim/internal/usync"
)

// ReadVariant names one read-sequence construction in the cost
// breakdown.
type ReadVariant string

// Read variants.
const (
	// VariantRaw is a bare rdpmc with no virtualization correction
	// (what a naive userspace reader gets: fast but wrong after any
	// overflow fold).
	VariantRaw ReadVariant = "rdpmc-raw"
	// VariantStock is LiMiT's full read: rdpmc + virtual-counter add
	// inside a fixup region.
	VariantStock ReadVariant = "limit-stock"
	// VariantLocked protects the read sequence with a userspace
	// spinlock instead of the kernel fixup — the alternative design
	// the fixup makes unnecessary.
	VariantLocked ReadVariant = "limit-lock-based"
	// VariantE1 is a bare read on 64-bit writable counters
	// (enhancement e1: no virtual counter, no fixup).
	VariantE1 ReadVariant = "64bit-hw (e1)"
	// VariantE2 is a destructive interval read (enhancement e2: one
	// instruction per region measurement).
	VariantE2 ReadVariant = "destructive-hw (e2)"
)

// T2Row is one variant's measured cost.
type T2Row struct {
	Variant    ReadVariant
	CyclesRead float64
	NsRead     float64
	SeqInstrs  int // static instructions in the read sequence
}

// T2Result reproduces Table 2: LiMiT read-cost breakdown and the
// design alternatives.
type T2Result struct {
	Rows []T2Row
}

// measureVariant builds a single-thread loop performing iters reads of
// a cycles counter with the given construction, and returns the
// per-read cost (against an empty-loop baseline) plus the sequence's
// static instruction count.
func measureVariant(v ReadVariant, iters int) (float64, int, error) {
	feats := pmu.DefaultFeatures()
	mode := limit.ModeStock
	switch v {
	case VariantRaw:
		mode = limit.Mode64Bit // bare rdpmc sequence on stock hardware
	case VariantE1:
		feats = pmu.Enhanced64Bit()
		mode = limit.Mode64Bit
	case VariantE2:
		feats = pmu.EnhancedDestructive()
		mode = limit.ModeDestructive
	}

	build := func(withRead bool) (prog *isa.Program, space *mem.Space) {
		space = mem.NewSpace()
		b := isa.NewBuilder()
		table := limit.AllocTable(space, 1)
		e := limit.NewEmitter(b, mode, table)
		ctr := e.AddCounter(limit.UserCounter(pmu.EvCycles))
		var lock usync.SpinMutex
		if v == VariantLocked {
			lock = usync.NewSpinMutex(space)
		}
		e.EmitInit()
		b.MovImm(isa.R8, 0)
		b.Label("loop")
		if withRead {
			switch v {
			case VariantLocked:
				lock.EmitLock(b)
				e.EmitRead(isa.R4, isa.R5, ctr)
				lock.EmitUnlock(b)
			case VariantE2:
				e.EmitIntervalRead(isa.R4, ctr)
			default:
				e.EmitRead(isa.R4, isa.R5, ctr)
			}
		}
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, int64(iters))
		b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
		b.Halt()
		e.EmitFinish()
		return b.MustBuild(), space
	}

	seqLen := func() int {
		prog, _ := build(true)
		base, _ := build(false)
		return prog.Len() - base.Len()
	}()

	run := func(withRead bool) (uint64, error) {
		prog, space := build(withRead)
		m := machine.New(machine.Config{NumCores: 1, PMU: feats})
		proc := m.Kern.NewProcess(prog, space)
		m.Kern.Spawn(proc, "t2", 0, 9)
		res := m.Run(machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return 0, fmt.Errorf("table2 %s run: %w", v, res.Err)
		}
		return res.Cycles, nil
	}

	with, err := run(true)
	if err != nil {
		return 0, 0, err
	}
	without, err := run(false)
	if err != nil {
		return 0, 0, err
	}
	if with <= without {
		return 0, seqLen, nil
	}
	return float64(with-without) / float64(iters), seqLen, nil
}

// RunTable2 measures every read variant.
func RunTable2(s Scale) (*T2Result, error) {
	iters := s.iters(20_000)
	r := &T2Result{}
	for _, v := range []ReadVariant{VariantRaw, VariantStock, VariantLocked, VariantE1, VariantE2} {
		c, n, err := measureVariant(v, iters)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, T2Row{Variant: v, CyclesRead: c, NsRead: c * NsPerCycle, SeqInstrs: n})
	}
	return r, nil
}

// Row returns the named variant's row.
func (r *T2Result) Row(v ReadVariant) (T2Row, bool) {
	for _, row := range r.Rows {
		if row.Variant == v {
			return row, true
		}
	}
	return T2Row{}, false
}

// Render writes the table.
func (r *T2Result) Render(w io.Writer) {
	t := tabwrite.New("Table 2: LiMiT read-sequence cost breakdown",
		"variant", "cycles/read", "ns/read", "seq instrs")
	for _, row := range r.Rows {
		t.Row(string(row.Variant), row.CyclesRead, row.NsRead, row.SeqInstrs)
	}
	t.Render(w)
}
