package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// F2Point is one (method, density) slowdown measurement.
type F2Point struct {
	Method        string
	ReadsPerKInst float64
	Slowdown      float64 // runtime / uninstrumented runtime
}

// F2Result reproduces Figure 2: application slowdown versus
// instrumentation density. LiMiT stays near 1× at densities where the
// syscall-based methods slow the program down by integer factors —
// the paper's core overhead result.
type F2Result struct {
	Works  []int64 // instruction gap between reads (density knob)
	Kinds  []probe.Kind
	Points []F2Point
}

func f2Works() []int64 {
	return []int64{30_000, 10_000, 3_000, 1_000, 300, 100, 30}
}

func f2Kinds() []probe.Kind {
	return []probe.Kind{probe.KindRdtsc, probe.KindLimit, probe.KindPerf, probe.KindPAPI}
}

// F2Cell is one independent cell of the Figure 2 sweep: a (density,
// method) run, or — with KindNull — the density's uninstrumented
// baseline. Cells are pure functions of their fields, so the grid can
// fan out across processes and reassemble.
type F2Cell struct {
	Work  int64      `json:"work"`
	Iters int        `json:"iters"`
	Kind  probe.Kind `json:"kind"`
}

// F2Grid enumerates the sweep in canonical order: for each density,
// the uninstrumented baseline followed by every method (stride
// 1+len(kinds)); AssembleF2 depends on this layout.
func F2Grid(s Scale) []F2Cell {
	var grid []F2Cell
	for _, work := range f2Works() {
		// Keep total work roughly constant across densities.
		iters := s.iters(int(10_000_000 / work))
		grid = append(grid, F2Cell{Work: work, Iters: iters, Kind: probe.KindNull})
		for _, kind := range f2Kinds() {
			grid = append(grid, F2Cell{Work: work, Iters: iters, Kind: kind})
		}
	}
	return grid
}

// RunF2Cell executes one grid cell on its own single-core machine and
// returns the run's cycle count.
func RunF2Cell(c F2Cell) (uint64, error) {
	app := workloads.BuildReadLoop(workloads.ReadLoopConfig{
		Name: "f2", Threads: 1, Iters: c.Iters, WorkInstrs: c.Work,
	}, workloads.Instrumentation{Kind: c.Kind})
	_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{MaxSteps: runSteps})
	if res.Err != nil {
		return 0, fmt.Errorf("fig2 %s@%d run: %w", c.Kind, c.Work, res.Err)
	}
	return res.Cycles, nil
}

// AssembleF2 folds the grid's cycle counts (in F2Grid order) into the
// figure.
func AssembleF2(cycles []uint64) (*F2Result, error) {
	works, kinds := f2Works(), f2Kinds()
	stride := 1 + len(kinds)
	if len(cycles) != len(works)*stride {
		return nil, fmt.Errorf("fig2: %d cycle count(s) for a %d-cell grid", len(cycles), len(works)*stride)
	}
	r := &F2Result{Works: works, Kinds: kinds}
	for wi, work := range works {
		base := cycles[wi*stride]
		if base == 0 {
			return nil, fmt.Errorf("fig2: zero-cycle baseline at density %d", work)
		}
		for ki, kind := range kinds {
			r.Points = append(r.Points, F2Point{
				Method:        string(kind),
				ReadsPerKInst: 1000 / float64(work),
				Slowdown:      float64(cycles[wi*stride+1+ki]) / float64(base),
			})
		}
	}
	return r, nil
}

// RunFig2 sweeps density for each method.
func RunFig2(s Scale) (*F2Result, error) {
	grid := F2Grid(s)
	cycles, err := runPar(len(grid), func(i int) (uint64, error) {
		return RunF2Cell(grid[i])
	})
	if err != nil {
		return nil, err
	}
	return AssembleF2(cycles)
}

// Point returns the (method, work) cell.
func (r *F2Result) Point(method string, work int64) (F2Point, bool) {
	density := 1000 / float64(work)
	for _, p := range r.Points {
		if p.Method == method && p.ReadsPerKInst == density {
			return p, true
		}
	}
	return F2Point{}, false
}

// Render writes the figure as a series table (slowdown per density).
func (r *F2Result) Render(w io.Writer) {
	header := []string{"reads/kinstr"}
	for _, k := range r.Kinds {
		header = append(header, string(k))
	}
	t := tabwrite.New("Figure 2: slowdown vs instrumentation density", header...)
	for _, work := range r.Works {
		row := []any{tabwrite.FormatFloat(1000 / float64(work))}
		for _, k := range r.Kinds {
			p, _ := r.Point(string(k), work)
			row = append(row, p.Slowdown)
		}
		t.Row(row...)
	}
	t.Render(w)
}
