package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/machine"
	"limitsim/internal/probe"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// F2Point is one (method, density) slowdown measurement.
type F2Point struct {
	Method        string
	ReadsPerKInst float64
	Slowdown      float64 // runtime / uninstrumented runtime
}

// F2Result reproduces Figure 2: application slowdown versus
// instrumentation density. LiMiT stays near 1× at densities where the
// syscall-based methods slow the program down by integer factors —
// the paper's core overhead result.
type F2Result struct {
	Works  []int64 // instruction gap between reads (density knob)
	Kinds  []probe.Kind
	Points []F2Point
}

// RunFig2 sweeps density for each method.
func RunFig2(s Scale) (*F2Result, error) {
	works := []int64{30_000, 10_000, 3_000, 1_000, 300, 100, 30}
	kinds := []probe.Kind{probe.KindRdtsc, probe.KindLimit, probe.KindPerf, probe.KindPAPI}
	r := &F2Result{Works: works, Kinds: kinds}

	run := func(kind probe.Kind, work int64, iters int) (uint64, error) {
		app := workloads.BuildReadLoop(workloads.ReadLoopConfig{
			Name: "f2", Threads: 1, Iters: iters, WorkInstrs: work,
		}, workloads.Instrumentation{Kind: kind})
		_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return 0, fmt.Errorf("fig2 %s@%d run: %w", kind, work, res.Err)
		}
		return res.Cycles, nil
	}

	// One cell per (density, method) plus the density's uninstrumented
	// baseline; every cell is an independent machine, so the whole grid
	// fans out at once.
	type cell struct {
		work  int64
		iters int
		kind  probe.Kind
	}
	var grid []cell
	for _, work := range works {
		// Keep total work roughly constant across densities.
		iters := s.iters(int(10_000_000 / work))
		grid = append(grid, cell{work, iters, probe.KindNull})
		for _, kind := range kinds {
			grid = append(grid, cell{work, iters, kind})
		}
	}
	cycles, err := runPar(len(grid), func(i int) (uint64, error) {
		return run(grid[i].kind, grid[i].work, grid[i].iters)
	})
	if err != nil {
		return nil, err
	}
	stride := 1 + len(kinds)
	for wi, work := range works {
		base := cycles[wi*stride]
		for ki, kind := range kinds {
			r.Points = append(r.Points, F2Point{
				Method:        string(kind),
				ReadsPerKInst: 1000 / float64(work),
				Slowdown:      float64(cycles[wi*stride+1+ki]) / float64(base),
			})
		}
	}
	return r, nil
}

// Point returns the (method, work) cell.
func (r *F2Result) Point(method string, work int64) (F2Point, bool) {
	density := 1000 / float64(work)
	for _, p := range r.Points {
		if p.Method == method && p.ReadsPerKInst == density {
			return p, true
		}
	}
	return F2Point{}, false
}

// Render writes the figure as a series table (slowdown per density).
func (r *F2Result) Render(w io.Writer) {
	header := []string{"reads/kinstr"}
	for _, k := range r.Kinds {
		header = append(header, string(k))
	}
	t := tabwrite.New("Figure 2: slowdown vs instrumentation density", header...)
	for _, work := range r.Works {
		row := []any{tabwrite.FormatFloat(1000 / float64(work))}
		for _, k := range r.Kinds {
			p, _ := r.Point(string(k), work)
			row = append(row, p.Slowdown)
		}
		t.Row(row...)
	}
	t.Render(w)
}
