// Package experiments implements the reproduction harness: one runner
// per table and figure of the paper's evaluation (as reconstructed in
// DESIGN.md). Each runner executes simulated workloads, extracts
// measurements, and returns a result type that renders the same rows
// or series the paper reports. Runners accept a Scale so tests and
// quick looks can shrink iteration counts without changing shape.
package experiments

import (
	"limitsim/internal/machine"
	"limitsim/internal/runner"
)

// NsPerCycle converts simulated cycles to nanoseconds at the nominal
// 3 GHz clock.
const NsPerCycle = 1.0 / machine.CyclesPerNanosecond

// Scale shrinks experiment sizes. Full is 1.0; tests typically use
// 0.05–0.2.
type Scale float64

// Full is the paper-scale configuration.
const Full Scale = 1.0

// Quick is a fast configuration for smoke runs.
const Quick Scale = 0.1

func (s Scale) iters(n int) int {
	v := int(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

func (s Scale) count(n int) int {
	v := int(float64(n) * float64(s))
	if v < 2 {
		v = 2
	}
	return v
}

// runSteps is the universal step guard for experiment machines.
const runSteps = 2_000_000_000

// parallel is the worker count experiment trials fan out across: 1 is
// the serial engine, <= 0 uses GOMAXPROCS. Set once by the CLI before
// any runner executes; trials are independent simulations and results
// land in trial-index order, so every table and figure is
// byte-identical at every width.
var parallel = 1

// SetParallel sets the trial fan-out width for subsequent runners.
func SetParallel(n int) { parallel = n }

// runPar executes n independent trials through the runner engine and
// returns their results in trial-index order. The first error (by
// trial index, matching the serial loop) aborts unstarted trials.
func runPar[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(runner.Config{Jobs: n, Parallel: parallel}, func(j, _ int) (T, error) {
		return fn(j)
	})
}
