package experiments

import (
	"encoding/json"
	"fmt"
)

// F2Space is the Figure 2 grid as a shardable job space: one job per
// grid cell, payload the cell's cycle count as JSON. Cells are pure
// functions of (scale, key), so the sweep can fan out across worker
// processes and reassemble byte-identically.
type F2Space struct {
	grid []F2Cell
}

// NewF2Space builds the space for the given scale.
func NewF2Space(s Scale) *F2Space { return &F2Space{grid: F2Grid(s)} }

// NumJobs is the grid size.
func (s *F2Space) NumJobs() int { return len(s.grid) }

// Run executes one grid cell and returns its cycle count as JSON.
func (s *F2Space) Run(job, worker int) ([]byte, error) {
	if job < 0 || job >= len(s.grid) {
		return nil, fmt.Errorf("fig2: job %d outside grid [0,%d)", job, len(s.grid))
	}
	cycles, err := RunF2Cell(s.grid[job])
	if err != nil {
		return nil, err
	}
	return json.Marshal(cycles)
}

// AssembleF2Payloads rebuilds the figure from the space's keyed
// payloads, byte-identical to RunFig2's result for the same scale.
func AssembleF2Payloads(payloads [][]byte) (*F2Result, error) {
	cycles := make([]uint64, len(payloads))
	for i, p := range payloads {
		if p == nil {
			return nil, fmt.Errorf("fig2: cell %d has no payload", i)
		}
		if err := json.Unmarshal(p, &cycles[i]); err != nil {
			return nil, fmt.Errorf("fig2: cell %d payload: %w", i, err)
		}
	}
	return AssembleF2(cycles)
}
