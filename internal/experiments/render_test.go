package experiments

import (
	"io"
	"strings"
	"testing"
)

// renderOf runs render into a string.
func renderOf(f func(w io.Writer)) string {
	var sb strings.Builder
	f(&sb)
	return sb.String()
}

// Every experiment's Render must emit its title, its headers, and at
// least one data row — these tests pin the harness's user-visible
// output surface.

func TestRenderTable1(t *testing.T) {
	r, err := RunTable1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r.Render)
	for _, want := range []string{"Table 1", "ns/read", "limit", "perf", "papi", "rdtsc", "sample", "statistical"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	r, err := RunTable2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r.Render)
	for _, want := range []string{"Table 2", "rdpmc-raw", "limit-stock", "limit-lock-based", "seq instrs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	r, err := RunTable3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r.Render)
	for _, want := range []string{"Table 3", "no counters", "4 perf counters", "hw-virt", "delta vs none"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderFig1And2(t *testing.T) {
	r1, err := RunFig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r1.Render)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "region (instrs)") {
		t.Errorf("fig1 render:\n%s", out)
	}
	r2, err := RunFig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(r2.Render)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "reads/kinstr") {
		t.Errorf("fig2 render:\n%s", out)
	}
}

func TestRenderCaseStudies(t *testing.T) {
	cs, err := RunCaseStudies(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(cs.RenderFig3)
	for _, want := range []string{"Figure 3", "mysql-5.1", "apache", "firefox", "median", "[2^"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 missing %q", want)
		}
	}
	out = renderOf(cs.RenderFig4)
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "%") {
		t.Errorf("fig4 render:\n%s", out)
	}
	out = renderOf(cs.RenderFig6)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "kernel share") {
		t.Errorf("fig6 render:\n%s", out)
	}
}

func TestRenderFig5AndTable4(t *testing.T) {
	r5, err := RunFig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r5.Render)
	for _, want := range []string{"Figure 5", "3.23", "4.1", "5.1", "locks/txn"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
	r4, err := RunTable4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(r4.Render)
	for _, want := range []string{"Table 4", "LiMiT precise", "sampling @", "err(acquire)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 missing %q", want)
		}
	}
}

func TestRenderFig8And9(t *testing.T) {
	r8, err := RunFig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(r8.Render)
	for _, want := range []string{"Figure 8", "l1d/kc", "memory-bound", "profiler self-cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q", want)
		}
	}
	r9, err := RunFig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(r9.Render)
	for _, want := range []string{"Figure 9", "solo", "co-located", "measurements intact"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 missing %q", want)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	a1, err := RunAblationOverflow(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := renderOf(a1.Render)
	if !strings.Contains(out, "A1") || !strings.Contains(out, "kernel-fold") {
		t.Errorf("A1 render:\n%s", out)
	}
	a2, err := RunAblationQuantum(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(a2.Render)
	if !strings.Contains(out, "A2") || !strings.Contains(out, "torn") {
		t.Errorf("A2 render:\n%s", out)
	}
	a3, err := RunAblationSpins(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(a3.Render)
	if !strings.Contains(out, "A3") || !strings.Contains(out, "spins") {
		t.Errorf("A3 render:\n%s", out)
	}
	a4, err := RunAblationScheduler(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out = renderOf(a4.Render)
	if !strings.Contains(out, "A4") || !strings.Contains(out, "migrate-on-wake") {
		t.Errorf("A4 render:\n%s", out)
	}
}

func TestScaleHelpers(t *testing.T) {
	if Full.iters(100) != 100 {
		t.Error("full scale must not shrink")
	}
	if Quick.iters(100) != 10 {
		t.Errorf("quick iters %d", Quick.iters(100))
	}
	if Scale(0.0001).iters(100) < 8 {
		t.Error("iters must have a floor")
	}
	if Scale(0.0001).count(100) < 2 {
		t.Error("count must have a floor")
	}
}
