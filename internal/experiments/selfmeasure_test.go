package experiments

import (
	"strings"
	"testing"
)

// TestSelfMeasureShape asserts the self-measurement's cost ordering:
// the perf-style read (a syscall plus a heavyweight handler) must dwarf
// a trivial syscall, which must dwarf the bare read sequence — the
// paper's access-cost table, measured by LiMiT itself.
func TestSelfMeasureShape(t *testing.T) {
	r, err := RunSelfMeasure(Quick)
	if err != nil {
		t.Fatal(err)
	}
	null, _ := r.Probe("null (read sequence only)")
	calib, _ := r.Probe("compute-100 (calibration)")
	gettid, _ := r.Probe("gettid syscall")
	perfRead, _ := r.Probe("perf counter read")
	yield, _ := r.Probe("yield round trip")

	for _, p := range r.Probes {
		if p.N != r.Iters {
			t.Errorf("%s: %d samples, want %d", p.Name, p.N, r.Iters)
		}
		if p.Mean <= 0 {
			t.Errorf("%s: mean %.1f, want > 0", p.Name, p.Mean)
		}
	}
	if !(null.Mean < gettid.Mean && gettid.Mean < perfRead.Mean) {
		t.Errorf("cost ordering broken: null %.1f, gettid %.1f, perf-read %.1f",
			null.Mean, gettid.Mean, perfRead.Mean)
	}
	// The calibration block is 100 single-cycle instructions; its net
	// cost must land near 100.
	if calib.Net < 80 || calib.Net > 150 {
		t.Errorf("compute-100 net %.1f cycles, want ~100", calib.Net)
	}
	// The syscall probes' minimum must cover at least the static kernel
	// cost they cross (the mean also carries read-sequence overhead).
	if uint64(gettid.Mean) < gettid.Static {
		t.Errorf("gettid mean %.1f below its static kernel cost %d", gettid.Mean, gettid.Static)
	}
	if uint64(perfRead.Mean) < perfRead.Static {
		t.Errorf("perf-read mean %.1f below its static kernel cost %d", perfRead.Mean, perfRead.Static)
	}
	// A yield crosses the full deschedule/reschedule path, so it must
	// out-cost a trivial syscall.
	if yield.Mean <= gettid.Mean {
		t.Errorf("yield %.1f should out-cost gettid %.1f", yield.Mean, gettid.Mean)
	}

	// The outside view must agree that the run really crossed these
	// paths: syscalls were counted and yields produced context-switch
	// cost observations.
	if r.Telemetry == nil {
		t.Fatal("no telemetry registry attached")
	}
	if c := r.Telemetry.LookupCounter("kern.syscalls"); c.Value() == 0 {
		t.Error("kernel telemetry saw no syscalls")
	}
	if h := r.Telemetry.LookupHistogram("kern.switch.out.cycles"); h.Count() == 0 {
		t.Error("kernel telemetry saw no context switches despite yield probe")
	}

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Self-measurement", "perf counter read", "yield round trip",
		"Kernel telemetry cross-check", "syscalls handled",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestSelfMeasureDeterminism pins the byte-determinism of the rendered
// report, like every other reproduction artifact.
func TestSelfMeasureDeterminism(t *testing.T) {
	render := func() string {
		r, err := RunSelfMeasure(Quick)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		r.Render(&sb)
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("same scale produced different self-measurement reports")
	}
}
