package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/machine"
	"limitsim/internal/profile"
	"limitsim/internal/workloads"
)

// F8App is one application's region-attribution profile and its ranked
// bottleneck report.
type F8App struct {
	Name    string
	Profile *profile.Profile
	Report  *profile.Report
}

// F8Result reproduces the paper's title use case: rapid identification
// of architectural bottlenecks. Every annotated region boundary reads
// the default four-event bundle (cycles, all-rings cycles, L1D misses,
// branch misses) — affordable only because each LiMiT read costs tens
// of nanoseconds — and the region-attribution profiler ranks regions
// by attributed self-cost with a memory/compute/kernel/contention
// classification. MySQL's table critical sections come out
// memory-bound (they walk shared table data under the lock); Apache's
// log critical section is compute-only.
type F8Result struct {
	Apps []F8App
}

// RunFig8 profiles the three application models with the
// region-attribution profiler.
func RunFig8(s Scale) (*F8Result, error) {
	r := &F8Result{}

	runOne := func(app *workloads.App) error {
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return fmt.Errorf("fig8 %s: %w", app.Name, res.Err)
		}
		p, err := workloads.CollectProfile(app)
		if err != nil {
			return fmt.Errorf("fig8 %s: %w", app.Name, err)
		}
		r.Apps = append(r.Apps, F8App{Name: app.Name, Profile: p, Report: profile.NewReport(p)})
		return nil
	}

	mcfg := scaleMySQL(workloads.DefaultMySQL(), s)
	if err := runOne(workloads.BuildMySQL(mcfg, workloads.ProfileInstr(profile.DefaultSpec()))); err != nil {
		return nil, err
	}

	acfg := workloads.DefaultApache()
	acfg.RequestsPerWorker = s.iters(acfg.RequestsPerWorker)
	if err := runOne(workloads.BuildApache(acfg, workloads.ProfileInstr(profile.DefaultSpec()))); err != nil {
		return nil, err
	}

	fcfg := workloads.DefaultFirefox()
	fcfg.EventsPerThread = s.iters(fcfg.EventsPerThread)
	if err := runOne(workloads.BuildFirefox(fcfg, workloads.ProfileInstr(profile.DefaultSpec()))); err != nil {
		return nil, err
	}

	return r, nil
}

// App returns the named app's profile and report.
func (r *F8Result) App(name string) (F8App, bool) {
	for _, a := range r.Apps {
		if a.Name == name {
			return a, true
		}
	}
	return F8App{}, false
}

// Render writes each app's ranked bottleneck report (top 8 regions)
// with the profiler's self-overhead disclosure.
func (r *F8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: region-attribution bottleneck profiles")
	fmt.Fprintln(w)
	for _, a := range r.Apps {
		a.Report.RenderText(w, 8)
		fmt.Fprintln(w)
	}
}
