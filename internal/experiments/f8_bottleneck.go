package experiments

import (
	"fmt"
	"io"

	"limitsim/internal/analysis"
	"limitsim/internal/machine"
	"limitsim/internal/tabwrite"
	"limitsim/internal/workloads"
)

// F8Result reproduces the paper's title use case: rapid identification
// of architectural bottlenecks. Four LiMiT counters (cycles, L1D
// misses, LLC misses, branch misses) are read at every critical-
// section boundary — eight precise reads per lock operation, which is
// only affordable because each read costs tens of nanoseconds — and
// the inside-CS event rates are compared against the rest of the
// program. Critical sections that touch shared data show elevated
// miss rates (they are memory-bound under the lock); compute-only
// critical sections show the opposite.
type F8Result struct {
	Profiles []*analysis.BottleneckProfile
}

// RunFig8 profiles the three application models with multi-event
// instrumentation.
func RunFig8(s Scale) (*F8Result, error) {
	r := &F8Result{}

	runOne := func(app *workloads.App) error {
		_, res, _ := app.Run(machine.Config{NumCores: 4}, machine.RunLimits{MaxSteps: runSteps})
		if res.Err != nil {
			return fmt.Errorf("fig8 %s: %w", app.Name, res.Err)
		}
		p, err := analysis.CollectBottleneck(app)
		if err != nil {
			return fmt.Errorf("fig8 %s: %w", app.Name, err)
		}
		r.Profiles = append(r.Profiles, p)
		return nil
	}

	mcfg := scaleMySQL(workloads.DefaultMySQL(), s)
	if err := runOne(workloads.BuildMySQL(mcfg, workloads.BottleneckInstr())); err != nil {
		return nil, err
	}

	acfg := workloads.DefaultApache()
	acfg.RequestsPerWorker = s.iters(acfg.RequestsPerWorker)
	if err := runOne(workloads.BuildApache(acfg, workloads.BottleneckInstr())); err != nil {
		return nil, err
	}

	fcfg := workloads.DefaultFirefox()
	fcfg.EventsPerThread = s.iters(fcfg.EventsPerThread)
	if err := runOne(workloads.BuildFirefox(fcfg, workloads.BottleneckInstr())); err != nil {
		return nil, err
	}

	return r, nil
}

// Profile returns the named app's profile.
func (r *F8Result) Profile(name string) (*analysis.BottleneckProfile, bool) {
	for _, p := range r.Profiles {
		if p.App == name {
			return p, true
		}
	}
	return nil, false
}

// Render writes the bottleneck table.
func (r *F8Result) Render(w io.Writer) {
	t := tabwrite.New("Figure 8: microarchitectural rates inside vs outside critical sections (per kilocycle)",
		"app", "L1D in-CS", "L1D outside", "LLC in-CS", "LLC outside", "br-miss in-CS", "br-miss outside", "memory-bound CS?")
	for _, p := range r.Profiles {
		verdict := "no"
		if p.MemoryBoundCS() {
			verdict = "yes"
		}
		t.Row(p.App,
			p.InCS.L1DPerKC, p.Outside.L1DPerKC,
			p.InCS.LLCPerKC, p.Outside.LLCPerKC,
			p.InCS.BrMissPerKC, p.Outside.BrMissPerKC,
			verdict)
	}
	t.Render(w)
}
