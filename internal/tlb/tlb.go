// Package tlb models a two-level data TLB: a small fully-associative
// L1 DTLB backed by a larger set-associative STLB, with a fixed
// page-walk cost on a full miss. Misses feed the PMU's dTLB events; a
// page walk also stalls the access by WalkCycles.
//
// The model is deliberately simple (no PCIDs, no huge pages): the
// reproduced paper's workloads only need TLB pressure to be *visible*
// to the counters, not modeled in detail.
package tlb

// Result describes one translation.
type Result struct {
	// Cycles is the added translation latency (0 on an L1 hit).
	Cycles uint64
	// MissL1 and MissL2 report which levels missed.
	MissL1 bool
	MissL2 bool
}

// Config sizes the TLB.
type Config struct {
	L1Entries int // fully associative
	L2Entries int
	L2Ways    int
	L2Cycles  int // latency when the STLB hits
	WalkBase  int // page-walk latency on a full miss
	PageBits  uint
}

// DefaultConfig approximates a 2011 x86 data TLB: 64-entry DTLB,
// 512-entry 4-way STLB, 7-cycle STLB hit, 30-cycle walk, 4 KiB pages.
func DefaultConfig() Config {
	return Config{
		L1Entries: 64,
		L2Entries: 512,
		L2Ways:    4,
		L2Cycles:  7,
		WalkBase:  30,
		PageBits:  12,
	}
}

// TLB is one core's data TLB. Entries store page+1 so that zero means
// invalid; both levels keep ways in LRU order (index 0 = MRU). The L2
// is one flat array — set s occupies [s*ways, (s+1)*ways) — because
// TLBs are rebuilt with every machine the worker pools construct and
// per-set slice allocations add up.
type TLB struct {
	cfg      Config
	pageBits uint // cfg.PageBits, hoisted for the Translate fast path

	l1 []uint64

	l2Sets int
	l2Ways int
	l2     []uint64
}

// New builds a TLB.
func New(cfg Config) *TLB {
	sets := cfg.L2Entries / cfg.L2Ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets--
	}
	return &TLB{
		cfg:      cfg,
		pageBits: cfg.PageBits,
		l1:       make([]uint64, cfg.L1Entries),
		l2Sets:   sets,
		l2Ways:   cfg.L2Ways,
		l2:       make([]uint64, sets*cfg.L2Ways),
	}
}

// NewDefault builds a TLB with DefaultConfig.
func NewDefault() *TLB { return New(DefaultConfig()) }

// Translate looks up the page containing addr, filling both levels on
// a miss and returning the added latency. Small enough to inline: the
// MRU-hit case — a hit in way 0 needs no LRU reordering, and spatial
// locality makes it the dominant outcome — never leaves the caller.
func (t *TLB) Translate(addr uint64) Result {
	if t.l1[0] == addr>>t.pageBits+1 {
		return Result{}
	}
	return t.translateSlow(addr)
}

func (t *TLB) translateSlow(addr uint64) Result {
	tag := addr>>t.pageBits + 1
	if t.l1Lookup(tag) {
		return Result{}
	}
	r := Result{MissL1: true}
	t.l1Insert(tag)
	if t.l2Lookup(tag) {
		r.Cycles = uint64(t.cfg.L2Cycles)
		return r
	}
	r.MissL2 = true
	t.l2Insert(tag)
	r.Cycles = uint64(t.cfg.L2Cycles + t.cfg.WalkBase)
	return r
}

func (t *TLB) l1Lookup(tag uint64) bool {
	for i, v := range t.l1 {
		if v == tag {
			copy(t.l1[1:i+1], t.l1[:i])
			t.l1[0] = tag
			return true
		}
	}
	return false
}

func (t *TLB) l1Insert(tag uint64) {
	copy(t.l1[1:], t.l1[:len(t.l1)-1])
	t.l1[0] = tag
}

// l2Set returns the ways of the set indexed by the raw page number
// (tag-1, so the set index matches the untranslated encoding).
func (t *TLB) l2Set(tag uint64) []uint64 {
	s := int(tag-1) & (t.l2Sets - 1)
	lo := s * t.l2Ways
	return t.l2[lo : lo+t.l2Ways : lo+t.l2Ways]
}

func (t *TLB) l2Lookup(tag uint64) bool {
	ws := t.l2Set(tag)
	for i, v := range ws {
		if v == tag {
			copy(ws[1:i+1], ws[:i])
			ws[0] = tag
			return true
		}
	}
	return false
}

func (t *TLB) l2Insert(tag uint64) {
	ws := t.l2Set(tag)
	copy(ws[1:], ws[:len(ws)-1])
	ws[0] = tag
}

// FlushAll empties the TLB (address-space switch without tagged
// entries).
func (t *TLB) FlushAll() {
	for i := range t.l1 {
		t.l1[i] = 0
	}
	for i := range t.l2 {
		t.l2[i] = 0
	}
}
