// Package tlb models a two-level data TLB: a small fully-associative
// L1 DTLB backed by a larger set-associative STLB, with a fixed
// page-walk cost on a full miss. Misses feed the PMU's dTLB events; a
// page walk also stalls the access by WalkCycles.
//
// The model is deliberately simple (no PCIDs, no huge pages): the
// reproduced paper's workloads only need TLB pressure to be *visible*
// to the counters, not modeled in detail.
package tlb

// Result describes one translation.
type Result struct {
	// Cycles is the added translation latency (0 on an L1 hit).
	Cycles uint64
	// MissL1 and MissL2 report which levels missed.
	MissL1 bool
	MissL2 bool
}

// Config sizes the TLB.
type Config struct {
	L1Entries int // fully associative
	L2Entries int
	L2Ways    int
	L2Cycles  int // latency when the STLB hits
	WalkBase  int // page-walk latency on a full miss
	PageBits  uint
}

// DefaultConfig approximates a 2011 x86 data TLB: 64-entry DTLB,
// 512-entry 4-way STLB, 7-cycle STLB hit, 30-cycle walk, 4 KiB pages.
func DefaultConfig() Config {
	return Config{
		L1Entries: 64,
		L2Entries: 512,
		L2Ways:    4,
		L2Cycles:  7,
		WalkBase:  30,
		PageBits:  12,
	}
}

// TLB is one core's data TLB.
type TLB struct {
	cfg Config

	l1      []uint64 // pages, LRU order (index 0 = MRU)
	l1Valid []bool

	l2Sets  int
	l2Tags  [][]uint64
	l2Valid [][]bool
}

// New builds a TLB.
func New(cfg Config) *TLB {
	sets := cfg.L2Entries / cfg.L2Ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets--
	}
	t := &TLB{
		cfg:     cfg,
		l1:      make([]uint64, cfg.L1Entries),
		l1Valid: make([]bool, cfg.L1Entries),
		l2Sets:  sets,
	}
	t.l2Tags = make([][]uint64, sets)
	t.l2Valid = make([][]bool, sets)
	for i := 0; i < sets; i++ {
		t.l2Tags[i] = make([]uint64, cfg.L2Ways)
		t.l2Valid[i] = make([]bool, cfg.L2Ways)
	}
	return t
}

// NewDefault builds a TLB with DefaultConfig.
func NewDefault() *TLB { return New(DefaultConfig()) }

// Translate looks up the page containing addr, filling both levels on
// a miss and returning the added latency.
func (t *TLB) Translate(addr uint64) Result {
	page := addr >> t.cfg.PageBits
	if t.l1Lookup(page) {
		return Result{}
	}
	r := Result{MissL1: true}
	t.l1Insert(page)
	if t.l2Lookup(page) {
		r.Cycles = uint64(t.cfg.L2Cycles)
		return r
	}
	r.MissL2 = true
	t.l2Insert(page)
	r.Cycles = uint64(t.cfg.L2Cycles + t.cfg.WalkBase)
	return r
}

func (t *TLB) l1Lookup(page uint64) bool {
	for i, ok := range t.l1Valid {
		if ok && t.l1[i] == page {
			copy(t.l1[1:i+1], t.l1[:i])
			t.l1[0] = page
			return true
		}
	}
	return false
}

func (t *TLB) l1Insert(page uint64) {
	copy(t.l1[1:], t.l1[:len(t.l1)-1])
	copy(t.l1Valid[1:], t.l1Valid[:len(t.l1Valid)-1])
	t.l1[0] = page
	t.l1Valid[0] = true
}

func (t *TLB) l2Index(page uint64) int { return int(page) & (t.l2Sets - 1) }

func (t *TLB) l2Lookup(page uint64) bool {
	s := t.l2Index(page)
	for i, ok := range t.l2Valid[s] {
		if ok && t.l2Tags[s][i] == page {
			copy(t.l2Tags[s][1:i+1], t.l2Tags[s][:i])
			t.l2Tags[s][0] = page
			return true
		}
	}
	return false
}

func (t *TLB) l2Insert(page uint64) {
	s := t.l2Index(page)
	copy(t.l2Tags[s][1:], t.l2Tags[s][:len(t.l2Tags[s])-1])
	copy(t.l2Valid[s][1:], t.l2Valid[s][:len(t.l2Valid[s])-1])
	t.l2Tags[s][0] = page
	t.l2Valid[s][0] = true
}

// FlushAll empties the TLB (address-space switch without tagged
// entries).
func (t *TLB) FlushAll() {
	for i := range t.l1Valid {
		t.l1Valid[i] = false
	}
	for s := range t.l2Valid {
		for i := range t.l2Valid[s] {
			t.l2Valid[s][i] = false
		}
	}
}
