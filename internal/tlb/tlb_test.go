package tlb

import "testing"

func TestColdMissThenHit(t *testing.T) {
	tl := NewDefault()
	r := tl.Translate(0x10_0000)
	if !r.MissL1 || !r.MissL2 {
		t.Errorf("cold translation should miss both levels: %+v", r)
	}
	if r.Cycles != uint64(DefaultConfig().L2Cycles+DefaultConfig().WalkBase) {
		t.Errorf("walk cost %d", r.Cycles)
	}
	if r := tl.Translate(0x10_0000); r.MissL1 || r.Cycles != 0 {
		t.Errorf("second translation should hit L1 free: %+v", r)
	}
}

func TestSamePageSharesEntry(t *testing.T) {
	tl := NewDefault()
	tl.Translate(0x2000)
	if r := tl.Translate(0x2ff8); r.MissL1 {
		t.Error("same 4KiB page must hit")
	}
	if r := tl.Translate(0x3000); !r.MissL1 {
		t.Error("next page must miss")
	}
}

func TestSTLBCatchesL1Evictions(t *testing.T) {
	tl := NewDefault()
	// Touch 128 pages: beyond the 64-entry DTLB, within the 512-entry STLB.
	for p := uint64(0); p < 128; p++ {
		tl.Translate(p << 12)
	}
	r := tl.Translate(0)
	if !r.MissL1 {
		t.Error("page 0 should have left the 64-entry DTLB")
	}
	if r.MissL2 {
		t.Error("page 0 should still be in the STLB")
	}
	if r.Cycles != uint64(DefaultConfig().L2Cycles) {
		t.Errorf("STLB hit cost %d", r.Cycles)
	}
}

func TestCapacityWalks(t *testing.T) {
	tl := NewDefault()
	// Touch far more pages than the STLB holds, twice; the second pass
	// must still walk for the early pages.
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < 2048; p++ {
			tl.Translate(p << 12)
		}
	}
	if r := tl.Translate(0); !r.MissL2 {
		t.Error("page 0 should have been evicted from a 512-entry STLB")
	}
}

func TestFlushAll(t *testing.T) {
	tl := NewDefault()
	tl.Translate(0x5000)
	tl.FlushAll()
	if r := tl.Translate(0x5000); !r.MissL1 || !r.MissL2 {
		t.Error("flush must empty both levels")
	}
}

func TestL1LRUOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Entries = 2
	tl := New(cfg)
	a, b, c := uint64(1<<12), uint64(2<<12), uint64(3<<12)
	tl.Translate(a)
	tl.Translate(b)
	tl.Translate(a) // a back to MRU
	tl.Translate(c) // evicts b
	if r := tl.Translate(a); r.MissL1 {
		t.Error("a (MRU) should survive")
	}
	if r := tl.Translate(b); !r.MissL1 {
		t.Error("b (LRU) should have been evicted")
	}
}
