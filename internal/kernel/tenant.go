package kernel

import (
	"fmt"
	"math/bits"

	"limitsim/internal/pmu"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
)

// Tenant scheduling: a guest-scheduler ("vCPU") layer above the thread
// scheduler, modeling N tenant VMs time-sharing the cores. Each core
// has at most one *resident* tenant at a time; running a thread of a
// different tenant first performs a vCPU switch — the second level of
// the double context switch the paper's single-host design never
// faces. The LiMiT fixup must keep userspace read sequences atomic
// across both levels: a vCPU preemption goes through the same
// deschedule path (PMI drain, PC rewind, counter save) as a thread
// preemption, so the rewind window extends across the extra level for
// free — and the chaos/invariant stack proves it rather than assuming
// it.
//
// Attribution: the layer keeps a per-tenant ledger of ground-truth
// user-ring instructions, resident cycles (all rings) and uncore
// events, accumulated per residency span from the per-core omniscient
// counts. User instructions only ever retire under an open span (a
// thread runs only after switchTo, which establishes residency), so
// tenant instruction sums conserve exactly against the machine total.
// vCPU-switch overhead is charged *between* spans and stays
// unattributed host work by design.
//
// Uncore attribution policy: socket-level counters cannot be saved or
// restored per thread, so per-tenant uncore values are estimated by
// share-of-resident-cycles — tenant i gets
//
//	est_i = floor(total * cycles_i / Σcycles)
//
// with the remainder distributed by largest fractional part (ties to
// the lowest tenant id), so Σ est_i == total exactly. The per-core
// ground truth gives the *true* per-tenant split, which the harness
// reports as the policy's measured attribution error.

// TenantLedger is one tenant's attribution record.
type TenantLedger struct {
	// Instructions is the tenant's true user-ring retired-instruction
	// total, summed over its residency spans.
	Instructions uint64
	// Cycles is core time (all rings) spent while the tenant was
	// resident.
	Cycles uint64
	// Uncore is the tenant's *true* uncore-event total (per-core ground
	// truth summed over residency spans) — the baseline the
	// share-by-cycles estimate is judged against.
	Uncore uint64

	// Preempts counts vCPU preemptions (quantum expiry or chaos),
	// Resumes counts residency establishments, Migrations counts
	// cross-core vCPU moves and thread re-placements onto the
	// resident core.
	Preempts   uint64
	Resumes    uint64
	Migrations uint64
}

// tenantSnap is the per-core ground-truth snapshot taken when a
// residency span opens; span deltas accrue to the resident tenant.
type tenantSnap struct {
	instr  uint64
	cycles uint64
	uncore uint64
}

// tenantSched is the guest-scheduler state (nil when Config.Tenants
// <= 1, costing existing paths nothing).
type tenantSched struct {
	n        int
	quantum  uint64
	vcpus    int // per-tenant residency cap (0: unbounded)
	uncoreEv pmu.Event

	resident   []int        // per core: resident tenant (-1 none)
	quantumEnd []uint64     // per core: tenant-quantum deadline
	base       []tenantSnap // per core: span-open snapshot
	resCount   []int        // per tenant: cores currently resident
	lastCore   []int        // per tenant: last core resumed on (-1 never)
	led        []TenantLedger
	metrics    *TenantMetrics
}

func newTenantSched(cfg Config, nCores int) *tenantSched {
	ts := &tenantSched{
		n:          cfg.Tenants,
		quantum:    cfg.TenantQuantum,
		vcpus:      cfg.VCPUs,
		uncoreEv:   cfg.UncoreEvent,
		resident:   make([]int, nCores),
		quantumEnd: make([]uint64, nCores),
		base:       make([]tenantSnap, nCores),
		resCount:   make([]int, cfg.Tenants),
		lastCore:   make([]int, cfg.Tenants),
		led:        make([]TenantLedger, cfg.Tenants),
	}
	if ts.quantum == 0 {
		ts.quantum = 3 * cfg.Quantum
	}
	for i := range ts.resident {
		ts.resident[i] = -1
	}
	for i := range ts.lastCore {
		ts.lastCore[i] = -1
	}
	return ts
}

// tenantOf maps a thread to a valid tenant id (out-of-range tags fall
// back to tenant 0, so untagged threads are owned, never leaked).
func (ts *tenantSched) tenantOf(t *Thread) int {
	if t.Tenant < 0 || t.Tenant >= ts.n {
		return 0
	}
	return t.Tenant
}

// snap captures a core's ground-truth counters.
func (ts *tenantSched) snap(k *Kernel, coreID int) tenantSnap {
	p := k.cores[coreID].PMU
	return tenantSnap{
		instr:  p.GroundTruth(pmu.EvInstructions, pmu.RingUser),
		cycles: p.GroundTruthTotal(pmu.EvCycles),
		uncore: p.GroundTruthTotal(ts.uncoreEv),
	}
}

// closeSpan folds the open residency span on coreID into the resident
// tenant's ledger.
func (ts *tenantSched) closeSpan(k *Kernel, coreID int) {
	tid := ts.resident[coreID]
	if tid < 0 {
		return
	}
	now := ts.snap(k, coreID)
	b := ts.base[coreID]
	di, dc, du := now.instr-b.instr, now.cycles-b.cycles, now.uncore-b.uncore
	led := &ts.led[tid]
	led.Instructions += di
	led.Cycles += dc
	led.Uncore += du
	if ts.metrics != nil {
		ts.metrics.Instructions[tid].Add(di)
		ts.metrics.CyclesResident[tid].Add(dc)
	}
	ts.base[coreID] = now
}

// tenantEnsure makes tid resident on coreID, performing the vCPU half
// of the double context switch when a different tenant held the core.
// It is called from switchTo — the single choke point every thread
// takes onto a core — so the invariant "the current thread's tenant is
// the resident tenant" holds everywhere.
func (k *Kernel) tenantEnsure(coreID, tid int) {
	ts := k.ts
	core := k.cores[coreID]
	if ts.resident[coreID] == tid {
		if core.Now >= ts.quantumEnd[coreID] {
			ts.quantumEnd[coreID] = core.Now + ts.quantum
		}
		return
	}
	if old := ts.resident[coreID]; old >= 0 {
		ts.closeSpan(k, coreID)
		ts.resCount[old]--
		ts.resident[coreID] = -1
	}
	// The vCPU switch itself is host work between spans: charged in the
	// kernel ring, attributed to no tenant.
	core.KernelWork(k.cfg.Costs.VCpuSwitch)
	led := &ts.led[tid]
	if ts.lastCore[tid] >= 0 && ts.lastCore[tid] != coreID {
		led.Migrations++
		k.Stats.VCpuMigrations++
		if ts.metrics != nil {
			ts.metrics.Migrations[tid].Inc()
		}
		k.tr(coreID, nil, trace.VCpuMigrate, uint64(tid))
	}
	led.Resumes++
	ts.lastCore[tid] = coreID
	ts.resident[coreID] = tid
	ts.resCount[tid]++
	ts.base[coreID] = ts.snap(k, coreID)
	ts.quantumEnd[coreID] = core.Now + ts.quantum
	k.Stats.VCpuSwitches++
	k.tr(coreID, nil, trace.VCpuResume, uint64(tid))
}

// tenantTick rotates an expired tenant quantum: when the resident
// tenant's slice is up and another tenant has a ready thread waiting
// on this core, the current thread takes a vCPU preemption — the
// double context switch in full, wherever its PC happens to be.
func (k *Kernel) tenantTick(coreID int) {
	ts := k.ts
	if ts == nil {
		return
	}
	t := k.cur[coreID]
	if t == nil {
		return
	}
	core := k.cores[coreID]
	if core.Now < ts.quantumEnd[coreID] {
		return
	}
	tid := ts.tenantOf(t)
	waiting := false
	for _, r := range k.runq[coreID] {
		if r.ReadyAt <= core.Now && ts.tenantOf(r) != tid {
			waiting = true
			break
		}
	}
	if !waiting {
		// No other tenant contends for this core; let the thread-level
		// scheduler rotate within the tenant.
		ts.quantumEnd[coreID] = core.Now + ts.quantum
		return
	}
	k.vcpuPreempt(coreID, t)
}

// vcpuPreempt forces the current thread off coreID as a tenant-level
// preemption. It rides the ordinary deschedule path — PMI drain, PC
// rewind fixup, counter save — which is exactly the point of the
// exercise: the guest layer adds a second reason to leave the core,
// not a second mechanism.
func (k *Kernel) vcpuPreempt(coreID int, t *Thread) {
	ts := k.ts
	tid := ts.tenantOf(t)
	ts.led[tid].Preempts++
	k.Stats.TenantPreemptions++
	if ts.metrics != nil {
		ts.metrics.Preempts[tid].Inc()
	}
	k.tr(coreID, t, trace.VCpuPreempt, uint64(tid))
	t.Stats.Preemptions++
	k.Stats.Preemptions++
	k.deschedule(coreID, t)
	t.State = StateReady
	t.ReadyAt = k.cores[coreID].Now
	k.runq[coreID] = append(k.runq[coreID], t)
	// Expire the tenant quantum so the next schedule() rotates to the
	// waiting tenant instead of resuming this one.
	ts.quantumEnd[coreID] = 0
}

// chaosVCpuPreempt asks the injector whether to force a vCPU
// preemption at this boundary (tenant layer active only).
func (k *Kernel) chaosVCpuPreempt(coreID int) {
	t := k.cur[coreID]
	if t == nil || k.ts == nil || k.chaos == nil || k.chaos.VCpuPreemptAfter == nil || !k.chaos.VCpuPreemptAfter(coreID, t) {
		return
	}
	k.vcpuPreempt(coreID, t)
}

// tenantMigrate relocates ready threads whose tenant has exhausted its
// vCPU budget elsewhere onto a core where the tenant is already
// resident, keeping the residency cap honest without deadlocking: a
// saturated tenant is by definition resident somewhere, and residency
// only changes through switchTo, so the destination will run the
// migrant.
func (k *Kernel) tenantMigrate(coreID int) {
	ts := k.ts
	if ts.vcpus <= 0 {
		return
	}
	now := k.cores[coreID].Now
	kept := k.runq[coreID][:0]
	for _, t := range k.runq[coreID] {
		tid := ts.tenantOf(t)
		if t.ReadyAt <= now && ts.resident[coreID] != tid && ts.resCount[tid] >= ts.vcpus {
			dst := -1
			for c := range k.cores {
				if ts.resident[c] == tid {
					dst = c
					break
				}
			}
			if dst >= 0 && dst != coreID {
				k.runq[dst] = append(k.runq[dst], t)
				ts.led[tid].Migrations++
				k.Stats.VCpuMigrations++
				if ts.metrics != nil {
					ts.metrics.Migrations[tid].Inc()
				}
				k.tr(coreID, t, trace.VCpuMigrate, uint64(tid))
				continue
			}
		}
		kept = append(kept, t)
	}
	k.runq[coreID] = kept
}

// tenantPick selects the next thread index from coreID's queue under
// the tenant policy: within an unexpired quantum the resident tenant's
// threads go first (avoiding needless double switches); otherwise
// tenants rotate round-robin from the one after the resident. Returns
// -1 when nothing is immediately runnable.
func (k *Kernel) tenantPick(coreID int) int {
	ts := k.ts
	core := k.cores[coreID]
	q := k.runq[coreID]
	res := ts.resident[coreID]
	if res >= 0 && core.Now < ts.quantumEnd[coreID] {
		for i, t := range q {
			if t.ReadyAt <= core.Now && ts.tenantOf(t) == res {
				return i
			}
		}
	}
	start := res + 1
	for off := 0; off < ts.n; off++ {
		tid := (start + off) % ts.n
		for i, t := range q {
			if t.ReadyAt <= core.Now && ts.tenantOf(t) == tid {
				return i
			}
		}
	}
	return -1
}

// tenantStealOK reports whether the thief core may steal t under the
// vCPU residency cap (always true when the cap is off).
func (k *Kernel) tenantStealOK(thief int, t *Thread) bool {
	ts := k.ts
	if ts == nil || ts.vcpus <= 0 {
		return true
	}
	tid := ts.tenantOf(t)
	return ts.resident[thief] == tid || ts.resCount[tid] < ts.vcpus
}

// TenantAcct is one tenant's attribution snapshot, including the
// share-by-cycles uncore estimate.
type TenantAcct struct {
	ID int
	// Instructions, Cycles, Uncore mirror TenantLedger (ground truth).
	Instructions uint64
	Cycles       uint64
	Uncore       uint64
	// UncoreEst is the share-by-cycles policy estimate; estimates over
	// all tenants sum to the socket total exactly.
	UncoreEst uint64

	Preempts   uint64
	Resumes    uint64
	Migrations uint64
}

// TenantAccts returns the per-tenant attribution snapshot with live
// (still-open) residency spans folded in read-only, and the uncore
// policy estimates applied. Returns nil when the tenant layer is off.
func (k *Kernel) TenantAccts() []TenantAcct {
	ts := k.ts
	if ts == nil {
		return nil
	}
	led := make([]TenantLedger, ts.n)
	copy(led, ts.led)
	for c := range k.cores {
		tid := ts.resident[c]
		if tid < 0 {
			continue
		}
		now := ts.snap(k, c)
		b := ts.base[c]
		led[tid].Instructions += now.instr - b.instr
		led[tid].Cycles += now.cycles - b.cycles
		led[tid].Uncore += now.uncore - b.uncore
	}
	total := k.uncoreTotal()
	var totalCyc uint64
	for i := range led {
		totalCyc += led[i].Cycles
	}
	est := apportion(total, totalCyc, led)
	accts := make([]TenantAcct, ts.n)
	for i := range accts {
		accts[i] = TenantAcct{
			ID:           i,
			Instructions: led[i].Instructions,
			Cycles:       led[i].Cycles,
			Uncore:       led[i].Uncore,
			UncoreEst:    est[i],
			Preempts:     led[i].Preempts,
			Resumes:      led[i].Resumes,
			Migrations:   led[i].Migrations,
		}
	}
	return accts
}

// UncoreTotal returns the socket-wide uncore-event count the
// attribution policy divides — the denominator oracles and reports
// judge estimates against. Zero when the tenant layer is off.
func (k *Kernel) UncoreTotal() uint64 {
	if k.ts == nil {
		return 0
	}
	return k.uncoreTotal()
}

// uncoreTotal returns the socket-wide uncore-event count: the shared
// Uncore block when one is attached, else the per-core ground-truth
// sum (identical by construction, but the attached block is the
// "hardware" reading the policy must divide).
func (k *Kernel) uncoreTotal() uint64 {
	if u := k.cores[0].PMU.Uncore(); u != nil {
		return u.Value(k.ts.uncoreEv)
	}
	var sum uint64
	for _, c := range k.cores {
		sum += c.PMU.GroundTruthTotal(k.ts.uncoreEv)
	}
	return sum
}

// apportion splits total by each tenant's share of totalCyc using
// largest-remainder rounding: floors first (128-bit intermediate, so
// no overflow at any magnitude), then the remainder one unit at a time
// to the largest fractional part, ties to the lowest id. The results
// always sum to total; with zero attributed cycles everything goes to
// tenant 0 (an arbitrary but documented owner of unattributable
// counts).
func apportion(total, totalCyc uint64, led []TenantLedger) []uint64 {
	est := make([]uint64, len(led))
	if total == 0 {
		return est
	}
	if totalCyc == 0 {
		est[0] = total
		return est
	}
	rem := make([]uint64, len(led))
	var assigned uint64
	for i := range led {
		hi, lo := bits.Mul64(total, led[i].Cycles)
		q, r := bits.Div64(hi, lo, totalCyc)
		est[i], rem[i] = q, r
		assigned += q
	}
	for assigned < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		est[best]++
		rem[best] = 0
		assigned++
	}
	return est
}

// TenantMetrics is the per-tenant telemetry surface. Metric names are
// zero-padded ("tenant.03.vcpu.preempts") and registered in
// lexicographic order, so registration order equals canonical sorted
// order and fleet-mode merges of tenant campaigns stay
// byte-deterministic.
type TenantMetrics struct {
	CyclesResident []*telemetry.Counter
	Instructions   []*telemetry.Counter
	Migrations     []*telemetry.Counter
	Preempts       []*telemetry.Counter
}

// NewTenantMetrics registers n tenants' metrics on reg in canonical
// sorted order and returns the handle to attach with SetTenantMetrics.
func NewTenantMetrics(reg *telemetry.Registry, n int) *TenantMetrics {
	tm := &TenantMetrics{
		CyclesResident: make([]*telemetry.Counter, n),
		Instructions:   make([]*telemetry.Counter, n),
		Migrations:     make([]*telemetry.Counter, n),
		Preempts:       make([]*telemetry.Counter, n),
	}
	for i := 0; i < n; i++ {
		// Per tenant, register in the metric names' alphabetical order;
		// with the zero-padded tenant prefix ascending outside, the whole
		// block lands sorted.
		tm.CyclesResident[i] = reg.Counter(fmt.Sprintf("tenant.%02d.cycles.resident", i))
		tm.Instructions[i] = reg.Counter(fmt.Sprintf("tenant.%02d.instructions", i))
		tm.Migrations[i] = reg.Counter(fmt.Sprintf("tenant.%02d.vcpu.migrations", i))
		tm.Preempts[i] = reg.Counter(fmt.Sprintf("tenant.%02d.vcpu.preempts", i))
	}
	return tm
}

// SetTenantMetrics attaches per-tenant metrics (nil detaches). No-op
// when the tenant layer is off.
func (k *Kernel) SetTenantMetrics(tm *TenantMetrics) {
	if k.ts == nil {
		return
	}
	if tm != nil && len(tm.Preempts) < k.ts.n {
		panic("kernel: TenantMetrics smaller than tenant count")
	}
	k.ts.metrics = tm
}
