package kernel_test

import (
	"regexp"
	"testing"

	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

// faultShape is the uniform diagnostic format every kernel fault
// carries: which thread (ID and name), on which core, at which PC.
var faultShape = regexp.MustCompile(`^thread \d+ \([^)]+\) core\d+ pc=\d+: .+$`)

// TestFaultMessageShape asserts the uniform fault diagnostic: thread
// identity, core and PC always present, for both an unknown syscall
// and a signal-stack underflow.
func TestFaultMessageShape(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *isa.Builder)
		want *regexp.Regexp
	}{
		{
			name: "unknown-syscall",
			emit: func(b *isa.Builder) { b.Syscall(99) },
			want: regexp.MustCompile(`^thread 1 \(oops\) core0 pc=1: unknown syscall 99$`),
		},
		{
			name: "sigreturn-outside-handler",
			emit: func(b *isa.Builder) { b.SigReturn() },
			want: regexp.MustCompile(`^thread 1 \(oops\) core0 pc=\d+: sigreturn outside signal handler`),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := machine.New(machine.Config{NumCores: 1})
			b := isa.NewBuilder()
			tc.emit(b)
			b.Halt()
			proc := m.Kern.NewProcess(b.MustBuild(), nil)
			m.Kern.Spawn(proc, "oops", 0, 1)
			// res.Err reports the fault too; the fault list is what this
			// test is about.
			res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
			if len(res.Faults) != 1 {
				t.Fatalf("got %d faults, want 1: %v", len(res.Faults), res.Faults)
			}
			if !tc.want.MatchString(res.Faults[0]) {
				t.Errorf("fault %q does not match %v", res.Faults[0], tc.want)
			}
			if !faultShape.MatchString(res.Faults[0]) {
				t.Errorf("fault %q does not match the uniform shape %v", res.Faults[0], faultShape)
			}
			// A faulting thread goes through the same teardown as a clean
			// exit: nothing may remain on the ledgers.
			if rs := m.Kern.Resources(); rs.SlotsInUse != 0 || rs.RegionsLive != 0 {
				t.Errorf("fault path leaked resources: %+v", rs)
			}
		})
	}
}

// TestCloneInheritsCounters spawns a child via SysClone with a caller-
// provided virtual-counter table and checks the inheritance contract:
// the child's counter set mirrors the parent's (kinds, events, rings),
// values start at zero, the parent gets the child TID, the child gets
// the exact/degraded flag, and everything is reclaimed at exit.
func TestCloneInheritsCounters(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	parentTable := space.AllocWords(1)
	childTable := space.AllocWords(1)
	buf := space.AllocWords(2) // [0] clone result, [1] child degraded flag

	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(parentTable))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R0, int64(pmu.EvCycles))
	b.MovImm(isa.R1, int64(kernel.FlagUser|kernel.FlagKernel))
	b.Syscall(kernel.SysPerfOpen)
	b.MovLabel(isa.R0, "child")
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 5)
	b.MovImm(isa.R3, int64(childTable))
	b.Syscall(kernel.SysClone)
	b.MovImm(isa.R2, int64(buf))
	b.Store(isa.R2, 0, isa.R0)
	b.Syscall(kernel.SysJoin) // R0 still holds the child TID
	b.Halt()

	b.Label("child")
	b.MovImm(isa.R2, int64(buf+8))
	b.Store(isa.R2, 0, isa.R0) // degraded flag
	b.Compute(50)
	b.Syscall(kernel.SysExit)

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "parent", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if got := space.Read64(buf); got != 2 {
		t.Fatalf("SysClone returned %d, want child TID 2", got)
	}
	if got := space.Read64(buf + 8); got != 0 {
		t.Errorf("child degraded flag = %d, want 0 (slots were free)", got)
	}

	child := m.Kern.Threads()[1]
	if child.ClonedFrom != 1 {
		t.Errorf("child.ClonedFrom = %d, want 1", child.ClonedFrom)
	}
	cs := child.Counters()
	if len(cs) != 2 {
		t.Fatalf("child has %d counters, want 2 (mirrors parent)", len(cs))
	}
	lc := cs[0]
	if lc.Kind != kernel.KindLimit || lc.Event != pmu.EvInstructions ||
		!lc.CountUser || lc.CountKernel || !lc.Inherited {
		t.Errorf("inherited LiMiT counter misconfigured: %+v", lc)
	}
	if lc.TableAddr != childTable {
		t.Errorf("child counter backed by %#x, want caller-provided %#x", lc.TableAddr, childTable)
	}
	if lc.Estimated {
		t.Error("exact inheritance flagged as estimated")
	}
	if cs[1].Kind != kernel.KindPerf || !cs[1].Inherited {
		t.Errorf("inherited perf counter misconfigured: %+v", cs[1])
	}
	// The child counted its own work — and only its own work — from
	// birth: the final value (table word + saved remainder) is exactly
	// its true user-instruction total.
	if got := space.Read64(childTable) + lc.Saved; got != child.Stats.UserInstructions {
		t.Errorf("child counted %d, true user instructions %d", got, child.Stats.UserInstructions)
	}
	if m.Kern.Stats.Clones != 1 {
		t.Errorf("Stats.Clones = %d, want 1", m.Kern.Stats.Clones)
	}
	if m.Kern.Stats.Exits != 2 { // child SysExit + parent halt
		t.Errorf("Stats.Exits = %d, want 2", m.Kern.Stats.Exits)
	}
	if rs := m.Kern.Resources(); rs.SlotsInUse != 0 || rs.TableWordsInUse != 0 {
		t.Errorf("clone/exit leaked resources: %+v", rs)
	}
}

// TestSlotExhaustionRetryAfterRelease drives the pinned-slot ledger to
// capacity: the second open must fail transiently with RetAgain (not
// RetErr, not a panic), and succeed once the first counter is closed
// and its slot returns.
func TestSlotExhaustionRetryAfterRelease(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.VirtSlotCapacity = 1
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	tableA := space.AllocWords(1)
	tableB := space.AllocWords(1)
	buf := space.AllocWords(3)

	open := func(b *isa.Builder, table uint64, slot int64) {
		b.MovImm(isa.R0, int64(pmu.EvInstructions))
		b.MovImm(isa.R1, int64(kernel.FlagUser))
		b.MovImm(isa.R2, int64(table))
		b.Syscall(kernel.SysLimitOpen)
		b.MovImm(isa.R2, int64(buf)+slot*8)
		b.Store(isa.R2, 0, isa.R0)
	}

	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	open(b, tableA, 0) // takes the only slot
	open(b, tableB, 1) // denied: RetAgain
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysLimitClose) // slot returns
	open(b, tableB, 2)              // retry succeeds
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if got := space.Read64(buf); got != 0 {
		t.Errorf("first open returned %d, want index 0", got)
	}
	if got := space.Read64(buf + 8); got != kernel.RetAgain {
		t.Errorf("over-capacity open returned %#x, want RetAgain %#x", got, kernel.RetAgain)
	}
	if got := space.Read64(buf + 16); got != 0 {
		t.Errorf("retry after release returned %d, want reused index 0", got)
	}
	rs := m.Kern.Resources()
	if rs.SlotDenials != 1 {
		t.Errorf("SlotDenials = %d, want 1", rs.SlotDenials)
	}
	if rs.SlotsInUse != 0 || rs.SlotsPeak != 1 {
		t.Errorf("slot accounting off: %+v", rs)
	}
}

// TestCloneDegradesOnSlotExhaustion pins the only slot in the parent
// and clones: the child cannot get a pinned slot, so its inherited
// counter degrades to a flagged multiplexed perf estimate — readable,
// marked estimated, never silently wrong, never a panic.
func TestCloneDegradesOnSlotExhaustion(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.VirtSlotCapacity = 1
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	parentTable := space.AllocWords(1)
	buf := space.AllocWords(2) // [0] degraded flag, [1] child perf reading

	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(parentTable))
	b.Syscall(kernel.SysLimitOpen)
	b.MovLabel(isa.R0, "child")
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 9)
	b.MovImm(isa.R3, 0)
	b.Syscall(kernel.SysClone)
	b.Syscall(kernel.SysJoin)
	b.Halt()

	b.Label("child")
	b.MovImm(isa.R2, int64(buf))
	b.Store(isa.R2, 0, isa.R0) // degraded flag
	b.Compute(200)
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysPerfRead) // degraded counters stay readable
	b.MovImm(isa.R2, int64(buf+8))
	b.Store(isa.R2, 0, isa.R0)
	b.Syscall(kernel.SysExit)

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "parent", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if got := space.Read64(buf); got != 1 {
		t.Fatalf("child degraded flag = %d, want 1 (slot was exhausted)", got)
	}
	child := m.Kern.Threads()[1]
	cs := child.Counters()
	if len(cs) != 1 || cs[0].Kind != kernel.KindPerf || !cs[0].Estimated {
		t.Fatalf("degraded counter not a flagged perf estimate: %+v", cs[0])
	}
	if got := space.Read64(buf + 8); got == 0 || got == kernel.RetErr {
		t.Errorf("degraded counter read returned %#x, want a live estimate", got)
	}
	rs := m.Kern.Resources()
	if rs.SlotDenials == 0 {
		t.Error("clone degradation recorded no slot denial")
	}
	if rs.SlotsInUse != 0 || rs.TableWordsInUse != 0 {
		t.Errorf("degraded clone leaked resources: %+v", rs)
	}
}

// TestAblateReclaimDetectsLeaks disables exit-time reclamation and
// checks that the harness *notices*: the slot and region ledgers stay
// non-zero after all threads exit, and the invariant oracles report
// both the unreleased counter and the leaks.
func TestAblateReclaimDetectsLeaks(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.AblateReclaim = true
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	table := space.AllocWords(1)

	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R0, 0)
	b.MovImm(isa.R1, 2)
	b.Syscall(kernel.SysLimitRegisterFixup)
	b.Compute(100)
	b.Syscall(kernel.SysExit)

	chk := invariant.New(nil)
	chk.Attach(m.Kern)

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "leaker", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	rs := m.Kern.Resources()
	if rs.SlotsInUse != 1 || rs.RegionsLive != 1 {
		t.Fatalf("ablated reclaim should leak 1 slot and 1 region, got %+v", rs)
	}
	chk.CheckLeaks(rs)
	leaks, badReaps := 0, 0
	for _, v := range chk.Violations() {
		switch v.Kind {
		case invariant.KindLeak:
			leaks++
		case invariant.KindBadReap:
			badReaps++
		}
	}
	if leaks < 2 {
		t.Errorf("leak oracle reported %d leak violations, want >= 2", leaks)
	}
	if badReaps < 1 {
		t.Errorf("reap oracle reported %d unreleased counters, want >= 1", badReaps)
	}
}

// signalSweepWorkload is the LiMiT read loop plus a signal handler;
// the sweep lands one delivery at every PC of the read-critical
// regions.
type signalSweepWorkload struct {
	prog    *isa.Program
	space   *mem.Space
	buf     uint64
	regions [][2]int
	want    uint64
}

const (
	sigSweepIters = 30
	sigSweepK     = 20
)

func buildSignalSweepWorkload() *signalSweepWorkload {
	w := &signalSweepWorkload{space: mem.NewSpace()}
	table := limit.AllocTable(w.space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	w.buf = w.space.AllocWords(sigSweepIters)
	e.EmitInit()
	b.MovImm(isa.R0, 1)
	b.MovLabel(isa.R1, "handler")
	b.Syscall(kernel.SysSigaction)
	b.MovImm(isa.R12, int64(w.buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(sigSweepK)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, sigSweepIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	b.Label("handler")
	b.Compute(1)
	b.SigReturn()
	e.EmitFinish()
	w.prog = b.MustBuild()
	w.regions = e.Regions()
	r := w.regions[0]
	w.want = uint64(sigSweepK) + uint64(r[1]-r[0])
	return w
}

// TestSignalDeliveryInsideFixupRegion lands exactly one signal
// delivery at every PC of the read-critical regions. Delivery applies
// the fixup to the *saved* frame, so after the handler sigreturns the
// read restarts from the region start and every measurement stays
// exact — the property that lets LiMiT-instrumented programs keep
// their signal handlers.
func TestSignalDeliveryInsideFixupRegion(t *testing.T) {
	probe := buildSignalSweepWorkload()
	if len(probe.regions) == 0 {
		t.Fatal("workload emitted no read-critical regions")
	}
	for _, region := range probe.regions {
		for pc := region[0]; pc < region[1]; pc++ {
			w := buildSignalSweepWorkload()
			feats := pmu.DefaultFeatures()
			feats.WriteWidth = 9
			m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kernel.DefaultConfig()})

			// Hold delivery until the thread sits exactly at the target
			// PC, then let it through.
			target := pc
			m.Kern.SetChaos(&kernel.Chaos{
				HoldSignal: func(coreID int, th *kernel.Thread) bool {
					return th.Ctx.PC != target
				},
			})
			chk := invariant.New(w.regions)
			chk.Attach(m.Kern)

			proc := m.Kern.NewProcess(w.prog, w.space)
			th := m.Kern.Spawn(proc, "sig", 0, 3)
			m.Kern.PostSignal(th, 1, 0)

			res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
			if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
				t.Fatalf("pc %d: run failed: %+v", pc, res)
			}
			if th.Stats.Signals != 1 {
				t.Fatalf("pc %d: %d signals delivered, want 1", pc, th.Stats.Signals)
			}
			if pc > region[0] && th.Stats.FixupRewinds == 0 {
				t.Errorf("pc %d: mid-region delivery produced no rewind", pc)
			}

			chk.Finalize(proc, m.Kern.Threads(), 0)
			for _, v := range chk.Violations() {
				t.Errorf("pc %d: invariant violation: %v", pc, v)
			}
			if chk.ReadsCompleted == 0 {
				t.Fatalf("pc %d: checker observed no completed reads", pc)
			}
			for i := 0; i < sigSweepIters; i++ {
				d := w.space.Read64(w.buf + uint64(i)*8)
				if d < w.want || d > w.want+128 {
					t.Errorf("pc %d: delta[%d] = %d outside [%d,%d]",
						pc, i, d, w.want, w.want+128)
				}
			}
		}
	}
}
