package kernel

import (
	"limitsim/internal/cpu"
	"limitsim/internal/pmu"
	"limitsim/internal/trace"
)

// Event-group multiplexing: Linux-perf-shaped groups of events — often
// more events than the PMU has counters — opened atomically and rotated
// round-robin on a configurable rotation quantum. A group loads all of
// its events onto hardware or none of them (atomic scheduling), accrues
// enabled time while open and running time while loaded, and reads back
// Linux's time_enabled/time_running scaled estimate, computed with
// 128-bit integer arithmetic (pmu.Scale), never float.
//
// This is the estimated world the paper's exact LiMiT reads are argued
// against; the M2 experiment family quantifies the gap. Two accounting
// properties are invariant-checked (invariant.CheckGroups):
//
//   - Conservation: a group's enabled time equals the thread's
//     scheduled cycles since the group opened, exactly.
//   - Exactness: a group whose running time equals its enabled time was
//     loaded for its entire life, and its raw counts must equal the
//     kernel's omniscient ground truth per event, exactly.
//
// The second property holds because every transfer between hardware
// counters and group accumulators happens at one instant on the core
// clock: spanClose drains loaded counters, attributes the span's
// ground-truth deltas, and re-marks the truth baseline with no kernel
// work charged in between. MSR costs are charged strictly outside the
// enabled-and-marked window (before counters enable on load, after the
// drain on unload), so a never-unloaded group misses nothing.

// maxGroupsPerThread bounds a thread's open group table.
const maxGroupsPerThread = 16

// GroupEvent is one event slot of a group: an event plus its ring
// filter (the descriptor-word flags of SysGroupOpen).
type GroupEvent struct {
	Event       pmu.Event
	CountUser   bool
	CountKernel bool
}

// EventGroup is one atomically scheduled set of events. Raw holds the
// drained hardware counts (only while loaded does hardware count);
// True holds the omniscient per-event totals over the same enabled
// intervals — the oracle a scaled estimate is judged against.
type EventGroup struct {
	Events []GroupEvent
	Raw    []uint64
	True   []uint64

	// EnabledCycles is scheduled time since open; RunningCycles is the
	// subset spent loaded on hardware. Their ratio is the scale factor.
	EnabledCycles uint64
	RunningCycles uint64
	// OpenSchedMark is the thread's SchedCycles at open and
	// CloseSchedMark at close; conservation demands
	// Enabled == (CloseSchedMark | SchedCycles) − OpenSchedMark.
	OpenSchedMark  uint64
	CloseSchedMark uint64

	Loaded bool
	Closed bool
	// slots are the hardware counters backing the group while loaded.
	slots []int
}

// Estimate returns event i's cumulative scaled estimate:
// raw × enabled/running in 128-bit integer arithmetic. A group loaded
// for its whole life returns the raw count unscaled (exact).
func (g *EventGroup) Estimate(i int) uint64 {
	if g.RunningCycles == 0 {
		return 0
	}
	if g.RunningCycles >= g.EnabledCycles {
		return g.Raw[i]
	}
	return pmu.Scale(g.Raw[i], g.EnabledCycles, g.RunningCycles)
}

// Multiplexed reports whether the group spent enabled time unloaded.
func (g *EventGroup) Multiplexed() bool { return g.EnabledCycles > g.RunningCycles }

// Groups exposes the thread's event groups (read-only use intended).
func (t *Thread) Groups() []*EventGroup { return t.groups }

// FrameSample is one event's cumulative state within a frame.
type FrameSample struct {
	Group    int // owning group id (index into Thread.Groups)
	Event    GroupEvent
	Estimate uint64
	Enabled  uint64
	Running  uint64
}

// Frame is one snapshot of a thread's event groups, emitted at every
// rotation, at each group close, and once (Final) when the thread is
// reaped or the run ends (FlushFrames) — so the stream always ends
// with each thread's complete cumulative state and windowed consumers
// never lose a partial tail. Seq is the kernel-wide emission order;
// frames are deterministic by construction because the simulation is.
// Tenant is the owning guest VM when the tenant layer is active
// (Config.Tenants > 1), else 0.
type Frame struct {
	Seq     uint64
	Cycle   uint64
	Core    int
	TID     int
	Tenant  int
	Final   bool
	Samples []FrameSample
}

// Frames returns every event frame emitted during the run.
func (k *Kernel) Frames() []Frame { return k.frames }

// openGroupIdx returns the indices of the thread's open groups.
func (t *Thread) openGroupIdx() []int {
	var open []int
	for gi, g := range t.groups {
		if !g.Closed {
			open = append(open, gi)
		}
	}
	return open
}

// ensureGroupSlots lazily sizes the slot→group ledger alongside the
// slot→counter one.
func ensureGroupSlots(core *cpu.Core, t *Thread) {
	ensureSlots(core, t)
	if t.groupSlots == nil {
		t.groupSlots = make([]int, core.PMU.NumCounters())
		for i := range t.groupSlots {
			t.groupSlots[i] = -1
		}
	}
}

// groupMark re-snapshots the per-event ground-truth baseline for the
// thread's next truth interval. Must be called at the same core-clock
// instant the group hardware is (re)enabled or drained.
func (k *Kernel) groupMark(core *cpu.Core, t *Thread) {
	if len(t.groups) == 0 {
		return
	}
	if t.gtMark == nil {
		t.gtMark = new([pmu.NumEvents][2]uint64)
	}
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		t.gtMark[ev][pmu.RingUser] = core.PMU.GroundTruth(ev, pmu.RingUser)
		t.gtMark[ev][pmu.RingKernel] = core.PMU.GroundTruth(ev, pmu.RingKernel)
	}
}

// spanClose closes the thread's current scheduled span: perf counters
// accrue window/active time (spanEnd), and — when the thread holds
// event groups — scheduled cycles and group enabled/running times
// accrue, loaded group counters are drained into Raw, the span's
// ground-truth deltas are attributed to True, and the truth baseline
// is re-marked. Drain, attribution and re-mark happen with no kernel
// work charged between them; that single-instant discipline is what
// makes a never-unloaded group exact (Raw == True per event).
func (k *Kernel) spanClose(core *cpu.Core, t *Thread) {
	span := core.Now - t.spanStartAt
	spanEnd(core, t)
	if len(t.groups) == 0 {
		return
	}
	if span != 0 {
		t.Stats.SchedCycles += span
		t.muxSpent += span
		for _, g := range t.groups {
			if g.Closed {
				continue
			}
			g.EnabledCycles += span
			if g.Loaded {
				g.RunningCycles += span
			}
		}
	}
	for _, g := range t.groups {
		if g.Closed {
			continue
		}
		for i := range g.Events {
			ge := &g.Events[i]
			var d uint64
			if ge.CountUser {
				d += core.PMU.GroundTruth(ge.Event, pmu.RingUser) - t.gtMark[ge.Event][pmu.RingUser]
			}
			if ge.CountKernel {
				d += core.PMU.GroundTruth(ge.Event, pmu.RingKernel) - t.gtMark[ge.Event][pmu.RingKernel]
			}
			g.True[i] += d
			if g.Loaded {
				slot := g.slots[i]
				g.Raw[i] += core.PMU.Read(slot)
				core.PMU.Write(slot, 0)
			}
		}
	}
	k.groupMark(core, t)
}

// groupPlan is a pure placement decision: which groups load into which
// free slots.
type groupPlan struct {
	gis   []int
	slots [][]int
	n     int
}

// planGroups decides which open groups fit the PMU slots left free by
// the thread's pinned and floating counters, walking the open set
// cyclically from rot so successive rotations advance the window. A
// group takes all its slots or none. ignoreGroups treats slots held by
// (about-to-be-parked) groups as free — the rotation path plans the
// post-park state before touching any counter.
func planGroups(core *cpu.Core, t *Thread, rot int, ignoreGroups bool) groupPlan {
	var p groupPlan
	open := t.openGroupIdx()
	if len(open) == 0 {
		return p
	}
	n := core.PMU.NumCounters()
	var free []int
	for slot := 0; slot < n; slot++ {
		if t.hwSlots[slot] != -1 {
			continue
		}
		if !ignoreGroups && t.groupSlots[slot] != -1 {
			continue
		}
		free = append(free, slot)
	}
	start := rot % len(open)
	for j := 0; j < len(open); j++ {
		gi := open[(start+j)%len(open)]
		g := t.groups[gi]
		if !ignoreGroups && g.Loaded {
			continue
		}
		if len(g.Events) > len(free)-p.n {
			continue
		}
		p.gis = append(p.gis, gi)
		p.slots = append(p.slots, free[p.n:p.n+len(g.Events)])
		p.n += len(g.Events)
	}
	return p
}

// applyGroupPlan programs the planned slots: event selection, ring
// filter, enable, value zeroed. Costless at the simulation level — the
// caller has already charged the MSR traffic, before this instant.
func (k *Kernel) applyGroupPlan(core *cpu.Core, t *Thread, p groupPlan) {
	for j, gi := range p.gis {
		g := t.groups[gi]
		g.slots = append(g.slots[:0], p.slots[j]...)
		g.Loaded = true
		for i, slot := range g.slots {
			ge := g.Events[i]
			core.PMU.Configure(slot, pmu.CounterConfig{
				Event:       ge.Event,
				CountUser:   ge.CountUser,
				CountKernel: ge.CountKernel,
				Enabled:     true,
				OverflowBit: -1, // groups never interrupt; spans stay far below the counter width
			})
			core.PMU.Write(slot, 0)
			t.groupSlots[slot] = gi
		}
	}
}

// groupsLoad charges the MSR traffic for every open group that fits
// the free slots, then programs them. Used on switch-in: the caller
// sets spanStartAt and re-marks immediately after, so the enable
// instant and the truth mark coincide.
func (k *Kernel) groupsLoad(core *cpu.Core, t *Thread) {
	ensureGroupSlots(core, t)
	p := planGroups(core, t, t.muxRot, false)
	if p.n == 0 {
		return
	}
	if !core.PMU.Features().HardwareVirtualization {
		core.KernelWork(k.cfg.Costs.MSRWrite * 2 * uint64(p.n)) // evtsel + value per slot
	}
	k.applyGroupPlan(core, t, p)
}

// groupsPark disables the hardware slots of loaded groups and frees
// them. The spanClose drain has already banked their counts; leftover
// cycles counted between drain and disable are discarded by the
// Write(0) at next load, never entering Raw. Returns slots parked; the
// caller prices the MSR traffic.
func (k *Kernel) groupsPark(core *cpu.Core, t *Thread) int {
	n := 0
	for _, g := range t.groups {
		if !g.Loaded {
			continue
		}
		n += k.groupPark(core, t, g)
	}
	return n
}

// groupPark unloads one group.
func (k *Kernel) groupPark(core *cpu.Core, t *Thread, g *EventGroup) int {
	n := 0
	for _, slot := range g.slots {
		core.PMU.Configure(slot, pmu.CounterConfig{Enabled: false, OverflowBit: -1})
		t.groupSlots[slot] = -1
		n++
	}
	g.slots = g.slots[:0]
	g.Loaded = false
	return n
}

// loadedGroupSlots counts hardware slots currently backing groups.
func (t *Thread) loadedGroupSlots() int {
	n := 0
	for _, g := range t.groups {
		if g.Loaded {
			n += len(g.slots)
		}
	}
	return n
}

// muxTick fires group rotation once the thread's scheduled time since
// the last rotation reaches the rotation quantum. Called from StepCore
// before each instruction of a group-holding thread; the fast path is
// one add and compare.
func (k *Kernel) muxTick(coreID int, t *Thread) {
	core := k.cores[coreID]
	if t.muxSpent+(core.Now-t.spanStartAt) < k.cfg.MuxQuantum {
		return
	}
	k.muxRotate(coreID, t)
}

// muxRotate advances the round-robin cursor and reprograms the PMU:
// price the handler and all MSR traffic first (inside the old span,
// where hardware and truth both count it), then atomically close the
// span — draining loaded groups and re-marking truth — park everything,
// load the next window, and emit one event frame.
func (k *Kernel) muxRotate(coreID int, t *Thread) {
	core := k.cores[coreID]
	open := t.openGroupIdx()
	if len(open) == 0 {
		// Every group closed: nothing rotates, but close the span so the
		// quantum check restarts instead of firing each instruction.
		k.spanClose(core, t)
		t.muxSpent = 0
		return
	}
	nextRot := (t.muxRot + 1) % len(open)
	ensureGroupSlots(core, t)
	plan := planGroups(core, t, nextRot, true)

	// Price everything before the atomic instant: rotation handler,
	// save-side MSR reads/writes for loaded slots, load-side writes for
	// the planned ones.
	core.KernelWork(k.cfg.Costs.MuxRotate)
	if !core.PMU.Features().HardwareVirtualization {
		if loaded := t.loadedGroupSlots(); loaded > 0 {
			core.KernelWork((k.cfg.Costs.MSRRead + k.cfg.Costs.MSRWrite) * uint64(loaded))
		}
		if plan.n > 0 {
			core.KernelWork(k.cfg.Costs.MSRWrite * 2 * uint64(plan.n))
		}
	}

	k.spanClose(core, t)
	k.groupsPark(core, t)
	t.muxRot = nextRot
	k.applyGroupPlan(core, t, plan)
	t.muxSpent = 0

	k.Stats.MuxRotations++
	k.emitFrame(coreID, t, false)
	k.tr(coreID, t, trace.MuxRotate, uint64(t.muxRot))
	if k.metrics != nil {
		k.metrics.MuxRotations.Inc()
	}
}

// emitFrame appends one frame snapshotting every group of t. Callers
// guarantee freshness: a spanClose ran at the current core clock.
func (k *Kernel) emitFrame(coreID int, t *Thread, final bool) {
	if len(t.groups) == 0 {
		return
	}
	f := Frame{
		Seq:    k.frameSeq,
		Cycle:  k.cores[coreID].Now,
		Core:   coreID,
		TID:    t.ID,
		Tenant: t.Tenant,
		Final:  final,
	}
	k.frameSeq++
	for gi, g := range t.groups {
		for i := range g.Events {
			f.Samples = append(f.Samples, FrameSample{
				Group:    gi,
				Event:    g.Events[i],
				Estimate: g.Estimate(i),
				Enabled:  g.EnabledCycles,
				Running:  g.RunningCycles,
			})
		}
	}
	k.frames = append(k.frames, f)
	if k.metrics != nil {
		k.metrics.GroupFrames.Inc()
	}
}

// groupOpen implements SysGroupOpen: R0 is the address of a descriptor
// table (one word per event: event id in the low 32 bits, FlagUser/
// FlagKernel in the high 32), R1 the event count. Validation is
// all-or-nothing — a bad descriptor opens nothing. The group starts
// counting at the instant it is appended; when it fits the free slots
// it loads immediately, with the MSR traffic priced before the span
// closes so enabled and running time start together (a group that is
// never subsequently unloaded stays exact).
func (k *Kernel) groupOpen(coreID int, t *Thread, tableAddr, count uint64) uint64 {
	core := k.cores[coreID]
	if count == 0 || count > uint64(core.PMU.NumCounters()) || len(t.groups) >= maxGroupsPerThread {
		return RetErr
	}
	evs := make([]GroupEvent, count)
	for i := range evs {
		word := t.Proc.Mem.Read64(tableAddr + uint64(i)*8)
		ev := word & 0xffffffff
		flags := word >> 32
		if ev >= uint64(pmu.NumEvents) || flags&(FlagUser|FlagKernel) == 0 {
			return RetErr
		}
		evs[i] = GroupEvent{
			Event:       pmu.Event(ev),
			CountUser:   flags&FlagUser != 0,
			CountKernel: flags&FlagKernel != 0,
		}
	}
	ensureGroupSlots(core, t)

	// Placement for the new group only: it may take any slot free of
	// counters and of already-loaded groups.
	var free []int
	for slot := 0; slot < core.PMU.NumCounters(); slot++ {
		if t.hwSlots[slot] == -1 && t.groupSlots[slot] == -1 {
			free = append(free, slot)
		}
	}
	loads := len(evs) <= len(free)
	if loads && !core.PMU.Features().HardwareVirtualization {
		core.KernelWork(k.cfg.Costs.MSRWrite * 2 * uint64(len(evs)))
	}

	k.spanClose(core, t)
	g := &EventGroup{
		Events: evs,
		Raw:    make([]uint64, count),
		True:   make([]uint64, count),
	}
	t.groups = append(t.groups, g)
	g.OpenSchedMark = t.Stats.SchedCycles
	k.groupMark(core, t)
	if loads {
		gi := len(t.groups) - 1
		k.applyGroupPlan(core, t, groupPlan{
			gis:   []int{gi},
			slots: [][]int{free[:len(evs)]},
			n:     len(evs),
		})
	}
	return uint64(len(t.groups) - 1)
}

// groupAt validates a group id.
func groupAt(t *Thread, gid uint64) *EventGroup {
	if gid >= uint64(len(t.groups)) || t.groups[gid].Closed {
		return nil
	}
	return t.groups[gid]
}

// groupRead implements SysGroupRead: the scaled estimate of event R1
// in group R0, fresh as of this instant.
func (k *Kernel) groupRead(coreID int, t *Thread, gid, idx uint64) uint64 {
	g := groupAt(t, gid)
	if g == nil || idx >= uint64(len(g.Events)) {
		return RetErr
	}
	k.spanClose(k.cores[coreID], t)
	return g.Estimate(int(idx))
}

// groupClose implements SysGroupClose: the group stops accruing, its
// hardware slots free up for the remaining groups, and its values
// freeze for host-side reads.
func (k *Kernel) groupClose(coreID int, t *Thread, gid uint64) uint64 {
	g := groupAt(t, gid)
	if g == nil {
		return RetErr
	}
	core := k.cores[coreID]
	if g.Loaded && !core.PMU.Features().HardwareVirtualization {
		core.KernelWork((k.cfg.Costs.MSRRead + k.cfg.Costs.MSRWrite) * uint64(len(g.slots)))
	}
	k.spanClose(core, t)
	if g.Loaded {
		k.groupPark(core, t, g)
	}
	g.Closed = true
	g.CloseSchedMark = t.Stats.SchedCycles
	// Snapshot the frozen group (and its siblings) at the close
	// instant: without this a group closed mid-run would only be seen
	// by windowed consumers at the next rotation, silently shifting its
	// final counts into a later window.
	k.emitFrame(coreID, t, false)
	return 0
}

// FlushFrames emits one final frame for every live group-holding
// thread, so a run truncated by a cycle or step limit still ends its
// frame stream with each thread's complete cumulative state (reap does
// the same for threads that exit; all-done runs make this a no-op).
// Running threads close their current span first, at their own core
// clock; descheduled threads closed theirs on deschedule and are
// stamped with the most advanced core clock, which keeps per-thread
// frame cycles non-decreasing. The machine calls this exactly once at
// the end of Run.
func (k *Kernel) FlushFrames() {
	latest := 0
	for coreID, t := range k.cur {
		if t != nil && len(t.groups) != 0 {
			k.spanClose(k.cores[coreID], t)
		}
		if k.cores[coreID].Now > k.cores[latest].Now {
			latest = coreID
		}
	}
	for _, t := range k.threads {
		if t.State == StateDone || len(t.groups) == 0 {
			continue
		}
		coreID := latest
		for cid, cur := range k.cur {
			if cur == t {
				coreID = cid
				break
			}
		}
		k.emitFrame(coreID, t, true)
	}
}
