package kernel_test

import (
	"testing"

	"limitsim/internal/cpu"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

func newMachine(cores int) *machine.Machine {
	return machine.New(machine.Config{NumCores: cores})
}

func run(t *testing.T, m *machine.Machine) machine.RunResult {
	t.Helper()
	res := m.Run(machine.RunLimits{MaxSteps: 50_000_000})
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}
	if !res.AllDone {
		t.Fatalf("run incomplete: %v", res)
	}
	return res
}

func TestGetTIDAndLogValue(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.Syscall(kernel.SysGetTID)
	b.Mov(isa.R1, isa.R0) // value = tid
	b.MovImm(isa.R0, 7)   // tag
	b.Syscall(kernel.SysLogValue)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	logs := m.Kern.Logs()
	if len(logs) != 1 {
		t.Fatalf("got %d log entries, want 1", len(logs))
	}
	if logs[0].Tag != 7 || logs[0].Value != uint64(th.ID) || logs[0].TID != th.ID {
		t.Errorf("log entry %+v, want tag 7 value %d", logs[0], th.ID)
	}
}

func TestNanosleepAdvancesTime(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, 500_000)
	b.Syscall(kernel.SysNanosleep)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "sleeper", 0, 1)
	res := run(t, m)
	if res.Cycles < 500_000 {
		t.Errorf("run finished at %d cycles; sleep should push past 500k", res.Cycles)
	}
}

func TestFutexWaitValueMismatchReturnsImmediately(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	addr := space.AllocWords(1)
	space.Write64(addr, 99)

	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(addr))
	b.MovImm(isa.R1, 0) // expect 0, but memory holds 99
	b.Syscall(kernel.SysFutexWait)
	b.MovImm(isa.R2, int64(addr))
	b.Store(isa.R2, 0, isa.R0) // store return value for inspection
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)
	if got := space.Read64(addr); got != 1 {
		t.Errorf("futex_wait returned %d, want 1 (value mismatch)", got)
	}
}

func TestFutexWakeHandsOff(t *testing.T) {
	// A waiter parks on a word; a waker stores a new value and wakes it.
	m := newMachine(2)
	space := mem.NewSpace()
	futex := space.AllocWords(1)
	flag := space.AllocWords(1)

	b := isa.NewBuilder()
	b.Label("waiter")
	b.MovImm(isa.R0, int64(futex))
	b.MovImm(isa.R1, 0)
	b.Syscall(kernel.SysFutexWait)
	// Record that we woke with the new value visible.
	b.MovImm(isa.R2, int64(futex))
	b.Load(isa.R3, isa.R2, 0)
	b.MovImm(isa.R2, int64(flag))
	b.Store(isa.R2, 0, isa.R3)
	b.Halt()

	b.Label("waker")
	b.Compute(20_000) // let the waiter park first
	b.MovImm(isa.R2, int64(futex))
	b.MovImm(isa.R3, 42)
	b.Store(isa.R2, 0, isa.R3)
	b.MovImm(isa.R0, int64(futex))
	b.MovImm(isa.R1, 1)
	b.Syscall(kernel.SysFutexWake)
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "waiter", prog.MustEntry("waiter"), 1)
	m.Kern.Spawn(proc, "waker", prog.MustEntry("waker"), 2)
	run(t, m)
	if got := space.Read64(flag); got != 42 {
		t.Errorf("waiter observed %d, want 42", got)
	}
}

func TestFutexWakeReturnsCount(t *testing.T) {
	m := newMachine(2)
	space := mem.NewSpace()
	futex := space.AllocWords(1)
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	b.Label("waiter")
	b.MovImm(isa.R0, int64(futex))
	b.MovImm(isa.R1, 0)
	b.Syscall(kernel.SysFutexWait)
	b.Halt()

	b.Label("waker")
	b.Compute(40_000)
	b.MovImm(isa.R0, int64(futex))
	b.MovImm(isa.R1, 10) // wake up to 10; only 2 parked
	b.Syscall(kernel.SysFutexWake)
	b.MovImm(isa.R2, int64(out))
	b.Store(isa.R2, 0, isa.R0)
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "w1", prog.MustEntry("waiter"), 1)
	m.Kern.Spawn(proc, "w2", prog.MustEntry("waiter"), 2)
	m.Kern.Spawn(proc, "waker", prog.MustEntry("waker"), 3)
	run(t, m)
	if got := space.Read64(out); got != 2 {
		t.Errorf("futex_wake returned %d, want 2", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A waiter that nobody wakes: the machine must report deadlock, not
	// hang.
	m := newMachine(1)
	space := mem.NewSpace()
	futex := space.AllocWords(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(futex))
	b.MovImm(isa.R1, 0)
	b.Syscall(kernel.SysFutexWait)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "stuck", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
	if !res.Deadlocked {
		t.Errorf("expected deadlock, got %v", res)
	}
}

func TestSignalDeliveryAndReturn(t *testing.T) {
	// Install a SIGUSR1 handler, then have the kernel post the signal
	// via a small hook: we use the signal-mode overflow path instead —
	// simpler: sigaction + post through a counter overflow is tested in
	// TestSignalModeOverflow. Here we test sigaction + deliverance by
	// self-arming SIGPMU in SignalUser mode with a tiny write width.
	kcfg := kernel.DefaultConfig()
	kcfg.LimitOverflow = kernel.SignalUser
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 10 // overflow every 1024 events

	m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kcfg})
	space := mem.NewSpace()
	table := space.AllocWords(1)
	hits := space.AllocWords(1)

	b := isa.NewBuilder()
	// handler: count invocations, fold manually (R1 = counter idx).
	b.Label("handler")
	b.MovImm(isa.R2, int64(hits))
	b.Load(isa.R3, isa.R2, 0)
	b.AddImm(isa.R3, isa.R3, 1)
	b.Store(isa.R2, 0, isa.R3)
	b.MovImm(isa.R2, int64(table))
	b.Load(isa.R3, isa.R2, 0)
	b.AddImm(isa.R3, isa.R3, 1<<10)
	b.Store(isa.R2, 0, isa.R3)
	b.SigReturn()

	b.Label("main")
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R0, kernel.SIGPMU)
	b.MovLabel(isa.R1, "handler")
	b.Syscall(kernel.SysSigaction)
	b.Compute(200)
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 40)
	b.Label("loop")
	b.Compute(200)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", prog.MustEntry("main"), 1)
	run(t, m)

	nhits := space.Read64(hits)
	if nhits == 0 {
		t.Fatal("overflow signals never delivered")
	}
	if th.Stats.Signals != nhits {
		t.Errorf("thread saw %d signals, handler ran %d times", th.Stats.Signals, nhits)
	}
	// ~8400 instructions at one overflow per 1024.
	if nhits < 4 || nhits > 12 {
		t.Errorf("handler ran %d times; expected roughly 8", nhits)
	}
	// The handler's folds plus the final saved value must reconstruct
	// the thread's instruction count (modulo the setup prologue).
	tc := th.Counters()[0]
	total := space.Read64(table) + tc.Saved
	truth := th.Stats.UserInstructions
	if total > truth || truth-total > 40 {
		t.Errorf("signal-mode virtualized count %d vs ground truth %d", total, truth)
	}
}

func TestSignalWithoutHandlerIsDropped(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.LimitOverflow = kernel.SignalUser
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 10

	m := machine.New(machine.Config{NumCores: 1, PMU: feats, Kernel: kcfg})
	space := mem.NewSpace()
	table := space.AllocWords(1)
	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen)
	b.Compute(5_000) // several overflows, no handler installed
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m) // must not fault or wedge
	if m.Kern.Stats.SignalsSent == 0 {
		t.Error("expected signals to be posted (and dropped)")
	}
}

func TestPerfCounterSurvivesContextSwitches(t *testing.T) {
	// Two threads on one core with small quantum; each opens a perf
	// instruction counter. Final virtualized value must track each
	// thread's own ground truth, not the interleaved total.
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 2_000
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})

	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.Syscall(kernel.SysPerfOpen)
	b.Mov(isa.R7, isa.R0) // fd
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 100)
	b.Label("loop")
	b.Compute(500)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	t1 := m.Kern.Spawn(proc, "a", 0, 1)
	t2 := m.Kern.Spawn(proc, "b", 0, 2)
	run(t, m)

	for _, th := range []*kernel.Thread{t1, t2} {
		if th.Stats.Preemptions == 0 {
			t.Errorf("%s: expected preemptions", th.Name)
		}
		tc := th.Counters()[0]
		got := tc.Acc + tc.Saved
		truth := th.Stats.UserInstructions
		if got > truth || truth-got > 10 {
			t.Errorf("%s: perf counter %d vs ground truth %d", th.Name, got, truth)
		}
	}
}

func TestPerfResetAndClose(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(2)

	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.Syscall(kernel.SysPerfOpen)
	b.Mov(isa.R7, isa.R0)
	b.Compute(1_000)
	b.Mov(isa.R0, isa.R7)
	b.Syscall(kernel.SysPerfReset)
	b.Compute(100)
	b.Mov(isa.R0, isa.R7)
	b.Syscall(kernel.SysPerfRead)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Mov(isa.R0, isa.R7)
	b.Syscall(kernel.SysPerfClose)
	// Read after close yields the error sentinel.
	b.Mov(isa.R0, isa.R7)
	b.Syscall(kernel.SysPerfRead)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 8, isa.R0)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	afterReset := space.Read64(out)
	if afterReset < 100 || afterReset > 150 {
		t.Errorf("post-reset read %d, want ~100-130 (reset must zero)", afterReset)
	}
	if got := space.Read64(out + 8); got != ^uint64(0) {
		t.Errorf("read after close returned %#x, want error sentinel", got)
	}
}

func TestCounterOverSubscription(t *testing.T) {
	// The PMU has 4 counters. A 5th perf open succeeds — perf counters
	// time-multiplex — while a LiMiT open beyond the hardware fails:
	// its userspace rdpmc encodes the slot and cannot float.
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(2)
	table := space.AllocWords(1)
	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	for i := 0; i < 5; i++ {
		b.MovImm(isa.R0, int64(pmu.EvCycles))
		b.MovImm(isa.R1, int64(kernel.FlagUser))
		b.Syscall(kernel.SysPerfOpen)
	}
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0) // 5th perf fd
	b.MovImm(isa.R0, int64(pmu.EvCycles))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 8, isa.R0) // limit open result
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)
	if got := space.Read64(out); got != 4 {
		t.Errorf("5th perf open returned %#x, want fd 4 (multiplexed)", got)
	}
	if got := space.Read64(out + 8); got != ^uint64(0) {
		t.Errorf("limit open beyond hardware returned %#x, want error sentinel", got)
	}
}

func TestLimitOpenRequiresInit(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	table := space.AllocWords(1)
	out := space.AllocWords(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(pmu.EvCycles))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen) // no SysLimitInit first
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)
	if got := space.Read64(out); got != ^uint64(0) {
		t.Errorf("limit_open without init returned %#x, want error", got)
	}
}

func TestSamplingCapturesAtExpectedRate(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, 1_000)
	b.Syscall(kernel.SysSampleStart)
	b.Compute(400)
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 50)
	b.Label("loop")
	b.Compute(400)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Syscall(kernel.SysSampleStop)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	n := len(m.Kern.Samples())
	// ~20500 instructions at one sample per 1000.
	if n < 15 || n > 26 {
		t.Errorf("captured %d samples, want ~20", n)
	}
	for _, s := range m.Kern.Samples() {
		if s.PC < 0 || s.PC > 20 {
			t.Errorf("sample PC %d outside program", s.PC)
		}
	}
}

func TestSysIOChargesKernelTime(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, 8_192)
	b.Syscall(kernel.SysIO)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)
	kc := m.Cores[0].PMU.GroundTruth(pmu.EvCycles, pmu.RingKernel)
	if kc < 2_500 {
		t.Errorf("SysIO charged only %d kernel cycles", kc)
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.Syscall(9999)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
	if len(res.Faults) != 1 {
		t.Fatalf("want 1 fault, got %v", res.Faults)
	}
}

func TestFaultingThreadDoesNotStopOthers(t *testing.T) {
	m := newMachine(1)
	b := isa.NewBuilder()
	b.Label("bad")
	b.RdPMC(isa.R1, 0) // faults: rdpmc not enabled
	b.Halt()
	b.Label("good")
	b.Compute(1_000)
	b.Halt()
	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, nil)
	m.Kern.Spawn(proc, "bad", prog.MustEntry("bad"), 1)
	good := m.Kern.Spawn(proc, "good", prog.MustEntry("good"), 2)
	res := m.Run(machine.RunLimits{MaxSteps: 1_000_000})
	if !res.AllDone {
		t.Fatalf("machine wedged: %v", res)
	}
	if len(res.Faults) != 1 {
		t.Errorf("want exactly 1 fault, got %v", res.Faults)
	}
	if good.State != kernel.StateDone || good.FaultMsg != "" {
		t.Error("healthy thread should complete cleanly")
	}
}

func TestWorkSpreadsAcrossCores(t *testing.T) {
	m := newMachine(4)
	b := isa.NewBuilder()
	b.Compute(100_000)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	for i := 0; i < 4; i++ {
		m.Kern.Spawn(proc, "w", 0, uint64(i))
	}
	run(t, m)
	for i, c := range m.Cores {
		if c.Retired == 0 {
			t.Errorf("core %d retired nothing; spawn should balance load", i)
		}
	}
}

func TestYieldRotatesThreads(t *testing.T) {
	// Two yielding threads on one core must interleave, producing
	// context switches far beyond quantum-driven preemption alone.
	m := newMachine(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 50)
	b.Label("loop")
	b.Syscall(kernel.SysYield)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "a", 0, 1)
	m.Kern.Spawn(proc, "b", 0, 2)
	run(t, m)
	if m.Kern.Stats.CtxSwitches < 100 {
		t.Errorf("only %d switches for 100 yields", m.Kern.Stats.CtxSwitches)
	}
}

func TestThreadStateString(t *testing.T) {
	states := map[kernel.ThreadState]string{
		kernel.StateReady: "ready", kernel.StateRunning: "running",
		kernel.StateBlocked: "blocked", kernel.StateSleeping: "sleeping",
		kernel.StateDone: "done",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d renders %q, want %q", s, s.String(), want)
		}
	}
}

func TestStepResultTrapKinds(t *testing.T) {
	for k, want := range map[cpu.TrapKind]string{
		cpu.TrapNone: "none", cpu.TrapSyscall: "syscall", cpu.TrapHalt: "halt",
		cpu.TrapFault: "fault", cpu.TrapSigReturn: "sigreturn",
	} {
		if k.String() != want {
			t.Errorf("trap %d renders %q", k, k.String())
		}
	}
}

func TestSpawnAndJoin(t *testing.T) {
	// A parent forks 3 children, each of which adds its R14 payload to
	// an atomic accumulator; the parent joins all three and reads the
	// final sum — classic fork-join, entirely from simulated code.
	m := newMachine(2)
	space := mem.NewSpace()
	acc := space.AllocWords(1)
	tids := space.AllocWords(3)

	b := isa.NewBuilder()
	b.Label("child")
	b.MovImm(isa.R1, int64(acc))
	b.Mov(isa.R2, isa.R14) // payload
	b.XAdd(isa.R3, isa.R1, isa.R2)
	b.Compute(500)
	b.Halt()

	b.Label("parent")
	b.MovImm(isa.R10, int64(tids))
	for i := 0; i < 3; i++ {
		b.MovLabel(isa.R0, "child")
		b.MovImm(isa.R1, int64(10+i)) // payload in child's R14
		b.MovImm(isa.R2, int64(77+i)) // seed
		b.Syscall(kernel.SysSpawn)
		b.Store(isa.R10, int64(i*8), isa.R0)
	}
	for i := 0; i < 3; i++ {
		b.Load(isa.R0, isa.R10, int64(i*8))
		b.Syscall(kernel.SysJoin)
	}
	// All children done: read the accumulator and expose it in tids[0].
	b.MovImm(isa.R1, int64(acc))
	b.Load(isa.R2, isa.R1, 0)
	b.Store(isa.R10, 0, isa.R2)
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "parent", prog.MustEntry("parent"), 1)
	run(t, m)

	if got := space.Read64(tids); got != 10+11+12 {
		t.Errorf("post-join accumulator %d, want 33", got)
	}
	if n := len(m.Kern.Threads()); n != 4 {
		t.Errorf("thread count %d, want 4", n)
	}
}

func TestJoinAlreadyDoneReturnsImmediately(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	b.Label("child")
	b.Halt()
	b.Label("parent")
	b.MovLabel(isa.R0, "child")
	b.MovImm(isa.R1, 0)
	b.MovImm(isa.R2, 0)
	b.Syscall(kernel.SysSpawn)
	b.Mov(isa.R7, isa.R0)
	b.Compute(100_000) // child certainly finishes
	b.Mov(isa.R0, isa.R7)
	b.Syscall(kernel.SysJoin)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "parent", prog.MustEntry("parent"), 1)
	run(t, m)
	if got := space.Read64(out); got != 0 {
		t.Errorf("join of finished thread returned %d, want 0", got)
	}
}

func TestSpawnBadEntryFails(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, 99_999) // out of range
	b.Syscall(kernel.SysSpawn)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "p", 0, 1)
	run(t, m)
	if got := space.Read64(out); got != ^uint64(0) {
		t.Errorf("bad-entry spawn returned %#x, want error", got)
	}
}

func TestJoinBadTIDFails(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(1)
	b := isa.NewBuilder()
	b.MovImm(isa.R0, 999)
	b.Syscall(kernel.SysJoin)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "p", 0, 1)
	run(t, m)
	if got := space.Read64(out); got != ^uint64(0) {
		t.Errorf("bad-tid join returned %#x, want error", got)
	}
}

func TestLimitCounterExactAcrossMigrations(t *testing.T) {
	// Force cross-core migrations with futex ping-pong between two
	// threads under migrate-on-wake; each thread's LiMiT instruction
	// counter must still match its own ground truth — the kernel's
	// save/restore path preserves counts across cores.
	kcfg := kernel.DefaultConfig()
	kcfg.MigrateOnWake = true
	m := machine.New(machine.Config{NumCores: 4, Kernel: kcfg})
	space := mem.NewSpace()
	tableA := space.AllocWords(1)
	tableB := space.AllocWords(1)
	futA := space.AllocWords(1)
	futB := space.AllocWords(1)

	build := func(b *isa.Builder, entry string, table, myFut, otherFut uint64, rounds int64) {
		b.Label(entry)
		b.Syscall(kernel.SysLimitInit)
		b.MovImm(isa.R0, int64(pmu.EvInstructions))
		b.MovImm(isa.R1, int64(kernel.FlagUser))
		b.MovImm(isa.R2, int64(table))
		b.Syscall(kernel.SysLimitOpen)
		b.MovImm(isa.R8, 0)
		loop := entry + ".loop"
		b.Label(loop)
		b.Compute(400)
		// Wake the peer, then wait to be woken (value-free rendezvous:
		// alternate compute with sleeps to force wake-time placement).
		b.MovImm(isa.R0, int64(otherFut))
		b.MovImm(isa.R1, 1)
		b.Syscall(kernel.SysFutexWake)
		b.MovImm(isa.R0, 2_000)
		b.Syscall(kernel.SysNanosleep)
		_ = myFut
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, rounds)
		b.Br(isa.CondLT, isa.R8, isa.R9, loop)
		b.Halt()
	}

	b := isa.NewBuilder()
	build(b, "a", tableA, futA, futB, 60)
	build(b, "b", tableB, futB, futA, 60)
	// Churn threads keep per-core loads fluctuating so wake-time
	// placement actually moves the measured threads between cores.
	b.Label("churn")
	b.MovImm(isa.R8, 0)
	b.Label("churn.loop")
	b.Compute(900)
	b.MovImm(isa.R0, 1_500)
	b.Syscall(kernel.SysNanosleep)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, 80)
	b.Br(isa.CondLT, isa.R8, isa.R9, "churn.loop")
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	ta := m.Kern.Spawn(proc, "a", prog.MustEntry("a"), 1)
	tb := m.Kern.Spawn(proc, "b", prog.MustEntry("b"), 2)
	for i := 0; i < 3; i++ {
		m.Kern.Spawn(proc, "churn", prog.MustEntry("churn"), uint64(10+i))
	}
	run(t, m)

	if ta.Stats.Migrations+tb.Stats.Migrations == 0 {
		t.Fatal("expected migrations under migrate-on-wake with sleeps")
	}
	for _, th := range []*kernel.Thread{ta, tb} {
		tc := th.Counters()[0]
		got := th.Proc.Mem.Read64(tc.TableAddr) + tc.Saved
		truth := th.Stats.UserInstructions
		if got > truth || truth-got > 20 {
			t.Errorf("%s: counter %d vs ground truth %d after %d migrations",
				th.Name, got, truth, th.Stats.Migrations)
		}
	}
}

func TestSelfJoinRejected(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	out := space.AllocWords(1)
	b := isa.NewBuilder()
	b.Syscall(kernel.SysGetTID)
	b.Syscall(kernel.SysJoin) // R0 = own tid
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R0)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "narcissus", 0, 1)
	run(t, m)
	if got := space.Read64(out); got != ^uint64(0) {
		t.Errorf("self-join returned %#x, want error (would deadlock)", got)
	}
}

func TestMultiplexedEstimates(t *testing.T) {
	// Eight perf instruction counters on a 4-slot PMU: each is loaded
	// roughly half the time (rotated at context switches) and its read
	// is a scaled estimate. On steady work the estimates must land
	// near the thread's true instruction count; with only 4 counters
	// they must be exact.
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 3_000 // frequent rotation
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})

	b := isa.NewBuilder()
	for i := 0; i < 8; i++ {
		b.MovImm(isa.R0, int64(pmu.EvInstructions))
		b.MovImm(isa.R1, int64(kernel.FlagUser))
		b.Syscall(kernel.SysPerfOpen)
	}
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 200)
	b.Label("loop")
	b.Compute(500)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	prog := b.MustBuild()

	proc := m.Kern.NewProcess(prog, nil)
	th := m.Kern.Spawn(proc, "mux", 0, 1)
	m.Kern.Spawn(proc, "rival", 0, 2) // forces context switches
	run(t, m)

	truth := float64(th.Stats.UserInstructions)
	sawMux := false
	for fd := 0; fd < 8; fd++ {
		v, err := perfFinal(th, fd)
		if err != nil {
			t.Fatalf("fd %d: %v", fd, err)
		}
		if th.Counters()[fd].Multiplexed() {
			sawMux = true
		}
		relErr := (float64(v) - truth) / truth
		if relErr < -0.35 || relErr > 0.35 {
			t.Errorf("fd %d: estimate %d vs truth %.0f (err %.2f)", fd, v, truth, relErr)
		}
	}
	if !sawMux {
		t.Error("8 counters on 4 slots should have multiplexed")
	}
}

// perfFinal mirrors perfevent.FinalValue without the import cycle into
// this test file's dependencies.
func perfFinal(th *kernel.Thread, fd int) (uint64, error) {
	tc := th.Counters()[fd]
	raw := tc.Acc + tc.Saved
	if tc.ActiveCycles == 0 {
		return 0, nil
	}
	if !tc.Multiplexed() {
		return raw, nil
	}
	return uint64(float64(raw) * float64(tc.WindowCycles) / float64(tc.ActiveCycles)), nil
}

func TestCounterIsolationBetweenThreads(t *testing.T) {
	// Thread A opens an instruction counter; thread B (same core, no
	// counters) runs far more work. A's final count must reflect only
	// A's instructions — B's execution with A descheduled must not
	// leak in.
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 2_000
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	table := space.AllocWords(1)

	b := isa.NewBuilder()
	b.Label("counted")
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(table))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 50)
	b.Label("ca")
	b.Compute(200)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "ca")
	b.Halt()

	b.Label("noisy")
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 1_000)
	b.Label("cb")
	b.Compute(200)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "cb")
	b.Halt()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	ta := m.Kern.Spawn(proc, "counted", prog.MustEntry("counted"), 1)
	tb := m.Kern.Spawn(proc, "noisy", prog.MustEntry("noisy"), 2)
	run(t, m)

	if ta.Stats.Preemptions == 0 {
		t.Fatal("threads must have interleaved for this test to mean anything")
	}
	got := space.Read64(table) + ta.Counters()[0].Saved
	truthA := ta.Stats.UserInstructions
	truthB := tb.Stats.UserInstructions
	if got > truthA || truthA-got > 40 {
		t.Errorf("A's counter %d vs A's truth %d (B ran %d): leakage or loss",
			got, truthA, truthB)
	}
}
