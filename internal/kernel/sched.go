package kernel

import (
	"limitsim/internal/cpu"
	"limitsim/internal/pmu"
	"limitsim/internal/trace"
)

// burstEntry is one core's RunCore resume cache slot (see the burst
// fields on Kernel).
type burstEntry struct {
	gen    uint64
	t      *Thread
	qEnd   uint64
	others bool
	groups bool
}

// StepStatus reports what a StepCore call accomplished.
type StepStatus uint8

// Step statuses.
const (
	// StepRan: one instruction executed (possibly plus trap handling).
	StepRan StepStatus = iota
	// StepIdle: the core has nothing runnable now; NextActionTime gives
	// the earliest cycle at which it might.
	StepIdle
)

// NextActionTime returns the earliest cycle at which the core can do
// useful work, and whether any such time exists. The machine loop uses
// it to pick the causally-next core.
func (k *Kernel) NextActionTime(coreID int) (uint64, bool) {
	now := k.cores[coreID].Now
	if k.cur[coreID] != nil {
		return now, true
	}
	best, ok := uint64(0), false
	for _, t := range k.runq[coreID] {
		at := t.ReadyAt
		if at < now {
			at = now
		}
		if !ok || at < best {
			best, ok = at, true
		}
	}
	return best, ok
}

// NextSleeperWake returns the earliest nanosleep deadline, if any
// thread is sleeping.
func (k *Kernel) NextSleeperWake() (uint64, bool) {
	if k.minWake == ^uint64(0) {
		return 0, false
	}
	return k.minWake, true
}

// WakeSleepersUpTo moves every sleeper whose deadline is ≤ cycle onto a
// run queue. Small enough to inline: minWake caches the earliest
// deadline, so the machine loop's per-burst call is one compare while
// nobody's alarm has fired.
func (k *Kernel) WakeSleepersUpTo(cycle uint64) bool {
	if cycle < k.minWake {
		return false
	}
	return k.wakeSleepers(cycle)
}

func (k *Kernel) wakeSleepers(cycle uint64) (woke bool) {
	k.burstGen++
	kept := k.sleepers[:0]
	min := ^uint64(0)
	for _, t := range k.sleepers {
		if t.WakeAt <= cycle {
			t.State = StateReady
			t.ReadyAt = t.WakeAt
			k.enqueue(t)
			woke = true
		} else {
			kept = append(kept, t)
			if t.WakeAt < min {
				min = t.WakeAt
			}
		}
	}
	k.sleepers = kept
	k.minWake = min
	return woke
}

// enqueue places a ready thread on a core's run queue according to the
// migration policy.
func (k *Kernel) enqueue(t *Thread) {
	core := t.HomeCore
	if k.cfg.MigrateOnWake {
		core = k.leastLoadedCore()
	}
	if k.chaos != nil && k.chaos.Place != nil {
		if c := k.chaos.Place(t, core); c >= 0 && c < len(k.cores) {
			core = c
		}
	}
	k.runq[core] = append(k.runq[core], t)
}

// StepCore advances core coreID by one instruction (scheduling first if
// needed) and handles any resulting trap, interrupt, or signal. It is
// the kernel's single entry point for the machine loop.
func (k *Kernel) StepCore(coreID int) StepStatus {
	k.burstGen++
	core := k.cores[coreID]

	// Tenant timer first: an expired vCPU quantum preempts the whole
	// guest (the double context switch), before the thread-level timer
	// gets a say.
	k.tenantTick(coreID)

	// Timer: preempt an expired quantum when others are waiting.
	if t := k.cur[coreID]; t != nil && core.Now >= k.quantumEnd[coreID] && len(k.runq[coreID]) > 0 {
		k.preempt(coreID)
	}

	if k.cur[coreID] == nil {
		if !k.schedule(coreID) {
			return StepIdle
		}
	}

	t := k.cur[coreID]
	// Group rotation rides the timer path: fire before the instruction
	// when the thread's scheduled time since last rotation fills the
	// rotation quantum. One add+compare for group-holding threads, no
	// cost at all for the rest.
	if len(t.groups) != 0 {
		k.muxTick(coreID, t)
	}
	prevPC := t.Ctx.PC
	var res cpu.StepResult
	instrs, cycles, trap := core.StepInto(&t.Ctx, &res)
	core.Retired += instrs
	t.Stats.UserInstructions += instrs
	t.Stats.UserCycles += cycles
	k.probeStep(coreID, t, prevPC)
	k.postStep(coreID, t, trap, &res, core.PMU.TakePendingOverflows())
	return StepRan
}

// postStep runs the instruction-boundary work after one executed
// instruction: PMI raising and delivery, trap routing, chaos hooks,
// and signal delivery. StepCore and the burst loop in RunCore share it
// so the boundary behaves identically on both paths.
func (k *Kernel) postStep(coreID int, t *Thread, trap cpu.TrapKind, res *cpu.StepResult, mask uint64) {
	k.burstGen++
	core := k.cores[coreID]

	// Overflow interrupts land at the instruction boundary, before any
	// trap handling — exactly where they can tear a LiMiT read. The
	// chaos filter may delay bits (withholding them for later) or set
	// extra ones (spurious interrupts).
	k.markPMIRaise(coreID, mask)
	if k.chaos != nil && k.chaos.FilterPMI != nil {
		mask = k.chaos.FilterPMI(coreID, t, mask)
	}
	if mask != 0 {
		k.handlePMI(coreID, mask)
	}

	switch trap {
	case cpu.TrapNone:
		// fall through to signal delivery
	case cpu.TrapSyscall:
		k.syscall(coreID, t, res.SyscallNum)
	case cpu.TrapSigReturn:
		k.sigReturn(coreID, t)
	case cpu.TrapHalt:
		// Full exit path: counters are virtualized by the deschedule,
		// remainders fold into the virtual-counter table, and every held
		// resource is reclaimed. Final LiMiT/perf values survive for
		// host-side reads.
		k.exitThread(coreID, t, exitHalt)
	case cpu.TrapFault:
		k.faultThread(coreID, t, res.Fault)
	}

	// Chaos: worst-case memory-system perturbation after any boundary.
	if k.chaos != nil && k.chaos.FlushAfter != nil && k.chaos.FlushAfter(coreID, t) {
		core.TLB.FlushAll()
		core.Caches.FlushAll()
	}

	// Chaos: forced clone, asynchronous kill, or adversarial timer
	// interrupt at any boundary (each checks that the thread is still
	// current — an earlier hook may have removed it).
	k.chaosClone(coreID)
	k.chaosKill(coreID)
	k.chaosVCpuPreempt(coreID)
	k.chaosPreempt(coreID)

	// Deliver pending signals on the way back to user (unless the
	// chaos hook is delaying delivery at this boundary).
	if ct := k.cur[coreID]; ct != nil && len(ct.pending) > 0 {
		if k.chaos == nil || k.chaos.HoldSignal == nil || !k.chaos.HoldSignal(coreID, ct) {
			k.deliverSignals(coreID, ct)
		}
	}
}

// RunCore advances core coreID until its clock reaches horizon, up to
// maxSteps instructions (0 means unbounded), or until any event that
// could influence another core or the sleeper set — a trap, a PMI, a
// scheduling decision, or a pending signal — at which point it hands
// control back for a global core re-pick. Within those bounds it runs
// a tight loop with the per-instruction hook checks hoisted out, which
// is where the simulator spends nearly all of its time.
//
// The burst is observationally identical to calling StepCore in a
// machine loop that re-picks after every instruction: while no
// boundary event fires, the running core's state is invisible to other
// cores, so the global pick would keep choosing it until its clock
// passes the horizon the machine computed.
// The clean result reports that the burst ended purely on the horizon
// or step budget: no kernel code ran, so no state outside this core —
// other cores' queues, sleepers, thread lifetimes — can have changed,
// and the caller may keep its cached view of them. now returns the
// core's clock after the burst, saving the caller the re-read.
func (k *Kernel) RunCore(coreID int, horizon uint64, maxSteps uint64) (steps, now uint64, clean bool) {
	if maxSteps == 0 {
		maxSteps = ^uint64(0)
	}
	// Chaos, tenant scheduling, and probes observe or perturb every
	// instruction boundary, possibly across cores: single-step.
	if k.slowStep {
		if k.StepCore(coreID) == StepIdle {
			return 0, 0, false
		}
		return 1, k.cores[coreID].Now, false
	}

	core := k.cores[coreID]
	bc := &k.burst[coreID]
	var t *Thread
	var hasGroups, hasSignals, othersWaiting bool
	var qEnd uint64
	if bc.gen == k.burstGen {
		// Resume: the previous burst on this core ended clean and no
		// kernel code has run anywhere since, so its hoisted entry
		// state is still exact (and its signal queue was necessarily
		// empty at the clean exit — a pending signal ends a burst).
		t = bc.t
		hasGroups, othersWaiting, qEnd = bc.groups, bc.others, bc.qEnd
		if othersWaiting && core.Now >= qEnd {
			if k.StepCore(coreID) == StepIdle {
				return 0, 0, false
			}
			return 1, core.Now, false
		}
	} else {
		t = k.cur[coreID]
		if t == nil || (core.Now >= k.quantumEnd[coreID] && len(k.runq[coreID]) > 0) {
			// Scheduling (preemption, work stealing, wake migration)
			// consults and mutates other cores' queues: take one full
			// StepCore, then hand back for a global re-pick.
			if k.StepCore(coreID) == StepIdle {
				return 0, 0, false
			}
			return 1, core.Now, false
		}
		hasGroups = len(t.groups) != 0
		hasSignals = len(t.pending) > 0
		othersWaiting = len(k.runq[coreID]) > 0
		qEnd = k.quantumEnd[coreID]
	}
	// Loop invariants: nothing in the tight loop runs kernel code, and
	// no other core runs during the burst, so the current thread, its
	// signal queue, this core's run-queue length, and the quantum end
	// cannot change until postStep or StepCore — both of which end the
	// burst. Hoisting their loads out of the loop is therefore exact.
	var res cpu.StepResult
	// The loop's stop line folds the horizon and (when other threads
	// wait) the quantum end into one compare; the exit path then sorts
	// out which fired, horizon first, exactly as separate per-step
	// checks would.
	stop := horizon
	if othersWaiting && qEnd < stop {
		stop = qEnd
	}
	// Per-thread stats accumulate in locals and flush on every exit
	// path, always before postStep or StepCore can observe them.
	var ui, uc uint64
	for {
		if hasGroups {
			k.muxTick(coreID, t) // core-local counter rotation
		}
		si, sc, tr := core.StepInto(&t.Ctx, &res)
		ui += si
		uc += sc
		steps++
		mask := core.PMU.TakePendingOverflows()
		if mask != 0 || tr != cpu.TrapNone || hasSignals {
			// Kernel-visible boundary: finish it exactly as StepCore
			// would, then return for a global re-pick (the kernel may
			// have woken, migrated, or exited threads).
			core.Retired += ui
			t.Stats.UserInstructions += ui
			t.Stats.UserCycles += uc
			k.postStep(coreID, t, tr, &res, mask)
			return steps, core.Now, false
		}
		if steps >= maxSteps || core.Now >= stop {
			core.Retired += ui
			t.Stats.UserInstructions += ui
			t.Stats.UserCycles += uc
			if steps >= maxSteps || core.Now >= horizon {
				// Field-at-a-time refresh: the conditional keeps the
				// pointer store (and its write barrier) off the common
				// path where the same thread keeps running.
				bc.gen = k.burstGen
				if bc.t != t {
					bc.t = t
				}
				bc.qEnd = qEnd
				bc.others = othersWaiting
				bc.groups = hasGroups
				return steps, core.Now, true
			}
			// Quantum expired mid-burst: preempt via a full StepCore,
			// exactly as the next single-step iteration would have.
			if k.StepCore(coreID) == StepIdle {
				return steps, 0, false
			}
			return steps + 1, core.Now, false
		}
	}
}

// schedule installs the next runnable thread on the core. Returns false
// if nothing can run yet. It may steal from other cores when work
// stealing is enabled and advances the core clock to the thread's
// ReadyAt when the thread was woken in this core's future.
func (k *Kernel) schedule(coreID int) bool {
	core := k.cores[coreID]
	if k.ts != nil {
		k.tenantMigrate(coreID)
	}
	q := k.runq[coreID]
	pick := -1
	if k.ts != nil {
		pick = k.tenantPick(coreID)
	} else {
		for i, t := range q {
			if t.ReadyAt <= core.Now {
				pick = i
				break
			}
		}
	}
	if pick == -1 && k.cfg.WorkStealing {
		if victim, vi := k.stealVictim(coreID); victim != nil {
			k.runq[vi] = append(k.runq[vi][:victim.qIdx], k.runq[vi][victim.qIdx+1:]...)
			q = append(q, victim.t)
			k.runq[coreID] = q
			pick = len(q) - 1
			k.Stats.Steals++
		}
	}
	if pick == -1 {
		// Nothing immediately runnable: run the earliest future-ready
		// thread, idling the core until then.
		var bestAt uint64
		for i, t := range q {
			if pick == -1 || t.ReadyAt < bestAt {
				pick, bestAt = i, t.ReadyAt
			}
		}
		if pick == -1 {
			return false
		}
		if bestAt > core.Now {
			core.Now = bestAt
		}
	}
	next := q[pick]
	k.runq[coreID] = append(q[:pick], q[pick+1:]...)
	k.switchTo(coreID, next)
	return true
}

type stolen struct {
	t    *Thread
	qIdx int
}

// stealVictim finds an immediately-runnable thread on the most loaded
// other core. An idle core steals even a lone waiting thread — sitting
// idle is never better.
func (k *Kernel) stealVictim(thief int) (*stolen, int) {
	now := k.cores[thief].Now
	bestCore, bestLen := -1, 0
	for i := range k.cores {
		if i == thief {
			continue
		}
		if len(k.runq[i]) > bestLen {
			bestCore, bestLen = i, len(k.runq[i])
		}
	}
	if bestCore == -1 {
		return nil, 0
	}
	for j := len(k.runq[bestCore]) - 1; j >= 0; j-- {
		if t := k.runq[bestCore][j]; t.ReadyAt <= now && k.tenantStealOK(thief, t) {
			return &stolen{t: t, qIdx: j}, bestCore
		}
	}
	return nil, 0
}

// preempt deschedules the current thread at end of quantum.
func (k *Kernel) preempt(coreID int) {
	t := k.cur[coreID]
	t.Stats.Preemptions++
	k.Stats.Preemptions++
	k.deschedule(coreID, t)
	t.State = StateReady
	t.ReadyAt = k.cores[coreID].Now
	k.runq[coreID] = append(k.runq[coreID], t)
}

// deschedule saves thread state, applies the LiMiT fixup, and charges
// the switch-out half of the context switch cost.
func (k *Kernel) deschedule(coreID int, t *Thread) {
	core := k.cores[coreID]
	start := core.Now
	// Drain overflow interrupts that are still pending so they are
	// serviced for their rightful owner; left alone, they would be
	// consumed after the switch and misattributed to the next thread.
	// Interrupts the chaos layer withheld are drained here too — this
	// is the single choke point every path off a core goes through.
	mask := core.PMU.TakePendingOverflows()
	k.markPMIRaise(coreID, mask)
	if k.chaos != nil && k.chaos.DrainPMI != nil {
		mask |= k.chaos.DrainPMI(coreID, t)
	}
	if mask != 0 {
		k.pmiFor(coreID, t, mask)
	}
	k.applyFixup(t)
	k.saveCounters(core, t)
	if k.probes != nil && k.probes.SwitchOut != nil {
		k.probes.SwitchOut(coreID, t)
	}
	k.tr(coreID, t, trace.SwitchOut, 0)
	t.Stats.CtxSwitches++
	k.Stats.CtxSwitches++
	core.PMU.AddEvent(pmu.RingKernel, pmu.EvCtxSwitches, 1)
	if k.metrics != nil {
		k.metrics.SwitchOutCycles.Observe(core.Now - start)
	}
	k.cur[coreID] = nil
}

// switchTo completes a context switch onto next.
func (k *Kernel) switchTo(coreID int, next *Thread) {
	// Guest level first: make next's tenant resident (charging the vCPU
	// switch when the core changes hands between tenants) before the
	// thread-level switch costs start, so the base switch histograms
	// stay comparable with the tenant layer off.
	if k.ts != nil {
		k.tenantEnsure(coreID, k.ts.tenantOf(next))
	}
	core := k.cores[coreID]
	c := k.cfg.Costs
	start := core.Now
	core.KernelWork(c.CtxSwitchBase)
	if n := k.cfg.CtxSwitchPollutionLines; n > 0 {
		k.kernDataBase += 64 // touch a sliding kernel region
		core.KernelCachePollution(k.kernDataBase, n)
	}
	if next.HomeCore != coreID {
		next.Stats.Migrations++
		k.Stats.Migrations++
		next.HomeCore = coreID
	}
	// Switching address spaces flushes the untagged TLB.
	if k.lastProc[coreID] != next.Proc.ID {
		core.TLB.FlushAll()
		k.lastProc[coreID] = next.Proc.ID
	}
	k.restoreCounters(core, next)
	next.State = StateRunning
	next.Ctx.AllowRdPMC = next.Proc.AllowRdPMC
	k.tr(coreID, next, trace.SwitchIn, 0)
	if k.metrics != nil {
		k.metrics.SwitchInCycles.Observe(core.Now - start)
	}
	k.cur[coreID] = next
	k.quantumEnd[coreID] = core.Now + k.cfg.Quantum
}

// applyFixup implements the LiMiT kernel patch's atomicity guarantee:
// if the thread is stopped inside a registered read-critical region,
// rewind its PC to the region start so the read sequence re-executes
// from scratch when the thread resumes.
func (k *Kernel) applyFixup(t *Thread) {
	for _, r := range t.Proc.FixupRegions {
		if r.Contains(t.Ctx.PC) {
			from := t.Ctx.PC
			t.Ctx.PC = r.Start
			t.Stats.FixupRewinds++
			if k.metrics != nil {
				k.metrics.RewindsTaken.Inc()
			}
			if k.probes != nil && k.probes.Rewind != nil {
				k.probes.Rewind(t, from, r.Start)
			}
			return
		}
	}
	// The check ran with regions registered but the PC was outside every
	// read-critical range: the common case the fixup design keeps free.
	if k.metrics != nil && len(t.Proc.FixupRegions) > 0 {
		k.metrics.RewindsAvoided.Inc()
	}
}

// ensureSlots lazily sizes the thread's slot map to the core's PMU.
func ensureSlots(core *cpu.Core, t *Thread) {
	if t.hwSlots == nil {
		t.hwSlots = make([]int, core.PMU.NumCounters())
		for i := range t.hwSlots {
			t.hwSlots[i] = -1
		}
	}
}

// spanEnd closes the thread's current scheduled span for multiplexing
// bookkeeping: every open perf counter accrues window time, loaded
// ones accrue active time.
func spanEnd(core *cpu.Core, t *Thread) {
	span := core.Now - t.spanStartAt
	if span == 0 {
		return
	}
	for _, tc := range t.counters {
		if tc.Closed || tc.Kind != KindPerf {
			continue
		}
		tc.WindowCycles += span
		if tc.HWSlot >= 0 {
			tc.ActiveCycles += span
		}
	}
	t.spanStartAt = core.Now
}

// saveCounters virtualizes the thread's counters on deschedule. With
// hardware virtualization (enhancement e3) the save is free; otherwise
// each counter costs an MSR read, plus a write for counters that must
// be stopped.
func (k *Kernel) saveCounters(core *cpu.Core, t *Thread) {
	if len(t.counters) == 0 && len(t.groups) == 0 {
		return
	}
	ensureSlots(core, t)
	if len(t.groups) != 0 {
		ensureGroupSlots(core, t)
	}
	// Close the span first: drains loaded group counters and attributes
	// ground truth at this instant, before any MSR cost lands.
	k.spanClose(core, t)
	hwVirt := core.PMU.Features().HardwareVirtualization
	writeLimit := core.PMU.WriteLimit()
	for slot, ci := range t.hwSlots {
		if ci < 0 {
			continue
		}
		tc := t.counters[ci]
		v := core.PMU.Read(slot)
		if !hwVirt {
			core.KernelWork(k.cfg.Costs.MSRRead)
		}
		switch tc.Kind {
		case KindLimit:
			// The hardware value must stay below the write limit so it
			// can be restored later; fold any excess now (this happens
			// when the overflow interrupt was pending at switch time).
			for v >= writeLimit && writeLimit != ^uint64(0) {
				t.Proc.Mem.Add64(tc.TableAddr, writeLimit)
				v -= writeLimit
				tc.Overflows++
				k.Stats.OverflowFolds++
				if k.metrics != nil {
					k.metrics.Folds.Inc()
				}
				core.KernelWork(k.cfg.Costs.OverflowFold)
				k.probeFold(core.ID, t, tc, writeLimit)
			}
			tc.Saved = v
		case KindPerf:
			tc.Acc += v
			tc.Saved = 0
		case KindSample:
			tc.Saved = v
		}
		// Disable the hardware counter so the next thread's events
		// don't leak in before restore programs it.
		core.PMU.Configure(slot, pmu.CounterConfig{Enabled: false, OverflowBit: -1})
		if !hwVirt {
			core.KernelWork(k.cfg.Costs.MSRWrite)
		}
		tc.HWSlot = -1
		t.hwSlots[slot] = -1
	}
	// Park loaded event groups. Their counts were drained by spanClose
	// above; the park itself is a save (MSR read) plus a disable (MSR
	// write) per slot, all charged outside the closed span.
	if parked := k.groupsPark(core, t); parked > 0 && !hwVirt {
		core.KernelWork((k.cfg.Costs.MSRRead + k.cfg.Costs.MSRWrite) * uint64(parked))
	}
}

// programSlot loads counter ci into hardware slot.
func (k *Kernel) programSlot(core *cpu.Core, t *Thread, slot, ci int) {
	tc := t.counters[ci]
	core.PMU.Configure(slot, pmu.CounterConfig{
		Event:       tc.Event,
		CountUser:   tc.CountUser,
		CountKernel: tc.CountKernel,
		Enabled:     true,
		OverflowBit: tc.OverflowBit,
	})
	core.PMU.Write(slot, tc.Saved)
	if !core.PMU.Features().HardwareVirtualization {
		core.KernelWork(k.cfg.Costs.MSRWrite * 2) // evtsel + value
	}
	tc.HWSlot = slot
	t.hwSlots[slot] = ci
}

// restoreCounters programs the core's PMU for the incoming thread.
// LiMiT and sampling counters are pinned to their own indices;
// floating perf counters fill the remaining slots, rotated each
// switch-in so that over-subscribed sets time-multiplex.
func (k *Kernel) restoreCounters(core *cpu.Core, t *Thread) {
	ensureSlots(core, t)
	n := core.PMU.NumCounters()
	for slot := 0; slot < n; slot++ {
		t.hwSlots[slot] = -1
	}

	var floaters []int
	for ci, tc := range t.counters {
		if tc.Closed {
			tc.HWSlot = -1
			continue
		}
		if ci >= n && tc.Kind != KindPerf {
			// A pinned counter beyond the PMU's slot count can never
			// load; allocation prevents this, but stay defensive.
			tc.HWSlot = -1
			continue
		}
		if tc.Kind == KindPerf {
			tc.HWSlot = -1
			floaters = append(floaters, ci)
			continue
		}
		t.hwSlots[ci] = ci // pinned
	}

	if len(floaters) > 0 {
		rot := t.muxPos % len(floaters)
		t.muxPos++
		picked := 0
		for slot := 0; slot < n && picked < len(floaters); slot++ {
			if t.hwSlots[slot] != -1 {
				continue
			}
			t.hwSlots[slot] = floaters[(rot+picked)%len(floaters)]
			picked++
		}
	}

	for slot := 0; slot < n; slot++ {
		if ci := t.hwSlots[slot]; ci >= 0 {
			k.programSlot(core, t, slot, ci)
		} else {
			core.PMU.Configure(slot, pmu.CounterConfig{Enabled: false, OverflowBit: -1})
		}
	}
	// Load whatever event groups fit the remaining slots, pricing the
	// MSR traffic before the span opens so the new span starts with the
	// groups already counting and the truth baseline marked at the same
	// instant.
	if len(t.groups) != 0 {
		k.groupsLoad(core, t)
	}
	t.spanStartAt = core.Now
	k.groupMark(core, t)
}

// block removes the current thread from its core with the given state;
// the caller records it wherever it waits.
func (k *Kernel) block(coreID int, t *Thread, st ThreadState) {
	k.deschedule(coreID, t)
	t.State = st
}

// wake makes a blocked/sleeping thread runnable no earlier than cycle
// at.
func (k *Kernel) wake(t *Thread, at uint64) {
	t.State = StateReady
	t.ReadyAt = at
	k.enqueue(t)
	k.tr(t.HomeCore, t, trace.Wake, at)
}

// wakeJoiners releases every thread blocked in SysJoin on t.
func (k *Kernel) wakeJoiners(t *Thread, at uint64) {
	for _, j := range t.joiners {
		k.wake(j, at)
	}
	t.joiners = nil
}
