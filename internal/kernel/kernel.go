// Package kernel implements the simulated operating system: processes,
// threads, a preemptive per-core scheduler with work stealing, futexes,
// signals, and — central to the reproduced paper — three performance-
// counter access paths:
//
//   - a perf_event-style syscall interface (the heavyweight baseline),
//   - a sampling profiler driven by counter-overflow interrupts,
//   - the LiMiT kernel patch: userspace rdpmc enablement, per-thread
//     counter virtualization across context switches, overflow folding
//     into 64-bit user-memory virtual counters, and the PC-rewind fixup
//     that makes multi-instruction userspace read sequences atomic
//     without locks.
//
// The kernel runs no simulated instructions of its own; its work is
// modeled as cycle costs charged in the kernel privilege ring on the
// core where it executes, so ring-filtered counters observe a realistic
// user/kernel split.
package kernel

import (
	"fmt"

	"limitsim/internal/cpu"
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/trace"
)

// Costs fixes the cycle price of each kernel operation. Defaults are
// calibrated so that a perf_event counter-read syscall costs roughly a
// microsecond at the nominal 3 GHz while a LiMiT userspace read costs
// low tens of nanoseconds, matching the one-to-two orders of magnitude
// the paper reports.
type Costs struct {
	SyscallEntry uint64 // kernel-side trap entry
	SyscallExit  uint64 // return to user
	Simple       uint64 // trivial handlers (gettid, yield bookkeeping)
	Futex        uint64 // futex wait/wake handler
	Nanosleep    uint64
	Sigaction    uint64

	PerfOpen  uint64
	PerfRead  uint64
	PerfReset uint64
	PerfClose uint64

	LimitInit  uint64 // enable userspace rdpmc for the process
	LimitOpen  uint64 // allocate and program a virtualized counter
	LimitFixup uint64 // register a read-critical fixup region

	Spawn uint64 // thread creation
	Clone uint64 // thread creation with counter inheritance
	Exit  uint64 // thread teardown and resource reclamation

	CtxSwitchBase uint64 // scheduler + address-space switch
	MSRRead       uint64 // per-counter save on deschedule
	MSRWrite      uint64 // per-counter restore on schedule
	VCpuSwitch    uint64 // tenant (guest-scheduler) residency switch

	GroupOpen uint64 // validate and install one event group
	GroupRead uint64 // scaled-estimate read handler
	MuxRotate uint64 // group rotation handler (MSR traffic priced on top)

	SignalDeliver uint64
	SigReturn     uint64

	PMIHandler   uint64 // overflow interrupt entry/dispatch
	OverflowFold uint64 // folding 2^31 into a virtual counter
	SampleRecord uint64 // storing one PC sample

	SampleStart uint64
	SampleStop  uint64

	// IOBase is the fixed part of a SysIO call; the variable part
	// scales with the byte count.
	IOBase uint64
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry: 150,
		SyscallExit:  150,
		Simple:       100,
		Futex:        500,
		Nanosleep:    500,
		Sigaction:    400,

		PerfOpen:  6000,
		PerfRead:  2600,
		PerfReset: 800,
		PerfClose: 500,

		LimitInit:  4000,
		LimitOpen:  5000,
		LimitFixup: 800,

		Spawn: 8000,
		Clone: 9500,
		Exit:  3000,

		CtxSwitchBase: 900,
		MSRRead:       60,
		MSRWrite:      90,
		VCpuSwitch:    2500,

		GroupOpen: 5500,
		GroupRead: 900,
		MuxRotate: 350,

		SignalDeliver: 400,
		SigReturn:     250,

		PMIHandler:   450,
		OverflowFold: 80,
		SampleRecord: 300,

		SampleStart: 3000,
		SampleStop:  800,

		IOBase: 2200,
	}
}

// OverflowMode selects how the LiMiT patch folds counter overflows into
// the 64-bit virtual counters.
type OverflowMode uint8

const (
	// FoldInKernel: the PMI handler writes the user-memory virtual
	// counter directly (the deployed LiMiT design).
	FoldInKernel OverflowMode = iota
	// SignalUser: the PMI handler posts SIGPMU and the userspace
	// handler performs the fold (the alternative design the paper
	// discusses; strictly slower, kept for the ablation benches).
	SignalUser
)

// Config tunes the kernel.
type Config struct {
	// Quantum is the scheduler time slice in cycles.
	Quantum uint64
	// Costs prices kernel operations.
	Costs Costs
	// CtxSwitchPollutionLines is how many cache lines of kernel data a
	// context switch drags through the core's caches.
	CtxSwitchPollutionLines int
	// MigrateOnWake places woken threads on the least-loaded core
	// instead of their home core, producing cross-core migrations.
	MigrateOnWake bool
	// WorkStealing lets idle cores steal ready threads.
	WorkStealing bool
	// LimitOverflow selects the overflow folding mechanism.
	LimitOverflow OverflowMode
	// Seed drives the kernel's internal tie-breaking RNG.
	Seed uint64

	// MuxQuantum is the event-group rotation period, measured in the
	// owning thread's *scheduled* cycles so preemption storms stretch
	// wall-clock rotation intervals without shrinking per-window counts.
	// Defaults to Quantum/6, so several rotations fit one time slice.
	MuxQuantum uint64

	// VirtSlotCapacity bounds how many pinned virtualized counters
	// (LiMiT and sampling) may be open kernel-wide at once, modeling the
	// finite per-thread counter state the real patch allocates. Zero
	// means unbounded; allocation then never fails but the ledger still
	// accounts, so the leak oracle works either way.
	VirtSlotCapacity int
	// AblateReclaim disables exit-time resource reclamation (slot and
	// table-word returns, fixup-region drops). Testing only: it exists
	// so leak-oracle tests can prove they detect the leaks reclamation
	// prevents.
	AblateReclaim bool

	// Tenants, when > 1, activates the guest-scheduler layer: threads
	// carry a tenant id and each core runs one resident tenant at a
	// time, with vCPU switches between them (tenant.go). <= 1 disables
	// the layer entirely; existing paths pay nothing.
	Tenants int
	// TenantQuantum is the tenant-level time slice in cycles (default
	// 3× Quantum, so several thread slices fit inside one vCPU slice).
	TenantQuantum uint64
	// VCPUs caps how many cores one tenant may be resident on at once
	// (0: unbounded). Caps below the core count force cross-core vCPU
	// migration under load.
	VCPUs int
	// UncoreEvent selects which event the socket-level attribution
	// policy divides among tenants (default EvLLCMiss — the canonical
	// shared-resource event).
	UncoreEvent pmu.Event
}

// DefaultConfig returns a configuration resembling a 2011 Linux desktop:
// ~3 ms time slices at 3 GHz would be 9M cycles; we default to 300k
// cycles (100 µs) so that short simulations still exercise preemption
// heavily, as the paper's multi-threaded workloads do.
func DefaultConfig() Config {
	return Config{
		Quantum:                 300_000,
		Costs:                   DefaultCosts(),
		CtxSwitchPollutionLines: 32,
		MigrateOnWake:           true,
		WorkStealing:            true,
		LimitOverflow:           FoldInKernel,
		Seed:                    1,
	}
}

// ThreadState is a thread's scheduler state.
type ThreadState uint8

// Thread states.
const (
	StateReady ThreadState = iota
	StateRunning
	StateBlocked  // on a futex
	StateSleeping // nanosleep
	StateDone
)

func (s ThreadState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateDone:
		return "done"
	}
	return "state?"
}

// FixupRegion is a registered read-critical PC range [Start, End). A
// thread interrupted with PC inside the range is rewound to Start.
type FixupRegion struct {
	Start int
	End   int
}

// Contains reports whether pc is inside the region.
func (r FixupRegion) Contains(pc int) bool { return pc >= r.Start && pc < r.End }

// Process groups threads sharing an address space and a program.
type Process struct {
	ID   int
	Mem  *mem.Space
	Prog *isa.Program

	// AllowRdPMC mirrors the CR4.PCE-like flag the LiMiT patch sets.
	AllowRdPMC bool
	// FixupRegions are the process's registered read-critical ranges.
	FixupRegions []FixupRegion
	// regionRefs holds, parallel to FixupRegions, how many live threads
	// hold a registration on each range; a range is removed when its
	// last holder exits.
	regionRefs []int
	// handlers maps signal number to handler entry PC.
	handlers map[int]int
}

// Signal numbers.
const (
	// SIGPMU is delivered on counter overflow in SignalUser mode; the
	// overflowed counter index arrives in R0's shadow (handler arg).
	SIGPMU = 1
	// SIGUSR1 is free for workload use.
	SIGUSR1 = 2
)

type signal struct {
	num int
	arg uint64
}

// CounterKind distinguishes the three counter access paths.
type CounterKind uint8

// Counter kinds.
const (
	KindLimit CounterKind = iota
	KindPerf
	KindSample
)

func (k CounterKind) String() string {
	switch k {
	case KindLimit:
		return "limit"
	case KindPerf:
		return "perf"
	case KindSample:
		return "sample"
	}
	return "kind?"
}

// ThreadCounter is one virtualized per-thread counter. Its index in the
// owning thread's counter slice is also the hardware counter index used
// while the thread runs.
type ThreadCounter struct {
	Kind        CounterKind
	Event       pmu.Event
	CountUser   bool
	CountKernel bool

	// Saved holds the hardware value while the thread is descheduled
	// (LiMiT keeps the raw value; perf and sampling reload from zero).
	Saved uint64
	// Acc is the kernel-side 64-bit accumulator (perf only).
	Acc uint64
	// TableAddr is the user-memory virtual counter address (LiMiT only).
	TableAddr uint64
	// OverflowBit mirrors the PMU programming for this counter.
	OverflowBit int
	// Period and armed sampling state (sampling only).
	Period uint64
	// Closed counters keep their slot (hardware index stability) but
	// are disabled.
	Closed bool
	// Released marks that the counter's ledger accounting (pinned slot,
	// kernel-allocated table word) has been returned — at close or at
	// exit-time reap. Unlike Closed it does not hide the counter from
	// host-side reads: a reaped LiMiT counter's final value stays
	// readable through its virtual-counter word.
	Released bool
	// Estimated marks a counter whose values are degraded estimates
	// rather than exact counts — set when slot exhaustion downgraded an
	// inherited counter to the multiplexed perf path. Results derived
	// from it must be flagged, never presented as exact.
	Estimated bool
	// Inherited marks a counter created by clone-time inheritance; such
	// counters count from the child's birth, so for a user-ring
	// instruction counter the final value must equal the thread's true
	// retired-instruction total (the conservation oracle).
	Inherited bool
	// KernelTable marks a LiMiT counter whose virtual-counter word was
	// allocated by the kernel at clone time (rather than supplied by
	// userspace); its accounting is returned at reap.
	KernelTable bool

	// Overflows counts folds/sample interrupts taken on this counter.
	Overflows uint64

	// HWSlot is the hardware counter currently backing this counter,
	// or -1 while unloaded. LiMiT and sampling counters are pinned
	// (slot == index) because userspace rdpmc encodes the slot; perf
	// counters float and are time-multiplexed when the thread has more
	// of them than the PMU has slots.
	HWSlot int
	// WindowCycles and ActiveCycles track scheduled time since open vs
	// time actually loaded on hardware (perf only); reads scale by
	// Window/Active exactly as Linux's time_enabled/time_running
	// multiplexing estimate does.
	WindowCycles uint64
	ActiveCycles uint64
}

// Multiplexed reports whether the counter has spent scheduled time
// unloaded (its readings are scaled estimates).
func (tc *ThreadCounter) Multiplexed() bool {
	return tc.WindowCycles > tc.ActiveCycles
}

// ThreadStats accumulates per-thread scheduler statistics, including
// the kernel's omniscient per-thread ground truth used by tests and
// experiments to validate measured counter values.
type ThreadStats struct {
	CtxSwitches  uint64 // times descheduled
	Preemptions  uint64 // involuntary deschedules
	Migrations   uint64 // times resumed on a different core
	FixupRewinds uint64 // PC rewinds applied by the LiMiT patch
	Signals      uint64 // signals delivered
	Syscalls     uint64

	// UserInstructions and UserCycles are the thread's true user-ring
	// totals (including re-executed fixup instructions, which real
	// hardware also counts).
	UserInstructions uint64
	UserCycles       uint64

	// SchedCycles is total scheduled time (user + kernel rings) accrued
	// at span close; group enabled-time conservation is checked against
	// it. Only accounted once the thread holds event groups.
	SchedCycles uint64
}

// Thread is one simulated software thread.
type Thread struct {
	ID   int
	Name string
	Proc *Process
	Ctx  cpu.Context

	State    ThreadState
	HomeCore int
	// ReadyAt is the earliest cycle the thread may next run (set when
	// it is woken by an event that happened at a known time).
	ReadyAt uint64
	// WakeAt is the nanosleep deadline while sleeping.
	WakeAt uint64

	// ClonedFrom is the parent thread's ID when this thread was created
	// by SysClone or a forced chaos clone; -1 for threads spawned from
	// the host.
	ClonedFrom int

	// Tenant is the guest VM this thread belongs to when the tenant
	// layer is active (Config.Tenants > 1); children inherit it across
	// clone. Out-of-range values are treated as tenant 0.
	Tenant int

	counters  []*ThreadCounter
	sampler   int // index into counters of the active sampler, -1 if none
	sigFrames []cpu.Context
	pending   []signal
	joiners   []*Thread // threads blocked in SysJoin on this thread
	// regions records the fixup-region registrations this thread holds
	// (one entry per SysLimitRegisterFixup or clone-time inheritance);
	// they are dropped at exit, removing each range from the process
	// table when its last holder dies.
	regions [][2]int

	// hwSlots maps hardware slot -> counter index (-1 free) while the
	// thread's counters are programmed; muxPos rotates floating perf
	// counters across switch-ins; spanStartAt marks the current
	// scheduled span for multiplexing bookkeeping.
	hwSlots     []int
	muxPos      int
	spanStartAt uint64

	// Event-group multiplexing state (groups.go): the group table, the
	// slot→group ledger parallel to hwSlots, the round-robin rotation
	// cursor, scheduled cycles spent since the last rotation, and the
	// per-event ground-truth baseline of the current truth interval.
	groups     []*EventGroup
	groupSlots []int
	muxRot     int
	muxSpent   uint64
	gtMark     *[pmu.NumEvents][2]uint64

	// FaultMsg records why the thread died, if it faulted.
	FaultMsg string

	Stats ThreadStats
}

// Counters exposes the thread's counter table (read-only use intended;
// experiments inspect Saved/Acc/Overflows).
func (t *Thread) Counters() []*ThreadCounter { return t.counters }

// Sample is one record captured by the sampling profiler.
type Sample struct {
	TID   int
	PC    int
	Cycle uint64
}

// LogEntry is a record emitted by the SysLogValue syscall.
type LogEntry struct {
	TID   int
	Tag   uint64
	Value uint64
	Cycle uint64
}

// Stats accumulates kernel-wide statistics.
type Stats struct {
	CtxSwitches   uint64
	Migrations    uint64
	Preemptions   uint64
	PMIs          uint64
	OverflowFolds uint64
	Steals        uint64
	SignalsSent   uint64
	Syscalls      uint64
	Clones        uint64 // threads created with counter inheritance
	Exits         uint64 // threads torn down through the exit path
	Kills         uint64 // exits forced by chaos injection

	VCpuSwitches      uint64 // tenant residency changes on a core
	VCpuMigrations    uint64 // cross-core vCPU moves + cap-driven thread moves
	TenantPreemptions uint64 // vCPU preemptions (quantum expiry or chaos)

	MuxRotations uint64 // event-group rotation windows closed
}

// Kernel is the simulated OS instance managing a fixed set of cores.
type Kernel struct {
	cfg   Config
	cores []*cpu.Core

	procs   []*Process
	threads []*Thread
	live    int // threads not yet StateDone, so AllDone is O(1)

	cur        []*Thread   // per-core current thread
	runq       [][]*Thread // per-core ready queues
	quantumEnd []uint64    // per-core current slice deadline
	lastProc   []int       // per-core last process ID (TLB flush decisions)

	sleepers []*Thread // unsorted; scanned (small populations)
	minWake  uint64    // earliest sleeper deadline; ^0 when none sleep
	futexes  map[futexKey][]*Thread

	samples []Sample
	logs    []LogEntry
	faults  []string

	kernDataBase uint64 // fake kernel addresses for cache pollution
	rng          uint64

	// slots accounts pinned virtualized-counter slots against
	// cfg.VirtSlotCapacity; tableWords accounts kernel-allocated
	// virtual-counter words (unbounded, audit only). regionsLive and
	// regionsPeak track fixup-region registrations the same way. All
	// three feed Resources(), the leak oracle's ground truth.
	slots       *pmu.Ledger
	tableWords  *pmu.Ledger
	regionsLive int
	regionsPeak int

	// Tracer, when non-nil, records scheduling/syscall/interrupt
	// events. Attach with SetTracer before running.
	tracer *trace.Buffer

	// chaos and probes are the fault-injection and invariant-checking
	// hook sets (hooks.go). Attach with SetChaos/SetProbes.
	chaos  *Chaos
	probes *Probes

	// slowStep caches chaos != nil || probes != nil || ts != nil — the
	// "something observes every instruction boundary" condition that
	// forces RunCore to single-step. Maintained by the three writers
	// (SetChaos, SetProbes, New's tenant setup) so the burst fast path
	// tests one bool instead of three pointers.
	slowStep bool

	// Burst resume cache: a clean RunCore burst runs no kernel code
	// anywhere, so the entry-block derivation for a core — current
	// thread, quantum end, run-queue occupancy, group flag — stays
	// exact across other cores' clean bursts, and RunCore can reuse
	// it when the machine re-picks the core. An entry is live while
	// its gen matches burstGen; every kernel mutation path (StepCore,
	// postStep, sleeper wakes, Spawn, PostSignal) bumps burstGen,
	// invalidating all entries at once.
	burst    []burstEntry
	burstGen uint64

	// metrics, when non-nil, is the kernel's self-measurement surface
	// (metrics.go). pmiRaiseAt holds per-core, per-slot raise marks for
	// the PMI latency histogram; both are nil while detached.
	metrics    *Metrics
	pmiRaiseAt [][]uint64

	// ts is the guest-scheduler (tenant) layer, nil unless
	// Config.Tenants > 1 (tenant.go).
	ts *tenantSched

	// frames collects the per-rotation event-frame snapshots (groups.go);
	// frameSeq is the kernel-wide emission counter stamped on each.
	frames   []Frame
	frameSeq uint64

	Stats Stats
}

type futexKey struct {
	proc int
	addr uint64
}

// New creates a kernel managing the given cores.
func New(cfg Config, cores []*cpu.Core) *Kernel {
	if len(cores) == 0 {
		panic("kernel: need at least one core")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultConfig().Quantum
	}
	if cfg.MuxQuantum == 0 {
		cfg.MuxQuantum = cfg.Quantum / 6
	}
	k := &Kernel{
		cfg:          cfg,
		cores:        cores,
		cur:          make([]*Thread, len(cores)),
		runq:         make([][]*Thread, len(cores)),
		quantumEnd:   make([]uint64, len(cores)),
		lastProc:     make([]int, len(cores)),
		futexes:      make(map[futexKey][]*Thread),
		minWake:      ^uint64(0),
		kernDataBase: 0xffff_8000_0000_0000,
		rng:          cfg.Seed ^ 0x8c0ffee0,
		slots:        pmu.NewLedger(cfg.VirtSlotCapacity),
		tableWords:   pmu.NewLedger(0),
		burst:        make([]burstEntry, len(cores)),
		burstGen:     1,
	}
	if cfg.Tenants > 1 {
		// The zero UncoreEvent (EvCycles) means "default": attribute the
		// canonical shared-resource event.
		if k.cfg.UncoreEvent == pmu.EvCycles {
			k.cfg.UncoreEvent = pmu.EvLLCMiss
		}
		k.ts = newTenantSched(k.cfg, len(cores))
		k.slowStep = true
	}
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Cores returns the managed cores.
func (k *Kernel) Cores() []*cpu.Core { return k.cores }

// NewProcess creates a process around a program. space may be nil for
// a fresh address space; passing one allows programs to embed
// addresses that were allocated before assembly (counter tables,
// result buffers, locks).
func (k *Kernel) NewProcess(prog *isa.Program, space *mem.Space) *Process {
	if space == nil {
		space = mem.NewSpace()
	}
	p := &Process{
		ID:       len(k.procs) + 1,
		Mem:      space,
		Prog:     prog,
		handlers: make(map[int]int),
	}
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a thread in proc starting at entry (an instruction
// index, typically prog.MustEntry(label)) and enqueues it on the least-
// loaded core. Initial register values may be supplied via regs (pairs
// applied in order).
func (k *Kernel) Spawn(proc *Process, name string, entry int, seed uint64) *Thread {
	k.burstGen++
	t := &Thread{
		ID:         len(k.threads) + 1,
		Name:       name,
		Proc:       proc,
		State:      StateReady,
		sampler:    -1,
		ClonedFrom: -1,
	}
	t.Ctx.Prog = proc.Prog
	t.Ctx.Mem = proc.Mem
	t.Ctx.PC = entry
	t.Ctx.AllowRdPMC = proc.AllowRdPMC
	t.Ctx.SeedRNG(seed + uint64(t.ID)*0x9e3779b97f4a7c15)
	core := k.leastLoadedCore()
	t.HomeCore = core
	k.threads = append(k.threads, t)
	k.live++
	k.runq[core] = append(k.runq[core], t)
	k.tr(core, t, trace.Spawn, uint64(entry))
	return t
}

// SetReg sets an initial register value on a not-yet-run thread.
func (t *Thread) SetReg(r isa.Reg, v uint64) { t.Ctx.Regs[r] = v }

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// Processes returns all processes.
func (k *Kernel) Processes() []*Process { return k.procs }

// Samples returns the sampling profiler's capture buffer.
func (k *Kernel) Samples() []Sample { return k.samples }

// Logs returns entries recorded via SysLogValue.
func (k *Kernel) Logs() []LogEntry { return k.logs }

// Faults returns descriptions of threads killed by faults.
func (k *Kernel) Faults() []string { return k.faults }

// FaultedThreads returns every thread that died from a fault.
func (k *Kernel) FaultedThreads() []*Thread {
	var out []*Thread
	for _, t := range k.threads {
		if t.FaultMsg != "" {
			out = append(out, t)
		}
	}
	return out
}

// AllDone reports whether every spawned thread has terminated.
func (k *Kernel) AllDone() bool { return k.live == 0 }

// SetTracer attaches an event trace buffer (nil detaches).
func (k *Kernel) SetTracer(b *trace.Buffer) { k.tracer = b }

// Tracer returns the attached trace buffer, if any.
func (k *Kernel) Tracer() *trace.Buffer { return k.tracer }

// tr records a trace event when tracing is attached.
func (k *Kernel) tr(coreID int, t *Thread, kind trace.Kind, arg uint64) {
	if k.tracer == nil {
		return
	}
	tid := 0
	if t != nil {
		tid = t.ID
	}
	k.tracer.Append(trace.Event{
		Cycle: k.cores[coreID].Now, Core: coreID, TID: tid, Kind: kind, Arg: arg,
	})
}

func (k *Kernel) rand() uint64 {
	x := k.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	k.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (k *Kernel) leastLoadedCore() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i := range k.cores {
		load := len(k.runq[i])
		if k.cur[i] != nil {
			load++
		}
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// fault kills a thread with a uniformly shaped diagnostic: every fault
// message names the thread, the core it died on, and the PC at the
// fault, regardless of which kernel path raised it.
func (k *Kernel) fault(coreID int, t *Thread, pc int, msg string) {
	t.FaultMsg = msg
	if t.State != StateDone {
		k.live--
	}
	t.State = StateDone
	k.faults = append(k.faults, fmt.Sprintf(
		"thread %d (%s) core%d pc=%d: %s", t.ID, t.Name, coreID, pc, msg))
}
