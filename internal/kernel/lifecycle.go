package kernel

import (
	"limitsim/internal/isa"
	"limitsim/internal/trace"
)

// Thread lifecycle: clone with counter inheritance, and exit with
// deterministic resource reclamation.
//
// LiMiT's long-lived workloads (the MySQL longitudinal study most of
// all) churn threads constantly, so the kernel patch must keep the
// per-thread virtualized counters exact across creation and teardown,
// not just across context switches. Two properties anchor everything
// here and are enforced by the invariant oracles:
//
//   - Conservation: a cloned child's counters mirror the parent's
//     configuration but start from zero, so parent and child deltas
//     fold into process totals without double counting, and a counter
//     inherited at birth ends exactly equal to the child's true total.
//   - Leak-freedom: every resource a thread acquires — pinned counter
//     slots, kernel-allocated virtual-counter words, fixup-region
//     registrations — is returned when the thread exits, by any path:
//     halt, exit syscall, fault, or chaos kill.

// Exit reasons, recorded as the trace.Exit argument.
const (
	exitHalt      = 0 // ran off the end of its code (Halt)
	exitVoluntary = 1 // SysExit
	exitKilled    = 2 // chaos-injected asynchronous kill
)

// clone implements SysClone: create a thread at entry whose counters
// inherit the parent's open set. Event groups are NOT inherited —
// matching perf's semantics, where a group fd measures one task and a
// child starts with none. Returns the child TID or RetErr.
func (k *Kernel) clone(coreID int, t *Thread, entry int, tlsArg, seed, tableBase uint64) uint64 {
	if entry < 0 || entry >= t.Proc.Prog.Len() {
		return RetErr
	}
	core := k.cores[coreID]
	nt := k.Spawn(t.Proc, t.Name+"*", entry, seed)
	nt.ClonedFrom = t.ID
	nt.Tenant = t.Tenant // a guest VM's threads stay in the guest
	nt.Ctx.Regs[isa.R14] = tlsArg
	nt.ReadyAt = core.Now

	// The child executes the same read sequences its parent does, so it
	// takes its own reference on each fixup region the parent holds;
	// the range stays registered until the last holder exits — a dead
	// manager must never strip its live workers' rewind protection.
	for _, r := range t.regions {
		k.addRegionRef(nt, r[0], r[1])
	}

	degraded := k.inheritCounters(t, nt, tableBase)
	if degraded {
		nt.Ctx.Regs[isa.R0] = 1
		if k.metrics != nil {
			k.metrics.DegradedClones.Inc()
		}
	}
	k.Stats.Clones++
	k.tr(coreID, nt, trace.Clone, uint64(t.ID))
	if k.probes != nil && k.probes.Clone != nil {
		k.probes.Clone(coreID, t, nt, degraded)
	}
	return uint64(nt.ID)
}

// inheritCounters mirrors the parent's open counters into the child:
// same kinds, events, and rings, with every value starting from zero.
// LiMiT counters need a fresh virtual-counter word — tableBase != 0
// names a caller-provided table (word i backs counter i), tableBase ==
// 0 has the kernel allocate words. Pinned kinds (LiMiT, sampling)
// reserve slots from the kernel-wide ledger in one all-or-nothing
// call; when the reservation is denied the child degrades: every
// inherited counter becomes a floating perf counter whose readings are
// multiplexed estimates, flagged via Estimated — degraded, never
// silently wrong. Reports whether the child degraded.
func (k *Kernel) inheritCounters(t, nt *Thread, tableBase uint64) bool {
	pinnedNeed := 0
	for _, pc := range t.counters {
		if !pc.Closed && pc.Kind != KindPerf {
			pinnedNeed++
		}
	}
	degraded := pinnedNeed > 0 && !k.slots.TryAcquire(pinnedNeed)
	for i, pc := range t.counters {
		if pc.Closed {
			// Placeholder: keeps child counter indices aligned with the
			// parent's, so generated code addressing counters by index
			// works identically in both.
			nt.counters = append(nt.counters, &ThreadCounter{
				Kind: pc.Kind, Closed: true, Released: true,
				HWSlot: -1, OverflowBit: -1,
			})
			continue
		}
		tc := &ThreadCounter{
			Kind:        pc.Kind,
			Event:       pc.Event,
			CountUser:   pc.CountUser,
			CountKernel: pc.CountKernel,
			OverflowBit: pc.OverflowBit,
			Period:      pc.Period,
			HWSlot:      -1,
			Inherited:   true,
			Estimated:   pc.Estimated,
		}
		switch {
		case degraded && pc.Kind == KindSample:
			// A sampler cannot float across slots; the degraded child
			// loses it rather than sampling from a wrong slot.
			tc.Closed, tc.Released = true, true
		case degraded || pc.Kind == KindPerf:
			tc.Kind = KindPerf
			tc.OverflowBit = -1
			tc.TableAddr = 0
			if degraded {
				tc.Estimated = true
			}
		case pc.Kind == KindLimit:
			if tableBase != 0 {
				tc.TableAddr = tableBase + uint64(i)*8
			} else {
				tc.TableAddr = t.Proc.Mem.AllocWords(1)
				tc.KernelTable = true
				k.tableWords.TryAcquire(1)
			}
			t.Proc.Mem.Write64(tc.TableAddr, 0)
		case pc.Kind == KindSample:
			tc.Saved = (uint64(1) << uint(pc.OverflowBit)) - pc.Period
			nt.sampler = len(nt.counters)
		}
		nt.counters = append(nt.counters, tc)
	}
	return degraded
}

// exitThread terminates t on coreID through the full teardown path:
// the thread is descheduled (saving and disabling its hardware
// counters), marked done, reaped (resources returned, values left
// intact), and its joiners woken. how is the trace.Exit argument.
func (k *Kernel) exitThread(coreID int, t *Thread, how uint64) {
	start := k.cores[coreID].Now
	k.deschedule(coreID, t)
	if t.State != StateDone {
		k.live--
	}
	t.State = StateDone
	k.reapThread(coreID, t)
	k.Stats.Exits++
	k.tr(coreID, t, trace.Exit, how)
	if k.metrics != nil {
		k.metrics.ExitCycles.Observe(k.cores[coreID].Now - start)
	}
	k.wakeJoiners(t, k.cores[coreID].Now)
}

// faultThread is the involuntary analogue of exitThread: the thread
// dies with a diagnostic, and its resources are reclaimed exactly as
// on a clean exit — a crashing thread must not leak counter slots.
func (k *Kernel) faultThread(coreID int, t *Thread, msg string) {
	pc := t.Ctx.PC
	k.deschedule(coreID, t)
	k.fault(coreID, t, pc, msg)
	k.reapThread(coreID, t)
	k.Stats.Exits++
	k.tr(coreID, t, trace.Fault, 0)
	k.wakeJoiners(t, k.cores[coreID].Now)
}

// reapThread is the reclamation half of exit: every ledgered resource
// is returned and the thread's region holds are dropped. Counter
// values are preserved, not folded — the deschedule inside exitThread
// already virtualized them, so the final value of a LiMiT counter
// remains table word + Saved, exactly as for a live descheduled
// thread. (Folding the remainder into the table word here would
// corrupt concurrent readers of workloads that share one virtual-
// counter word across threads; the invariant checker instead captures
// each counter's final value at the Reap probe, before any later
// thread recycles the word.)
func (k *Kernel) reapThread(coreID int, t *Thread) {
	// A group-holding thread's last frame: the deschedule inside exit/
	// fault already closed the final span, so the snapshot is exact and
	// host-side consumers (frame totals, derived metrics) see the
	// thread's complete life.
	if len(t.groups) != 0 {
		k.emitFrame(coreID, t, true)
	}
	for _, tc := range t.counters {
		k.releaseCounter(tc)
	}
	if !k.cfg.AblateReclaim {
		for _, r := range t.regions {
			k.dropRegionRef(t.Proc, r[0], r[1])
		}
	}
	t.regions = nil
	k.tr(coreID, t, trace.Reap, 0)
	if k.probes != nil && k.probes.Reap != nil {
		k.probes.Reap(coreID, t)
	}
}

// releaseCounter returns a counter's ledger accounting exactly once.
// Under AblateReclaim the release is skipped entirely — Released stays
// false and the ledgers stay charged, which is precisely what the
// bad-reap and leak oracles exist to catch.
func (k *Kernel) releaseCounter(tc *ThreadCounter) {
	if tc.Released || k.cfg.AblateReclaim {
		return
	}
	tc.Released = true
	if tc.Kind != KindPerf {
		k.slots.Release(1)
	}
	if tc.KernelTable {
		k.tableWords.Release(1)
	}
}

// addRegionRef registers the read-critical range [start, end) on
// behalf of t: the process-wide fixup table gains the range (or an
// additional reference to it — registrations are refcounted and
// deduplicated), and the thread records its hold for exit-time
// release.
func (k *Kernel) addRegionRef(t *Thread, start, end int) {
	p := t.Proc
	found := false
	for i, r := range p.FixupRegions {
		if r.Start == start && r.End == end {
			p.regionRefs[i]++
			found = true
			break
		}
	}
	if !found {
		p.FixupRegions = append(p.FixupRegions, FixupRegion{Start: start, End: end})
		p.regionRefs = append(p.regionRefs, 1)
		k.regionsLive++
		if k.regionsLive > k.regionsPeak {
			k.regionsPeak = k.regionsLive
		}
	}
	t.regions = append(t.regions, [2]int{start, end})
}

// dropRegionRef releases one hold on [start, end); the range leaves
// the process's fixup table when its last holder exits.
func (k *Kernel) dropRegionRef(p *Process, start, end int) {
	for i, r := range p.FixupRegions {
		if r.Start == start && r.End == end {
			p.regionRefs[i]--
			if p.regionRefs[i] <= 0 {
				p.FixupRegions = append(p.FixupRegions[:i], p.FixupRegions[i+1:]...)
				p.regionRefs = append(p.regionRefs[:i], p.regionRefs[i+1:]...)
				k.regionsLive--
			}
			return
		}
	}
}

// Resources is a point-in-time snapshot of the kernel's counter-
// resource accounting — the ground truth the leak-freedom oracle
// audits after a run in which every thread has exited.
type Resources struct {
	SlotsInUse   int    // pinned counter slots currently reserved
	SlotsPeak    int    // high-water mark of concurrent reservations
	SlotCapacity int    // configured ledger capacity (0: unbounded)
	SlotDenials  uint64 // allocation attempts refused by the ledger

	TableWordsInUse int // kernel-allocated virtual-counter words live
	TableWordsPeak  int

	RegionsLive int // fixup-region registrations currently held
	RegionsPeak int
}

// Resources returns the current resource-accounting snapshot.
func (k *Kernel) Resources() Resources {
	return Resources{
		SlotsInUse:      k.slots.InUse(),
		SlotsPeak:       k.slots.Peak(),
		SlotCapacity:    k.slots.Capacity(),
		SlotDenials:     k.slots.Denied(),
		TableWordsInUse: k.tableWords.InUse(),
		TableWordsPeak:  k.tableWords.Peak(),
		RegionsLive:     k.regionsLive,
		RegionsPeak:     k.regionsPeak,
	}
}

// PostSignal queues signal num with handler argument arg for t, as an
// external event source would; it is delivered at the thread's next
// boundary through the normal path (fixup applied before the frame is
// saved). Tests use it to land deliveries inside read-critical
// regions.
func (k *Kernel) PostSignal(t *Thread, num int, arg uint64) {
	k.burstGen++
	k.post(t, num, arg)
}
