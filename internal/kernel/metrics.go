package kernel

import "limitsim/internal/telemetry"

// Metrics is the kernel's self-measurement surface: cycle-cost
// histograms for the paths the paper cares about (context switches,
// PMI service, thread churn) and counters for the events whose
// frequency determines LiMiT's overhead (fixup rewinds, overflow
// folds, slot pressure, degradations). All fields are registered on
// one telemetry.Registry so a run's metrics render and merge as a
// unit.
//
// Discipline mirrors the tracer: metrics are attached explicitly with
// SetMetrics and every instrumented path pays exactly one nil check
// when detached. Cycle costs are measured as core-clock deltas around
// the instrumented path (KernelWork advances the clock), so they
// include everything the path actually charges — MSR traffic, folds,
// pollution — not just the base cost constant.
type Metrics struct {
	reg *telemetry.Registry

	// Context-switch halves: deschedule (save + fixup + PMI drain) and
	// switch-in (base cost + pollution + counter restore).
	SwitchOutCycles *telemetry.Histogram
	SwitchInCycles  *telemetry.Histogram
	// PMILatency is raise-to-service: from the cycle an overflow
	// interrupt was taken off the PMU to the cycle its slot is serviced.
	// Chaos-delayed interrupts accrue real latency here.
	PMILatency *telemetry.Histogram
	// Thread churn: SysClone/forced-clone cost (inheritance included)
	// and the full exit path (final virtualization + reclamation).
	CloneCycles *telemetry.Histogram
	ExitCycles  *telemetry.Histogram

	// Event counts.
	Syscalls         *telemetry.Counter
	SignalsDelivered *telemetry.Counter
	PMIs             *telemetry.Counter
	Folds            *telemetry.Counter
	// RewindsTaken counts fixup checks that rewound the PC (the thread
	// was stopped inside a read-critical region); RewindsAvoided counts
	// checks that ran with regions registered but found the PC outside.
	// Their ratio is the paper's "how often does the fixup actually
	// fire" question.
	RewindsTaken   *telemetry.Counter
	RewindsAvoided *telemetry.Counter
	// OpenPolicy pressure, seen from the kernel side: transient
	// SysLimitOpen denials (RetAgain), perf opens flagged as degraded
	// fallbacks, and clones whose inheritance degraded to estimates.
	LimitOpenAgain *telemetry.Counter
	DegradedOpens  *telemetry.Counter
	DegradedClones *telemetry.Counter
	// Event-group multiplexing: rotation windows closed and event
	// frames emitted.
	MuxRotations *telemetry.Counter
	GroupFrames  *telemetry.Counter

	// Slot-ledger pressure (mirrored by pmu.Ledger.Instrument).
	SlotOccupancy *telemetry.Gauge
	SlotDenied    *telemetry.Counter
	TableWords    *telemetry.Gauge
}

// NewMetrics registers the kernel's metric set on reg and returns the
// handle to attach with SetMetrics. Registration order is fixed, so
// every registry built here renders and merges identically.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		reg: reg,

		Syscalls:         reg.Counter("kern.syscalls"),
		SignalsDelivered: reg.Counter("kern.signals.delivered"),
		PMIs:             reg.Counter("kern.pmi.count"),
		Folds:            reg.Counter("kern.folds"),
		RewindsTaken:     reg.Counter("kern.rewinds.taken"),
		RewindsAvoided:   reg.Counter("kern.rewinds.avoided"),
		LimitOpenAgain:   reg.Counter("kern.limitopen.again"),
		DegradedOpens:    reg.Counter("kern.opens.degraded"),
		DegradedClones:   reg.Counter("kern.clones.degraded"),
		MuxRotations:     reg.Counter("kern.mux.rotations"),
		GroupFrames:      reg.Counter("kern.mux.frames"),
		SlotDenied:       reg.Counter("pmu.slots.denied"),

		SlotOccupancy: reg.Gauge("pmu.slots.occupancy"),
		TableWords:    reg.Gauge("pmu.tablewords.occupancy"),

		SwitchOutCycles: reg.Histogram("kern.switch.out.cycles", nil),
		SwitchInCycles:  reg.Histogram("kern.switch.in.cycles", nil),
		PMILatency:      reg.Histogram("kern.pmi.latency.cycles", nil),
		CloneCycles:     reg.Histogram("kern.clone.cycles", nil),
		ExitCycles:      reg.Histogram("kern.exit.cycles", nil),
	}
}

// Registry returns the registry the metrics were registered on.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// SetMetrics attaches a metric set built by NewMetrics (nil detaches).
// The slot and table-word ledgers are instrumented through to the
// gauges, synced to their current levels, and per-core PMI raise marks
// are allocated for the latency histogram.
func (k *Kernel) SetMetrics(m *Metrics) {
	k.metrics = m
	if m == nil {
		k.slots.Instrument(nil, nil)
		k.tableWords.Instrument(nil, nil)
		k.pmiRaiseAt = nil
		return
	}
	k.slots.Instrument(m.SlotOccupancy, m.SlotDenied)
	k.tableWords.Instrument(m.TableWords, nil)
	k.pmiRaiseAt = make([][]uint64, len(k.cores))
	for i, c := range k.cores {
		k.pmiRaiseAt[i] = make([]uint64, c.PMU.NumCounters())
	}
}

// Metrics returns the attached metric set, if any.
func (k *Kernel) Metrics() *Metrics { return k.metrics }

// markPMIRaise stamps the raise time for every newly taken overflow
// bit. A slot already carrying a mark keeps the earlier (true) raise
// time; chaos-delayed bits therefore accrue their full latency.
func (k *Kernel) markPMIRaise(coreID int, mask uint64) {
	if k.metrics == nil || mask == 0 {
		return
	}
	now := k.cores[coreID].Now
	marks := k.pmiRaiseAt[coreID]
	for slot := 0; mask != 0 && slot < len(marks); slot, mask = slot+1, mask>>1 {
		if mask&1 == 1 && marks[slot] == 0 {
			marks[slot] = now
		}
	}
}

// observePMIService records raise-to-service latency for every slot in
// mask and clears the marks. Bits with no mark (chaos-injected
// spurious interrupts) are skipped: they were never raised.
func (k *Kernel) observePMIService(coreID int, mask uint64) {
	if k.metrics == nil || mask == 0 {
		return
	}
	now := k.cores[coreID].Now
	marks := k.pmiRaiseAt[coreID]
	for slot := 0; mask != 0 && slot < len(marks); slot, mask = slot+1, mask>>1 {
		if mask&1 == 1 && marks[slot] != 0 {
			k.metrics.PMILatency.Observe(now - marks[slot])
			marks[slot] = 0
		}
	}
}
