package kernel

import (
	"limitsim/internal/isa"
	"limitsim/internal/trace"
)

// post queues a signal for a thread. Signals with no installed handler
// are dropped at delivery time (the kernel's "default ignore"
// disposition; the simulated programs install handlers for everything
// they rely on).
func (k *Kernel) post(t *Thread, num int, arg uint64) {
	t.pending = append(t.pending, signal{num: num, arg: arg})
	k.Stats.SignalsSent++
}

// deliverSignals delivers one pending signal to the current thread on
// its way back to user mode. Only one signal is delivered per
// user-mode boundary; the rest wait for the next boundary, as on a real
// kernel where delivery happens one frame at a time.
func (k *Kernel) deliverSignals(coreID int, t *Thread) {
	for len(t.pending) > 0 {
		sig := t.pending[0]
		t.pending = t.pending[1:]
		handler, ok := t.Proc.handlers[sig.num]
		if !ok {
			continue // default: ignore
		}
		core := k.cores[coreID]
		core.KernelWork(k.cfg.Costs.SignalDeliver)

		// A signal can interrupt a LiMiT read sequence; the fixup must
		// land in the *saved* frame so the read restarts on sigreturn.
		k.applyFixup(t)

		k.tr(coreID, t, trace.Signal, uint64(sig.num))
		frame := t.Ctx.Clone()
		t.sigFrames = append(t.sigFrames, frame)
		t.Ctx.PC = handler
		t.Ctx.Regs[isa.R0] = uint64(sig.num)
		t.Ctx.Regs[isa.R1] = sig.arg
		t.Ctx.SigDepth++
		t.Stats.Signals++
		if k.metrics != nil {
			k.metrics.SignalsDelivered.Inc()
		}
		return
	}
}

// sigReturn pops the top signal frame, restoring the interrupted
// context (including the possibly rewound PC).
func (k *Kernel) sigReturn(coreID int, t *Thread) {
	if len(t.sigFrames) == 0 {
		k.faultThread(coreID, t, "sigreturn with empty signal stack")
		return
	}
	k.cores[coreID].KernelWork(k.cfg.Costs.SigReturn)
	t.Ctx = t.sigFrames[len(t.sigFrames)-1]
	t.sigFrames = t.sigFrames[:len(t.sigFrames)-1]
}
