package kernel_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
)

// groupProg assembles a program that opens one event group per spec
// slice, runs a counted busy loop, group-reads (gid 0, idx 0) into the
// kernel log with tag 7, and halts.
func groupProg(space *mem.Space, iters int64, groups ...[]perfevent.Spec) *isa.Program {
	b := isa.NewBuilder()
	for _, specs := range groups {
		table := perfevent.GroupTable(space, specs)
		perfevent.EmitGroupOpen(b, table, len(specs))
	}
	b.MovImm(isa.R1, iters)
	b.MovImm(isa.R2, 0)
	b.Label("loop")
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "loop")
	perfevent.EmitGroupRead(b, 0, 0, isa.R1)
	b.MovImm(isa.R0, 7)
	b.Syscall(kernel.SysLogValue)
	b.Halt()
	return b.MustBuild()
}

// A group that fits the free counters and is never evicted must be
// exact: running time equals enabled time, raw counts equal the
// kernel's omniscient ground truth, and the estimate is the raw count
// — across rotations and context switches alike.
func TestGroupExactWhenFitsCounters(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	prog := groupProg(space, 400_000,
		[]perfevent.Spec{perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions)})
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	gs := th.Groups()
	if len(gs) != 1 {
		t.Fatalf("got %d groups, want 1", len(gs))
	}
	g := gs[0]
	if g.EnabledCycles == 0 {
		t.Fatal("group accrued no enabled time")
	}
	if g.RunningCycles != g.EnabledCycles {
		t.Errorf("running %d != enabled %d for a group that always fits",
			g.RunningCycles, g.EnabledCycles)
	}
	for i := range g.Events {
		if g.Raw[i] != g.True[i] {
			t.Errorf("event %d raw %d != ground truth %d", i, g.Raw[i], g.True[i])
		}
		if g.Estimate(i) != g.Raw[i] {
			t.Errorf("event %d estimate %d != raw %d for an exact group", i, g.Estimate(i), g.Raw[i])
		}
	}
	if g.Multiplexed() {
		t.Error("fitting group reported as multiplexed")
	}
	if m.Kern.Stats.MuxRotations == 0 {
		t.Error("no rotations fired over a 400k-iteration run")
	}
	// The loop retires ≥ 2 instructions per iteration; the instruction
	// estimate must cover it.
	if est := g.Estimate(1); est < 800_000 {
		t.Errorf("instruction estimate %d < the loop's 800k floor", est)
	}
	// Conservation: enabled time is exactly the scheduled time since
	// open.
	if want := th.Stats.SchedCycles - g.OpenSchedMark; g.EnabledCycles != want {
		t.Errorf("enabled %d != scheduled-since-open %d", g.EnabledCycles, want)
	}
}

// Three two-event groups on a four-counter PMU oversubscribe it: the
// rotation must multiplex them, every group must keep conserving
// enabled time, and the scaled cycle estimates must land near truth
// for a uniform loop.
func TestGroupRotationScalesEstimates(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	two := func(a, b pmu.Event) []perfevent.Spec {
		return []perfevent.Spec{perfevent.UserSpec(a), perfevent.UserSpec(b)}
	}
	prog := groupProg(space, 600_000,
		two(pmu.EvCycles, pmu.EvInstructions),
		two(pmu.EvBranches, pmu.EvBranchMiss),
		two(pmu.EvLoads, pmu.EvStores))
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	if m.Kern.Stats.MuxRotations == 0 {
		t.Fatal("oversubscribed groups but no rotations")
	}
	sawMux := false
	for gi, g := range th.Groups() {
		if want := th.Stats.SchedCycles - g.OpenSchedMark; g.EnabledCycles != want {
			t.Errorf("group %d enabled %d != scheduled-since-open %d", gi, g.EnabledCycles, want)
		}
		if g.RunningCycles > g.EnabledCycles {
			t.Errorf("group %d running %d > enabled %d", gi, g.RunningCycles, g.EnabledCycles)
		}
		if g.Multiplexed() {
			sawMux = true
		}
		if g.RunningCycles == 0 {
			t.Errorf("group %d never loaded", gi)
		}
	}
	if !sawMux {
		t.Error("no group was multiplexed despite 6 events on 4 counters")
	}
	// The uniform loop makes scaled cycle estimates track truth; allow
	// 10% for window placement.
	g := th.Groups()[0]
	est, truth := g.Estimate(0), g.True[0]
	diff := est - truth
	if est < truth {
		diff = truth - est
	}
	if truth == 0 || diff*10 > truth {
		t.Errorf("cycle estimate %d vs truth %d: error above 10%%", est, truth)
	}
}

// Context switches between two group-holding threads must not break
// exactness: park and reload bracket each scheduled span, so a fitting
// group still ends with running == enabled and raw == truth.
func TestGroupExactAcrossContextSwitches(t *testing.T) {
	m := newMachine(1) // one core, two threads: forced preemption traffic
	space := mem.NewSpace()
	prog := groupProg(space, 500_000,
		[]perfevent.Spec{perfevent.UserSpec(pmu.EvInstructions)})
	proc := m.Kern.NewProcess(prog, space)
	a := m.Kern.Spawn(proc, "a", 0, 1)
	bTh := m.Kern.Spawn(proc, "b", 0, 2)
	run(t, m)

	if a.Stats.CtxSwitches == 0 && bTh.Stats.CtxSwitches == 0 {
		t.Fatal("no context switches; test needs preemption traffic")
	}
	for _, th := range []*kernel.Thread{a, bTh} {
		g := th.Groups()[0]
		if g.RunningCycles != g.EnabledCycles {
			t.Errorf("thread %d running %d != enabled %d", th.ID, g.RunningCycles, g.EnabledCycles)
		}
		if g.Raw[0] != g.True[0] {
			t.Errorf("thread %d raw %d != truth %d", th.ID, g.Raw[0], g.True[0])
		}
		if want := th.Stats.SchedCycles - g.OpenSchedMark; g.EnabledCycles != want {
			t.Errorf("thread %d enabled %d != scheduled-since-open %d", th.ID, g.EnabledCycles, want)
		}
	}
}

// Pinned counters outrank groups: a LiMiT open that needs a group-held
// slot forces the whole group to yield (atomic scheduling), degrading
// it to a scaled estimate while the pinned counter stays exact.
func TestPinnedCounterEvictsGroup(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	word := space.AllocWords(1)
	table := perfevent.GroupTable(space, []perfevent.Spec{
		perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions),
		perfevent.UserSpec(pmu.EvBranches), perfevent.UserSpec(pmu.EvLoads),
	})

	b := isa.NewBuilder()
	b.Syscall(kernel.SysLimitInit)
	perfevent.EmitGroupOpen(b, table, 4) // fills all 4 counters
	b.MovImm(isa.R1, 100_000)
	b.MovImm(isa.R2, 0)
	b.Label("warm")
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "warm")
	// LiMiT open wants hardware slot 0 — the group must yield it.
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(word))
	b.Syscall(kernel.SysLimitOpen)
	b.MovImm(isa.R1, 100_000)
	b.MovImm(isa.R2, 0)
	b.Label("work")
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "work")
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	g := th.Groups()[0]
	if g.RunningCycles >= g.EnabledCycles {
		t.Errorf("evicted group not multiplexed: running %d enabled %d",
			g.RunningCycles, g.EnabledCycles)
	}
	if g.RunningCycles == 0 {
		t.Error("group never ran before eviction")
	}
	if want := th.Stats.SchedCycles - g.OpenSchedMark; g.EnabledCycles != want {
		t.Errorf("enabled %d != scheduled-since-open %d", g.EnabledCycles, want)
	}
	// The pinned counter is exact: its virtual word plus remainder is
	// the thread's instruction count over the second loop.
	lim := th.Counters()[0]
	if lim.Kind != kernel.KindLimit {
		t.Fatalf("counter 0 is %v, want limit", lim.Kind)
	}
	if v := space.Read64(word) + lim.Saved; v < 200_000 {
		t.Errorf("limit counter %d < the work loop's 200k floor", v)
	}
}

// Bad group descriptors open nothing, atomically.
func TestGroupOpenValidation(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	// Table with one valid word and one bad event id.
	table := space.AllocWords(2)
	space.Write64(table, perfevent.GroupWord(perfevent.UserSpec(pmu.EvCycles)))
	space.Write64(table+8, uint64(pmu.NumEvents)|uint64(kernel.FlagUser)<<32)

	b := isa.NewBuilder()
	perfevent.EmitGroupOpen(b, table, 2) // bad event in slot 1
	b.Mov(isa.R1, isa.R0)
	b.MovImm(isa.R0, 1)
	b.Syscall(kernel.SysLogValue)
	perfevent.EmitGroupOpen(b, table, 0) // zero events
	b.Mov(isa.R1, isa.R0)
	b.MovImm(isa.R0, 2)
	b.Syscall(kernel.SysLogValue)
	b.MovImm(isa.R0, int64(table))
	b.MovImm(isa.R1, 99) // more events than any PMU has counters
	b.Syscall(kernel.SysGroupOpen)
	b.Mov(isa.R1, isa.R0)
	b.MovImm(isa.R0, 3)
	b.Syscall(kernel.SysLogValue)
	b.Halt()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	for _, e := range m.Kern.Logs() {
		if e.Value != kernel.RetErr {
			t.Errorf("open case %d returned %d, want RetErr", e.Tag, e.Value)
		}
	}
	if len(th.Groups()) != 0 {
		t.Errorf("%d groups opened from invalid descriptors", len(th.Groups()))
	}
}

// Frames: every rotation emits one, sequence numbers strictly
// increase, and a reaped thread leaves a final frame matching its
// group's end state.
func TestGroupFramesEmitted(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	prog := groupProg(space, 400_000,
		[]perfevent.Spec{perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions)},
		[]perfevent.Spec{perfevent.UserSpec(pmu.EvBranches), perfevent.UserSpec(pmu.EvLoads)},
		[]perfevent.Spec{perfevent.UserSpec(pmu.EvStores), perfevent.UserSpec(pmu.EvL1DMiss)})
	proc := m.Kern.NewProcess(prog, space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	frames := m.Kern.Frames()
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want rotations plus a final", len(frames))
	}
	var final *kernel.Frame
	for i := range frames {
		f := &frames[i]
		if i > 0 && f.Seq <= frames[i-1].Seq {
			t.Errorf("frame %d seq %d not increasing after %d", i, f.Seq, frames[i-1].Seq)
		}
		if f.Final {
			final = f
		}
	}
	if final == nil {
		t.Fatal("no final frame for the reaped thread")
	}
	if final.TID != th.ID {
		t.Errorf("final frame TID %d, want %d", final.TID, th.ID)
	}
	gs := th.Groups()
	for _, s := range final.Samples {
		g := gs[s.Group]
		var i int
		for i = range g.Events {
			if g.Events[i] == s.Event {
				break
			}
		}
		if s.Estimate != g.Estimate(i) || s.Enabled != g.EnabledCycles || s.Running != g.RunningCycles {
			t.Errorf("final frame sample %+v disagrees with group end state", s)
		}
	}
}
