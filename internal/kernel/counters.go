package kernel

import "limitsim/internal/pmu"

// flag bits for the perf/limit open syscalls' ring argument.
const (
	// FlagUser counts events in the user ring.
	FlagUser uint64 = 1 << 0
	// FlagKernel counts events in the kernel ring.
	FlagKernel uint64 = 1 << 1
	// FlagEstimated marks a perf counter opened by a degraded access
	// path (the OpenPolicy fallback after slot exhaustion), so host-
	// side readers report its values as estimates rather than exact
	// counts.
	FlagEstimated uint64 = 1 << 2
)

// maxCountersPerThread bounds the multiplexed perf pool (a runaway
// guard; Linux is effectively unbounded).
const maxCountersPerThread = 32

// allocCounter registers a counter with the thread and returns its
// index (the userspace fd / rdpmc slot) or errRet. Pinned kinds
// (LiMiT, sampling) must fit within the PMU's slots because userspace
// encodes the slot number; perf counters may exceed the hardware and
// will be time-multiplexed. Closed entries are reused to preserve
// index stability of the survivors.
func (k *Kernel) allocCounter(coreID int, t *Thread, tc *ThreadCounter) uint64 {
	core := k.cores[coreID]
	ensureSlots(core, t)
	n := core.PMU.NumCounters()
	pinned := tc.Kind != KindPerf

	// Close the current multiplexing span before the new counter
	// enters the table, so its window starts at zero. This also drains
	// any loaded event groups, so a group evicted below loses nothing.
	k.spanClose(core, t)

	idx := -1
	for i, old := range t.counters {
		if old.Closed && (!pinned || i < n) {
			idx = i
			break
		}
	}
	if idx == -1 {
		if pinned && len(t.counters) >= n {
			return RetErr
		}
		if len(t.counters) >= maxCountersPerThread {
			return RetErr
		}
	}
	// Pinned kinds reserve kernel counter state from the slot ledger;
	// denial is transient (slots return when their holders close or
	// exit), so it reports RetAgain rather than RetErr and callers may
	// back off and retry or fall back to the multiplexed perf path. The
	// reservation comes after every permanent-failure check so a denied
	// or failed allocation never holds a slot.
	if pinned && !k.slots.TryAcquire(1) {
		return RetAgain
	}
	if idx == -1 {
		t.counters = append(t.counters, tc)
		idx = len(t.counters) - 1
	} else {
		t.counters[idx] = tc
	}
	tc.HWSlot = -1

	// Load onto hardware immediately when a slot is available; the
	// thread is running here.
	if pinned {
		if t.hwSlots[idx] != -1 {
			// Slot occupied by a floating perf counter: evict it.
			evicted := t.counters[t.hwSlots[idx]]
			evicted.Acc += core.PMU.Read(idx)
			evicted.HWSlot = -1
			t.hwSlots[idx] = -1
		}
		if t.groupSlots != nil && t.groupSlots[idx] != -1 {
			// Slot backs an event group: counters outrank groups, so the
			// whole group yields (atomic scheduling — it loads all slots or
			// none) and waits for the next rotation window.
			k.groupPark(core, t, t.groups[t.groupSlots[idx]])
		}
		k.programSlot(core, t, idx, idx)
		return uint64(idx)
	}
	for slot := 0; slot < n; slot++ {
		if t.hwSlots[slot] == -1 && (t.groupSlots == nil || t.groupSlots[slot] == -1) {
			k.programSlot(core, t, slot, idx)
			break
		}
	}
	return uint64(idx)
}

func (k *Kernel) counterAt(t *Thread, fd uint64) *ThreadCounter {
	if fd >= uint64(len(t.counters)) || t.counters[fd].Closed {
		return nil
	}
	return t.counters[fd]
}

// perfOpen implements SysPerfOpen.
func (k *Kernel) perfOpen(coreID int, t *Thread, event, flags uint64) uint64 {
	if event >= uint64(pmu.NumEvents) {
		return errRet
	}
	if flags&FlagEstimated != 0 && k.metrics != nil {
		k.metrics.DegradedOpens.Inc()
	}
	return k.allocCounter(coreID, t, &ThreadCounter{
		Kind:        KindPerf,
		Event:       pmu.Event(event),
		CountUser:   flags&FlagUser != 0,
		CountKernel: flags&FlagKernel != 0,
		Estimated:   flags&FlagEstimated != 0,
		OverflowBit: -1,
	})
}

// perfRead implements SysPerfRead: the 64-bit virtualized value is the
// kernel accumulator plus the live hardware count. An over-subscribed
// (multiplexed) counter's raw count is scaled by scheduled-time /
// loaded-time, exactly as Linux perf's time_enabled/time_running
// estimate — the estimation error this introduces is measured by the
// multiplexing experiment.
func (k *Kernel) perfRead(coreID int, t *Thread, fd uint64) uint64 {
	tc := k.counterAt(t, fd)
	if tc == nil {
		return errRet
	}
	core := k.cores[coreID]
	raw := tc.Acc
	active, window := tc.ActiveCycles, tc.WindowCycles
	partial := core.Now - t.spanStartAt
	window += partial
	if tc.HWSlot >= 0 {
		raw += core.PMU.Read(tc.HWSlot)
		active += partial
	}
	if active == 0 {
		return 0 // never loaded: nothing measured yet
	}
	if active >= window {
		return raw // fully counted: exact
	}
	return pmu.Scale(raw, window, active)
}

// perfReset implements SysPerfReset.
func (k *Kernel) perfReset(coreID int, t *Thread, fd uint64) {
	tc := k.counterAt(t, fd)
	if tc == nil {
		return
	}
	core := k.cores[coreID]
	k.spanClose(core, t)
	tc.Acc = 0
	tc.ActiveCycles = 0
	tc.WindowCycles = 0
	if tc.HWSlot >= 0 {
		core.PMU.Write(tc.HWSlot, 0)
	}
}

// counterClose disables a counter, freeing its hardware slot.
func (k *Kernel) counterClose(coreID int, t *Thread, fd uint64) {
	tc := k.counterAt(t, fd)
	if tc == nil {
		return
	}
	core := k.cores[coreID]
	k.spanClose(core, t)
	tc.Closed = true
	k.releaseCounter(tc)
	if tc.HWSlot >= 0 {
		core.PMU.Configure(tc.HWSlot, pmu.CounterConfig{Enabled: false, OverflowBit: -1})
		t.hwSlots[tc.HWSlot] = -1
		tc.HWSlot = -1
	}
	if t.sampler == int(fd) {
		t.sampler = -1
	}
}

// limitOverflowBit returns the overflow interrupt position for LiMiT
// counters on the given PMU: the write-width bit when hardware counters
// cannot be fully restored by software writes (the stock-hardware
// case), or -1 with fully writable 64-bit counters (enhancement e1),
// where no folding is ever needed.
func limitOverflowBit(p *pmu.PMU) int {
	f := p.Features()
	if f.WriteWidth >= f.CounterWidth && f.WriteWidth >= 64 {
		return -1
	}
	return f.WriteWidth
}

// limitOpen implements SysLimitOpen.
func (k *Kernel) limitOpen(coreID int, t *Thread, event, flags, tableAddr uint64) uint64 {
	if event >= uint64(pmu.NumEvents) {
		return errRet
	}
	if !t.Proc.AllowRdPMC {
		return errRet // SysLimitInit must come first
	}
	// Zero the user-visible virtual counter.
	t.Proc.Mem.Write64(tableAddr, 0)
	return k.allocCounter(coreID, t, &ThreadCounter{
		Kind:        KindLimit,
		Event:       pmu.Event(event),
		CountUser:   flags&FlagUser != 0,
		CountKernel: flags&FlagKernel != 0,
		TableAddr:   tableAddr,
		OverflowBit: limitOverflowBit(k.cores[coreID].PMU),
	})
}

// sampleStart implements SysSampleStart.
func (k *Kernel) sampleStart(coreID int, t *Thread, event, period uint64) uint64 {
	core := k.cores[coreID]
	if event >= uint64(pmu.NumEvents) || period == 0 || period >= core.PMU.WriteLimit() {
		return errRet
	}
	ob := core.PMU.Features().WriteWidth
	if ob >= 64 {
		ob = 47
	}
	tc := &ThreadCounter{
		Kind:        KindSample,
		Event:       pmu.Event(event),
		CountUser:   true,
		CountKernel: false,
		Period:      period,
		OverflowBit: ob,
		Saved:       (uint64(1) << uint(ob)) - period,
	}
	idx := k.allocCounter(coreID, t, tc)
	if idx < RetAgain {
		t.sampler = int(idx)
	}
	return idx
}

// sampleStop implements SysSampleStop.
func (k *Kernel) sampleStop(coreID int, t *Thread) {
	if t.sampler >= 0 {
		k.counterClose(coreID, t, uint64(t.sampler))
	}
}
