package kernel

import (
	"limitsim/internal/isa"
	"limitsim/internal/trace"
)

// Syscall numbers. Arguments travel in R0..R3, the result in R0.
const (
	// SysYield voluntarily ends the time slice.
	SysYield int64 = iota
	// SysGetTID returns the thread ID.
	SysGetTID
	// SysLogValue records (tag=R0, value=R1) in the kernel log for
	// host-side inspection.
	SysLogValue
	// SysNanosleep blocks for R0 cycles.
	SysNanosleep
	// SysFutexWait blocks while mem64[R0] == R1; returns 0 when woken,
	// 1 when the value already differed.
	SysFutexWait
	// SysFutexWake wakes up to R1 waiters on mem64[R0]; returns the
	// count woken.
	SysFutexWake
	// SysSigaction installs handler PC R1 for signal R0 (process-wide).
	SysSigaction

	// SysPerfOpen allocates a perf-style counter for event R0 with ring
	// flags R1 (bit0 user, bit1 kernel); returns the fd or ^0.
	SysPerfOpen
	// SysPerfRead returns the 64-bit virtualized value of counter fd R0.
	SysPerfRead
	// SysPerfReset zeroes counter fd R0.
	SysPerfReset
	// SysPerfClose releases counter fd R0.
	SysPerfClose

	// SysLimitInit enables userspace rdpmc for the calling process (the
	// LiMiT kernel patch's CR4.PCE bit).
	SysLimitInit
	// SysLimitOpen allocates a LiMiT counter for event R0 with ring
	// flags R1, using the user-memory 64-bit virtual counter at address
	// R2; returns the hardware counter index or ^0.
	SysLimitOpen
	// SysLimitRegisterFixup registers the read-critical PC range
	// [R0, R1) for the calling process.
	SysLimitRegisterFixup
	// SysLimitClose releases LiMiT counter index R0.
	SysLimitClose

	// SysIO performs a modeled blocking I/O write of R0 bytes: a
	// kernel-heavy operation (copy + device queueing) whose cost scales
	// with the byte count. Returns the byte count. Workload models use
	// it for socket/file traffic (the Apache case study's dominant
	// kernel time).
	SysIO

	// SysSpawn creates a new thread in the calling process starting at
	// entry PC R0, with tls.SlotReg-convention register R14 set to R1
	// and RNG seeded from R2. Returns the new thread's ID.
	SysSpawn
	// SysJoin blocks until thread R0 terminates; returns 0, or ^0 for
	// an unknown thread ID.
	SysJoin

	// SysSampleStart begins sampled profiling of event R0 with period
	// R1 on the calling thread; returns the counter index or ^0.
	SysSampleStart
	// SysSampleStop ends sampled profiling.
	SysSampleStop

	// SysClone creates a new thread at entry PC R0 with R14 = R1 and
	// RNG seeded from R2, like SysSpawn — but the child *inherits* the
	// caller's open counters: same events, rings, and kinds, with values
	// starting from zero so parent and child deltas fold without double
	// counting. R3 supplies the base of the child's virtual-counter
	// table for inherited LiMiT counters (word i backs counter i); 0
	// lets the kernel allocate backing words instead. The parent
	// receives the child TID (or RetErr for a bad entry PC). The child
	// starts with R0 = 0 when inheritance is exact, or 1 when PMU-slot
	// exhaustion degraded its counters to multiplexed perf estimates.
	SysClone
	// SysExit terminates the calling thread through the full teardown
	// path: its counters are virtualized one final time (a LiMiT
	// counter's value remains table word + saved remainder, as for any
	// descheduled thread), then every resource the thread holds —
	// pinned counter slots, kernel-allocated table words, fixup-region
	// registrations — is reclaimed.
	SysExit

	// SysGroupOpen opens an event group atomically: R0 is the address of
	// a descriptor table (one word per event: event id in the low 32
	// bits, ring flags in the high 32), R1 the event count. The group's
	// events schedule onto hardware together or not at all and rotate
	// with the other groups on the kernel's rotation quantum. Returns
	// the group id or ^0. Groups are not inherited across SysClone.
	SysGroupOpen
	// SysGroupRead returns the scaled estimate (raw × enabled/running,
	// 128-bit integer arithmetic) of event index R1 in group R0.
	SysGroupRead
	// SysGroupClose stops group R0; its values freeze for host reads.
	SysGroupClose

	numSyscalls
)

// Syscall error returns. RetErr is a permanent failure. RetAgain
// signals transient resource exhaustion (the pinned-counter slot
// ledger is full): the caller may back off and retry, or fall back to
// a degraded access path — generated code materializes the sentinels
// with MovImm(reg, -1) and MovImm(reg, -2).
const (
	RetErr   = ^uint64(0)
	RetAgain = ^uint64(0) - 1
)

const errRet = RetErr

// syscall dispatches a trap. The calling thread is current on coreID
// and its PC already points past the syscall instruction.
func (k *Kernel) syscall(coreID int, t *Thread, num int64) {
	core := k.cores[coreID]
	c := k.cfg.Costs
	core.KernelWork(c.SyscallEntry)
	t.Stats.Syscalls++
	k.Stats.Syscalls++
	if k.metrics != nil {
		k.metrics.Syscalls.Inc()
	}
	k.tr(coreID, t, trace.Syscall, uint64(num))

	regs := &t.Ctx.Regs
	switch num {
	case SysYield:
		core.KernelWork(c.Simple)
		k.deschedule(coreID, t)
		t.State = StateReady
		t.ReadyAt = core.Now
		k.runq[coreID] = append(k.runq[coreID], t)

	case SysGetTID:
		core.KernelWork(c.Simple)
		regs[isa.R0] = uint64(t.ID)

	case SysLogValue:
		core.KernelWork(c.Simple)
		k.logs = append(k.logs, LogEntry{
			TID: t.ID, Tag: regs[isa.R0], Value: regs[isa.R1], Cycle: core.Now,
		})

	case SysNanosleep:
		core.KernelWork(c.Nanosleep)
		dur := regs[isa.R0]
		k.block(coreID, t, StateSleeping)
		t.WakeAt = core.Now + dur
		k.sleepers = append(k.sleepers, t)
		if t.WakeAt < k.minWake {
			k.minWake = t.WakeAt
		}

	case SysFutexWait:
		core.KernelWork(c.Futex)
		addr, expected := regs[isa.R0], regs[isa.R1]
		if t.Proc.Mem.Read64(addr) != expected {
			regs[isa.R0] = 1
			break
		}
		key := futexKey{proc: t.Proc.ID, addr: addr}
		k.block(coreID, t, StateBlocked)
		k.futexes[key] = append(k.futexes[key], t)

	case SysFutexWake:
		core.KernelWork(c.Futex)
		addr, maxWake := regs[isa.R0], regs[isa.R1]
		key := futexKey{proc: t.Proc.ID, addr: addr}
		waiters := k.futexes[key]
		n := uint64(0)
		for n < maxWake && len(waiters) > 0 {
			w := waiters[0]
			waiters = waiters[1:]
			k.wake(w, core.Now)
			n++
		}
		if len(waiters) == 0 {
			delete(k.futexes, key)
		} else {
			k.futexes[key] = waiters
		}
		regs[isa.R0] = n

	case SysSigaction:
		core.KernelWork(c.Sigaction)
		t.Proc.handlers[int(regs[isa.R0])] = int(regs[isa.R1])

	case SysPerfOpen:
		core.KernelWork(c.PerfOpen)
		regs[isa.R0] = k.perfOpen(coreID, t, regs[isa.R0], regs[isa.R1])
	case SysPerfRead:
		core.KernelWork(c.PerfRead)
		regs[isa.R0] = k.perfRead(coreID, t, regs[isa.R0])
	case SysPerfReset:
		core.KernelWork(c.PerfReset)
		k.perfReset(coreID, t, regs[isa.R0])
	case SysPerfClose:
		core.KernelWork(c.PerfClose)
		k.counterClose(coreID, t, regs[isa.R0])

	case SysLimitInit:
		core.KernelWork(c.LimitInit)
		t.Proc.AllowRdPMC = true
		t.Ctx.AllowRdPMC = true
	case SysLimitOpen:
		core.KernelWork(c.LimitOpen)
		r := k.limitOpen(coreID, t, regs[isa.R0], regs[isa.R1], regs[isa.R2])
		if r == RetAgain && k.metrics != nil {
			k.metrics.LimitOpenAgain.Inc()
		}
		regs[isa.R0] = r
	case SysLimitRegisterFixup:
		core.KernelWork(c.LimitFixup)
		k.addRegionRef(t, int(regs[isa.R0]), int(regs[isa.R1]))
	case SysLimitClose:
		core.KernelWork(c.Simple)
		k.counterClose(coreID, t, regs[isa.R0])

	case SysIO:
		bytes := regs[isa.R0]
		if bytes > 1<<20 {
			bytes = 1 << 20
		}
		core.KernelWork(c.IOBase + bytes/16)
		k.kernDataBase += 64
		core.KernelCachePollution(k.kernDataBase, int(bytes/256)+4)

	case SysSpawn:
		core.KernelWork(c.Spawn)
		entry := int(regs[isa.R0])
		if entry < 0 || entry >= t.Proc.Prog.Len() {
			regs[isa.R0] = errRet
			break
		}
		nt := k.Spawn(t.Proc, t.Name+"+", entry, regs[isa.R2])
		nt.Ctx.Regs[isa.R14] = regs[isa.R1]
		nt.ReadyAt = core.Now
		regs[isa.R0] = uint64(nt.ID)

	case SysJoin:
		core.KernelWork(c.Simple)
		tid := regs[isa.R0]
		if tid == 0 || tid > uint64(len(k.threads)) {
			regs[isa.R0] = errRet
			break
		}
		target := k.threads[tid-1]
		if target == t {
			regs[isa.R0] = errRet // self-join would deadlock
			break
		}
		if target.State == StateDone {
			regs[isa.R0] = 0
			break
		}
		k.block(coreID, t, StateBlocked)
		target.joiners = append(target.joiners, t)
		regs[isa.R0] = 0

	case SysSampleStart:
		core.KernelWork(c.SampleStart)
		regs[isa.R0] = k.sampleStart(coreID, t, regs[isa.R0], regs[isa.R1])
	case SysSampleStop:
		core.KernelWork(c.SampleStop)
		k.sampleStop(coreID, t)

	case SysClone:
		cloneStart := core.Now
		core.KernelWork(c.Clone)
		regs[isa.R0] = k.clone(coreID, t,
			int(regs[isa.R0]), regs[isa.R1], regs[isa.R2], regs[isa.R3])
		if k.metrics != nil {
			k.metrics.CloneCycles.Observe(core.Now - cloneStart)
		}

	case SysExit:
		core.KernelWork(c.Exit)
		k.exitThread(coreID, t, exitVoluntary)
		return

	case SysGroupOpen:
		core.KernelWork(c.GroupOpen)
		regs[isa.R0] = k.groupOpen(coreID, t, regs[isa.R0], regs[isa.R1])
	case SysGroupRead:
		core.KernelWork(c.GroupRead)
		regs[isa.R0] = k.groupRead(coreID, t, regs[isa.R0], regs[isa.R1])
	case SysGroupClose:
		core.KernelWork(c.Simple)
		regs[isa.R0] = k.groupClose(coreID, t, regs[isa.R0])

	default:
		k.faultThread(coreID, t, "unknown syscall "+itoa(num))
		return
	}

	core.KernelWork(c.SyscallExit)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
