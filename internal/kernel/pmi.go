package kernel

import "limitsim/internal/trace"

// handlePMI services counter-overflow interrupts raised on coreID.
// mask is the bitmask of overflowed hardware counters, which map 1:1 to
// the current thread's counter table. Overflow semantics per kind:
//
//   - LiMiT (FoldInKernel): fold one write-limit chunk into the 64-bit
//     virtual counter in user memory and subtract it from the hardware
//     counter, keeping the hardware value restorable. Then apply the
//     PC-rewind fixup: if the interrupt landed inside a read-critical
//     region, the in-flight read must restart or it would combine a
//     pre-fold hardware value with a post-fold virtual counter.
//   - LiMiT (SignalUser): subtract the chunk from the hardware counter
//     and post SIGPMU; the userspace handler performs the fold.
//   - Sampling: record (tid, pc, cycle) and re-arm the counter at
//     threshold−period.
//   - Perf: overflow interrupts are not programmed; a stray one is
//     ignored.
func (k *Kernel) handlePMI(coreID int, mask uint64) {
	core := k.cores[coreID]
	t := k.cur[coreID]
	core.KernelWork(k.cfg.Costs.PMIHandler)
	k.Stats.PMIs++
	if k.metrics != nil {
		k.metrics.PMIs.Inc()
	}
	k.tr(coreID, t, trace.PMI, mask)
	if t == nil {
		// Stray interrupt with no owner; nothing to virtualize, but the
		// interrupt was serviced, so its latency marks must not linger.
		k.observePMIService(coreID, mask)
		return
	}
	k.pmiFor(coreID, t, mask)
	k.applyFixup(t)
}

// pmiFor performs the per-counter overflow work for thread t, which
// owns the core's current counter programming. The interrupt mask is
// in hardware-slot space; slots are translated to the thread's counter
// table through its slot map.
func (k *Kernel) pmiFor(coreID int, t *Thread, mask uint64) {
	core := k.cores[coreID]
	k.observePMIService(coreID, mask)
	for slot := 0; mask != 0; slot, mask = slot+1, mask>>1 {
		if mask&1 == 0 {
			continue
		}
		ci := -1
		if t.hwSlots != nil && slot < len(t.hwSlots) {
			ci = t.hwSlots[slot]
		}
		if ci < 0 || ci >= len(t.counters) || t.counters[ci].Closed {
			continue
		}
		tc := t.counters[ci]
		switch tc.Kind {
		case KindLimit:
			chunk := core.PMU.WriteLimit()
			v := core.PMU.Read(slot)
			if v < chunk {
				continue // already folded (e.g. by a racing save)
			}
			// A single large event batch can cross the threshold by
			// several chunks; fold them all, or the width-restricted
			// Write below would silently truncate the remainder.
			for v >= chunk {
				v -= chunk
				tc.Overflows++
				k.Stats.OverflowFolds++
				if k.metrics != nil {
					k.metrics.Folds.Inc()
				}
				core.KernelWork(k.cfg.Costs.OverflowFold)
				if k.cfg.LimitOverflow == FoldInKernel {
					t.Proc.Mem.Add64(tc.TableAddr, chunk)
					k.probeFold(coreID, t, tc, chunk)
				} else {
					k.post(t, SIGPMU, uint64(ci))
				}
			}
			core.PMU.Write(slot, v)
		case KindSample:
			k.samples = append(k.samples, Sample{TID: t.ID, PC: t.Ctx.PC, Cycle: core.Now})
			core.KernelWork(k.cfg.Costs.SampleRecord)
			threshold := uint64(1) << uint(tc.OverflowBit)
			// Jitter the re-arm point (as perf does) so periodic code
			// cannot phase-lock with the sampling period and alias.
			jitter := k.rand() % (tc.Period/8 + 1)
			core.PMU.Write(slot, threshold-tc.Period+jitter)
			tc.Overflows++
		case KindPerf:
			// not programmed for overflow; ignore
		}
	}
}
