package kernel_test

import (
	"bytes"
	"regexp"
	"sort"
	"testing"

	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/pmu"
	"limitsim/internal/telemetry"
)

// computeLoop emits a self-contained compute loop at a fresh label and
// returns its entry PC.
func computeLoop(b *isa.Builder, name string, iters, k int64) int {
	entry := b.PC()
	b.Label(name)
	b.MovImm(isa.R8, 0)
	b.Label(name + ".loop")
	b.Compute(k)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, iters)
	b.Br(isa.CondLT, isa.R8, isa.R9, name+".loop")
	b.Halt()
	return entry
}

// TestTenantTimeSharing runs two tenants' threads on one core under a
// short tenant quantum: the guest scheduler must rotate them (double
// context switches observed), charge each tenant resident cycles and
// instructions, and conserve the instruction attribution exactly
// against the machine's user-ring ground truth.
func TestTenantTimeSharing(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.Tenants = 2
	kcfg.TenantQuantum = 2_000
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg, Uncore: true})

	b := isa.NewBuilder()
	entryA := computeLoop(b, "a", 300, 40)
	entryB := computeLoop(b, "b", 300, 40)
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "t0", entryA, 1)
	tb := m.Kern.Spawn(proc, "t1", entryB, 2)
	tb.Tenant = 1

	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if m.Kern.Stats.VCpuSwitches < 2 {
		t.Fatalf("VCpuSwitches = %d, want >= 2 (both tenants must become resident)", m.Kern.Stats.VCpuSwitches)
	}
	if m.Kern.Stats.TenantPreemptions == 0 {
		t.Error("no tenant-quantum preemptions on a contended core")
	}

	accts := m.Kern.TenantAccts()
	if len(accts) != 2 {
		t.Fatalf("TenantAccts returned %d entries, want 2", len(accts))
	}
	var instrSum, estSum uint64
	for _, a := range accts {
		if a.Instructions == 0 || a.Cycles == 0 {
			t.Errorf("tenant %d ledger empty: %+v", a.ID, a)
		}
		if a.Resumes == 0 {
			t.Errorf("tenant %d never resumed", a.ID)
		}
		instrSum += a.Instructions
		estSum += a.UncoreEst
	}
	if gt := m.GroundTruthRing(pmu.EvInstructions, pmu.RingUser); instrSum != gt {
		t.Errorf("tenant ledgers sum to %d instructions, machine retired %d", instrSum, gt)
	}
	if ut := m.Kern.UncoreTotal(); estSum != ut {
		t.Errorf("uncore estimates sum to %d, socket counted %d", estSum, ut)
	}

	chk := invariant.New(nil)
	chk.CheckTenants(accts, m.GroundTruthRing(pmu.EvInstructions, pmu.RingUser),
		m.Kern.UncoreTotal(), m.Kern.Threads())
	for _, v := range chk.Violations() {
		t.Errorf("tenant oracle violation: %v", v)
	}
}

// TestTenantAcctsOffLayer: with the tenant layer off, the accounting
// surface reports nil/zero rather than inventing a tenant.
func TestTenantAcctsOffLayer(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	if accts := m.Kern.TenantAccts(); accts != nil {
		t.Errorf("TenantAccts = %v with the layer off, want nil", accts)
	}
	if ut := m.Kern.UncoreTotal(); ut != 0 {
		t.Errorf("UncoreTotal = %d with the layer off, want 0", ut)
	}
	// SetTenantMetrics must be a tolerated no-op, not a panic.
	m.Kern.SetTenantMetrics(nil)
}

// TestTenantResidencyCapMigrates caps each tenant at one resident vCPU
// on a two-core machine with two threads per tenant: the second thread
// of a saturated tenant cannot claim a second core, so the scheduler
// must migrate it to where its tenant is already resident — and the
// attribution must stay exact through the moves.
func TestTenantResidencyCapMigrates(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.Tenants = 2
	kcfg.TenantQuantum = 2_000
	kcfg.VCPUs = 1
	m := machine.New(machine.Config{NumCores: 2, Kernel: kcfg, Uncore: true})

	b := isa.NewBuilder()
	entries := []int{
		computeLoop(b, "a0", 200, 30),
		computeLoop(b, "a1", 200, 30),
		computeLoop(b, "b0", 200, 30),
		computeLoop(b, "b1", 200, 30),
	}
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	for i, e := range entries {
		th := m.Kern.Spawn(proc, "w", e, uint64(i+1))
		th.Tenant = i / 2
	}

	res := m.Run(machine.RunLimits{MaxSteps: 20_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}
	if m.Kern.Stats.VCpuMigrations == 0 {
		t.Error("residency cap 1 on 2 cores produced no vCPU migrations")
	}

	accts := m.Kern.TenantAccts()
	chk := invariant.New(nil)
	chk.CheckTenants(accts, m.GroundTruthRing(pmu.EvInstructions, pmu.RingUser),
		m.Kern.UncoreTotal(), m.Kern.Threads())
	for _, v := range chk.Violations() {
		t.Errorf("tenant oracle violation after migrations: %v", v)
	}
}

// TestSignalDeliveryInsideFixupRegionDuringMigration lands a signal at
// every PC of the read-critical region on a thread that is being
// bounced between cores: delivery is held until the thread has
// migrated at least once and sits exactly at the target PC, so the
// saved-frame fixup runs on a core the thread was not born on, right
// after a migration. Measurements must stay exact and the checker
// silent — migration adds a third reason to leave the core, not a
// third mechanism.
func TestSignalDeliveryInsideFixupRegionDuringMigration(t *testing.T) {
	probe := buildSignalSweepWorkload()
	if len(probe.regions) == 0 {
		t.Fatal("workload emitted no read-critical regions")
	}
	for _, region := range probe.regions {
		for pc := region[0]; pc < region[1]; pc++ {
			w := buildSignalSweepWorkload()
			feats := pmu.DefaultFeatures()
			feats.WriteWidth = 9
			m := machine.New(machine.Config{NumCores: 2, PMU: feats, Kernel: kernel.DefaultConfig()})

			target := pc
			migrations := 0
			boundaries := 0
			m.Kern.SetChaos(&kernel.Chaos{
				// A periodic forced preemption whose re-enqueue is always
				// redirected to the other core: a migration storm.
				PreemptAfter: func(coreID int, th *kernel.Thread) bool {
					boundaries++
					return boundaries%13 == 0
				},
				Place: func(th *kernel.Thread, def int) int {
					migrations++
					return (def + 1) % 2
				},
				// Deliver only post-migration, exactly at the target PC.
				HoldSignal: func(coreID int, th *kernel.Thread) bool {
					return migrations == 0 || th.Ctx.PC != target
				},
			})
			chk := invariant.New(w.regions)
			chk.Attach(m.Kern)

			proc := m.Kern.NewProcess(w.prog, w.space)
			th := m.Kern.Spawn(proc, "sig", 0, 5)
			m.Kern.PostSignal(th, 1, 0)

			res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
			if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
				t.Fatalf("pc %d: run failed: %+v", pc, res)
			}
			if th.Stats.Signals != 1 {
				t.Fatalf("pc %d: %d signals delivered, want 1", pc, th.Stats.Signals)
			}
			if migrations == 0 {
				t.Fatalf("pc %d: delivery was not preceded by a migration", pc)
			}

			chk.Finalize(proc, m.Kern.Threads(), 0)
			for _, v := range chk.Violations() {
				t.Errorf("pc %d: invariant violation: %v", pc, v)
			}
			if chk.ReadsCompleted == 0 {
				t.Fatalf("pc %d: checker observed no completed reads", pc)
			}
			for i := 0; i < sigSweepIters; i++ {
				d := w.space.Read64(w.buf + uint64(i)*8)
				if d < w.want || d > w.want+128 {
					t.Errorf("pc %d: delta[%d] = %d outside [%d,%d]",
						pc, i, d, w.want, w.want+128)
				}
			}
		}
	}
}

// TestTenantMetricsCanonicalOrder is the golden test for the per-tenant
// telemetry surface: NewTenantMetrics must register names so that
// registration order (which is render order) equals canonical sorted
// order — the property fleet-mode merges of tenant campaigns rely on.
func TestTenantMetricsCanonicalOrder(t *testing.T) {
	reg := telemetry.NewRegistry()
	tm := kernel.NewTenantMetrics(reg, 3)
	tm.Instructions[1].Add(7)
	tm.Preempts[2].Inc()

	var buf bytes.Buffer
	reg.Render(&buf)
	names := regexp.MustCompile(`(?m)^(tenant\.[0-9]{2}\.[a-z.]+)`).FindAllString(buf.String(), -1)

	want := []string{
		"tenant.00.cycles.resident",
		"tenant.00.instructions",
		"tenant.00.vcpu.migrations",
		"tenant.00.vcpu.preempts",
		"tenant.01.cycles.resident",
		"tenant.01.instructions",
		"tenant.01.vcpu.migrations",
		"tenant.01.vcpu.preempts",
		"tenant.02.cycles.resident",
		"tenant.02.instructions",
		"tenant.02.vcpu.migrations",
		"tenant.02.vcpu.preempts",
	}
	if len(names) != len(want) {
		t.Fatalf("rendered %d tenant metrics, want %d:\n%s", len(names), len(want), buf.String())
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("rendered[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("tenant metric render order is not canonically sorted: %v", names)
	}
}
