package kernel_test

import (
	"testing"

	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
)

// closeProg opens one group, busy-loops long enough for rotations to
// fire, closes the group, then runs a tail far shorter than the mux
// quantum before halting — so the only frames after the close syscall
// are the close snapshot itself and the reap-time final.
func closeProg(space *mem.Space, iters, tail int64) *isa.Program {
	b := isa.NewBuilder()
	table := perfevent.GroupTable(space, []perfevent.Spec{
		perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions)})
	perfevent.EmitGroupOpen(b, table, 2)
	b.MovImm(isa.R1, iters)
	b.MovImm(isa.R2, 0)
	b.Label("loop")
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "loop")
	b.MovImm(isa.R0, 0) // gid 0
	b.Syscall(kernel.SysGroupClose)
	b.MovImm(isa.R1, tail)
	b.Label("tail")
	b.AddImm(isa.R1, isa.R1, -1)
	b.Br(isa.CondNE, isa.R1, isa.R2, "tail")
	b.Halt()
	return b.MustBuild()
}

// tidFrames filters the kernel frame log to one thread.
func tidFrames(k *kernel.Kernel, tid int) []kernel.Frame {
	var out []kernel.Frame
	for _, f := range k.Frames() {
		if f.TID == tid {
			out = append(out, f)
		}
	}
	return out
}

// Closing a group snapshots it immediately: the frame stream must
// carry a non-final frame at the close instant whose samples already
// equal the frozen end state the final reap frame reports — without
// it, a mid-run close would smear the group's last counts into
// whichever window the next rotation lands in.
func TestGroupCloseEmitsFrame(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	proc := m.Kern.NewProcess(closeProg(space, 200_000, 100), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	run(t, m)

	g := th.Groups()[0]
	if !g.Closed {
		t.Fatal("group not closed")
	}
	frames := tidFrames(m.Kern, th.ID)
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want rotations + close + final", len(frames))
	}
	final := frames[len(frames)-1]
	if !final.Final {
		t.Fatal("last frame not final")
	}
	closeFrame := frames[len(frames)-2]
	if closeFrame.Final {
		t.Fatal("no distinct close-instant frame before the final")
	}
	if len(closeFrame.Samples) != len(final.Samples) {
		t.Fatalf("close frame %d samples, final %d", len(closeFrame.Samples), len(final.Samples))
	}
	for i, s := range closeFrame.Samples {
		if s != final.Samples[i] {
			t.Errorf("sample %d changed after close: close %+v, final %+v", i, s, final.Samples[i])
		}
		if s.Enabled != g.EnabledCycles || s.Estimate != g.Estimate(i) {
			t.Errorf("close frame sample %d %+v disagrees with frozen group state", i, s)
		}
	}
	if closeFrame.Cycle > final.Cycle {
		t.Errorf("close frame cycle %d after final %d", closeFrame.Cycle, final.Cycle)
	}

	chk := invariant.New(nil)
	chk.CheckGroups(m.Kern)
	for _, v := range chk.Violations() {
		t.Errorf("violation: %v", v)
	}
}

// spinProg opens one group and loops forever — the run only ends when
// a limit truncates it.
func spinProg(space *mem.Space) *isa.Program {
	b := isa.NewBuilder()
	table := perfevent.GroupTable(space, []perfevent.Spec{
		perfevent.UserSpec(pmu.EvCycles), perfevent.UserSpec(pmu.EvInstructions)})
	perfevent.EmitGroupOpen(b, table, 2)
	b.MovImm(isa.R1, 1)
	b.MovImm(isa.R2, 0)
	b.Label("loop")
	b.Br(isa.CondNE, isa.R1, isa.R2, "loop")
	b.Halt()
	return b.MustBuild()
}

// A run truncated by a cycle limit must still end every live thread's
// frame stream with a final frame carrying its complete cumulative
// state — FlushFrames' contract. Two spinners on one core exercise
// both flush paths: the running thread (own core clock) and the
// descheduled one (stamped at the most advanced clock so per-thread
// frame cycles stay non-decreasing).
func TestFlushFramesOnTruncatedRun(t *testing.T) {
	m := newMachine(1)
	space := mem.NewSpace()
	proc := m.Kern.NewProcess(spinProg(space), space)
	a := m.Kern.Spawn(proc, "a", 0, 1)
	bth := m.Kern.Spawn(proc, "b", 0, 1)
	res := m.Run(machine.RunLimits{MaxCycles: 900_000})
	if res.AllDone {
		t.Fatal("spinners finished; the truncation did not truncate")
	}
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}

	for _, th := range []*kernel.Thread{a, bth} {
		frames := tidFrames(m.Kern, th.ID)
		if len(frames) == 0 {
			t.Fatalf("thread %d left no frames", th.ID)
		}
		final := frames[len(frames)-1]
		if !final.Final {
			t.Errorf("thread %d stream does not end in a final frame", th.ID)
		}
		g := th.Groups()[0]
		for i, s := range final.Samples {
			if s.Estimate != g.Estimate(i) || s.Enabled != g.EnabledCycles || s.Running != g.RunningCycles {
				t.Errorf("thread %d final sample %d %+v disagrees with live group state", th.ID, i, s)
			}
		}
		for i := 1; i < len(frames); i++ {
			if frames[i].Cycle < frames[i-1].Cycle {
				t.Errorf("thread %d frame cycles regress: %d after %d", th.ID, frames[i].Cycle, frames[i-1].Cycle)
			}
		}
	}

	chk := invariant.New(nil)
	chk.CheckGroups(m.Kern)
	for _, v := range chk.Violations() {
		t.Errorf("violation: %v", v)
	}
}
