package kernel

import "limitsim/internal/isa"

// This file is the kernel's instrumentation surface for the chaos
// harness: a fault-injection hook set (Chaos) that lets a driver bend
// scheduling, interrupt delivery and placement decisions at every
// instruction boundary, and an observation hook set (Probes) that lets
// an invariant checker watch the exact events — folds, rewinds,
// switches — whose interleaving LiMiT's fixup protocol must survive.
//
// Both are structs of optional funcs rather than interfaces so a
// driver installs only the hooks it needs; every call site nil-checks.
// Hooks run synchronously inside the deterministic event loop, so an
// attached injector is part of the simulation: same seed, same chaos,
// same run, bit for bit.

// Chaos is the fault-injection hook set. All hooks are optional.
type Chaos struct {
	// PreemptAfter is consulted after every retired instruction while
	// t is still current on coreID; returning true forces an immediate
	// involuntary context switch, exactly as an adversarial timer
	// interrupt would. The thread's PC (t.Ctx.PC) is already advanced
	// past the retired instruction.
	PreemptAfter func(coreID int, t *Thread) bool

	// FilterPMI intercepts the pending-overflow mask taken at an
	// instruction boundary before the kernel services it. The returned
	// mask is what gets serviced now: clearing bits delays those
	// interrupts (the injector must hand them back via DrainPMI or a
	// later FilterPMI call), setting extra bits injects spurious
	// interrupts for counters that did not overflow (the handler
	// tolerates them, as real PMI handlers must).
	FilterPMI func(coreID int, t *Thread, mask uint64) uint64

	// DrainPMI is called when t is about to leave coreID; it must
	// return every overflow bit the injector is still withholding for
	// this thread, so delayed interrupts are serviced for their
	// rightful owner instead of leaking to the next thread.
	DrainPMI func(coreID int, t *Thread) uint64

	// Place overrides the core a ready thread is enqueued on (wakes
	// and forced preemptions). def is the scheduler's own choice;
	// return a valid core index to redirect, or a negative value to
	// keep def. Migration storms live here.
	Place func(t *Thread, def int) int

	// HoldSignal defers pending-signal delivery to t at this return-
	// to-user boundary; delivery is retried at every subsequent
	// boundary until the hook relents.
	HoldSignal func(coreID int, t *Thread) bool

	// FlushAfter, when it returns true, flushes coreID's TLB and
	// entire cache hierarchy after the instruction that just retired —
	// the worst-case memory-system perturbation a migration or a
	// hostile neighbor could cause.
	FlushAfter func(coreID int, t *Thread) bool

	// CloneAfter is consulted after every retired instruction while t
	// is still current; returning (entry, true) forces t to clone a
	// child starting at entry, as if it had issued SysClone at this
	// boundary. The child inherits t's counters and region holds, its
	// R14 copies the parent's, its seed derives from the kernel RNG,
	// and its LiMiT table words are kernel-allocated. Clone storms
	// stress inheritance and slot churn at arbitrary points, including
	// mid-read-sequence.
	CloneAfter func(coreID int, t *Thread) (entry int, ok bool)

	// KillAfter is consulted after every retired instruction while t is
	// still current; returning true forcibly terminates the thread at
	// this boundary, as an asynchronous kill would. The kernel runs the
	// full exit path — counters virtualized and folded, every held
	// resource reclaimed — no matter where the thread was, including
	// mid-read-sequence.
	KillAfter func(coreID int, t *Thread) bool

	// VCpuPreemptAfter is consulted after every retired instruction
	// while t is still current and the tenant layer is active;
	// returning true forces a tenant-level (vCPU) preemption at this
	// boundary regardless of the tenant quantum — the double context
	// switch, landable anywhere, including mid-read-sequence. Ignored
	// when Config.Tenants <= 1.
	VCpuPreemptAfter func(coreID int, t *Thread) bool
}

// Probes is the observation hook set. All hooks are optional; none may
// mutate simulation state (they run inside the event loop and any
// side effect would perturb the run they are watching).
type Probes struct {
	// Step fires after each core.Step, before trap handling and
	// interrupt service: prevPC is the PC the retired instruction was
	// fetched from, pc the architectural PC after it (branch targets
	// included, rewinds not yet applied).
	Step func(coreID int, t *Thread, prevPC, pc int)

	// Fold fires once per write-limit chunk folded from a LiMiT
	// hardware counter into its user-memory virtual counter, whether
	// by the PMI handler or by the deschedule save path.
	Fold func(coreID int, t *Thread, tc *ThreadCounter, chunk uint64)

	// Rewind fires when the fixup patch rewinds a thread's PC (or its
	// saved signal frame's PC) from `from` to region start `to`.
	Rewind func(t *Thread, from, to int)

	// SwitchOut fires after t's counters have been virtualized on its
	// way off a core — the point where Saved/virtual-counter state
	// must be consistent.
	SwitchOut func(coreID int, t *Thread)

	// Clone fires after a child thread's counter inheritance is
	// complete, before the child first runs. degraded reports that
	// slot exhaustion downgraded the child's counters to multiplexed
	// perf estimates.
	Clone func(coreID int, parent, child *Thread, degraded bool)

	// Reap fires after an exiting thread's resources — slot
	// reservations, kernel table words, region holds — have been
	// reclaimed. The thread's counter values are still intact (table
	// word + Saved), so checkers capture final values here, before any
	// later thread recycles a shared table word.
	Reap func(coreID int, t *Thread)
}

// SetChaos attaches a fault-injection hook set (nil detaches).
func (k *Kernel) SetChaos(c *Chaos) {
	k.chaos = c
	k.refreshSlowStep()
}

// SetProbes attaches an observation hook set (nil detaches).
func (k *Kernel) SetProbes(p *Probes) {
	k.probes = p
	k.refreshSlowStep()
}

func (k *Kernel) refreshSlowStep() {
	k.slowStep = k.chaos != nil || k.probes != nil || k.ts != nil
}

// chaosPreempt asks the injector whether to force-preempt the current
// thread on coreID and performs the preemption if so. Unlike the timer
// path it does not require waiting threads: an adversarial interrupt
// can land on a lone thread, round-tripping it through the full
// deschedule/reschedule machinery (and its fixup) at any boundary.
func (k *Kernel) chaosPreempt(coreID int) {
	t := k.cur[coreID]
	if t == nil || k.chaos == nil || k.chaos.PreemptAfter == nil || !k.chaos.PreemptAfter(coreID, t) {
		return
	}
	t.Stats.Preemptions++
	k.Stats.Preemptions++
	k.deschedule(coreID, t)
	t.State = StateReady
	t.ReadyAt = k.cores[coreID].Now
	core := coreID
	if k.chaos.Place != nil {
		if c := k.chaos.Place(t, core); c >= 0 && c < len(k.cores) {
			core = c
		}
	}
	k.runq[core] = append(k.runq[core], t)
}

// chaosClone asks the injector whether to force a clone at this
// boundary and performs it. The forced child behaves exactly like a
// SysClone child with a kernel-allocated virtual-counter table; only
// its entry PC (the injector's choice) and its seed (kernel RNG)
// differ from what the parent would have passed.
func (k *Kernel) chaosClone(coreID int) {
	t := k.cur[coreID]
	if t == nil || k.chaos == nil || k.chaos.CloneAfter == nil {
		return
	}
	entry, ok := k.chaos.CloneAfter(coreID, t)
	if !ok {
		return
	}
	start := k.cores[coreID].Now
	k.cores[coreID].KernelWork(k.cfg.Costs.Clone)
	k.clone(coreID, t, entry, t.Ctx.Regs[isa.R14], k.rand(), 0)
	if k.metrics != nil {
		k.metrics.CloneCycles.Observe(k.cores[coreID].Now - start)
	}
}

// chaosKill asks the injector whether to kill the current thread at
// this boundary and, if so, runs the full exit path on it.
func (k *Kernel) chaosKill(coreID int) {
	t := k.cur[coreID]
	if t == nil || k.chaos == nil || k.chaos.KillAfter == nil || !k.chaos.KillAfter(coreID, t) {
		return
	}
	k.Stats.Kills++
	k.exitThread(coreID, t, exitKilled)
}

// probeStep reports a retired instruction to the checker.
func (k *Kernel) probeStep(coreID int, t *Thread, prevPC int) {
	if k.probes != nil && k.probes.Step != nil {
		k.probes.Step(coreID, t, prevPC, t.Ctx.PC)
	}
}

// probeFold reports one overflow-chunk fold to the checker.
func (k *Kernel) probeFold(coreID int, t *Thread, tc *ThreadCounter, chunk uint64) {
	if k.probes != nil && k.probes.Fold != nil {
		k.probes.Fold(coreID, t, tc, chunk)
	}
}
