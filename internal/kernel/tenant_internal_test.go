package kernel

import (
	"math"
	"testing"
)

// ledgers builds a TenantLedger slice from per-tenant cycle counts.
func ledgers(cycles ...uint64) []TenantLedger {
	led := make([]TenantLedger, len(cycles))
	for i, c := range cycles {
		led[i].Cycles = c
	}
	return led
}

// TestApportionSumsToTotal checks the policy's hard guarantee: the
// share-by-cycles estimates always sum to the socket total exactly,
// whatever the cycle distribution.
func TestApportionSumsToTotal(t *testing.T) {
	cases := []struct {
		total  uint64
		cycles []uint64
	}{
		{100, []uint64{1, 2, 3}},
		{7, []uint64{3, 3, 3}},
		{1, []uint64{1000, 1}},
		{999_999_937, []uint64{13, 4096, 7777, 1}},
		{42, []uint64{0, 0, 5}},
	}
	for _, tc := range cases {
		led := ledgers(tc.cycles...)
		var totalCyc uint64
		for _, c := range tc.cycles {
			totalCyc += c
		}
		est := apportion(tc.total, totalCyc, led)
		var sum uint64
		for i, e := range est {
			sum += e
			if e > tc.total {
				t.Errorf("apportion(%d, %v): est[%d]=%d exceeds total", tc.total, tc.cycles, i, e)
			}
		}
		if sum != tc.total {
			t.Errorf("apportion(%d, %v) sums to %d", tc.total, tc.cycles, sum)
		}
	}
}

// TestApportionZeroCycles pins the documented fallback: with no
// attributed cycles the whole total goes to tenant 0.
func TestApportionZeroCycles(t *testing.T) {
	est := apportion(55, 0, ledgers(0, 0, 0))
	if est[0] != 55 || est[1] != 0 || est[2] != 0 {
		t.Errorf("zero-cycle apportion = %v, want [55 0 0]", est)
	}
}

// TestApportionZeroTotal: nothing to divide, everyone gets zero.
func TestApportionZeroTotal(t *testing.T) {
	for _, e := range apportion(0, 100, ledgers(40, 60)) {
		if e != 0 {
			t.Fatalf("zero-total apportion produced %d", e)
		}
	}
}

// TestApportionLargestRemainderTies: equal shares of an indivisible
// total — the remainder units go to the lowest tenant ids, one each.
func TestApportionLargestRemainderTies(t *testing.T) {
	est := apportion(10, 3, ledgers(1, 1, 1))
	want := []uint64{4, 3, 3}
	for i := range want {
		if est[i] != want[i] {
			t.Fatalf("tie-break apportion = %v, want %v", est, want)
		}
	}
}

// TestApportionProportional: exact divisibility must produce the exact
// proportional split with no remainder redistribution.
func TestApportionProportional(t *testing.T) {
	est := apportion(100, 10, ledgers(1, 2, 3, 4))
	want := []uint64{10, 20, 30, 40}
	for i := range want {
		if est[i] != want[i] {
			t.Fatalf("proportional apportion = %v, want %v", est, want)
		}
	}
}

// TestApportionNoOverflow drives total*cycles far past 64 bits: the
// 128-bit intermediate must keep the split exact at any magnitude.
func TestApportionNoOverflow(t *testing.T) {
	big := uint64(math.MaxUint64 / 2)
	led := ledgers(big, big/3, 17)
	totalCyc := led[0].Cycles + led[1].Cycles + led[2].Cycles
	total := uint64(math.MaxUint64 - 12345)
	est := apportion(total, totalCyc, led)
	var sum uint64
	for _, e := range est {
		sum += e
	}
	if sum != total {
		t.Errorf("large-magnitude apportion sums to %d, want %d", sum, total)
	}
	if est[0] <= est[1] || est[1] <= est[2] {
		t.Errorf("apportion lost proportionality at scale: %v", est)
	}
}

// TestTenantOfClamp: out-of-range tenant tags are owned by tenant 0,
// never dropped.
func TestTenantOfClamp(t *testing.T) {
	ts := &tenantSched{n: 3}
	for tag, want := range map[int]int{-1: 0, 0: 0, 2: 2, 3: 0, 99: 0} {
		if got := ts.tenantOf(&Thread{Tenant: tag}); got != want {
			t.Errorf("tenantOf(%d) = %d, want %d", tag, got, want)
		}
	}
}
