package report

import (
	"fmt"
	"sort"
	"strings"

	"limitsim/internal/metrics"
	"limitsim/internal/profile"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
)

// AddFindings appends the ranked bottleneck table from a profiler
// report's wire records, with proportional share bars. self is the
// optional trailing self-cost disclosure (nil to omit).
func (a *Artifact) AddFindings(title string, recs []profile.FindingRecord, self *profile.SelfCostRecord) {
	var b strings.Builder
	b.WriteString("<table>\n<thead><tr>")
	for _, h := range []string{"rank", "region", "kind", "class", "share", "self-Mcyc", "count", "mean-cyc", "kernel%", "l1d/kc", "brmiss/kc", ""} {
		b.WriteString("<th>" + esc(h) + "</th>")
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, r := range recs {
		var selfMcyc float64
		if len(r.Self) > 0 {
			selfMcyc = float64(r.Self[0]) / 1e6
		}
		width := int(r.Share*120 + 0.5)
		fmt.Fprintf(&b,
			"<tr><td>%d</td><td><code>%s</code></td><td>%s</td><td>%s</td><td>%s%%</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td><span class=\"bar\" style=\"width:%dpx\"></span></td></tr>\n",
			r.Rank, esc(r.Region), esc(r.Kind), esc(r.Class),
			f2(r.Share*100), f2(selfMcyc), r.Count, f2(r.MeanCycles),
			f2(r.KernelShare*100), f2(r.L1DPerKC), f2(r.BrMissPerKC), width)
	}
	b.WriteString("</tbody>\n</table>\n")
	if self != nil {
		fmt.Fprintf(&b, "<p>profiler self-cost: %s cycles; pair cost vs bare read pair: %sx</p>\n",
			f2(self.SelfCycles), f4(self.PairVsBareRatio))
	}
	a.add(title, b.String())
}

// AddRegistry appends a telemetry registry as counter/gauge and
// histogram tables, in registration order — the same order and values
// Render prints, so serial and fleet-merged registries produce
// identical sections.
func (a *Artifact) AddRegistry(title string, reg *telemetry.Registry) {
	counters, gauges, hists := reg.Names()
	var b strings.Builder
	if len(counters)+len(gauges) > 0 {
		var rows [][]string
		for _, name := range counters {
			rows = append(rows, []string{name, fmt.Sprintf("%d", reg.LookupCounter(name).Value()), "-"})
		}
		for _, name := range gauges {
			g := reg.LookupGauge(name)
			rows = append(rows, []string{name, fmt.Sprintf("%d", g.Value()), fmt.Sprintf("%d", g.Peak())})
		}
		tableHTML(&b, []string{"metric", "value", "peak"}, rows)
	}
	if len(hists) > 0 {
		var rows [][]string
		for _, name := range hists {
			h := reg.LookupHistogram(name)
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", h.Count()), f2(h.Mean()),
				fmt.Sprintf("%d", h.Min()), fmt.Sprintf("%d", h.Quantile(0.50)),
				fmt.Sprintf("%d", h.Quantile(0.99)), fmt.Sprintf("%d", h.Max()),
			})
		}
		tableHTML(&b, []string{"histogram (cycles)", "count", "mean", "min", "p50", "p99", "max"}, rows)
	}
	if b.Len() == 0 {
		b.WriteString("<p>empty registry</p>\n")
	}
	a.add(title, b.String())
}

// AddSeries appends one line chart per metric from windowed series
// rows (metrics in sorted name order, one colored line per split key),
// followed by the compact per-window table.
func (a *Artifact) AddSeries(title string, rows []metrics.WindowRow) {
	var b strings.Builder
	if len(rows) == 0 {
		b.WriteString("<p>no windows</p>\n")
		a.add(title, b.String())
		return
	}

	// Index values by metric, then key, then window.
	type keyed map[string]map[int]float64 // key -> window -> value
	metricNames := map[string]bool{}
	keys := map[string]bool{}
	maxWin := 0
	byMetric := map[string]keyed{}
	for _, r := range rows {
		if r.Window > maxWin {
			maxWin = r.Window
		}
		keys[r.Key] = true
		for name, v := range r.Metrics {
			metricNames[name] = true
			if byMetric[name] == nil {
				byMetric[name] = keyed{}
			}
			if byMetric[name][r.Key] == nil {
				byMetric[name][r.Key] = map[int]float64{}
			}
			byMetric[name][r.Key][r.Window] = v
		}
	}
	sortedMetrics := make([]string, 0, len(metricNames))
	for name := range metricNames {
		sortedMetrics = append(sortedMetrics, name)
	}
	sort.Strings(sortedMetrics)
	sortedKeyList := make([]string, 0, len(keys))
	for k := range keys {
		sortedKeyList = append(sortedKeyList, k)
	}
	sort.Strings(sortedKeyList)

	for _, name := range sortedMetrics {
		fmt.Fprintf(&b, "<h3>%s</h3>\n", esc(name))
		var series []chartSeries
		for _, key := range sortedKeyList {
			vals := make([]float64, maxWin+1)
			for w, v := range byMetric[name][key] {
				vals[w] = v
			}
			series = append(series, chartSeries{Label: key, Values: vals})
		}
		lineChart(&b, series)
	}

	// The compact table mirrors the text renderer: window-major rows.
	header := append([]string{"window", "cycles", "key"}, sortedMetrics...)
	var tbl [][]string
	for _, r := range rows {
		span := fmt.Sprintf("%d..%d", r.Start, r.End)
		if r.Partial {
			span += " (partial)"
		}
		cells := []string{fmt.Sprintf("%d", r.Window), span, r.Key}
		for _, name := range sortedMetrics {
			cells = append(cells, f4(r.Metrics[name]))
		}
		tbl = append(tbl, cells)
	}
	tableHTML(&b, header, tbl)
	a.add(title, b.String())
}

// AddFlame appends a flame view of the Chrome-span export.
func (a *Artifact) AddFlame(title string, spans []trace.Span) {
	var b strings.Builder
	flameSVG(&b, spans)
	a.add(title, b.String())
}
