// Package report renders one self-contained, byte-deterministic HTML
// artifact from any combination of the harness's measurement outputs:
// ranked bottleneck tables from internal/profile, windowed metric
// time-series charts from internal/metrics, telemetry registry tables,
// a flame view of the Chrome-span export, and raw assembled text
// reports. The artifact is a single file with inline CSS and inline
// SVG only — no scripts, no external fetches — so it travels as one
// attachment and hashes identically wherever it was produced.
//
// Determinism is the package contract: sections render in the order
// they were added, map-shaped inputs are sorted before rendering, all
// floating-point output goes through fixed-precision formatting, and
// nothing (timestamps, hostnames, paths) outside the caller's inputs
// reaches the output. Fleet assembly leans on this: the merged inputs
// are byte-identical at any shard width (PR 5/6 merge rules), so the
// HTML is too.
package report

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"
)

// Artifact accumulates titled sections and renders them as one HTML
// document with a navigation index.
type Artifact struct {
	Title    string
	Subtitle string
	sections []section
}

type section struct {
	title string
	body  string // pre-rendered, escaped HTML
}

// New returns an empty artifact. Subtitle may be "".
func New(title, subtitle string) *Artifact {
	return &Artifact{Title: title, Subtitle: subtitle}
}

// Sections returns the number of sections added so far.
func (a *Artifact) Sections() int { return len(a.sections) }

// add appends a pre-rendered section body.
func (a *Artifact) add(title, body string) {
	a.sections = append(a.sections, section{title: title, body: body})
}

// esc HTML-escapes user-controlled text for element and attribute
// positions (quotes included).
func esc(s string) string { return html.EscapeString(s) }

// f2, f4 and f6 render floats at fixed precision; all float output in
// the artifact flows through them so formatting is uniform and
// deterministic.
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// AddTable appends a plain table section. Cells are escaped; a cell
// already formatted by the caller renders verbatim as text.
func (a *Artifact) AddTable(title string, header []string, rows [][]string) {
	var b strings.Builder
	tableHTML(&b, header, rows)
	a.add(title, b.String())
}

// tableHTML renders one table element.
func tableHTML(b *strings.Builder, header []string, rows [][]string) {
	b.WriteString("<table>\n<thead><tr>")
	for _, h := range header {
		b.WriteString("<th>" + esc(h) + "</th>")
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			b.WriteString("<td>" + esc(cell) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n")
}

// AddKV appends a two-column key/value section.
func (a *Artifact) AddKV(title string, pairs [][2]string) {
	rows := make([][]string, len(pairs))
	for i, p := range pairs {
		rows[i] = []string{p[0], p[1]}
	}
	a.AddTable(title, []string{"key", "value"}, rows)
}

// AddPre appends a preformatted text section — the adapter for the
// harness's existing aligned text reports, which are themselves
// byte-deterministic.
func (a *Artifact) AddPre(title, text string) {
	a.add(title, "<pre>"+esc(text)+"</pre>\n")
}

// css is the entire inline stylesheet. No imports, no fonts, no URLs.
const css = `body{margin:0;font-family:system-ui,sans-serif;color:#1c2733;background:#f6f8fa}
header{background:#1c2733;color:#fff;padding:18px 28px}
header h1{margin:0;font-size:22px}
header p{margin:4px 0 0;color:#9fb3c8;font-size:13px}
nav{padding:10px 28px;background:#e8edf2;font-size:13px}
nav a{color:#1756a9;text-decoration:none;margin-right:14px}
section{background:#fff;margin:16px 28px;padding:14px 18px;border:1px solid #d7dee5;border-radius:6px}
section h2{margin:0 0 10px;font-size:16px;border-bottom:1px solid #e3e8ee;padding-bottom:6px}
table{border-collapse:collapse;font-size:13px}
th,td{padding:3px 10px;border-bottom:1px solid #e9edf1;text-align:left;font-variant-numeric:tabular-nums}
th{color:#51616f;font-weight:600}
pre{font-size:12px;line-height:1.45;overflow-x:auto;background:#f6f8fa;padding:10px;border-radius:4px;margin:0}
.bar{display:inline-block;height:9px;background:#4c84c4;vertical-align:baseline}
svg{display:block}
svg text{font-family:system-ui,sans-serif}
.legend{font-size:12px;margin-top:4px}
.legend span{margin-right:12px}
.swatch{display:inline-block;width:10px;height:10px;margin-right:4px;vertical-align:baseline}
footer{padding:8px 28px 20px;color:#6b7a88;font-size:12px}`

// Render writes the artifact as one HTML document.
func (a *Artifact) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(bw, "<title>%s</title>\n", esc(a.Title))
	bw.WriteString("<style>\n" + css + "\n</style>\n</head>\n<body>\n")
	fmt.Fprintf(bw, "<header>\n<h1>%s</h1>\n", esc(a.Title))
	if a.Subtitle != "" {
		fmt.Fprintf(bw, "<p>%s</p>\n", esc(a.Subtitle))
	}
	bw.WriteString("</header>\n<nav>\n")
	for i, s := range a.sections {
		fmt.Fprintf(bw, "<a href=\"#s%d\">%s</a>\n", i+1, esc(s.title))
	}
	bw.WriteString("</nav>\n")
	for i, s := range a.sections {
		fmt.Fprintf(bw, "<section id=\"s%d\">\n<h2>%s</h2>\n", i+1, esc(s.title))
		bw.WriteString(s.body)
		bw.WriteString("</section>\n")
	}
	bw.WriteString("<footer>limitsim report &middot; self-contained, deterministic artifact</footer>\n")
	bw.WriteString("</body>\n</html>\n")
	return bw.Flush()
}
