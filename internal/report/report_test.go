package report

import (
	"bytes"
	"strings"
	"testing"

	"limitsim/internal/metrics"
	"limitsim/internal/profile"
	"limitsim/internal/telemetry"
	"limitsim/internal/trace"
)

// buildArtifact assembles one artifact exercising every section type.
func buildArtifact() *Artifact {
	a := New("test artifact", "every section type <&>")
	a.AddFindings("Findings", []profile.FindingRecord{
		{Rank: 1, Region: "lock:<LOCK_kernel>", Kind: "lock", Class: "contention",
			Share: 0.42, Count: 100, Self: []uint64{4200000, 10, 20},
			MeanCycles: 42000, KernelShare: 0.31, L1DPerKC: 1.5, BrMissPerKC: 0.2},
		{Rank: 2, Region: "cs:main", Kind: "critical-section", Class: "compute-bound",
			Share: 0.10, Count: 50, Self: []uint64{1000000}, MeanCycles: 20000},
	}, &profile.SelfCostRecord{SelfCycles: 36.5, PairVsBareRatio: 1.0417})

	reg := telemetry.NewRegistry()
	reg.Counter("kern.syscalls").Add(7)
	reg.Gauge("pool.live").Set(3)
	reg.Histogram("region.cycles", []uint64{10, 100, 1000}).Observe(42)
	a.AddRegistry("Telemetry", reg)

	a.AddSeries("Series", []metrics.WindowRow{
		{Window: 0, Start: 0, End: 100, Key: "tenant0",
			Inputs: map[string]int64{"cycles": 90}, Metrics: map[string]float64{"cpi": 1.5, "ipc": 0.66}},
		{Window: 0, Start: 0, End: 100, Key: "tenant1",
			Inputs: map[string]int64{"cycles": 80}, Metrics: map[string]float64{"cpi": 2.0, "ipc": 0.5}},
		{Window: 1, Start: 100, End: 200, Partial: true, Key: "tenant0",
			Inputs: map[string]int64{"cycles": -5}, Metrics: map[string]float64{"cpi": 0, "ipc": 0}},
		{Window: 1, Start: 100, End: 200, Partial: true, Key: "tenant1",
			Inputs: map[string]int64{"cycles": 10}, Metrics: map[string]float64{"cpi": 1.0, "ipc": 1.0}},
	})

	a.AddFlame("Flame", []trace.Span{
		{Name: "thread", PID: 1, TID: 1, StartCycle: 0, DurCycles: 1000},
		{Name: "lock:<L>", PID: 1, TID: 1, StartCycle: 100, DurCycles: 400},
		{Name: "inner", PID: 1, TID: 1, StartCycle: 150, DurCycles: 100},
		{Name: "thread", PID: 1, TID: 2, StartCycle: 0, DurCycles: 800},
	})

	a.AddPre("Raw", "col1  col2\n1     2\n")
	a.AddKV("About", [][2]string{{"workload", "forkjoin"}, {"cores", "4"}})
	return a
}

func render(t *testing.T, a *Artifact) string {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The artifact contract: same inputs, same bytes — across repeated
// builds and renders.
func TestRenderByteDeterministic(t *testing.T) {
	a := render(t, buildArtifact())
	b := render(t, buildArtifact())
	if a != b {
		t.Error("two renders of the same inputs differ")
	}
	if a == "" {
		t.Fatal("empty render")
	}
}

// Self-contained: no external fetches of any kind may appear in the
// document — the same check CI applies to generated reports.
func TestRenderSelfContained(t *testing.T) {
	out := render(t, buildArtifact())
	for _, banned := range []string{"http://", "https://", "url(", "@import", "<script", "<link", "srcset"} {
		if strings.Contains(out, banned) {
			t.Errorf("artifact contains %q — not self-contained", banned)
		}
	}
}

// Structure: doctype, balanced section tags, one nav anchor per
// section pointing at a matching id.
func TestRenderStructure(t *testing.T) {
	art := buildArtifact()
	out := render(t, art)
	if !strings.HasPrefix(out, "<!DOCTYPE html>\n") {
		t.Error("missing doctype")
	}
	for _, pair := range [][2]string{
		{"<html", "</html>"}, {"<head>", "</head>"}, {"<body>", "</body>"},
		{"<section", "</section>"}, {"<table>", "</table>"}, {"<svg", "</svg>"},
	} {
		if strings.Count(out, pair[0]) != strings.Count(out, pair[1]) {
			t.Errorf("unbalanced %s: %d open vs %d close",
				pair[0], strings.Count(out, pair[0]), strings.Count(out, pair[1]))
		}
	}
	if n := strings.Count(out, "<section"); n != art.Sections() {
		t.Errorf("%d section elements for %d sections", n, art.Sections())
	}
	for i := 1; i <= art.Sections(); i++ {
		anchor := `<a href="#s` + string(rune('0'+i)) + `">`
		id := `<section id="s` + string(rune('0'+i)) + `">`
		if !strings.Contains(out, anchor) {
			t.Errorf("missing nav anchor %s", anchor)
		}
		if !strings.Contains(out, id) {
			t.Errorf("missing section %s", id)
		}
	}
}

// Untrusted strings (region names, titles, table cells) must be
// escaped wherever they land.
func TestRenderEscapesUserText(t *testing.T) {
	a := New(`<script>alert("x")</script>`, `sub & title`)
	a.AddTable("T", []string{"<th>"}, [][]string{{`<img src=x>`}})
	a.AddPre("P", "<pre-injected>")
	out := render(t, a)
	for _, banned := range []string{"<script>", "<img", "<pre-injected>", "<th><th>"} {
		if strings.Contains(out, banned) {
			t.Errorf("unescaped user text %q leaked into HTML", banned)
		}
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("title not visibly escaped")
	}
}

// The findings table carries the ranked rows and the self-cost line;
// the share bar widths are fixed-point deterministic.
func TestAddFindings(t *testing.T) {
	out := render(t, buildArtifact())
	for _, want := range []string{
		"lock:&lt;LOCK_kernel&gt;", "contention", "42.00%",
		`<span class="bar" style="width:50px">`, // 0.42*120 = 50.4 → 50
		"profiler self-cost: 36.50 cycles", "1.0417x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings section lacks %q", want)
		}
	}
}

// The series section draws one chart per metric with one polyline per
// key, plus the compact table with the partial mark.
func TestAddSeries(t *testing.T) {
	out := render(t, buildArtifact())
	if got := strings.Count(out, "<h3>"); got != 2 {
		t.Errorf("%d metric charts, want 2 (cpi, ipc)", got)
	}
	if got := strings.Count(out, "<polyline"); got != 4 {
		t.Errorf("%d polylines, want 4 (2 metrics x 2 keys)", got)
	}
	for _, want := range []string{"tenant0", "tenant1", "100..200 (partial)", "class=\"legend\""} {
		if !strings.Contains(out, want) {
			t.Errorf("series section lacks %q", want)
		}
	}

	// Negative values force the dashed zero line into the chart.
	var b strings.Builder
	lineChart(&b, []chartSeries{{Label: "all", Values: []float64{-1, 2, 0.5}}})
	if !strings.Contains(b.String(), "stroke-dasharray") {
		t.Error("chart spanning zero lacks the dashed zero line")
	}

	empty := New("e", "")
	empty.AddSeries("S", nil)
	if !strings.Contains(render(t, empty), "no windows") {
		t.Error("empty series lacks placeholder")
	}
}

// The registry section renders counters, gauges and histograms; an
// empty registry gets an explicit placeholder.
func TestAddRegistry(t *testing.T) {
	out := render(t, buildArtifact())
	for _, want := range []string{"kern.syscalls", "pool.live", "region.cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("registry section lacks %q", want)
		}
	}
	empty := New("e", "")
	empty.AddRegistry("R", telemetry.NewRegistry())
	if !strings.Contains(render(t, empty), "empty registry") {
		t.Error("empty registry lacks placeholder")
	}
}

// The flame view nests spans by containment per (pid,tid) track and
// titles every box with its name and cycle bounds.
func TestAddFlame(t *testing.T) {
	out := render(t, buildArtifact())
	if got := strings.Count(out, "<rect"); got < 4 {
		t.Errorf("%d flame rects, want >= 4", got)
	}
	for _, want := range []string{"lock:&lt;L&gt;", "<title>"} {
		if !strings.Contains(out, want) {
			t.Errorf("flame section lacks %q", want)
		}
	}
	// Span input order must not change the SVG.
	spans := []trace.Span{
		{Name: "a", PID: 1, TID: 1, StartCycle: 0, DurCycles: 100},
		{Name: "b", PID: 1, TID: 1, StartCycle: 10, DurCycles: 50},
	}
	var b1, b2 strings.Builder
	flameSVG(&b1, spans)
	flameSVG(&b2, []trace.Span{spans[1], spans[0]})
	if b1.String() != b2.String() {
		t.Error("span input order changed the flame SVG")
	}
}
