package report

import (
	"fmt"
	"sort"
	"strings"

	"limitsim/internal/trace"
)

// palette colors series and flame rects; indexed by a deterministic
// name hash so the same region or key gets the same color in every
// artifact.
var palette = []string{
	"#4c84c4", "#d4804d", "#5ba05b", "#c45b5b", "#8a6fb8",
	"#3fa0a0", "#b8a03f", "#a05b8a", "#6b7a88", "#7a9e4f",
}

// colorFor picks a palette color by FNV-1a hash of the name.
func colorFor(name string) string {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return palette[h%uint32(len(palette))]
}

// chartSeries is one labelled value sequence of a line chart.
type chartSeries struct {
	Label  string
	Values []float64
}

// Line chart geometry.
const (
	chartW    = 640
	chartH    = 150
	chartPadL = 56
	chartPadR = 10
	chartPadT = 8
	chartPadB = 20
)

// lineChart renders one inline SVG line chart with a shared y-range
// across series, min/max axis labels and a color legend. Coordinates
// are fixed-precision, so the markup is byte-deterministic.
func lineChart(b *strings.Builder, series []chartSeries) {
	n := 0
	lo, hi := 0.0, 0.0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if n == 0 {
		b.WriteString("<p>no windows</p>\n")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	plotW := float64(chartW - chartPadL - chartPadR)
	plotH := float64(chartH - chartPadT - chartPadB)
	x := func(i int) float64 {
		if n == 1 {
			return float64(chartPadL) + plotW/2
		}
		return float64(chartPadL) + plotW*float64(i)/float64(n-1)
	}
	y := func(v float64) float64 {
		return float64(chartPadT) + plotH*(1-(v-lo)/(hi-lo))
	}

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		chartW, chartH, chartW, chartH)
	// Frame and axis labels.
	fmt.Fprintf(b, "<rect x=\"%d\" y=\"%d\" width=\"%s\" height=\"%s\" fill=\"#fbfcfd\" stroke=\"#d7dee5\"></rect>\n",
		chartPadL, chartPadT, f2(plotW), f2(plotH))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" font-size=\"11\" fill=\"#51616f\" text-anchor=\"end\">%s</text>\n",
		chartPadL-4, f2(y(hi)+4), f4(hi))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" font-size=\"11\" fill=\"#51616f\" text-anchor=\"end\">%s</text>\n",
		chartPadL-4, f2(y(lo)+4), f4(lo))
	if lo < 0 {
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%s\" x2=\"%d\" y2=\"%s\" stroke=\"#c7d0d9\" stroke-dasharray=\"3,3\"></line>\n",
			chartPadL, f2(y(0)), chartW-chartPadR, f2(y(0)))
	}
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" fill=\"#51616f\">window 0</text>\n",
		chartPadL, chartH-6)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" fill=\"#51616f\" text-anchor=\"end\">window %d</text>\n",
		chartW-chartPadR, chartH-6, n-1)

	for _, s := range series {
		color := colorFor(s.Label)
		if len(s.Values) == 1 {
			fmt.Fprintf(b, "<circle cx=\"%s\" cy=\"%s\" r=\"3\" fill=\"%s\"></circle>\n",
				f2(x(0)), f2(y(s.Values[0])), color)
			continue
		}
		pts := make([]string, len(s.Values))
		for i, v := range s.Values {
			pts[i] = f2(x(i)) + "," + f2(y(v))
		}
		fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"></polyline>\n",
			strings.Join(pts, " "), color)
	}
	b.WriteString("</svg>\n")

	if len(series) > 1 || (len(series) == 1 && series[0].Label != "all") {
		b.WriteString("<div class=\"legend\">")
		for _, s := range series {
			fmt.Fprintf(b, "<span><span class=\"swatch\" style=\"background:%s\"></span>%s</span>",
				colorFor(s.Label), esc(s.Label))
		}
		b.WriteString("</div>\n")
	}
}

// Flame geometry.
const (
	flameW     = 920
	flameRowH  = 18
	flameGap   = 2
	flameLabel = 14
)

// flameTrack is one (pid, tid) lane of positioned spans.
type flameTrack struct {
	pid, tid int
	spans    []flameBox
	depth    int
}

type flameBox struct {
	span  trace.Span
	depth int
}

// flameSVG renders the span hierarchy as a flame chart: one lane per
// (pid, tid) in ascending order, nesting depth derived from interval
// containment, hover detail via SVG title elements. Cycle positions
// scale to the global span extent.
func flameSVG(b *strings.Builder, spans []trace.Span) {
	if len(spans) == 0 {
		b.WriteString("<p>no spans</p>\n")
		return
	}
	lo := spans[0].StartCycle
	hi := spans[0].StartCycle + spans[0].DurCycles
	byTrack := map[[2]int][]trace.Span{}
	var order [][2]int
	for _, s := range spans {
		if s.StartCycle < lo {
			lo = s.StartCycle
		}
		if end := s.StartCycle + s.DurCycles; end > hi {
			hi = end
		}
		k := [2]int{s.PID, s.TID}
		if _, ok := byTrack[k]; !ok {
			order = append(order, k)
		}
		byTrack[k] = append(byTrack[k], s)
	}
	sortTracks(order)
	if hi == lo {
		hi = lo + 1
	}
	scale := float64(flameW) / float64(hi-lo)

	var tracks []flameTrack
	totalRows := 0
	for _, k := range order {
		tr := flameTrack{pid: k[0], tid: k[1]}
		// Stable sort by start ascending, longer span first on ties, so
		// a parent precedes the children it contains.
		ts := byTrack[k]
		sortSpans(ts)
		var stack []uint64 // enclosing span end cycles
		for _, s := range ts {
			end := s.StartCycle + s.DurCycles
			for len(stack) > 0 && stack[len(stack)-1] <= s.StartCycle {
				stack = stack[:len(stack)-1]
			}
			d := len(stack)
			tr.spans = append(tr.spans, flameBox{span: s, depth: d})
			if d+1 > tr.depth {
				tr.depth = d + 1
			}
			stack = append(stack, end)
		}
		totalRows += tr.depth
		tracks = append(tracks, tr)
	}

	height := totalRows*(flameRowH+flameGap) + len(tracks)*flameLabel + flameLabel
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		flameW, height, flameW, height)
	yOff := 0
	for _, tr := range tracks {
		fmt.Fprintf(b, "<text x=\"0\" y=\"%d\" font-size=\"11\" fill=\"#51616f\">pid %d / tid %d</text>\n",
			yOff+flameLabel-3, tr.pid, tr.tid)
		yOff += flameLabel
		for _, box := range tr.spans {
			s := box.span
			x := float64(s.StartCycle-lo) * scale
			w := float64(s.DurCycles) * scale
			if w < 0.5 {
				w = 0.5
			}
			yTop := yOff + box.depth*(flameRowH+flameGap)
			fmt.Fprintf(b, "<rect x=\"%s\" y=\"%d\" width=\"%s\" height=\"%d\" fill=\"%s\" stroke=\"#fff\" stroke-width=\"0.5\">",
				f2(x), yTop, f2(w), flameRowH, colorFor(s.Name))
			fmt.Fprintf(b, "<title>%s: %d cycles (start %d)</title></rect>\n",
				esc(s.Name), s.DurCycles, s.StartCycle)
			if w >= 60 {
				fmt.Fprintf(b, "<text x=\"%s\" y=\"%d\" font-size=\"10\" fill=\"#fff\">%s</text>\n",
					f2(x+3), yTop+flameRowH-5, esc(clip(s.Name, int(w/7))))
			}
		}
		yOff += tr.depth * (flameRowH + flameGap)
	}
	b.WriteString("</svg>\n")
}

// clip truncates a label to at most n runes with an ellipsis.
func clip(s string, n int) string {
	if n < 1 || len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:1]
	}
	return s[:n-1] + "…"
}

// sortTracks orders (pid, tid) keys ascending.
func sortTracks(keys [][2]int) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
}

// sortSpans orders spans by start ascending, duration descending on
// ties (parents before contained children), name ascending as the
// final tiebreak — a total order, so the layout is deterministic for
// any input order.
func sortSpans(ss []trace.Span) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].StartCycle != ss[j].StartCycle {
			return ss[i].StartCycle < ss[j].StartCycle
		}
		if ss[i].DurCycles != ss[j].DurCycles {
			return ss[i].DurCycles > ss[j].DurCycles
		}
		return ss[i].Name < ss[j].Name
	})
}
