// Package tls manages thread-local storage for generated programs
// whose threads share one code body. Each thread is spawned with its
// slot index in SlotReg; the layout's prolog computes the thread's TLS
// base into BaseReg, and every per-thread field is addressed
// register-relative to BaseReg via ref.RegRel. Host-side code resolves
// the same fields per slot after a run.
package tls

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/ref"
)

// Register conventions for shared-body programs.
const (
	// SlotReg carries the thread's slot index, set at spawn time.
	SlotReg = isa.R14
	// BaseReg carries the thread's TLS base, computed by EmitProlog.
	BaseReg = isa.R15
)

// Layout assembles a per-thread storage block field by field. Reserve
// all fields before calling Alloc; the layout is then frozen.
type Layout struct {
	words  int
	base   uint64
	nSlots int
	frozen bool
}

// Reserve claims n 8-byte words and returns a register-relative
// reference to the first.
func (l *Layout) Reserve(n int) ref.Ref {
	if l.frozen {
		panic("tls: Reserve after Alloc")
	}
	r := ref.RegRel(BaseReg, uint64(l.words)*8)
	l.words += n
	return r
}

// Words returns the per-thread block size in words.
func (l *Layout) Words() int { return l.words }

// Alloc reserves backing storage for nSlots thread blocks in the
// process address space and freezes the layout.
func (l *Layout) Alloc(space *mem.Space, nSlots int) {
	if l.frozen {
		panic("tls: Alloc called twice")
	}
	if l.words == 0 {
		l.words = 1 // keep ThreadBase well-defined for probe-less layouts
	}
	l.base = space.AllocWords(uint64(l.words * nSlots))
	l.nSlots = nSlots
	l.frozen = true
}

// ThreadBase returns slot's TLS base address (the value BaseReg holds
// in that thread). Host-side analysis passes it to ref.Ref.Resolve.
func (l *Layout) ThreadBase(slot int) uint64 {
	if !l.frozen {
		panic("tls: ThreadBase before Alloc")
	}
	if slot < 0 || slot >= l.nSlots {
		panic(fmt.Sprintf("tls: slot %d out of range [0,%d)", slot, l.nSlots))
	}
	return l.base + uint64(slot*l.words)*8
}

// Slots returns the number of allocated thread slots.
func (l *Layout) Slots() int { return l.nSlots }

// EmitProlog emits BaseReg = base + SlotReg*blockSize at the current
// position. It must run before any field is touched — in particular
// before a LiMiT emitter's EmitInit. Clobbers only BaseReg.
func (l *Layout) EmitProlog(b *isa.Builder) {
	if !l.frozen {
		panic("tls: EmitProlog before Alloc")
	}
	b.MovImm(BaseReg, int64(l.words)*8)
	b.Mul(BaseReg, SlotReg, BaseReg)
	b.AddImm(BaseReg, BaseReg, int64(l.base))
}
