package tls

import (
	"testing"

	"limitsim/internal/cpu"
	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
)

func TestReserveOffsets(t *testing.T) {
	var l Layout
	a := l.Reserve(2)
	b := l.Reserve(1)
	if a.Resolve(0x100) != 0x100 {
		t.Errorf("first field at %#x, want base", a.Resolve(0x100))
	}
	if b.Resolve(0x100) != 0x110 {
		t.Errorf("second field at %#x, want base+16", b.Resolve(0x100))
	}
	if l.Words() != 3 {
		t.Errorf("layout words %d, want 3", l.Words())
	}
}

func TestThreadBasesDisjoint(t *testing.T) {
	var l Layout
	l.Reserve(4)
	space := mem.NewSpace()
	l.Alloc(space, 3)
	if l.Slots() != 3 {
		t.Errorf("slots %d", l.Slots())
	}
	b0, b1, b2 := l.ThreadBase(0), l.ThreadBase(1), l.ThreadBase(2)
	if b1-b0 != 32 || b2-b1 != 32 {
		t.Errorf("bases %#x %#x %#x not 32B apart", b0, b1, b2)
	}
}

func TestPrologComputesBase(t *testing.T) {
	var l Layout
	f := l.Reserve(1)
	space := mem.NewSpace()
	l.Alloc(space, 4)

	b := isa.NewBuilder()
	l.EmitProlog(b)
	b.MovImm(isa.R5, 42)
	f.EmitStore(b, isa.R5, isa.R6)
	b.Halt()

	core := cpu.NewCore(0, pmu.DefaultFeatures())
	ctx := &cpu.Context{Prog: b.MustBuild(), Mem: space}
	ctx.Regs[SlotReg] = 2
	for {
		if res := core.Step(ctx); res.Trap != cpu.TrapNone {
			break
		}
	}
	if ctx.Regs[BaseReg] != l.ThreadBase(2) {
		t.Errorf("prolog computed %#x, host says %#x", ctx.Regs[BaseReg], l.ThreadBase(2))
	}
	if got := space.Read64(f.Resolve(l.ThreadBase(2))); got != 42 {
		t.Errorf("field store landed wrong: %d", got)
	}
}

func TestGuards(t *testing.T) {
	var l Layout
	l.Reserve(1)
	space := mem.NewSpace()
	l.Alloc(space, 1)

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Reserve after Alloc", func() { l.Reserve(1) })
	mustPanic("double Alloc", func() { l.Alloc(space, 1) })
	mustPanic("slot out of range", func() { l.ThreadBase(5) })

	var l2 Layout
	mustPanic("ThreadBase before Alloc", func() { l2.ThreadBase(0) })
	b := isa.NewBuilder()
	mustPanic("EmitProlog before Alloc", func() { l2.EmitProlog(b) })
}

func TestEmptyLayoutStillAllocates(t *testing.T) {
	var l Layout
	space := mem.NewSpace()
	l.Alloc(space, 2)
	if l.ThreadBase(0) == l.ThreadBase(1) {
		t.Error("empty layout slots must still be distinct")
	}
}
