package mem

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// byteSpace is the pre-word-level reference model: a sparse map of
// byte pages with little-endian 64-bit accessors, replicating the old
// byte-array Space exactly. The fuzz cross-check below demands that
// the word-level implementation is indistinguishable from it.
type byteSpace struct {
	pages map[uint64]*[PageSize]byte
}

func newByteSpace() *byteSpace {
	return &byteSpace{pages: make(map[uint64]*[PageSize]byte)}
}

func (b *byteSpace) page(base uint64) *[PageSize]byte {
	p, ok := b.pages[base]
	if !ok {
		p = new([PageSize]byte)
		b.pages[base] = p
	}
	return p
}

func (b *byteSpace) read64(addr uint64) uint64 {
	CheckAligned(addr)
	p := b.page(addr &^ uint64(PageSize-1))
	off := addr & (PageSize - 1)
	return binary.LittleEndian.Uint64(p[off : off+8])
}

func (b *byteSpace) write64(addr, v uint64) {
	CheckAligned(addr)
	p := b.page(addr &^ uint64(PageSize-1))
	off := addr & (PageSize - 1)
	binary.LittleEndian.PutUint64(p[off:off+8], v)
}

// fuzzAddr picks addresses clustered around page boundaries so first
// and last words of pages, and runs that straddle them, dominate the
// stream.
func fuzzAddr(rng *rand.Rand) uint64 {
	page := uint64(rng.Intn(8)) * PageSize
	switch rng.Intn(3) {
	case 0: // first words of the page
		return page + uint64(rng.Intn(4))*8
	case 1: // last words of the page
		return page + PageSize - uint64(1+rng.Intn(4))*8
	default:
		return page + (uint64(rng.Intn(PageSize)) &^ 7)
	}
}

// TestWordByteCrossCheck fuzzes the word-level Space against the
// byte-wise reference model: every Read64/Write64/Add64 and every
// multi-page ReadWords/WriteWords must agree at page-boundary-adjacent
// addresses, interleaved with Snapshot/Restore to stress the hot-page
// caches across generation changes.
func TestWordByteCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb17e))
	s := NewSpace()
	ref := newByteSpace()
	var snap *Snapshot
	var refSnap map[uint64][PageSize]byte

	for step := 0; step < 30_000; step++ {
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // write
			addr, v := fuzzAddr(rng), rng.Uint64()
			s.Write64(addr, v)
			ref.write64(addr, v)
		case 4, 5, 6: // read
			addr := fuzzAddr(rng)
			if got, want := s.Read64(addr), ref.read64(addr); got != want {
				t.Fatalf("step %d: Read64(%#x) = %#x, reference %#x", step, addr, got, want)
			}
		case 7: // read-modify-write
			addr, d := fuzzAddr(rng), rng.Uint64()
			got := s.Add64(addr, d)
			want := ref.read64(addr) + d
			ref.write64(addr, want)
			if got != want {
				t.Fatalf("step %d: Add64(%#x) = %#x, reference %#x", step, addr, got, want)
			}
		case 8: // bulk write straddling up to three pages
			addr := fuzzAddr(rng)
			words := make([]uint64, 1+rng.Intn(2*PageWords+8))
			for i := range words {
				words[i] = rng.Uint64()
				ref.write64(addr+uint64(i)*8, words[i])
			}
			s.WriteWords(addr, words)
		case 9: // bulk read straddling up to three pages
			addr := fuzzAddr(rng)
			n := 1 + rng.Intn(2*PageWords+8)
			got := s.ReadWords(addr, n)
			for i := 0; i < n; i++ {
				if want := ref.read64(addr + uint64(i)*8); got[i] != want {
					t.Fatalf("step %d: ReadWords(%#x)[%d] = %#x, reference %#x", step, addr, i, got[i], want)
				}
			}
		case 10: // snapshot both models
			snap = s.Snapshot()
			refSnap = make(map[uint64][PageSize]byte, len(ref.pages))
			for base, p := range ref.pages {
				refSnap[base] = *p
			}
		case 11: // restore both models
			if snap != nil {
				s.Restore(snap)
				ref.pages = make(map[uint64]*[PageSize]byte, len(refSnap))
				for base, data := range refSnap {
					cp := data
					ref.pages[base] = &cp
				}
			}
		}
	}

	// Final sweep: every word of every reference page agrees.
	for base, p := range ref.pages {
		for off := uint64(0); off < PageSize; off += 8 {
			want := binary.LittleEndian.Uint64(p[off : off+8])
			if got := s.Read64(base + off); got != want {
				t.Fatalf("final sweep: word at %#x = %#x, reference %#x", base+off, got, want)
			}
		}
	}
}
