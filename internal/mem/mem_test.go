package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace()
	addr := s.AllocWords(1)
	s.Write64(addr, 0xdeadbeefcafef00d)
	if got := s.Read64(addr); got != 0xdeadbeefcafef00d {
		t.Errorf("got %#x", got)
	}
}

func TestZeroInitialized(t *testing.T) {
	s := NewSpace()
	if got := s.Read64(0x4000); got != 0 {
		t.Errorf("fresh memory reads %#x, want 0", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := NewSpace()
	f := func(off uint32, v uint64) bool {
		addr := (uint64(off) &^ 7) + 0x1000
		s.Write64(addr, v)
		return s.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordPageLayout(t *testing.T) {
	s := NewSpace()
	s.Write64(0x1000, 0x0102030405060708)
	s.Write64(0x1000+8*(PageWords-1), 0x1122)
	// Word i of a page backs byte offset 8i; the page's word array is
	// directly coherent with Read64/Write64.
	p := s.ReadPage(0x1000)
	if p[0] != 0x0102030405060708 || p[PageWords-1] != 0x1122 {
		t.Errorf("layout words [0]=%#x [last]=%#x", p[0], p[PageWords-1])
	}
	wp := s.WritePage(0x1000)
	wp[1] = 0xabcd
	if got := s.Read64(0x1008); got != 0xabcd {
		t.Errorf("direct page store invisible to Read64: %#x", got)
	}
}

func TestCrossPageWords(t *testing.T) {
	// Aligned 8-byte words never straddle pages, including the last
	// word of a page.
	s := NewSpace()
	last := uint64(PageSize - 8)
	s.Write64(last, 42)
	s.Write64(PageSize, 43)
	if s.Read64(last) != 42 || s.Read64(PageSize) != 43 {
		t.Error("page-boundary words corrupted")
	}
}

func TestUnalignedPanics(t *testing.T) {
	s := NewSpace()
	defer func() {
		if recover() == nil {
			t.Error("unaligned access should panic")
		}
	}()
	s.Read64(0x1001)
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(13)
	b := s.Alloc(1)
	if a&7 != 0 || b&7 != 0 {
		t.Errorf("allocations %#x, %#x not 8-byte aligned", a, b)
	}
	if b < a+13 {
		t.Errorf("allocations overlap: a=%#x size 13, b=%#x", a, b)
	}
	if a == 0 || b == 0 {
		t.Error("address 0 must never be allocated")
	}
}

func TestAdd64(t *testing.T) {
	s := NewSpace()
	addr := s.AllocWords(1)
	s.Write64(addr, 10)
	if got := s.Add64(addr, 5); got != 15 {
		t.Errorf("Add64 returned %d, want 15", got)
	}
	if got := s.Read64(addr); got != 15 {
		t.Errorf("after Add64, memory holds %d, want 15", got)
	}
	// Wrap-around is two's complement.
	s.Write64(addr, ^uint64(0))
	if got := s.Add64(addr, 1); got != 0 {
		t.Errorf("wrapping Add64 returned %d, want 0", got)
	}
}

func TestWordsBulk(t *testing.T) {
	s := NewSpace()
	addr := s.AllocWords(4)
	want := []uint64{1, 2, 3, 4}
	s.WriteWords(addr, want)
	got := s.ReadWords(addr, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSparseness(t *testing.T) {
	s := NewSpace()
	s.Write64(0x1000, 1)
	s.Write64(1<<40, 2)
	if n := s.PageCount(); n != 2 {
		t.Errorf("%d pages materialized, want 2 (sparse backing)", n)
	}
}

func TestBrkMonotonic(t *testing.T) {
	s := NewSpace()
	prev := s.Brk()
	for i := 0; i < 100; i++ {
		s.Alloc(uint64(i + 1))
		if s.Brk() <= prev {
			t.Fatalf("brk not monotonic at allocation %d", i)
		}
		prev = s.Brk()
	}
}

// TestSnapshotRestore pins the pooled-workload contract: after
// arbitrary writes and fresh allocations, Restore returns the space to
// the exact snapshotted bytes and allocation mark.
func TestSnapshotRestore(t *testing.T) {
	s := NewSpace()
	a := s.AllocWords(4)
	s.Write64(a, 111)
	s.Write64(a+8, 222)
	snap := s.Snapshot()
	brk := s.Brk()

	// Mutate existing words, then allocate and touch a far page.
	s.Write64(a, 999)
	b := s.Alloc(3 * PageSize)
	s.Write64(b+2*PageSize, 777)
	if s.Brk() == brk {
		t.Fatal("allocation did not move brk")
	}

	s.Restore(snap)
	if got := s.Read64(a); got != 111 {
		t.Errorf("restored word = %d, want 111", got)
	}
	if got := s.Read64(a + 8); got != 222 {
		t.Errorf("restored word = %d, want 222", got)
	}
	if s.Brk() != brk {
		t.Errorf("restored brk = %#x, want %#x", s.Brk(), brk)
	}
	if got := s.Read64(b + 2*PageSize); got != 0 {
		t.Errorf("post-snapshot page survived restore: %d", got)
	}

	// The snapshot is isolated from writes made after Restore too.
	s.Write64(a, 5)
	s.Restore(snap)
	if got := s.Read64(a); got != 111 {
		t.Errorf("second restore = %d, want 111", got)
	}
}

// TestSnapshotRestoreEquivalence: a restored space must behave exactly
// like a freshly built one (same reads, same page count).
func TestSnapshotRestoreEquivalence(t *testing.T) {
	build := func() (*Space, uint64) {
		s := NewSpace()
		base := s.AllocWords(64)
		for i := uint64(0); i < 64; i++ {
			s.Write64(base+i*8, i*i)
		}
		return s, base
	}
	fresh, fbase := build()
	pooled, pbase := build()
	snap := pooled.Snapshot()
	for i := uint64(0); i < 64; i++ {
		pooled.Write64(pbase+i*8, ^uint64(0))
	}
	pooled.Restore(snap)
	if fresh.PageCount() != pooled.PageCount() {
		t.Errorf("page counts differ: fresh %d, restored %d", fresh.PageCount(), pooled.PageCount())
	}
	for i := uint64(0); i < 64; i++ {
		if f, p := fresh.Read64(fbase+i*8), pooled.Read64(pbase+i*8); f != p {
			t.Errorf("word %d: fresh %d, restored %d", i, f, p)
		}
	}
}
